file(REMOVE_RECURSE
  "liblqcd_hmc.a"
)
