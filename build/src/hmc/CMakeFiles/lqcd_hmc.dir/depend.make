# Empty dependencies file for lqcd_hmc.
# This may be replaced when dependencies are built.
