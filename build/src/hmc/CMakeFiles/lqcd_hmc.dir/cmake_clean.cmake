file(REMOVE_RECURSE
  "CMakeFiles/lqcd_hmc.dir/dynamical.cpp.o"
  "CMakeFiles/lqcd_hmc.dir/dynamical.cpp.o.d"
  "CMakeFiles/lqcd_hmc.dir/hmc.cpp.o"
  "CMakeFiles/lqcd_hmc.dir/hmc.cpp.o.d"
  "CMakeFiles/lqcd_hmc.dir/rhmc.cpp.o"
  "CMakeFiles/lqcd_hmc.dir/rhmc.cpp.o.d"
  "liblqcd_hmc.a"
  "liblqcd_hmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
