file(REMOVE_RECURSE
  "liblqcd_linalg.a"
)
