# Empty dependencies file for lqcd_linalg.
# This may be replaced when dependencies are built.
