file(REMOVE_RECURSE
  "CMakeFiles/lqcd_linalg.dir/gamma.cpp.o"
  "CMakeFiles/lqcd_linalg.dir/gamma.cpp.o.d"
  "liblqcd_linalg.a"
  "liblqcd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
