# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("parallel")
subdirs("linalg")
subdirs("lattice")
subdirs("gauge")
subdirs("dirac")
subdirs("solver")
subdirs("staggered")
subdirs("comm")
subdirs("hmc")
subdirs("spectro")
subdirs("core")
