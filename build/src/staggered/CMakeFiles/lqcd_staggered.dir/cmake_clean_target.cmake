file(REMOVE_RECURSE
  "liblqcd_staggered.a"
)
