file(REMOVE_RECURSE
  "CMakeFiles/lqcd_staggered.dir/staggered.cpp.o"
  "CMakeFiles/lqcd_staggered.dir/staggered.cpp.o.d"
  "liblqcd_staggered.a"
  "liblqcd_staggered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_staggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
