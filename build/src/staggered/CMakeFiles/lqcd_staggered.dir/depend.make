# Empty dependencies file for lqcd_staggered.
# This may be replaced when dependencies are built.
