file(REMOVE_RECURSE
  "CMakeFiles/lqcd_lattice.dir/geometry.cpp.o"
  "CMakeFiles/lqcd_lattice.dir/geometry.cpp.o.d"
  "liblqcd_lattice.a"
  "liblqcd_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
