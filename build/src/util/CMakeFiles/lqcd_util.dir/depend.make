# Empty dependencies file for lqcd_util.
# This may be replaced when dependencies are built.
