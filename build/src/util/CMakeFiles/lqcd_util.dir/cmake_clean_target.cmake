file(REMOVE_RECURSE
  "liblqcd_util.a"
)
