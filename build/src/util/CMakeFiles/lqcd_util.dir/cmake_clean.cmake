file(REMOVE_RECURSE
  "CMakeFiles/lqcd_util.dir/cli.cpp.o"
  "CMakeFiles/lqcd_util.dir/cli.cpp.o.d"
  "CMakeFiles/lqcd_util.dir/crc32.cpp.o"
  "CMakeFiles/lqcd_util.dir/crc32.cpp.o.d"
  "CMakeFiles/lqcd_util.dir/log.cpp.o"
  "CMakeFiles/lqcd_util.dir/log.cpp.o.d"
  "CMakeFiles/lqcd_util.dir/stats.cpp.o"
  "CMakeFiles/lqcd_util.dir/stats.cpp.o.d"
  "liblqcd_util.a"
  "liblqcd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
