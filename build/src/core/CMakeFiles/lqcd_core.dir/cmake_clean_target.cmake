file(REMOVE_RECURSE
  "liblqcd_core.a"
)
