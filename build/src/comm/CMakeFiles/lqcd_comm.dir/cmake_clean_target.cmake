file(REMOVE_RECURSE
  "liblqcd_comm.a"
)
