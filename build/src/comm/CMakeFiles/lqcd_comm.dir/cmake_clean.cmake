file(REMOVE_RECURSE
  "CMakeFiles/lqcd_comm.dir/halo.cpp.o"
  "CMakeFiles/lqcd_comm.dir/halo.cpp.o.d"
  "CMakeFiles/lqcd_comm.dir/machine.cpp.o"
  "CMakeFiles/lqcd_comm.dir/machine.cpp.o.d"
  "CMakeFiles/lqcd_comm.dir/perf_model.cpp.o"
  "CMakeFiles/lqcd_comm.dir/perf_model.cpp.o.d"
  "CMakeFiles/lqcd_comm.dir/process_grid.cpp.o"
  "CMakeFiles/lqcd_comm.dir/process_grid.cpp.o.d"
  "liblqcd_comm.a"
  "liblqcd_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
