# Empty compiler generated dependencies file for lqcd_comm.
# This may be replaced when dependencies are built.
