# CMake generated Testfile for 
# Source directory: /root/repo/src/spectro
# Build directory: /root/repo/build/src/spectro
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
