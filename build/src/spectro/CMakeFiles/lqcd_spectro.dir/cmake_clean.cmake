file(REMOVE_RECURSE
  "CMakeFiles/lqcd_spectro.dir/correlator.cpp.o"
  "CMakeFiles/lqcd_spectro.dir/correlator.cpp.o.d"
  "CMakeFiles/lqcd_spectro.dir/effective_mass.cpp.o"
  "CMakeFiles/lqcd_spectro.dir/effective_mass.cpp.o.d"
  "CMakeFiles/lqcd_spectro.dir/free_field.cpp.o"
  "CMakeFiles/lqcd_spectro.dir/free_field.cpp.o.d"
  "CMakeFiles/lqcd_spectro.dir/io.cpp.o"
  "CMakeFiles/lqcd_spectro.dir/io.cpp.o.d"
  "CMakeFiles/lqcd_spectro.dir/propagator.cpp.o"
  "CMakeFiles/lqcd_spectro.dir/propagator.cpp.o.d"
  "CMakeFiles/lqcd_spectro.dir/source.cpp.o"
  "CMakeFiles/lqcd_spectro.dir/source.cpp.o.d"
  "liblqcd_spectro.a"
  "liblqcd_spectro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_spectro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
