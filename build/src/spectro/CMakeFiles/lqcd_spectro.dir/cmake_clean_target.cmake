file(REMOVE_RECURSE
  "liblqcd_spectro.a"
)
