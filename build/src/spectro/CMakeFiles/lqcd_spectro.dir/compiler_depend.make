# Empty compiler generated dependencies file for lqcd_spectro.
# This may be replaced when dependencies are built.
