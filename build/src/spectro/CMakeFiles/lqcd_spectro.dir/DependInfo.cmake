
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spectro/correlator.cpp" "src/spectro/CMakeFiles/lqcd_spectro.dir/correlator.cpp.o" "gcc" "src/spectro/CMakeFiles/lqcd_spectro.dir/correlator.cpp.o.d"
  "/root/repo/src/spectro/effective_mass.cpp" "src/spectro/CMakeFiles/lqcd_spectro.dir/effective_mass.cpp.o" "gcc" "src/spectro/CMakeFiles/lqcd_spectro.dir/effective_mass.cpp.o.d"
  "/root/repo/src/spectro/free_field.cpp" "src/spectro/CMakeFiles/lqcd_spectro.dir/free_field.cpp.o" "gcc" "src/spectro/CMakeFiles/lqcd_spectro.dir/free_field.cpp.o.d"
  "/root/repo/src/spectro/io.cpp" "src/spectro/CMakeFiles/lqcd_spectro.dir/io.cpp.o" "gcc" "src/spectro/CMakeFiles/lqcd_spectro.dir/io.cpp.o.d"
  "/root/repo/src/spectro/propagator.cpp" "src/spectro/CMakeFiles/lqcd_spectro.dir/propagator.cpp.o" "gcc" "src/spectro/CMakeFiles/lqcd_spectro.dir/propagator.cpp.o.d"
  "/root/repo/src/spectro/source.cpp" "src/spectro/CMakeFiles/lqcd_spectro.dir/source.cpp.o" "gcc" "src/spectro/CMakeFiles/lqcd_spectro.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dirac/CMakeFiles/lqcd_dirac.dir/DependInfo.cmake"
  "/root/repo/build/src/gauge/CMakeFiles/lqcd_gauge.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/lqcd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lqcd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lqcd_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lqcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
