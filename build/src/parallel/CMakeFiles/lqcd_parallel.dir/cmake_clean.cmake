file(REMOVE_RECURSE
  "CMakeFiles/lqcd_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/lqcd_parallel.dir/thread_pool.cpp.o.d"
  "liblqcd_parallel.a"
  "liblqcd_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
