file(REMOVE_RECURSE
  "liblqcd_parallel.a"
)
