# Empty dependencies file for lqcd_parallel.
# This may be replaced when dependencies are built.
