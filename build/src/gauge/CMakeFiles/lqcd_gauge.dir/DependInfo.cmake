
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gauge/flow.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/flow.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/flow.cpp.o.d"
  "/root/repo/src/gauge/gauge_fixing.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/gauge_fixing.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/gauge_fixing.cpp.o.d"
  "/root/repo/src/gauge/heatbath.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o.d"
  "/root/repo/src/gauge/io.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/io.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/io.cpp.o.d"
  "/root/repo/src/gauge/observables.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/observables.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/observables.cpp.o.d"
  "/root/repo/src/gauge/smear.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/smear.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/smear.cpp.o.d"
  "/root/repo/src/gauge/wilson_loops.cpp" "src/gauge/CMakeFiles/lqcd_gauge.dir/wilson_loops.cpp.o" "gcc" "src/gauge/CMakeFiles/lqcd_gauge.dir/wilson_loops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lattice/CMakeFiles/lqcd_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lqcd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lqcd_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lqcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
