file(REMOVE_RECURSE
  "CMakeFiles/lqcd_gauge.dir/flow.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/flow.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/gauge_fixing.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/gauge_fixing.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/heatbath.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/io.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/io.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/observables.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/observables.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/smear.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/smear.cpp.o.d"
  "CMakeFiles/lqcd_gauge.dir/wilson_loops.cpp.o"
  "CMakeFiles/lqcd_gauge.dir/wilson_loops.cpp.o.d"
  "liblqcd_gauge.a"
  "liblqcd_gauge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqcd_gauge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
