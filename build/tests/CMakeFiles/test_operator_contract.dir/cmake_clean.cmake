file(REMOVE_RECURSE
  "CMakeFiles/test_operator_contract.dir/test_operator_contract.cpp.o"
  "CMakeFiles/test_operator_contract.dir/test_operator_contract.cpp.o.d"
  "test_operator_contract"
  "test_operator_contract.pdb"
  "test_operator_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operator_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
