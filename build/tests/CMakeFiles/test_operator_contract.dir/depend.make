# Empty dependencies file for test_operator_contract.
# This may be replaced when dependencies are built.
