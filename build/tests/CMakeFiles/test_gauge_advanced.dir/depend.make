# Empty dependencies file for test_gauge_advanced.
# This may be replaced when dependencies are built.
