file(REMOVE_RECURSE
  "CMakeFiles/test_gauge_advanced.dir/test_gauge_advanced.cpp.o"
  "CMakeFiles/test_gauge_advanced.dir/test_gauge_advanced.cpp.o.d"
  "test_gauge_advanced"
  "test_gauge_advanced.pdb"
  "test_gauge_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gauge_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
