file(REMOVE_RECURSE
  "CMakeFiles/test_rhmc.dir/test_rhmc.cpp.o"
  "CMakeFiles/test_rhmc.dir/test_rhmc.cpp.o.d"
  "test_rhmc"
  "test_rhmc.pdb"
  "test_rhmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
