# Empty compiler generated dependencies file for test_rhmc.
# This may be replaced when dependencies are built.
