# Empty compiler generated dependencies file for test_spectro_io.
# This may be replaced when dependencies are built.
