file(REMOVE_RECURSE
  "CMakeFiles/test_spectro_io.dir/test_spectro_io.cpp.o"
  "CMakeFiles/test_spectro_io.dir/test_spectro_io.cpp.o.d"
  "test_spectro_io"
  "test_spectro_io.pdb"
  "test_spectro_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectro_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
