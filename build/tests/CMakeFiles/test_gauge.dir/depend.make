# Empty dependencies file for test_gauge.
# This may be replaced when dependencies are built.
