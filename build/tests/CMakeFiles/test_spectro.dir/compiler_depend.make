# Empty compiler generated dependencies file for test_spectro.
# This may be replaced when dependencies are built.
