file(REMOVE_RECURSE
  "CMakeFiles/test_spectro.dir/test_spectro.cpp.o"
  "CMakeFiles/test_spectro.dir/test_spectro.cpp.o.d"
  "test_spectro"
  "test_spectro.pdb"
  "test_spectro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
