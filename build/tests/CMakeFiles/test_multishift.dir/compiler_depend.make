# Empty compiler generated dependencies file for test_multishift.
# This may be replaced when dependencies are built.
