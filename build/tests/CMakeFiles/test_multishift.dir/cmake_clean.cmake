file(REMOVE_RECURSE
  "CMakeFiles/test_multishift.dir/test_multishift.cpp.o"
  "CMakeFiles/test_multishift.dir/test_multishift.cpp.o.d"
  "test_multishift"
  "test_multishift.pdb"
  "test_multishift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multishift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
