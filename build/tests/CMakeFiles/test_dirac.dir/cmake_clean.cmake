file(REMOVE_RECURSE
  "CMakeFiles/test_dirac.dir/test_dirac.cpp.o"
  "CMakeFiles/test_dirac.dir/test_dirac.cpp.o.d"
  "test_dirac"
  "test_dirac.pdb"
  "test_dirac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dirac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
