file(REMOVE_RECURSE
  "CMakeFiles/test_gauge_fixing.dir/test_gauge_fixing.cpp.o"
  "CMakeFiles/test_gauge_fixing.dir/test_gauge_fixing.cpp.o.d"
  "test_gauge_fixing"
  "test_gauge_fixing.pdb"
  "test_gauge_fixing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gauge_fixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
