# Empty compiler generated dependencies file for test_gauge_fixing.
# This may be replaced when dependencies are built.
