# Empty dependencies file for test_dynamical.
# This may be replaced when dependencies are built.
