file(REMOVE_RECURSE
  "CMakeFiles/test_dynamical.dir/test_dynamical.cpp.o"
  "CMakeFiles/test_dynamical.dir/test_dynamical.cpp.o.d"
  "test_dynamical"
  "test_dynamical.pdb"
  "test_dynamical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
