# Empty compiler generated dependencies file for test_twisted.
# This may be replaced when dependencies are built.
