file(REMOVE_RECURSE
  "CMakeFiles/test_twisted.dir/test_twisted.cpp.o"
  "CMakeFiles/test_twisted.dir/test_twisted.cpp.o.d"
  "test_twisted"
  "test_twisted.pdb"
  "test_twisted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twisted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
