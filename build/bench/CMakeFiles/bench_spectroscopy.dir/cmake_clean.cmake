file(REMOVE_RECURSE
  "CMakeFiles/bench_spectroscopy.dir/bench_spectroscopy.cpp.o"
  "CMakeFiles/bench_spectroscopy.dir/bench_spectroscopy.cpp.o.d"
  "bench_spectroscopy"
  "bench_spectroscopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectroscopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
