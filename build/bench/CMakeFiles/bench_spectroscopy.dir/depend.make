# Empty dependencies file for bench_spectroscopy.
# This may be replaced when dependencies are built.
