file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_precision.dir/bench_mixed_precision.cpp.o"
  "CMakeFiles/bench_mixed_precision.dir/bench_mixed_precision.cpp.o.d"
  "bench_mixed_precision"
  "bench_mixed_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
