file(REMOVE_RECURSE
  "CMakeFiles/bench_sap.dir/bench_sap.cpp.o"
  "CMakeFiles/bench_sap.dir/bench_sap.cpp.o.d"
  "bench_sap"
  "bench_sap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
