# Empty dependencies file for bench_sap.
# This may be replaced when dependencies are built.
