file(REMOVE_RECURSE
  "CMakeFiles/bench_dslash.dir/bench_dslash.cpp.o"
  "CMakeFiles/bench_dslash.dir/bench_dslash.cpp.o.d"
  "bench_dslash"
  "bench_dslash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dslash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
