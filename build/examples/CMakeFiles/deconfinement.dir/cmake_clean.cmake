file(REMOVE_RECURSE
  "CMakeFiles/deconfinement.dir/deconfinement.cpp.o"
  "CMakeFiles/deconfinement.dir/deconfinement.cpp.o.d"
  "deconfinement"
  "deconfinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deconfinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
