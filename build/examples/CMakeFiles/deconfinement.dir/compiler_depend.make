# Empty compiler generated dependencies file for deconfinement.
# This may be replaced when dependencies are built.
