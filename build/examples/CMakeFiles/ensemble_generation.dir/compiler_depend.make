# Empty compiler generated dependencies file for ensemble_generation.
# This may be replaced when dependencies are built.
