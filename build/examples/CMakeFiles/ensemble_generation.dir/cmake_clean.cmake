file(REMOVE_RECURSE
  "CMakeFiles/ensemble_generation.dir/ensemble_generation.cpp.o"
  "CMakeFiles/ensemble_generation.dir/ensemble_generation.cpp.o.d"
  "ensemble_generation"
  "ensemble_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
