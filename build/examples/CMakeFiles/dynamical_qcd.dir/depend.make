# Empty dependencies file for dynamical_qcd.
# This may be replaced when dependencies are built.
