file(REMOVE_RECURSE
  "CMakeFiles/dynamical_qcd.dir/dynamical_qcd.cpp.o"
  "CMakeFiles/dynamical_qcd.dir/dynamical_qcd.cpp.o.d"
  "dynamical_qcd"
  "dynamical_qcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamical_qcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
