file(REMOVE_RECURSE
  "CMakeFiles/hadron_spectrum.dir/hadron_spectrum.cpp.o"
  "CMakeFiles/hadron_spectrum.dir/hadron_spectrum.cpp.o.d"
  "hadron_spectrum"
  "hadron_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadron_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
