# Empty dependencies file for hadron_spectrum.
# This may be replaced when dependencies are built.
