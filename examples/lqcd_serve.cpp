// lqcd_serve — the propagator campaign service, git-style verbs:
//
//   lqcd_serve submit --spec camp.json [--L 8 --T 8 --beta 5.9
//                      --configs 2 --kappas 0.120,0.126
//                      --sources "point:0,0,0,0;wall:0" --block 4
//                      --ranks 4 --output campaign_out]
//       Thermalize the requested gauge configurations, save them next to
//       the output directory, and write a validated campaign spec.
//
//   lqcd_serve run --spec camp.json [--kill-epoch N] [--kills "l:e,..."]
//                  [--lane-dead "l:e,..."] [--drop-prob P]
//                  [--straggle-prob P [--straggle-mult M]]
//       Execute (or resume) the campaign: every finished task in the
//       journal is skipped, the rest are solved and journaled. The fault
//       flags drive the deterministic injector for crash drills; lane
//       deaths exercise the degraded-mode recovery path (re-sharding
//       onto survivors), straggles the speculative re-execution path.
//
//   lqcd_serve status --spec camp.json   (or --journal path/journal.lqj)
//       Summarize the journal without touching gauge data.
//
//   lqcd_serve compact --spec camp.json  (or --journal path/journal.lqj)
//       Rewrite the journal without settled TaskRunning frames and
//       duplicate TaskDone frames; `status` output is unchanged.
//
// Exit code: 0 on success (status: also when no journal exists yet),
// 2 when a run was killed mid-campaign (rerun to resume), 1 on error.

#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/transport/transport.hpp"
#include "core/api.hpp"
#include "gauge/io.hpp"
#include "serve/dist_service.hpp"
#include "serve/service.hpp"
#include "util/atomic_io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace lqcd;
using namespace lqcd::serve;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

int cmd_submit(Cli& cli) {
  const std::string spec_path = cli.get_string("spec", "campaign.json");
  const int L = cli.get_int("L", 8);
  const int T = cli.get_int("T", 8);
  const double beta = cli.get_double("beta", 5.9);
  const int nconfigs = cli.get_int("configs", 1);
  const std::string kappas = cli.get_string("kappas", "0.120,0.126");
  // ';' separates sources because the source-spec language uses ','
  // internally (point:X,Y,Z,T).
  const std::string sources =
      cli.get_string("sources", "point:0,0,0,0;wall:0");

  CampaignSpec spec;
  spec.name = cli.get_string("name", "campaign");
  spec.solver = parse_solver_kind(cli.get_string("solver", "block_cg"));
  spec.tol = cli.get_double("tol", 1e-9);
  spec.max_iterations = cli.get_int("max-iterations", 20000);
  spec.block = cli.get_int("block", 4);
  spec.ranks = cli.get_int("ranks", 4);
  spec.machine = cli.get_string("machine", "cluster");
  spec.max_retries = cli.get_int("max-retries", 2);
  spec.output = cli.get_string("output", "campaign_out");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_long("seed", 2013));
  const int therm = cli.get_int("therm-sweeps", 20);
  cli.finish();

  for (const std::string& k : kappas.empty()
                                  ? std::vector<std::string>{}
                                  : split(kappas, ','))
    spec.kappas.push_back(std::stod(k));
  for (const std::string& s : split(sources, ';'))
    if (!s.empty()) spec.sources.push_back(s);

  // Thermalize and persist the gauge ensemble the campaign will consume.
  std::filesystem::create_directories(spec.output);
  Context ctx({L, L, L, T}, seed);
  EnsembleGenerator gen(ctx, {.beta = beta,
                              .or_per_hb = 2,
                              .thermalization_sweeps = therm,
                              .sweeps_between_configs = 10});
  for (int c = 0; c < nconfigs; ++c) {
    const GaugeFieldD& u = gen.next_config();
    const std::string path =
        spec.output + "/config_" + std::to_string(c) + ".lqcd";
    save_gauge(u, path, beta);
    spec.configs.push_back(path);
    std::printf("config %d: plaquette = %.5f -> %s\n", c, gen.plaquette(),
                path.c_str());
  }

  // Round-trip through the parser so an invalid spec dies here.
  const std::string doc = canonical_json(spec);
  (void)parse_campaign(json::Value::parse(doc));
  atomic_write_file(spec_path,
                    [&](std::ostream& os) { os << doc << "\n"; });
  std::printf("submitted %s: %d tasks (fingerprint %08x)\n",
              spec_path.c_str(), spec.num_tasks(), spec_fingerprint(spec));
  return 0;
}

/// Parse a "lane:epoch[,lane:epoch...]" schedule string.
std::vector<std::pair<int, std::uint64_t>> parse_schedule(
    const std::string& s, const char* flag) {
  std::vector<std::pair<int, std::uint64_t>> out;
  if (s.empty()) return out;
  for (const std::string& item : split(s, ',')) {
    const std::size_t colon = item.find(':');
    LQCD_REQUIRE(colon != std::string::npos && colon > 0 &&
                     colon + 1 < item.size(),
                 std::string(flag) + ": expected lane:epoch, got '" + item +
                     "'");
    out.emplace_back(std::stoi(item.substr(0, colon)),
                     static_cast<std::uint64_t>(
                         std::stoull(item.substr(colon + 1))));
  }
  return out;
}

int cmd_run(Cli& cli) {
  const std::string spec_path = cli.get_string("spec", "campaign.json");
  const long kill_epoch = cli.get_long("kill-epoch", -1);
  const int kill_lane = cli.get_int("kill-lane", 0);
  const std::string kills = cli.get_string("kills", "");
  const std::string lane_dead = cli.get_string("lane-dead", "");
  const double drop_prob = cli.get_double("drop-prob", 0.0);
  const double straggle_prob = cli.get_double("straggle-prob", 0.0);
  const double straggle_mult = cli.get_double("straggle-mult", 8.0);
  const std::uint64_t fault_seed =
      static_cast<std::uint64_t>(cli.get_long("fault-seed", 7));
  cli.finish();

  const CampaignSpec spec = load_campaign(spec_path);

  // Under lqcd_launch (LQCD_TRANSPORT set) the same verb becomes one
  // SPMD rank of a multi-process campaign: rank 0 coordinates and owns
  // the journal, the other ranks are solver workers. The modeled fault
  // flags above drive the *virtual* service only; multi-process drills
  // inject real faults through the launcher (--kill-rank / --die-rank).
  if (std::getenv("LQCD_TRANSPORT") != nullptr) {
    const std::unique_ptr<transport::Transport> tp =
        transport::make_transport_from_env();
    if (tp->rank() == 0)
      std::printf("campaign %s: %d tasks over %d worker ranks (%s)\n",
                  spec.name.c_str(), spec.num_tasks(), tp->size() - 1,
                  to_string(tp->kind()));
    const CampaignOutcome out = run_distributed_campaign(spec, *tp);
    if (tp->rank() != 0) return out.finished ? 0 : 1;
    std::printf("done: %d completed, %d skipped (resume), %d transient "
                "retries, %.2fs\n",
                out.completed, out.skipped, out.transient_failures,
                out.seconds);
    if (out.degraded)
      std::printf("degraded: %d lanes lost, %d tasks reassigned\n",
                  out.lanes_lost, out.tasks_reassigned);
    std::printf("result: %s/result.json\n", spec.output.c_str());
    return 0;
  }

  FaultInjector faults(fault_seed, {.drop_prob = drop_prob,
                                    .task_straggle_prob = straggle_prob,
                                    .task_straggle_mult = straggle_mult});
  bool any_fault = drop_prob > 0.0 || straggle_prob > 0.0;
  if (kill_epoch >= 0) {
    faults.schedule_kill(kill_lane,
                         static_cast<std::uint64_t>(kill_epoch));
    any_fault = true;
  }
  for (const auto& [lane, epoch] : parse_schedule(kills, "--kills")) {
    faults.schedule_kill(lane, epoch);
    any_fault = true;
  }
  for (const auto& [lane, epoch] :
       parse_schedule(lane_dead, "--lane-dead")) {
    faults.schedule_lane_death(lane, epoch);
    any_fault = true;
  }

  ServiceOptions opts;
  if (any_fault) opts.faults = &faults;
  CampaignService service(spec, opts);
  std::printf("campaign %s: %d tasks over %d lanes (imbalance %.3f)\n",
              spec.name.c_str(), spec.num_tasks(), spec.ranks,
              service.plan().imbalance());
  try {
    const CampaignOutcome out = service.run();
    std::printf("done: %d completed, %d skipped (resume), %d transient "
                "retries, %.2fs\n",
                out.completed, out.skipped, out.transient_failures,
                out.seconds);
    if (out.degraded || out.speculative_tasks > 0)
      std::printf("degraded: %d lanes lost, %d tasks reassigned, "
                  "%d speculative (%d wins)\n",
                  out.lanes_lost, out.tasks_reassigned,
                  out.speculative_tasks, out.speculative_wins);
    std::printf("result: %s/result.json\n", spec.output.c_str());
  } catch (const TransientError& e) {
    std::printf("killed: %s\n", e.what());
    return 2;  // journal holds the finished prefix; rerun to resume
  }
  return 0;
}

int cmd_status(Cli& cli) {
  std::string journal = cli.get_string("journal", "");
  const std::string spec_path = cli.get_string("spec", "");
  cli.finish();
  if (journal.empty()) {
    LQCD_REQUIRE(!spec_path.empty(),
                 "status needs --journal or --spec");
    journal = load_campaign(spec_path).output + "/journal.lqj";
  }
  const CampaignStatus st = CampaignService::status(journal);
  if (!st.journal_found) {
    std::printf("%s: no journal (campaign not started)\n",
                journal.c_str());
    return 0;
  }
  std::printf("%s: %llu frames, fingerprint %08x\n", journal.c_str(),
              static_cast<unsigned long long>(st.frames), st.fingerprint);
  std::printf("  tasks: %d/%d done, %d failed attempts, %d in flight\n",
              st.done, st.total, st.failed_attempts, st.in_flight);
  if (st.lanes_lost > 0 || st.tasks_reassigned > 0 ||
      st.speculative_tasks > 0)
    std::printf("  recovery: %d lanes lost, %d tasks reassigned, "
                "%d speculative\n",
                st.lanes_lost, st.tasks_reassigned, st.speculative_tasks);
  if (st.truncated_bytes > 0)
    std::printf("  torn tail: %llu bytes dropped\n",
                static_cast<unsigned long long>(st.truncated_bytes));
  std::printf("  %s\n", st.finished ? "finished" : "in progress");
  return 0;
}

int cmd_compact(Cli& cli) {
  std::string journal = cli.get_string("journal", "");
  const std::string spec_path = cli.get_string("spec", "");
  cli.finish();
  if (journal.empty()) {
    LQCD_REQUIRE(!spec_path.empty(),
                 "compact needs --journal or --spec");
    journal = load_campaign(spec_path).output + "/journal.lqj";
  }
  const CompactionStats st = compact_journal(journal);
  std::printf("%s: %llu -> %llu frames, %llu -> %llu bytes\n",
              journal.c_str(),
              static_cast<unsigned long long>(st.frames_before),
              static_cast<unsigned long long>(st.frames_after),
              static_cast<unsigned long long>(st.bytes_before),
              static_cast<unsigned long long>(st.bytes_after));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv, {"run", "submit", "status", "compact"});
    if (cli.command() == "submit") return cmd_submit(cli);
    if (cli.command() == "run") return cmd_run(cli);
    if (cli.command() == "compact") return cmd_compact(cli);
    return cmd_status(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lqcd_serve: %s\n", e.what());
    return 1;
  }
}
