// Full QCD: two-flavor dynamical Wilson fermions via HMC.
//
//   ./dynamical_qcd [--L 4] [--T 4] [--beta 5.4] [--kappa 0.1]
//                   [--trajectories 10] [--steps 10] [--length 0.5]
//                   [--solver eo_cg|mixed_cg|bicgstab|gcr|sap_gcr|mg]
//
// After sampling, one valence (measurement) solve runs on the final
// configuration through the shared solver factory — the same pipeline
// hadron_spectrum and bench_solvers use, selected by --solver.
//
// Every trajectory integrates the gauge field against the *sea quark*
// force — each force evaluation solves the Dirac equation — and ends in
// an exact Metropolis step. This is the algorithm behind every modern
// dynamical ensemble; the quenched generator (examples/ensemble_
// generation) is the historical approximation it replaced.

#include <cmath>
#include <cstdio>
#include <vector>

#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "hmc/dynamical.hpp"
#include "hmc/rhmc.hpp"
#include "solver/factory.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 4);
  const int T = cli.get_int("T", 4);
  DynamicalHmcParams params;
  params.beta = cli.get_double("beta", 5.4);
  params.kappa = cli.get_double("kappa", 0.10);
  params.trajectory_length = cli.get_double("length", 0.5);
  params.steps = cli.get_int("steps", 10);
  params.seed = static_cast<std::uint64_t>(cli.get_long("seed", 20130402));
  const int n_traj = cli.get_int("trajectories", 10);
  const int flavors = cli.get_int("flavors", 2);
  const std::string solver_name = cli.get_string("solver", "eo_cg");
  cli.finish();
  const SolverKind solver_kind = parse_solver_kind(solver_name);
  if (flavors != 1 && flavors != 2) {
    std::fprintf(stderr, "--flavors must be 1 (RHMC) or 2 (HMC)\n");
    return 1;
  }

  std::printf("%s dynamical sampling: %d^3 x %d, beta=%.2f, "
              "kappa=%.3f, tau=%.2f in %d steps\n\n",
              flavors == 2 ? "two-flavor HMC" : "one-flavor RHMC", L, T,
              params.beta, params.kappa, params.trajectory_length,
              params.steps);

  const LatticeGeometry geo({L, L, L, T});
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(params.seed ^ 0xabcULL));
  {
    // Cheap pre-thermalization with the quenched heatbath.
    Heatbath pre(u, {.beta = params.beta, .or_per_hb = 1,
                     .seed = params.seed + 1});
    for (int i = 0; i < 10; ++i) pre.sweep();
  }

  std::vector<double> plaq;
  long cg_total = 0;
  double acceptance = 0.0;
  std::printf("%5s %10s %8s %10s %10s\n", "traj", "dH", "acc", "plaq",
              "CG iters");
  if (flavors == 2) {
    DynamicalHmc hmc(u, params);
    for (int i = 0; i < n_traj; ++i) {
      const DynamicalTrajectoryResult r = hmc.trajectory();
      plaq.push_back(r.plaquette);
      cg_total += r.cg_iterations;
      std::printf("%5d %+10.4f %8s %10.5f %10d\n", i + 1, r.delta_h,
                  r.accepted ? "yes" : "NO", r.plaquette, r.cg_iterations);
    }
    acceptance = hmc.acceptance_rate();
  } else {
    RhmcParams rp;
    rp.beta = params.beta;
    rp.kappa = params.kappa;
    rp.trajectory_length = params.trajectory_length;
    rp.steps = params.steps;
    rp.seed = params.seed;
    Rhmc rhmc(u, rp);
    for (int i = 0; i < n_traj; ++i) {
      const RhmcTrajectoryResult r = rhmc.trajectory();
      plaq.push_back(r.plaquette);
      cg_total += r.cg_iterations;
      std::printf("%5d %+10.4f %8s %10.5f %10d\n", i + 1, r.delta_h,
                  r.accepted ? "yes" : "NO", r.plaquette, r.cg_iterations);
    }
    acceptance = rhmc.acceptance_rate();
  }

  std::printf("\nacceptance %.0f%%, <P> = %.5f +- %.5f, total CG "
              "iterations %ld (%.0f per trajectory)\n",
              100.0 * acceptance, mean(plaq), standard_error(plaq),
              cg_total, static_cast<double>(cg_total) / n_traj);

  // Valence measurement solve on the final configuration, through the
  // shared factory (the same code path hadron_spectrum uses).
  {
    SolverConfig cfg;
    cfg.kappa = params.kappa;
    cfg.base.tol = 1e-8;
    const std::unique_ptr<FullSolver> solver =
        make_solver(u, solver_kind, cfg);
    FermionFieldD b(geo), x(geo);
    b[0].s[0].c[0] = Cplxd(1.0);  // point source
    const SolverResult r = solver->solve(x.span(), b.span());
    std::printf("\nvalence solve on final config (%s): %d iterations, "
                "rel %.2e%s\n",
                std::string(solver->name()).c_str(), r.iterations,
                r.relative_residual, r.converged ? "" : "  [!] unconverged");
  }
  std::printf("\nThe solve cost per trajectory is why dynamical QCD "
              "needed petascale machines — and why this library's solver "
              "stack (eo-preconditioning, mixed precision, SAP) exists.\n");
  return 0;
}
