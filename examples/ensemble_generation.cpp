// Gauge ensemble generation: heatbath vs HMC on the same box, with
// configuration I/O (checksummed) and autocorrelation diagnostics.
//
//   ./ensemble_generation [--L 4] [--T 4] [--beta 5.7] [--sweeps 40]
//                         [--trajectories 20] [--out /tmp/lqcd_cfgs]
//                         [--report report.json]
//
// --report writes the telemetry run report (schema lqcd.telemetry/1:
// counters, gauges, trace tree) as JSON on exit — including the
// simulated-crash exit, so a killed campaign still leaves its metrics.
//
// Campaign durability: with --checkpoint-every N the HMC stream
// checkpoints every N trajectories (atomic write + CRC); --resume picks
// an existing checkpoint back up and reproduces the exact trajectory
// stream the uninterrupted run would have produced. --halt-after K
// simulates a mid-campaign kill (exit without a final checkpoint).

#include <cstdio>
#include <filesystem>
#include <vector>

#include "gauge/heatbath.hpp"
#include "gauge/io.hpp"
#include "gauge/observables.hpp"
#include "hmc/checkpoint.hpp"
#include "hmc/hmc.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 4);
  const int T = cli.get_int("T", 4);
  const double beta = cli.get_double("beta", 5.7);
  const int sweeps = cli.get_int("sweeps", 40);
  const int trajectories = cli.get_int("trajectories", 20);
  const std::string out_dir = cli.get_string(
      "out", (std::filesystem::temp_directory_path() / "lqcd_cfgs")
                 .string());
  const int checkpoint_every = cli.get_int("checkpoint-every", 0);
  const bool resume = cli.get_flag("resume");
  const int halt_after = cli.get_int("halt-after", 0);
  const std::string report = cli.get_string("report", "");
  cli.finish();
  const auto write_report = [&] {
    if (report.empty()) return;
    telemetry::write_report(report);
    std::printf("telemetry report -> %s\n", report.c_str());
  };

  const LatticeGeometry geo({L, L, L, T});
  std::filesystem::create_directories(out_dir);

  // --- Heatbath stream -----------------------------------------------
  std::printf("=== heatbath + over-relaxation, beta=%.2f ===\n", beta);
  GaugeFieldD u_hb(geo);
  u_hb.set_random(SiteRngFactory(1));
  Heatbath hb(u_hb, {.beta = beta, .or_per_hb = 2, .seed = 2});
  std::vector<double> plaq_hb;
  for (int i = 0; i < sweeps; ++i) {
    plaq_hb.push_back(hb.sweep());
    if ((i + 1) % 10 == 0)
      std::printf("sweep %3d: plaquette %.5f\n", i + 1, plaq_hb.back());
  }
  const std::size_t half = plaq_hb.size() / 2;
  std::vector<double> thermal(plaq_hb.begin() + half, plaq_hb.end());
  std::printf("thermal half: <P> = %.5f +- %.5f, tau_int = %.2f sweeps\n",
              mean(thermal), standard_error(thermal),
              integrated_autocorrelation(thermal));

  // Save + reload round trip with CRC protection.
  const std::string cfg = out_dir + "/heatbath.cfg";
  save_gauge(u_hb, cfg, beta);
  GaugeFieldD reload(geo);
  load_gauge(reload, cfg);
  std::printf("saved %s (reload plaquette %.5f)\n\n", cfg.c_str(),
              average_plaquette(reload));

  // --- HMC stream -----------------------------------------------------
  std::printf("=== pure-gauge HMC (Omelyan), beta=%.2f ===\n", beta);
  const HmcParams hmc_params{.beta = beta,
                             .trajectory_length = 1.0,
                             .steps = 12,
                             .integrator = Integrator::Omelyan,
                             .seed = 5};
  const std::string ckpt = out_dir + "/hmc.ckpt";
  GaugeFieldD u_hmc(geo);
  Hmc hmc(u_hmc, hmc_params);
  if (resume && checkpoint_exists(ckpt)) {
    const HmcCheckpointState state = load_checkpoint(u_hmc, ckpt);
    resume_hmc(hmc, state);
    std::printf("resumed from %s at trajectory %llu\n", ckpt.c_str(),
                static_cast<unsigned long long>(state.trajectories));
  } else {
    u_hmc.set_random(SiteRngFactory(3));
    // Pre-thermalize cheaply with a few heatbath sweeps.
    Heatbath pre(u_hmc, {.beta = beta, .or_per_hb = 1, .seed = 4});
    for (int i = 0; i < 10; ++i) pre.sweep();
  }
  std::vector<double> plaq_hmc, dh;
  while (hmc.trajectories_run() < static_cast<std::uint64_t>(trajectories)) {
    const TrajectoryResult r = hmc.trajectory();
    const auto done = hmc.trajectories_run();
    plaq_hmc.push_back(r.plaquette);
    dh.push_back(r.delta_h);
    if (done % 5 == 0)
      std::printf("traj %3llu: dH %+8.4f  %s  plaquette %.5f\n",
                  static_cast<unsigned long long>(done), r.delta_h,
                  r.accepted ? "acc" : "REJ", r.plaquette);
    if (checkpoint_every > 0 &&
        done % static_cast<std::uint64_t>(checkpoint_every) == 0) {
      save_checkpoint(u_hmc,
                      {.trajectories = done,
                       .accepted = hmc.trajectories_accepted(),
                       .params = hmc_params},
                      ckpt);
      std::printf("checkpointed %llu trajectories -> %s\n",
                  static_cast<unsigned long long>(done), ckpt.c_str());
    }
    if (halt_after > 0 &&
        done >= static_cast<std::uint64_t>(halt_after)) {
      // Simulated kill: stop without a final checkpoint. A --resume run
      // replays from the last periodic checkpoint and reproduces the
      // identical stream.
      std::printf("halting after %llu trajectories (simulated crash)\n",
                  static_cast<unsigned long long>(done));
      write_report();
      return 0;
    }
  }
  std::printf("acceptance %.0f%%, <|dH|> = %.4f, <P> = %.5f +- %.5f\n",
              100.0 * hmc.acceptance_rate(),
              mean([&] {
                std::vector<double> a(dh.size());
                for (std::size_t i = 0; i < dh.size(); ++i)
                  a[i] = std::abs(dh[i]);
                return a;
              }()),
              mean(plaq_hmc), standard_error(plaq_hmc));
  std::printf("heatbath vs HMC plaquette: %.5f vs %.5f (same theory, two "
              "samplers)\n",
              mean(thermal), mean(plaq_hmc));
  write_report();
  return 0;
}
