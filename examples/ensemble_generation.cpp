// Gauge ensemble generation: heatbath vs HMC on the same box, with
// configuration I/O (checksummed) and autocorrelation diagnostics.
//
//   ./ensemble_generation [--L 4] [--T 4] [--beta 5.7] [--sweeps 40]
//                         [--trajectories 20] [--out /tmp/lqcd_cfgs]

#include <cstdio>
#include <filesystem>
#include <vector>

#include "gauge/heatbath.hpp"
#include "gauge/io.hpp"
#include "gauge/observables.hpp"
#include "hmc/hmc.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 4);
  const int T = cli.get_int("T", 4);
  const double beta = cli.get_double("beta", 5.7);
  const int sweeps = cli.get_int("sweeps", 40);
  const int trajectories = cli.get_int("trajectories", 20);
  const std::string out_dir = cli.get_string(
      "out", (std::filesystem::temp_directory_path() / "lqcd_cfgs")
                 .string());
  cli.finish();

  const LatticeGeometry geo({L, L, L, T});
  std::filesystem::create_directories(out_dir);

  // --- Heatbath stream -----------------------------------------------
  std::printf("=== heatbath + over-relaxation, beta=%.2f ===\n", beta);
  GaugeFieldD u_hb(geo);
  u_hb.set_random(SiteRngFactory(1));
  Heatbath hb(u_hb, {.beta = beta, .or_per_hb = 2, .seed = 2});
  std::vector<double> plaq_hb;
  for (int i = 0; i < sweeps; ++i) {
    plaq_hb.push_back(hb.sweep());
    if ((i + 1) % 10 == 0)
      std::printf("sweep %3d: plaquette %.5f\n", i + 1, plaq_hb.back());
  }
  const std::size_t half = plaq_hb.size() / 2;
  std::vector<double> thermal(plaq_hb.begin() + half, plaq_hb.end());
  std::printf("thermal half: <P> = %.5f +- %.5f, tau_int = %.2f sweeps\n",
              mean(thermal), standard_error(thermal),
              integrated_autocorrelation(thermal));

  // Save + reload round trip with CRC protection.
  const std::string cfg = out_dir + "/heatbath.cfg";
  save_gauge(u_hb, cfg, beta);
  GaugeFieldD reload(geo);
  load_gauge(reload, cfg);
  std::printf("saved %s (reload plaquette %.5f)\n\n", cfg.c_str(),
              average_plaquette(reload));

  // --- HMC stream -----------------------------------------------------
  std::printf("=== pure-gauge HMC (Omelyan), beta=%.2f ===\n", beta);
  GaugeFieldD u_hmc(geo);
  u_hmc.set_random(SiteRngFactory(3));
  {
    // Pre-thermalize cheaply with a few heatbath sweeps.
    Heatbath pre(u_hmc, {.beta = beta, .or_per_hb = 1, .seed = 4});
    for (int i = 0; i < 10; ++i) pre.sweep();
  }
  Hmc hmc(u_hmc, {.beta = beta,
                  .trajectory_length = 1.0,
                  .steps = 12,
                  .integrator = Integrator::Omelyan,
                  .seed = 5});
  std::vector<double> plaq_hmc, dh;
  for (int i = 0; i < trajectories; ++i) {
    const TrajectoryResult r = hmc.trajectory();
    plaq_hmc.push_back(r.plaquette);
    dh.push_back(r.delta_h);
    if ((i + 1) % 5 == 0)
      std::printf("traj %3d: dH %+8.4f  %s  plaquette %.5f\n", i + 1,
                  r.delta_h, r.accepted ? "acc" : "REJ", r.plaquette);
  }
  std::printf("acceptance %.0f%%, <|dH|> = %.4f, <P> = %.5f +- %.5f\n",
              100.0 * hmc.acceptance_rate(),
              mean([&] {
                std::vector<double> a(dh.size());
                for (std::size_t i = 0; i < dh.size(); ++i)
                  a[i] = std::abs(dh[i]);
                return a;
              }()),
              mean(plaq_hmc), standard_error(plaq_hmc));
  std::printf("heatbath vs HMC plaquette: %.5f vs %.5f (same theory, two "
              "samplers)\n",
              mean(thermal), mean(plaq_hmc));
  return 0;
}
