// dslash_rank: one binary, two execution modes, identical bits.
//
// Standalone (no LQCD_TRANSPORT in the environment):
//   ./dslash_rank --L 8 --T 8 --np 4 --reps 3 [--schur] [--half]
// runs the virtual cluster — all --np ranks in this process — and
// prints the CRC-32 of the gathered result field.
//
// Under the launcher:
//   lqcd_launch -n 4 -- ./dslash_rank --L 8 --T 8 --np 4 --reps 3
// the same binary becomes one SPMD rank over the socket or
// shared-memory transport; rank 0 gathers and prints the same line.
// The two CRCs matching is the bit-identity acceptance check for the
// real transports, and CI diffs exactly that.
//
// The gauge configuration and source are built deterministically from
// the seed on every rank (site-keyed RNG), so no input scatter is
// needed; only halo planes cross the wire.

#include <cstdio>
#include <cstring>

#include "comm/dist_eo.hpp"
#include "comm/halo.hpp"
#include "comm/transport/rank_halo.hpp"
#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

using namespace lqcd;

namespace {

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

std::uint32_t field_crc(std::span<const WilsonSpinorD> f) {
  return crc32(f.data(), f.size() * sizeof(WilsonSpinorD));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 8);
  const int T = cli.get_int("T", 8);
  const int np = cli.get_int("np", 2);
  const int reps = cli.get_int("reps", 2);
  const double kappa = cli.get_double("kappa", 0.13);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 4242));
  const bool schur = cli.get_flag("schur");
  const bool half = cli.get_flag("half");
  cli.finish();
  const HaloPrecision prec =
      half ? HaloPrecision::kHalf : HaloPrecision::kFull;

  const LatticeGeometry geo({L, L, L, T});
  const ProcessGrid grid(choose_grid(geo.dims(), np));
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(seed));
  const auto vol = static_cast<std::size_t>(geo.volume());
  const auto hv = static_cast<std::size_t>(geo.half_volume());

  aligned_vector<WilsonSpinorD> src(vol);
  fill_random({src.data(), vol}, seed + 1);

  const char* env = std::getenv("LQCD_TRANSPORT");
  if (env == nullptr) {
    // Virtual mode: every rank lives here.
    if (schur) {
      DistributedSchurWilsonOperator<double> op(u, kappa, grid);
      op.set_halo_precision(prec);
      aligned_vector<WilsonSpinorD> in(hv), out(hv);
      std::memcpy(in.data(), src.data() + hv, hv * sizeof(WilsonSpinorD));
      for (int k = 0; k < reps; ++k) {
        op.apply({out.data(), hv}, {in.data(), hv});
        std::swap(in, out);
      }
      std::printf("dslash_rank: mode=virtual np=%d schur=1 prec=%s "
                  "crc=0x%08x\n",
                  np, to_string(prec), field_crc({in.data(), hv}));
    } else {
      DistributedWilsonOperator<double> op(u, kappa, grid);
      op.set_halo_precision(prec);
      aligned_vector<WilsonSpinorD> in = src, out(vol);
      for (int k = 0; k < reps; ++k) {
        op.apply({out.data(), vol}, {in.data(), vol});
        std::swap(in, out);
      }
      std::printf("dslash_rank: mode=virtual np=%d schur=0 prec=%s "
                  "crc=0x%08x\n",
                  np, to_string(prec), field_crc({in.data(), vol}));
    }
    return 0;
  }

  // SPMD mode: this process is one rank of the grid.
  std::unique_ptr<transport::Transport> tp =
      transport::make_transport_from_env();
  LQCD_REQUIRE(tp->size() == np,
               "dslash_rank: --np must match lqcd_launch -n");
  if (schur) {
    RankSchurWilsonOperator<double> op(u, kappa, grid, *tp);
    op.set_halo_precision(prec);
    RankCluster<double>& cl = op.cluster();
    // Odd-parity source on the extended rank volume, zero elsewhere
    // (matches the virtual twin's scatter_parity into zeroed storage).
    aligned_vector<WilsonSpinorD> odd_global(vol);
    std::memcpy(odd_global.data() + hv, src.data() + hv,
                hv * sizeof(WilsonSpinorD));
    auto in = cl.make_fermion();
    auto out = cl.make_fermion();
    cl.extract_local(in, {odd_global.data(), vol});
    for (int k = 0; k < reps; ++k) {
      op.apply(out, in);
      std::swap(in, out);
    }
    aligned_vector<WilsonSpinorD> full(tp->rank() == 0 ? vol : 0);
    cl.gather_to_root({full.data(), full.size()}, in);
    tp->barrier();
    if (tp->rank() == 0)
      std::printf("dslash_rank: mode=%s np=%d schur=1 prec=%s crc=0x%08x\n",
                  env, np, to_string(prec),
                  field_crc({full.data() + hv, hv}));
  } else {
    RankWilsonOperator<double> op(u, kappa, grid, *tp);
    op.set_halo_precision(prec);
    RankCluster<double>& cl = op.cluster();
    auto in = cl.make_fermion();
    auto out = cl.make_fermion();
    cl.extract_local(in, {src.data(), vol});
    for (int k = 0; k < reps; ++k) {
      op.apply(out, in);
      std::swap(in, out);
    }
    aligned_vector<WilsonSpinorD> full(tp->rank() == 0 ? vol : 0);
    cl.gather_to_root({full.data(), full.size()}, in);
    tp->barrier();
    if (tp->rank() == 0)
      std::printf("dslash_rank: mode=%s np=%d schur=0 prec=%s crc=0x%08x\n",
                  env, np, to_string(prec),
                  field_crc({full.data(), vol}));
  }
  return 0;
}
