// Petascale what-if: project this library's solver onto SC'13-era
// machines with the calibrated analytic model and print strong/weak
// scaling tables (the simulated substitute for the paper's cluster runs
// — see DESIGN.md).
//
//   ./scaling_study [--machine bgq|k|cluster] [--calibrate]
//                   [--simd-width N] [--gx 48 --gy 48 --gz 48 --gt 96]
//
// --calibrate times the lane-packed dslash (width --simd-width, default 4;
// 0 = scalar reference kernel) so the projected per-node throughput
// matches the vectorized node, not the historical scalar one.

#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "util/cli.hpp"

namespace {
void print_points(const std::vector<lqcd::ScalingPoint>& pts) {
  std::printf("%8s %14s %14s %12s %12s %10s %10s\n", "nodes", "grid",
              "local", "t_iter[us]", "TFLOP/s", "eff", "comm%");
  for (const auto& p : pts) {
    char grid[32], local[32];
    std::snprintf(grid, sizeof(grid), "%dx%dx%dx%d", p.grid[0], p.grid[1],
                  p.grid[2], p.grid[3]);
    std::snprintf(local, sizeof(local), "%dx%dx%dx%d", p.local[0],
                  p.local[1], p.local[2], p.local[3]);
    std::printf("%8d %14s %14s %12.2f %12.1f %9.1f%% %9.1f%%\n", p.nodes,
                grid, local, p.cost.t_iter * 1e6, p.sustained_tflops,
                100.0 * p.efficiency, 100.0 * p.cost.comm_fraction);
  }
}
}  // namespace

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const std::string machine_name = cli.get_string("machine", "bgq");
  const bool calibrate = cli.get_flag("calibrate");
  const int simd_width = cli.get_int("simd-width", 4);
  const Coord global{cli.get_int("gx", 48), cli.get_int("gy", 48),
                     cli.get_int("gz", 48), cli.get_int("gt", 96)};
  cli.finish();

  const MachineModel machine = machine_by_name(machine_name);
  PerfModelOptions opt;
  opt.precision_bytes = 8;
  if (calibrate) {
    opt.calibration = calibrate_node(machine, 8, simd_width);
    std::printf("calibration factor vs %s roofline: %.3f "
                "(measured kernel: %s)\n",
                machine.name.c_str(), opt.calibration,
                simd_width > 0 ? "lane-packed dslash" : "scalar dslash");
  }

  ScalingStudy study(machine, opt);
  std::printf("\n=== strong scaling, %dx%dx%dx%d global lattice on %s "
              "(even-odd CG iteration model) ===\n",
              global[0], global[1], global[2], global[3],
              machine.name.c_str());
  print_points(study.strong(
      global, {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
               32768, 49152}));

  std::printf("\n=== weak scaling, 16^4 per node on %s ===\n",
              machine.name.c_str());
  print_points(study.weak({16, 16, 16, 16},
                          {16, 64, 256, 1024, 4096, 16384, 49152, 98304}));

  std::printf("\nReading: strong scaling bends where the local volume "
              "shrinks (surface/volume) and the allreduce floor appears;\n"
              "weak scaling stays near-flat on torus machines — the "
              "shapes every petascale LQCD paper reports.\n");
  return 0;
}
