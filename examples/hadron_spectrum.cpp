// The origin of mass, end to end: generate a quenched ensemble, compute
// quark propagators on each configuration, contract pion / rho / nucleon
// correlators, and extract hadron masses with jackknife errors.
//
//   ./hadron_spectrum [--L 4] [--T 8] [--beta 5.9] [--kappa 0.115]
//                     [--configs 5] [--csw 0] [--therm 20] [--sep 5]
//                     [--solver eo_cg|mixed_cg|bicgstab|gcr|sap_gcr|mg]
//
// --solver picks the propagator solve pipeline from the shared factory
// (solver/factory.hpp). `mg` builds one adaptive multigrid setup per
// configuration and reuses it across all 12 spin-color sources.
//
// On a realistically sized lattice this is the measurement campaign
// behind every lattice spectroscopy paper; the defaults here are sized
// for a laptop-class demo run.

#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "spectro/free_field.hpp"
#include "spectro/io.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 4);
  const int T = cli.get_int("T", 8);
  const double beta = cli.get_double("beta", 5.9);
  const double kappa = cli.get_double("kappa", 0.115);
  const double csw = cli.get_double("csw", 0.0);
  const int n_configs = cli.get_int("configs", 5);
  const int therm = cli.get_int("therm", 20);
  const int sep = cli.get_int("sep", 5);
  const std::string out = cli.get_string("out", "");
  const std::string solver_name = cli.get_string("solver", "eo_cg");
  cli.finish();
  const SolverKind solver_kind = parse_solver_kind(solver_name);

  std::printf("hadron spectrum: %d^3 x %d, beta=%.2f, kappa=%.4f, "
              "csw=%.2f, %d configs, solver=%s\n\n",
              L, T, beta, kappa, csw, n_configs,
              std::string(to_string(solver_kind)).c_str());

  Context ctx({L, L, L, T}, 20130301);
  EnsembleGenerator gen(ctx, {.beta = beta,
                              .or_per_hb = 2,
                              .thermalization_sweeps = therm,
                              .sweeps_between_configs = sep});

  SpectroscopyParams sp;
  sp.propagator.kappa = kappa;
  sp.propagator.csw = csw;
  sp.propagator.solver.tol = 1e-9;
  sp.propagator.method = solver_kind;
  sp.plateau_t_min = 2;
  sp.plateau_t_max = std::max(3, T / 2 - 1);

  std::vector<std::vector<double>> pion_data, rho_data, nucleon_data;
  std::vector<double> mpi_per_cfg, mrho_per_cfg;
  for (int c = 0; c < n_configs; ++c) {
    const GaugeFieldD& u = gen.next_config();
    const SpectroscopyResult res = run_spectroscopy(u, sp);
    pion_data.push_back(res.pion.c);
    rho_data.push_back(res.rho.c);
    nucleon_data.push_back(res.nucleon.c);
    mpi_per_cfg.push_back(res.pion_mass.mass);
    mrho_per_cfg.push_back(res.rho_mass.mass);
    std::printf("config %2d: plaquette %.5f | %4d CG iters | "
                "m_pi %.3f  m_rho %.3f  m_N %.3f\n",
                c + 1, gen.plaquette(), res.solve_stats.total_iterations,
                res.pion_mass.mass, res.rho_mass.mass,
                res.nucleon_mass.mass);
  }

  std::printf("\nensemble-averaged correlators (jackknife errors):\n");
  const CorrelatorEstimate pion = jackknife_correlator(pion_data);
  const CorrelatorEstimate rho = jackknife_correlator(rho_data);
  const CorrelatorEstimate nuc = jackknife_correlator(nucleon_data);
  std::printf("%3s  %13s %10s  %13s  %13s\n", "t", "C_pi(t)", "err",
              "C_rho(t)", "C_N(t)");
  for (int t = 0; t < T; ++t) {
    std::printf("%3d  %13.6e %10.2e  %13.6e  %13.6e\n", t, pion.value[t],
                pion.error[t], rho.value[t], nuc.value[t]);
  }

  if (n_configs >= 2) {
    const auto mpi = jackknife_mean(mpi_per_cfg);
    const auto mrho = jackknife_mean(mrho_per_cfg);
    std::printf("\nhadron masses (lattice units):\n");
    std::printf("  m_pi  = %.4f +- %.4f\n", mpi.value, mpi.error);
    std::printf("  m_rho = %.4f +- %.4f\n", mrho.value, mrho.error);
    std::printf("  m_rho / m_pi = %.3f\n",
                mpi.value > 0 ? mrho.value / mpi.value : 0.0);
  }
  if (!out.empty()) {
    CorrelatorSet set;
    set.channels["pion"] = pion.value;
    set.channels["pion_err"] = pion.error;
    set.channels["rho"] = rho.value;
    set.channels["nucleon"] = nuc.value;
    save_correlators(set, out);
    std::printf("\ncorrelators written to %s\n", out.c_str());
  }
  if (kappa < 0.125)
    std::printf("\n(free-quark reference: 2 m_q = %.4f at this kappa)\n",
                2.0 * free_quark_mass(kappa));
  return 0;
}
