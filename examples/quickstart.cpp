// Quickstart: from nothing to a solved Dirac equation in ~40 lines of
// library calls.
//
//   ./quickstart [--L 8] [--T 8] [--beta 5.9] [--kappa 0.13]
//
// Generates a small quenched SU(3) configuration with the heatbath,
// builds the even-odd preconditioned Wilson operator, and solves
// M x = b with mixed-precision CG — printing what a user cares about:
// the plaquette, iteration counts and the true residual.

#include <cstdio>

#include "core/api.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "linalg/blas.hpp"
#include "solver/mixed_cg.hpp"
#include "spectro/source.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 8);
  const int T = cli.get_int("T", 8);
  const double beta = cli.get_double("beta", 5.9);
  const double kappa = cli.get_double("kappa", 0.13);
  cli.finish();

  std::printf("lqcd quickstart v%s — %d^3 x %d lattice, beta=%.2f, "
              "kappa=%.3f\n",
              version().string, L, L, T, beta, kappa);

  // 1. A thermalized gauge configuration.
  Context ctx({L, L, L, T}, /*seed=*/2013);
  EnsembleGenerator gen(ctx, {.beta = beta,
                              .or_per_hb = 2,
                              .thermalization_sweeps = 20,
                              .sweeps_between_configs = 0});
  const GaugeFieldD& u = gen.next_config();
  std::printf("thermalized: plaquette = %.5f\n", gen.plaquette());

  // 2. Even-odd preconditioned Wilson operator, double + float copies.
  GaugeFieldF uf(ctx.geometry());
  convert_gauge(uf, u);
  SchurWilsonOperator<double> shat_d(u, kappa);
  SchurWilsonOperator<float> shat_f(uf, kappa);
  NormalOperator<double> normal_d(shat_d);
  NormalOperator<float> normal_f(shat_f);

  // 3. Point source, Schur rhs, mixed-precision CG, reconstruction.
  FermionFieldD b(ctx.geometry()), x(ctx.geometry());
  make_point_source(b, {0, 0, 0, 0}, 0, 0);

  const auto hv = static_cast<std::size_t>(ctx.geometry().half_volume());
  aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
  shat_d.prepare_rhs({bhat.data(), hv}, b.span());
  apply_dagger_g5<double>(shat_d, {bhat2.data(), hv},
                          {bhat.data(), hv}, {tmp.data(), hv});

  MixedCgParams mp;
  mp.outer.tol = 1e-10;
  const SolverResult r = mixed_cg_solve(
      normal_d, normal_f, {xo.data(), hv},
      std::span<const WilsonSpinorD>(bhat2.data(), hv), mp);
  shat_d.reconstruct(x.span(), {xo.data(), hv}, b.span());

  // 4. Verify against the full operator — never trust a solver blindly.
  WilsonOperator<double> m(u, kappa);
  FermionFieldD check(ctx.geometry());
  m.apply(check.span(), x.span());
  double err = 0.0;
  for (std::int64_t s = 0; s < ctx.geometry().volume(); ++s)
    err += norm2(check[s] - b[s]);

  std::printf("mixed-precision CG: %d inner (float) iterations in %d "
              "outer cycles, %.3f s, %.1f GF/s\n",
              r.inner_iterations, r.outer_cycles, r.seconds,
              r.gflops_per_second());
  std::printf("true residual ||Mx - b|| = %.3e  (%s)\n", std::sqrt(err),
              r.converged ? "converged" : "NOT CONVERGED");
  return r.converged ? 0 : 1;
}
