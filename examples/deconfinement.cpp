// The deconfinement transition: scan the Polyakov loop across the
// finite-temperature transition on an N_t = 4 lattice.
//
//   ./deconfinement [--L 8] [--Nt 4] [--sweeps 60] [--measure 40]
//
// Below beta_c (~5.69 for N_t = 4) the Polyakov loop averages to zero
// (confinement: infinite free energy for an isolated quark); above it
// the Z(3) center symmetry breaks and |<L>| jumps — the same physics
// that confines the quarks whose binding energy is "the origin of mass".

#include <cmath>
#include <cstdio>
#include <vector>

#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "gauge/wilson_loops.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 8);
  const int nt = cli.get_int("Nt", 4);
  const int therm = cli.get_int("sweeps", 60);
  const int measure = cli.get_int("measure", 40);
  cli.finish();

  const LatticeGeometry geo({L, L, L, nt});
  std::printf("deconfinement scan on %d^3 x %d (beta_c ~ 5.69 for "
              "N_t = 4)\n\n",
              L, nt);
  std::printf("%6s %12s %12s %12s %14s\n", "beta", "<|L|>", "err",
              "<P>", "chi(2,2)");

  for (const double beta : {5.2, 5.5, 5.65, 5.75, 5.9, 6.2}) {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(77));
    Heatbath hb(u, {.beta = beta, .or_per_hb = 2, .seed = 78});
    for (int i = 0; i < therm; ++i) hb.sweep();
    std::vector<double> absl, plaq;
    for (int i = 0; i < measure; ++i) {
      hb.sweep();
      const Cplxd l = polyakov_loop(u);
      absl.push_back(std::sqrt(norm2(l)));
      plaq.push_back(average_plaquette(u));
    }
    double chi = 0.0;
    const auto loops = wilson_loop_table(u, 2, 2);
    bool chi_ok = true;
    try {
      chi = creutz_ratio(loops, 2, 2);
    } catch (const Error&) {
      chi_ok = false;  // loops too noisy at strong coupling
    }
    std::printf("%6.2f %12.4f %12.4f %12.5f %14s\n", beta, mean(absl),
                standard_error(absl), mean(plaq),
                chi_ok ? std::to_string(chi).c_str() : "n/a");
  }

  std::printf("\nReading: <|L|> is small (noise-level, falling with "
              "volume) in the confined phase and jumps across beta_c ~ "
              "5.69; the Creutz ratio (string tension estimate) drops as "
              "the system deconfines.\n");
  return 0;
}
