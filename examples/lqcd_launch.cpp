// lqcd_launch: multi-process SPMD launcher for the real transport
// backends — the moral equivalent of mpirun for this codebase.
//
//   lqcd_launch -n 4 -- ./dslash_rank --L 8 --T 8
//   lqcd_launch -n 4 --transport shm -- ./dslash_rank --L 8
//   lqcd_launch -n 4 --kill-rank 2 --kill-after-ms 300 -- ./lqcd_serve run ...
//   lqcd_launch -n 4 --die-rank 2 --die-after-tasks 3 -- ./lqcd_serve run ...
//
// Forks N ranks of the given command, wiring each one up through
// environment variables the child's make_transport_from_env() reads:
//
//   LQCD_TRANSPORT   socket | shm
//   LQCD_RANK        0..N-1
//   LQCD_SIZE        N
//   LQCD_REND_HOST / LQCD_REND_PORT   socket rendezvous (loopback)
//   LQCD_SHM_PATH    shared-memory segment file
//   LQCD_RECV_TIMEOUT_MS              receive-timeout safety net
//
// For the socket backend the launcher runs the rendezvous itself: each
// rank registers its listening port, and once all N have checked in the
// full port table goes back out and the ranks build their mesh. For the
// shared-memory backend the launcher creates and unlinks the segment,
// and marks ranks dead in its header as waitpid reaps them, so
// surviving ranks see the death promptly instead of blocking on a ring.
//
// Fault drills, which CI uses to prove the PR-1 retransmit and PR-7
// lane-recovery paths fire on *real* process deaths:
//   --kill-rank R --kill-after-ms M   SIGKILL rank R after M ms
//   --die-rank R --die-after-tasks K  rank R self-exits after K tasks
//                                     (sets LQCD_WORKER_DIE_AFTER=K in
//                                     that rank's environment only)
//
// Exit code: 0 if every rank not intentionally killed exited 0;
// otherwise the first failing rank's code (or 128+signal).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "comm/transport/shm.hpp"
#include "comm/transport/socket.hpp"
#include "util/error.hpp"

namespace {

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: lqcd_launch -n N [--transport socket|shm]\n"
      "                   [--shm-ring-bytes B] [--recv-timeout-ms T]\n"
      "                   [--kill-rank R --kill-after-ms M]\n"
      "                   [--die-rank R --die-after-tasks K]\n"
      "                   -- <binary> [args...]\n");
  std::exit(2);
}

int to_int(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') usage_and_exit();
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  int n = 0;
  std::string transport = "socket";
  long shm_ring_bytes = lqcd::transport::kShmDefaultRingBytes;
  int recv_timeout_ms = 0;
  int kill_rank = -1;
  int kill_after_ms = 0;
  int die_rank = -1;
  int die_after_tasks = -1;
  int child_argv_at = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (a == "--") {
      child_argv_at = i + 1;
      break;
    } else if (a == "-n" || a == "--np") {
      n = to_int(next());
    } else if (a == "--transport") {
      transport = next();
    } else if (a == "--shm-ring-bytes") {
      shm_ring_bytes = to_int(next());
    } else if (a == "--recv-timeout-ms") {
      recv_timeout_ms = to_int(next());
    } else if (a == "--kill-rank") {
      kill_rank = to_int(next());
    } else if (a == "--kill-after-ms") {
      kill_after_ms = to_int(next());
    } else if (a == "--die-rank") {
      die_rank = to_int(next());
    } else if (a == "--die-after-tasks") {
      die_after_tasks = to_int(next());
    } else {
      std::fprintf(stderr, "lqcd_launch: unknown option '%s'\n", a.c_str());
      usage_and_exit();
    }
  }
  if (n <= 0 || child_argv_at < 0 || child_argv_at >= argc)
    usage_and_exit();
  if (transport != "socket" && transport != "shm") {
    std::fprintf(stderr, "lqcd_launch: bad --transport '%s'\n",
                 transport.c_str());
    usage_and_exit();
  }

  // Rendezvous / segment setup (before any fork).
  int rend_fd = -1;
  int rend_port = 0;
  std::string shm_path;
  if (transport == "socket") {
    rend_fd = lqcd::transport::listen_loopback(rend_port);
  } else {
    shm_path = "/tmp/lqcd_shm." + std::to_string(getpid());
    lqcd::transport::shm_create(
        shm_path, n, static_cast<std::uint32_t>(shm_ring_bytes));
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("lqcd_launch: fork");
      return 1;
    }
    if (pid == 0) {
      setenv("LQCD_TRANSPORT", transport.c_str(), 1);
      setenv("LQCD_RANK", std::to_string(r).c_str(), 1);
      setenv("LQCD_SIZE", std::to_string(n).c_str(), 1);
      if (transport == "socket") {
        close(rend_fd);  // only the parent serves the rendezvous
        setenv("LQCD_REND_HOST", "127.0.0.1", 1);
        setenv("LQCD_REND_PORT", std::to_string(rend_port).c_str(), 1);
      } else {
        setenv("LQCD_SHM_PATH", shm_path.c_str(), 1);
      }
      if (recv_timeout_ms > 0)
        setenv("LQCD_RECV_TIMEOUT_MS",
               std::to_string(recv_timeout_ms).c_str(), 1);
      if (r == die_rank && die_after_tasks >= 0)
        setenv("LQCD_WORKER_DIE_AFTER",
               std::to_string(die_after_tasks).c_str(), 1);
      execvp(argv[child_argv_at], argv + child_argv_at);
      std::perror("lqcd_launch: execvp");
      _exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  if (transport == "socket") {
    try {
      lqcd::transport::rendezvous_serve(rend_fd, n);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lqcd_launch: rendezvous failed: %s\n",
                   e.what());
      for (const pid_t p : pids) kill(p, SIGKILL);
    }
    close(rend_fd);
  }

  std::thread killer;
  if (kill_rank >= 0 && kill_rank < n) {
    const pid_t victim = pids[static_cast<std::size_t>(kill_rank)];
    killer = std::thread([victim, kill_after_ms] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kill_after_ms));
      kill(victim, SIGKILL);
    });
  }

  int exit_code = 0;
  for (int reaped = 0; reaped < n; ++reaped) {
    int status = 0;
    const pid_t pid = wait(&status);
    if (pid < 0) break;
    int r = -1;
    for (int i = 0; i < n; ++i)
      if (pids[static_cast<std::size_t>(i)] == pid) r = i;
    if (transport == "shm")
      lqcd::transport::shm_mark_dead(shm_path, r);  // unblock survivors
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
      std::fprintf(stderr, "lqcd_launch: rank %d exited with code %d\n", r,
                   code);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
      std::fprintf(stderr, "lqcd_launch: rank %d killed by signal %d\n", r,
                   WTERMSIG(status));
    }
    const bool intentional = r == kill_rank || r == die_rank;
    if (code != 0 && !intentional && exit_code == 0) exit_code = code;
  }
  if (killer.joinable()) killer.join();
  if (!shm_path.empty()) unlink(shm_path.c_str());
  return exit_code;
}
