#pragma once
// Quark sources for spectroscopy. A source fixes one (spin, color) of the
// 12 propagator columns; the full propagator needs all 12.
//
// SourceSpec is the one description of a source that the spectroscopy
// API, the campaign service and the benches all share, so a campaign
// spec string like "point:0,0,0,0" or "wall:3" means the same thing
// everywhere.

#include <string>
#include <string_view>

#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"

namespace lqcd {

/// Delta-function source at `point` for (spin, color).
void make_point_source(FermionFieldD& b, const Coord& point, int spin,
                       int color);

/// Wall source on timeslice t0 for (spin, color): 1 on every spatial site
/// (gauge-variant; used on smeared/fixed configs or for free-field checks).
void make_wall_source(FermionFieldD& b, int t0, int spin, int color);

/// Gaussian (Wuppertal) smearing of an existing source:
///   b <- (1 + alpha H)^n b,  H the spatial hopping with links `u`,
/// normalized each step. Improves ground-state overlap.
void smear_source(FermionFieldD& b, const GaugeFieldD& u, double alpha,
                  int iterations);

enum class SourceKind { Point, Wall };

/// Declarative source description shared by spectroscopy, benches and
/// the campaign service. The text form round-trips through
/// parse_source_spec()/to_string():
///
///   point:X,Y,Z,T                delta source at (X,Y,Z,T)
///   wall:T0                      wall on timeslice T0
///   ...+smear:ALPHA,N            Wuppertal-smear the base source
struct SourceSpec {
  SourceKind kind = SourceKind::Point;
  Coord point{0, 0, 0, 0};   ///< Point: source location
  int t0 = 0;                ///< Wall: timeslice
  double smear_alpha = 0.0;  ///< smearing strength (used when iters > 0)
  int smear_iters = 0;       ///< 0 = no smearing
};

[[nodiscard]] std::string to_string(const SourceSpec& spec);

/// Parse the text form above; throws lqcd::Error on malformed input.
[[nodiscard]] SourceSpec parse_source_spec(std::string_view text);

/// Build column (spin, color) of the source described by `spec`.
/// Smearing needs the gauge links; passing u == nullptr with a smeared
/// spec throws.
void make_source(FermionFieldD& b, const SourceSpec& spec, int spin,
                 int color, const GaugeFieldD* u = nullptr);

}  // namespace lqcd
