#pragma once
// Quark sources for spectroscopy. A source fixes one (spin, color) of the
// 12 propagator columns; the full propagator needs all 12.

#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"

namespace lqcd {

/// Delta-function source at `point` for (spin, color).
void make_point_source(FermionFieldD& b, const Coord& point, int spin,
                       int color);

/// Wall source on timeslice t0 for (spin, color): 1 on every spatial site
/// (gauge-variant; used on smeared/fixed configs or for free-field checks).
void make_wall_source(FermionFieldD& b, int t0, int spin, int color);

/// Gaussian (Wuppertal) smearing of an existing source:
///   b <- (1 + alpha H)^n b,  H the spatial hopping with links `u`,
/// normalized each step. Improves ground-state overlap.
void smear_source(FermionFieldD& b, const GaugeFieldD& u, double alpha,
                  int iterations);

}  // namespace lqcd
