#include "spectro/io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace lqcd {

void save_correlators(const CorrelatorSet& set, const std::string& path) {
  LQCD_REQUIRE(!set.channels.empty(), "no channels to save");
  const std::size_t nt = set.timeslices();
  for (const auto& [name, values] : set.channels) {
    LQCD_REQUIRE(values.size() == nt, "ragged channel: " + name);
    LQCD_REQUIRE(name.find_first_of(" \t\n") == std::string::npos,
                 "channel names must not contain whitespace: " + name);
  }

  std::ofstream os(path, std::ios::trunc);
  LQCD_REQUIRE(os.good(), "cannot open for write: " + path);
  os << "# t";
  for (const auto& [name, values] : set.channels) os << '\t' << name;
  os << '\n';
  os.precision(17);
  for (std::size_t t = 0; t < nt; ++t) {
    os << t;
    for (const auto& [name, values] : set.channels)
      os << '\t' << values[t];
    os << '\n';
  }
  LQCD_REQUIRE(os.good(), "write failed: " + path);
}

CorrelatorSet load_correlators(const std::string& path) {
  std::ifstream is(path);
  LQCD_REQUIRE(is.good(), "cannot open: " + path);

  std::string header;
  std::getline(is, header);
  LQCD_REQUIRE(header.rfind("# t", 0) == 0,
               "not a correlator file: " + path);
  std::istringstream hs(header.substr(3));
  std::vector<std::string> names;
  std::string name;
  while (hs >> name) names.push_back(name);
  LQCD_REQUIRE(!names.empty(), "no channels in header: " + path);

  CorrelatorSet set;
  for (const auto& nm : names) set.channels[nm] = {};
  std::string line;
  std::size_t expect_t = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::size_t t = 0;
    LQCD_REQUIRE(static_cast<bool>(ls >> t), "bad row in " + path);
    LQCD_REQUIRE(t == expect_t, "non-contiguous timeslices in " + path);
    ++expect_t;
    for (const auto& nm : names) {
      double v = 0.0;
      LQCD_REQUIRE(static_cast<bool>(ls >> v),
                   "missing value for " + nm + " in " + path);
      set.channels[nm].push_back(v);
    }
  }
  LQCD_REQUIRE(expect_t > 0, "empty correlator file: " + path);
  return set;
}

}  // namespace lqcd
