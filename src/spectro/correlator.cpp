#include "spectro/correlator.hpp"

#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

namespace {

struct SpinEntry {
  int r, c;
  Cplxd v;
};

std::vector<SpinEntry> nonzeros(const SpinMatrix& m, double eps = 1e-14) {
  std::vector<SpinEntry> out;
  for (int r = 0; r < Ns; ++r)
    for (int c = 0; c < Ns; ++c)
      if (norm2(m.m[r][c]) > eps * eps) out.push_back({r, c, m.m[r][c]});
  return out;
}

// Accumulate per-timeslice sums body(cb) -> Cplxd into c[t_rel].
template <typename Body>
void timeslice_sum(const LatticeGeometry& geo, int t0,
                   std::vector<Cplxd>& c, Body&& body) {
  const int lt = geo.dim(3);
  c.assign(static_cast<std::size_t>(lt), Cplxd{});
  ThreadPool& pool = ThreadPool::global();
  std::vector<std::vector<Cplxd>> partial(
      pool.size(), std::vector<Cplxd>(static_cast<std::size_t>(lt)));
  pool.run_chunks(static_cast<std::size_t>(geo.volume()),
                  [&](std::size_t lo, std::size_t hi, std::size_t tid) {
                    auto& acc = partial[tid];
                    for (std::size_t s = lo; s < hi; ++s) {
                      const auto cb = static_cast<std::int64_t>(s);
                      const int t = geo.coords(cb)[3];
                      const int trel = (t - t0 + lt) % lt;
                      acc[static_cast<std::size_t>(trel)] += body(cb);
                    }
                  });
  for (const auto& p : partial)
    for (int t = 0; t < lt; ++t) c[static_cast<std::size_t>(t)] +=
        p[static_cast<std::size_t>(t)];
}

Correlator pack(const std::vector<Cplxd>& c) {
  Correlator out;
  out.c.reserve(c.size());
  out.c_imag.reserve(c.size());
  for (const auto& z : c) {
    out.c.push_back(z.re);
    out.c_imag.push_back(z.im);
  }
  return out;
}

}  // namespace

Correlator meson_correlator(const Propagator& s, const SpinMatrix& gamma_snk,
                            const SpinMatrix& gamma_src, int t0) {
  const LatticeGeometry& geo = s.geometry();
  LQCD_REQUIRE(t0 >= 0 && t0 < geo.dim(3), "source time out of range");

  // C = sum_x Tr[G_snk S G_src g5 S^† g5]
  //   = sum A[f][b] B[c][e] S_{(c,l)}[b,k] conj(S_{(e,l)}[f,k]),
  // with A = g5 G_snk, B = G_src g5.
  const SpinMatrix a = mul(gamma_matrix(4), gamma_snk);
  const SpinMatrix b = mul(gamma_src, gamma_matrix(4));
  const auto a_nz = nonzeros(a);
  const auto b_nz = nonzeros(b);

  std::vector<Cplxd> c;
  timeslice_sum(geo, t0, c, [&](std::int64_t cb) {
    Cplxd acc{};
    for (int kappa = 0; kappa < Nc; ++kappa)
      for (int lambda = 0; lambda < Nc; ++lambda)
        for (const auto& eb : b_nz)        // eb: B[c][e]
          for (const auto& ea : a_nz) {    // ea: A[f][b]
            const Cplxd s1 = s.element(cb, ea.c, kappa, eb.r, lambda);
            const Cplxd s2 = s.element(cb, ea.r, kappa, eb.c, lambda);
            acc += eb.v * ea.v * mul_conj(s1, s2);
          }
    return acc;
  });
  return pack(c);
}

Correlator pion_correlator(const Propagator& s, int t0) {
  return meson_correlator(s, gamma_matrix(4), gamma_matrix(4), t0);
}

Correlator rho_correlator(const Propagator& s, int t0) {
  Correlator sum;
  for (int i = 0; i < 3; ++i) {
    const Correlator ci =
        meson_correlator(s, gamma_matrix(i), gamma_matrix(i), t0);
    if (sum.c.empty()) {
      sum = ci;
    } else {
      for (std::size_t t = 0; t < sum.c.size(); ++t) {
        sum.c[t] += ci.c[t];
        sum.c_imag[t] += ci.c_imag[t];
      }
    }
  }
  for (auto& v : sum.c) v /= 3.0;
  for (auto& v : sum.c_imag) v /= 3.0;
  return sum;
}

Correlator scalar_correlator(const Propagator& s, int t0) {
  return meson_correlator(s, gamma_matrix(5), gamma_matrix(5), t0);
}

Correlator nucleon_correlator(const Propagator& s, int t0) {
  const LatticeGeometry& geo = s.geometry();
  LQCD_REQUIRE(t0 >= 0 && t0 < geo.dim(3), "source time out of range");

  // Proton interpolator O_alpha = eps_abc (C g5)_{gd} u^a_alpha u^b_g d^c_d
  // with C = g4 g2. Wick expansion for degenerate u, d gives two terms:
  //   T1 = + G[g][d] Gb[g'][d'] P[beta][alpha]
  //          S_{alpha beta}^{a a'} S_{g g'}^{b b'} S_{d d'}^{c c'}
  //   T2 = - G[g][d] Gb[g'][d'] P[beta][alpha]
  //          S_{alpha g'}^{a b'} S_{g beta}^{b a'} S_{d d'}^{c c'}
  // summed over eps_abc eps_a'b'c' with signs; Gb = g4 G^† g4,
  // P = (1 + g4)/2 the positive-parity projector.
  const SpinMatrix cmat = mul(gamma_matrix(3), gamma_matrix(1));
  const SpinMatrix g = mul(cmat, gamma_matrix(4));
  const SpinMatrix gb =
      mul(mul(gamma_matrix(3), adjoint(g)), gamma_matrix(3));
  const SpinMatrix p = scale(
      Cplxd(0.5), add(gamma_matrix(5), gamma_matrix(3)));

  const auto g_nz = nonzeros(g);
  const auto gb_nz = nonzeros(gb);
  const auto p_nz = nonzeros(p);

  // Epsilon tensor: the 6 permutations with signs.
  struct Eps {
    int a, b, c;
    double sign;
  };
  static constexpr Eps kEps[6] = {{0, 1, 2, 1.0},  {1, 2, 0, 1.0},
                                  {2, 0, 1, 1.0},  {0, 2, 1, -1.0},
                                  {2, 1, 0, -1.0}, {1, 0, 2, -1.0}};

  std::vector<Cplxd> c;
  timeslice_sum(geo, t0, c, [&](std::int64_t cb) {
    Cplxd acc{};
    for (const auto& e1 : kEps)
      for (const auto& e2 : kEps) {
        const double sign = e1.sign * e2.sign;
        for (const auto& ge : g_nz)          // G[g][d]
          for (const auto& gbe : gb_nz)      // Gb[g'][d']
            for (const auto& pe : p_nz) {    // P[beta][alpha]
              const Cplxd w = Cplxd(sign) * ge.v * gbe.v * pe.v;
              const Cplxd s3 =
                  s.element(cb, ge.c, e1.c, gbe.c, e2.c);  // S_dd'^cc'
              // T1
              const Cplxd t1 =
                  s.element(cb, pe.c, e1.a, pe.r, e2.a) *   // S_ab^aa'
                  s.element(cb, ge.r, e1.b, gbe.r, e2.b);   // S_gg'^bb'
              // T2
              const Cplxd t2 =
                  s.element(cb, pe.c, e1.a, gbe.r, e2.b) *  // S_ag'^ab'
                  s.element(cb, ge.r, e1.b, pe.r, e2.a);    // S_gb^ba'
              acc += w * (t1 - t2) * s3;
            }
      }
    return acc;
  });
  return pack(c);
}

Correlator meson_correlator_momentum(const Propagator& s,
                                     const SpinMatrix& gamma_snk,
                                     const SpinMatrix& gamma_src, int t0,
                                     const std::array<int, 3>& n) {
  const LatticeGeometry& geo = s.geometry();
  LQCD_REQUIRE(t0 >= 0 && t0 < geo.dim(3), "source time out of range");

  const SpinMatrix a = mul(gamma_matrix(4), gamma_snk);
  const SpinMatrix b = mul(gamma_src, gamma_matrix(4));
  const auto a_nz = nonzeros(a);
  const auto b_nz = nonzeros(b);

  double p[3];
  for (int i = 0; i < 3; ++i)
    p[i] = 2.0 * 3.14159265358979323846 * n[static_cast<std::size_t>(i)] /
           geo.dim(i);

  std::vector<Cplxd> c;
  timeslice_sum(geo, t0, c, [&](std::int64_t cb) {
    const Coord x = geo.coords(cb);
    const double phase = -(p[0] * x[0] + p[1] * x[1] + p[2] * x[2]);
    const Cplxd ph(std::cos(phase), std::sin(phase));
    Cplxd acc{};
    for (int kappa = 0; kappa < Nc; ++kappa)
      for (int lambda = 0; lambda < Nc; ++lambda)
        for (const auto& eb : b_nz)
          for (const auto& ea : a_nz) {
            const Cplxd s1 = s.element(cb, ea.c, kappa, eb.r, lambda);
            const Cplxd s2 = s.element(cb, ea.r, kappa, eb.c, lambda);
            acc += eb.v * ea.v * mul_conj(s1, s2);
          }
    return ph * acc;
  });
  return pack(c);
}

Correlator pion_correlator_momentum(const Propagator& s, int t0,
                                    const std::array<int, 3>& n) {
  return meson_correlator_momentum(s, gamma_matrix(4), gamma_matrix(4), t0,
                                   n);
}

}  // namespace lqcd
