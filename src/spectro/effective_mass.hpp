#pragma once
// Effective masses and plateau extraction from correlator data.

#include <vector>

namespace lqcd {

/// Log effective mass m(t) = ln(C(t)/C(t+1)). Entries where the ratio is
/// non-positive are returned as NaN.
std::vector<double> effective_mass_log(const std::vector<double>& c);

/// Cosh effective mass: solves
///   C(t)/C(t+1) = cosh(m (t - T/2)) / cosh(m (t + 1 - T/2))
/// by bisection — correct for correlators symmetric about T/2
/// (mesons with (anti)periodic time). NaN where unsolvable.
std::vector<double> effective_mass_cosh(const std::vector<double>& c);

/// Average the effective mass over a plateau window [t_min, t_max],
/// skipping NaNs. Returns {mass, spread} where spread is the max-min over
/// the window (a crude but assumption-free plateau-quality measure).
struct PlateauEstimate {
  double mass = 0.0;
  double spread = 0.0;
  int points = 0;
};
PlateauEstimate plateau_mass(const std::vector<double>& m_eff, int t_min,
                             int t_max);

/// Fold a symmetric (cosh) correlator about T/2: returns length T/2+1.
std::vector<double> fold_correlator(const std::vector<double>& c);

}  // namespace lqcd
