#include "spectro/source.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

namespace {

/// Split "head+smear:alpha,n" into head and the optional smear suffix.
void parse_smear_suffix(std::string_view& text, SourceSpec& spec) {
  const auto plus = text.find('+');
  if (plus == std::string_view::npos) return;
  std::string_view tail = text.substr(plus + 1);
  text = text.substr(0, plus);
  LQCD_REQUIRE(tail.rfind("smear:", 0) == 0,
               "source spec: expected +smear:ALPHA,N suffix");
  tail.remove_prefix(6);
  const auto comma = tail.find(',');
  LQCD_REQUIRE(comma != std::string_view::npos,
               "source spec: smear needs ALPHA,N");
  spec.smear_alpha = std::atof(std::string(tail.substr(0, comma)).c_str());
  spec.smear_iters = std::atoi(std::string(tail.substr(comma + 1)).c_str());
  LQCD_REQUIRE(spec.smear_alpha > 0.0 && spec.smear_iters > 0,
               "source spec: smear wants ALPHA > 0 and N > 0");
}

}  // namespace

std::string to_string(const SourceSpec& spec) {
  char buf[96];
  int n = 0;
  if (spec.kind == SourceKind::Point)
    n = std::snprintf(buf, sizeof buf, "point:%d,%d,%d,%d", spec.point[0],
                      spec.point[1], spec.point[2], spec.point[3]);
  else
    n = std::snprintf(buf, sizeof buf, "wall:%d", spec.t0);
  if (spec.smear_iters > 0)
    std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                  "+smear:%g,%d", spec.smear_alpha, spec.smear_iters);
  return buf;
}

SourceSpec parse_source_spec(std::string_view text) {
  SourceSpec spec;
  parse_smear_suffix(text, spec);
  if (text.rfind("point:", 0) == 0) {
    spec.kind = SourceKind::Point;
    std::string rest(text.substr(6));
    int x[Nd];
    char extra;
    LQCD_REQUIRE(std::sscanf(rest.c_str(), "%d,%d,%d,%d%c", &x[0], &x[1],
                             &x[2], &x[3], &extra) == Nd,
                 "source spec: point wants X,Y,Z,T, got '" + rest + "'");
    for (int mu = 0; mu < Nd; ++mu) spec.point[mu] = x[mu];
  } else if (text.rfind("wall:", 0) == 0) {
    spec.kind = SourceKind::Wall;
    std::string rest(text.substr(5));
    char extra;
    LQCD_REQUIRE(std::sscanf(rest.c_str(), "%d%c", &spec.t0, &extra) == 1,
                 "source spec: wall wants T0, got '" + rest + "'");
  } else {
    throw Error("unknown source spec '" + std::string(text) +
                "' (valid: point:X,Y,Z,T, wall:T0, optional +smear:ALPHA,N)");
  }
  return spec;
}

void make_source(FermionFieldD& b, const SourceSpec& spec, int spin,
                 int color, const GaugeFieldD* u) {
  if (spec.kind == SourceKind::Point)
    make_point_source(b, spec.point, spin, color);
  else
    make_wall_source(b, spec.t0, spin, color);
  if (spec.smear_iters > 0) {
    LQCD_REQUIRE(u != nullptr, "smeared source needs the gauge field");
    smear_source(b, *u, spec.smear_alpha, spec.smear_iters);
  }
}

void make_point_source(FermionFieldD& b, const Coord& point, int spin,
                       int color) {
  LQCD_REQUIRE(spin >= 0 && spin < Ns && color >= 0 && color < Nc,
               "source spin/color out of range");
  const LatticeGeometry& geo = b.geometry();
  for (int mu = 0; mu < Nd; ++mu)
    LQCD_REQUIRE(point[mu] >= 0 && point[mu] < geo.dim(mu),
                 "source point outside the lattice");
  b.set_zero();
  b[geo.cb_index(point)].s[spin].c[color] = Cplxd(1.0);
}

void make_wall_source(FermionFieldD& b, int t0, int spin, int color) {
  LQCD_REQUIRE(spin >= 0 && spin < Ns && color >= 0 && color < Nc,
               "source spin/color out of range");
  const LatticeGeometry& geo = b.geometry();
  LQCD_REQUIRE(t0 >= 0 && t0 < geo.dim(3), "wall timeslice out of range");
  b.set_zero();
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    if (geo.coords(s)[3] == t0) b[s].s[spin].c[color] = Cplxd(1.0);
}

void smear_source(FermionFieldD& b, const GaugeFieldD& u, double alpha,
                  int iterations) {
  LQCD_REQUIRE(b.geometry() == u.geometry(), "smear_source geometry");
  const LatticeGeometry& geo = b.geometry();
  const std::int64_t vol = geo.volume();
  FermionFieldD tmp(geo);
  for (int it = 0; it < iterations; ++it) {
    parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
      const auto cb = static_cast<std::int64_t>(s);
      WilsonSpinorD acc = b[cb];
      for (int mu = 0; mu < 3; ++mu) {  // spatial hops only
        const std::int64_t xp = geo.fwd(cb, mu);
        const std::int64_t xm = geo.bwd(cb, mu);
        WilsonSpinorD hop = mul(u(cb, mu), b[xp]);
        hop += adj_mul(u(xm, mu), b[xm]);
        hop *= alpha;
        acc += hop;
      }
      tmp[cb] = acc;
    });
    // Normalize to keep amplitudes O(1).
    double n2 = 0.0;
    for (std::int64_t s = 0; s < vol; ++s) n2 += norm2(tmp[s]);
    const double inv = n2 > 0.0 ? 1.0 / std::sqrt(n2) : 1.0;
    parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
      WilsonSpinorD v = tmp[static_cast<std::int64_t>(s)];
      v *= inv;
      b[static_cast<std::int64_t>(s)] = v;
    });
  }
}

}  // namespace lqcd
