#include "spectro/source.hpp"

#include <cmath>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

void make_point_source(FermionFieldD& b, const Coord& point, int spin,
                       int color) {
  LQCD_REQUIRE(spin >= 0 && spin < Ns && color >= 0 && color < Nc,
               "source spin/color out of range");
  const LatticeGeometry& geo = b.geometry();
  for (int mu = 0; mu < Nd; ++mu)
    LQCD_REQUIRE(point[mu] >= 0 && point[mu] < geo.dim(mu),
                 "source point outside the lattice");
  b.set_zero();
  b[geo.cb_index(point)].s[spin].c[color] = Cplxd(1.0);
}

void make_wall_source(FermionFieldD& b, int t0, int spin, int color) {
  LQCD_REQUIRE(spin >= 0 && spin < Ns && color >= 0 && color < Nc,
               "source spin/color out of range");
  const LatticeGeometry& geo = b.geometry();
  LQCD_REQUIRE(t0 >= 0 && t0 < geo.dim(3), "wall timeslice out of range");
  b.set_zero();
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    if (geo.coords(s)[3] == t0) b[s].s[spin].c[color] = Cplxd(1.0);
}

void smear_source(FermionFieldD& b, const GaugeFieldD& u, double alpha,
                  int iterations) {
  LQCD_REQUIRE(b.geometry() == u.geometry(), "smear_source geometry");
  const LatticeGeometry& geo = b.geometry();
  const std::int64_t vol = geo.volume();
  FermionFieldD tmp(geo);
  for (int it = 0; it < iterations; ++it) {
    parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
      const auto cb = static_cast<std::int64_t>(s);
      WilsonSpinorD acc = b[cb];
      for (int mu = 0; mu < 3; ++mu) {  // spatial hops only
        const std::int64_t xp = geo.fwd(cb, mu);
        const std::int64_t xm = geo.bwd(cb, mu);
        WilsonSpinorD hop = mul(u(cb, mu), b[xp]);
        hop += adj_mul(u(xm, mu), b[xm]);
        hop *= alpha;
        acc += hop;
      }
      tmp[cb] = acc;
    });
    // Normalize to keep amplitudes O(1).
    double n2 = 0.0;
    for (std::int64_t s = 0; s < vol; ++s) n2 += norm2(tmp[s]);
    const double inv = n2 > 0.0 ? 1.0 / std::sqrt(n2) : 1.0;
    parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
      WilsonSpinorD v = tmp[static_cast<std::int64_t>(s)];
      v *= inv;
      b[static_cast<std::int64_t>(s)] = v;
    });
  }
}

}  // namespace lqcd
