#include "spectro/propagator.hpp"

#include <algorithm>
#include <vector>

#include "linalg/blas.hpp"
#include "spectro/source.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

Propagator::Propagator(const LatticeGeometry& geo) : geo_(&geo) {
  for (auto& c : columns_) c = std::make_unique<FermionFieldD>(geo);
}

PropagatorStats compute_propagator(
    Propagator& out, const GaugeFieldD& u, const PropagatorParams& params,
    const std::function<void(FermionFieldD&, int, int)>& make_source) {
  PropagatorStats stats;
  WallTimer timer;
  const LatticeGeometry& geo = u.geometry();
  const int ncol = Ns * Nc;
  const int block = std::clamp(params.block, 1, ncol);

  // One solver for all 12 columns. Setup-heavy methods (mg) pay their
  // setup here, once, and reuse it per column.
  SolverConfig cfg;
  cfg.kappa = params.kappa;
  cfg.csw = params.csw;
  cfg.bc = params.bc;
  cfg.base = params.solver;
  cfg.mg = params.mg_params;
  const std::unique_ptr<BlockSolver> solver =
      make_block_solver(u, params.method, cfg, block);

  // Batch the 12 columns into ceil(12 / block) solves.
  std::vector<std::unique_ptr<FermionFieldD>> b(
      static_cast<std::size_t>(block));
  for (auto& f : b) f = std::make_unique<FermionFieldD>(geo);
  for (int col0 = 0; col0 < ncol; col0 += block) {
    const int nrhs = std::min(block, ncol - col0);
    std::vector<SpinorSpanD> xs(static_cast<std::size_t>(nrhs));
    std::vector<CSpinorSpanD> bs(static_cast<std::size_t>(nrhs));
    for (int j = 0; j < nrhs; ++j) {
      const int s0 = (col0 + j) / Nc, c0 = (col0 + j) % Nc;
      make_source(*b[static_cast<std::size_t>(j)], s0, c0);
      FermionFieldD& x = out.column(s0, c0);
      blas::zero(x.span());
      xs[static_cast<std::size_t>(j)] = x.span();
      auto sp = b[static_cast<std::size_t>(j)]->span();
      bs[static_cast<std::size_t>(j)] = CSpinorSpanD(sp.data(), sp.size());
    }
    const std::vector<SolverResult> results = solver->solve(xs, bs);
    for (int j = 0; j < nrhs; ++j) {
      const SolverResult& r = results[static_cast<std::size_t>(j)];
      const int s0 = (col0 + j) / Nc, c0 = (col0 + j) % Nc;
      stats.total_iterations += r.iterations;
      stats.worst_residual =
          std::max(stats.worst_residual, r.relative_residual);
      stats.converged = stats.converged && r.converged;
      if (!r.converged)
        log_warn("propagator column (", s0, ",", c0,
                 ") did not converge: rel=", r.relative_residual);
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

PropagatorStats compute_propagator(Propagator& out, const GaugeFieldD& u,
                                   const PropagatorParams& params,
                                   const SourceSpec& spec) {
  return compute_propagator(
      out, u, params, [&](FermionFieldD& b, int s0, int c0) {
        make_source(b, spec, s0, c0, &u);
      });
}

PropagatorStats compute_point_propagator(Propagator& out,
                                         const GaugeFieldD& u,
                                         const PropagatorParams& params,
                                         const Coord& point) {
  return compute_propagator(
      out, u, params, [&](FermionFieldD& b, int s0, int c0) {
        make_point_source(b, point, s0, c0);
      });
}

}  // namespace lqcd
