#include "spectro/propagator.hpp"

#include <algorithm>

#include "dirac/clover.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "spectro/source.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

Propagator::Propagator(const LatticeGeometry& geo) : geo_(&geo) {
  for (auto& c : columns_) c = std::make_unique<FermionFieldD>(geo);
}

namespace {
// Shared solve path: even-odd Schur + CG on the normal equations.
template <typename SchurOp>
PropagatorStats solve_all_columns(
    Propagator& out, const SchurOp& shat, const SolverParams& solver,
    const std::function<void(FermionFieldD&, int, int)>& make_source,
    const LatticeGeometry& geo) {
  PropagatorStats stats;
  WallTimer timer;
  NormalOperator<double> nhat(shat);
  const auto hv = static_cast<std::size_t>(geo.half_volume());

  FermionFieldD b(geo);
  aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);

  for (int s0 = 0; s0 < Ns; ++s0)
    for (int c0 = 0; c0 < Nc; ++c0) {
      make_source(b, s0, c0);
      shat.prepare_rhs(std::span<WilsonSpinorD>(bhat.data(), hv), b.span());
      apply_dagger_g5<double>(
          shat, std::span<WilsonSpinorD>(bhat2.data(), hv),
          std::span<const WilsonSpinorD>(bhat.data(), hv),
          std::span<WilsonSpinorD>(tmp.data(), hv));
      std::fill(xo.begin(), xo.end(), WilsonSpinorD{});
      const SolverResult r = cg_solve<double>(
          nhat, std::span<WilsonSpinorD>(xo.data(), hv),
          std::span<const WilsonSpinorD>(bhat2.data(), hv), solver);
      stats.total_iterations += r.iterations;
      stats.worst_residual =
          std::max(stats.worst_residual, r.relative_residual);
      stats.converged = stats.converged && r.converged;
      if (!r.converged)
        log_warn("propagator column (", s0, ",", c0,
                 ") did not converge: rel=", r.relative_residual);
      shat.reconstruct(out.column(s0, c0).span(),
                       std::span<const WilsonSpinorD>(xo.data(), hv),
                       b.span());
    }
  stats.seconds = timer.seconds();
  return stats;
}
}  // namespace

PropagatorStats compute_propagator(
    Propagator& out, const GaugeFieldD& u, const PropagatorParams& params,
    const std::function<void(FermionFieldD&, int, int)>& make_source) {
  const LatticeGeometry& geo = u.geometry();
  if (params.csw > 0.0) {
    SchurCloverOperator<double> shat(
        u, u, {.kappa = params.kappa, .csw = params.csw, .bc = params.bc});
    return solve_all_columns(out, shat, params.solver, make_source, geo);
  }
  SchurWilsonOperator<double> shat(u, params.kappa, params.bc);
  return solve_all_columns(out, shat, params.solver, make_source, geo);
}

PropagatorStats compute_point_propagator(Propagator& out,
                                         const GaugeFieldD& u,
                                         const PropagatorParams& params,
                                         const Coord& point) {
  return compute_propagator(
      out, u, params, [&](FermionFieldD& b, int s0, int c0) {
        make_point_source(b, point, s0, c0);
      });
}

}  // namespace lqcd
