#include "spectro/propagator.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "spectro/source.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

Propagator::Propagator(const LatticeGeometry& geo) : geo_(&geo) {
  for (auto& c : columns_) c = std::make_unique<FermionFieldD>(geo);
}

PropagatorStats compute_propagator(
    Propagator& out, const GaugeFieldD& u, const PropagatorParams& params,
    const std::function<void(FermionFieldD&, int, int)>& make_source) {
  PropagatorStats stats;
  WallTimer timer;
  const LatticeGeometry& geo = u.geometry();

  // One solver for all 12 columns. Setup-heavy methods (mg) pay their
  // setup here, once, and reuse it per column.
  SolverConfig cfg;
  cfg.kappa = params.kappa;
  cfg.csw = params.csw;
  cfg.bc = params.bc;
  cfg.base = params.solver;
  cfg.mg = params.mg_params;
  const std::unique_ptr<FullSolver> solver =
      make_solver(u, params.method, cfg);

  FermionFieldD b(geo);
  for (int s0 = 0; s0 < Ns; ++s0)
    for (int c0 = 0; c0 < Nc; ++c0) {
      make_source(b, s0, c0);
      FermionFieldD& x = out.column(s0, c0);
      blas::zero(x.span());
      const SolverResult r = solver->solve(x.span(), b.span());
      stats.total_iterations += r.iterations;
      stats.worst_residual =
          std::max(stats.worst_residual, r.relative_residual);
      stats.converged = stats.converged && r.converged;
      if (!r.converged)
        log_warn("propagator column (", s0, ",", c0,
                 ") did not converge: rel=", r.relative_residual);
    }
  stats.seconds = timer.seconds();
  return stats;
}

PropagatorStats compute_point_propagator(Propagator& out,
                                         const GaugeFieldD& u,
                                         const PropagatorParams& params,
                                         const Coord& point) {
  return compute_propagator(
      out, u, params, [&](FermionFieldD& b, int s0, int c0) {
        make_point_source(b, point, s0, c0);
      });
}

}  // namespace lqcd
