#pragma once
// Analytic free-field (unit gauge) references.
//
// The free Wilson propagator is diagonal in momentum space:
//   S(p) = [ A(p) + i sum_mu b_mu(p) gamma_mu ]^{-1}
//        = ( A - i b.gamma ) / ( A^2 + b^2 ),
//   A(p) = 1 - 2 kappa sum_mu cos p_mu,   b_mu(p) = 2 kappa sin p_mu,
// with antiperiodic temporal momenta p4 = (2n+1) pi / T. The exact
// finite-volume pion correlator follows by a double temporal Fourier sum —
// an independent closed-form check of the entire source -> solve ->
// contract pipeline, and the overlay curve for the spectroscopy bench.

#include <vector>

#include "lattice/geometry.hpp"

namespace lqcd {

/// Exact free-field pion correlator C(t), t = 0..T-1, source at the
/// origin, antiperiodic time boundary for the quarks.
std::vector<double> free_pion_correlator(const Coord& dims, double kappa);

/// Free quark pole mass for Wilson fermions at this kappa:
/// m_q = ln(1 + m0), m0 = 1/(2 kappa) - 4 (the continuum-limit estimate
/// of where the pion effective mass plateaus, ~ 2 m_q, in a large box).
double free_quark_mass(double kappa);

}  // namespace lqcd
