#include "spectro/effective_mass.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace lqcd {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> effective_mass_log(const std::vector<double>& c) {
  const std::size_t n = c.size();
  std::vector<double> m(n > 0 ? n - 1 : 0, kNaN);
  for (std::size_t t = 0; t + 1 < n; ++t) {
    if (c[t] > 0.0 && c[t + 1] > 0.0) m[t] = std::log(c[t] / c[t + 1]);
  }
  return m;
}

std::vector<double> effective_mass_cosh(const std::vector<double>& c) {
  const auto n = static_cast<int>(c.size());
  std::vector<double> m(n > 0 ? static_cast<std::size_t>(n - 1) : 0, kNaN);
  const double half = n / 2.0;
  for (int t = 0; t + 1 < n; ++t) {
    if (!(c[t] != 0.0 && c[t + 1] != 0.0)) continue;
    const double ratio = c[t] / c[t + 1];
    const double x1 = t - half;
    const double x2 = t + 1 - half;
    auto f = [&](double mm) {
      return std::cosh(mm * x1) / std::cosh(mm * x2) - ratio;
    };
    // Bisection over m in (0, 10]; the ratio function is monotonic away
    // from the midpoint. Skip unsolvable points (noise).
    double lo = 1e-8, hi = 10.0;
    double flo = f(lo), fhi = f(hi);
    if (std::isnan(flo) || std::isnan(fhi) || flo * fhi > 0.0) continue;
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (lo + hi);
      const double fm = f(mid);
      if (flo * fm <= 0.0) {
        hi = mid;
        fhi = fm;
      } else {
        lo = mid;
        flo = fm;
      }
    }
    m[static_cast<std::size_t>(t)] = 0.5 * (lo + hi);
  }
  return m;
}

PlateauEstimate plateau_mass(const std::vector<double>& m_eff, int t_min,
                             int t_max) {
  LQCD_REQUIRE(t_min >= 0 && t_max >= t_min, "bad plateau window");
  PlateauEstimate est;
  double lo = 0.0, hi = 0.0, sum = 0.0;
  for (int t = t_min; t <= t_max && t < static_cast<int>(m_eff.size());
       ++t) {
    const double v = m_eff[static_cast<std::size_t>(t)];
    if (std::isnan(v)) continue;
    if (est.points == 0) {
      lo = hi = v;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    sum += v;
    ++est.points;
  }
  if (est.points > 0) {
    est.mass = sum / est.points;
    est.spread = hi - lo;
  }
  return est;
}

std::vector<double> fold_correlator(const std::vector<double>& c) {
  const auto n = static_cast<int>(c.size());
  LQCD_REQUIRE(n >= 2 && n % 2 == 0, "fold needs even-length correlator");
  std::vector<double> out(static_cast<std::size_t>(n / 2 + 1));
  out[0] = c[0];
  for (int t = 1; t < n / 2; ++t)
    out[static_cast<std::size_t>(t)] =
        0.5 * (c[static_cast<std::size_t>(t)] +
               c[static_cast<std::size_t>(n - t)]);
  out[static_cast<std::size_t>(n / 2)] = c[static_cast<std::size_t>(n / 2)];
  return out;
}

}  // namespace lqcd
