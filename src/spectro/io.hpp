#pragma once
// Correlator I/O: a simple self-describing TSV format for measurement
// campaigns (one row per timeslice, one column per channel), with
// round-trip parsing — the hand-off point between the C++ measurement
// code and downstream fitting/plotting.

#include <map>
#include <string>
#include <vector>

namespace lqcd {

/// A named set of equal-length correlators (e.g. {"pion", "rho", ...}).
struct CorrelatorSet {
  /// Channel name -> C(t) values; all vectors must have equal length.
  std::map<std::string, std::vector<double>> channels;

  [[nodiscard]] std::size_t timeslices() const {
    return channels.empty() ? 0 : channels.begin()->second.size();
  }
};

/// Write as TSV: header line "# t <name1> <name2> ...", then one row per
/// timeslice. Throws lqcd::Error on I/O failure or ragged data.
void save_correlators(const CorrelatorSet& set, const std::string& path);

/// Read back a file written by save_correlators. Throws on malformed
/// input.
CorrelatorSet load_correlators(const std::string& path);

}  // namespace lqcd
