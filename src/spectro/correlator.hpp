#pragma once
// Hadron two-point functions from a point-source propagator — the
// "origin of mass" payoff: pion, rho (and any other Gamma-insertion
// meson) plus the nucleon.
//
// Meson correlator convention (degenerate quarks, source at t = t0):
//
//   C_Gamma(t) = sum_xvec Tr[ Gamma_snk S(x,0) Gamma_src g5 S(x,0)^† g5 ]
//
// which for Gamma_snk = Gamma_src = g5 reduces to the positive-definite
// pion correlator sum |S|^2. The nucleon uses the standard proton
// interpolator eps_abc (u^T C g5 d) u with parity projector (1 + g4)/2,
// contracted by explicit Wick expansion (two terms).

#include <vector>

#include "linalg/gamma.hpp"
#include "spectro/propagator.hpp"

namespace lqcd {

/// Time-sliced meson correlator, C[t] for t = 0..T-1, measured relative to
/// source time t0 (entry k is the timeslice (t0 + k) mod T). The imaginary
/// part must vanish by construction; it is returned for noise monitoring.
struct Correlator {
  std::vector<double> c;      ///< Re C(t)
  std::vector<double> c_imag; ///< Im C(t) (consistency check)
};

Correlator meson_correlator(const Propagator& s, const SpinMatrix& gamma_snk,
                            const SpinMatrix& gamma_src, int t0);

/// Pion (Gamma = g5). Positive by construction.
Correlator pion_correlator(const Propagator& s, int t0);

/// Rho, averaged over the three spatial polarizations (Gamma = g_i).
Correlator rho_correlator(const Propagator& s, int t0);

/// Scalar (Gamma = 1) — the a0 channel.
Correlator scalar_correlator(const Propagator& s, int t0);

/// Nucleon (proton) two-point with the positive-parity projector.
Correlator nucleon_correlator(const Propagator& s, int t0);

/// Momentum-projected meson correlator
///   C(p, t) = sum_xvec e^{-i p . xvec} Tr[...],
/// with p = 2 pi n / L given by integer mode numbers `n` per spatial
/// direction. Returns the complex correlator (real/imag parts); the
/// modulus feeds dispersion-relation fits E(p).
Correlator meson_correlator_momentum(const Propagator& s,
                                     const SpinMatrix& gamma_snk,
                                     const SpinMatrix& gamma_src, int t0,
                                     const std::array<int, 3>& n);

/// Pion at momentum n (convenience).
Correlator pion_correlator_momentum(const Propagator& s, int t0,
                                    const std::array<int, 3>& n);

}  // namespace lqcd
