#pragma once
// Quark propagators: the 12 solutions M S = delta(spin, color) that feed
// every hadron contraction.
//
// Column (s0, c0) of the propagator is the fermion field
// S(x)_{(s,c),(s0,c0)}. Solves go through the shared solver factory
// (solver/factory.hpp); the default method is the even-odd Schur CG
// pipeline validated in tests/test_solver.cpp. One solver instance is
// built per configuration and shared by all 12 columns — for the `mg`
// method that amortizes the adaptive setup across the whole propagator
// (watch the `mg.setup.reuses` counter climb to 11).

#include <array>
#include <functional>
#include <memory>

#include "dirac/wilson.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "solver/factory.hpp"
#include "solver/solver.hpp"
#include "spectro/source.hpp"

namespace lqcd {

class Propagator {
 public:
  explicit Propagator(const LatticeGeometry& geo);

  [[nodiscard]] const LatticeGeometry& geometry() const { return *geo_; }

  FermionFieldD& column(int s0, int c0) {
    return *columns_[static_cast<std::size_t>(s0 * Nc + c0)];
  }
  [[nodiscard]] const FermionFieldD& column(int s0, int c0) const {
    return *columns_[static_cast<std::size_t>(s0 * Nc + c0)];
  }

  /// Matrix element S(x)_{(s,c),(s0,c0)}.
  [[nodiscard]] Cplxd element(std::int64_t cb, int s, int c, int s0,
                              int c0) const {
    return column(s0, c0)[cb].s[s].c[c];
  }

 private:
  const LatticeGeometry* geo_;
  std::array<std::unique_ptr<FermionFieldD>, Ns * Nc> columns_;
};

struct PropagatorParams {
  double kappa = 0.12;
  double csw = 0.0;  ///< 0 = plain Wilson, > 0 = clover
  TimeBoundary bc = TimeBoundary::Antiperiodic;
  SolverParams solver{.tol = 1e-10, .max_iterations = 20000};
  /// Solve pipeline for the 12 columns. All kinds share `solver` as the
  /// outer stopping criterion; `mg` additionally uses `mg_params` and
  /// builds its hierarchy once for all columns.
  SolverKind method = SolverKind::EoCg;
  mg::MgParams mg_params{};
  /// Columns solved per batch (1..12). With `block_cg` each batch shares
  /// one gauge sweep per iteration; other kinds loop columns internally,
  /// so block > 1 is free to request for any method.
  int block = 1;
};

struct PropagatorStats {
  int total_iterations = 0;
  double seconds = 0.0;
  double worst_residual = 0.0;
  bool converged = true;
};

/// Solve all 12 columns for sources produced by `make_source(b, s0, c0)`.
PropagatorStats compute_propagator(
    Propagator& out, const GaugeFieldD& u, const PropagatorParams& params,
    const std::function<void(FermionFieldD&, int, int)>& make_source);

/// Solve all 12 columns of the source described by `spec` (the shared
/// path used by run_spectroscopy, the campaign service and the benches).
PropagatorStats compute_propagator(Propagator& out, const GaugeFieldD& u,
                                   const PropagatorParams& params,
                                   const SourceSpec& spec);

/// Point-source convenience wrapper.
PropagatorStats compute_point_propagator(Propagator& out,
                                         const GaugeFieldD& u,
                                         const PropagatorParams& params,
                                         const Coord& point);

}  // namespace lqcd
