#include "spectro/free_field.hpp"

#include <cmath>
#include <vector>

#include "linalg/su3.hpp"
#include "util/error.hpp"

namespace lqcd {

std::vector<double> free_pion_correlator(const Coord& dims, double kappa) {
  const int lx = dims[0], ly = dims[1], lz = dims[2], lt = dims[3];
  const double vol =
      static_cast<double>(lx) * ly * lz * lt;
  LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of range");

  // For each spatial momentum, tabulate over temporal momenta the scalar
  // and vector parts of S(p); then
  //   C(t) = (V3 / V^2) sum_pvec sum_{p4, p4'} e^{i (p4 - p4') t}
  //          * 4 (A A' + b.b') / (D D'),  D = A^2 + b^2.
  // Reorganized as |sum_p4 e^{i p4 t} S(p)|^2-style partial sums so the
  // cost is O(V3 * T) rather than O(V3 * T^2):
  //   C(t) = (V3/V^2) sum_pvec [ |F_A(t)|^2 + sum_mu |F_mu(t)|^2 ] * 4,
  // where F_A(t) = sum_p4 e^{i p4 t} A/D and F_mu likewise for b_mu.
  const int nt = lt;
  std::vector<double> c(static_cast<std::size_t>(nt), 0.0);

  std::vector<double> p4(static_cast<std::size_t>(nt));
  for (int n = 0; n < nt; ++n)
    p4[static_cast<std::size_t>(n)] =
        M_PI * (2.0 * n + 1.0) / static_cast<double>(nt);

  for (int kx = 0; kx < lx; ++kx)
    for (int ky = 0; ky < ly; ++ky)
      for (int kz = 0; kz < lz; ++kz) {
        const double px = 2.0 * M_PI * kx / lx;
        const double py = 2.0 * M_PI * ky / ly;
        const double pz = 2.0 * M_PI * kz / lz;
        const double cs = std::cos(px) + std::cos(py) + std::cos(pz);
        const double bx = 2.0 * kappa * std::sin(px);
        const double by = 2.0 * kappa * std::sin(py);
        const double bz = 2.0 * kappa * std::sin(pz);

        for (int t = 0; t < nt; ++t) {
          // Partial temporal Fourier sums at this t.
          double fa_re = 0.0, fa_im = 0.0;
          double fx_re = 0.0, fx_im = 0.0;
          double fy_re = 0.0, fy_im = 0.0;
          double fz_re = 0.0, fz_im = 0.0;
          double ft_re = 0.0, ft_im = 0.0;
          for (int n = 0; n < nt; ++n) {
            const double q = p4[static_cast<std::size_t>(n)];
            const double a = 1.0 - 2.0 * kappa * (cs + std::cos(q));
            const double bt = 2.0 * kappa * std::sin(q);
            const double d =
                a * a + bx * bx + by * by + bz * bz + bt * bt;
            const double cre = std::cos(q * t);
            const double cim = std::sin(q * t);
            fa_re += cre * a / d;
            fa_im += cim * a / d;
            fx_re += cre * bx / d;
            fx_im += cim * bx / d;
            fy_re += cre * by / d;
            fy_im += cim * by / d;
            fz_re += cre * bz / d;
            fz_im += cim * bz / d;
            ft_re += cre * bt / d;
            ft_im += cim * bt / d;
          }
          const double mod2 = fa_re * fa_re + fa_im * fa_im +
                              fx_re * fx_re + fx_im * fx_im +
                              fy_re * fy_re + fy_im * fy_im +
                              fz_re * fz_re + fz_im * fz_im +
                              ft_re * ft_re + ft_im * ft_im;
          // Spin trace gives 4, the (diagonal) color trace another Nc.
          c[static_cast<std::size_t>(t)] += 4.0 * Nc * mod2;
        }
      }

  const double v3 = static_cast<double>(lx) * ly * lz;
  for (auto& v : c) v *= v3 / (vol * vol);
  return c;
}

double free_quark_mass(double kappa) {
  const double m0 = 1.0 / (2.0 * kappa) - 4.0;
  LQCD_REQUIRE(m0 > -1.0, "kappa beyond the free critical point");
  return std::log(1.0 + m0);
}

}  // namespace lqcd
