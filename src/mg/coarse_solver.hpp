#pragma once
// Coarse-level solve: restarted GCR on `CoarseVector`, fully serial.
//
// The coarse system is tiny (hundreds of unknowns), so a serial Krylov
// solve costs microseconds — and seriality is load-bearing: every
// reduction happens in a fixed order, so the V-cycle's promise of
// bit-identical results across thread counts holds through the coarse
// correction. The algorithm mirrors `solver/gcr.hpp` (orthogonalize
// A p against previous A q's, minimize the residual over the span).
//
// The tolerance is deliberately loose (~1e-1): the V-cycle only needs an
// approximate coarse correction, and over-solving the coarse system buys
// nothing on the fine grid.

#include <cmath>
#include <vector>

#include "mg/coarse_op.hpp"
#include "mg/coarse_vector.hpp"

namespace lqcd::mg {

struct CoarseSolveParams {
  double tol = 1e-1;        ///< relative residual target
  int max_iterations = 64;  ///< total GCR iterations
  int restart_length = 16;  ///< directions kept before restarting
};

struct CoarseSolveResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;
};

/// Solve A_c x = b from x = 0. Serial and deterministic.
template <typename T>
CoarseSolveResult coarse_gcr_solve(const CoarseOperator<T>& a,
                                   CoarseVector<T>& x,
                                   const CoarseVector<T>& b,
                                   const CoarseSolveParams& params) {
  CoarseSolveResult res;
  const std::int64_t n = a.geometry().volume();
  cblas::zero(x);

  CoarseVector<T> r(n, a.ncols());
  cblas::copy(r, b);
  const T bnorm2 = cblas::norm2(b);
  if (bnorm2 <= T(0)) {
    res.converged = true;
    return res;
  }
  const T target2 = bnorm2 * static_cast<T>(params.tol) *
                    static_cast<T>(params.tol);

  std::vector<CoarseVector<T>> p, ap;
  p.reserve(static_cast<std::size_t>(params.restart_length));
  ap.reserve(static_cast<std::size_t>(params.restart_length));
  CoarseVector<T> w(n, a.ncols());

  T rnorm2 = bnorm2;
  while (res.iterations < params.max_iterations) {
    if (static_cast<int>(p.size()) == params.restart_length) {
      p.clear();
      ap.clear();
    }
    p.emplace_back(n, a.ncols());
    ap.emplace_back(n, a.ncols());
    CoarseVector<T>& pk = p.back();
    CoarseVector<T>& apk = ap.back();
    cblas::copy(pk, r);
    a.apply(apk, pk);
    // Orthogonalize A p against previous directions.
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const Cplx<T> beta = cblas::dot(ap[i], apk);
      cblas::caxpy(-beta, ap[i], apk);
      cblas::caxpy(-beta, p[i], pk);
    }
    const T apn2 = cblas::norm2(apk);
    if (apn2 <= T(0)) break;  // breakdown: return best x so far
    const T inv = T(1) / std::sqrt(apn2);
    for (std::size_t i = 0; i < pk.size(); ++i) {
      pk[i] *= inv;
      apk[i] *= inv;
    }
    const Cplx<T> alpha = cblas::dot(apk, r);
    cblas::caxpy(alpha, pk, x);
    cblas::caxpy(-alpha, apk, r);
    ++res.iterations;
    rnorm2 = cblas::norm2(r);
    if (rnorm2 <= target2) {
      res.converged = true;
      break;
    }
  }
  res.relative_residual =
      std::sqrt(static_cast<double>(rnorm2) / static_cast<double>(bnorm2));
  if (rnorm2 <= target2) res.converged = true;
  return res;
}

}  // namespace lqcd::mg
