#pragma once
// Two-level multigrid V-cycle behind the `Preconditioner<T>` interface,
// so it drops straight into flexible GCR as a right preconditioner.
//
// One apply:   out  = S(in)                          (pre-smooth, SAP)
//              r    = in - M out                     (fine residual)
//              e_c  = A_c^{-1} R r   (approx.)       (coarse GCR)
//              out += P e_c                          (coarse correction)
//              r    = in - M out
//              out += S(r)                           (post-smooth)
//
// The smoother wipes the high end of the spectrum, the coarse correction
// the low end — which is why the outer iteration count stays flat as
// kappa approaches kappa_c while plain Krylov methods slow down
// critically (the mass-sweep claim bench_mg measures).
//
// Every stage is bit-reproducible across thread counts: SAP, the
// elementwise residual updates, restrict/prolong (per-site serial inner
// loops) and the serial coarse GCR.

#include <span>

#include "mg/setup.hpp"
#include "solver/gcr.hpp"

namespace lqcd::mg {

template <typename T>
class MgPreconditioner final : public Preconditioner<T> {
 public:
  /// Runs the adaptive setup in the constructor. `m` must outlive the
  /// preconditioner.
  MgPreconditioner(const WilsonOperator<T>& m, const MgParams& params)
      : m_(&m),
        params_(params),
        smoother_(m, params.smoother),
        hierarchy_(mg_setup(m, smoother_, params)) {}

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    telemetry::TraceRegion span("mg.vcycle");
    const std::size_t n = in.size();
    LQCD_REQUIRE(out.size() == n &&
                     n == static_cast<std::size_t>(m_->geometry().volume()),
                 "MG v-cycle span sizes");
    if (telemetry::enabled()) {
      static telemetry::Counter& c_cycles =
          telemetry::counter("mg.vcycle.count");
      static telemetry::Counter& c_fine =
          telemetry::counter("mg.fine.applies");
      c_cycles.add(1);
      c_fine.add(2);  // the two residual refreshes below
    }
    ensure_workspace(n);
    const std::span<WilsonSpinor<T>> r(r_.data(), n), mv(mv_.data(), n),
        z(z_.data(), n);

    // Pre-smooth from zero: out = S(in).
    smoother_.apply(out, in);

    // Coarse correction on the smoothed residual.
    m_->apply(mv, std::span<const WilsonSpinor<T>>(out.data(), n));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> w = in[i];
      w -= mv[i];
      r[i] = w;
    });
    hierarchy_.prolongator->restrict_to(rc_,
                                        std::span<const WilsonSpinor<T>>(
                                            r.data(), n));
    const CoarseSolveResult cres =
        coarse_gcr_solve(*hierarchy_.coarse, xc_, rc_, params_.coarse);
    if (telemetry::enabled()) {
      static telemetry::Counter& c_iters =
          telemetry::counter("mg.coarse.solve_iterations");
      c_iters.add(cres.iterations);
    }
    hierarchy_.prolongator->prolong_add(out, xc_);

    // Post-smooth the corrected residual.
    m_->apply(mv, std::span<const WilsonSpinor<T>>(out.data(), n));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> w = in[i];
      w -= mv[i];
      r[i] = w;
    });
    smoother_.apply(z, std::span<const WilsonSpinor<T>>(r.data(), n));
    parallel_for(n, [&](std::size_t i) { out[i] += z[i]; });
  }

  [[nodiscard]] double flops_per_apply() const override {
    // Two smoother applies + two residual refreshes + transfer ops +
    // the coarse solve at its iteration cap (an upper bound; the coarse
    // grid is so small the bound is noise at fine-grid scale).
    const double transfers = 2.0 * 8.0 *
                             static_cast<double>(m_->geometry().volume()) *
                             hierarchy_.prolongator->ncols() * 6.0;
    return 2.0 * smoother_.flops_per_apply() + 2.0 * m_->flops_per_apply() +
           transfers +
           static_cast<double>(params_.coarse.max_iterations) *
               hierarchy_.coarse->flops_per_apply();
  }

  [[nodiscard]] const MgParams& params() const noexcept { return params_; }
  [[nodiscard]] const MgHierarchy<T>& hierarchy() const noexcept {
    return hierarchy_;
  }
  [[nodiscard]] const SapPreconditioner<T>& smoother() const noexcept {
    return smoother_;
  }

 private:
  void ensure_workspace(std::size_t n) const {
    if (r_.size() != n) {
      r_.resize(n);
      mv_.resize(n);
      z_.resize(n);
    }
    const std::int64_t nc = hierarchy_.aggregation->coarse().volume();
    const int ncols = hierarchy_.prolongator->ncols();
    if (rc_.nsites() != nc || rc_.ncols() != ncols) {
      rc_ = CoarseVector<T>(nc, ncols);
      xc_ = CoarseVector<T>(nc, ncols);
    }
  }

  const WilsonOperator<T>* m_;
  MgParams params_;
  SapPreconditioner<T> smoother_;
  MgHierarchy<T> hierarchy_;
  mutable aligned_vector<WilsonSpinor<T>> r_, mv_, z_;
  mutable CoarseVector<T> rc_, xc_;
};

}  // namespace lqcd::mg
