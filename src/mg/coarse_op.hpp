#pragma once
// Galerkin coarse operator A_c = P^H A P, materialized as a nearest-
// neighbor stencil on the coarse lattice.
//
// Because the fine Wilson operator only hops one site, A_c couples a
// coarse site to itself and its 8 coarse neighbors: 9 dense
// (ncols x ncols) complex blocks per coarse site. Forward and backward
// legs are accumulated separately, which keeps extent-2 coarse
// directions correct: there fwd(xc,mu) == bwd(xc,mu) as a *site* but the
// two legs carry distinct face contributions and apply() sums both.
//
// The diagonal (self) block starts from the exact Gram matrix of P's
// columns within the aggregate — the identity, by per-aggregate
// per-chirality orthonormalization — and accumulates every hop that stays
// inside the aggregate.
//
// Assembly and apply are parallel over coarse sites with a fixed serial
// loop inside each site, so both are bit-reproducible across thread
// counts.

#include <cstdint>
#include <span>
#include <vector>

#include "dirac/wilson.hpp"
#include "linalg/gamma.hpp"
#include "mg/aggregation.hpp"
#include "mg/coarse_vector.hpp"
#include "mg/prolongator.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace lqcd::mg {

template <typename T>
class CoarseOperator {
 public:
  /// Stencil legs per coarse site: self, 4 forward, 4 backward.
  static constexpr int kLegs = 1 + 2 * Nd;
  static constexpr int kSelf = 0;
  static constexpr int leg_fwd(int mu) { return 1 + mu; }
  static constexpr int leg_bwd(int mu) { return 1 + Nd + mu; }

  /// `agg` must outlive the operator.
  CoarseOperator(const Aggregation& agg, int ncols)
      : agg_(&agg),
        ncols_(ncols),
        stencil_(static_cast<std::size_t>(agg.coarse().volume()) * kLegs *
                 ncols * ncols) {}

  [[nodiscard]] const LatticeGeometry& geometry() const noexcept {
    return agg_->coarse();
  }
  [[nodiscard]] int ncols() const noexcept { return ncols_; }

  /// Dense (ncols x ncols) row-major block for one (site, leg). Only
  /// valid while the stencil is in T storage (before compress_store()).
  [[nodiscard]] Cplx<T>* block(std::int64_t xc, int leg) noexcept {
    return stencil_.data() +
           (static_cast<std::size_t>(xc) * kLegs + leg) * ncols_ * ncols_;
  }
  [[nodiscard]] const Cplx<T>* block(std::int64_t xc, int leg) const noexcept {
    return stencil_.data() +
           (static_cast<std::size_t>(xc) * kLegs + leg) * ncols_ * ncols_;
  }

  /// Demote the stencil to float storage — the second rung of the
  /// precision ladder: the coarse grid carries the low modes, whose
  /// conditioning the outer Krylov never sees directly, so float entries
  /// suffice while apply() keeps accumulating in T. Frees the T-storage
  /// stencil (half the coarse-operator footprint for T = double).
  /// Idempotent; gated in tests on unchanged V-cycle convergence.
  void compress_store() {
    if (single_) return;
    stencil_single_.resize(stencil_.size());
    for (std::size_t i = 0; i < stencil_.size(); ++i)
      stencil_single_[i] =
          Cplx<float>(static_cast<float>(stencil_[i].re),
                      static_cast<float>(stencil_[i].im));
    stencil_.clear();
    stencil_.shrink_to_fit();
    single_ = true;
  }
  /// True once the stencil lives in float storage.
  [[nodiscard]] bool single_storage() const noexcept { return single_; }
  /// Bytes the stencil currently occupies.
  [[nodiscard]] std::size_t stencil_bytes() const noexcept {
    return single_ ? stencil_single_.size() * sizeof(Cplx<float>)
                   : stencil_.size() * sizeof(Cplx<T>);
  }

  /// out = A_c in. Accumulation is always in T (double-precision sums
  /// over float blocks when compress_store() demoted the storage).
  void apply(CoarseVector<T>& out, const CoarseVector<T>& in) const {
    const std::int64_t nc = agg_->coarse().volume();
    LQCD_REQUIRE(out.nsites() == nc && in.nsites() == nc &&
                     out.ncols() == ncols_ && in.ncols() == ncols_,
                 "coarse apply shape mismatch");
    if (telemetry::enabled()) {
      static telemetry::Counter& c_applies =
          telemetry::counter("mg.coarse.applies");
      c_applies.add(1);
    }
    const LatticeGeometry& geo = agg_->coarse();
    const std::size_t site_elems =
        static_cast<std::size_t>(kLegs) * ncols_ * ncols_;
    parallel_for(static_cast<std::size_t>(nc), [&](std::size_t xc) {
      Cplx<T>* o = out.site(static_cast<std::int64_t>(xc));
      if (single_)
        apply_site(o, in, geo, static_cast<std::int64_t>(xc),
                   stencil_single_.data() + xc * site_elems);
      else
        apply_site(o, in, geo, static_cast<std::int64_t>(xc),
                   stencil_.data() + xc * site_elems);
    });
  }

  [[nodiscard]] double flops_per_apply() const noexcept {
    // 9 dense blocks per site, 8 flops per complex fma.
    return static_cast<double>(agg_->coarse().volume()) * kLegs *
           static_cast<double>(ncols_) * ncols_ * 8.0;
  }

 private:
  /// One site's stencil application; `base` points at its kLegs blocks
  /// in either storage precision.
  template <typename MT>
  void apply_site(Cplx<T>* o, const CoarseVector<T>& in,
                  const LatticeGeometry& geo, std::int64_t xc,
                  const Cplx<MT>* base) const {
    const std::size_t bs = static_cast<std::size_t>(ncols_) * ncols_;
    for (int a = 0; a < ncols_; ++a) o[a] = Cplx<T>{};
    accum_block(o, base + static_cast<std::size_t>(kSelf) * bs,
                in.site(xc));
    for (int mu = 0; mu < Nd; ++mu) {
      accum_block(o, base + static_cast<std::size_t>(leg_fwd(mu)) * bs,
                  in.site(geo.fwd(xc, mu)));
      accum_block(o, base + static_cast<std::size_t>(leg_bwd(mu)) * bs,
                  in.site(geo.bwd(xc, mu)));
    }
  }

  /// Dense block fma with the accumulator in T regardless of the stored
  /// element type MT. For MT == T the promotion is the identity, so the
  /// pre-compress_store arithmetic (and bit-reproducibility) is
  /// unchanged.
  template <typename MT>
  void accum_block(Cplx<T>* out, const Cplx<MT>* m, const Cplx<T>* in) const {
    for (int a = 0; a < ncols_; ++a) {
      Cplx<T> acc = out[a];
      const Cplx<MT>* row = m + static_cast<std::size_t>(a) * ncols_;
      for (int b = 0; b < ncols_; ++b) {
        const Cplx<T> mv(static_cast<T>(row[b].re),
                         static_cast<T>(row[b].im));
        fma_acc(acc, mv, in[b]);
      }
      out[a] = acc;
    }
  }

  const Aggregation* agg_;
  int ncols_;
  std::vector<Cplx<T>> stencil_;
  std::vector<Cplx<float>> stencil_single_;
  bool single_ = false;
};

namespace detail {

/// v with only chirality block `chi` kept.
template <typename T>
WilsonSpinor<T> chirality_mask(const WilsonSpinor<T>& v, int chi) {
  WilsonSpinor<T> out{};
  const int sp0 = chirality_spin(chi);
  out.s[sp0] = v.s[sp0];
  out.s[sp0 + 1] = v.s[sp0 + 1];
  return out;
}

/// entry(2i+chi_a, col) += sum over chirality-chi_a spins of
/// conj(v_i(x)) . w for every row column i, chi_a.
template <typename T>
void accum_rows(Cplx<T>* leg, int ncols, const Prolongator<T>& p,
                std::int64_t x, int col, const WilsonSpinor<T>& w) {
  const int nvec = p.nvec();
  for (int i = 0; i < nvec; ++i) {
    const WilsonSpinor<T>& v = p.vec(i)[static_cast<std::size_t>(x)];
    for (int chi = 0; chi < 2; ++chi) {
      const int sp0 = chirality_spin(chi);
      Cplx<T> c = dot(v.s[sp0], w.s[sp0]);
      c += dot(v.s[sp0 + 1], w.s[sp0 + 1]);
      leg[static_cast<std::size_t>(2 * i + chi) * ncols + col] += c;
    }
  }
}

}  // namespace detail

/// Assemble A_c = P^H M P link by link for the Wilson operator
/// M = 1 - kappa D. Parallel over coarse sites: each builds only its own
/// stencil row from the fine links on and around its aggregate.
template <typename T>
CoarseOperator<T> galerkin_coarse_operator(const WilsonOperator<T>& m,
                                           const Aggregation& agg,
                                           const Prolongator<T>& p) {
  LQCD_REQUIRE(&agg.fine() == &m.geometry() ||
                   agg.fine() == m.geometry(),
               "aggregation built for a different lattice");
  CoarseOperator<T> ac(agg, p.ncols());
  const LatticeGeometry& geo = m.geometry();
  const GaugeField<T>& u = m.fermion_links();
  const T kappa = static_cast<T>(m.kappa());
  const int ncols = p.ncols();
  const int nvec = p.nvec();

  parallel_for(
      static_cast<std::size_t>(agg.coarse().volume()), [&](std::size_t xcs) {
        const auto xc = static_cast<std::int64_t>(xcs);
        // Identity part of M: the per-aggregate Gram of P's columns,
        // which per-chirality orthonormalization makes the identity.
        Cplx<T>* self = ac.block(xc, CoarseOperator<T>::kSelf);
        for (int a = 0; a < ncols; ++a) self[a * ncols + a] = Cplx<T>(T(1));

        for (const std::int64_t x : agg.sites(xc)) {
          for (int mu = 0; mu < Nd; ++mu) {
            // Forward hop: -kappa (1 - gamma_mu) U_mu(x) psi(x+mu).
            {
              const std::int64_t xf = geo.fwd(x, mu);
              const std::int64_t cf = agg.coarse_of(xf);
              Cplx<T>* leg =
                  cf == xc ? self
                           : ac.block(xc, CoarseOperator<T>::leg_fwd(mu));
              for (int j = 0; j < nvec; ++j) {
                const WilsonSpinor<T>& vj =
                    p.vec(j)[static_cast<std::size_t>(xf)];
                for (int chi = 0; chi < 2; ++chi) {
                  const WilsonSpinor<T> h =
                      mul(u(x, mu), detail::chirality_mask(vj, chi));
                  WilsonSpinor<T> w = h;
                  w -= apply_gamma(mu, h);
                  w *= -kappa;
                  detail::accum_rows(leg, ncols, p, x, 2 * j + chi, w);
                }
              }
            }
            // Backward hop: -kappa (1 + gamma_mu) U_mu^†(x-mu) psi(x-mu).
            {
              const std::int64_t xb = geo.bwd(x, mu);
              const std::int64_t cb = agg.coarse_of(xb);
              Cplx<T>* leg =
                  cb == xc ? self
                           : ac.block(xc, CoarseOperator<T>::leg_bwd(mu));
              for (int j = 0; j < nvec; ++j) {
                const WilsonSpinor<T>& vj =
                    p.vec(j)[static_cast<std::size_t>(xb)];
                for (int chi = 0; chi < 2; ++chi) {
                  const WilsonSpinor<T> h =
                      adj_mul(u(xb, mu), detail::chirality_mask(vj, chi));
                  WilsonSpinor<T> w = h;
                  w += apply_gamma(mu, h);
                  w *= -kappa;
                  detail::accum_rows(leg, ncols, p, x, 2 * j + chi, w);
                }
              }
            }
          }
        }
      });
  return ac;
}

}  // namespace lqcd::mg
