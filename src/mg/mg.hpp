#pragma once
// Umbrella header for the adaptive aggregation-based multigrid subsystem.
//
// Layering (bottom up):
//   aggregation    fine lattice -> coarse LatticeGeometry + site lists
//   coarse_vector  coarse dof storage + serial (deterministic) BLAS
//   prolongator    near-null vectors, chirality-split columns, R/P ops
//   coarse_op      Galerkin stencil A_c = P^H A P + its apply
//   coarse_solver  serial restarted GCR on the coarse system
//   setup          adaptive setup (relax random starts) -> MgHierarchy
//   vcycle         two-level V-cycle as a Preconditioner<T>
//   solver         MgSolver: setup-once, solve-many outer GCR

#include "mg/aggregation.hpp"
#include "mg/coarse_op.hpp"
#include "mg/coarse_solver.hpp"
#include "mg/coarse_vector.hpp"
#include "mg/prolongator.hpp"
#include "mg/setup.hpp"
#include "mg/solver.hpp"
#include "mg/vcycle.hpp"
