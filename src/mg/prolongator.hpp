#pragma once
// Prolongator P for aggregation-based multigrid.
//
// Stores `nvec` near-null-space candidate spinor fields. Each stored field
// contributes TWO coarse columns per aggregate — one per chirality block
// (gamma5 = diag(1,1,-1,-1) in the DeGrand–Rossi basis, so the blocks are
// spins {0,1} and {2,3}). The chirality split preserves the fine
// operator's gamma5-hermiticity structure on the coarse level, which is
// what makes the Galerkin operator an effective coarse Dirac operator
// rather than a generic sparse matrix.
//
// Column index convention: column (2*j + chi) at coarse site xc is vector
// j restricted to the chirality-chi spins of aggregate xc.
//
// All per-aggregate work (orthonormalization, restriction) iterates the
// aggregate's fine sites serially in the fixed order provided by
// `Aggregation`, so results are bit-identical for any thread count.

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/spinor.hpp"
#include "mg/aggregation.hpp"
#include "mg/coarse_vector.hpp"
#include "parallel/thread_pool.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lqcd::mg {

/// First spin row of chirality block `chi` (blocks are 2 spins each).
constexpr int chirality_spin(int chi) { return 2 * chi; }

template <typename T>
class Prolongator {
 public:
  /// `agg` must outlive the prolongator.
  Prolongator(const Aggregation& agg, int nvec) : agg_(&agg), nvec_(nvec) {
    LQCD_REQUIRE(nvec >= 1, "MG needs at least one near-null vector");
    const auto vol = static_cast<std::size_t>(agg.fine().volume());
    vecs_.resize(static_cast<std::size_t>(nvec));
    for (auto& v : vecs_) v.assign(vol, WilsonSpinor<T>{});
  }

  [[nodiscard]] int nvec() const noexcept { return nvec_; }
  [[nodiscard]] int ncols() const noexcept { return 2 * nvec_; }
  [[nodiscard]] const Aggregation& aggregation() const noexcept {
    return *agg_;
  }

  [[nodiscard]] std::span<WilsonSpinor<T>> vec(int j) noexcept {
    return {vecs_[static_cast<std::size_t>(j)].data(),
            vecs_[static_cast<std::size_t>(j)].size()};
  }
  [[nodiscard]] std::span<const WilsonSpinor<T>> vec(int j) const noexcept {
    return {vecs_[static_cast<std::size_t>(j)].data(),
            vecs_[static_cast<std::size_t>(j)].size()};
  }

  /// Modified Gram–Schmidt within every (aggregate, chirality) block.
  /// A rank-deficient candidate (norm below threshold after projection)
  /// is replaced by a deterministic counter-RNG fill and re-projected, so
  /// P always has full column rank. Parallel over aggregates; serial and
  /// order-fixed within each, hence bit-reproducible.
  void orthonormalize(std::uint64_t fallback_seed) {
    const std::int64_t nagg = agg_->coarse().volume();
    parallel_for(static_cast<std::size_t>(nagg), [&](std::size_t xc) {
      const auto& sites = agg_->sites(static_cast<std::int64_t>(xc));
      for (int chi = 0; chi < 2; ++chi) {
        const int sp0 = chirality_spin(chi);
        for (int j = 0; j < nvec_; ++j) {
          auto& vj = vecs_[static_cast<std::size_t>(j)];
          for (int attempt = 0; attempt < 2; ++attempt) {
            // Project out previous columns of this block.
            for (int k = 0; k < j; ++k) {
              const auto& vk = vecs_[static_cast<std::size_t>(k)];
              Cplx<T> c{};
              for (const std::int64_t s : sites)
                for (int d = 0; d < 2; ++d)
                  c += dot(vk[static_cast<std::size_t>(s)].s[sp0 + d],
                           vj[static_cast<std::size_t>(s)].s[sp0 + d]);
              for (const std::int64_t s : sites)
                for (int d = 0; d < 2; ++d) {
                  ColorVector<T> t = vk[static_cast<std::size_t>(s)].s[sp0 + d];
                  t *= c;
                  vj[static_cast<std::size_t>(s)].s[sp0 + d] -= t;
                }
            }
            T n2{};
            for (const std::int64_t s : sites)
              for (int d = 0; d < 2; ++d)
                n2 += norm2(vj[static_cast<std::size_t>(s)].s[sp0 + d]);
            if (n2 > T(1e-24)) {
              const T inv = T(1) / std::sqrt(n2);
              for (const std::int64_t s : sites)
                for (int d = 0; d < 2; ++d)
                  vj[static_cast<std::size_t>(s)].s[sp0 + d] *= inv;
              break;
            }
            // Deterministic fallback: refill this block from the site RNG
            // (stream = global lex index, so decomposition-independent).
            const SiteRngFactory rngs(fallback_seed,
                                      /*epoch=*/static_cast<std::uint64_t>(
                                          2 * j + chi + 1));
            for (const std::int64_t s : sites) {
              CounterRng rng = rngs.make(static_cast<std::uint64_t>(
                  agg_->fine().lex_index(agg_->fine().coords(s))));
              for (int d = 0; d < 2; ++d)
                for (int c = 0; c < Nc; ++c)
                  vj[static_cast<std::size_t>(s)].s[sp0 + d].c[c] =
                      Cplx<T>(static_cast<T>(rng.gaussian()),
                              static_cast<T>(rng.gaussian()));
            }
          }
        }
      }
    });
  }

  /// out[xc][2j+chi] = sum over aggregate sites and chirality-chi spins of
  /// conj(v_j) . in. (The restriction R = P^H.)
  void restrict_to(CoarseVector<T>& out,
                   std::span<const WilsonSpinor<T>> in) const {
    const std::int64_t nagg = agg_->coarse().volume();
    LQCD_REQUIRE(out.nsites() == nagg && out.ncols() == ncols() &&
                     in.size() == static_cast<std::size_t>(
                                      agg_->fine().volume()),
                 "restrict_to shape mismatch");
    parallel_for(static_cast<std::size_t>(nagg), [&](std::size_t xc) {
      Cplx<T>* row = out.site(static_cast<std::int64_t>(xc));
      for (int col = 0; col < ncols(); ++col) row[col] = Cplx<T>{};
      for (const std::int64_t s : agg_->sites(static_cast<std::int64_t>(xc))) {
        const WilsonSpinor<T>& psi = in[static_cast<std::size_t>(s)];
        for (int j = 0; j < nvec_; ++j) {
          const WilsonSpinor<T>& v =
              vecs_[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
          for (int chi = 0; chi < 2; ++chi) {
            const int sp0 = chirality_spin(chi);
            Cplx<T> acc = row[2 * j + chi];
            acc += dot(v.s[sp0], psi.s[sp0]);
            acc += dot(v.s[sp0 + 1], psi.s[sp0 + 1]);
            row[2 * j + chi] = acc;
          }
        }
      }
    });
  }

  /// out += P in. Parallel over fine sites (each reads one coarse row).
  void prolong_add(std::span<WilsonSpinor<T>> out,
                   const CoarseVector<T>& in) const {
    LQCD_REQUIRE(in.nsites() == agg_->coarse().volume() &&
                     in.ncols() == ncols() &&
                     out.size() == static_cast<std::size_t>(
                                       agg_->fine().volume()),
                 "prolong_add shape mismatch");
    parallel_for(out.size(), [&](std::size_t s) {
      const Cplx<T>* row =
          in.site(agg_->coarse_of(static_cast<std::int64_t>(s)));
      WilsonSpinor<T> acc = out[s];
      for (int j = 0; j < nvec_; ++j) {
        const WilsonSpinor<T>& v = vecs_[static_cast<std::size_t>(j)][s];
        for (int chi = 0; chi < 2; ++chi) {
          const int sp0 = chirality_spin(chi);
          const Cplx<T>& c = row[2 * j + chi];
          for (int d = 0; d < 2; ++d) {
            ColorVector<T> t = v.s[sp0 + d];
            t *= c;
            acc.s[sp0 + d] += t;
          }
        }
      }
      out[s] = acc;
    });
  }

 private:
  const Aggregation* agg_;
  int nvec_;
  std::vector<aligned_vector<WilsonSpinor<T>>> vecs_;
};

}  // namespace lqcd::mg
