#pragma once
// Adaptive multigrid setup: generate near-null-space vectors and build the
// two-level hierarchy.
//
// The setup is "adaptive" in the DD-alphaAMG sense: start from Gaussian
// random fields (the null space of the interacting Wilson operator is not
// known analytically) and relax them with v <- (1 - S M) v, where S is
// the SAP smoother. Relaxation kills the high modes S handles well; what
// survives is exactly the low-mode content the coarse grid must
// represent. A handful of iterations on a handful of vectors suffices.
//
// Cost model: setup is O(nvec * setup_iters) smoother applications plus
// one Galerkin assembly — paid once per gauge configuration, then
// amortized over every solve against that configuration (12 spin-color
// sources per propagator, more for multiple source positions). The
// `mg.setup.*` counters and the `mg.setup.reuses` counter in MgSolver
// make that amortization observable.
//
// Determinism: Gaussian fills use per-site counter RNG streams, SAP and
// the Galerkin assembly are order-fixed within parallel chunks, and no
// step takes a global (thread-chunked) reduction — so the entire setup,
// not just the V-cycle, is bit-reproducible across thread counts.

#include <cstdint>
#include <memory>

#include "dirac/wilson.hpp"
#include "mg/aggregation.hpp"
#include "mg/coarse_op.hpp"
#include "mg/coarse_solver.hpp"
#include "mg/prolongator.hpp"
#include "solver/sap.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace lqcd::mg {

struct MgParams {
  Coord block{2, 2, 2, 2};  ///< aggregate extents (coarse dims must be even)
  int nvec = 8;             ///< near-null vectors (2*nvec coarse dof/site)
  int setup_iters = 3;      ///< relaxation rounds per vector
  SapParams smoother{{2, 2, 2, 2}, 2, 4};  ///< SAP smoother (also V-cycle)
  CoarseSolveParams coarse{};              ///< coarse-level GCR
  std::uint64_t seed = 0x6d67u;            ///< RNG seed for random starts
  /// Store the assembled coarse stencil in float (coarse-solve
  /// accumulation stays in T) — the storage tier of the precision
  /// ladder. Off by default so existing double pipelines stay
  /// bit-stable.
  bool coarse_store_single = false;
};

/// The assembled two-level hierarchy. Members are held by unique_ptr so
/// the internal cross-pointers (Prolongator -> Aggregation,
/// CoarseOperator -> Aggregation) survive moves of the hierarchy.
template <typename T>
struct MgHierarchy {
  std::unique_ptr<Aggregation> aggregation;
  std::unique_ptr<Prolongator<T>> prolongator;
  std::unique_ptr<CoarseOperator<T>> coarse;
};

/// Run the adaptive setup against `m` using `smoother` for relaxation.
/// Both must outlive the returned hierarchy.
template <typename T>
MgHierarchy<T> mg_setup(const WilsonOperator<T>& m,
                        const SapPreconditioner<T>& smoother,
                        const MgParams& params) {
  telemetry::TraceRegion span("mg.setup");
  WallTimer timer;

  MgHierarchy<T> h;
  h.aggregation = std::make_unique<Aggregation>(m.geometry(), params.block);
  h.prolongator =
      std::make_unique<Prolongator<T>>(*h.aggregation, params.nvec);

  const auto vol = static_cast<std::size_t>(m.geometry().volume());
  aligned_vector<WilsonSpinor<T>> mv(vol), sv(vol);
  const std::span<WilsonSpinor<T>> mvs(mv.data(), vol), svs(sv.data(), vol);

  for (int j = 0; j < params.nvec; ++j) {
    const std::span<WilsonSpinor<T>> v = h.prolongator->vec(j);
    // Gaussian start, one counter-RNG stream per global site.
    const SiteRngFactory rngs(params.seed,
                              /*epoch=*/static_cast<std::uint64_t>(j));
    const LatticeGeometry& geo = m.geometry();
    parallel_for(vol, [&](std::size_t s) {
      CounterRng rng = rngs.make(static_cast<std::uint64_t>(
          geo.lex_index(geo.coords(static_cast<std::int64_t>(s)))));
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          v[s].s[sp].c[c] = Cplx<T>(static_cast<T>(rng.gaussian()),
                                    static_cast<T>(rng.gaussian()));
    });
    // Relax toward the near-null space: v <- v - S(M v).
    for (int it = 0; it < params.setup_iters; ++it) {
      m.apply(mvs, std::span<const WilsonSpinor<T>>(v.data(), vol));
      smoother.apply(svs, std::span<const WilsonSpinor<T>>(mv.data(), vol));
      parallel_for(vol, [&](std::size_t s) { v[s] -= sv[s]; });
    }
  }
  if (telemetry::enabled()) {
    telemetry::counter("mg.setup.vectors").add(params.nvec);
    telemetry::counter("mg.setup.relax_applies")
        .add(static_cast<std::int64_t>(params.nvec) * params.setup_iters);
  }

  h.prolongator->orthonormalize(params.seed ^ 0x5a5a5a5aULL);
  h.coarse = std::make_unique<CoarseOperator<T>>(
      galerkin_coarse_operator(m, *h.aggregation, *h.prolongator));
  if (params.coarse_store_single) h.coarse->compress_store();

  telemetry::gauge("mg.setup.seconds").set(timer.seconds());
  return h;
}

}  // namespace lqcd::mg
