#pragma once
// Coarse-level vectors: `ncols` complex degrees of freedom per coarse site
// (2 * nvec after the chirality split), stored flat.
//
// The coarse grid is tiny — a few hundred sites — so all coarse BLAS here
// is *serial by design*. The fine-level `blas::dot`/`norm2` chunk their
// reductions by thread count and are therefore not bit-identical across
// pool sizes; the coarse level must not inherit that, because the V-cycle
// promises bit-identical results for any thread count.

#include <cstdint>
#include <vector>

#include "linalg/cplx.hpp"
#include "util/error.hpp"

namespace lqcd::mg {

template <typename T>
class CoarseVector {
 public:
  CoarseVector() = default;
  CoarseVector(std::int64_t nsites, int ncols)
      : nsites_(nsites),
        ncols_(ncols),
        data_(static_cast<std::size_t>(nsites) * ncols) {}

  [[nodiscard]] std::int64_t nsites() const noexcept { return nsites_; }
  [[nodiscard]] int ncols() const noexcept { return ncols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] Cplx<T>* site(std::int64_t s) noexcept {
    return data_.data() + static_cast<std::size_t>(s) * ncols_;
  }
  [[nodiscard]] const Cplx<T>* site(std::int64_t s) const noexcept {
    return data_.data() + static_cast<std::size_t>(s) * ncols_;
  }

  [[nodiscard]] Cplx<T>& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const Cplx<T>& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

 private:
  std::int64_t nsites_ = 0;
  int ncols_ = 0;
  std::vector<Cplx<T>> data_;
};

// Serial coarse BLAS. All loops run in cb-index order on one thread.
namespace cblas {

template <typename T>
void zero(CoarseVector<T>& x) {
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = Cplx<T>{};
}

template <typename T>
void copy(CoarseVector<T>& dst, const CoarseVector<T>& src) {
  LQCD_REQUIRE(dst.size() == src.size(), "coarse copy size mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
}

/// y += a x
template <typename T>
void caxpy(const Cplx<T>& a, const CoarseVector<T>& x, CoarseVector<T>& y) {
  LQCD_REQUIRE(x.size() == y.size(), "coarse caxpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) fma_acc(y[i], a, x[i]);
}

/// conj(x) . y, serial (deterministic) reduction.
template <typename T>
[[nodiscard]] Cplx<T> dot(const CoarseVector<T>& x, const CoarseVector<T>& y) {
  LQCD_REQUIRE(x.size() == y.size(), "coarse dot size mismatch");
  Cplx<T> acc{};
  for (std::size_t i = 0; i < x.size(); ++i) fma_conj_acc(acc, x[i], y[i]);
  return acc;
}

template <typename T>
[[nodiscard]] T norm2(const CoarseVector<T>& x) {
  T acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc += lqcd::norm2(x[i]);
  return acc;
}

}  // namespace cblas

}  // namespace lqcd::mg
