#pragma once
// MgSolver: MG-preconditioned flexible GCR on the full Wilson operator,
// with the setup built once and reused across solves.
//
// The amortization contract: construction pays the adaptive setup
// (relaxation + Galerkin assembly); every subsequent solve() against the
// same gauge configuration reuses the hierarchy for free. The
// `mg.setup.reuses` counter increments on each solve after the first —
// a 12-column propagator should show 11 reuses per source.

#include <span>

#include "mg/vcycle.hpp"
#include "solver/gcr.hpp"
#include "solver/solver.hpp"

namespace lqcd::mg {

template <typename T>
class MgSolver {
 public:
  MgSolver(const GaugeField<T>& u, double kappa, TimeBoundary bc,
           const MgParams& mg_params, const GcrParams& gcr_params)
      : m_(u, kappa, bc), precond_(m_, mg_params), gcr_(gcr_params) {}

  /// Solve M x = b (full volume). x is used as the initial guess.
  SolverResult solve(std::span<WilsonSpinor<T>> x,
                     std::span<const WilsonSpinor<T>> b) {
    if (solves_ > 0 && telemetry::enabled())
      telemetry::counter("mg.setup.reuses").add(1);
    ++solves_;
    SolverResult res = gcr_solve(m_, x, b, gcr_, &precond_);
    record_solve("mg_gcr", res);
    return res;
  }

  [[nodiscard]] const WilsonOperator<T>& op() const noexcept { return m_; }
  [[nodiscard]] const MgPreconditioner<T>& preconditioner() const noexcept {
    return precond_;
  }
  [[nodiscard]] int solves() const noexcept { return solves_; }

 private:
  WilsonOperator<T> m_;
  MgPreconditioner<T> precond_;
  GcrParams gcr_;
  int solves_ = 0;
};

}  // namespace lqcd::mg
