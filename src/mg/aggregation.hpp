#pragma once
// Block aggregation: the geometric half of adaptive multigrid.
//
// The fine lattice is tiled with non-overlapping rectangular blocks
// ("aggregates"). Each aggregate becomes one site of a coarse
// `LatticeGeometry`, so the coarse level reuses the same checkerboarded
// site machinery (neighbor tables, wrap detection) as the fine level —
// including `lqcd::comm` halo pricing, which treats the coarse grid as
// just another (tiny) lattice.
//
// Within an aggregate, fine sites are enumerated in ascending checkerboard
// order. Every consumer (prolongator, Galerkin assembly) iterates that
// fixed order serially, which is what makes the whole multigrid stack
// bit-reproducible across thread counts.

#include <cstdint>
#include <vector>

#include "lattice/geometry.hpp"
#include "util/error.hpp"

namespace lqcd::mg {

class Aggregation {
 public:
  /// `fine` must outlive the aggregation. Each block extent must divide
  /// the fine extent with an even quotient >= 2 (the coarse grid is a
  /// `LatticeGeometry` and inherits its checkerboarding requirement).
  Aggregation(const LatticeGeometry& fine, const Coord& block)
      : fine_(&fine), block_(block), coarse_(coarse_dims(fine, block)) {
    const std::int64_t nc = coarse_.volume();
    coarse_of_.resize(static_cast<std::size_t>(fine.volume()));
    sites_.resize(static_cast<std::size_t>(nc));
    const std::int64_t sites_per_block =
        fine.volume() / nc;
    for (auto& s : sites_) s.reserve(static_cast<std::size_t>(sites_per_block));
    // Ascending fine cb order within each aggregate, by construction.
    for (std::int64_t s = 0; s < fine.volume(); ++s) {
      const Coord x = fine.coords(s);
      Coord bc{};
      for (int mu = 0; mu < Nd; ++mu) bc[mu] = x[mu] / block_[mu];
      const std::int64_t xc = coarse_.cb_index(bc);
      coarse_of_[static_cast<std::size_t>(s)] = xc;
      sites_[static_cast<std::size_t>(xc)].push_back(s);
    }
  }

  [[nodiscard]] const LatticeGeometry& fine() const noexcept { return *fine_; }
  [[nodiscard]] const LatticeGeometry& coarse() const noexcept {
    return coarse_;
  }
  [[nodiscard]] const Coord& block() const noexcept { return block_; }

  /// Coarse cb index owning a fine cb index.
  [[nodiscard]] std::int64_t coarse_of(std::int64_t fine_cb) const noexcept {
    return coarse_of_[static_cast<std::size_t>(fine_cb)];
  }

  /// Fine cb indices of one aggregate, in ascending order.
  [[nodiscard]] const std::vector<std::int64_t>& sites(
      std::int64_t coarse_cb) const noexcept {
    return sites_[static_cast<std::size_t>(coarse_cb)];
  }

  /// Fine sites per aggregate (uniform by construction).
  [[nodiscard]] std::int64_t aggregate_size() const noexcept {
    return fine_->volume() / coarse_.volume();
  }

 private:
  static Coord coarse_dims(const LatticeGeometry& fine, const Coord& block) {
    Coord dims{};
    for (int mu = 0; mu < Nd; ++mu) {
      LQCD_REQUIRE(block[mu] >= 1 && fine.dim(mu) % block[mu] == 0,
                   "MG block extent must divide the fine lattice extent");
      dims[mu] = fine.dim(mu) / block[mu];
      LQCD_REQUIRE(dims[mu] >= 2 && dims[mu] % 2 == 0,
                   "MG coarse extent must be even and >= 2");
    }
    return dims;
  }

  const LatticeGeometry* fine_;
  Coord block_;
  LatticeGeometry coarse_;
  std::vector<std::int64_t> coarse_of_;           // fine cb -> coarse cb
  std::vector<std::vector<std::int64_t>> sites_;  // coarse cb -> fine cbs
};

}  // namespace lqcd::mg
