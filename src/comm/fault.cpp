#include "comm/fault.hpp"

#include "util/rng.hpp"

namespace lqcd {

namespace {
// Distinct stream salts per fault kind so the drop/corrupt/straggle
// decisions for one message are independent draws.
constexpr std::uint64_t kKindDrop = 0x11;
constexpr std::uint64_t kKindCorrupt = 0x22;
constexpr std::uint64_t kKindStraggle = 0x33;
constexpr std::uint64_t kKindPattern = 0x44;
constexpr std::uint64_t kKindTaskStraggle = 0x55;

std::uint64_t message_key(std::uint64_t epoch, int rank, int mu, int dir,
                          int attempt) {
  // Pack the message coordinates; fields are small so shifts are safe.
  return (epoch << 24) ^ (static_cast<std::uint64_t>(rank) << 8) ^
         (static_cast<std::uint64_t>(mu) << 4) ^
         (static_cast<std::uint64_t>(dir > 0 ? 1 : 0) << 3) ^
         static_cast<std::uint64_t>(attempt & 7);
}
}  // namespace

double FaultInjector::roll(std::uint64_t kind, std::uint64_t epoch, int rank,
                           int mu, int dir, int attempt,
                           std::uint64_t salt) const {
  CounterRng rng(seed_ ^ (kind * 0x9e3779b97f4a7c15ULL),
                 message_key(epoch, rank, mu, dir, attempt) + salt);
  return rng.uniform();
}

bool FaultInjector::take_budget() {
  std::int64_t b = budget_.load(std::memory_order_relaxed);
  while (b != -1) {
    if (b <= 0) return false;
    if (budget_.compare_exchange_weak(b, b - 1,
                                      std::memory_order_relaxed))
      return true;
  }
  return true;  // unlimited
}

bool FaultInjector::should_drop(std::uint64_t epoch, int rank, int mu,
                                int dir, int attempt) {
  const FaultSpec& s = spec_for(rank);
  if (!active(s, epoch) || s.drop_prob <= 0.0) return false;
  if (roll(kKindDrop, epoch, rank, mu, dir, attempt) >= s.drop_prob)
    return false;
  if (!take_budget()) return false;
  stats_.drops.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::corrupt(std::span<std::byte> payload,
                            std::uint64_t epoch, int rank, int mu, int dir,
                            int attempt) {
  const FaultSpec& s = spec_for(rank);
  if (payload.empty() || !active(s, epoch) || s.corrupt_prob <= 0.0)
    return false;
  if (roll(kKindCorrupt, epoch, rank, mu, dir, attempt) >= s.corrupt_prob)
    return false;
  if (!take_budget()) return false;

  // Flip 1–4 bits at deterministic positions (models a burst error).
  CounterRng rng(seed_ ^ (kKindPattern * 0x9e3779b97f4a7c15ULL),
                 message_key(epoch, rank, mu, dir, attempt));
  const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_u64() % payload.size());
    const int bit = static_cast<int>(rng.next_u64() % 8);
    payload[pos] ^= static_cast<std::byte>(1u << bit);
  }
  stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::straggle_us(std::uint64_t epoch, int rank) {
  const FaultSpec& s = spec_for(rank);
  if (!active(s, epoch) || s.straggle_prob <= 0.0) return 0.0;
  if (roll(kKindStraggle, epoch, rank, 0, 0, 0) >= s.straggle_prob)
    return 0.0;
  if (!take_budget()) return 0.0;
  stats_.straggles.fetch_add(1, std::memory_order_relaxed);
  return s.straggle_us;
}

double FaultInjector::task_straggle_mult(std::uint64_t epoch, int lane) {
  const FaultSpec& s = spec_for(lane);
  if (!active(s, epoch) || s.task_straggle_prob <= 0.0) return 1.0;
  if (roll(kKindTaskStraggle, epoch, lane, 0, 0, 0) >= s.task_straggle_prob)
    return 1.0;
  if (!take_budget()) return 1.0;
  stats_.task_straggles.fetch_add(1, std::memory_order_relaxed);
  return s.task_straggle_mult;
}

}  // namespace lqcd
