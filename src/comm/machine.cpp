#include "comm/machine.hpp"

#include "util/error.hpp"

namespace lqcd {

MachineModel blue_gene_q() {
  MachineModel m;
  m.name = "BlueGene/Q";
  m.node_gflops_double = 204.8;
  m.node_gflops_single = 409.6;
  m.mem_bw_gbs = 42.6;
  m.compute_efficiency = 0.55;
  m.link_bw_gbs = 2.0;
  m.links_per_node = 10;
  m.link_latency_us = 1.2;
  m.allreduce_latency_us = 1.5;  // hardware collective assist
  return m;
}

MachineModel k_computer() {
  MachineModel m;
  m.name = "K computer (Tofu)";
  m.node_gflops_double = 128.0;
  m.node_gflops_single = 256.0;
  m.mem_bw_gbs = 64.0;
  m.compute_efficiency = 0.6;
  m.link_bw_gbs = 5.0;
  m.links_per_node = 10;
  m.link_latency_us = 1.0;
  m.allreduce_latency_us = 2.0;
  return m;
}

MachineModel generic_cluster() {
  MachineModel m;
  m.name = "InfiniBand FDR cluster";
  m.node_gflops_double = 345.6;
  m.node_gflops_single = 691.2;
  m.mem_bw_gbs = 102.0;
  m.compute_efficiency = 0.5;
  m.link_bw_gbs = 6.8;
  m.links_per_node = 1;  // single rail shared by all directions
  m.link_latency_us = 1.5;
  m.allreduce_latency_us = 3.0;
  return m;
}

MachineModel machine_by_name(const std::string& name) {
  if (name == "bgq") return blue_gene_q();
  if (name == "k") return k_computer();
  if (name == "cluster") return generic_cluster();
  throw Error("unknown machine preset: " + name +
              " (expected bgq | k | cluster)");
}

}  // namespace lqcd
