#include "comm/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "dirac/simd_wilson.hpp"
#include "dirac/wilson.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "lattice/vector_lattice.hpp"
#include "linalg/simd.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace lqcd {

namespace {
std::int64_t volume_of(const Coord& c) {
  std::int64_t v = 1;
  for (int mu = 0; mu < Nd; ++mu) v *= c[mu];
  return v;
}

// Sustained table-driven CRC-32 throughput (GB/s) used to price message
// framing; conservative for a byte-at-a-time kernel on current cores.
constexpr double kCrcGBs = 2.0;
}  // namespace

DslashCost model_dslash(const Coord& local, const Coord& grid,
                        const MachineModel& m, const PerfModelOptions& opt) {
  DslashCost c;
  const double vloc = static_cast<double>(volume_of(local));
  const double prec = static_cast<double>(opt.precision_bytes);

  c.flops = 1320.0 * vloc;
  // Per site: 8 SU(3) links (18 reals each) + 8 neighbor spinors +
  // 1 diagonal read + 1 write (24 reals each).
  c.mem_bytes = vloc * (8.0 * 18.0 + 10.0 * 24.0) * prec;

  const double peak = m.peak_gflops(opt.precision_bytes) * 1e9 *
                      m.compute_efficiency;
  const double bw = m.mem_bw_gbs * 1e9 * m.compute_efficiency;
  c.t_compute =
      opt.calibration * std::max(c.flops / peak, c.mem_bytes / bw);

  // Halos: one face pair per decomposed direction; a projected halo
  // carries 12 reals per site, a full spinor 24. The wire may run a
  // lower precision than the math (int16 block float): each real then
  // costs halo_precision_bytes and each face site pays a 4-byte scale —
  // the β-term side of the precision ladder.
  const double halo_reals = opt.half_spinor_comm ? 12.0 : 24.0;
  const double wire_prec = opt.halo_precision_bytes > 0
                               ? static_cast<double>(opt.halo_precision_bytes)
                               : prec;
  const double scale_overhead = wire_prec < prec ? 4.0 : 0.0;
  int active = 0;
  double max_face_bytes = 0.0;
  for (int mu = 0; mu < Nd; ++mu) {
    if (grid[mu] <= 1) continue;
    ++active;
    const double face_sites = vloc / static_cast<double>(local[mu]);
    const double bytes =
        face_sites * (halo_reals * wire_prec + scale_overhead);
    c.comm_bytes += 2.0 * bytes;  // forward and backward faces
    max_face_bytes = std::max(max_face_bytes, bytes);
    c.messages += 2;
  }
  if (active > 0) {
    const int concurrency = std::min(m.links_per_node, 2 * active);
    const double link_bw =
        m.link_bw_gbs * 1e9 * static_cast<double>(concurrency);
    c.t_comm = m.link_latency_us * 1e-6 + c.comm_bytes / link_bw;

    // Resilience surcharge: CRC framing is a streaming pass over the
    // payload on both ends of the link; detected faults cost the expected
    // (truncated-geometric) number of retransmits, each paying latency,
    // bandwidth and doubling backoff.
    double t_res = 0.0;
    if (opt.checksummed_halo)
      t_res += 2.0 * c.comm_bytes / (kCrcGBs * 1e9);
    const double p =
        std::clamp(opt.message_fault_prob, 0.0, 0.999999);
    if (p > 0.0 && opt.max_retries > 0) {
      // E[extra sends] for success prob (1-p) truncated at max_retries.
      double expected_retx = 0.0;
      double expected_backoff_us = 0.0;
      double p_reach = 1.0;  // probability attempt k is needed
      for (int k = 1; k <= opt.max_retries; ++k) {
        p_reach *= p;
        expected_retx += p_reach;
        expected_backoff_us +=
            p_reach * opt.retry_backoff_us * static_cast<double>(1 << (k - 1));
      }
      const double avg_msg_bytes =
          c.comm_bytes / static_cast<double>(c.messages);
      t_res += static_cast<double>(c.messages) * expected_retx *
                   (m.link_latency_us * 1e-6 + avg_msg_bytes / link_bw) +
               static_cast<double>(c.messages) * expected_backoff_us * 1e-6;
      if (opt.checksummed_halo)
        t_res += expected_retx * 2.0 * c.comm_bytes / (kCrcGBs * 1e9);
    }
    c.t_resilience = t_res;
    c.t_comm += t_res;
  }

  // Overlap: only the interior window can hide comm. Sites within one
  // step of a face wait for the unpack (HaloLattice's interior/surface
  // partition — all 4 directions keep ghosts, decomposed or not), so the
  // hideable compute is t_compute * interior_fraction.
  double interior = 1.0;
  for (int mu = 0; mu < Nd; ++mu)
    interior *= static_cast<double>(std::max(0, local[mu] - 2)) /
                static_cast<double>(local[mu]);
  c.interior_fraction = interior;
  c.t_sequential = c.t_compute + c.t_comm;
  c.t_hidden = std::min(c.t_comm * opt.overlap, c.t_compute * interior);
  c.hidden_fraction = c.t_comm > 0.0 ? c.t_hidden / c.t_comm : 0.0;
  c.t_total = c.t_sequential - c.t_hidden;
  return c;
}

IterationCost model_cg_iteration(const Coord& local, const Coord& grid,
                                 int nodes, const MachineModel& m,
                                 const PerfModelOptions& opt) {
  IterationCost it;
  // Normal Schur operator: 4 half-volume dslashes = 2 full dslash
  // applications worth of flops/bytes/halos.
  DslashCost one = model_dslash(local, grid, m, opt);
  it.dslash = one;
  it.dslash.flops *= 2.0;
  it.dslash.mem_bytes *= 2.0;
  it.dslash.comm_bytes *= 2.0;
  it.dslash.messages *= 2;
  it.dslash.t_compute *= 2.0;
  it.dslash.t_comm *= 2.0;
  it.dslash.t_resilience *= 2.0;
  it.dslash.t_sequential *= 2.0;
  it.dslash.t_hidden *= 2.0;
  it.dslash.t_total *= 2.0;

  // Level-1 ops on the half volume: ~5 axpy/dot passes, 24 reals/site,
  // 2 accesses each. Strictly memory bound.
  const double vhalf = static_cast<double>(volume_of(local)) / 2.0;
  const double prec = static_cast<double>(opt.precision_bytes);
  const double bytes = 5.0 * 2.0 * 24.0 * prec * vhalf;
  it.t_linalg = opt.calibration * bytes /
                (m.mem_bw_gbs * 1e9 * m.compute_efficiency);

  // 2 allreduces over a log2 combining tree.
  const double stages = nodes > 1 ? std::ceil(std::log2(nodes)) : 0.0;
  it.t_allreduce = 2.0 * m.allreduce_latency_us * 1e-6 * stages;

  it.t_iter = it.dslash.t_total + it.t_linalg + it.t_allreduce;
  const double comm =
      (it.dslash.t_total - it.dslash.t_compute) + it.t_allreduce;
  it.comm_fraction = it.t_iter > 0.0 ? std::max(0.0, comm) / it.t_iter : 0.0;
  return it;
}

IterationCost model_sap_gcr_iteration(const Coord& local, const Coord& grid,
                                      int nodes, const MachineModel& m,
                                      const PerfModelOptions& opt,
                                      int cycles, int mr_iters) {
  IterationCost it;
  // Block solves: communication-free local dslash sweeps.
  DslashCost local_only = model_dslash(local, Coord{1, 1, 1, 1}, m, opt);
  const double local_sweeps =
      static_cast<double>(cycles) * (2.0 + static_cast<double>(mr_iters));
  // One global residual-refresh dslash per color per cycle communicates.
  DslashCost global = model_dslash(local, grid, m, opt);
  const double global_sweeps = 2.0 * static_cast<double>(cycles);

  it.dslash.flops =
      local_only.flops * local_sweeps + global.flops * global_sweeps;
  it.dslash.mem_bytes =
      local_only.mem_bytes * local_sweeps + global.mem_bytes * global_sweeps;
  it.dslash.comm_bytes = global.comm_bytes * global_sweeps;
  it.dslash.messages = global.messages * static_cast<int>(global_sweeps);
  it.dslash.t_compute = local_only.t_compute * local_sweeps +
                        global.t_compute * global_sweeps;
  it.dslash.t_comm = global.t_comm * global_sweeps;
  it.dslash.t_sequential = local_only.t_sequential * local_sweeps +
                           global.t_sequential * global_sweeps;
  it.dslash.t_hidden = global.t_hidden * global_sweeps;
  it.dslash.hidden_fraction = global.hidden_fraction;
  it.dslash.interior_fraction = global.interior_fraction;
  it.dslash.t_total = local_only.t_total * local_sweeps +
                      global.t_total * global_sweeps;

  const double vloc = static_cast<double>(volume_of(local));
  const double prec = static_cast<double>(opt.precision_bytes);
  const double bytes = 8.0 * 2.0 * 24.0 * prec * vloc;
  it.t_linalg = opt.calibration * bytes /
                (m.mem_bw_gbs * 1e9 * m.compute_efficiency);

  const double stages = nodes > 1 ? std::ceil(std::log2(nodes)) : 0.0;
  // GCR needs ~3 reductions per iteration (orthogonalization + norms).
  it.t_allreduce = 3.0 * m.allreduce_latency_us * 1e-6 * stages;

  it.t_iter = it.dslash.t_total + it.t_linalg + it.t_allreduce;
  const double comm =
      (it.dslash.t_total - it.dslash.t_compute) + it.t_allreduce;
  it.comm_fraction = it.t_iter > 0.0 ? std::max(0.0, comm) / it.t_iter : 0.0;
  return it;
}

namespace {
std::vector<ScalingPoint> scaling_curve(
    const std::vector<int>& nodes, const MachineModel& m,
    const PerfModelOptions& opt,
    const std::function<bool(int, Coord&, Coord&)>& layout) {
  std::vector<ScalingPoint> out;
  for (const int n : nodes) {
    Coord grid{}, local{};
    if (!layout(n, grid, local)) continue;
    ScalingPoint pt;
    pt.nodes = n;
    pt.grid = grid;
    pt.local = local;
    pt.cost = model_cg_iteration(local, grid, n, m, opt);
    pt.sustained_tflops = pt.cost.dslash.flops * n /
                          pt.cost.t_iter * 1e-12;
    out.push_back(pt);
  }
  if (!out.empty()) {
    // Efficiency normalized to the first (smallest) point's
    // flops-per-node-second.
    const double base = out.front().sustained_tflops /
                        static_cast<double>(out.front().nodes);
    for (auto& pt : out)
      pt.efficiency =
          (pt.sustained_tflops / static_cast<double>(pt.nodes)) / base;
  }
  return out;
}
}  // namespace

MgIterationCost model_mg_vcycle(const Coord& local, const Coord& grid,
                                int nodes, const MachineModel& m,
                                const PerfModelOptions& opt,
                                const MgModelParams& mg) {
  MgIterationCost out;
  // Fine level. model_sap_gcr_iteration prices one outer GCR iteration
  // wrapped around one smoother apply; the V-cycle runs the smoother
  // twice (pre + post), so double the cycles, then add the second
  // residual-refresh dslash the V-cycle does between correction and
  // post-smoothing.
  out.fine = model_sap_gcr_iteration(local, grid, nodes, m, opt,
                                     2 * mg.smoother_cycles,
                                     mg.smoother_mr_iters);
  const DslashCost refresh = model_dslash(local, grid, m, opt);
  out.fine.dslash.flops += refresh.flops;
  out.fine.dslash.mem_bytes += refresh.mem_bytes;
  out.fine.dslash.comm_bytes += refresh.comm_bytes;
  out.fine.dslash.messages += refresh.messages;
  out.fine.dslash.t_compute += refresh.t_compute;
  out.fine.dslash.t_comm += refresh.t_comm;
  out.fine.dslash.t_sequential += refresh.t_sequential;
  out.fine.dslash.t_hidden += refresh.t_hidden;
  out.fine.dslash.t_total += refresh.t_total;
  out.fine.t_iter += refresh.t_total;

  // Coarse level: each aggregate becomes one site carrying 2*nvec complex
  // dof; the Galerkin stencil is 9 dense blocks per site.
  Coord coarse_local{};
  for (int mu = 0; mu < Nd; ++mu)
    coarse_local[mu] = std::max(1, local[mu] / mg.block[mu]);
  const double vc = static_cast<double>(volume_of(coarse_local));
  const double ncols = 2.0 * static_cast<double>(mg.nvec);
  const double iters = static_cast<double>(mg.coarse_iterations);

  out.coarse_flops = iters * vc * 9.0 * ncols * ncols * 8.0;
  const double peak = m.peak_gflops(opt.precision_bytes) * 1e9 *
                      m.compute_efficiency;
  out.t_coarse_compute = opt.calibration * out.coarse_flops / peak;

  // Coarse halos: a face site ships ncols complex numbers. The payloads
  // are so small that per-message latency dominates — which is exactly
  // why the coarse level sets the method's strong-scaling floor.
  const double prec = static_cast<double>(opt.precision_bytes);
  const double wire_prec = opt.halo_precision_bytes > 0
                               ? static_cast<double>(opt.halo_precision_bytes)
                               : prec;
  const double scale_overhead = wire_prec < prec ? 4.0 : 0.0;
  double bytes_per_apply = 0.0;
  int msgs_per_apply = 0;
  int active = 0;
  for (int mu = 0; mu < Nd; ++mu) {
    if (grid[mu] <= 1) continue;
    ++active;
    const double face_sites = vc / static_cast<double>(coarse_local[mu]);
    bytes_per_apply +=
        2.0 * face_sites * (ncols * 2.0 * wire_prec + scale_overhead);
    msgs_per_apply += 2;
  }
  out.coarse_comm_bytes = iters * bytes_per_apply;
  out.coarse_messages = mg.coarse_iterations * msgs_per_apply;
  if (active > 0) {
    const int concurrency = std::min(m.links_per_node, 2 * active);
    const double link_bw =
        m.link_bw_gbs * 1e9 * static_cast<double>(concurrency);
    out.t_coarse_comm =
        iters * (m.link_latency_us * 1e-6 + bytes_per_apply / link_bw);
  }
  // Two reductions (orthogonalization + norm) per coarse GCR iteration.
  const double stages = nodes > 1 ? std::ceil(std::log2(nodes)) : 0.0;
  out.t_coarse_allreduce =
      2.0 * iters * m.allreduce_latency_us * 1e-6 * stages;

  out.t_coarse =
      out.t_coarse_compute + out.t_coarse_comm + out.t_coarse_allreduce;
  out.t_vcycle = out.fine.t_iter + out.t_coarse;
  out.coarse_fraction =
      out.t_vcycle > 0.0 ? out.t_coarse / out.t_vcycle : 0.0;
  return out;
}

std::vector<ScalingPoint> strong_scaling(const Coord& global,
                                         const MachineModel& m,
                                         const PerfModelOptions& opt,
                                         const std::vector<int>& nodes) {
  return scaling_curve(nodes, m, opt,
                       [&](int n, Coord& grid, Coord& local) {
                         if (!can_decompose(global, n)) return false;
                         grid = choose_grid(global, n);
                         const ProcessGrid pg(grid);
                         local = pg.local_dims(global);
                         return true;
                       });
}

std::vector<ScalingPoint> weak_scaling(const Coord& local,
                                       const MachineModel& m,
                                       const PerfModelOptions& opt,
                                       const std::vector<int>& nodes) {
  return scaling_curve(nodes, m, opt,
                       [&](int n, Coord& grid, Coord& loc) {
                         // Build the grid by factorizing n over directions
                         // round-robin (weak scaling keeps local fixed).
                         grid = {1, 1, 1, 1};
                         int rem = n;
                         int mu = 3;
                         while (rem > 1) {
                           int p = 0;
                           for (int cand : {2, 3, 5, 7})
                             if (rem % cand == 0) {
                               p = cand;
                               break;
                             }
                           if (p == 0) return false;
                           grid[mu] *= p;
                           rem /= p;
                           mu = (mu + 3) % Nd;  // cycle t,z,y,x
                         }
                         loc = local;
                         return true;
                       });
}

namespace {

/// Seconds per full-lattice sweep of the scalar reference dslash.
template <typename T>
double time_scalar_calibration(const LatticeGeometry& geo, int reps) {
  GaugeFieldD ud(geo);
  ud.set_random(SiteRngFactory(77));
  GaugeField<T> u(geo);
  convert_gauge(u, ud);
  FermionField<T> in(geo), out(geo);
  for (auto& s : in.span()) s.s[0].c[0] = Cplx<T>(T(1));
  WallTimer t;
  for (int i = 0; i < reps; ++i)
    dslash_full(out.span(),
                std::span<const WilsonSpinor<T>>(in.span().data(),
                                                 in.span().size()),
                u);
  return t.seconds() / reps;
}

/// Seconds per full-lattice sweep of the lane-packed dslash at width W,
/// charging the ghost permutation fill each sweep exactly as a production
/// sweep pays it. Negative when the geometry does not decompose at W.
template <typename T, int W>
double time_vector_calibration(const LatticeGeometry& geo, int reps) {
  const auto vl = VectorLattice::make(geo, W);
  if (!vl) return -1.0;
  GaugeFieldD ud(geo);
  ud.set_random(SiteRngFactory(77));
  GaugeField<T> u(geo);
  convert_gauge(u, ud);
  const VectorGaugeField<T, W> vg(*vl, u);
  FermionField<T> in(geo);
  for (auto& s : in.span()) s.s[0].c[0] = Cplx<T>(T(1));
  const auto total = static_cast<std::size_t>(vl->total_sites());
  aligned_vector<WilsonSpinor<Simd<T, W>>> vin(total), vout(total);
  std::span<WilsonSpinor<Simd<T, W>>> vin_s(vin.data(), vin.size());
  pack_sites<T, W>(*vl,
                   std::span<const WilsonSpinor<T>>(in.span().data(),
                                                    in.span().size()),
                   vin_s);
  WallTimer t;
  for (int i = 0; i < reps; ++i) {
    vl->fill_ghosts(vin_s);
    simd_dslash_full<T, W>(
        {vout.data(), vout.size()},
        std::span<const WilsonSpinor<Simd<T, W>>>(vin.data(), vin.size()),
        vg);
  }
  return t.seconds() / reps;
}

template <typename T>
double time_calibration(const LatticeGeometry& geo, int reps,
                        int simd_width) {
  double measured = -1.0;
  switch (simd_width) {
    case 2: measured = time_vector_calibration<T, 2>(geo, reps); break;
    case 4: measured = time_vector_calibration<T, 4>(geo, reps); break;
    case 8: measured = time_vector_calibration<T, 8>(geo, reps); break;
    default: break;
  }
  if (measured < 0.0) measured = time_scalar_calibration<T>(geo, reps);
  return measured;
}

}  // namespace

double calibrate_node(const MachineModel& m, int precision_bytes,
                      int simd_width) {
  // Time the real dslash kernel on an 8^4 local volume, single domain.
  const LatticeGeometry geo({8, 8, 8, 8});
  const int reps = 10;

  const double measured =
      precision_bytes >= 8
          ? time_calibration<double>(geo, reps, simd_width)
          : time_calibration<float>(geo, reps, simd_width);

  PerfModelOptions opt;
  opt.precision_bytes = precision_bytes;
  opt.calibration = 1.0;
  const DslashCost modeled =
      model_dslash({8, 8, 8, 8}, {1, 1, 1, 1}, m, opt);
  LQCD_ASSERT(modeled.t_compute > 0.0, "model produced zero time");
  return measured / modeled.t_compute;
}

}  // namespace lqcd
