#include "comm/halo.hpp"

namespace lqcd {

HaloLattice::HaloLattice(const Coord& local_dims) : l_(local_dims) {
  interior_vol_ = 1;
  ext_vol_ = 1;
  for (int mu = 0; mu < Nd; ++mu) {
    LQCD_REQUIRE(l_[mu] >= 2, "local extent must be >= 2 for depth-1 halos");
    e_[mu] = l_[mu] + 2;
    interior_vol_ *= l_[mu];
    ext_vol_ *= e_[mu];
  }
  // Overlap partition: sites >= 1 away from every local face have their
  // full stencil closed over resident data and can be computed while the
  // halo exchange is in flight; the rest wait for the ghosts. The parity
  // split ((x0+x1+x2+x3) mod 2 of the local coordinate) serves the
  // even-odd operators, which sweep one checkerboard at a time.
  for (std::int64_t i = 0; i < interior_vol_; ++i) {
    const Coord x = interior_coords(i);
    bool deep = true;
    for (int mu = 0; mu < Nd; ++mu)
      deep = deep && x[mu] > 0 && x[mu] < l_[mu] - 1;
    const auto par =
        static_cast<std::size_t>((x[0] + x[1] + x[2] + x[3]) & 1);
    (deep ? interior_all_ : surface_all_).push_back(i);
    (deep ? interior_par_ : surface_par_)[par].push_back(i);
  }
}

}  // namespace lqcd
