#include "comm/halo.hpp"

namespace lqcd {

HaloLattice::HaloLattice(const Coord& local_dims) : l_(local_dims) {
  interior_vol_ = 1;
  ext_vol_ = 1;
  for (int mu = 0; mu < Nd; ++mu) {
    LQCD_REQUIRE(l_[mu] >= 2, "local extent must be >= 2 for depth-1 halos");
    e_[mu] = l_[mu] + 2;
    interior_vol_ *= l_[mu];
    ext_vol_ *= e_[mu];
  }
}

}  // namespace lqcd
