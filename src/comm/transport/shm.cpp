#include "comm/transport/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace lqcd::transport {

namespace {

constexpr std::uint64_t kShmMagic = 0x314D454D48535154ull;  // "TQSHMEM1"
constexpr std::size_t kHeaderBytes = 4096;
/// head | pad | tail | pad, each on its own cacheline.
constexpr std::size_t kRingCtrlBytes = 128;
constexpr std::size_t kReadChunk = 1 << 16;

struct ShmHeader {
  std::uint64_t magic;
  std::uint32_t ranks;
  std::uint32_t ring_bytes;
  std::uint32_t dead[kShmMaxRanks];
};
static_assert(sizeof(ShmHeader) <= kHeaderBytes);

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error("shm transport: " + what + ": " + std::strerror(errno));
}

[[nodiscard]] std::size_t ring_stride(std::uint32_t ring_bytes) {
  return kRingCtrlBytes + ring_bytes;
}

[[nodiscard]] std::atomic_ref<std::uint64_t> head_ref(std::byte* ring) {
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(ring));
}
[[nodiscard]] std::atomic_ref<std::uint64_t> tail_ref(std::byte* ring) {
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(ring + 64));
}
[[nodiscard]] std::byte* ring_buf(std::byte* ring) {
  return ring + kRingCtrlBytes;
}

/// Copy into/out of the ring buffer with wraparound (capacity is a
/// power of two; head/tail are monotonic).
void ring_copy_in(std::byte* buf, std::uint32_t cap, std::uint64_t pos,
                  const std::byte* src, std::size_t n) {
  const std::size_t off = static_cast<std::size_t>(pos & (cap - 1));
  const std::size_t first = std::min<std::size_t>(n, cap - off);
  std::memcpy(buf + off, src, first);
  if (n > first) std::memcpy(buf, src + first, n - first);
}
void ring_copy_out(std::byte* dst, const std::byte* buf, std::uint32_t cap,
                   std::uint64_t pos, std::size_t n) {
  const std::size_t off = static_cast<std::size_t>(pos & (cap - 1));
  const std::size_t first = std::min<std::size_t>(n, cap - off);
  std::memcpy(dst, buf + off, first);
  if (n > first) std::memcpy(dst + first, buf, n - first);
}

}  // namespace

std::size_t shm_segment_bytes(int n, std::uint32_t ring_bytes) {
  return kHeaderBytes + static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(n) *
                            ring_stride(ring_bytes);
}

void shm_create(const std::string& path, int n, std::uint32_t ring_bytes) {
  LQCD_REQUIRE(n >= 1 && n <= kShmMaxRanks, "shm_create: bad rank count");
  LQCD_REQUIRE(ring_bytes >= 4096 &&
                   (ring_bytes & (ring_bytes - 1)) == 0,
               "shm_create: ring_bytes must be a power of two >= 4096");
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0600);
  if (fd < 0) sys_fail("open " + path);
  const std::size_t total = shm_segment_bytes(n, ring_bytes);
  if (::ftruncate(fd, static_cast<off_t>(total)) < 0) sys_fail("ftruncate");
  void* p = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) sys_fail("mmap");
  ::close(fd);
  std::memset(p, 0, kHeaderBytes);
  ShmHeader* h = static_cast<ShmHeader*>(p);
  h->ranks = static_cast<std::uint32_t>(n);
  h->ring_bytes = ring_bytes;
  // Publish the magic last: a mapper seeing it sees a complete header.
  std::atomic_ref<std::uint64_t>(h->magic).store(
      kShmMagic, std::memory_order_release);
  ::munmap(p, total);
}

void shm_mark_dead(const std::string& path, int rank) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) sys_fail("open " + path);
  void* p = ::mmap(nullptr, kHeaderBytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) sys_fail("mmap");
  ::close(fd);
  ShmHeader* h = static_cast<ShmHeader*>(p);
  LQCD_REQUIRE(rank >= 0 &&
                   rank < static_cast<int>(h->ranks),
               "shm_mark_dead: rank out of range");
  std::atomic_ref<std::uint32_t>(h->dead[rank]).store(
      1, std::memory_order_release);
  ::munmap(p, kHeaderBytes);
}

ShmTransport::ShmTransport(int rank, int size, const std::string& path)
    : Transport(rank, size),
      readers_(static_cast<std::size_t>(size)),
      outbox_(static_cast<std::size_t>(size)) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) sys_fail("open " + path);
  struct stat st{};
  if (::fstat(fd, &st) < 0) sys_fail("fstat");
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  void* p = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
  if (p == MAP_FAILED) sys_fail("mmap");
  ::close(fd);
  map_ = static_cast<std::byte*>(p);
  ShmHeader* h = reinterpret_cast<ShmHeader*>(map_);
  LQCD_REQUIRE(std::atomic_ref<std::uint64_t>(h->magic).load(
                   std::memory_order_acquire) == kShmMagic,
               "shm transport: segment not initialized");
  LQCD_REQUIRE(static_cast<int>(h->ranks) == size,
               "shm transport: segment rank count mismatch");
  ring_bytes_ = h->ring_bytes;
  LQCD_REQUIRE(map_bytes_ >= shm_segment_bytes(size, ring_bytes_),
               "shm transport: segment too small");
}

ShmTransport::~ShmTransport() {
  if (map_ != nullptr) {
    // Bounded best-effort flush of spilled frames, so a clean exit does
    // not strand a final message (the deadline keeps teardown finite
    // when the consumer is already gone or no longer draining).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(2);
    while (!rank_dead(rank())) {  // already declared dead: peers drop us
      bool moved = false;
      bool pending = false;
      for (int dst = 0; dst < size(); ++dst) {
        if (dst == rank()) continue;
        moved = flush_outbox(dst) || moved;
        if (!outbox_[static_cast<std::size_t>(dst)].chunks.empty())
          pending = true;
      }
      if (!pending || std::chrono::steady_clock::now() >= deadline) break;
      if (!moved)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    // Cover clean exits and the thread harness; the launcher's waitpid
    // covers crashes.
    ShmHeader* h = reinterpret_cast<ShmHeader*>(map_);
    std::atomic_ref<std::uint32_t>(h->dead[rank()])
        .store(1, std::memory_order_release);
    ::munmap(map_, map_bytes_);
  }
}

std::byte* ShmTransport::ring_base(int src, int dst) const {
  const std::size_t idx = static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(size()) +
                          static_cast<std::size_t>(dst);
  return map_ + kHeaderBytes + idx * ring_stride(ring_bytes_);
}

bool ShmTransport::rank_dead(int r) const {
  const ShmHeader* h = reinterpret_cast<const ShmHeader*>(map_);
  return std::atomic_ref<const std::uint32_t>(h->dead[r]).load(
             std::memory_order_acquire) != 0;
}

bool ShmTransport::peer_alive(int r) const {
  if (r == rank()) return true;
  return !rank_dead(r);
}

std::size_t ShmTransport::ring_write_some(int dst,
                                          std::span<const std::byte> data) {
  std::byte* ring = ring_base(rank(), dst);
  auto head = head_ref(ring);
  auto tail = tail_ref(ring);
  const std::uint64_t t = tail.load(std::memory_order_relaxed);
  const std::uint64_t hd = head.load(std::memory_order_acquire);
  const std::size_t free = ring_bytes_ - static_cast<std::size_t>(t - hd);
  const std::size_t n = std::min(free, data.size());
  if (n == 0) return 0;
  ring_copy_in(ring_buf(ring), ring_bytes_, t, data.data(), n);
  tail.store(t + n, std::memory_order_release);
  return n;
}

bool ShmTransport::flush_outbox(int dst) {
  Outbox& ob = outbox_[static_cast<std::size_t>(dst)];
  if (ob.chunks.empty()) return false;
  if (rank_dead(dst)) {  // consumer gone: the bytes die with it
    ob.chunks.clear();
    ob.off = 0;
    return false;
  }
  bool moved = false;
  while (!ob.chunks.empty()) {
    const std::vector<std::byte>& front = ob.chunks.front();
    const std::size_t w = ring_write_some(
        dst, {front.data() + ob.off, front.size() - ob.off});
    if (w == 0) break;
    moved = true;
    ob.off += w;
    if (ob.off == front.size()) {
      ob.chunks.pop_front();
      ob.off = 0;
    }
  }
  return moved;
}

void ShmTransport::enqueue_frame(int dst, std::uint64_t tag,
                                 std::uint32_t flags, std::uint32_t crc,
                                 std::span<const std::byte> payload) {
  if (rank_dead(dst)) return;
  FrameHeader h;
  h.src = static_cast<std::uint32_t>(rank());
  h.dst = static_cast<std::uint32_t>(dst);
  h.flags = flags;
  h.tag = tag;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.payload_crc = crc;
  std::byte hdr[kFrameHeaderBytes];
  encode_header(hdr, h);
  wstats_.wire_frames += 1;
  wstats_.wire_bytes +=
      static_cast<std::int64_t>(kFrameHeaderBytes + payload.size());
  // Never block on a full ring: what doesn't fit spills to the outbox
  // (flushed by pump()), preserving byte order behind earlier spills.
  flush_outbox(dst);
  Outbox& ob = outbox_[static_cast<std::size_t>(dst)];
  const auto put = [&](std::span<const std::byte> s) {
    if (ob.chunks.empty()) s = s.subspan(ring_write_some(dst, s));
    if (!s.empty()) ob.chunks.emplace_back(s.begin(), s.end());
  };
  put({hdr, kFrameHeaderBytes});
  put(payload);
}

bool ShmTransport::pump() {
  bool moved = false;
  for (int dst = 0; dst < size(); ++dst)
    if (dst != rank()) moved = flush_outbox(dst) || moved;
  std::byte chunk[kReadChunk];
  for (int src = 0; src < size(); ++src) {
    if (src == rank()) continue;
    std::byte* ring = ring_base(src, rank());
    auto head = head_ref(ring);
    auto tail = tail_ref(ring);
    std::uint64_t hd = head.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t tl = tail.load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(tl - hd);
      if (avail == 0) break;
      const std::size_t n = std::min(avail, kReadChunk);
      ring_copy_out(chunk, ring_buf(ring), ring_bytes_, hd, n);
      hd += n;
      head.store(hd, std::memory_order_release);
      readers_[static_cast<std::size_t>(src)].feed({chunk, n});
      moved = true;
      if (n < kReadChunk) break;
    }
    FrameReader& reader = readers_[static_cast<std::size_t>(src)];
    FrameHeader h;
    std::vector<std::byte> payload;
    while (reader.next(h, payload)) {
      LQCD_REQUIRE(static_cast<int>(h.dst) == rank(),
                   "shm transport: misrouted frame");
      LQCD_REQUIRE(static_cast<int>(h.src) == src,
                   "shm transport: frame src does not match ring");
      if (h.flags & kFlagNack) {
        LQCD_REQUIRE(payload.size() == sizeof(std::uint32_t),
                     "shm transport: malformed NACK");
        std::uint32_t attempt;
        std::memcpy(&attempt, payload.data(), sizeof attempt);
        service_nack(src, h.tag, attempt);
        continue;
      }
      Inbound f;
      f.flags = h.flags;
      f.crc = h.payload_crc;
      f.maybe_clean = false;
      f.payload = std::move(payload);
      inbox_[InboxKey{src, h.tag}].push_back(std::move(f));
      payload = {};
    }
  }
  return moved;
}

bool ShmTransport::inbox_pop(int src, std::uint64_t tag, Inbound& out) {
  const auto it = inbox_.find(InboxKey{src, tag});
  if (it == inbox_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) inbox_.erase(it);
  return true;
}

void ShmTransport::raw_send(int dst, std::uint64_t tag, std::uint32_t flags,
                            std::uint32_t crc, bool tampered,
                            std::span<const std::byte> wire,
                            std::span<const std::byte> pristine) {
  (void)tampered;
  (void)pristine;
  enqueue_frame(dst, tag, flags, crc, wire);
}

Transport::Inbound ShmTransport::raw_fetch(int src, std::uint64_t tag) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      recv_timeout_ms_ > 0
          ? Clock::now() + std::chrono::milliseconds(recv_timeout_ms_)
          : Clock::time_point::max();
  Inbound f;
  int spins = 0;
  for (;;) {
    if (inbox_pop(src, tag, f)) return f;
    const bool moved = pump();
    if (inbox_pop(src, tag, f)) return f;
    // Drain-then-fail: the peer is dead and pump() moved nothing, so
    // every complete frame it left behind has been dispatched. Any
    // residue still in the reader is a torn frame from a producer
    // killed mid-write — it can never complete, so fail now rather
    // than wait for bytes that will never arrive.
    if (rank_dead(src) && !moved)
      throw TransientError(
          "shm transport: rank " + std::to_string(src) +
          " died before delivering tag " + std::to_string(tag) +
          (readers_[static_cast<std::size_t>(src)].buffered() != 0
               ? " (torn frame left in ring)"
               : ""));
    if (Clock::now() >= deadline)
      throw TransientError("shm transport: timed out waiting for rank " +
                           std::to_string(src));
    if (moved) {
      spins = 0;
    } else if (++spins < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

bool ShmTransport::raw_try_fetch(int src, std::uint64_t tag, Inbound& out) {
  if (inbox_pop(src, tag, out)) return true;
  pump();
  return inbox_pop(src, tag, out);
}

Transport::Inbound ShmTransport::redeliver(int src, std::uint64_t tag,
                                           int attempt, Inbound prev) {
  (void)prev;
  std::uint32_t a = static_cast<std::uint32_t>(attempt);
  std::byte buf[sizeof a];
  std::memcpy(buf, &a, sizeof a);
  enqueue_frame(src, tag, kFlagNack, 0, {buf, sizeof a});
  return raw_fetch(src, tag);
}

void ShmTransport::drain_backend() {
  pump();
  inbox_.clear();
}

}  // namespace lqcd::transport
