#include "comm/transport/inprocess.hpp"

#include <utility>

namespace lqcd::transport {

namespace {
[[nodiscard]] std::uint64_t route_of(int src, int dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
          << 32) |
         static_cast<std::uint32_t>(dst);
}
}  // namespace

InProcessTransport::InProcessTransport(std::shared_ptr<InProcessHub> hub,
                                       int rank)
    : Transport(rank, hub->size()), hub_(std::move(hub)) {}

void InProcessTransport::raw_send(int dst, std::uint64_t tag,
                                  std::uint32_t flags, std::uint32_t crc,
                                  bool tampered,
                                  std::span<const std::byte> wire,
                                  std::span<const std::byte> pristine) {
  // Modeled wire accounting: the frame this record would serialize to.
  wstats_.wire_frames += 1;
  wstats_.wire_bytes +=
      static_cast<std::int64_t>(kFrameHeaderBytes + wire.size());
  InProcessHub::Record rec;
  rec.flags = flags;
  rec.crc = crc;
  rec.maybe_clean = !tampered;
  rec.payload.assign(wire.begin(), wire.end());
  if (injector_ != nullptr && tag_kind(tag) == TagKind::kHalo)
    rec.pristine.assign(pristine.begin(), pristine.end());
  {
    const std::lock_guard<std::mutex> lock(hub_->mu_);
    hub_->mail_[InProcessHub::MailKey{route_of(rank(), dst), tag}]
        .push_back(std::move(rec));
  }
  hub_->cv_.notify_all();
}

Transport::Inbound InProcessTransport::raw_fetch(int src,
                                                 std::uint64_t tag) {
  const InProcessHub::MailKey key{route_of(src, rank()), tag};
  std::unique_lock<std::mutex> lock(hub_->mu_);
  hub_->cv_.wait(lock, [&] {
    const auto it = hub_->mail_.find(key);
    return it != hub_->mail_.end() && !it->second.empty();
  });
  auto it = hub_->mail_.find(key);
  InProcessHub::Record rec = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) hub_->mail_.erase(it);
  lock.unlock();
  Inbound f;
  f.flags = rec.flags;
  f.crc = rec.crc;
  f.maybe_clean = rec.maybe_clean;
  f.payload = std::move(rec.payload);
  f.pristine = std::move(rec.pristine);
  return f;
}

bool InProcessTransport::raw_try_fetch(int src, std::uint64_t tag,
                                       Inbound& out) {
  const InProcessHub::MailKey key{route_of(src, rank()), tag};
  const std::lock_guard<std::mutex> lock(hub_->mu_);
  const auto it = hub_->mail_.find(key);
  if (it == hub_->mail_.end() || it->second.empty()) return false;
  InProcessHub::Record rec = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) hub_->mail_.erase(it);
  out.flags = rec.flags;
  out.crc = rec.crc;
  out.maybe_clean = rec.maybe_clean;
  out.payload = std::move(rec.payload);
  out.pristine = std::move(rec.pristine);
  return true;
}

Transport::Inbound InProcessTransport::redeliver(int src, std::uint64_t tag,
                                                 int attempt, Inbound prev) {
  (void)src;
  // The pristine copy rode along with the record: redelivery is a local
  // re-roll of the injector schedule for this attempt.
  return local_redeliver(tag, attempt, std::move(prev));
}

void InProcessTransport::drain_backend() {
  const std::lock_guard<std::mutex> lock(hub_->mu_);
  const std::uint32_t me = static_cast<std::uint32_t>(rank());
  for (auto it = hub_->mail_.begin(); it != hub_->mail_.end();) {
    if (static_cast<std::uint32_t>(it->first.route & 0xFFFFFFFFu) == me)
      it = hub_->mail_.erase(it);
    else
      ++it;
  }
}

std::vector<std::unique_ptr<Transport>> make_inprocess_group(int n) {
  auto hub = std::make_shared<InProcessHub>(n);
  std::vector<std::unique_ptr<Transport>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    out.push_back(std::make_unique<InProcessTransport>(hub, r));
  return out;
}

}  // namespace lqcd::transport
