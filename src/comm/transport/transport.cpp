#include "comm/transport/transport.hpp"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "comm/transport/inprocess.hpp"
#include "comm/transport/shm.hpp"
#include "comm/transport/socket.hpp"
#include "util/crc32.hpp"

namespace lqcd::transport {

namespace {
/// Pristine-cache bound: halo traffic keeps at most 8 live tags per
/// peer; 64 entries absorbs pipelined epochs without unbounded growth.
constexpr std::size_t kMaxPristineEntries = 64;
}  // namespace

const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kInProcess:
      return "virtual";
    case TransportKind::kSocket:
      return "socket";
    case TransportKind::kShm:
      return "shm";
  }
  return "?";
}

TransportKind parse_transport_kind(std::string_view name) {
  if (name == "virtual" || name == "inprocess")
    return TransportKind::kInProcess;
  if (name == "socket") return TransportKind::kSocket;
  if (name == "shm") return TransportKind::kShm;
  throw Error("unknown transport '" + std::string(name) +
              "' (expected virtual, socket, or shm)");
}

Transport::Transport(int rank, int size) : rank_(rank), size_(size) {
  LQCD_REQUIRE(size >= 1, "transport: size must be >= 1");
  LQCD_REQUIRE(rank >= 0 && rank < size, "transport: rank out of range");
}

bool Transport::roll_send_faults(std::span<std::byte> buf, std::uint64_t tag,
                                 int dst_rank, int attempt, bool& tampered) {
  tampered = false;
  if (injector_ == nullptr || tag_kind(tag) != TagKind::kHalo) return true;
  const std::uint64_t epoch = halo_epoch(tag);
  const int mu = halo_mu(tag);
  const int dir = halo_dir(tag);
  if (injector_->should_drop(epoch, dst_rank, mu, dir, attempt))
    return false;
  tampered = injector_->corrupt(buf, epoch, dst_rank, mu, dir, attempt);
  return true;
}

void Transport::send(int dst, std::uint64_t tag,
                     std::span<const std::byte> payload) {
  LQCD_REQUIRE(dst >= 0 && dst < size_, "transport send: rank out of range");
  wstats_.frames += 1;
  wstats_.payload_bytes += static_cast<std::int64_t>(payload.size());
  std::uint32_t crc = 0;
  if (resil_.checksum) {
    crc = crc32(payload.data(), payload.size());
    wstats_.checksum_bytes += static_cast<std::int64_t>(payload.size());
  }
  std::vector<std::byte> buf(payload.begin(), payload.end());
  bool tampered = false;
  const bool arrived = roll_send_faults(buf, tag, dst, 0, tampered);
  const std::uint32_t flags = arrived ? 0u : kFlagDropMarker;
  // Cache a pristine copy whenever this message could be NACKed back:
  // under an attached injector halo frames fail on schedule, and with
  // checksumming on, any frame can fail a genuine wire CRC check.
  const bool cacheable =
      resil_.checksum ||
      (injector_ != nullptr && tag_kind(tag) == TagKind::kHalo);
  if (dst == rank_) {
    // Self route: no wire, but the same fault/verify/redeliver protocol,
    // so grids with extent-1 process dimensions keep their schedules.
    Inbound f;
    f.flags = flags;
    f.crc = crc;
    f.maybe_clean = !tampered;
    if (cacheable) f.pristine.assign(payload.begin(), payload.end());
    if (arrived) f.payload = std::move(buf);
    self_inbox_[tag].push_back(std::move(f));
    return;
  }
  if (cacheable) stash_pristine(dst, tag, crc, payload);
  raw_send(dst, tag, flags, crc, tampered,
           arrived ? std::span<const std::byte>(buf)
                   : std::span<const std::byte>{},
           payload);
}

Transport::Inbound Transport::self_fetch(std::uint64_t tag) {
  auto it = self_inbox_.find(tag);
  LQCD_REQUIRE(it != self_inbox_.end() && !it->second.empty(),
               "transport recv: no matching self-send for tag");
  Inbound f = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) self_inbox_.erase(it);
  return f;
}

void Transport::deliver(int src, std::uint64_t tag, Inbound f,
                        std::vector<std::byte>& out) {
  int attempt = 0;
  for (;;) {
    const bool dropped = (f.flags & kFlagDropMarker) != 0;
    bool ok = !dropped;
    if (ok && resil_.checksum && !f.maybe_clean)
      ok = crc32(f.payload.data(), f.payload.size()) == f.crc;
    if (ok) {
      out = std::move(f.payload);
      return;
    }
    if (dropped)
      wstats_.timeouts += 1;
    else
      wstats_.crc_failures += 1;
    if (attempt >= resil_.max_retries)
      throw FatalError("transport: message from rank " +
                       std::to_string(src) + " (tag " + std::to_string(tag) +
                       ") unrecoverable after " +
                       std::to_string(attempt + 1) + " attempts");
    ++attempt;
    wstats_.retransmits += 1;
    wstats_.modeled_delay_us +=
        resil_.backoff_us * static_cast<double>(1 << (attempt - 1));
    f = src == rank_ ? local_redeliver(tag, attempt, std::move(f))
                     : redeliver(src, tag, attempt, std::move(f));
  }
}

void Transport::recv(int src, std::uint64_t tag,
                     std::vector<std::byte>& out) {
  LQCD_REQUIRE(src >= 0 && src < size_, "transport recv: rank out of range");
  Inbound f = src == rank_ ? self_fetch(tag) : raw_fetch(src, tag);
  deliver(src, tag, std::move(f), out);
}

bool Transport::try_recv(int src, std::uint64_t tag,
                         std::vector<std::byte>& out) {
  LQCD_REQUIRE(src >= 0 && src < size_, "transport recv: rank out of range");
  Inbound f;
  if (src == rank_) {
    const auto it = self_inbox_.find(tag);
    if (it == self_inbox_.end() || it->second.empty()) return false;
    f = self_fetch(tag);
  } else {
    if (!raw_try_fetch(src, tag, f)) return false;
  }
  deliver(src, tag, std::move(f), out);
  return true;
}

Transport::Inbound Transport::local_redeliver(std::uint64_t tag, int attempt,
                                              Inbound prev) {
  LQCD_ASSERT(!prev.pristine.empty() || prev.crc == 0,
              "transport: local redelivery without a pristine copy");
  Inbound f;
  f.crc = prev.crc;
  f.pristine = std::move(prev.pristine);
  f.payload = f.pristine;
  bool tampered = false;
  const bool arrived =
      roll_send_faults(f.payload, tag, rank_, attempt, tampered);
  f.flags = arrived ? 0u : kFlagDropMarker;
  if (!arrived) f.payload.clear();
  f.maybe_clean = !tampered;
  if (resil_.checksum)
    wstats_.checksum_bytes += static_cast<std::int64_t>(f.pristine.size());
  return f;
}

void Transport::stash_pristine(int dst, std::uint64_t tag, std::uint32_t crc,
                               std::span<const std::byte> payload) {
  const CacheKey key{dst, tag};
  if (pristine_cache_.find(key) == pristine_cache_.end()) {
    pristine_order_.push_back(key);
    while (pristine_order_.size() > kMaxPristineEntries) {
      pristine_cache_.erase(pristine_order_.front());
      pristine_order_.pop_front();
    }
  }
  CacheEntry& e = pristine_cache_[key];
  e.crc = crc;
  e.payload.assign(payload.begin(), payload.end());
}

void Transport::service_nack(int dst, std::uint64_t tag,
                             std::uint32_t attempt) {
  const auto it = pristine_cache_.find(CacheKey{dst, tag});
  if (it == pristine_cache_.end()) {
    // Evicted (or stale) entry: answer with a drop marker so the
    // receiver's bounded retry budget decides the outcome — a FatalError
    // over there once exhausted — instead of crashing this rank.
    raw_send(dst, tag, kFlagDropMarker, 0, false, {}, {});
    return;
  }
  std::vector<std::byte> buf = it->second.payload;
  bool tampered = false;
  const bool arrived = roll_send_faults(buf, tag, dst,
                                        static_cast<int>(attempt), tampered);
  if (resil_.checksum)
    wstats_.checksum_bytes +=
        static_cast<std::int64_t>(it->second.payload.size());
  raw_send(dst, tag, arrived ? 0u : kFlagDropMarker, it->second.crc,
           tampered,
           arrived ? std::span<const std::byte>(buf)
                   : std::span<const std::byte>{},
           it->second.payload);
}

void Transport::barrier() {
  const std::uint64_t tag = make_seq_tag(TagKind::kBarrier, barrier_seq_++);
  std::vector<std::byte> buf;
  if (rank_ == 0) {
    for (int r = 1; r < size_; ++r) recv(r, tag, buf);
    for (int r = 1; r < size_; ++r) send(r, tag, {});
  } else {
    send(0, tag, {});
    recv(0, tag, buf);
  }
}

void Transport::allreduce_sum(std::span<double> vals) {
  const std::uint64_t tag = make_seq_tag(TagKind::kReduce, reduce_seq_++);
  const std::size_t bytes = vals.size() * sizeof(double);
  std::vector<std::byte> buf;
  if (rank_ == 0) {
    for (int r = 1; r < size_; ++r) {
      recv(r, tag, buf);
      LQCD_REQUIRE(buf.size() == bytes,
                   "allreduce_sum: rank payload size mismatch");
      // Fixed rank-ascending accumulation: deterministic at fixed N.
      const double* p = reinterpret_cast<const double*>(buf.data());
      for (std::size_t i = 0; i < vals.size(); ++i) vals[i] += p[i];
    }
    for (int r = 1; r < size_; ++r)
      send(r, tag,
           std::span<const std::byte>(
               reinterpret_cast<const std::byte*>(vals.data()), bytes));
  } else {
    send(0, tag,
         std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(vals.data()), bytes));
    recv(0, tag, buf);
    LQCD_REQUIRE(buf.size() == bytes,
                 "allreduce_sum: root payload size mismatch");
    std::memcpy(vals.data(), buf.data(), bytes);
  }
}

std::vector<std::vector<std::byte>> Transport::gather(
    int root, std::span<const std::byte> mine) {
  LQCD_REQUIRE(root >= 0 && root < size_, "gather: root out of range");
  const std::uint64_t tag = make_seq_tag(TagKind::kGather, gather_seq_++);
  if (rank_ != root) {
    send(root, tag, mine);
    return {};
  }
  std::vector<std::vector<std::byte>> out(
      static_cast<std::size_t>(size_));
  out[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
  for (int r = 0; r < size_; ++r) {
    if (r == root) continue;
    recv(r, tag, out[static_cast<std::size_t>(r)]);
  }
  return out;
}

void Transport::broadcast(int root, std::vector<std::byte>& data) {
  LQCD_REQUIRE(root >= 0 && root < size_, "broadcast: root out of range");
  const std::uint64_t tag = make_seq_tag(TagKind::kBcast, bcast_seq_++);
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r)
      if (r != root) send(r, tag, data);
  } else {
    recv(root, tag, data);
  }
}

void Transport::drain() {
  self_inbox_.clear();
  pristine_cache_.clear();
  pristine_order_.clear();
  drain_backend();
}

std::unique_ptr<Transport> make_transport_from_env() {
  const char* kind = std::getenv("LQCD_TRANSPORT");
  if (kind == nullptr || *kind == '\0') return nullptr;
  const char* rank_s = std::getenv("LQCD_RANK");
  const char* size_s = std::getenv("LQCD_SIZE");
  LQCD_REQUIRE(rank_s != nullptr && size_s != nullptr,
               "LQCD_TRANSPORT set but LQCD_RANK/LQCD_SIZE missing");
  const int rank = std::atoi(rank_s);
  const int size = std::atoi(size_s);
  switch (parse_transport_kind(kind)) {
    case TransportKind::kInProcess:
      throw Error(
          "LQCD_TRANSPORT=virtual is implicit; unset it to run "
          "single-process");
    case TransportKind::kSocket: {
      const char* host = std::getenv("LQCD_REND_HOST");
      const char* port = std::getenv("LQCD_REND_PORT");
      LQCD_REQUIRE(host != nullptr && port != nullptr,
                   "socket transport needs LQCD_REND_HOST/LQCD_REND_PORT");
      auto tp =
          std::make_unique<SocketTransport>(rank, size, host,
                                            std::atoi(port));
      if (const char* t = std::getenv("LQCD_RECV_TIMEOUT_MS"))
        tp->set_recv_timeout_ms(std::atoi(t));
      return tp;
    }
    case TransportKind::kShm: {
      const char* path = std::getenv("LQCD_SHM_PATH");
      LQCD_REQUIRE(path != nullptr, "shm transport needs LQCD_SHM_PATH");
      auto tp = std::make_unique<ShmTransport>(rank, size, path);
      if (const char* t = std::getenv("LQCD_RECV_TIMEOUT_MS"))
        tp->set_recv_timeout_ms(std::atoi(t));
      return tp;
    }
  }
  return nullptr;
}

}  // namespace lqcd::transport
