#pragma once
// TCP socket transport backend: N real processes over a loopback mesh.
//
// Topology: every rank opens an ephemeral-port listener, registers it
// with the launcher's rendezvous server, receives the full port table,
// then dials every lower rank and accepts from every higher rank — a
// full mesh of TCP_NODELAY connections with an 8-byte identity preamble
// mapping each accepted fd to its rank.
//
// I/O is nonblocking throughout: raw_send() serializes the frame and
// queues it on a per-peer outbox that drains opportunistically, so
// exchange_begin() returns while the kernel moves bytes — the overlap
// window is real, not modeled. raw_fetch() runs a poll() pump that
// simultaneously drains readable peers into the tag-keyed inbox,
// flushes pending outboxes, and services inbound NACK frames from the
// pristine cache (the receiver-driven retransmit protocol of the base
// class, now over a real wire).
//
// Peer death is an EOF (or ECONNRESET): the rank is marked dead, and a
// receive from it — once nothing matching is buffered — raises
// TransientError, which is exactly what the PR-1 retry and PR-7
// lane-recovery paths key on. A configurable receive timeout converts a
// silent hang (peer alive but wedged) into the same TransientError so
// campaigns degrade instead of deadlocking.

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/transport/transport.hpp"

namespace lqcd::transport {

/// Create a listening TCP socket on 127.0.0.1 with an ephemeral port;
/// returns the fd and stores the chosen port. Throws lqcd::Error.
int listen_loopback(int& port_out);

/// Serve one rendezvous round on an already-listening socket: accept N
/// registrations ("HELO <rank> <port>\n"), then answer every rank with
/// the full table ("PEERS <p0> ... <pN-1>\n"). Used by lqcd_launch and
/// the in-test harness.
void rendezvous_serve(int listen_fd, int n);

class SocketTransport final : public Transport {
 public:
  /// Register with the rendezvous server and build the full mesh.
  SocketTransport(int rank, int size, const std::string& rendezvous_host,
                  int rendezvous_port);
  ~SocketTransport() override;

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kSocket;
  }
  [[nodiscard]] bool peer_alive(int r) const override;
  /// A blocking receive that exceeds this budget raises TransientError
  /// (<= 0: wait forever). Launched processes set it from
  /// LQCD_RECV_TIMEOUT_MS.
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

 protected:
  void raw_send(int dst, std::uint64_t tag, std::uint32_t flags,
                std::uint32_t crc, bool tampered,
                std::span<const std::byte> wire,
                std::span<const std::byte> pristine) override;
  Inbound raw_fetch(int src, std::uint64_t tag) override;
  bool raw_try_fetch(int src, std::uint64_t tag, Inbound& out) override;
  Inbound redeliver(int src, std::uint64_t tag, int attempt,
                    Inbound prev) override;
  void drain_backend() override;

 private:
  struct Peer {
    int fd = -1;
    bool alive = false;
    FrameReader reader;
    std::deque<std::vector<std::byte>> outbox;
    std::size_t out_off = 0;  ///< partial-write offset into outbox front
  };
  struct InboxKey {
    int src;
    std::uint64_t tag;
    bool operator==(const InboxKey&) const = default;
  };
  struct InboxKeyHash {
    std::size_t operator()(const InboxKey& k) const noexcept {
      return std::hash<std::uint64_t>()(
          k.tag ^ (static_cast<std::uint64_t>(k.src) << 40));
    }
  };

  void enqueue_frame(int dst, std::uint64_t tag, std::uint32_t flags,
                     std::uint32_t crc, std::span<const std::byte> payload);
  void flush_peer(Peer& p);
  void mark_dead(Peer& p);
  /// One pump round: poll every live fd, drain reads into the inbox,
  /// service NACKs, flush writable outboxes.
  void pump(int timeout_ms);
  bool inbox_pop(int src, std::uint64_t tag, Inbound& out);

  std::vector<Peer> peers_;
  std::unordered_map<InboxKey, std::deque<Inbound>, InboxKeyHash> inbox_;
  int recv_timeout_ms_ = -1;
};

}  // namespace lqcd::transport
