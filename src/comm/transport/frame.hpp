#pragma once
// Wire framing for the transport layer.
//
// Every message any backend moves — halo faces, collective payloads,
// campaign task/result records, NACKs — travels as one frame:
//
//   magic u32 | src u32 | dst u32 | flags u32 | tag u64 |
//   payload_len u32 | payload_crc u32 | payload bytes
//
// (32-byte little-endian header). The payload CRC is the PR-1 CRC-32 of
// the *pristine* payload, computed by the sender before the fault
// injector touches the bytes, so a receiver-side verify catches injected
// corruption exactly as the virtual cluster always has. The in-process
// backend moves frames as structs; the socket and shared-memory backends
// serialize through encode_header()/FrameReader. FrameReader is
// incremental: feed it whatever the wire produced (partial headers, torn
// payloads, many frames glued together) and it hands back complete
// frames, throwing lqcd::Error on garbage (bad magic, absurd length) —
// the torn-frame coverage in test_transport drives it byte by byte.
//
// The tag is the MPI tag analogue and is never interpreted by the
// backends; the encodings below are the conventions the halo and
// campaign layers use. Halo tags carry (epoch, mu, dir) so the frame
// layer can key the deterministic fault injector identically on every
// backend: the schedule a test scripts against the virtual cluster fires
// unchanged over real sockets.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace lqcd::transport {

inline constexpr std::uint32_t kFrameMagic = 0x4654514Cu;  // "LQTF"
inline constexpr std::size_t kFrameHeaderBytes = 32;
/// Upper bound on a single frame payload; a parsed length beyond this is
/// treated as stream corruption, not a huge message.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

// Frame flags.
/// Deterministic message loss emulated on a reliable stream: the sender
/// ships a header-only marker instead of the payload, and the receiver
/// books a timeout and NACKs — the real wire path for the retransmit
/// protocol, with only the loss itself emulated.
inline constexpr std::uint32_t kFlagDropMarker = 1u << 0;
/// Receiver-driven retransmit request; payload is a u32 attempt number.
inline constexpr std::uint32_t kFlagNack = 1u << 1;

struct FrameHeader {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t flags = 0;
  std::uint64_t tag = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

namespace detail {
inline void put_u32(std::byte* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof v);
}
inline void put_u64(std::byte* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}
[[nodiscard]] inline std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
[[nodiscard]] inline std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
}  // namespace detail

/// Serialize a header into its 32-byte wire form.
inline void encode_header(std::byte* out, const FrameHeader& h) {
  detail::put_u32(out + 0, kFrameMagic);
  detail::put_u32(out + 4, h.src);
  detail::put_u32(out + 8, h.dst);
  detail::put_u32(out + 12, h.flags);
  detail::put_u64(out + 16, h.tag);
  detail::put_u32(out + 24, h.payload_len);
  detail::put_u32(out + 28, h.payload_crc);
}

/// Parse a 32-byte wire header. Throws lqcd::Error on bad magic or an
/// absurd payload length — the stream is torn beyond recovery.
[[nodiscard]] inline FrameHeader decode_header(const std::byte* in) {
  if (detail::get_u32(in + 0) != kFrameMagic)
    throw Error("transport frame: bad magic (torn or corrupt stream)");
  FrameHeader h;
  h.src = detail::get_u32(in + 4);
  h.dst = detail::get_u32(in + 8);
  h.flags = detail::get_u32(in + 12);
  h.tag = detail::get_u64(in + 16);
  h.payload_len = detail::get_u32(in + 24);
  h.payload_crc = detail::get_u32(in + 28);
  if (h.payload_len > kMaxFramePayload)
    throw Error("transport frame: payload length " +
                std::to_string(h.payload_len) +
                " exceeds limit (torn or corrupt stream)");
  return h;
}

// --- tag conventions ------------------------------------------------------

enum class TagKind : std::uint8_t {
  kHalo = 1,     ///< face message; tag carries (epoch, mu, dir)
  kBarrier = 2,  ///< central barrier round
  kReduce = 3,   ///< allreduce round
  kGather = 4,   ///< gather round
  kBcast = 5,    ///< broadcast round
  kTask = 6,     ///< campaign: coordinator -> worker assignment
  kResult = 7,   ///< campaign: worker -> coordinator outcome
  kCtrl = 8,     ///< campaign: shutdown / misc control
};

[[nodiscard]] inline TagKind tag_kind(std::uint64_t tag) noexcept {
  return static_cast<TagKind>(tag >> 56);
}

/// Halo tag: kind | epoch (48 bits) | face (mu, dir). Epochs count halo
/// exchanges; 2^48 of them outlives any campaign.
[[nodiscard]] inline std::uint64_t make_halo_tag(std::uint64_t epoch, int mu,
                                                 int dir) noexcept {
  const std::uint64_t face = static_cast<std::uint64_t>(mu) * 2u +
                             (dir > 0 ? 1u : 0u);
  return (static_cast<std::uint64_t>(TagKind::kHalo) << 56) |
         ((epoch & 0xFFFFFFFFFFFFull) << 8) | face;
}
[[nodiscard]] inline std::uint64_t halo_epoch(std::uint64_t tag) noexcept {
  return (tag >> 8) & 0xFFFFFFFFFFFFull;
}
[[nodiscard]] inline int halo_mu(std::uint64_t tag) noexcept {
  return static_cast<int>((tag & 0xFF) / 2);
}
[[nodiscard]] inline int halo_dir(std::uint64_t tag) noexcept {
  return (tag & 1) != 0 ? +1 : -1;
}

/// Sequenced tag for collectives and campaign messages: every rank keeps
/// a per-kind counter, and globally ordered call sequences keep the
/// counters aligned across ranks.
[[nodiscard]] inline std::uint64_t make_seq_tag(TagKind kind,
                                                std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (seq & 0xFFFFFFFFFFFFFFull);
}
[[nodiscard]] inline std::uint64_t seq_of(std::uint64_t tag) noexcept {
  return tag & 0xFFFFFFFFFFFFFFull;
}

// --- incremental stream parser -------------------------------------------

/// Reassembles frames from an arbitrary chunking of the byte stream.
/// feed() appends whatever arrived; next() extracts complete frames.
/// Anything that parses but is structurally impossible throws — a TCP
/// stream delivers bytes reliably, so a bad header means the peer (or
/// the test) wrote garbage, and resynchronization is hopeless.
class FrameReader {
 public:
  void feed(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Extract one complete frame; false when more bytes are needed.
  bool next(FrameHeader& h, std::vector<std::byte>& payload) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kFrameHeaderBytes) return false;
    const FrameHeader parsed = decode_header(buf_.data() + pos_);
    if (avail < kFrameHeaderBytes + parsed.payload_len) return false;
    h = parsed;
    payload.assign(
        buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderBytes),
        buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderBytes +
                                                   parsed.payload_len));
    pos_ += kFrameHeaderBytes + parsed.payload_len;
    // Compact once the consumed prefix dominates the buffer.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return true;
  }

  /// Bytes buffered but not yet consumed (a nonzero value at stream EOF
  /// means the peer died mid-frame — a torn frame).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace lqcd::transport
