#pragma once
// SPMD rank-local halo: the multi-process twin of VirtualCluster.
//
// VirtualCluster (comm/halo.hpp) materializes every rank of the process
// grid inside one process and loops over them; RankCluster owns exactly
// ONE rank — the one its Transport endpoint was constructed with — and
// the other ranks live in other processes reached over the socket or
// shared-memory backend (or in sibling threads over the in-process hub,
// which is how the unit tests drive it). The same frame tags, the same
// detail::pack_face/unpack_face traversal and the same
// detail::dist_hop_site arithmetic are used, so an N-process run
// produces bit-identical ghost bytes, operator outputs and solver
// iterates to the 1-process virtual run — the property the launcher
// smoke drills assert with CRCs.
//
// RankWilsonOperator / RankSchurWilsonOperator are the ports of
// DistributedWilsonOperator / DistributedSchurWilsonOperator onto this
// cluster: identical overlap schedule (begin / interior / finish /
// surface), identical per-site stores, but spans are rank-local and the
// cross-rank planes move over the wire. Global fields for verification
// are assembled with gather_to_root(), which rides the transport gather
// collective.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/halo.hpp"
#include "comm/transport/transport.hpp"

namespace lqcd {

/// One rank of a lattice decomposed over a real process grid. All
/// communication goes through the Transport endpoint passed in (not
/// owned); rank identity and world size come from it.
template <typename T>
class RankCluster {
 public:
  RankCluster(const LatticeGeometry& global, const ProcessGrid& grid,
              transport::Transport& tp)
      : global_(&global),
        grid_(grid),
        tp_(&tp),
        local_dims_(grid.local_dims(global.dims())),
        halo_(local_dims_) {
    LQCD_REQUIRE(tp.size() == grid.size(),
                 "rank cluster: transport world size != process grid size");
    const Coord rc = grid_.coords_of(tp.rank());
    for (int mu = 0; mu < Nd; ++mu) origin_[mu] = rc[mu] * local_dims_[mu];
  }

  [[nodiscard]] const LatticeGeometry& global_geometry() const {
    return *global_;
  }
  [[nodiscard]] const ProcessGrid& grid() const { return grid_; }
  [[nodiscard]] const HaloLattice& halo() const { return halo_; }
  [[nodiscard]] transport::Transport& transport() const { return *tp_; }
  [[nodiscard]] int rank() const { return tp_->rank(); }
  [[nodiscard]] int ranks() const { return tp_->size(); }
  [[nodiscard]] const Coord& origin() const { return origin_; }
  [[nodiscard]] int origin_parity() const {
    return static_cast<int>(
        (origin_[0] + origin_[1] + origin_[2] + origin_[3]) & 1);
  }
  [[nodiscard]] CommStats& stats() const { return stats_; }

  void set_resilience(const ResilienceConfig& rc) {
    resil_ = rc;
    tp_->set_resilience(rc);
  }
  [[nodiscard]] const ResilienceConfig& resilience() const { return resil_; }
  void set_fault_injector(FaultInjector* fi) {
    injector_ = fi;
    tp_->set_fault_injector(fi);
  }

  /// Wire precision for fermion halo faces — same knob and codec as
  /// VirtualCluster::set_halo_precision, so compressed ghost bytes stay
  /// bit-identical across the virtual, socket and shm paths. Collective:
  /// every rank must set the same precision.
  void set_halo_precision(HaloPrecision p) {
    LQCD_REQUIRE(!begun_, "set_halo_precision: exchange in flight");
    halo_precision_ = p;
  }
  [[nodiscard]] HaloPrecision halo_precision() const {
    return halo_precision_;
  }

  using RankFermion = aligned_vector<WilsonSpinor<T>>;
  using RankGauge = aligned_vector<LinkSite<T>>;

  [[nodiscard]] RankFermion make_fermion() const {
    return RankFermion(static_cast<std::size_t>(halo_.extended_volume()));
  }

  /// Global coordinate of a rank-local coordinate (periodic wrap).
  [[nodiscard]] Coord global_coords(const Coord& xl) const {
    Coord xg{};
    for (int mu = 0; mu < Nd; ++mu)
      xg[mu] = (origin_[mu] + xl[mu] + global_->dim(mu)) % global_->dim(mu);
    return xg;
  }

  /// Copy this rank's interior out of a full global field (every rank
  /// holds the global source — configs and point sources are built
  /// deterministically from a seed on all ranks, so no scatter traffic).
  void extract_local(RankFermion& dst,
                     std::span<const WilsonSpinor<T>> src) const {
    LQCD_REQUIRE(src.size() == static_cast<std::size_t>(global_->volume()),
                 "extract_local: global field size");
    for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
      const Coord xl = halo_.interior_coords(i);
      dst[static_cast<std::size_t>(halo_.ext_index(xl))] =
          src[static_cast<std::size_t>(
              global_->cb_index(global_coords(xl)))];
    }
  }

  /// Assemble the global field at root from every rank's interior
  /// (lexicographic pack order, rank-ascending placement: deterministic
  /// bytes). Non-root ranks contribute and leave `dst` untouched; `dst`
  /// may be empty on non-root.
  void gather_to_root(std::span<WilsonSpinor<T>> dst,
                      const RankFermion& src, int root = 0) const {
    std::vector<std::byte> mine(
        static_cast<std::size_t>(halo_.interior_volume()) *
        sizeof(WilsonSpinor<T>));
    for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
      const Coord xl = halo_.interior_coords(i);
      std::memcpy(mine.data() +
                      static_cast<std::size_t>(i) * sizeof(WilsonSpinor<T>),
                  &src[static_cast<std::size_t>(halo_.ext_index(xl))],
                  sizeof(WilsonSpinor<T>));
    }
    std::vector<std::vector<std::byte>> parts = tp_->gather(root, mine);
    if (rank() != root) return;
    LQCD_REQUIRE(dst.size() == static_cast<std::size_t>(global_->volume()),
                 "gather_to_root: global field size");
    for (int r = 0; r < ranks(); ++r) {
      const auto& part = parts[static_cast<std::size_t>(r)];
      LQCD_REQUIRE(part.size() == mine.size(),
                   "gather_to_root: rank part size");
      const Coord rc = grid_.coords_of(r);
      Coord ro{};
      for (int mu = 0; mu < Nd; ++mu) ro[mu] = rc[mu] * local_dims_[mu];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        Coord xg{};
        for (int mu = 0; mu < Nd; ++mu)
          xg[mu] = (ro[mu] + xl[mu]) % global_->dim(mu);
        std::memcpy(&dst[static_cast<std::size_t>(global_->cb_index(xg))],
                    part.data() + static_cast<std::size_t>(i) *
                                      sizeof(WilsonSpinor<T>),
                    sizeof(WilsonSpinor<T>));
      }
    }
  }

  /// Extract this rank's gauge links from the (replicated) global field
  /// and fill the ghost links with one halo exchange.
  [[nodiscard]] RankGauge scatter_gauge(const GaugeField<T>& u) const {
    RankGauge out(static_cast<std::size_t>(halo_.extended_volume()));
    for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
      const Coord xl = halo_.interior_coords(i);
      out[static_cast<std::size_t>(halo_.ext_index(xl))] =
          u.site(global_->cb_index(global_coords(xl)));
    }
    exchange_impl<LinkSite<T>>(out, /*split=*/false, /*finish_now=*/true);
    return out;
  }

  void exchange(RankFermion& f) const {
    exchange_impl<WilsonSpinor<T>>(f, /*split=*/false, /*finish_now=*/true);
  }
  void exchange_begin(RankFermion& f) const {
    exchange_impl<WilsonSpinor<T>>(f, /*split=*/true, /*finish_now=*/false);
  }
  void exchange_finish(RankFermion& f) const { finish_impl(f); }
  [[nodiscard]] bool exchange_in_flight() const noexcept { return begun_; }

 private:
  /// Fold the endpoint's wire-counter delta into stats_.
  void harvest_wire() const {
    detail::merge_wire_delta(stats_, tp_->wire_stats(), wire_base_);
  }

  template <typename SiteT>
  void exchange_impl(std::vector<SiteT, AlignedAllocator<SiteT>>& field,
                     bool split, bool finish_now) const {
    LQCD_REQUIRE(!begun_, "rank halo exchange: double begin");
    const std::uint64_t epoch =
        static_cast<std::uint64_t>(stats_.exchanges);
    const int r = rank();
    try {
      if (injector_ != nullptr) {
        if (injector_->should_kill(epoch, r)) {
          injector_->record_kill();
          throw TransientError("halo exchange: rank " + std::to_string(r) +
                               " died at epoch " + std::to_string(epoch));
        }
        const double stall = injector_->straggle_us(epoch, r);
        if (stall > 0.0) {
          stats_.straggler_events += 1;
          stats_.modeled_delay_us += stall;
        }
      }
      active_precision_ = halo_precision_;
      std::vector<std::byte> buf;
      for (int mu = 0; mu < Nd; ++mu) {
        for (int dir = -1; dir <= 1; dir += 2) {
          const int dst = grid_.neighbor(r, mu, -dir);
          const int src_coord = dir > 0 ? 0 : local_dims_[mu] - 1;
          detail::pack_face_prec(buf, field, halo_, mu, src_coord,
                                 active_precision_);
          tp_->send(dst, transport::make_halo_tag(epoch, mu, dir), buf);
        }
      }
    } catch (...) {
      tp_->drain();
      harvest_wire();
      throw;
    }
    harvest_wire();
    begun_ = true;
    split_ = split;
    if (finish_now) finish_impl(field);
  }

  template <typename SiteT>
  void finish_impl(std::vector<SiteT, AlignedAllocator<SiteT>>& field)
      const {
    LQCD_REQUIRE(begun_,
                 "rank halo exchange_finish without exchange_begin");
    const std::uint64_t epoch =
        static_cast<std::uint64_t>(stats_.exchanges);
    const int r = rank();
    const bool split = split_;
    const HaloPrecision prec = active_precision_;
    try {
      std::vector<std::byte> buf;
      for (int mu = 0; mu < Nd; ++mu) {
        for (int dir = -1; dir <= 1; dir += 2) {
          const int src = grid_.neighbor(r, mu, dir);
          tp_->recv(src, transport::make_halo_tag(epoch, mu, dir), buf);
          const int ghost_coord = dir > 0 ? local_dims_[mu] : -1;
          detail::unpack_face_prec(field, buf, halo_, mu, ghost_coord,
                                   prec);
        }
      }
    } catch (...) {
      begun_ = false;
      tp_->drain();
      harvest_wire();
      throw;
    }
    begun_ = false;
    harvest_wire();
    stats_.exchanges += 1;
    stats_.full_equiv_bytes +=
        detail::face_payload_bytes<SiteT>(halo_, HaloPrecision::kFull);
    if constexpr (detail::is_spinor_site_v<SiteT>) {
      if (prec == HaloPrecision::kHalf)
        stats_.compressed_frames += 2 * Nd;
    }
    if (telemetry::enabled()) {
      static telemetry::Counter& c_exchanges =
          telemetry::counter("comm.halo.exchanges");
      static telemetry::Counter& c_split =
          telemetry::counter("comm.halo.overlap.split_exchanges");
      c_exchanges.add(1);
      if (split) c_split.add(1);
    }
  }

  const LatticeGeometry* global_;
  ProcessGrid grid_;
  transport::Transport* tp_;
  Coord local_dims_;
  HaloLattice halo_;
  Coord origin_{};
  mutable CommStats stats_;
  mutable transport::WireStats wire_base_;
  mutable bool begun_ = false;
  mutable bool split_ = false;
  HaloPrecision halo_precision_ = HaloPrecision::kFull;
  /// Precision the in-flight exchange was begun with (finish must match
  /// the pack even if the knob moves between begin and finish).
  mutable HaloPrecision active_precision_ = HaloPrecision::kFull;
  ResilienceConfig resil_;
  FaultInjector* injector_ = nullptr;
};

/// Full Wilson operator on one rank of a real process grid. Spans are
/// rank-local extended fields; apply() is collective (every rank of the
/// grid must call it in step). Same overlap schedule and per-site
/// arithmetic as DistributedWilsonOperator, so gather_to_root of the
/// result is bit-identical to the virtual and single-domain operators.
template <typename T>
class RankWilsonOperator {
 public:
  RankWilsonOperator(const GaugeField<T>& u, double kappa,
                     const ProcessGrid& grid, transport::Transport& tp,
                     TimeBoundary bc = TimeBoundary::Antiperiodic)
      : cluster_(u.geometry(), grid, tp), kappa_(static_cast<T>(kappa)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    const GaugeField<T> links = make_fermion_links(u, bc);
    gauge_ = cluster_.scatter_gauge(links);
  }

  using RankFermion = typename RankCluster<T>::RankFermion;

  /// out <- D in on this rank's sites (in's ghosts are clobbered).
  void apply(RankFermion& out, RankFermion& in) const {
    const HaloLattice& halo = cluster_.halo();
    if (!overlap_) {
      cluster_.exchange(in);
      compute_sites(out, in, halo.interior_sites());
      compute_sites(out, in, halo.surface_sites());
      return;
    }
    WallTimer t;
    cluster_.exchange_begin(in);
    ov_.t_begin_s += t.seconds();
    t.start();
    compute_sites(out, in, halo.interior_sites());
    ov_.t_interior_s += t.seconds();
    t.start();
    cluster_.exchange_finish(in);
    ov_.t_finish_s += t.seconds();
    t.start();
    compute_sites(out, in, halo.surface_sites());
    ov_.t_surface_s += t.seconds();
    ov_.applies += 1;
    ov_.interior_sites +=
        static_cast<std::int64_t>(halo.interior_sites().size());
    ov_.surface_sites +=
        static_cast<std::int64_t>(halo.surface_sites().size());
  }

  [[nodiscard]] const RankCluster<T>& cluster() const { return cluster_; }
  [[nodiscard]] RankCluster<T>& cluster() { return cluster_; }
  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }
  void set_overlap(bool on) { overlap_ = on; }
  /// Fermion halo wire precision (collective; gauge ghosts stay full).
  void set_halo_precision(HaloPrecision p) {
    cluster_.set_halo_precision(p);
  }
  [[nodiscard]] const OverlapStats& overlap_stats() const { return ov_; }
  void reset_overlap_stats() { ov_.reset(); }

 private:
  void compute_sites(RankFermion& out, const RankFermion& in,
                     std::span<const std::int64_t> sites) const {
    const HaloLattice& halo = cluster_.halo();
    const T k = kappa_;
    const auto& ug = gauge_;
    parallel_for(sites.size(), [&](std::size_t idx) {
      const Coord x = halo.interior_coords(sites[idx]);
      const std::int64_t xe = halo.ext_index(x);
      WilsonSpinor<T> acc = detail::dist_hop_site(x, in, ug, halo);
      acc *= k;
      WilsonSpinor<T> v = in[static_cast<std::size_t>(xe)];
      v -= acc;
      out[static_cast<std::size_t>(xe)] = v;
    });
  }

  RankCluster<T> cluster_;
  typename RankCluster<T>::RankGauge gauge_;
  T kappa_;
  bool overlap_ = true;
  mutable OverlapStats ov_;
};

/// Even-odd (Schur) preconditioned Wilson operator on one rank — the
/// SPMD port of DistributedSchurWilsonOperator. apply() computes
/// Mhat = 1 - kappa^2 D_oe D_eo on this rank's globally-odd sites;
/// per-site stores are copied from the virtual twin so iterates match
/// bit for bit.
template <typename T>
class RankSchurWilsonOperator {
 public:
  RankSchurWilsonOperator(const GaugeField<T>& u, double kappa,
                          const ProcessGrid& grid, transport::Transport& tp,
                          TimeBoundary bc = TimeBoundary::Antiperiodic)
      : cluster_(u.geometry(), grid, tp), kappa_(static_cast<T>(kappa)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    const GaugeField<T> links = make_fermion_links(u, bc);
    gauge_ = cluster_.scatter_gauge(links);
    tmp_ = cluster_.make_fermion();
  }

  using RankFermion = typename RankCluster<T>::RankFermion;

  /// res (odd sites) <- in_odd - kappa^2 D_oe D_eo in_odd. `in` holds
  /// the source on globally-odd sites and zero elsewhere (ghosts are
  /// clobbered); `out` must be zero-initialized once by the caller.
  void apply(RankFermion& out, RankFermion& in) const {
    hop_stage(tmp_, in, 0,
              [](WilsonSpinor<T>& dst, const WilsonSpinor<T>& hop,
                 const RankFermion& /*aux*/, std::size_t /*xe*/) {
                dst = hop;
              });
    const T k2 = kappa_ * kappa_;
    hop_stage(out, tmp_, 1,
              [k2](WilsonSpinor<T>& dst, const WilsonSpinor<T>& hop,
                   const RankFermion& aux, std::size_t xe) {
                WilsonSpinor<T> h = hop;
                h *= k2;
                WilsonSpinor<T> r = aux[xe];
                r -= h;
                dst = r;
              },
              &in);
  }

  [[nodiscard]] const RankCluster<T>& cluster() const { return cluster_; }
  [[nodiscard]] RankCluster<T>& cluster() { return cluster_; }
  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }
  void set_overlap(bool on) { overlap_ = on; }
  /// Fermion halo wire precision (collective; gauge ghosts stay full).
  void set_halo_precision(HaloPrecision p) {
    cluster_.set_halo_precision(p);
  }
  [[nodiscard]] const OverlapStats& overlap_stats() const { return ov_; }

 private:
  template <typename Store>
  void hop_stage(RankFermion& dst, RankFermion& src, int target_parity,
                 const Store& store, const RankFermion* aux = nullptr) const {
    const HaloLattice& halo = cluster_.halo();
    // Local checkerboard whose global parity equals target_parity.
    const int lp = (target_parity + cluster_.origin_parity()) & 1;
    if (!overlap_) {
      cluster_.exchange(src);
      run_sites(dst, src, halo.interior_sites(lp), store, aux);
      run_sites(dst, src, halo.surface_sites(lp), store, aux);
      return;
    }
    WallTimer t;
    cluster_.exchange_begin(src);
    ov_.t_begin_s += t.seconds();
    t.start();
    run_sites(dst, src, halo.interior_sites(lp), store, aux);
    ov_.t_interior_s += t.seconds();
    t.start();
    cluster_.exchange_finish(src);
    ov_.t_finish_s += t.seconds();
    t.start();
    run_sites(dst, src, halo.surface_sites(lp), store, aux);
    ov_.t_surface_s += t.seconds();
    ov_.applies += 1;
    ov_.interior_sites +=
        static_cast<std::int64_t>(halo.interior_sites(lp).size());
    ov_.surface_sites +=
        static_cast<std::int64_t>(halo.surface_sites(lp).size());
  }

  template <typename Store>
  void run_sites(RankFermion& dst, const RankFermion& src,
                 std::span<const std::int64_t> sites, const Store& store,
                 const RankFermion* aux) const {
    const HaloLattice& halo = cluster_.halo();
    const auto& ug = gauge_;
    const RankFermion& a = aux != nullptr ? *aux : src;
    parallel_for(sites.size(), [&](std::size_t idx) {
      const Coord x = halo.interior_coords(sites[idx]);
      const auto xe = static_cast<std::size_t>(halo.ext_index(x));
      const WilsonSpinor<T> acc = detail::dist_hop_site(x, src, ug, halo);
      store(dst[xe], acc, a, xe);
    });
  }

  RankCluster<T> cluster_;
  typename RankCluster<T>::RankGauge gauge_;
  mutable RankFermion tmp_;
  T kappa_;
  bool overlap_ = true;
  mutable OverlapStats ov_;
};

}  // namespace lqcd
