#include "comm/transport/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

namespace lqcd::transport {

namespace {

constexpr std::uint32_t kIdentityMagic = 0x4449514Cu;  // "LQID"
constexpr std::size_t kReadChunk = 1 << 16;

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error("socket transport: " + what + ": " +
              std::strerror(errno));
}

void write_all_blocking(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      sys_fail("write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_all_blocking(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      sys_fail("read");
    }
    if (r == 0) throw Error("socket transport: peer closed mid-handshake");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

std::string read_line_blocking(int fd) {
  std::string line;
  char c;
  for (;;) {
    read_all_blocking(fd, &c, 1);
    if (c == '\n') return line;
    line.push_back(c);
    LQCD_REQUIRE(line.size() < 4096, "rendezvous line too long");
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl O_NONBLOCK");
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) < 0)
    sys_fail("setsockopt TCP_NODELAY");
}

int connect_loopback(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // The peer's listener is up before the rendezvous releases the table,
  // but a full accept backlog can still bounce us; retry briefly. A fd
  // whose connect() failed is in an unspecified state, so each attempt
  // gets a fresh socket.
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
    const int err = errno;
    ::close(fd);
    if ((err == ECONNREFUSED || err == EAGAIN) && attempt < 200) {
      ::usleep(10000);
      continue;
    }
    errno = err;
    sys_fail("connect 127.0.0.1:" + std::to_string(port));
  }
}

}  // namespace

int listen_loopback(int& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    sys_fail("bind");
  if (::listen(fd, SOMAXCONN) < 0) sys_fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    sys_fail("getsockname");
  port_out = ntohs(addr.sin_port);
  return fd;
}

void rendezvous_serve(int listen_fd, int n) {
  std::vector<int> fds(static_cast<std::size_t>(n), -1);
  std::vector<int> ports(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) sys_fail("rendezvous accept");
    std::istringstream is(read_line_blocking(fd));
    std::string word;
    int rank = -1, port = 0;
    is >> word >> rank >> port;
    LQCD_REQUIRE(word == "HELO" && rank >= 0 && rank < n && port > 0,
                 "rendezvous: malformed registration");
    LQCD_REQUIRE(fds[static_cast<std::size_t>(rank)] < 0,
                 "rendezvous: duplicate rank registration");
    fds[static_cast<std::size_t>(rank)] = fd;
    ports[static_cast<std::size_t>(rank)] = port;
  }
  std::ostringstream table;
  table << "PEERS";
  for (int r = 0; r < n; ++r) table << ' ' << ports[static_cast<std::size_t>(r)];
  table << '\n';
  const std::string line = table.str();
  for (int r = 0; r < n; ++r) {
    write_all_blocking(fds[static_cast<std::size_t>(r)], line.data(),
                       line.size());
    ::close(fds[static_cast<std::size_t>(r)]);
  }
}

SocketTransport::SocketTransport(int rank, int size,
                                 const std::string& rendezvous_host,
                                 int rendezvous_port)
    : Transport(rank, size), peers_(static_cast<std::size_t>(size)) {
  LQCD_REQUIRE(rendezvous_host == "127.0.0.1" ||
                   rendezvous_host == "localhost",
               "socket transport: loopback rendezvous only");
  int my_port = 0;
  const int listener = listen_loopback(my_port);
  // Register and learn every rank's listener port.
  const int rv = connect_loopback(rendezvous_port);
  {
    std::ostringstream os;
    os << "HELO " << rank << ' ' << my_port << '\n';
    const std::string line = os.str();
    write_all_blocking(rv, line.data(), line.size());
  }
  std::vector<int> ports(static_cast<std::size_t>(size), 0);
  {
    std::istringstream is(read_line_blocking(rv));
    std::string word;
    is >> word;
    LQCD_REQUIRE(word == "PEERS", "rendezvous: malformed table");
    for (int r = 0; r < size; ++r) is >> ports[static_cast<std::size_t>(r)];
  }
  ::close(rv);
  // Mesh: dial every lower rank, accept from every higher rank. The
  // 8-byte identity preamble maps accepted fds to ranks.
  for (int r = 0; r < rank; ++r) {
    const int fd = connect_loopback(ports[static_cast<std::size_t>(r)]);
    const std::uint32_t hello[2] = {kIdentityMagic,
                                    static_cast<std::uint32_t>(rank)};
    write_all_blocking(fd, hello, sizeof hello);
    peers_[static_cast<std::size_t>(r)].fd = fd;
  }
  for (int n = rank + 1; n < size; ++n) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) sys_fail("mesh accept");
    std::uint32_t hello[2] = {0, 0};
    read_all_blocking(fd, hello, sizeof hello);
    LQCD_REQUIRE(hello[0] == kIdentityMagic,
                 "mesh handshake: bad identity magic");
    const int r = static_cast<int>(hello[1]);
    LQCD_REQUIRE(r > rank && r < size &&
                     peers_[static_cast<std::size_t>(r)].fd < 0,
                 "mesh handshake: bad or duplicate rank identity");
    peers_[static_cast<std::size_t>(r)].fd = fd;
  }
  ::close(listener);
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    Peer& p = peers_[static_cast<std::size_t>(r)];
    set_nodelay(p.fd);
    set_nonblocking(p.fd);
    p.alive = true;
  }
}

SocketTransport::~SocketTransport() {
  // Flush sent-but-EAGAIN'd outboxes with a bounded deadline before
  // closing the fds — otherwise a final frame (e.g. a worker's kResult
  // queued just before exit while the kernel buffer was full) would be
  // silently discarded and the peer would see a premature EOF.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    std::vector<pollfd> pfds;
    std::vector<int> ranks;
    for (int r = 0; r < size(); ++r) {
      Peer& p = peers_[static_cast<std::size_t>(r)];
      if (r == rank() || !p.alive || p.outbox.empty()) continue;
      pollfd pf{};
      pf.fd = p.fd;
      pf.events = POLLOUT;
      pfds.push_back(pf);
      ranks.push_back(r);
    }
    if (pfds.empty()) break;
    const auto left_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (left_ms <= 0) break;
    const int n = ::poll(pfds.data(), pfds.size(),
                         static_cast<int>(std::min<long long>(left_ms, 100)));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i)
      if (pfds[i].revents & (POLLOUT | POLLHUP | POLLERR))
        flush_peer(peers_[static_cast<std::size_t>(ranks[i])]);
  }
  for (Peer& p : peers_)
    if (p.fd >= 0) ::close(p.fd);
}

bool SocketTransport::peer_alive(int r) const {
  if (r == rank()) return true;
  return peers_[static_cast<std::size_t>(r)].alive;
}

void SocketTransport::mark_dead(Peer& p) {
  if (p.fd >= 0) ::close(p.fd);
  p.fd = -1;
  p.alive = false;
  p.outbox.clear();
  p.out_off = 0;
}

void SocketTransport::enqueue_frame(int dst, std::uint64_t tag,
                                    std::uint32_t flags, std::uint32_t crc,
                                    std::span<const std::byte> payload) {
  Peer& p = peers_[static_cast<std::size_t>(dst)];
  if (!p.alive) return;  // sends to the departed are dropped, not fatal
  FrameHeader h;
  h.src = static_cast<std::uint32_t>(rank());
  h.dst = static_cast<std::uint32_t>(dst);
  h.flags = flags;
  h.tag = tag;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.payload_crc = crc;
  std::vector<std::byte> frame(kFrameHeaderBytes + payload.size());
  encode_header(frame.data(), h);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  wstats_.wire_frames += 1;
  wstats_.wire_bytes += static_cast<std::int64_t>(frame.size());
  p.outbox.push_back(std::move(frame));
  flush_peer(p);
}

void SocketTransport::flush_peer(Peer& p) {
  while (!p.outbox.empty()) {
    const std::vector<std::byte>& front = p.outbox.front();
    const ssize_t w = ::send(p.fd, front.data() + p.out_off,
                             front.size() - p.out_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      mark_dead(p);
      return;
    }
    p.out_off += static_cast<std::size_t>(w);
    if (p.out_off == front.size()) {
      p.outbox.pop_front();
      p.out_off = 0;
    }
  }
}

void SocketTransport::pump(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<int> ranks;
  for (int r = 0; r < size(); ++r) {
    Peer& p = peers_[static_cast<std::size_t>(r)];
    if (r == rank() || !p.alive) continue;
    pollfd pf{};
    pf.fd = p.fd;
    pf.events = POLLIN;
    if (!p.outbox.empty()) pf.events |= POLLOUT;
    pfds.push_back(pf);
    ranks.push_back(r);
  }
  if (pfds.empty()) return;
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return;
    sys_fail("poll");
  }
  std::vector<std::byte> chunk(kReadChunk);
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    Peer& p = peers_[static_cast<std::size_t>(ranks[i])];
    if (!p.alive) continue;
    if (pfds[i].revents & POLLOUT) flush_peer(p);
    if (!p.alive) continue;
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    for (;;) {
      const ssize_t r = ::recv(p.fd, chunk.data(), chunk.size(), 0);
      if (r > 0) {
        p.reader.feed({chunk.data(), static_cast<std::size_t>(r)});
        if (r < static_cast<ssize_t>(chunk.size())) break;
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error: the peer is gone. A nonzero reader residue
      // is a torn frame — bytes died with the sender.
      mark_dead(p);
      break;
    }
    FrameHeader h;
    std::vector<std::byte> payload;
    while (p.reader.next(h, payload)) {
      LQCD_REQUIRE(static_cast<int>(h.dst) == rank(),
                   "socket transport: misrouted frame");
      LQCD_REQUIRE(static_cast<int>(h.src) == ranks[i],
                   "socket transport: frame src does not match connection");
      if (h.flags & kFlagNack) {
        LQCD_REQUIRE(payload.size() == sizeof(std::uint32_t),
                     "socket transport: malformed NACK");
        std::uint32_t attempt;
        std::memcpy(&attempt, payload.data(), sizeof attempt);
        service_nack(static_cast<int>(h.src), h.tag, attempt);
        continue;
      }
      Inbound f;
      f.flags = h.flags;
      f.crc = h.payload_crc;
      f.maybe_clean = false;  // a real wire always verifies
      f.payload = std::move(payload);
      inbox_[InboxKey{static_cast<int>(h.src), h.tag}].push_back(
          std::move(f));
      payload = {};
    }
  }
}

bool SocketTransport::inbox_pop(int src, std::uint64_t tag, Inbound& out) {
  const auto it = inbox_.find(InboxKey{src, tag});
  if (it == inbox_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) inbox_.erase(it);
  return true;
}

void SocketTransport::raw_send(int dst, std::uint64_t tag,
                               std::uint32_t flags, std::uint32_t crc,
                               bool tampered,
                               std::span<const std::byte> wire,
                               std::span<const std::byte> pristine) {
  (void)tampered;
  (void)pristine;  // NACK service re-reads the base-class cache
  enqueue_frame(dst, tag, flags, crc, wire);
}

Transport::Inbound SocketTransport::raw_fetch(int src, std::uint64_t tag) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      recv_timeout_ms_ > 0
          ? Clock::now() + std::chrono::milliseconds(recv_timeout_ms_)
          : Clock::time_point::max();
  Inbound f;
  for (;;) {
    if (inbox_pop(src, tag, f)) return f;
    if (!peers_[static_cast<std::size_t>(src)].alive)
      throw TransientError("socket transport: rank " + std::to_string(src) +
                           " died before delivering tag " +
                           std::to_string(tag));
    if (Clock::now() >= deadline)
      throw TransientError("socket transport: timed out waiting for rank " +
                           std::to_string(src));
    pump(50);
  }
}

bool SocketTransport::raw_try_fetch(int src, std::uint64_t tag,
                                    Inbound& out) {
  if (inbox_pop(src, tag, out)) return true;
  pump(0);
  return inbox_pop(src, tag, out);
}

Transport::Inbound SocketTransport::redeliver(int src, std::uint64_t tag,
                                              int attempt, Inbound prev) {
  (void)prev;
  // Receiver-driven retransmit: NACK the sender, who re-rolls the fault
  // schedule over its pristine copy and re-sends.
  std::uint32_t a = static_cast<std::uint32_t>(attempt);
  std::byte buf[sizeof a];
  std::memcpy(buf, &a, sizeof a);
  enqueue_frame(src, tag, kFlagNack, 0, {buf, sizeof a});
  return raw_fetch(src, tag);
}

void SocketTransport::drain_backend() {
  pump(0);
  inbox_.clear();
}

}  // namespace lqcd::transport
