#pragma once
// Shared-memory transport backend: N same-host processes over lock-free
// SPSC byte rings in one mmapped segment — the low-latency intra-node
// path (no syscalls on the data path; ~100ns handoff vs ~10us loopback
// TCP).
//
// Segment layout (created by lqcd_launch via shm_create, mapped by every
// rank):
//
//   header page: magic, rank count, ring capacity, per-rank dead flags
//   N*N rings:   one SPSC ring per ordered (src, dst) pair, each with
//                cacheline-separated head (consumer) / tail (producer)
//                monotonic u64 counters and a power-of-two byte buffer
//
// Frames serialize through the same encode_header()/FrameReader path as
// the socket backend; a frame larger than the ring streams through in
// segments. The producer never blocks on the consumer: bytes that do
// not fit in the ring spill to a per-peer user-space outbox (exactly
// the socket backend's EAGAIN discipline) that pump() flushes as the
// consumer frees space — so the ring is flow control, not a bound on
// message size, and two ranks exchanging oversized faces cannot
// deadlock on full rings. All cross-process synchronization is
// std::atomic_ref acquire/release on the counters and relaxed flags —
// no futexes, no locks.
//
// Peer death: the launcher (which owns waitpid) sets the dead flag of an
// exited rank; a ShmTransport destructor sets its own, covering clean
// exits and the in-process thread harness. Receivers drain whatever the
// departed producer left in the ring, then raise TransientError — a
// partial frame left in the reader by a producer killed mid-write is a
// torn frame and fails immediately. A producer whose consumer died
// drops its spilled bytes instead of retrying forever.

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/transport/transport.hpp"

namespace lqcd::transport {

inline constexpr int kShmMaxRanks = 64;
inline constexpr std::uint32_t kShmDefaultRingBytes = 1u << 20;

/// Total segment size for N ranks (for ftruncate / bounds checks).
[[nodiscard]] std::size_t shm_segment_bytes(int n,
                                            std::uint32_t ring_bytes);

/// Create and initialize a segment file (launcher side). `ring_bytes`
/// must be a power of two >= 4096.
void shm_create(const std::string& path, int n, std::uint32_t ring_bytes);

/// Mark `rank` dead in an existing segment (launcher side, on waitpid).
void shm_mark_dead(const std::string& path, int rank);

class ShmTransport final : public Transport {
 public:
  ShmTransport(int rank, int size, const std::string& path);
  ~ShmTransport() override;

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kShm;
  }
  [[nodiscard]] bool peer_alive(int r) const override;
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

 protected:
  void raw_send(int dst, std::uint64_t tag, std::uint32_t flags,
                std::uint32_t crc, bool tampered,
                std::span<const std::byte> wire,
                std::span<const std::byte> pristine) override;
  Inbound raw_fetch(int src, std::uint64_t tag) override;
  bool raw_try_fetch(int src, std::uint64_t tag, Inbound& out) override;
  Inbound redeliver(int src, std::uint64_t tag, int attempt,
                    Inbound prev) override;
  void drain_backend() override;

 private:
  struct InboxKey {
    int src;
    std::uint64_t tag;
    bool operator==(const InboxKey&) const = default;
  };
  struct InboxKeyHash {
    std::size_t operator()(const InboxKey& k) const noexcept {
      return std::hash<std::uint64_t>()(
          k.tag ^ (static_cast<std::uint64_t>(k.src) << 40));
    }
  };

  /// Spilled outbound bytes a full ring could not take yet; flushed in
  /// FIFO order by flush_outbox() before any direct ring write, so the
  /// byte stream the consumer's FrameReader sees stays contiguous.
  struct Outbox {
    std::deque<std::vector<std::byte>> chunks;
    std::size_t off = 0;  ///< partial-write offset into chunks front
  };

  [[nodiscard]] std::byte* ring_base(int src, int dst) const;
  [[nodiscard]] bool rank_dead(int r) const;
  /// Nonblocking write into ring (rank() -> dst): copies whatever fits
  /// and returns the byte count (0 when the ring is full).
  std::size_t ring_write_some(int dst, std::span<const std::byte> data);
  /// Push spilled bytes for `dst` into its ring as space allows; drops
  /// them if dst died. Returns true if any bytes moved.
  bool flush_outbox(int dst);
  /// Flush outboxes and drain every inbound ring into its FrameReader;
  /// dispatch complete frames (NACK service / inbox). Returns true if
  /// anything moved.
  bool pump();
  bool inbox_pop(int src, std::uint64_t tag, Inbound& out);
  void enqueue_frame(int dst, std::uint64_t tag, std::uint32_t flags,
                     std::uint32_t crc, std::span<const std::byte> payload);

  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::uint32_t ring_bytes_ = 0;
  std::vector<FrameReader> readers_;  ///< one per inbound ring
  std::vector<Outbox> outbox_;        ///< one per outbound ring
  std::unordered_map<InboxKey, std::deque<Inbound>, InboxKeyHash> inbox_;
  int recv_timeout_ms_ = -1;
};

}  // namespace lqcd::transport
