#pragma once
// In-process transport backend: N virtual ranks inside one process,
// wired through a mutex+condvar mailbox hub.
//
// This is the default backend — the refactored core of VirtualCluster —
// and doubles as the SPMD harness the tests drive with one thread per
// rank. Frames move as structs (no serialization); the pristine payload
// rides along with each record, so redelivery after a detected fault is
// a local re-roll of the injector schedule rather than a wire NACK —
// byte-equivalent to the sender re-sending, without the modeled wire
// round trip. Wire counters are still booked per frame (header +
// payload, as if serialized) so the modeled α–β comparison prices the
// same stream a socket run produces; self-sends never count wire bytes
// on any backend.
//
// Endpoint objects are single-threaded (one rank's endpoint is only ever
// driven by that rank's thread); the hub serializes cross-rank handoff.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "comm/transport/transport.hpp"

namespace lqcd::transport {

class InProcessTransport;

/// Shared mailbox state for one group of in-process endpoints.
class InProcessHub {
 public:
  explicit InProcessHub(int size) : size_(size) {}
  [[nodiscard]] int size() const noexcept { return size_; }

 private:
  friend class InProcessTransport;

  struct MailKey {
    std::uint64_t route;  ///< src << 32 | dst
    std::uint64_t tag;
    bool operator==(const MailKey&) const = default;
  };
  struct MailKeyHash {
    std::size_t operator()(const MailKey& k) const noexcept {
      return std::hash<std::uint64_t>()(k.tag ^ (k.route * 0x9E3779B97F4A7C15ull));
    }
  };
  struct Record {
    std::uint32_t flags = 0;
    std::uint32_t crc = 0;
    bool maybe_clean = false;
    std::vector<std::byte> payload;
    std::vector<std::byte> pristine;
  };

  int size_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<MailKey, std::deque<Record>, MailKeyHash> mail_;
};

class InProcessTransport final : public Transport {
 public:
  InProcessTransport(std::shared_ptr<InProcessHub> hub, int rank);

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kInProcess;
  }

 protected:
  void raw_send(int dst, std::uint64_t tag, std::uint32_t flags,
                std::uint32_t crc, bool tampered,
                std::span<const std::byte> wire,
                std::span<const std::byte> pristine) override;
  Inbound raw_fetch(int src, std::uint64_t tag) override;
  bool raw_try_fetch(int src, std::uint64_t tag, Inbound& out) override;
  Inbound redeliver(int src, std::uint64_t tag, int attempt,
                    Inbound prev) override;
  void drain_backend() override;

 private:
  std::shared_ptr<InProcessHub> hub_;
};

}  // namespace lqcd::transport
