#pragma once
// lqcd::transport — pluggable point-to-point transport under the halo API.
//
// Transport is the MPI-communicator analogue every distributed layer
// programs against: tagged send/recv, a barrier, a deterministic
// allreduce for solver dot products, gather/broadcast, and rank/size
// introspection. Three backends implement it:
//
//   InProcessTransport  N virtual ranks inside one process (mailbox hub);
//                       the refactored VirtualCluster default, and the
//                       SPMD thread harness the tests use.
//   SocketTransport     N real processes over loopback TCP, nonblocking
//                       I/O, launched by lqcd_launch.
//   ShmTransport        N same-host processes over lock-free shared-
//                       memory rings — the low-latency intra-node path.
//
// The PR-1 reliability protocol lives HERE, once, in the base class:
// send() CRC-frames the pristine payload and rolls the deterministic
// fault injector (drops become header-only marker frames, corruption
// mutates bytes after the CRC is taken); recv() verifies, books
// timeouts/CRC failures, and drives bounded receiver-side retransmits
// with modeled exponential backoff — locally from a pristine copy on the
// in-process backend, via real NACK frames to the sender's pristine
// cache on the wire backends. Injector decisions are keyed on
// (epoch, receiver rank, mu, dir, attempt) decoded from the halo tag, so
// one scripted fault schedule fires identically on every backend.
//
// Peer death is a first-class outcome: a dead peer raises TransientError
// from recv (socket: EOF; shm: the launcher's dead flag; in-process: the
// injector's kill schedule, checked by the halo layer) and the caller
// recovers through the PR-1/PR-7 paths — checkpoint restart or lane
// re-sharding. FatalError is reserved for an exhausted retry budget.
//
// WireStats separates logical payload bytes from bytes-on-the-wire
// (headers, NACKs, retransmits, drop markers); self-sends never touch
// the wire and count zero wire bytes. CommStats mirrors the split so the
// α–β model comparison sees the framing overhead it used to be blind to.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "comm/fault.hpp"
#include "comm/transport/frame.hpp"
#include "util/error.hpp"

namespace lqcd {

/// Hardening knobs for the transport (moved here from halo.hpp; the halo
/// header re-exports it, so existing includes keep compiling).
struct ResilienceConfig {
  bool checksum = false;  ///< CRC-32-frame every message and verify
  int max_retries = 3;    ///< retransmits per message before giving up
  /// Backoff before retransmit k (1-based): backoff_us * 2^(k-1),
  /// accumulated into modeled_delay_us.
  double backoff_us = 50.0;
};

namespace transport {

enum class TransportKind { kInProcess, kSocket, kShm };

[[nodiscard]] const char* to_string(TransportKind k);
/// Parse "virtual" / "socket" / "shm" (throws lqcd::Error otherwise).
[[nodiscard]] TransportKind parse_transport_kind(std::string_view name);

/// Endpoint-local wire counters. The virtual cluster and the rank-local
/// halo merge these into CommStats after each exchange phase.
struct WireStats {
  std::int64_t frames = 0;         ///< first-attempt sends (incl. self)
  std::int64_t payload_bytes = 0;  ///< their logical payload bytes
  std::int64_t wire_frames = 0;    ///< frames actually put on the wire
  std::int64_t wire_bytes = 0;     ///< header+payload bytes on the wire
  std::int64_t retransmits = 0;    ///< redeliveries this endpoint drove
  std::int64_t crc_failures = 0;   ///< corrupted payloads caught by CRC
  std::int64_t timeouts = 0;       ///< dropped messages detected
  std::int64_t checksum_bytes = 0;  ///< bytes CRC-framed by this endpoint
  double modeled_delay_us = 0.0;    ///< retransmit backoff (modeled)
  void reset() { *this = WireStats{}; }
};

class Transport {
 public:
  Transport(int rank, int size);
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] virtual TransportKind kind() const = 0;

  void set_resilience(const ResilienceConfig& rc) { resil_ = rc; }
  [[nodiscard]] const ResilienceConfig& resilience() const { return resil_; }
  /// Attach a fault injector (not owned; nullptr detaches). Faults fire
  /// on halo-tagged frames only, keyed identically on every backend.
  void set_fault_injector(FaultInjector* fi) { injector_ = fi; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Post one tagged message. Never blocks on the receiver (wire
  /// backends buffer in user space when the kernel would block).
  void send(int dst, std::uint64_t tag, std::span<const std::byte> payload);

  /// Blocking matched receive: runs the verify/NACK/retransmit protocol
  /// and returns the delivered payload in `out` (buffer reused).
  /// Throws TransientError if `src` dies first, FatalError once the
  /// retry budget is exhausted.
  void recv(int src, std::uint64_t tag, std::vector<std::byte>& out);

  /// Nonblocking probe-and-receive; false when nothing has arrived yet.
  /// A frame that *has* arrived runs the same verify/retransmit path.
  bool try_recv(int src, std::uint64_t tag, std::vector<std::byte>& out);

  /// Central barrier through rank 0 (two message waves).
  void barrier();
  /// Element-wise sum with a deterministic, rank-ordered reduction:
  /// rank 0 accumulates its own values, then ranks 1..N-1 in order —
  /// the fixed summation order distributed solver dot products need for
  /// bit-reproducibility at fixed N.
  void allreduce_sum(std::span<double> vals);
  /// Root receives every rank's blob (own slot included); non-roots get
  /// an empty vector.
  std::vector<std::vector<std::byte>> gather(int root,
                                             std::span<const std::byte> mine);
  void broadcast(int root, std::vector<std::byte>& data);

  /// False once the backend has observed `r` die (EOF / dead flag).
  /// In-process ranks share fate, so the in-process backend always
  /// reports alive.
  [[nodiscard]] virtual bool peer_alive(int r) const {
    (void)r;
    return true;
  }

  /// Discard undelivered inbound frames and retransmit caches — the
  /// recovery hook after an aborted exchange, so stale frames under
  /// reused tags cannot satisfy the retried epoch's receives.
  void drain();

  [[nodiscard]] const WireStats& wire_stats() const { return wstats_; }
  void reset_wire_stats() { wstats_.reset(); }

 protected:
  /// A frame as the receive path sees it. `pristine` rides along only on
  /// local routes (self-sends and the in-process hub), where redelivery
  /// is a local re-roll instead of a wire NACK. `maybe_clean` marks
  /// payloads the fault injector verifiably did not touch, letting local
  /// routes skip the tautological receiver-side hash — wire backends
  /// always verify.
  struct Inbound {
    std::uint32_t flags = 0;
    std::uint32_t crc = 0;
    bool maybe_clean = false;
    std::vector<std::byte> payload;
    std::vector<std::byte> pristine;
  };

  /// Put one frame toward `dst` (never called with dst == rank()).
  /// `tampered` tells struct-moving backends the payload differs from
  /// `pristine`; wire backends serialize and ignore it.
  virtual void raw_send(int dst, std::uint64_t tag, std::uint32_t flags,
                        std::uint32_t crc, bool tampered,
                        std::span<const std::byte> wire,
                        std::span<const std::byte> pristine) = 0;
  /// Blocking fetch of the next frame matching (src, tag). Must service
  /// inbound NACKs while waiting. Throws TransientError if src is dead
  /// and no matching frame is buffered.
  virtual Inbound raw_fetch(int src, std::uint64_t tag) = 0;
  /// Nonblocking fetch; false when no matching frame has arrived.
  virtual bool raw_try_fetch(int src, std::uint64_t tag, Inbound& out) = 0;
  /// Obtain attempt `attempt` of a message that failed verification.
  /// Wire backends NACK the sender and fetch; local routes re-roll from
  /// the pristine copy (local_redeliver).
  virtual Inbound redeliver(int src, std::uint64_t tag, int attempt,
                            Inbound prev) = 0;
  /// Backend part of drain().
  virtual void drain_backend() = 0;

  /// Roll the deterministic fault schedule for one (message, attempt):
  /// returns false when the attempt is dropped; may corrupt `buf` in
  /// place (sets `tampered`). Keys on the RECEIVER's rank, so the push
  /// and pull formulations of the halo exchange share one schedule.
  bool roll_send_faults(std::span<std::byte> buf, std::uint64_t tag,
                        int dst_rank, int attempt, bool& tampered);

  /// Local redelivery from a pristine copy (self route / in-process).
  Inbound local_redeliver(std::uint64_t tag, int attempt, Inbound prev);

  /// Sender-side pristine cache for wire NACK service. Keyed (dst, tag);
  /// bounded FIFO. Populated for halo frames under an attached injector
  /// and, with checksumming on, for every frame — any of those can come
  /// back as a NACK. An unknown-key NACK is answered with a drop marker
  /// so the receiver's retry budget resolves it.
  void stash_pristine(int dst, std::uint64_t tag, std::uint32_t crc,
                      std::span<const std::byte> payload);
  /// Service one inbound NACK: re-send attempt `attempt` of (dst, tag)
  /// from the pristine cache through a fresh fault roll.
  void service_nack(int dst, std::uint64_t tag, std::uint32_t attempt);

  WireStats wstats_;
  ResilienceConfig resil_;
  FaultInjector* injector_ = nullptr;

 private:
  Inbound self_fetch(std::uint64_t tag);
  void deliver(int src, std::uint64_t tag, Inbound f,
               std::vector<std::byte>& out);

  struct CacheKey {
    int dst;
    std::uint64_t tag;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return std::hash<std::uint64_t>()(
          k.tag ^ (static_cast<std::uint64_t>(k.dst) << 48));
    }
  };
  struct CacheEntry {
    std::uint32_t crc = 0;
    std::vector<std::byte> payload;
  };

  int rank_;
  int size_;
  std::unordered_map<std::uint64_t, std::deque<Inbound>> self_inbox_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> pristine_cache_;
  std::deque<CacheKey> pristine_order_;
  std::uint64_t barrier_seq_ = 0;
  std::uint64_t reduce_seq_ = 0;
  std::uint64_t gather_seq_ = 0;
  std::uint64_t bcast_seq_ = 0;
};

/// N wired in-process endpoints sharing one mailbox hub — the default
/// backend (declared here so callers need not include inprocess.hpp).
std::vector<std::unique_ptr<Transport>> make_inprocess_group(int n);

/// Construct the backend a launcher described through the environment
/// (LQCD_TRANSPORT / LQCD_RANK / LQCD_SIZE plus backend-specific
/// variables); nullptr when LQCD_TRANSPORT is unset — the caller runs
/// single-process virtual.
std::unique_ptr<Transport> make_transport_from_env();

}  // namespace transport
}  // namespace lqcd
