#include "comm/process_grid.hpp"

#include "util/error.hpp"

namespace lqcd {

ProcessGrid::ProcessGrid(const Coord& grid) : grid_(grid) {
  size_ = 1;
  for (int mu = 0; mu < Nd; ++mu) {
    LQCD_REQUIRE(grid_[mu] >= 1, "process grid extent must be >= 1");
    size_ *= grid_[mu];
  }
}

Coord ProcessGrid::local_dims(const Coord& global) const {
  Coord local{};
  for (int mu = 0; mu < Nd; ++mu) {
    LQCD_REQUIRE(global[mu] % grid_[mu] == 0,
                 "process grid does not divide the lattice");
    local[mu] = global[mu] / grid_[mu];
    LQCD_REQUIRE(local[mu] % 2 == 0,
                 "local extents must stay even for checkerboarding");
  }
  return local;
}

namespace {
bool try_choose(const Coord& global, int nodes, Coord& grid) {
  grid = {1, 1, 1, 1};
  Coord local = global;
  int remaining = nodes;
  // Peel off prime factors; for each, split the direction with the largest
  // local extent that stays even and divisible.
  while (remaining > 1) {
    int p = 0;
    for (int cand : {2, 3, 5, 7}) {
      if (remaining % cand == 0) {
        p = cand;
        break;
      }
    }
    if (p == 0) return false;  // large prime factor: give up
    int best = -1;
    for (int mu = 0; mu < Nd; ++mu) {
      if (local[mu] % p != 0) continue;
      if ((local[mu] / p) % 2 != 0) continue;  // keep local extents even
      if (best < 0 || local[mu] >= local[best]) best = mu;
    }
    if (best < 0) return false;
    local[best] /= p;
    grid[best] *= p;
    remaining /= p;
  }
  return true;
}
}  // namespace

Coord choose_grid(const Coord& global, int nodes) {
  LQCD_REQUIRE(nodes >= 1, "node count must be positive");
  Coord grid;
  LQCD_REQUIRE(try_choose(global, nodes, grid),
               "cannot decompose lattice onto this node count");
  return grid;
}

bool can_decompose(const Coord& global, int nodes) {
  if (nodes < 1) return false;
  Coord grid;
  return try_choose(global, nodes, grid);
}

}  // namespace lqcd
