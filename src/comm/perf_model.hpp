#pragma once
// Performance model for distributed lattice solvers.
//
// Substitution for the paper's cluster-scale evaluation (see DESIGN.md):
// the per-node kernel cost comes from a roofline (max of compute-bound and
// memory-bound time), halo communication from an alpha-beta torus model,
// and the CG allreduce from a log2(N) combining tree. The functional
// virtual cluster (halo.hpp) validates the *structure* (message counts,
// bytes) the model charges for; local kernels can be timed with
// calibrate_node() so the model's absolute scale matches this machine.

#include <vector>

#include "comm/machine.hpp"
#include "comm/process_grid.hpp"

namespace lqcd {

/// Cost breakdown of one dslash (full lattice worth of work) on one node.
struct DslashCost {
  double flops = 0.0;       ///< floating-point ops per node
  double mem_bytes = 0.0;   ///< DRAM traffic per node
  double comm_bytes = 0.0;  ///< halo bytes sent per node
  int messages = 0;         ///< messages per node per application
  double t_compute = 0.0;   ///< seconds (roofline)
  double t_comm = 0.0;      ///< seconds (alpha-beta, incl. resilience)
  double t_resilience = 0.0;  ///< CRC + expected-retransmit share of t_comm
  /// Share of local sites >= 1 from every face — the overlap window the
  /// functional path (HaloLattice's interior/surface partition) computes
  /// while the exchange is in flight. Caps how much comm can hide.
  double interior_fraction = 1.0;
  double t_sequential = 0.0;  ///< un-overlapped serial sum compute + comm
  double t_hidden = 0.0;      ///< comm hidden behind the interior window
  double hidden_fraction = 0.0;  ///< t_hidden / t_comm (0 when no comm)
  double t_total = 0.0;     ///< with compute/comm overlap applied
};

struct PerfModelOptions {
  int precision_bytes = 8;      ///< 8 double, 4 float, 2 "half"
  /// Wire bytes per real on halo links; 0 follows precision_bytes.
  /// Set to 2 to price the int16 block-float halo
  /// (HaloPrecision::kHalf): each face site then also pays a 4-byte
  /// per-site scale, matching detail::kHalfSiteBytes exactly.
  int halo_precision_bytes = 0;
  bool half_spinor_comm = true;  ///< send projected 2-spin halos
  double overlap = 0.8;  ///< fraction of comm hidden behind compute
  /// Multiplies the modeled kernel time; set from calibrate_node() to pin
  /// the model to measured single-node throughput. 1.0 = pure roofline.
  double calibration = 1.0;
  // --- resilience (matches VirtualCluster's hardened transport) --------
  /// CRC-32-frame every halo message: charges one checksum pass per byte
  /// on each side of the link (sender frame + receiver verify).
  bool checksummed_halo = false;
  /// Per-message probability of a detected fault (corruption or drop);
  /// charges the expected geometric number of retransmits, each paying
  /// latency + bandwidth + exponential backoff, truncated at max_retries.
  double message_fault_prob = 0.0;
  int max_retries = 3;
  double retry_backoff_us = 50.0;
};

/// Model one Wilson dslash over local volume `local`, with halos exchanged
/// in every direction where `grid` > 1.
DslashCost model_dslash(const Coord& local, const Coord& grid,
                        const MachineModel& m, const PerfModelOptions& opt);

/// One even-odd preconditioned CG iteration: the dslash work of one full
/// application of the normal Schur operator (4 half-volume dslashes),
/// level-1 field updates, and 2 global reductions.
struct IterationCost {
  DslashCost dslash;        ///< aggregated dslash part
  double t_linalg = 0.0;    ///< axpy/dot memory-bound time
  double t_allreduce = 0.0; ///< 2 reductions per iteration
  double t_iter = 0.0;
  double comm_fraction = 0.0;  ///< (halo + allreduce) share of t_iter
};
IterationCost model_cg_iteration(const Coord& local, const Coord& grid,
                                 int nodes, const MachineModel& m,
                                 const PerfModelOptions& opt);

/// One SAP-preconditioned GCR iteration: `cycles * (mr_iters + 2)` local
/// (communication-free) block dslash sweeps plus one global dslash and
/// 2(+k) reductions. Captures the DD trade: more local flops, less halo.
IterationCost model_sap_gcr_iteration(const Coord& local, const Coord& grid,
                                      int nodes, const MachineModel& m,
                                      const PerfModelOptions& opt,
                                      int cycles, int mr_iters);

/// Multigrid geometry/cost knobs the model needs (mirrors mg::MgParams
/// without pulling the mg subsystem into the comm layer).
struct MgModelParams {
  Coord block{2, 2, 2, 2};   ///< aggregate extents (coarse = local/block)
  int nvec = 8;              ///< near-null vectors; 2*nvec coarse dof/site
  int smoother_cycles = 2;   ///< SAP cycles per smoother apply
  int smoother_mr_iters = 4; ///< MR steps per block solve
  int coarse_iterations = 16;  ///< coarse GCR iterations per V-cycle
};

/// One MG-preconditioned GCR outer iteration: a full V-cycle (2 smoother
/// applies + 2 fine residual refreshes) plus the coarse-level solve. The
/// coarse grid is tiny, so its halos are latency-dominated — the model
/// separates t_coarse_comm to make that visible: at scale the coarse
/// level is the latency floor of the whole method.
struct MgIterationCost {
  IterationCost fine;             ///< smoother + fine-grid work
  double coarse_flops = 0.0;      ///< coarse stencil flops per node
  double coarse_comm_bytes = 0.0; ///< coarse halo bytes per node
  int coarse_messages = 0;        ///< coarse halo messages per node
  double t_coarse_compute = 0.0;
  double t_coarse_comm = 0.0;     ///< latency-dominated at scale
  double t_coarse_allreduce = 0.0;  ///< coarse GCR reductions
  double t_coarse = 0.0;
  double t_vcycle = 0.0;          ///< fine + coarse total
  double coarse_fraction = 0.0;   ///< coarse share of t_vcycle
};
MgIterationCost model_mg_vcycle(const Coord& local, const Coord& grid,
                                int nodes, const MachineModel& m,
                                const PerfModelOptions& opt,
                                const MgModelParams& mg);

/// One point of a scaling curve.
struct ScalingPoint {
  int nodes = 0;
  Coord grid{};
  Coord local{};
  IterationCost cost;
  double sustained_tflops = 0.0;  ///< whole-machine sustained TFLOP/s
  double efficiency = 1.0;        ///< parallel efficiency vs first point
};

/// Strong scaling: fixed global lattice, growing node counts. Node counts
/// that do not factor onto the lattice are skipped.
std::vector<ScalingPoint> strong_scaling(const Coord& global,
                                         const MachineModel& m,
                                         const PerfModelOptions& opt,
                                         const std::vector<int>& nodes);

/// Weak scaling: fixed local volume per node.
std::vector<ScalingPoint> weak_scaling(const Coord& local,
                                       const MachineModel& m,
                                       const PerfModelOptions& opt,
                                       const std::vector<int>& nodes);

/// Measure this machine's actual dslash time per site (seconds) for the
/// given precision on a small local volume, and return the ratio
/// measured / modeled as a calibration factor for PerfModelOptions.
///
/// With simd_width > 0 the measurement runs the lane-packed dslash
/// (dirac/simd_wilson.hpp) at that width — ghost fill included, since the
/// scaling tables charge for a full sweep — so the model's per-node
/// throughput reflects the vectorized kernel. Falls back to the scalar
/// reference kernel when the width is unsupported (non-power-of-two, or
/// the calibration volume does not decompose). simd_width = 0 keeps the
/// scalar kernel, which preserves the historical calibration.
double calibrate_node(const MachineModel& m, int precision_bytes,
                      int simd_width = 0);

}  // namespace lqcd
