#pragma once
// Deterministic fault injection for the virtual cluster.
//
// A FaultInjector models the failure modes a petascale campaign sees in
// the network layer: bit corruption in transit, dropped messages
// (timeouts), straggling ranks, and ranks dying mid-exchange. Every
// decision is a pure function of (seed, epoch, rank, mu, dir, attempt),
// computed through the same counter-based RNG the physics uses, so an
// injected fault schedule is bit-reproducible across thread counts and
// reruns — the property the corrupt → detect → retransmit → bit-identical
// tests rely on.
//
// Faults are scripted per rank and per epoch (an epoch is one halo
// exchange): a default FaultSpec applies to all ranks, per-rank overrides
// refine it, and an optional global event budget caps the total number of
// injected faults so a probability-1.0 spec hammers the first messages
// and then lets the system recover.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lqcd {

/// Fault probabilities and scheduling window for one rank (or the
/// cluster-wide default). Probabilities are per message *attempt*, so a
/// retransmit rolls fresh dice.
struct FaultSpec {
  double corrupt_prob = 0.0;   ///< flip payload bits in transit
  double drop_prob = 0.0;      ///< message never arrives (timeout)
  double straggle_prob = 0.0;  ///< rank delays the exchange
  double straggle_us = 200.0;  ///< modeled delay per straggle event
  double task_straggle_prob = 0.0;  ///< a whole task runs slow on a lane
  double task_straggle_mult = 8.0;  ///< modeled task slowdown factor
  std::uint64_t first_epoch = 0;  ///< active window (inclusive)
  std::uint64_t last_epoch = std::numeric_limits<std::uint64_t>::max();
};

/// Counters for every fault actually injected (atomic: the exchange runs
/// one rank per thread).
struct FaultStats {
  std::atomic<std::int64_t> corruptions{0};
  std::atomic<std::int64_t> drops{0};
  std::atomic<std::int64_t> straggles{0};
  std::atomic<std::int64_t> kills{0};
  std::atomic<std::int64_t> lane_deaths{0};
  std::atomic<std::int64_t> task_straggles{0};

  void reset() {
    corruptions = 0;
    drops = 0;
    straggles = 0;
    kills = 0;
    lane_deaths = 0;
    task_straggles = 0;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultSpec default_spec = {})
      : seed_(seed), default_spec_(default_spec) {}

  /// Cluster-wide fault behavior (applies where no rank override exists).
  void set_default_spec(const FaultSpec& spec) { default_spec_ = spec; }
  /// Override the schedule for one rank (e.g. a single flaky NIC).
  void set_rank_spec(int rank, const FaultSpec& spec) {
    rank_specs_[rank] = spec;
  }
  /// Kill `rank` at exchange `epoch`: the exchange observes the death and
  /// raises TransientError (checkpoint/restart is the recovery path).
  /// Kills accumulate — a chaos schedule kills more than once across a
  /// campaign's lives — so a second call adds a kill rather than
  /// replacing the first. clear_kills() drops the whole schedule.
  void schedule_kill(int rank, std::uint64_t epoch) {
    kills_.emplace_back(rank, epoch);
  }
  void clear_kills() { kills_.clear(); }
  /// Permanently stop `lane`'s heartbeats from `epoch` on. Unlike a
  /// process kill (transient: the service itself dies and is restarted),
  /// a lane death is survived in place: the scheduler declares the lane
  /// dead after enough missed modeled deadlines and re-shards its
  /// remaining tasks over the survivors.
  void schedule_lane_death(int lane, std::uint64_t epoch) {
    const auto it = lane_death_epoch_.find(lane);
    if (it == lane_death_epoch_.end() || epoch < it->second)
      lane_death_epoch_[lane] = epoch;
  }
  /// True once `lane`'s scheduled death epoch has passed (permanent).
  [[nodiscard]] bool lane_dead(std::uint64_t epoch, int lane) const {
    const auto it = lane_death_epoch_.find(lane);
    return it != lane_death_epoch_.end() && epoch >= it->second;
  }
  void record_lane_death() { stats_.lane_deaths.fetch_add(1); }
  /// Cap the total number of injected corrupt/drop/straggle events
  /// (-1 = unlimited). With the cap exhausted the network runs clean.
  void set_event_budget(std::int64_t budget) { budget_ = budget; }

  // --- transport hooks (called by VirtualCluster::exchange) ------------

  [[nodiscard]] bool should_kill(std::uint64_t epoch, int rank) const {
    for (const auto& [r, e] : kills_)
      if (r == rank && e == epoch) return true;
    return false;
  }
  void record_kill() { stats_.kills.fetch_add(1); }

  /// True if this (message, attempt) is lost in transit.
  bool should_drop(std::uint64_t epoch, int rank, int mu, int dir,
                   int attempt);

  /// Corrupt `payload` in place (a few deterministic bit flips); returns
  /// whether corruption was injected.
  bool corrupt(std::span<std::byte> payload, std::uint64_t epoch, int rank,
               int mu, int dir, int attempt);

  /// Modeled straggler delay (microseconds) contributed by `rank` this
  /// epoch; 0 when the rank is on time.
  double straggle_us(std::uint64_t epoch, int rank);

  /// Modeled slowdown factor for one whole task execution on `lane` at
  /// `epoch`; 1.0 when the lane runs at full speed. A factor beyond the
  /// campaign's heartbeat margin is what the lane health model sees as a
  /// missed deadline (suspect lane, speculation candidate).
  double task_straggle_mult(std::uint64_t epoch, int lane);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  [[nodiscard]] const FaultSpec& spec_for(int rank) const {
    const auto it = rank_specs_.find(rank);
    return it == rank_specs_.end() ? default_spec_ : it->second;
  }
  [[nodiscard]] bool active(const FaultSpec& s, std::uint64_t epoch) const {
    return epoch >= s.first_epoch && epoch <= s.last_epoch;
  }
  /// Deterministic uniform in [0,1) for one (kind, message, attempt) key.
  [[nodiscard]] double roll(std::uint64_t kind, std::uint64_t epoch,
                            int rank, int mu, int dir, int attempt,
                            std::uint64_t salt = 0) const;
  /// Consume one unit of the event budget; false if exhausted.
  bool take_budget();

  std::uint64_t seed_;
  FaultSpec default_spec_;
  std::unordered_map<int, FaultSpec> rank_specs_;
  std::vector<std::pair<int, std::uint64_t>> kills_;  ///< (rank, epoch)
  std::unordered_map<int, std::uint64_t> lane_death_epoch_;
  std::atomic<std::int64_t> budget_{-1};
  FaultStats stats_;
};

}  // namespace lqcd
