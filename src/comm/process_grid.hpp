#pragma once
// 4-D process grid: the rank layout of a distributed lattice job.
//
// This is the MPI_Cart_create analogue of the virtual cluster. Ranks are
// laid out lexicographically over a 4-d grid; each rank owns an equal
// local sub-lattice. choose_grid() reproduces the standard job-script
// heuristic: split the longest lattice extent first, keeping local
// volumes as close to hypercubic as possible.

#include <array>
#include <cstdint>
#include <vector>

#include "lattice/geometry.hpp"

namespace lqcd {

class ProcessGrid {
 public:
  /// `grid[mu]` ranks along direction mu.
  explicit ProcessGrid(const Coord& grid);

  [[nodiscard]] const Coord& dims() const noexcept { return grid_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  [[nodiscard]] int rank_of(const Coord& rc) const noexcept {
    return rc[0] +
           grid_[0] * (rc[1] + grid_[1] * (rc[2] + grid_[2] * rc[3]));
  }
  [[nodiscard]] Coord coords_of(int rank) const noexcept {
    Coord rc{};
    rc[0] = rank % grid_[0];
    rank /= grid_[0];
    rc[1] = rank % grid_[1];
    rank /= grid_[1];
    rc[2] = rank % grid_[2];
    rank /= grid_[2];
    rc[3] = rank;
    return rc;
  }

  /// Neighbor rank in direction mu (+1 forward / -1 backward), periodic.
  [[nodiscard]] int neighbor(int rank, int mu, int dir) const noexcept {
    Coord rc = coords_of(rank);
    rc[mu] = (rc[mu] + (dir > 0 ? 1 : grid_[mu] - 1)) % grid_[mu];
    return rank_of(rc);
  }

  /// Local extents for a given global lattice (throws if indivisible).
  [[nodiscard]] Coord local_dims(const Coord& global) const;

 private:
  Coord grid_;
  int size_;
};

/// Pick a process grid for `nodes` ranks over lattice `global`:
/// repeatedly halve the direction with the largest local extent (ties go
/// to the highest direction index, so time is split first, as production
/// codes prefer for temporal-extent-dominated lattices).
/// Throws if `nodes` cannot be factored onto the lattice with even local
/// extents (checkerboarding requires local extents to stay even).
Coord choose_grid(const Coord& global, int nodes);

/// True if choose_grid would succeed.
bool can_decompose(const Coord& global, int nodes);

}  // namespace lqcd
