#pragma once
// Analytic machine models for the scaling studies.
//
// A MachineModel bundles the per-node roofline (peak flops + memory
// bandwidth) with a torus-style network alpha-beta model. Presets follow
// the published specs of the petascale systems lattice QCD ran on around
// SC'13 (Blue Gene/Q, the K computer) plus a generic InfiniBand cluster.
// Absolute numbers are machine constants; the scaling *shape* the model
// produces (surface-to-volume bend, latency floor, allreduce decay) is
// what the benches reproduce.

#include <string>

namespace lqcd {

struct MachineModel {
  std::string name;

  // Per-node compute roofline.
  double node_gflops_double = 0.0;  ///< peak DP GFLOP/s per node
  double node_gflops_single = 0.0;  ///< peak SP GFLOP/s per node
  double mem_bw_gbs = 0.0;          ///< STREAM-class memory bandwidth, GB/s
  double compute_efficiency = 0.55;  ///< sustained fraction of the roofline

  // Network (alpha-beta per link).
  double link_bw_gbs = 0.0;      ///< bandwidth per link per direction, GB/s
  int links_per_node = 8;        ///< concurrently usable links
  double link_latency_us = 1.0;  ///< per-message latency
  double allreduce_latency_us = 2.0;  ///< per log2(N) combining stage

  /// Peak GFLOP/s for the given element size (8 = double, 4 = float;
  /// 2 models QUDA-style half precision, which computes in single).
  [[nodiscard]] double peak_gflops(int precision_bytes) const {
    return precision_bytes >= 8 ? node_gflops_double : node_gflops_single;
  }
};

/// IBM Blue Gene/Q: 204.8 DP GF/node, 42.6 GB/s memory, 5-D torus with
/// 10 x 2 GB/s links, ~1.2 us nearest-neighbor latency.
MachineModel blue_gene_q();

/// K computer: 128 DP GF/node, 64 GB/s memory, Tofu 6-D mesh/torus with
/// 10 x 5 GB/s links, ~1 us latency.
MachineModel k_computer();

/// Generic 2013 InfiniBand FDR cluster: dual-socket Xeon nodes,
/// ~345 DP GF/node, 102 GB/s memory, one 6.8 GB/s rail, ~1.5 us latency.
MachineModel generic_cluster();

/// Look up a preset by name ("bgq", "k", "cluster"); throws on unknown.
MachineModel machine_by_name(const std::string& name);

}  // namespace lqcd
