#pragma once
// Even-odd (Schur) preconditioned Wilson operator evaluated through the
// virtual cluster with split-phase, comm/compute-overlapped halo
// exchanges — the distributed twin of SchurWilsonOperator (dirac/eo.hpp).
//
// Each half-volume sweep (D_eo or D_oe) runs as: exchange_begin on the
// source field, hop over the target parity's interior (overlap-partition)
// sites, exchange_finish, hop over the target parity's surface sites.
// The per-site hop and the combine arithmetic are copied from the
// single-domain Schur operator instruction for instruction, so iterates
// are bit-identical — solvers preconditioned through this operator must
// converge in exactly the same number of iterations.
//
// Fields live on the extended (haloed) per-rank volume and are
// zero-initialized once: sites of the unwritten parity stay
// deterministically zero, which is what makes scatter_parity +
// full-field exchange correct (ghosts of the wrong parity are zero and
// never read).

#include "comm/halo.hpp"
#include "linalg/blas.hpp"

namespace lqcd {

/// Distributed Schur complement of the plain Wilson operator (A = 1):
/// Mhat = 1 - kappa^2 D_oe D_eo on the odd checkerboard.
template <typename T>
class DistributedSchurWilsonOperator final : public LinearOperator<T> {
 public:
  DistributedSchurWilsonOperator(const GaugeField<T>& u, double kappa,
                                 const ProcessGrid& grid,
                                 TimeBoundary bc = TimeBoundary::Antiperiodic)
      : cluster_(u.geometry(), grid), kappa_(static_cast<T>(kappa)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    const GaugeField<T> links = make_fermion_links(u, bc);
    gauge_ = cluster_.scatter_gauge(links);
    psi_ = cluster_.make_fermion();
    tmp_ = cluster_.make_fermion();
    res_ = cluster_.make_fermion();
    baux_ = cluster_.make_fermion();
  }

  /// Mhat x on the odd checkerboard (half-volume spans).
  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    const std::int64_t hv = cluster_.global_geometry().half_volume();
    LQCD_REQUIRE(out.size() == static_cast<std::size_t>(hv) &&
                     in.size() == out.size(),
                 "Schur apply span sizes");
    if (telemetry::enabled()) {
      static telemetry::Counter& c =
          telemetry::counter("dslash.dist_schur_applies");
      static telemetry::Counter& c_sites =
          telemetry::counter("dslash.site_applies");
      c.add(1);
      c_sites.add(cluster_.global_geometry().volume());
    }
    cluster_.scatter_parity(psi_, in, 1);
    // Even sites of tmp <- D_eo in (raw hop, kappa applied in the
    // combine, exactly as dslash_parity leaves it).
    hop_stage(tmp_, psi_, 0,
              [](WilsonSpinor<T>& dst, const WilsonSpinor<T>& hop,
                 const RankFermion& /*aux*/, std::size_t /*xe*/) {
                dst = hop;
              });
    // Odd sites of res <- in - kappa^2 D_oe tmp.
    const T k2 = kappa_ * kappa_;
    hop_stage(res_, tmp_, 1,
              [k2](WilsonSpinor<T>& dst, const WilsonSpinor<T>& hop,
                   const RankFermion& aux, std::size_t xe) {
                WilsonSpinor<T> h = hop;
                h *= k2;
                WilsonSpinor<T> r = aux[xe];
                r -= h;
                dst = r;
              },
              &psi_);
    cluster_.gather_parity(out, res_, 1);
  }

  /// bhat_o = b_o + kappa D_oe b_e (b is a full-volume field).
  void prepare_rhs(std::span<WilsonSpinor<T>> bhat,
                   std::span<const WilsonSpinor<T>> b_full) const {
    if (telemetry::enabled()) {
      static telemetry::Counter& c_sites =
          telemetry::counter("dslash.site_applies");
      c_sites.add(cluster_.global_geometry().half_volume());
    }
    cluster_.scatter(baux_, b_full);
    const T k = kappa_;
    hop_stage(res_, baux_, 1,
              [k](WilsonSpinor<T>& dst, const WilsonSpinor<T>& hop,
                  const RankFermion& aux, std::size_t xe) {
                WilsonSpinor<T> h = hop;
                h *= k;
                h += aux[xe];
                dst = h;
              },
              &baux_);
    cluster_.gather_parity(bhat, res_, 1);
  }

  /// x_full: odd block <- x_odd; even block <- b_e + kappa D_eo x_o.
  void reconstruct(std::span<WilsonSpinor<T>> x_full,
                   std::span<const WilsonSpinor<T>> x_odd,
                   std::span<const WilsonSpinor<T>> b_full) const {
    const std::int64_t hv = cluster_.global_geometry().half_volume();
    if (telemetry::enabled()) {
      static telemetry::Counter& c_sites =
          telemetry::counter("dslash.site_applies");
      c_sites.add(hv);
    }
    auto x_full_odd = x_full.subspan(static_cast<std::size_t>(hv));
    blas::copy(x_full_odd, x_odd);
    cluster_.scatter_parity(psi_, x_odd, 1);
    cluster_.scatter(baux_, b_full);
    const T k = kappa_;
    hop_stage(res_, psi_, 0,
              [k](WilsonSpinor<T>& dst, const WilsonSpinor<T>& hop,
                  const RankFermion& aux, std::size_t xe) {
                WilsonSpinor<T> h = hop;
                h *= k;
                h += aux[xe];
                dst = h;
              },
              &baux_);
    cluster_.gather_parity(x_full.first(static_cast<std::size_t>(hv)), res_,
                           0);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return cluster_.global_geometry().half_volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    // Two half-volume dslashes + combine (same as SchurWilsonOperator).
    return static_cast<double>(cluster_.global_geometry().volume()) *
               kDslashFlopsPerSite +
           static_cast<double>(vector_size()) * 48.0;
  }
  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }
  [[nodiscard]] const VirtualCluster<T>& cluster() const { return cluster_; }
  [[nodiscard]] VirtualCluster<T>& cluster() { return cluster_; }

  /// Fermion halo wire precision. kHalf quantizes the ghost planes (the
  /// zero other-parity ghosts round-trip exactly, so the Schur parity
  /// invariant is preserved); gauge ghosts stay full precision.
  void set_halo_precision(HaloPrecision p) {
    cluster_.set_halo_precision(p);
  }
  [[nodiscard]] HaloPrecision halo_precision() const {
    return cluster_.halo_precision();
  }

  /// Toggle the split-phase overlapped schedule (default on); results
  /// are bit-identical either way.
  void set_overlap(bool on) { overlap_ = on; }
  [[nodiscard]] bool overlap() const { return overlap_; }
  /// Accumulated phase timings; each half-volume sweep counts as one
  /// overlapped apply.
  [[nodiscard]] const OverlapStats& overlap_stats() const { return ov_; }
  void reset_overlap_stats() { ov_.reset(); }

 private:
  using RankFermion = typename VirtualCluster<T>::RankFermion;

  /// One half-volume hop sweep: fill `target_parity` (global) sites of
  /// dst with store(hop D src, aux site). Overlapped: begin, interior,
  /// finish, surface.
  template <typename Store>
  void hop_stage(std::vector<RankFermion>& dst,
                 std::vector<RankFermion>& src, int target_parity,
                 const Store& store,
                 const std::vector<RankFermion>* aux = nullptr) const {
    const HaloLattice& halo = cluster_.halo();
    if (!overlap_) {
      cluster_.exchange(src);
      run_sites(dst, src, target_parity, true, store, aux);
      run_sites(dst, src, target_parity, false, store, aux);
      return;
    }
    WallTimer t;
    cluster_.exchange_begin(src);
    ov_.t_begin_s += t.seconds();
    t.start();
    run_sites(dst, src, target_parity, true, store, aux);
    ov_.t_interior_s += t.seconds();
    t.start();
    cluster_.exchange_finish(src);
    ov_.t_finish_s += t.seconds();
    t.start();
    run_sites(dst, src, target_parity, false, store, aux);
    ov_.t_surface_s += t.seconds();
    std::int64_t n_int = 0;
    std::int64_t n_surf = 0;
    for (int r = 0; r < cluster_.ranks(); ++r) {
      const int lp = (target_parity + cluster_.origin_parity(r)) & 1;
      n_int += static_cast<std::int64_t>(halo.interior_sites(lp).size());
      n_surf += static_cast<std::int64_t>(halo.surface_sites(lp).size());
    }
    ov_.applies += 1;
    ov_.interior_sites += n_int;
    ov_.surface_sites += n_surf;
    if (telemetry::enabled()) {
      static telemetry::Counter& c_applies =
          telemetry::counter("comm.halo.overlap.applies");
      static telemetry::Counter& c_int =
          telemetry::counter("comm.halo.overlap.interior_sites");
      static telemetry::Counter& c_surf =
          telemetry::counter("comm.halo.overlap.surface_sites");
      c_applies.add(1);
      c_int.add(n_int);
      c_surf.add(n_surf);
    }
  }

  template <typename Store>
  void run_sites(std::vector<RankFermion>& dst,
                 const std::vector<RankFermion>& src, int target_parity,
                 bool interior, const Store& store,
                 const std::vector<RankFermion>* aux) const {
    const HaloLattice& halo = cluster_.halo();
    parallel_for(
        static_cast<std::size_t>(cluster_.ranks()), [&](std::size_t r) {
          // Local checkerboard whose global parity equals target_parity.
          const int lp =
              (target_parity + cluster_.origin_parity(static_cast<int>(r))) &
              1;
          const std::span<const std::int64_t> sites =
              interior ? halo.interior_sites(lp) : halo.surface_sites(lp);
          const RankFermion& psi = src[r];
          const auto& ug = gauge_[r];
          RankFermion& res = dst[r];
          const RankFermion& a = aux != nullptr ? (*aux)[r] : src[r];
          for (const std::int64_t i : sites) {
            const Coord x = halo.interior_coords(i);
            const auto xe =
                static_cast<std::size_t>(halo.ext_index(x));
            const WilsonSpinor<T> acc =
                detail::dist_hop_site(x, psi, ug, halo);
            store(res[xe], acc, a, xe);
          }
        });
  }

  VirtualCluster<T> cluster_;
  std::vector<typename VirtualCluster<T>::RankGauge> gauge_;
  mutable std::vector<RankFermion> psi_;
  mutable std::vector<RankFermion> tmp_;
  mutable std::vector<RankFermion> res_;
  mutable std::vector<RankFermion> baux_;
  T kappa_;
  bool overlap_ = true;
  mutable OverlapStats ov_;
};

}  // namespace lqcd
