#pragma once
// Virtual cluster: a functional multi-rank domain decomposition running
// inside one process.
//
// Each rank owns a local sub-lattice stored with a depth-1 ghost frame
// (the "halo"). exchange() packs boundary planes into per-message buffers
// and delivers them into the neighbor rank's ghost frame — the same
// pack/send/recv/unpack structure an MPI backend would run, with memcpy as
// the transport. Byte and message counts are recorded so the analytic
// network model can be cross-checked against the functional path.
//
// DistributedWilsonOperator applies the full Wilson matrix through this
// machinery and is validated bit-for-bit against the single-domain
// operator — the correctness anchor for every scaling claim in the bench
// harness.

#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "comm/fault.hpp"
#include "comm/process_grid.hpp"
#include "dirac/operator.hpp"
#include "dirac/wilson.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "linalg/gamma.hpp"
#include "parallel/thread_pool.hpp"
#include "util/aligned.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

/// Local sub-lattice with a depth-1 ghost frame. Extended coordinates run
/// -1 .. l[mu]; ext_index() offsets them into a dense array.
class HaloLattice {
 public:
  explicit HaloLattice(const Coord& local_dims);

  [[nodiscard]] const Coord& local_dims() const noexcept { return l_; }
  [[nodiscard]] std::int64_t interior_volume() const noexcept {
    return interior_vol_;
  }
  [[nodiscard]] std::int64_t extended_volume() const noexcept {
    return ext_vol_;
  }

  /// Dense index of an extended coordinate (components in [-1, l]).
  [[nodiscard]] std::int64_t ext_index(const Coord& x) const noexcept {
    return (x[0] + 1) +
           static_cast<std::int64_t>(e_[0]) *
               ((x[1] + 1) +
                static_cast<std::int64_t>(e_[1]) *
                    ((x[2] + 1) +
                     static_cast<std::int64_t>(e_[2]) * (x[3] + 1)));
  }

  /// Interior coordinate of the i-th interior site (lexicographic).
  [[nodiscard]] Coord interior_coords(std::int64_t i) const noexcept {
    Coord x{};
    x[0] = static_cast<int>(i % l_[0]);
    i /= l_[0];
    x[1] = static_cast<int>(i % l_[1]);
    i /= l_[1];
    x[2] = static_cast<int>(i % l_[2]);
    i /= l_[2];
    x[3] = static_cast<int>(i);
    return x;
  }

  /// Number of sites on the face orthogonal to mu.
  [[nodiscard]] std::int64_t face_volume(int mu) const noexcept {
    return interior_vol_ / l_[mu];
  }

 private:
  Coord l_;
  Coord e_;
  std::int64_t interior_vol_;
  std::int64_t ext_vol_;
};

/// Communication counters accumulated by exchange operations.
struct CommStats {
  std::int64_t messages = 0;  ///< first-attempt sends
  std::int64_t bytes = 0;     ///< payload bytes of first-attempt sends
  std::int64_t exchanges = 0;
  // Resilience counters (only move when checksums / faults are active).
  std::int64_t retransmits = 0;    ///< extra sends after a detected fault
  std::int64_t crc_failures = 0;   ///< corrupted payloads caught by CRC
  std::int64_t timeouts = 0;       ///< dropped messages detected
  std::int64_t straggler_events = 0;
  std::int64_t checksum_bytes = 0;  ///< bytes CRC-framed (sender side)
  /// Modeled resilience delay: straggler stalls plus retransmit backoff.
  /// Charged analytically (the memcpy transport does not sleep) so the
  /// α–β network model can price the hardened path.
  double modeled_delay_us = 0.0;
  void reset() { *this = CommStats{}; }
};

/// Hardening knobs for the halo transport.
struct ResilienceConfig {
  bool checksum = false;  ///< CRC-32-frame every message and verify
  int max_retries = 3;    ///< retransmits per message before giving up
  /// Backoff before retransmit k (1-based): backoff_us * 2^(k-1),
  /// accumulated into CommStats::modeled_delay_us.
  double backoff_us = 50.0;
};

/// A lattice decomposed over a virtual process grid, with resident
/// per-rank fermion and gauge storage.
template <typename T>
class VirtualCluster {
 public:
  VirtualCluster(const LatticeGeometry& global, const ProcessGrid& grid)
      : global_(&global),
        grid_(grid),
        local_dims_(grid.local_dims(global.dims())),
        halo_(local_dims_) {
    origins_.resize(static_cast<std::size_t>(grid_.size()));
    for (int r = 0; r < grid_.size(); ++r) {
      const Coord rc = grid_.coords_of(r);
      for (int mu = 0; mu < Nd; ++mu)
        origins_[static_cast<std::size_t>(r)][mu] =
            rc[mu] * local_dims_[mu];
    }
  }

  [[nodiscard]] const LatticeGeometry& global_geometry() const {
    return *global_;
  }
  [[nodiscard]] const ProcessGrid& grid() const { return grid_; }
  [[nodiscard]] const HaloLattice& halo() const { return halo_; }
  [[nodiscard]] int ranks() const { return grid_.size(); }
  [[nodiscard]] const Coord& origin(int rank) const {
    return origins_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] CommStats& stats() const { return stats_; }

  /// Enable/disable the hardened transport (CRC framing + retransmit).
  void set_resilience(const ResilienceConfig& rc) { resil_ = rc; }
  [[nodiscard]] const ResilienceConfig& resilience() const { return resil_; }
  /// Attach a fault injector (not owned; nullptr detaches). The injector
  /// perturbs messages in transit; with checksums enabled the exchange
  /// detects and retransmits, without them corruption flows through
  /// silently — exactly the trade bench_resilience quantifies.
  void set_fault_injector(FaultInjector* fi) { injector_ = fi; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Per-rank fermion storage on the extended (haloed) volume.
  using RankFermion = aligned_vector<WilsonSpinor<T>>;
  /// Per-rank gauge storage on the extended volume.
  using RankGauge = aligned_vector<LinkSite<T>>;

  [[nodiscard]] std::vector<RankFermion> make_fermion() const {
    return std::vector<RankFermion>(
        static_cast<std::size_t>(ranks()),
        RankFermion(static_cast<std::size_t>(halo_.extended_volume())));
  }

  /// Distribute a global checkerboard-layout fermion field.
  void scatter(std::vector<RankFermion>& dst,
               std::span<const WilsonSpinor<T>> src) const {
    LQCD_REQUIRE(src.size() == static_cast<std::size_t>(global_->volume()),
                 "scatter: global field size");
    for_each_rank([&](int r) {
      RankFermion& loc = dst[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        loc[static_cast<std::size_t>(halo_.ext_index(xl))] =
            src[static_cast<std::size_t>(global_->cb_index(
                global_coords(r, xl)))];
      }
    });
  }

  /// Collect rank-local interiors back into a global field.
  void gather(std::span<WilsonSpinor<T>> dst,
              const std::vector<RankFermion>& src) const {
    LQCD_REQUIRE(dst.size() == static_cast<std::size_t>(global_->volume()),
                 "gather: global field size");
    for_each_rank([&](int r) {
      const RankFermion& loc = src[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        dst[static_cast<std::size_t>(
            global_->cb_index(global_coords(r, xl)))] =
            loc[static_cast<std::size_t>(halo_.ext_index(xl))];
      }
    });
  }

  /// Distribute a gauge field and fill its ghost links (one-time setup
  /// exchange, as a production code does after loading a configuration).
  [[nodiscard]] std::vector<RankGauge> scatter_gauge(
      const GaugeField<T>& u) const {
    std::vector<RankGauge> out(
        static_cast<std::size_t>(ranks()),
        RankGauge(static_cast<std::size_t>(halo_.extended_volume())));
    for_each_rank([&](int r) {
      RankGauge& loc = out[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        loc[static_cast<std::size_t>(halo_.ext_index(xl))] =
            u.site(global_->cb_index(global_coords(r, xl)));
      }
    });
    exchange_gauge(out);
    return out;
  }

  /// Halo exchange for a fermion field: fill every rank's ghost frame
  /// from the neighbors' boundary planes.
  void exchange(std::vector<RankFermion>& f) const {
    exchange_impl<WilsonSpinor<T>>(f);
  }

  /// Halo exchange for gauge ghosts.
  void exchange_gauge(std::vector<RankGauge>& g) const {
    exchange_impl<LinkSite<T>>(g);
  }

  /// Global coordinate of rank-local coordinate xl (periodic wrap).
  [[nodiscard]] Coord global_coords(int rank, const Coord& xl) const {
    Coord xg{};
    const Coord& o = origins_[static_cast<std::size_t>(rank)];
    for (int mu = 0; mu < Nd; ++mu)
      xg[mu] = (o[mu] + xl[mu] + global_->dim(mu)) % global_->dim(mu);
    return xg;
  }

 private:
  template <typename F>
  void for_each_rank(F&& body) const {
    parallel_for(static_cast<std::size_t>(ranks()),
                 [&](std::size_t r) { body(static_cast<int>(r)); });
  }

  template <typename SiteT>
  void exchange_impl(std::vector<std::vector<SiteT, AlignedAllocator<SiteT>>>&
                         field) const {
    // Pull model: every rank fills its 8 ghost planes by packing the
    // matching boundary plane of the neighbor rank through a message
    // buffer (mimicking send/recv). With resilience enabled each message
    // is CRC-32-framed; the fault injector may corrupt or drop it in
    // transit, and a detected fault triggers a bounded retransmit with
    // exponential backoff (modeled, not slept).
    const Coord& l = local_dims_;
    const std::uint64_t epoch = static_cast<std::uint64_t>(stats_.exchanges);
    const bool resilient = resil_.checksum || injector_ != nullptr;
    // Telemetry charges the per-exchange deltas after the parallel region
    // (one snapshot + a handful of relaxed adds; nothing runs inside the
    // per-rank bodies).
    const CommStats before = stats_;
    for_each_rank([&](int r) {
      auto& mine = field[static_cast<std::size_t>(r)];
      CommStats local;  // per-rank tally, merged once under the lock
      if (injector_ != nullptr) {
        if (injector_->should_kill(epoch, r)) {
          injector_->record_kill();
          throw TransientError("halo exchange: rank " + std::to_string(r) +
                               " died at epoch " + std::to_string(epoch));
        }
        const double stall = injector_->straggle_us(epoch, r);
        if (stall > 0.0) {
          local.straggler_events += 1;
          local.modeled_delay_us += stall;
        }
      }
      std::vector<SiteT> buffer;  // message payload, faults applied in place
      for (int mu = 0; mu < Nd; ++mu) {
        for (int dir = -1; dir <= 1; dir += 2) {
          const int nbr = grid_.neighbor(r, mu, dir);
          const auto& theirs = field[static_cast<std::size_t>(nbr)];
          // Ghost plane at x[mu] = l (dir=+1) or -1 (dir=-1) receives the
          // neighbor's interior plane x[mu] = 0 (resp. l-1).
          const int ghost_coord = dir > 0 ? l[mu] : -1;
          const int src_coord = dir > 0 ? 0 : l[mu] - 1;
          // Pack (neighbor side). Re-invoked to restore the pristine
          // payload when a retransmit follows detected corruption.
          const auto pack = [&] {
            buffer.clear();
            buffer.reserve(static_cast<std::size_t>(halo_.face_volume(mu)));
            Coord x{};
            for (x[3] = 0; x[3] < l[3]; ++x[3])
              for (x[2] = 0; x[2] < l[2]; ++x[2])
                for (x[1] = 0; x[1] < l[1]; ++x[1])
                  for (x[0] = 0; x[0] < l[0]; ++x[0]) {
                    if (x[mu] != 0) continue;  // iterate the face once
                    Coord src = x;
                    src[mu] = src_coord;
                    buffer.push_back(theirs[static_cast<std::size_t>(
                        halo_.ext_index(src))]);
                  }
          };
          pack();
          const std::size_t payload_bytes = buffer.size() * sizeof(SiteT);
          if (resilient) {
            // Sender frames the payload with its CRC; receiver verifies.
            const std::uint32_t sent_crc =
                resil_.checksum ? crc32(buffer.data(), payload_bytes) : 0;
            if (resil_.checksum)
              local.checksum_bytes +=
                  static_cast<std::int64_t>(payload_bytes);
            // In-process transport: sender and receiver share the payload
            // memory, so the receiver-side verify is tautological unless
            // the injector actually touched the bytes — hash again only
            // then. The alpha-beta model still charges both ends of the
            // link for real networks (perf_model.cpp).
            if (injector_ != nullptr) {
              int attempt = 0;
              for (;;) {
                bool tampered = false;
                const bool arrived =
                    !injector_->should_drop(epoch, r, mu, dir, attempt);
                if (arrived) {
                  const std::span<std::byte> raw{
                      reinterpret_cast<std::byte*>(buffer.data()),
                      payload_bytes};
                  tampered =
                      injector_->corrupt(raw, epoch, r, mu, dir, attempt);
                }
                if (arrived &&
                    (!tampered || !resil_.checksum ||
                     crc32(buffer.data(), payload_bytes) == sent_crc))
                  break;  // intact (or corruption is undetectable)
                if (!arrived)
                  local.timeouts += 1;
                else
                  local.crc_failures += 1;
                if (attempt >= resil_.max_retries)
                  throw FatalError(
                      "halo exchange: message (rank " + std::to_string(r) +
                      ", mu " + std::to_string(mu) + ", dir " +
                      std::to_string(dir) + ") unrecoverable after " +
                      std::to_string(attempt + 1) + " attempts");
                ++attempt;
                local.retransmits += 1;
                local.modeled_delay_us +=
                    resil_.backoff_us *
                    static_cast<double>(1 << (attempt - 1));
                if (resil_.checksum)
                  local.checksum_bytes +=
                      static_cast<std::int64_t>(payload_bytes);
                if (tampered) pack();  // retransmit the pristine payload
              }
            }
          }
          const SiteT* recv = buffer.data();
          // Unpack (our ghost plane), same traversal order as the pack.
          std::size_t k = 0;
          Coord x{};
          for (x[3] = 0; x[3] < l[3]; ++x[3])
            for (x[2] = 0; x[2] < l[2]; ++x[2])
              for (x[1] = 0; x[1] < l[1]; ++x[1])
                for (x[0] = 0; x[0] < l[0]; ++x[0]) {
                  if (x[mu] != 0) continue;
                  Coord dst = x;
                  dst[mu] = ghost_coord;
                  mine[static_cast<std::size_t>(halo_.ext_index(dst))] =
                      recv[k++];
                }
          local.messages += 1;
          local.bytes += static_cast<std::int64_t>(payload_bytes);
        }
      }
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.messages += local.messages;
      stats_.bytes += local.bytes;
      stats_.retransmits += local.retransmits;
      stats_.crc_failures += local.crc_failures;
      stats_.timeouts += local.timeouts;
      stats_.straggler_events += local.straggler_events;
      stats_.checksum_bytes += local.checksum_bytes;
      stats_.modeled_delay_us += local.modeled_delay_us;
    });
    stats_.exchanges += 1;
    if (telemetry::enabled()) {
      static telemetry::Counter& c_exchanges =
          telemetry::counter("comm.halo.exchanges");
      static telemetry::Counter& c_messages =
          telemetry::counter("comm.halo.messages");
      static telemetry::Counter& c_bytes =
          telemetry::counter("comm.halo.bytes");
      static telemetry::Counter& c_retransmits =
          telemetry::counter("comm.halo.retransmits");
      static telemetry::Counter& c_crc_failures =
          telemetry::counter("comm.halo.crc_failures");
      static telemetry::Counter& c_timeouts =
          telemetry::counter("comm.halo.timeouts");
      static telemetry::Counter& c_checksum_bytes =
          telemetry::counter("comm.halo.checksum_bytes");
      static telemetry::Counter& c_stragglers =
          telemetry::counter("comm.halo.straggler_events");
      c_exchanges.add(1);
      c_messages.add(stats_.messages - before.messages);
      c_bytes.add(stats_.bytes - before.bytes);
      c_retransmits.add(stats_.retransmits - before.retransmits);
      c_crc_failures.add(stats_.crc_failures - before.crc_failures);
      c_timeouts.add(stats_.timeouts - before.timeouts);
      c_checksum_bytes.add(stats_.checksum_bytes - before.checksum_bytes);
      c_stragglers.add(stats_.straggler_events - before.straggler_events);
    }
  }

  const LatticeGeometry* global_;
  ProcessGrid grid_;
  Coord local_dims_;
  HaloLattice halo_;
  std::vector<Coord> origins_;
  mutable CommStats stats_;
  mutable std::mutex stats_mutex_;
  ResilienceConfig resil_;
  FaultInjector* injector_ = nullptr;
};

/// Full Wilson operator evaluated through the virtual cluster. Implements
/// LinearOperator on *global* fields (scatter/exchange/compute/gather), so
/// any solver in the library runs "distributed" unchanged and must produce
/// identical iterates to the single-domain operator.
template <typename T>
class DistributedWilsonOperator final : public LinearOperator<T> {
 public:
  DistributedWilsonOperator(const GaugeField<T>& u, double kappa,
                            const ProcessGrid& grid,
                            TimeBoundary bc = TimeBoundary::Antiperiodic)
      : cluster_(u.geometry(), grid), kappa_(static_cast<T>(kappa)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    const GaugeField<T> links = make_fermion_links(u, bc);
    gauge_ = cluster_.scatter_gauge(links);
    in_ranks_ = cluster_.make_fermion();
    out_ranks_ = cluster_.make_fermion();
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    if (telemetry::enabled()) {
      static telemetry::Counter& c_applies =
          telemetry::counter("dslash.applies");
      static telemetry::Counter& c_sites =
          telemetry::counter("dslash.site_applies");
      c_applies.add(1);
      c_sites.add(cluster_.global_geometry().volume());
    }
    cluster_.scatter(in_ranks_, in);
    cluster_.exchange(in_ranks_);
    const HaloLattice& halo = cluster_.halo();
    const T k = kappa_;
    parallel_for(static_cast<std::size_t>(cluster_.ranks()),
                 [&](std::size_t r) {
      const auto& psi = in_ranks_[r];
      const auto& ug = gauge_[r];
      auto& res = out_ranks_[r];
      for (std::int64_t i = 0; i < halo.interior_volume(); ++i) {
        const Coord x = halo.interior_coords(i);
        const std::int64_t xe = halo.ext_index(x);
        WilsonSpinor<T> acc{};
        hop_dir<0>(acc, x, xe, psi, ug, halo);
        hop_dir<1>(acc, x, xe, psi, ug, halo);
        hop_dir<2>(acc, x, xe, psi, ug, halo);
        hop_dir<3>(acc, x, xe, psi, ug, halo);
        acc *= k;
        WilsonSpinor<T> v = psi[static_cast<std::size_t>(xe)];
        v -= acc;
        res[static_cast<std::size_t>(xe)] = v;
      }
    });
    cluster_.gather(out, out_ranks_);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return cluster_.global_geometry().volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return static_cast<double>(vector_size()) * (kDslashFlopsPerSite + 48.0);
  }
  [[nodiscard]] const VirtualCluster<T>& cluster() const { return cluster_; }
  /// Mutable access for attaching resilience config / fault injection.
  [[nodiscard]] VirtualCluster<T>& cluster() { return cluster_; }

 private:
  template <int Mu>
  void hop_dir(WilsonSpinor<T>& acc, const Coord& x, std::int64_t /*xe*/,
               const typename VirtualCluster<T>::RankFermion& psi,
               const typename VirtualCluster<T>::RankGauge& ug,
               const HaloLattice& halo) const {
    Coord xp = x;
    ++xp[Mu];
    Coord xm = x;
    --xm[Mu];
    const std::int64_t xpe = halo.ext_index(xp);
    const std::int64_t xme = halo.ext_index(xm);
    const std::int64_t xe0 = halo.ext_index(x);
    {
      const HalfSpinor<T> h =
          project<Mu, -1>(psi[static_cast<std::size_t>(xpe)]);
      const ColorMatrix<T>& u =
          ug[static_cast<std::size_t>(xe0)][static_cast<std::size_t>(Mu)];
      HalfSpinor<T> uh;
      uh.s[0] = mul(u, h.s[0]);
      uh.s[1] = mul(u, h.s[1]);
      accum_reconstruct<Mu, -1>(acc, uh);
    }
    {
      const HalfSpinor<T> h =
          project<Mu, +1>(psi[static_cast<std::size_t>(xme)]);
      const ColorMatrix<T>& u =
          ug[static_cast<std::size_t>(xme)][static_cast<std::size_t>(Mu)];
      HalfSpinor<T> uh;
      uh.s[0] = adj_mul(u, h.s[0]);
      uh.s[1] = adj_mul(u, h.s[1]);
      accum_reconstruct<Mu, +1>(acc, uh);
    }
  }

  VirtualCluster<T> cluster_;
  std::vector<typename VirtualCluster<T>::RankGauge> gauge_;
  mutable std::vector<typename VirtualCluster<T>::RankFermion> in_ranks_;
  mutable std::vector<typename VirtualCluster<T>::RankFermion> out_ranks_;
  T kappa_;
};

}  // namespace lqcd
