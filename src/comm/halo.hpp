#pragma once
// Virtual cluster: a functional multi-rank domain decomposition running
// inside one process.
//
// Each rank owns a local sub-lattice stored with a depth-1 ghost frame
// (the "halo"). The exchange is split-phase, the way a production dslash
// drives MPI, and since PR 9 it runs over the lqcd::transport frame
// layer: exchange_begin() packs every rank's boundary planes and posts
// them as tagged frames through that rank's in-process transport
// endpoint (push model: each rank sends its own faces); the fault
// injector and CRC framing act at the frame layer, exactly where the
// socket and shared-memory backends apply them. exchange_finish()
// receives, verifies, retransmits and unpacks into the ghost frames. The
// blocking exchange() is the composition of the two. Byte and message
// counts are recorded — payload bytes and bytes-on-the-wire separately —
// so the analytic network model can be cross-checked against the
// functional path, framing overhead included.
//
// DistributedWilsonOperator applies the full Wilson matrix through this
// machinery with communication/computation overlap: sites at least one
// step away from every local face ("interior" in the overlap sense) only
// read resident data, so they are computed between begin and finish; the
// remaining "surface" sites follow once the ghosts are filled. The result
// is bit-identical to the sequential schedule by construction — the
// per-site arithmetic is shared, only the order differs — and is
// validated bit-for-bit against the single-domain operator: the
// correctness anchor for every scaling claim in the bench harness.
//
// The SPMD sibling of this class — one rank per real process over the
// socket or shared-memory backend — is RankCluster in
// comm/transport/rank_halo.hpp; it shares the pack/unpack traversal and
// per-site arithmetic below, which is what makes the N-process runs
// bit-identical to this one.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/process_grid.hpp"
#include "comm/transport/transport.hpp"
#include "dirac/compressed.hpp"
#include "dirac/operator.hpp"
#include "dirac/wilson.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "linalg/gamma.hpp"
#include "parallel/thread_pool.hpp"
#include "util/aligned.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace lqcd {

/// Local sub-lattice with a depth-1 ghost frame. Extended coordinates run
/// -1 .. l[mu]; ext_index() offsets them into a dense array.
class HaloLattice {
 public:
  explicit HaloLattice(const Coord& local_dims);

  [[nodiscard]] const Coord& local_dims() const noexcept { return l_; }
  [[nodiscard]] std::int64_t interior_volume() const noexcept {
    return interior_vol_;
  }
  [[nodiscard]] std::int64_t extended_volume() const noexcept {
    return ext_vol_;
  }

  /// Dense index of an extended coordinate (components in [-1, l]).
  [[nodiscard]] std::int64_t ext_index(const Coord& x) const noexcept {
    return (x[0] + 1) +
           static_cast<std::int64_t>(e_[0]) *
               ((x[1] + 1) +
                static_cast<std::int64_t>(e_[1]) *
                    ((x[2] + 1) +
                     static_cast<std::int64_t>(e_[2]) * (x[3] + 1)));
  }

  /// Interior coordinate of the i-th interior site (lexicographic).
  [[nodiscard]] Coord interior_coords(std::int64_t i) const noexcept {
    Coord x{};
    x[0] = static_cast<int>(i % l_[0]);
    i /= l_[0];
    x[1] = static_cast<int>(i % l_[1]);
    i /= l_[1];
    x[2] = static_cast<int>(i % l_[2]);
    i /= l_[2];
    x[3] = static_cast<int>(i);
    return x;
  }

  /// Number of sites on the face orthogonal to mu.
  [[nodiscard]] std::int64_t face_volume(int mu) const noexcept {
    return interior_vol_ / l_[mu];
  }

  // --- overlap partition -------------------------------------------------
  // "Interior" here is the overlap sense (distinct from interior_volume(),
  // which counts all owned sites): a site whose full stencil is closed
  // over resident data, i.e. >= 1 away from every local face. "Surface"
  // sites touch at least one ghost. Both lists hold lexicographic site
  // indices (the argument interior_coords() accepts); they are disjoint
  // and together cover the local volume. With any extent == 2 the interior
  // is empty and every site is surface.

  /// Sites computable before the halo exchange completes.
  [[nodiscard]] std::span<const std::int64_t> interior_sites()
      const noexcept {
    return interior_all_;
  }
  /// Sites whose hops read ghost data; compute after exchange_finish().
  [[nodiscard]] std::span<const std::int64_t> surface_sites()
      const noexcept {
    return surface_all_;
  }
  /// Parity-filtered views; `parity` is the local checkerboard parity
  /// (x0+x1+x2+x3) mod 2 of the site's local coordinate.
  [[nodiscard]] std::span<const std::int64_t> interior_sites(
      int parity) const noexcept {
    return interior_par_[static_cast<std::size_t>(parity)];
  }
  [[nodiscard]] std::span<const std::int64_t> surface_sites(
      int parity) const noexcept {
    return surface_par_[static_cast<std::size_t>(parity)];
  }

 private:
  Coord l_;
  Coord e_;
  std::int64_t interior_vol_;
  std::int64_t ext_vol_;
  std::vector<std::int64_t> interior_all_;
  std::vector<std::int64_t> surface_all_;
  std::array<std::vector<std::int64_t>, 2> interior_par_;
  std::array<std::vector<std::int64_t>, 2> surface_par_;
};

/// Wire precision of fermion halo faces. kFull ships sites verbatim;
/// kHalf packs each spinor as int16 block float (one float scale + 24
/// quantized components, 52 bytes/site) using the detail16 quantizers.
/// The frame format, CRC protocol and fault injection are unchanged —
/// compression happens strictly inside the payload. Gauge (LinkSite)
/// exchanges always go full precision.
enum class HaloPrecision { kFull, kHalf };

[[nodiscard]] inline const char* to_string(HaloPrecision p) {
  return p == HaloPrecision::kHalf ? "half" : "full";
}

/// Communication counters accumulated by exchange operations.
struct CommStats {
  std::int64_t messages = 0;  ///< first-attempt sends
  std::int64_t bytes = 0;     ///< payload bytes of first-attempt sends
  std::int64_t exchanges = 0;
  /// Bytes actually framed onto the (modeled or real) wire: headers,
  /// payloads, retransmits, NACKs and drop markers. Self-wrap faces on
  /// extent-1 process dimensions never touch the wire and count zero —
  /// the payload-vs-wire split the α–β comparison was blind to before.
  std::int64_t wire_bytes = 0;
  std::int64_t wire_frames = 0;
  // Resilience counters (only move when checksums / faults are active).
  std::int64_t retransmits = 0;    ///< extra sends after a detected fault
  std::int64_t crc_failures = 0;   ///< corrupted payloads caught by CRC
  std::int64_t timeouts = 0;       ///< dropped messages detected
  std::int64_t straggler_events = 0;
  std::int64_t checksum_bytes = 0;  ///< bytes CRC-framed (sender side)
  /// Payload bytes a full-precision exchange would have shipped for the
  /// same faces — the denominator of the compression ratio. Equals
  /// `bytes` when every exchange ran at HaloPrecision::kFull.
  std::int64_t full_equiv_bytes = 0;
  /// Fermion faces sent as int16 block float (8 per rank per half-
  /// precision exchange, self-wrap faces included).
  std::int64_t compressed_frames = 0;
  /// Modeled resilience delay: straggler stalls plus retransmit backoff.
  /// Charged analytically (the in-process transport does not sleep) so
  /// the α–β network model can price the hardened path.
  double modeled_delay_us = 0.0;
  void reset() { *this = CommStats{}; }
};

namespace detail {

/// Pack the boundary plane of `field` orthogonal to mu at x[mu] =
/// src_coord into a byte payload (site-wise memcpy: one flat message
/// buffer regardless of site type). The fixed x3..x0 traversal is the
/// bit-identity anchor every backend shares: as long as pack and unpack
/// agree on it, ghost bytes are identical on the virtual, socket and shm
/// paths.
template <typename SiteT>
void pack_face(std::vector<std::byte>& out,
               const std::vector<SiteT, AlignedAllocator<SiteT>>& field,
               const HaloLattice& halo, int mu, int src_coord) {
  const Coord& l = halo.local_dims();
  out.resize(static_cast<std::size_t>(halo.face_volume(mu)) *
             sizeof(SiteT));
  std::size_t k = 0;
  Coord x{};
  for (x[3] = 0; x[3] < l[3]; ++x[3])
    for (x[2] = 0; x[2] < l[2]; ++x[2])
      for (x[1] = 0; x[1] < l[1]; ++x[1])
        for (x[0] = 0; x[0] < l[0]; ++x[0]) {
          if (x[mu] != 0) continue;  // iterate the face once
          Coord src = x;
          src[mu] = src_coord;
          std::memcpy(
              out.data() + k * sizeof(SiteT),
              &field[static_cast<std::size_t>(halo.ext_index(src))],
              sizeof(SiteT));
          ++k;
        }
}

/// Unpack a payload into the ghost plane at x[mu] = ghost_coord, same
/// traversal order as the pack.
template <typename SiteT>
void unpack_face(std::vector<SiteT, AlignedAllocator<SiteT>>& field,
                 std::span<const std::byte> payload, const HaloLattice& halo,
                 int mu, int ghost_coord) {
  const Coord& l = halo.local_dims();
  LQCD_REQUIRE(payload.size() ==
                   static_cast<std::size_t>(halo.face_volume(mu)) *
                       sizeof(SiteT),
               "halo unpack: face payload size mismatch");
  std::size_t k = 0;
  Coord x{};
  for (x[3] = 0; x[3] < l[3]; ++x[3])
    for (x[2] = 0; x[2] < l[2]; ++x[2])
      for (x[1] = 0; x[1] < l[1]; ++x[1])
        for (x[0] = 0; x[0] < l[0]; ++x[0]) {
          if (x[mu] != 0) continue;
          Coord dst = x;
          dst[mu] = ghost_coord;
          std::memcpy(&field[static_cast<std::size_t>(halo.ext_index(dst))],
                      payload.data() + k * sizeof(SiteT), sizeof(SiteT));
          ++k;
        }
}

// --- half-precision face codec -------------------------------------------
// Wire format per spinor site: one float scale (the site's |component|
// max, block-float style) followed by 24 little-endian int16 quantized
// components in the fixed (spin, color, re/im) order. 52 bytes/site
// regardless of T, so the wire format — and therefore the frame CRCs and
// the fault schedules keyed on them — is identical for float and double
// fields and across all transport backends.

inline constexpr std::size_t kHalfSiteBytes =
    sizeof(float) + 2 * Ns * Nc * sizeof(std::int16_t);  // 52

/// Quantize one spinor into `dst` (kHalfSiteBytes). The scale is the
/// amax rounded through float — encode and decode use the *same* float
/// value, so decode(encode(x)) is a pure function of the wire bytes. A
/// zero site (amax == 0, the Schur other-parity invariant) encodes to
/// all-zero bytes and decodes to exactly zero. Sites whose amax falls
/// below the float normal range flush to the same zero encoding: a
/// subnormal scale would overflow 1/scale for T = float (0 * inf = NaN
/// on zero components) and flushing identically for every T keeps the
/// wire bytes — and so the frame CRCs — T-independent.
template <typename T>
inline void encode_half_site(std::byte* dst, const WilsonSpinor<T>& psi) {
  constexpr int n = 2 * Ns * Nc;
  static_assert(sizeof(WilsonSpinor<T>) == n * sizeof(T),
                "wire codec assumes a spinor is n contiguous components");
  // Flat component view in the fixed (spin, color, re/im) wire order —
  // the spinor's own layout — so both loops below vectorize.
  T comp[n];
  std::memcpy(comp, &psi, sizeof(comp));
  T amax = T(0);
  for (int i = 0; i < n; ++i) amax = std::max(amax, std::fabs(comp[i]));
  float scale = static_cast<float>(amax);
  std::int16_t q[n] = {};
  if (scale >= std::numeric_limits<float>::min()) {
    const T inv = T(1) / static_cast<T>(scale);
    for (int i = 0; i < n; ++i)
      q[i] = detail16::quantize_one(comp[i], inv);
  } else {
    scale = 0.0f;
  }
  std::memcpy(dst, &scale, sizeof(float));
  std::memcpy(dst + sizeof(float), q, sizeof(q));
}

/// Dequantize one site from `src` (kHalfSiteBytes) into `out`.
template <typename T>
inline void decode_half_site(WilsonSpinor<T>& out, const std::byte* src) {
  constexpr int n = 2 * Ns * Nc;
  float scale = 0.0f;
  std::memcpy(&scale, src, sizeof(float));
  std::int16_t q[n];
  std::memcpy(q, src + sizeof(float), sizeof(q));
  const T s16 = static_cast<T>(scale);
  T comp[n];
  for (int i = 0; i < n; ++i)
    comp[i] = detail16::dequantize_one(q[i], s16);
  std::memcpy(&out, comp, sizeof(comp));
}

/// pack_face twin that emits int16 block-float sites — same fixed x3..x0
/// traversal, so compressed ghost bytes are identical on every backend.
template <typename T>
void pack_face_half(std::vector<std::byte>& out,
                    const aligned_vector<WilsonSpinor<T>>& field,
                    const HaloLattice& halo, int mu, int src_coord) {
  const Coord& l = halo.local_dims();
  out.resize(static_cast<std::size_t>(halo.face_volume(mu)) *
             kHalfSiteBytes);
  std::size_t k = 0;
  Coord x{};
  for (x[3] = 0; x[3] < l[3]; ++x[3])
    for (x[2] = 0; x[2] < l[2]; ++x[2])
      for (x[1] = 0; x[1] < l[1]; ++x[1])
        for (x[0] = 0; x[0] < l[0]; ++x[0]) {
          if (x[mu] != 0) continue;
          Coord src = x;
          src[mu] = src_coord;
          encode_half_site(
              out.data() + k * kHalfSiteBytes,
              field[static_cast<std::size_t>(halo.ext_index(src))]);
          ++k;
        }
}

/// unpack_face twin for compressed payloads: dequantizes straight into
/// the ghost plane, so the compute kernels never see the wire format.
template <typename T>
void unpack_face_half(aligned_vector<WilsonSpinor<T>>& field,
                      std::span<const std::byte> payload,
                      const HaloLattice& halo, int mu, int ghost_coord) {
  const Coord& l = halo.local_dims();
  LQCD_REQUIRE(payload.size() ==
                   static_cast<std::size_t>(halo.face_volume(mu)) *
                       kHalfSiteBytes,
               "halo unpack: compressed face payload size mismatch");
  std::size_t k = 0;
  Coord x{};
  for (x[3] = 0; x[3] < l[3]; ++x[3])
    for (x[2] = 0; x[2] < l[2]; ++x[2])
      for (x[1] = 0; x[1] < l[1]; ++x[1])
        for (x[0] = 0; x[0] < l[0]; ++x[0]) {
          if (x[mu] != 0) continue;
          Coord dst = x;
          dst[mu] = ghost_coord;
          decode_half_site(
              field[static_cast<std::size_t>(halo.ext_index(dst))],
              payload.data() + k * kHalfSiteBytes);
          ++k;
        }
}

/// Only fermion faces compress; gauge (LinkSite) setup exchanges always
/// ship full precision regardless of the knob.
template <typename SiteT>
inline constexpr bool is_spinor_site_v = false;
template <typename T>
inline constexpr bool is_spinor_site_v<WilsonSpinor<T>> = true;

/// Precision-dispatching pack: kHalf compresses spinor faces, everything
/// else falls through to the verbatim packer.
template <typename SiteT>
void pack_face_prec(std::vector<std::byte>& out,
                    const std::vector<SiteT, AlignedAllocator<SiteT>>& field,
                    const HaloLattice& halo, int mu, int src_coord,
                    HaloPrecision prec) {
  if constexpr (is_spinor_site_v<SiteT>) {
    if (prec == HaloPrecision::kHalf) {
      pack_face_half(out, field, halo, mu, src_coord);
      return;
    }
  }
  (void)prec;
  pack_face(out, field, halo, mu, src_coord);
}

template <typename SiteT>
void unpack_face_prec(std::vector<SiteT, AlignedAllocator<SiteT>>& field,
                      std::span<const std::byte> payload,
                      const HaloLattice& halo, int mu, int ghost_coord,
                      HaloPrecision prec) {
  if constexpr (is_spinor_site_v<SiteT>) {
    if (prec == HaloPrecision::kHalf) {
      unpack_face_half(field, payload, halo, mu, ghost_coord);
      return;
    }
  }
  (void)prec;
  unpack_face(field, payload, halo, mu, ghost_coord);
}

/// Payload bytes one rank's 8 faces occupy at the given precision.
template <typename SiteT>
[[nodiscard]] inline std::int64_t face_payload_bytes(const HaloLattice& halo,
                                                     HaloPrecision prec) {
  std::size_t site_bytes = sizeof(SiteT);
  if constexpr (is_spinor_site_v<SiteT>) {
    if (prec == HaloPrecision::kHalf) site_bytes = kHalfSiteBytes;
  }
  std::int64_t total = 0;
  for (int mu = 0; mu < Nd; ++mu)
    total += 2 * halo.face_volume(mu) *
             static_cast<std::int64_t>(site_bytes);
  return total;
}

/// Fold one endpoint's wire-counter delta into CommStats.
inline void merge_wire_delta(CommStats& dst, const transport::WireStats& now,
                             transport::WireStats& base) {
  dst.messages += now.frames - base.frames;
  dst.bytes += now.payload_bytes - base.payload_bytes;
  dst.wire_frames += now.wire_frames - base.wire_frames;
  dst.wire_bytes += now.wire_bytes - base.wire_bytes;
  dst.retransmits += now.retransmits - base.retransmits;
  dst.crc_failures += now.crc_failures - base.crc_failures;
  dst.timeouts += now.timeouts - base.timeouts;
  dst.checksum_bytes += now.checksum_bytes - base.checksum_bytes;
  dst.modeled_delay_us += now.modeled_delay_us - base.modeled_delay_us;
  base = now;
}

}  // namespace detail

/// A lattice decomposed over a virtual process grid, with resident
/// per-rank fermion and gauge storage. All ranks live in this process;
/// their endpoints share one in-process transport hub.
template <typename T>
class VirtualCluster {
 public:
  VirtualCluster(const LatticeGeometry& global, const ProcessGrid& grid)
      : global_(&global),
        grid_(grid),
        local_dims_(grid.local_dims(global.dims())),
        halo_(local_dims_),
        eps_(transport::make_inprocess_group(grid.size())),
        wire_base_(static_cast<std::size_t>(grid.size())) {
    origins_.resize(static_cast<std::size_t>(grid_.size()));
    for (int r = 0; r < grid_.size(); ++r) {
      const Coord rc = grid_.coords_of(r);
      for (int mu = 0; mu < Nd; ++mu)
        origins_[static_cast<std::size_t>(r)][mu] =
            rc[mu] * local_dims_[mu];
    }
  }

  [[nodiscard]] const LatticeGeometry& global_geometry() const {
    return *global_;
  }
  [[nodiscard]] const ProcessGrid& grid() const { return grid_; }
  [[nodiscard]] const HaloLattice& halo() const { return halo_; }
  [[nodiscard]] int ranks() const { return grid_.size(); }
  [[nodiscard]] const Coord& origin(int rank) const {
    return origins_[static_cast<std::size_t>(rank)];
  }
  /// Checkerboard parity of rank's origin: a rank-local site's global
  /// parity is its local parity XOR this.
  [[nodiscard]] int origin_parity(int rank) const {
    const Coord& o = origins_[static_cast<std::size_t>(rank)];
    return static_cast<int>((o[0] + o[1] + o[2] + o[3]) & 1);
  }
  [[nodiscard]] CommStats& stats() const { return stats_; }

  /// Enable/disable the hardened transport (CRC framing + retransmit).
  void set_resilience(const ResilienceConfig& rc) {
    resil_ = rc;
    for (auto& ep : eps_) ep->set_resilience(rc);
  }
  [[nodiscard]] const ResilienceConfig& resilience() const { return resil_; }
  /// Attach a fault injector (not owned; nullptr detaches). The injector
  /// perturbs frames in transit; with checksums enabled the exchange
  /// detects and retransmits, without them corruption flows through
  /// silently — exactly the trade bench_resilience quantifies.
  void set_fault_injector(FaultInjector* fi) {
    injector_ = fi;
    for (auto& ep : eps_) ep->set_fault_injector(fi);
  }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Emulate a shared wire of the given bandwidth (bytes/second): each
  /// exchange sleeps for its wire-byte total at that rate, on top of
  /// the in-process copy cost. The in-process hub moves frames at
  /// memcpy speed, which hides every bandwidth effect the α–β model
  /// (and a real NIC) charges for — with emulation on, wall-clock
  /// exchange time becomes a function of bytes actually framed, so
  /// wire-precision and payload changes are measurable. The slept time
  /// is also charged to CommStats::modeled_delay_us. 0 disables
  /// (default, and the only mode the bit-identity tests run in).
  void set_wire_emulation(double bytes_per_second) {
    wire_emulation_bps_ = bytes_per_second;
  }
  [[nodiscard]] double wire_emulation() const { return wire_emulation_bps_; }

  /// Wire precision for fermion halo faces (gauge faces are always
  /// full). Takes effect at the next exchange_begin(); an in-flight
  /// exchange keeps the precision it was begun with.
  void set_halo_precision(HaloPrecision p) {
    LQCD_REQUIRE(pending_.phase == ExchangePhase::kIdle,
                 "set_halo_precision: exchange in flight");
    halo_precision_ = p;
  }
  [[nodiscard]] HaloPrecision halo_precision() const {
    return halo_precision_;
  }

  /// Per-rank fermion storage on the extended (haloed) volume.
  using RankFermion = aligned_vector<WilsonSpinor<T>>;
  /// Per-rank gauge storage on the extended volume.
  using RankGauge = aligned_vector<LinkSite<T>>;

  [[nodiscard]] std::vector<RankFermion> make_fermion() const {
    return std::vector<RankFermion>(
        static_cast<std::size_t>(ranks()),
        RankFermion(static_cast<std::size_t>(halo_.extended_volume())));
  }

  /// Distribute a global checkerboard-layout fermion field.
  void scatter(std::vector<RankFermion>& dst,
               std::span<const WilsonSpinor<T>> src) const {
    LQCD_REQUIRE(src.size() == static_cast<std::size_t>(global_->volume()),
                 "scatter: global field size");
    for_each_rank([&](int r) {
      RankFermion& loc = dst[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        loc[static_cast<std::size_t>(halo_.ext_index(xl))] =
            src[static_cast<std::size_t>(global_->cb_index(
                global_coords(r, xl)))];
      }
    });
  }

  /// Collect rank-local interiors back into a global field.
  void gather(std::span<WilsonSpinor<T>> dst,
              const std::vector<RankFermion>& src) const {
    LQCD_REQUIRE(dst.size() == static_cast<std::size_t>(global_->volume()),
                 "gather: global field size");
    for_each_rank([&](int r) {
      const RankFermion& loc = src[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        dst[static_cast<std::size_t>(
            global_->cb_index(global_coords(r, xl)))] =
            loc[static_cast<std::size_t>(halo_.ext_index(xl))];
      }
    });
  }

  /// Distribute one checkerboard block of a global field (half volume,
  /// cb layout: index 0 of block `parity` is that parity's first site)
  /// into the matching rank-local sites. Sites of the other parity keep
  /// their current values — callers reuse zero-initialized rank storage
  /// so those stay deterministically zero.
  void scatter_parity(std::vector<RankFermion>& dst,
                      std::span<const WilsonSpinor<T>> src,
                      int parity) const {
    const std::int64_t hv = global_->half_volume();
    LQCD_REQUIRE(src.size() == static_cast<std::size_t>(hv),
                 "scatter_parity: half-volume field size");
    const std::int64_t base = parity == 0 ? 0 : hv;
    for_each_rank([&](int r) {
      RankFermion& loc = dst[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        const std::int64_t cb = global_->cb_index(global_coords(r, xl));
        if ((cb >= hv ? 1 : 0) != parity) continue;
        loc[static_cast<std::size_t>(halo_.ext_index(xl))] =
            src[static_cast<std::size_t>(cb - base)];
      }
    });
  }

  /// Collect one parity's rank-local sites into a half-volume cb block.
  void gather_parity(std::span<WilsonSpinor<T>> dst,
                     const std::vector<RankFermion>& src,
                     int parity) const {
    const std::int64_t hv = global_->half_volume();
    LQCD_REQUIRE(dst.size() == static_cast<std::size_t>(hv),
                 "gather_parity: half-volume field size");
    const std::int64_t base = parity == 0 ? 0 : hv;
    for_each_rank([&](int r) {
      const RankFermion& loc = src[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        const std::int64_t cb = global_->cb_index(global_coords(r, xl));
        if ((cb >= hv ? 1 : 0) != parity) continue;
        dst[static_cast<std::size_t>(cb - base)] =
            loc[static_cast<std::size_t>(halo_.ext_index(xl))];
      }
    });
  }

  /// Distribute a gauge field and fill its ghost links (one-time setup
  /// exchange, as a production code does after loading a configuration).
  [[nodiscard]] std::vector<RankGauge> scatter_gauge(
      const GaugeField<T>& u) const {
    std::vector<RankGauge> out(
        static_cast<std::size_t>(ranks()),
        RankGauge(static_cast<std::size_t>(halo_.extended_volume())));
    for_each_rank([&](int r) {
      RankGauge& loc = out[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < halo_.interior_volume(); ++i) {
        const Coord xl = halo_.interior_coords(i);
        loc[static_cast<std::size_t>(halo_.ext_index(xl))] =
            u.site(global_->cb_index(global_coords(r, xl)));
      }
    });
    exchange_gauge(out);
    return out;
  }

  /// Blocking halo exchange for a fermion field: the composition of
  /// exchange_begin() and exchange_finish().
  void exchange(std::vector<RankFermion>& f) const {
    begin_impl<WilsonSpinor<T>>(f, /*split=*/false);
    finish_impl<WilsonSpinor<T>>(f);
  }

  /// Phase 1 of the split exchange: every rank packs its 8 boundary
  /// planes and posts them as tagged frames through its transport
  /// endpoint (fault injection and CRC framing act per frame). After
  /// this call the boundary planes of `f` may not be modified until
  /// exchange_finish(). Interior (overlap-partition) sites are free to
  /// be read and written.
  void exchange_begin(std::vector<RankFermion>& f) const {
    begin_impl<WilsonSpinor<T>>(f, /*split=*/true);
  }

  /// Phase 2: receive, verify, retransmit on detected faults, and unpack
  /// into the ghost frames. Must follow an exchange_begin() on the same
  /// field.
  void exchange_finish(std::vector<RankFermion>& f) const {
    finish_impl<WilsonSpinor<T>>(f);
  }

  /// True between exchange_begin() and exchange_finish().
  [[nodiscard]] bool exchange_in_flight() const noexcept {
    return pending_.phase == ExchangePhase::kBegun;
  }

  /// Halo exchange for gauge ghosts.
  void exchange_gauge(std::vector<RankGauge>& g) const {
    begin_impl<LinkSite<T>>(g, /*split=*/false);
    finish_impl<LinkSite<T>>(g);
  }

  /// Global coordinate of rank-local coordinate xl (periodic wrap).
  [[nodiscard]] Coord global_coords(int rank, const Coord& xl) const {
    Coord xg{};
    const Coord& o = origins_[static_cast<std::size_t>(rank)];
    for (int mu = 0; mu < Nd; ++mu)
      xg[mu] = (o[mu] + xl[mu] + global_->dim(mu)) % global_->dim(mu);
    return xg;
  }

 private:
  template <typename F>
  void for_each_rank(F&& body) const {
    parallel_for(static_cast<std::size_t>(ranks()),
                 [&](std::size_t r) { body(static_cast<int>(r)); });
  }

  enum class ExchangePhase { kIdle, kBegun };

  /// Split-exchange bookkeeping. Written only outside the parallel
  /// regions.
  struct PendingExchange {
    ExchangePhase phase = ExchangePhase::kIdle;
    const void* field = nullptr;  ///< identity guard for finish()
    std::size_t site_bytes = 0;   ///< site-type guard for finish()
    std::uint64_t epoch = 0;
    bool split = false;  ///< driven via the public begin/finish pair
    /// Wire precision this exchange was begun with; finish must unpack
    /// with the same codec even if the knob moves in between.
    HaloPrecision precision = HaloPrecision::kFull;
    CommStats before;  ///< telemetry delta base, snapshot at begin
  };

  void merge_stats(const CommStats& local) const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.straggler_events += local.straggler_events;
    stats_.modeled_delay_us += local.modeled_delay_us;
  }

  /// Fold every endpoint's wire-counter delta into stats_. Called after
  /// the parallel region joins (success and abort paths), so the counters
  /// survive a thrown exchange and the next delta starts clean.
  void harvest_wire() const {
    for (int r = 0; r < ranks(); ++r)
      detail::merge_wire_delta(
          stats_, eps_[static_cast<std::size_t>(r)]->wire_stats(),
          wire_base_[static_cast<std::size_t>(r)]);
  }

  /// Discard undelivered frames after an aborted exchange: the epoch
  /// (and so every tag) is reused on retry, and stale frames must not
  /// satisfy the retried receives.
  void drain_all() const {
    for (auto& ep : eps_) ep->drain();
  }

  /// Drop the in-flight state.
  void reset_pending() const {
    pending_.phase = ExchangePhase::kIdle;
    pending_.field = nullptr;
    pending_.site_bytes = 0;
    pending_.split = false;
  }

  // Push model over the transport frame layer: every rank sends its own
  // boundary plane (mu, dir-facing) to the neighbor whose (mu, dir)
  // ghost it fills, tagged (epoch, mu, dir). The injector keys on the
  // RECEIVER's rank decoded from the tag, so the schedule is identical
  // to the historical pull formulation — and to the socket/shm backends,
  // which run this exact frame path over a real wire. begin posts
  // attempt 0 of every frame; finish runs the verify/retransmit protocol
  // (in the transport base class) and unpacks.

  template <typename SiteT>
  void begin_impl(std::vector<std::vector<SiteT, AlignedAllocator<SiteT>>>&
                      field,
                  bool split) const {
    LQCD_REQUIRE(pending_.phase == ExchangePhase::kIdle,
                 "halo exchange_begin: an exchange is already in flight "
                 "(double begin)");
    pending_.phase = ExchangePhase::kBegun;
    pending_.field = &field;
    pending_.site_bytes = sizeof(SiteT);
    pending_.epoch = static_cast<std::uint64_t>(stats_.exchanges);
    pending_.split = split;
    pending_.precision = halo_precision_;
    pending_.before = stats_;
    const std::uint64_t epoch = pending_.epoch;
    const HaloPrecision prec = pending_.precision;
    try {
      for_each_rank([&](int r) {
        CommStats local;  // straggle tally, merged once under the lock
        if (injector_ != nullptr) {
          if (injector_->should_kill(epoch, r)) {
            injector_->record_kill();
            throw TransientError("halo exchange: rank " +
                                 std::to_string(r) + " died at epoch " +
                                 std::to_string(epoch));
          }
          const double stall = injector_->straggle_us(epoch, r);
          if (stall > 0.0) {
            local.straggler_events += 1;
            local.modeled_delay_us += stall;
          }
        }
        transport::Transport& tp = *eps_[static_cast<std::size_t>(r)];
        std::vector<std::byte> buf;
        for (int mu = 0; mu < Nd; ++mu) {
          for (int dir = -1; dir <= 1; dir += 2) {
            // Our plane at x[mu] = 0 (dir=+1) or l-1 (dir=-1) fills the
            // (mu, dir) ghost of the rank one step the *other* way.
            const int dst = grid_.neighbor(r, mu, -dir);
            const int src_coord = dir > 0 ? 0 : local_dims_[mu] - 1;
            detail::pack_face_prec(buf, field[static_cast<std::size_t>(r)],
                                   halo_, mu, src_coord, prec);
            tp.send(dst, transport::make_halo_tag(epoch, mu, dir), buf);
          }
        }
        merge_stats(local);
      });
    } catch (...) {
      drain_all();  // stale frames must not serve the retried epoch
      harvest_wire();
      reset_pending();
      throw;
    }
    harvest_wire();
  }

  template <typename SiteT>
  void finish_impl(std::vector<std::vector<SiteT, AlignedAllocator<SiteT>>>&
                       field) const {
    LQCD_REQUIRE(pending_.phase == ExchangePhase::kBegun,
                 "halo exchange_finish without a matching exchange_begin");
    LQCD_REQUIRE(pending_.field == static_cast<const void*>(&field),
                 "halo exchange_finish: field does not match "
                 "exchange_begin");
    LQCD_REQUIRE(pending_.site_bytes == sizeof(SiteT),
                 "halo exchange_finish: site type does not match "
                 "exchange_begin");
    const Coord& l = local_dims_;
    const std::uint64_t epoch = pending_.epoch;
    const HaloPrecision prec = pending_.precision;
    try {
      for_each_rank([&](int r) {
        transport::Transport& tp = *eps_[static_cast<std::size_t>(r)];
        std::vector<std::byte> buf;
        for (int mu = 0; mu < Nd; ++mu) {
          for (int dir = -1; dir <= 1; dir += 2) {
            const int src = grid_.neighbor(r, mu, dir);
            tp.recv(src, transport::make_halo_tag(epoch, mu, dir), buf);
            const int ghost_coord = dir > 0 ? l[mu] : -1;
            detail::unpack_face_prec(field[static_cast<std::size_t>(r)],
                                     buf, halo_, mu, ghost_coord, prec);
          }
        }
      });
    } catch (...) {
      drain_all();
      harvest_wire();
      reset_pending();
      throw;
    }
    harvest_wire();
    const CommStats before = pending_.before;
    const bool split = pending_.split;
    reset_pending();
    stats_.exchanges += 1;
    stats_.full_equiv_bytes +=
        ranks() * detail::face_payload_bytes<SiteT>(halo_,
                                                    HaloPrecision::kFull);
    if constexpr (detail::is_spinor_site_v<SiteT>) {
      if (prec == HaloPrecision::kHalf)
        stats_.compressed_frames += ranks() * 2 * Nd;
    }
    if (wire_emulation_bps_ > 0.0) {
      const double us =
          static_cast<double>(stats_.wire_bytes - before.wire_bytes) /
          wire_emulation_bps_ * 1e6;
      stats_.modeled_delay_us += us;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(us));
    }
    if (telemetry::enabled()) {
      static telemetry::Counter& c_exchanges =
          telemetry::counter("comm.halo.exchanges");
      static telemetry::Counter& c_messages =
          telemetry::counter("comm.halo.messages");
      static telemetry::Counter& c_bytes =
          telemetry::counter("comm.halo.bytes");
      static telemetry::Counter& c_wire_bytes =
          telemetry::counter("comm.halo.wire_bytes");
      static telemetry::Counter& c_wire_frames =
          telemetry::counter("comm.halo.wire_frames");
      static telemetry::Counter& c_retransmits =
          telemetry::counter("comm.halo.retransmits");
      static telemetry::Counter& c_crc_failures =
          telemetry::counter("comm.halo.crc_failures");
      static telemetry::Counter& c_timeouts =
          telemetry::counter("comm.halo.timeouts");
      static telemetry::Counter& c_checksum_bytes =
          telemetry::counter("comm.halo.checksum_bytes");
      static telemetry::Counter& c_stragglers =
          telemetry::counter("comm.halo.straggler_events");
      static telemetry::Counter& c_split =
          telemetry::counter("comm.halo.overlap.split_exchanges");
      static telemetry::Counter& c_full_equiv =
          telemetry::counter("comm.halo.full_equiv_bytes");
      static telemetry::Counter& c_compressed =
          telemetry::counter("comm.halo.compressed_frames");
      c_exchanges.add(1);
      c_messages.add(stats_.messages - before.messages);
      c_bytes.add(stats_.bytes - before.bytes);
      c_wire_bytes.add(stats_.wire_bytes - before.wire_bytes);
      c_wire_frames.add(stats_.wire_frames - before.wire_frames);
      c_retransmits.add(stats_.retransmits - before.retransmits);
      c_crc_failures.add(stats_.crc_failures - before.crc_failures);
      c_timeouts.add(stats_.timeouts - before.timeouts);
      c_checksum_bytes.add(stats_.checksum_bytes - before.checksum_bytes);
      c_stragglers.add(stats_.straggler_events - before.straggler_events);
      c_full_equiv.add(stats_.full_equiv_bytes - before.full_equiv_bytes);
      c_compressed.add(stats_.compressed_frames -
                       before.compressed_frames);
      if (split) c_split.add(1);
    }
  }

  const LatticeGeometry* global_;
  ProcessGrid grid_;
  Coord local_dims_;
  HaloLattice halo_;
  std::vector<Coord> origins_;
  mutable std::vector<std::unique_ptr<transport::Transport>> eps_;
  mutable std::vector<transport::WireStats> wire_base_;
  mutable CommStats stats_;
  mutable std::mutex stats_mutex_;
  mutable PendingExchange pending_;
  ResilienceConfig resil_;
  FaultInjector* injector_ = nullptr;
  HaloPrecision halo_precision_ = HaloPrecision::kFull;
  double wire_emulation_bps_ = 0.0;
};

namespace detail {

/// One direction of the Wilson hopping term on a haloed rank-local field:
/// forward (project -1, U(x) hop from x+mu) then backward (project +1,
/// U†(x-mu) hop from x-mu), accumulated into acc. Shared by the full and
/// the even-odd distributed operators so both stay bit-identical to their
/// single-domain counterparts.
template <int Mu, typename T>
inline void dist_accum_hop(WilsonSpinor<T>& acc, const Coord& x,
                           const aligned_vector<WilsonSpinor<T>>& psi,
                           const aligned_vector<LinkSite<T>>& ug,
                           const HaloLattice& halo) {
  Coord xp = x;
  ++xp[Mu];
  Coord xm = x;
  --xm[Mu];
  const std::int64_t xpe = halo.ext_index(xp);
  const std::int64_t xme = halo.ext_index(xm);
  const std::int64_t xe0 = halo.ext_index(x);
  {
    const HalfSpinor<T> h =
        project<Mu, -1>(psi[static_cast<std::size_t>(xpe)]);
    const ColorMatrix<T>& u =
        ug[static_cast<std::size_t>(xe0)][static_cast<std::size_t>(Mu)];
    HalfSpinor<T> uh;
    uh.s[0] = mul(u, h.s[0]);
    uh.s[1] = mul(u, h.s[1]);
    accum_reconstruct<Mu, -1>(acc, uh);
  }
  {
    const HalfSpinor<T> h =
        project<Mu, +1>(psi[static_cast<std::size_t>(xme)]);
    const ColorMatrix<T>& u =
        ug[static_cast<std::size_t>(xme)][static_cast<std::size_t>(Mu)];
    HalfSpinor<T> uh;
    uh.s[0] = adj_mul(u, h.s[0]);
    uh.s[1] = adj_mul(u, h.s[1]);
    accum_reconstruct<Mu, +1>(acc, uh);
  }
}

/// Full 8-point hop sum D psi at local coordinate x (kappa not applied).
template <typename T>
[[nodiscard]] inline WilsonSpinor<T> dist_hop_site(
    const Coord& x, const aligned_vector<WilsonSpinor<T>>& psi,
    const aligned_vector<LinkSite<T>>& ug, const HaloLattice& halo) {
  WilsonSpinor<T> acc{};
  dist_accum_hop<0>(acc, x, psi, ug, halo);
  dist_accum_hop<1>(acc, x, psi, ug, halo);
  dist_accum_hop<2>(acc, x, psi, ug, halo);
  dist_accum_hop<3>(acc, x, psi, ug, halo);
  return acc;
}

}  // namespace detail

/// Measured wall-clock decomposition of overlapped applies, accumulated
/// across calls. Phase times are real (the rank loop runs through the
/// thread pool inside each phase); t_hidden_s() is the comm time a
/// machine with asynchronous progress would hide behind the interior
/// window — the quantity model_dslash prices as `hidden`.
struct OverlapStats {
  std::int64_t applies = 0;
  std::int64_t interior_sites = 0;  ///< summed over ranks and applies
  std::int64_t surface_sites = 0;
  double t_begin_s = 0.0;     ///< pack + post (comm send side)
  double t_interior_s = 0.0;  ///< interior compute (overlap window)
  double t_finish_s = 0.0;    ///< verify + retransmit + unpack
  double t_surface_s = 0.0;   ///< surface compute
  [[nodiscard]] double t_comm_s() const { return t_begin_s + t_finish_s; }
  [[nodiscard]] double t_compute_s() const {
    return t_interior_s + t_surface_s;
  }
  /// Serial sum: what the un-overlapped schedule would cost.
  [[nodiscard]] double t_sequential_s() const {
    return t_comm_s() + t_compute_s();
  }
  [[nodiscard]] double t_hidden_s() const {
    return std::min(t_comm_s(), t_interior_s);
  }
  /// Overlap-adjusted total, comparable to model_dslash's t_total.
  [[nodiscard]] double t_overlapped_s() const {
    return t_sequential_s() - t_hidden_s();
  }
  /// Fraction of comm time hidden behind the interior window.
  [[nodiscard]] double hidden_fraction() const {
    return t_comm_s() > 0.0 ? t_hidden_s() / t_comm_s() : 0.0;
  }
  void reset() { *this = OverlapStats{}; }
};

/// Full Wilson operator evaluated through the virtual cluster. Implements
/// LinearOperator on *global* fields (scatter/exchange/compute/gather), so
/// any solver in the library runs "distributed" unchanged and must produce
/// identical iterates to the single-domain operator. By default the halo
/// exchange is split-phase and overlapped with the interior compute;
/// set_overlap(false) restores the sequential schedule (same bits).
template <typename T>
class DistributedWilsonOperator final : public LinearOperator<T> {
 public:
  DistributedWilsonOperator(const GaugeField<T>& u, double kappa,
                            const ProcessGrid& grid,
                            TimeBoundary bc = TimeBoundary::Antiperiodic)
      : cluster_(u.geometry(), grid), kappa_(static_cast<T>(kappa)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    const GaugeField<T> links = make_fermion_links(u, bc);
    gauge_ = cluster_.scatter_gauge(links);
    in_ranks_ = cluster_.make_fermion();
    out_ranks_ = cluster_.make_fermion();
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    if (telemetry::enabled()) {
      static telemetry::Counter& c_applies =
          telemetry::counter("dslash.applies");
      static telemetry::Counter& c_sites =
          telemetry::counter("dslash.site_applies");
      c_applies.add(1);
      c_sites.add(cluster_.global_geometry().volume());
    }
    cluster_.scatter(in_ranks_, in);
    if (overlap_)
      apply_overlapped();
    else
      apply_blocking();
    cluster_.gather(out, out_ranks_);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return cluster_.global_geometry().volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return static_cast<double>(vector_size()) * (kDslashFlopsPerSite + 48.0);
  }
  [[nodiscard]] const VirtualCluster<T>& cluster() const { return cluster_; }
  /// Mutable access for attaching resilience config / fault injection.
  [[nodiscard]] VirtualCluster<T>& cluster() { return cluster_; }

  /// Wire precision of the fermion halo (the gauge ghosts filled at
  /// construction stay full precision). kHalf quantizes ghost planes to
  /// int16 block float, so results are no longer bit-identical to the
  /// single-domain operator — the trade bench_precision quantifies.
  void set_halo_precision(HaloPrecision p) {
    cluster_.set_halo_precision(p);
  }
  [[nodiscard]] HaloPrecision halo_precision() const {
    return cluster_.halo_precision();
  }

  /// Toggle the split-phase overlapped schedule (default on). Both
  /// schedules run the same per-site arithmetic, so results are
  /// bit-identical; only wall-clock structure differs.
  void set_overlap(bool on) { overlap_ = on; }
  [[nodiscard]] bool overlap() const { return overlap_; }
  [[nodiscard]] const OverlapStats& overlap_stats() const { return ov_; }
  void reset_overlap_stats() { ov_.reset(); }

 private:
  void apply_blocking() const {
    cluster_.exchange(in_ranks_);
    const HaloLattice& halo = cluster_.halo();
    const T k = kappa_;
    parallel_for(static_cast<std::size_t>(cluster_.ranks()),
                 [&](std::size_t r) {
      const auto& psi = in_ranks_[r];
      const auto& ug = gauge_[r];
      auto& res = out_ranks_[r];
      for (std::int64_t i = 0; i < halo.interior_volume(); ++i) {
        const Coord x = halo.interior_coords(i);
        const std::int64_t xe = halo.ext_index(x);
        WilsonSpinor<T> acc = detail::dist_hop_site(x, psi, ug, halo);
        acc *= k;
        WilsonSpinor<T> v = psi[static_cast<std::size_t>(xe)];
        v -= acc;
        res[static_cast<std::size_t>(xe)] = v;
      }
    });
  }

  void apply_overlapped() const {
    const HaloLattice& halo = cluster_.halo();
    WallTimer t;
    cluster_.exchange_begin(in_ranks_);
    ov_.t_begin_s += t.seconds();
    t.start();
    compute_sites(halo.interior_sites());
    ov_.t_interior_s += t.seconds();
    t.start();
    cluster_.exchange_finish(in_ranks_);
    ov_.t_finish_s += t.seconds();
    t.start();
    compute_sites(halo.surface_sites());
    ov_.t_surface_s += t.seconds();
    const std::int64_t nr = cluster_.ranks();
    const std::int64_t n_int =
        static_cast<std::int64_t>(halo.interior_sites().size());
    const std::int64_t n_surf =
        static_cast<std::int64_t>(halo.surface_sites().size());
    ov_.applies += 1;
    ov_.interior_sites += nr * n_int;
    ov_.surface_sites += nr * n_surf;
    if (telemetry::enabled()) {
      static telemetry::Counter& c_applies =
          telemetry::counter("comm.halo.overlap.applies");
      static telemetry::Counter& c_int =
          telemetry::counter("comm.halo.overlap.interior_sites");
      static telemetry::Counter& c_surf =
          telemetry::counter("comm.halo.overlap.surface_sites");
      c_applies.add(1);
      c_int.add(nr * n_int);
      c_surf.add(nr * n_surf);
    }
  }

  void compute_sites(std::span<const std::int64_t> sites) const {
    const HaloLattice& halo = cluster_.halo();
    const T k = kappa_;
    parallel_for(static_cast<std::size_t>(cluster_.ranks()),
                 [&](std::size_t r) {
      const auto& psi = in_ranks_[r];
      const auto& ug = gauge_[r];
      auto& res = out_ranks_[r];
      for (const std::int64_t i : sites) {
        const Coord x = halo.interior_coords(i);
        const std::int64_t xe = halo.ext_index(x);
        WilsonSpinor<T> acc = detail::dist_hop_site(x, psi, ug, halo);
        acc *= k;
        WilsonSpinor<T> v = psi[static_cast<std::size_t>(xe)];
        v -= acc;
        res[static_cast<std::size_t>(xe)] = v;
      }
    });
  }

  VirtualCluster<T> cluster_;
  std::vector<typename VirtualCluster<T>::RankGauge> gauge_;
  mutable std::vector<typename VirtualCluster<T>::RankFermion> in_ranks_;
  mutable std::vector<typename VirtualCluster<T>::RankFermion> out_ranks_;
  T kappa_;
  bool overlap_ = true;
  mutable OverlapStats ov_;
};

}  // namespace lqcd
