#pragma once
// Two-flavor dynamical Wilson fermion HMC.
//
// The fermion determinant det(M^† M) (two degenerate flavors) enters via a
// pseudofermion field phi with action
//
//   S_pf = phi^† (M^† M)^{-1} phi,     M = 1 - kappa D,
//
// refreshed at the start of each trajectory as phi = M^† eta with Gaussian
// eta (so S_pf = eta^† eta exactly). The molecular-dynamics force is
//
//   F(x,mu) = F_gauge + kappa * TA( C2 - C1 ),
//   C1 = sum_s [U_mu(x) X(x+mu)]_s  ( (1 - gamma_mu) Y(x) )_s^†,
//   C2 = sum_s [X(x)]_s             ( U_mu(x) (1 + gamma_mu) Y(x+mu) )_s^†,
//
// with X = (M^† M)^{-1} phi (one CG solve per force evaluation) and
// Y = M X; the derivation follows from dS = -2 Re[Y^† dM X] with
// dU = P U along the flow. Correctness is pinned by a finite-difference
// test of dS_pf/dt and by |dH| ~ dt^2 / reversibility tests.

#include <cstdint>

#include "dirac/wilson.hpp"
#include "hmc/hmc.hpp"
#include "lattice/field.hpp"
#include "solver/solver.hpp"

namespace lqcd {

struct DynamicalHmcParams {
  double beta = 5.4;
  double kappa = 0.10;
  TimeBoundary bc = TimeBoundary::Antiperiodic;
  double trajectory_length = 0.5;
  int steps = 10;
  Integrator integrator = Integrator::Omelyan;
  double solver_tol = 1e-10;  ///< force/action solves
  int solver_max_iterations = 10000;
  std::uint64_t seed = 4242;
};

struct DynamicalTrajectoryResult {
  double delta_h = 0.0;
  bool accepted = false;
  double plaquette = 0.0;
  double acceptance_prob = 0.0;
  int cg_iterations = 0;  ///< total inner CG iterations this trajectory
};

/// Fermion contribution to the MD force for given solutions X, Y
/// (full-volume fields; `links` must carry the fermion boundary phases).
/// Adds into `f`.
void add_wilson_fermion_force(Field<LinkSite<double>>& f,
                              const GaugeField<double>& links, double kappa,
                              std::span<const WilsonSpinorD> x,
                              std::span<const WilsonSpinorD> y);

/// S_pf = phi^† (M^† M)^{-1} phi evaluated with CG (exposed for the
/// finite-difference force test). Returns the action; `iterations` (if
/// non-null) accumulates CG iterations.
double pseudofermion_action(const GaugeFieldD& u,
                            const DynamicalHmcParams& params,
                            std::span<const WilsonSpinorD> phi,
                            int* iterations = nullptr);

/// Two-flavor HMC driver.
class DynamicalHmc {
 public:
  DynamicalHmc(GaugeFieldD& u, const DynamicalHmcParams& params);

  DynamicalTrajectoryResult trajectory();

  [[nodiscard]] const DynamicalHmcParams& params() const { return params_; }
  [[nodiscard]] double acceptance_rate() const {
    return count_ > 0 ? static_cast<double>(accepted_) /
                            static_cast<double>(count_)
                      : 0.0;
  }
  [[nodiscard]] std::uint64_t trajectories_run() const { return count_; }

 private:
  GaugeFieldD& u_;
  DynamicalHmcParams params_;
  std::uint64_t count_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace lqcd
