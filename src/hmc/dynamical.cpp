#include "hmc/dynamical.hpp"

#include <cmath>

#include "dirac/normal.hpp"
#include "gauge/observables.hpp"
#include "linalg/blas.hpp"
#include "linalg/gamma.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/cg.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

void add_wilson_fermion_force(Field<LinkSite<double>>& f,
                              const GaugeField<double>& links, double kappa,
                              std::span<const WilsonSpinorD> x,
                              std::span<const WilsonSpinorD> y) {
  const LatticeGeometry& geo = links.geometry();
  LQCD_REQUIRE(x.size() == static_cast<std::size_t>(geo.volume()) &&
                   y.size() == x.size(),
               "fermion force field sizes");
  parallel_for(static_cast<std::size_t>(geo.volume()), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu) {
      const std::int64_t xp = geo.fwd(cb, mu);
      const ColorMatrixD& u = links(cb, mu);

      // z = (1 - gamma_mu) Y(x), u_vec = U X(x+mu)
      const WilsonSpinorD gy =
          apply_gamma(mu, y[static_cast<std::size_t>(cb)]);
      WilsonSpinorD z = y[static_cast<std::size_t>(cb)];
      z -= gy;
      const WilsonSpinorD ux =
          mul(u, x[static_cast<std::size_t>(xp)]);

      // q = U (1 + gamma_mu) Y(x+mu)
      const WilsonSpinorD gyp =
          apply_gamma(mu, y[static_cast<std::size_t>(xp)]);
      WilsonSpinorD ypg = y[static_cast<std::size_t>(xp)];
      ypg += gyp;
      const WilsonSpinorD q = mul(u, ypg);
      const WilsonSpinorD& xx = x[static_cast<std::size_t>(cb)];

      // C2 - C1 as a color matrix (sum over spin of outer products):
      // the momentum update p -= dt*F with F = kappa TA(C2 - C1) then
      // satisfies dS_pf/dt = -2 sum tr(p F), verified by the
      // finite-difference test.
      ColorMatrixD c{};
      for (int sp = 0; sp < Ns; ++sp)
        for (int a = 0; a < Nc; ++a)
          for (int b = 0; b < Nc; ++b) {
            fma_acc(c.m[a][b], xx.s[sp].c[a], conj(q.s[sp].c[b]));
            const Cplxd neg = -ux.s[sp].c[a];
            fma_acc(c.m[a][b], neg, conj(z.s[sp].c[b]));
          }
      ColorMatrixD g = traceless_antiherm(c);
      g *= kappa;
      f[cb][static_cast<std::size_t>(mu)] += g;
    }
  });
}

double pseudofermion_action(const GaugeFieldD& u,
                            const DynamicalHmcParams& params,
                            std::span<const WilsonSpinorD> phi,
                            int* iterations) {
  const LatticeGeometry& geo = u.geometry();
  WilsonOperator<double> m(u, params.kappa, params.bc);
  NormalOperator<double> mdm(m);
  FermionFieldD x(geo);
  SolverParams sp{.tol = params.solver_tol,
                  .max_iterations = params.solver_max_iterations};
  const SolverResult r = cg_solve<double>(mdm, x.span(), phi, sp);
  LQCD_REQUIRE(r.converged, "pseudofermion action solve did not converge");
  if (iterations) *iterations += r.iterations;
  return blas::dot(phi, std::span<const WilsonSpinorD>(x.span().data(),
                                                       x.span().size()))
      .re;
}

DynamicalHmc::DynamicalHmc(GaugeFieldD& u,
                           const DynamicalHmcParams& params)
    : u_(u), params_(params) {
  LQCD_REQUIRE(params.beta > 0.0, "beta must be positive");
  LQCD_REQUIRE(params.kappa > 0.0 && params.kappa < 0.25,
               "kappa out of (0, 0.25)");
  LQCD_REQUIRE(params.steps >= 1, "steps must be >= 1");
}

DynamicalTrajectoryResult DynamicalHmc::trajectory() {
  telemetry::TraceRegion trace("hmc.dynamical_trajectory");
  const LatticeGeometry& geo = u_.geometry();
  const auto vol = static_cast<std::size_t>(geo.volume());
  DynamicalTrajectoryResult res;

  // 1. Momentum refresh.
  MomentumField p(geo);
  draw_momenta(p, SiteRngFactory(params_.seed, 3 * count_));

  // 2. Pseudofermion refresh: eta Gaussian with variance 1/2 per real
  //    component (weight exp(-eta^† eta)), phi = M^† eta.
  FermionFieldD eta(geo), phi(geo), tmp(geo);
  {
    const SiteRngFactory rngs(params_.seed ^ 0xfeedULL, 3 * count_ + 1);
    const double inv_sqrt2 = 0.70710678118654752440;
    parallel_for(vol, [&](std::size_t s) {
      CounterRng rng = rngs.make(s);
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          eta[static_cast<std::int64_t>(s)].s[sp].c[c] =
              Cplxd(rng.gaussian() * inv_sqrt2,
                    rng.gaussian() * inv_sqrt2);
    });
    WilsonOperator<double> m(u_, params_.kappa, params_.bc);
    m.apply_dagger(phi.span(), eta.span(), tmp.span());
  }

  // 3. Initial Hamiltonian. S_pf(start) = eta^† eta exactly.
  const double h0 = kinetic_energy(p) + wilson_action(u_, params_.beta) +
                    blas::norm2(eta.span());

  GaugeFieldD backup(geo);
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    backup.site(s) = u_.site(s);

  // 4. MD evolution with gauge + fermion force. X is warm-started across
  //    force evaluations (chronological guess).
  FermionFieldD x_guess(geo);
  int cg_total = 0;
  const auto force = [&](Field<LinkSite<double>>& f, const GaugeFieldD& u) {
    gauge_force(f, u, params_.beta);
    WilsonOperator<double> m(u, params_.kappa, params_.bc);
    NormalOperator<double> mdm(m);
    SolverParams sp{.tol = params_.solver_tol,
                    .max_iterations = params_.solver_max_iterations,
                    .check_true_residual = false};
    const SolverResult r =
        cg_solve<double>(mdm, x_guess.span(), phi.span(), sp);
    if (!r.converged)
      log_warn("dynamical HMC force solve unconverged: rel=",
               r.relative_residual);
    cg_total += r.iterations;
    telemetry::counter("hmc.force_evals").add(1);
    FermionFieldD y(geo);
    m.apply(y.span(), x_guess.span());
    add_wilson_fermion_force(f, m.fermion_links(), params_.kappa,
                             x_guess.span(), y.span());
  };
  integrate_md(u_, p, force, params_.trajectory_length, params_.steps,
               params_.integrator);
  u_.reunitarize_all();

  // 5. Final Hamiltonian (fresh solve on the evolved field).
  const double s_pf1 =
      pseudofermion_action(u_, params_, phi.span(), &cg_total);
  const double h1 =
      kinetic_energy(p) + wilson_action(u_, params_.beta) + s_pf1;

  // 6. Metropolis.
  res.delta_h = h1 - h0;
  res.acceptance_prob = std::min(1.0, std::exp(-res.delta_h));
  CounterRng accept_rng(params_.seed ^ 0xdeadULL, 3 * count_ + 2);
  res.accepted = accept_rng.uniform() < res.acceptance_prob;
  if (!res.accepted) {
    for (std::int64_t s = 0; s < geo.volume(); ++s)
      u_.site(s) = backup.site(s);
  }
  res.plaquette = average_plaquette(u_);
  res.cg_iterations = cg_total;
  ++count_;
  if (res.accepted) ++accepted_;
  if (telemetry::enabled()) {
    telemetry::counter("hmc.dynamical_trajectories").add(1);
    if (res.accepted) telemetry::counter("hmc.accepts").add(1);
    telemetry::counter("hmc.force_cg_iterations").add(cg_total);
    telemetry::gauge("hmc.last_delta_h").set(res.delta_h);
    telemetry::gauge("hmc.last_plaquette").set(res.plaquette);
  }
  return res;
}

}  // namespace lqcd
