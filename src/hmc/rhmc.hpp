#pragma once
// One-flavor rational HMC (RHMC).
//
// A single quark flavor contributes |det M| = det(M^†M)^{1/2}; the
// pseudofermion action is
//
//   S_pf = phi^† (M^†M)^{-1/2} phi,
//
// with the inverse square root replaced by the partial-fraction rational
// approximation R(A) = c0 + sum_k r_k (A + p_k)^{-1} (solver/rational.hpp)
// evaluated through ONE multishift CG:
//
//   refresh:  phi = A^{1/4} eta = A * [A^{-3/4} eta]  (so S_pf = eta^†eta),
//   force:    F = sum_k r_k F_2f(X_k, M X_k),  X_k = (A + p_k)^{-1} phi,
//
// where F_2f is the two-flavor Wilson fermion force kernel
// (hmc/dynamical.hpp) — each shifted term has exactly the
// phi^†(A+p)^{-1}phi structure. Correctness is pinned by the same
// finite-difference test that validates the two-flavor force.

#include <cstdint>

#include "dirac/wilson.hpp"
#include "hmc/dynamical.hpp"
#include "hmc/hmc.hpp"
#include "solver/rational.hpp"

namespace lqcd {

struct RhmcParams {
  double beta = 5.4;
  double kappa = 0.10;
  TimeBoundary bc = TimeBoundary::Antiperiodic;
  double trajectory_length = 0.5;
  int steps = 10;
  Integrator integrator = Integrator::Omelyan;
  int poles = 24;              ///< rational order for x^{-1/2} and x^{-3/4}
  double spectrum_min = 0.05;  ///< A = M^†M spectral window
  double spectrum_max = 40.0;
  double solver_tol = 1e-10;
  int solver_max_iterations = 20000;
  std::uint64_t seed = 777;
};

struct RhmcTrajectoryResult {
  double delta_h = 0.0;
  bool accepted = false;
  double plaquette = 0.0;
  double acceptance_prob = 0.0;
  int cg_iterations = 0;
};

/// RHMC force for given phi on the current links; adds the rational
/// pseudofermion force into f and returns the multishift iteration count.
/// Exposed for the finite-difference test.
int add_rhmc_force(Field<LinkSite<double>>& f, const GaugeFieldD& u,
                   const RhmcParams& params,
                   std::span<const WilsonSpinorD> phi);

/// S_pf = phi^† R(A) phi with R ~ A^{-1/2} (exposed for tests).
double rhmc_action(const GaugeFieldD& u, const RhmcParams& params,
                   std::span<const WilsonSpinorD> phi,
                   int* iterations = nullptr);

/// One-flavor RHMC driver.
class Rhmc {
 public:
  Rhmc(GaugeFieldD& u, const RhmcParams& params);

  RhmcTrajectoryResult trajectory();

  [[nodiscard]] const RhmcParams& params() const { return params_; }
  [[nodiscard]] double acceptance_rate() const {
    return count_ > 0 ? static_cast<double>(accepted_) /
                            static_cast<double>(count_)
                      : 0.0;
  }
  [[nodiscard]] std::uint64_t trajectories_run() const { return count_; }

 private:
  GaugeFieldD& u_;
  RhmcParams params_;
  std::uint64_t count_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace lqcd
