#include "hmc/rhmc.hpp"

#include <cmath>

#include "dirac/normal.hpp"
#include "gauge/observables.hpp"
#include "linalg/blas.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/multishift_cg.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace lqcd {

namespace {
RationalApprox half_approx(const RhmcParams& p) {
  return rational_inverse_pow_scaled(0.5, p.poles, p.spectrum_min,
                                     p.spectrum_max);
}
RationalApprox three_quarter_approx(const RhmcParams& p) {
  return rational_inverse_pow_scaled(0.75, p.poles, p.spectrum_min,
                                     p.spectrum_max);
}
}  // namespace

int add_rhmc_force(Field<LinkSite<double>>& f, const GaugeFieldD& u,
                   const RhmcParams& params,
                   std::span<const WilsonSpinorD> phi) {
  const LatticeGeometry& geo = u.geometry();
  const auto n = static_cast<std::size_t>(geo.volume());
  WilsonOperator<double> m(u, params.kappa, params.bc);
  NormalOperator<double> a(m);
  const RationalApprox r = half_approx(params);

  // One multishift CG for every pole: X_k = (A + p_k)^{-1} phi.
  std::vector<aligned_vector<WilsonSpinorD>> x(r.poles.size());
  SolverParams sp{.tol = params.solver_tol,
                  .max_iterations = params.solver_max_iterations,
                  .check_true_residual = false};
  const MultiShiftResult ms =
      multishift_cg_solve<double>(a, r.poles, x, phi, sp);
  if (!ms.converged)
    log_warn("RHMC force multishift did not fully converge");

  // F = sum_k r_k F_2f(X_k, M X_k). The two-flavor kernel carries the
  // kappa factor and the TA projection internally; scale its input pair
  // by sqrt(r_k) each (the kernel is bilinear in (X, Y)).
  aligned_vector<WilsonSpinorD> y(n), xs(n);
  for (std::size_t k = 0; k < r.poles.size(); ++k) {
    const double w = r.residues[k];
    m.apply(std::span<WilsonSpinorD>(y.data(), n),
            std::span<const WilsonSpinorD>(x[k].data(), n));
    // Scale X by w (Y unscaled): the force kernel is linear in each.
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinorD v = x[k][i];
      v *= w;
      xs[i] = v;
    });
    add_wilson_fermion_force(f, m.fermion_links(), params.kappa,
                             std::span<const WilsonSpinorD>(xs.data(), n),
                             std::span<const WilsonSpinorD>(y.data(), n));
  }
  return ms.iterations;
}

double rhmc_action(const GaugeFieldD& u, const RhmcParams& params,
                   std::span<const WilsonSpinorD> phi, int* iterations) {
  const auto n = phi.size();
  WilsonOperator<double> m(u, params.kappa, params.bc);
  NormalOperator<double> a(m);
  aligned_vector<WilsonSpinorD> rphi(n);
  SolverParams sp{.tol = params.solver_tol,
                  .max_iterations = params.solver_max_iterations,
                  .check_true_residual = false};
  const RationalApplyResult r = apply_rational(
      a, half_approx(params), std::span<WilsonSpinorD>(rphi.data(), n),
      phi, sp);
  LQCD_REQUIRE(r.converged, "RHMC action multishift did not converge");
  if (iterations) *iterations += r.iterations;
  return blas::dot(phi,
                   std::span<const WilsonSpinorD>(rphi.data(), n))
      .re;
}

Rhmc::Rhmc(GaugeFieldD& u, const RhmcParams& params)
    : u_(u), params_(params) {
  LQCD_REQUIRE(params.beta > 0.0, "beta must be positive");
  LQCD_REQUIRE(params.kappa > 0.0 && params.kappa < 0.25,
               "kappa out of (0, 0.25)");
  LQCD_REQUIRE(params.steps >= 1, "steps must be >= 1");
  LQCD_REQUIRE(params.poles >= 4, "rational order too low");
}

RhmcTrajectoryResult Rhmc::trajectory() {
  const LatticeGeometry& geo = u_.geometry();
  const auto n = static_cast<std::size_t>(geo.volume());
  RhmcTrajectoryResult res;
  int cg_total = 0;

  // 1. Momenta.
  MomentumField p(geo);
  draw_momenta(p, SiteRngFactory(params_.seed, 3 * count_));

  // 2. Pseudofermion: phi = A^{1/4} eta = A * (A^{-3/4} eta), so
  //    S_pf(start) = eta^† A^{1/4} A^{-1/2} A^{1/4} eta = eta^†eta up to
  //    the rational error (the Metropolis test is still exact because H
  //    is evaluated consistently with rhmc_action at both ends — the
  //    refresh only shapes the phi distribution).
  FermionFieldD eta(geo), phi(geo), tmp(geo);
  {
    const SiteRngFactory rngs(params_.seed ^ 0x0f1aULL, 3 * count_ + 1);
    const double inv_sqrt2 = 0.70710678118654752440;
    parallel_for(n, [&](std::size_t s) {
      CounterRng rng = rngs.make(s);
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          eta[static_cast<std::int64_t>(s)].s[sp].c[c] =
              Cplxd(rng.gaussian() * inv_sqrt2,
                    rng.gaussian() * inv_sqrt2);
    });
    WilsonOperator<double> m(u_, params_.kappa, params_.bc);
    NormalOperator<double> a(m);
    SolverParams sp{.tol = params_.solver_tol,
                    .max_iterations = params_.solver_max_iterations,
                    .check_true_residual = false};
    const RationalApplyResult r = apply_rational(
        a, three_quarter_approx(params_), tmp.span(),
        std::span<const WilsonSpinorD>(eta.span().data(),
                                       eta.span().size()),
        sp);
    LQCD_REQUIRE(r.converged, "RHMC refresh multishift did not converge");
    cg_total += r.iterations;
    a.apply(phi.span(), tmp.span());
  }

  // 3. Initial Hamiltonian (S_pf evaluated with the same R as the force).
  const double h0 = kinetic_energy(p) + wilson_action(u_, params_.beta) +
                    rhmc_action(u_, params_, phi.span(), &cg_total);

  GaugeFieldD backup(geo);
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    backup.site(s) = u_.site(s);

  // 4. MD with gauge + rational fermion force.
  const auto force = [&](Field<LinkSite<double>>& f, const GaugeFieldD& u) {
    gauge_force(f, u, params_.beta);
    cg_total += add_rhmc_force(f, u, params_, phi.span());
  };
  integrate_md(u_, p, force, params_.trajectory_length, params_.steps,
               params_.integrator);
  u_.reunitarize_all();

  // 5. Final Hamiltonian and Metropolis.
  const double h1 = kinetic_energy(p) + wilson_action(u_, params_.beta) +
                    rhmc_action(u_, params_, phi.span(), &cg_total);
  res.delta_h = h1 - h0;
  res.acceptance_prob = std::min(1.0, std::exp(-res.delta_h));
  CounterRng accept_rng(params_.seed ^ 0xac3eULL, 3 * count_ + 2);
  res.accepted = accept_rng.uniform() < res.acceptance_prob;
  if (!res.accepted) {
    for (std::int64_t s = 0; s < geo.volume(); ++s)
      u_.site(s) = backup.site(s);
  }
  res.plaquette = average_plaquette(u_);
  res.cg_iterations = cg_total;
  ++count_;
  if (res.accepted) ++accepted_;
  return res;
}

}  // namespace lqcd
