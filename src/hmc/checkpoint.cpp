#include "hmc/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/atomic_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

namespace {
constexpr char kMagic[8] = {'L', 'Q', 'C', 'D', 'C', 'K', '0', '1'};
constexpr std::size_t kSiteBytes = Nd * Nc * Nc * 2 * sizeof(double);

template <typename V>
void put(std::ostream& os, std::uint32_t& crc, const V& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  crc = crc32(&v, sizeof(v), crc);
}

template <typename V>
void get(std::istream& is, std::uint32_t& crc, V& v,
         const std::string& path) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is.good())
    throw FatalError("checkpoint truncated: " + path);
  crc = crc32(&v, sizeof(v), crc);
}
}  // namespace

void save_checkpoint(const GaugeFieldD& u, const HmcCheckpointState& state,
                     const std::string& path) {
  atomic_write_file(path, [&](std::ostream& os) {
    std::uint32_t crc = 0;
    os.write(kMagic, sizeof(kMagic));
    for (int mu = 0; mu < Nd; ++mu)
      put(os, crc, static_cast<std::int32_t>(u.geometry().dim(mu)));
    put(os, crc, state.trajectories);
    put(os, crc, state.accepted);
    put(os, crc, state.params.seed);
    put(os, crc, state.params.beta);
    put(os, crc, state.params.trajectory_length);
    put(os, crc, static_cast<std::int32_t>(state.params.steps));
    put(os, crc, static_cast<std::int32_t>(state.params.integrator));

    const std::int64_t vol = u.geometry().volume();
    std::vector<double> buf(Nd * Nc * Nc * 2);
    for (std::int64_t s = 0; s < vol; ++s) {
      std::size_t k = 0;
      for (int mu = 0; mu < Nd; ++mu)
        for (int r = 0; r < Nc; ++r)
          for (int c = 0; c < Nc; ++c) {
            buf[k++] = u(s, mu).m[r][c].re;
            buf[k++] = u(s, mu).m[r][c].im;
          }
      crc = crc32(buf.data(), kSiteBytes, crc);
      os.write(reinterpret_cast<const char*>(buf.data()),
               static_cast<std::streamsize>(kSiteBytes));
    }
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  });
  telemetry::counter("hmc.checkpoint.writes").add(1);
}

HmcCheckpointState load_checkpoint(GaugeFieldD& u, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw FatalError("cannot open checkpoint: " + path);

  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is.good() || std::memcmp(magic, kMagic, 8) != 0)
    throw FatalError("not a lqcd checkpoint: " + path);

  std::uint32_t crc = 0;
  for (int mu = 0; mu < Nd; ++mu) {
    std::int32_t d = 0;
    get(is, crc, d, path);
    if (d != u.geometry().dim(mu))
      throw FatalError("checkpoint dimension mismatch: " + path);
  }
  HmcCheckpointState state;
  get(is, crc, state.trajectories, path);
  get(is, crc, state.accepted, path);
  get(is, crc, state.params.seed, path);
  get(is, crc, state.params.beta, path);
  get(is, crc, state.params.trajectory_length, path);
  std::int32_t steps = 0, integ = 0;
  get(is, crc, steps, path);
  get(is, crc, integ, path);
  state.params.steps = steps;
  state.params.integrator = static_cast<Integrator>(integ);

  const std::int64_t vol = u.geometry().volume();
  std::vector<double> buf(Nd * Nc * Nc * 2);
  for (std::int64_t s = 0; s < vol; ++s) {
    is.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(kSiteBytes));
    if (!is.good())
      throw FatalError("checkpoint gauge payload truncated: " + path);
    crc = crc32(buf.data(), kSiteBytes, crc);
    std::size_t k = 0;
    for (int mu = 0; mu < Nd; ++mu)
      for (int r = 0; r < Nc; ++r)
        for (int c = 0; c < Nc; ++c) {
          u(s, mu).m[r][c] = Cplxd(buf[k], buf[k + 1]);
          k += 2;
        }
  }
  std::uint32_t stored = 0;
  is.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!is.good())
    throw FatalError("checkpoint checksum truncated: " + path);
  if (stored != crc)
    throw FatalError("checkpoint CRC mismatch (corrupt): " + path);
  return state;
}

bool checkpoint_exists(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[8];
  is.read(magic, sizeof(magic));
  return is.good() && std::memcmp(magic, kMagic, 8) == 0;
}

void resume_hmc(Hmc& hmc, const HmcCheckpointState& state) {
  const HmcParams& p = hmc.params();
  if (p.seed != state.params.seed || p.beta != state.params.beta ||
      p.steps != state.params.steps ||
      p.trajectory_length != state.params.trajectory_length ||
      p.integrator != state.params.integrator)
    throw FatalError(
        "resume_hmc: driver params differ from the checkpointed campaign "
        "(resuming would fork the trajectory stream)");
  hmc.restore_progress(state.trajectories, state.accepted);
}

}  // namespace lqcd
