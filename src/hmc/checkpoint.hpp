#pragma once
// HMC campaign checkpoint/restart.
//
// A checkpoint captures everything needed to resume an ensemble campaign
// and reproduce the *identical* trajectory stream the uninterrupted run
// would have produced: the gauge field (bit-exact doubles), the HMC
// parameters (the seed is the entire RNG state — all per-trajectory
// streams are counter-derived from (seed, trajectory index)), and the
// trajectory/acceptance counters.
//
// Layout: magic "LQCDCK01" | 4 x int32 dims | u64 trajectories |
//         u64 accepted | u64 seed | f64 beta | f64 trajectory_length |
//         i32 steps | i32 integrator | link payload (same site-major
//         serialization as the gauge format) | u32 CRC over everything
//         after the magic.
//
// Writes go through atomic_write_file (temp + rename), so a kill at any
// instant leaves either the previous complete checkpoint or the new one —
// never a truncated file. Loads verify the CRC and throw FatalError on
// corruption, so a damaged checkpoint is rejected rather than silently
// resuming a divergent campaign.

#include <string>

#include "gauge/gauge_field.hpp"
#include "hmc/hmc.hpp"

namespace lqcd {

/// Campaign progress stored alongside the gauge field.
struct HmcCheckpointState {
  std::uint64_t trajectories = 0;  ///< trajectories completed
  std::uint64_t accepted = 0;      ///< of which accepted
  HmcParams params;                ///< seed + MD settings of the campaign
};

/// Atomically write a checkpoint (gauge field + campaign state + CRC).
void save_checkpoint(const GaugeFieldD& u, const HmcCheckpointState& state,
                     const std::string& path);

/// Load a checkpoint into a field on a matching geometry. Throws
/// FatalError on magic/dimension mismatch, truncation, or CRC failure.
HmcCheckpointState load_checkpoint(GaugeFieldD& u, const std::string& path);

/// True if `path` exists and carries the checkpoint magic (cheap probe
/// for auto-resume logic; does not validate the payload).
bool checkpoint_exists(const std::string& path);

/// Resume an Hmc driver from a loaded state: restores the trajectory and
/// acceptance counters so the next trajectory() call draws exactly the
/// streams the uninterrupted campaign would have drawn. The caller must
/// have constructed `hmc` over the checkpointed gauge field with the
/// checkpointed params (enforced: throws FatalError on a seed/params
/// mismatch, which would silently fork the trajectory stream).
void resume_hmc(Hmc& hmc, const HmcCheckpointState& state);

}  // namespace lqcd
