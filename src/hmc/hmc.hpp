#pragma once
// Pure-gauge hybrid Monte Carlo.
//
// Conventions (verified by the energy-conservation and reversibility
// tests):
//   momenta      p(x,mu) in su(3) (anti-hermitian traceless),
//                drawn from exp(-T) with T = sum tr(p^† p),
//   Hamiltonian  H = T + S_g,   S_g the Wilson plaquette action,
//   equations    dU/dt = p U,
//                dp/dt = -F,  F(x,mu) = (beta/6) TA[ U_mu(x) A(x,mu) ],
// with A the staple sum and TA the traceless anti-hermitian projection.
//
// Integrators: leapfrog and the 2nd-order Omelyan (minimum-norm) scheme;
// both are volume-preserving and reversible, making the Metropolis step
// exact.

#include <cstdint>
#include <functional>

#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "util/rng.hpp"

namespace lqcd {

/// su(3)-valued momentum field, one element per link.
using MomentumField = Field<LinkSite<double>>;

enum class Integrator { Leapfrog, Omelyan };

struct HmcParams {
  double beta = 6.0;
  double trajectory_length = 1.0;
  int steps = 20;  ///< integration steps per trajectory
  Integrator integrator = Integrator::Omelyan;
  std::uint64_t seed = 1234;
};

/// Result of one trajectory.
struct TrajectoryResult {
  double delta_h = 0.0;   ///< H(end) - H(start)
  bool accepted = false;
  double plaquette = 0.0;  ///< after accept/reject
  double acceptance_prob = 0.0;  ///< min(1, exp(-dH))
};

/// Gaussian momentum refresh: p ~ exp(-sum tr(p^† p)).
void draw_momenta(MomentumField& p, const SiteRngFactory& rngs);

/// Kinetic energy T = sum_links tr(p^† p).
double kinetic_energy(const MomentumField& p);

/// Wilson gauge force F(x,mu) = (beta/6) TA[U A].
void gauge_force(Field<LinkSite<double>>& f, const GaugeFieldD& u,
                 double beta);

/// U <- exp(dt p) U on every link (one MD position update).
void update_links(GaugeFieldD& u, const MomentumField& p, double dt);

/// Generic force evaluation: fill `f` with dH/d(links) for the current
/// gauge field (the momentum update subtracts dt * f).
using ForceCallback =
    std::function<void(Field<LinkSite<double>>& f, const GaugeFieldD& u)>;

/// Molecular-dynamics integration of (u, p) under an arbitrary force
/// (gauge-only, gauge+fermion, ...) over `length` in `steps` steps.
void integrate_md(GaugeFieldD& u, MomentumField& p,
                  const ForceCallback& force, double length, int steps,
                  Integrator scheme);

/// Pure-gauge convenience wrapper (force = Wilson gauge force at beta).
void integrate(GaugeFieldD& u, MomentumField& p, double beta, double length,
               int steps, Integrator scheme);

/// Pure-gauge HMC driver.
class Hmc {
 public:
  Hmc(GaugeFieldD& u, const HmcParams& params);

  /// Run one trajectory (momentum refresh, MD, Metropolis).
  TrajectoryResult trajectory();

  [[nodiscard]] const HmcParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t trajectories_run() const { return count_; }
  [[nodiscard]] std::uint64_t trajectories_accepted() const {
    return accepted_;
  }

  /// Restore campaign progress from a checkpoint (see hmc/checkpoint.hpp).
  /// Every per-trajectory RNG stream is counter-derived from
  /// (seed, trajectory index), so setting the counters on top of the
  /// checkpointed gauge field reproduces the uninterrupted trajectory
  /// stream exactly.
  void restore_progress(std::uint64_t trajectories,
                        std::uint64_t accepted) {
    count_ = trajectories;
    accepted_ = accepted;
  }
  [[nodiscard]] double acceptance_rate() const {
    return count_ > 0 ? static_cast<double>(accepted_) /
                            static_cast<double>(count_)
                      : 0.0;
  }

 private:
  GaugeFieldD& u_;
  HmcParams params_;
  std::uint64_t count_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace lqcd
