#include "hmc/hmc.hpp"

#include <cmath>

#include "gauge/observables.hpp"
#include "gauge/staples.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

void draw_momenta(MomentumField& p, const SiteRngFactory& rngs) {
  const std::int64_t vol = p.geometry().volume();
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    for (int mu = 0; mu < Nd; ++mu) {
      CounterRng rng = rngs.make(s, static_cast<std::uint64_t>(mu));
      p[static_cast<std::int64_t>(s)][static_cast<std::size_t>(mu)] =
          random_algebra<double>(rng);
    }
  });
}

double kinetic_energy(const MomentumField& p) {
  const std::int64_t vol = p.geometry().volume();
  return parallel_reduce_sum(static_cast<std::size_t>(vol),
                             [&](std::size_t s) {
                               double acc = 0.0;
                               for (int mu = 0; mu < Nd; ++mu)
                                 acc += norm2(
                                     p[static_cast<std::int64_t>(s)]
                                      [static_cast<std::size_t>(mu)]);
                               return acc;
                             });
}

void gauge_force(Field<LinkSite<double>>& f, const GaugeFieldD& u,
                 double beta) {
  const std::int64_t vol = u.geometry().volume();
  const double c = beta / 6.0;
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu) {
      const ColorMatrixD ua = mul(u(cb, mu), staple_sum(u, cb, mu));
      ColorMatrixD g = traceless_antiherm(ua);
      g *= c;
      f[cb][static_cast<std::size_t>(mu)] = g;
    }
  });
}

void update_links(GaugeFieldD& u, const MomentumField& p, double dt) {
  const std::int64_t vol = u.geometry().volume();
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu) {
      ColorMatrixD step = p[cb][static_cast<std::size_t>(mu)];
      step *= dt;
      u(cb, mu) = mul(exp_matrix(step), u(cb, mu));
    }
  });
}

namespace {
// p <- p - dt F(U).
void update_momenta(MomentumField& p, Field<LinkSite<double>>& scratch,
                    const GaugeFieldD& u, const ForceCallback& force,
                    double dt) {
  force(scratch, u);
  const std::int64_t vol = u.geometry().volume();
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu) {
      ColorMatrixD g = scratch[cb][static_cast<std::size_t>(mu)];
      g *= dt;
      p[cb][static_cast<std::size_t>(mu)] -= g;
    }
  });
}
}  // namespace

void integrate_md(GaugeFieldD& u, MomentumField& p,
                  const ForceCallback& force, double length, int steps,
                  Integrator scheme) {
  LQCD_REQUIRE(steps >= 1, "need at least one MD step");
  const double dt = length / steps;
  Field<LinkSite<double>> scratch(u.geometry());

  switch (scheme) {
    case Integrator::Leapfrog: {
      update_momenta(p, scratch, u, force, 0.5 * dt);
      for (int i = 0; i < steps; ++i) {
        update_links(u, p, dt);
        update_momenta(p, scratch, u, force,
                       i + 1 < steps ? dt : 0.5 * dt);
      }
      break;
    }
    case Integrator::Omelyan: {
      // 2nd-order minimum-norm: lambda eps p | eps/2 U | (1-2 lambda) eps p
      // | eps/2 U | lambda eps p, with consecutive p-updates fused.
      constexpr double lambda = 0.1931833275037836;
      update_momenta(p, scratch, u, force, lambda * dt);
      for (int i = 0; i < steps; ++i) {
        update_links(u, p, 0.5 * dt);
        update_momenta(p, scratch, u, force, (1.0 - 2.0 * lambda) * dt);
        update_links(u, p, 0.5 * dt);
        update_momenta(p, scratch, u, force,
                       i + 1 < steps ? 2.0 * lambda * dt : lambda * dt);
      }
      break;
    }
  }
}

void integrate(GaugeFieldD& u, MomentumField& p, double beta, double length,
               int steps, Integrator scheme) {
  integrate_md(
      u, p,
      [beta](Field<LinkSite<double>>& f, const GaugeFieldD& v) {
        gauge_force(f, v, beta);
      },
      length, steps, scheme);
}

Hmc::Hmc(GaugeFieldD& u, const HmcParams& params) : u_(u), params_(params) {
  LQCD_REQUIRE(params.beta > 0.0, "beta must be positive");
  LQCD_REQUIRE(params.steps >= 1, "steps must be >= 1");
  LQCD_REQUIRE(params.trajectory_length > 0.0,
               "trajectory length must be positive");
}

TrajectoryResult Hmc::trajectory() {
  telemetry::TraceRegion trace("hmc.trajectory");
  const LatticeGeometry& geo = u_.geometry();
  MomentumField p(geo);
  const SiteRngFactory rngs(params_.seed, 2 * count_);
  draw_momenta(p, rngs);

  const double h0 = kinetic_energy(p) + wilson_action(u_, params_.beta);

  // Keep the current configuration for a possible reject.
  GaugeFieldD backup(geo);
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    backup.site(s) = u_.site(s);

  integrate(u_, p, params_.beta, params_.trajectory_length, params_.steps,
            params_.integrator);
  u_.reunitarize_all();

  const double h1 = kinetic_energy(p) + wilson_action(u_, params_.beta);

  TrajectoryResult res;
  res.delta_h = h1 - h0;
  res.acceptance_prob = std::min(1.0, std::exp(-res.delta_h));
  CounterRng accept_rng(params_.seed ^ 0xacce97ULL, 2 * count_ + 1);
  res.accepted = accept_rng.uniform() < res.acceptance_prob;
  if (!res.accepted) {
    for (std::int64_t s = 0; s < geo.volume(); ++s)
      u_.site(s) = backup.site(s);
  }
  res.plaquette = average_plaquette(u_);
  ++count_;
  if (res.accepted) ++accepted_;
  if (telemetry::enabled()) {
    telemetry::counter("hmc.trajectories").add(1);
    if (res.accepted) telemetry::counter("hmc.accepts").add(1);
    telemetry::gauge("hmc.last_delta_h").set(res.delta_h);
    telemetry::gauge("hmc.last_plaquette").set(res.plaquette);
  }
  return res;
}

}  // namespace lqcd
