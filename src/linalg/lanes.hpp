#pragma once
// Lane pack/unpack helpers for the composite linalg types.
//
// A WilsonSpinor<Simd<T, W>> is W scalar WilsonSpinor<T>s stored SoA:
// component (spin, color, re/im) is the slow index, lane the fast one.
// These helpers move one lane in or out of the packed form, and apply a
// lane permutation to a whole packed site (used by VectorLattice to
// materialize wrap-boundary ghost sites). They are the ONLY places that
// transpose between the scalar AoS layout and the lane-packed SoA layout,
// so the pack/unpack convention lives here and nowhere else.

#include <array>
#include <cstddef>

#include "linalg/simd.hpp"
#include "linalg/spinor.hpp"
#include "linalg/su3.hpp"

namespace lqcd {

// --- Cplx ------------------------------------------------------------------

template <typename T, int W>
constexpr Cplx<T> extract_lane(const Cplx<Simd<T, W>>& a, int l) {
  return {a.re.lane(l), a.im.lane(l)};
}

template <typename T, int W>
constexpr void insert_lane(Cplx<Simd<T, W>>& a, int l, const Cplx<T>& x) {
  a.re.set_lane(l, x.re);
  a.im.set_lane(l, x.im);
}

template <typename T, int W>
constexpr Cplx<Simd<T, W>> shuffle(const Cplx<Simd<T, W>>& a,
                                   const int* perm) {
  return {shuffle(a.re, perm), shuffle(a.im, perm)};
}

// --- ColorVector -----------------------------------------------------------

template <typename T, int W>
constexpr ColorVector<T> extract_lane(const ColorVector<Simd<T, W>>& a,
                                      int l) {
  ColorVector<T> r;
  for (int c = 0; c < Nc; ++c) r.c[c] = extract_lane(a.c[c], l);
  return r;
}

template <typename T, int W>
constexpr void insert_lane(ColorVector<Simd<T, W>>& a, int l,
                           const ColorVector<T>& x) {
  for (int c = 0; c < Nc; ++c) insert_lane(a.c[c], l, x.c[c]);
}

template <typename T, int W>
constexpr ColorVector<Simd<T, W>> shuffle(const ColorVector<Simd<T, W>>& a,
                                          const int* perm) {
  ColorVector<Simd<T, W>> r;
  for (int c = 0; c < Nc; ++c) r.c[c] = shuffle(a.c[c], perm);
  return r;
}

// --- ColorMatrix -----------------------------------------------------------

template <typename T, int W>
constexpr ColorMatrix<T> extract_lane(const ColorMatrix<Simd<T, W>>& a,
                                      int l) {
  ColorMatrix<T> r;
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) r.m[i][j] = extract_lane(a.m[i][j], l);
  return r;
}

template <typename T, int W>
constexpr void insert_lane(ColorMatrix<Simd<T, W>>& a, int l,
                           const ColorMatrix<T>& x) {
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) insert_lane(a.m[i][j], l, x.m[i][j]);
}

template <typename T, int W>
constexpr ColorMatrix<Simd<T, W>> shuffle(const ColorMatrix<Simd<T, W>>& a,
                                          const int* perm) {
  ColorMatrix<Simd<T, W>> r;
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) r.m[i][j] = shuffle(a.m[i][j], perm);
  return r;
}

// --- WilsonSpinor ----------------------------------------------------------

template <typename T, int W>
constexpr WilsonSpinor<T> extract_lane(const WilsonSpinor<Simd<T, W>>& a,
                                       int l) {
  WilsonSpinor<T> r;
  for (int sp = 0; sp < Ns; ++sp) r.s[sp] = extract_lane(a.s[sp], l);
  return r;
}

template <typename T, int W>
constexpr void insert_lane(WilsonSpinor<Simd<T, W>>& a, int l,
                           const WilsonSpinor<T>& x) {
  for (int sp = 0; sp < Ns; ++sp) insert_lane(a.s[sp], l, x.s[sp]);
}

template <typename T, int W>
constexpr WilsonSpinor<Simd<T, W>> shuffle(const WilsonSpinor<Simd<T, W>>& a,
                                           const int* perm) {
  WilsonSpinor<Simd<T, W>> r;
  for (int sp = 0; sp < Ns; ++sp) r.s[sp] = shuffle(a.s[sp], perm);
  return r;
}

// --- std::array of any of the above (gauge link sites) ---------------------

template <typename Elem, std::size_t N>
constexpr auto shuffle(const std::array<Elem, N>& a, const int* perm)
    -> std::array<decltype(shuffle(a[0], perm)), N> {
  std::array<Elem, N> r;
  for (std::size_t i = 0; i < N; ++i) r[i] = shuffle(a[i], perm);
  return r;
}

}  // namespace lqcd
