#pragma once
// SU(3) color algebra: 3-component color vectors and 3x3 complex matrices.
//
// All hot operations are inlined templates over the storage precision.
// Conventions: gauge links are SU(3) matrices U with det U = 1; the HMC
// momenta live in the algebra su(3) (anti-hermitian traceless).

#include <array>
#include <cstddef>

#include "linalg/cplx.hpp"
#include "util/rng.hpp"

namespace lqcd {

inline constexpr int Nc = 3;  ///< number of colors

// ---------------------------------------------------------------------------
// ColorVector
// ---------------------------------------------------------------------------

template <typename T>
struct ColorVector {
  Cplx<T> c[Nc];

  constexpr Cplx<T>& operator[](int i) { return c[i]; }
  constexpr const Cplx<T>& operator[](int i) const { return c[i]; }

  constexpr ColorVector& operator+=(const ColorVector& o) {
    for (int i = 0; i < Nc; ++i) c[i] += o.c[i];
    return *this;
  }
  constexpr ColorVector& operator-=(const ColorVector& o) {
    for (int i = 0; i < Nc; ++i) c[i] -= o.c[i];
    return *this;
  }
  constexpr ColorVector& operator*=(const Cplx<T>& s) {
    for (int i = 0; i < Nc; ++i) c[i] *= s;
    return *this;
  }
  constexpr ColorVector& operator*=(T s) {
    for (int i = 0; i < Nc; ++i) c[i] *= s;
    return *this;
  }
  friend constexpr ColorVector operator+(ColorVector a,
                                         const ColorVector& b) {
    return a += b;
  }
  friend constexpr ColorVector operator-(ColorVector a,
                                         const ColorVector& b) {
    return a -= b;
  }
  friend constexpr ColorVector operator*(Cplx<T> s, ColorVector a) {
    return a *= s;
  }
  friend constexpr ColorVector operator*(T s, ColorVector a) {
    return a *= s;
  }
  friend constexpr ColorVector operator-(const ColorVector& a) {
    ColorVector r;
    for (int i = 0; i < Nc; ++i) r.c[i] = -a.c[i];
    return r;
  }
};

template <typename T>
constexpr ColorVector<T> zero_vector() {
  return ColorVector<T>{};
}

/// conj(a) . b
template <typename T>
constexpr Cplx<T> dot(const ColorVector<T>& a, const ColorVector<T>& b) {
  Cplx<T> s{};
  for (int i = 0; i < Nc; ++i) fma_conj_acc(s, a.c[i], b.c[i]);
  return s;
}

template <typename T>
constexpr T norm2(const ColorVector<T>& a) {
  T s{};
  for (int i = 0; i < Nc; ++i) s += norm2(a.c[i]);
  return s;
}

// ---------------------------------------------------------------------------
// ColorMatrix
// ---------------------------------------------------------------------------

template <typename T>
struct ColorMatrix {
  Cplx<T> m[Nc][Nc];

  constexpr Cplx<T>& operator()(int r, int c) { return m[r][c]; }
  constexpr const Cplx<T>& operator()(int r, int c) const { return m[r][c]; }

  constexpr ColorMatrix& operator+=(const ColorMatrix& o) {
    for (int r = 0; r < Nc; ++r)
      for (int c = 0; c < Nc; ++c) m[r][c] += o.m[r][c];
    return *this;
  }
  constexpr ColorMatrix& operator-=(const ColorMatrix& o) {
    for (int r = 0; r < Nc; ++r)
      for (int c = 0; c < Nc; ++c) m[r][c] -= o.m[r][c];
    return *this;
  }
  constexpr ColorMatrix& operator*=(T s) {
    for (int r = 0; r < Nc; ++r)
      for (int c = 0; c < Nc; ++c) m[r][c] *= s;
    return *this;
  }
  constexpr ColorMatrix& operator*=(const Cplx<T>& s) {
    for (int r = 0; r < Nc; ++r)
      for (int c = 0; c < Nc; ++c) m[r][c] *= s;
    return *this;
  }
  friend constexpr ColorMatrix operator+(ColorMatrix a,
                                         const ColorMatrix& b) {
    return a += b;
  }
  friend constexpr ColorMatrix operator-(ColorMatrix a,
                                         const ColorMatrix& b) {
    return a -= b;
  }
  friend constexpr ColorMatrix operator*(T s, ColorMatrix a) { return a *= s; }
  friend constexpr ColorMatrix operator*(Cplx<T> s, ColorMatrix a) {
    return a *= s;
  }
};

template <typename T>
constexpr ColorMatrix<T> zero_matrix() {
  return ColorMatrix<T>{};
}

template <typename T>
constexpr ColorMatrix<T> unit_matrix() {
  ColorMatrix<T> u{};
  for (int i = 0; i < Nc; ++i) u.m[i][i] = Cplx<T>(T(1));
  return u;
}

/// C = A * B
template <typename T>
constexpr ColorMatrix<T> mul(const ColorMatrix<T>& a,
                             const ColorMatrix<T>& b) {
  ColorMatrix<T> c{};
  for (int r = 0; r < Nc; ++r)
    for (int k = 0; k < Nc; ++k) {
      const Cplx<T> ark = a.m[r][k];
      for (int j = 0; j < Nc; ++j) fma_acc(c.m[r][j], ark, b.m[k][j]);
    }
  return c;
}

/// C = A† * B
template <typename T>
constexpr ColorMatrix<T> adj_mul(const ColorMatrix<T>& a,
                                 const ColorMatrix<T>& b) {
  ColorMatrix<T> c{};
  for (int r = 0; r < Nc; ++r)
    for (int k = 0; k < Nc; ++k) {
      const Cplx<T> akr = conj(a.m[k][r]);
      for (int j = 0; j < Nc; ++j) fma_acc(c.m[r][j], akr, b.m[k][j]);
    }
  return c;
}

/// C = A * B†
template <typename T>
constexpr ColorMatrix<T> mul_adj(const ColorMatrix<T>& a,
                                 const ColorMatrix<T>& b) {
  ColorMatrix<T> c{};
  for (int r = 0; r < Nc; ++r)
    for (int j = 0; j < Nc; ++j) {
      Cplx<T> s{};
      for (int k = 0; k < Nc; ++k) fma_acc(s, a.m[r][k], conj(b.m[j][k]));
      c.m[r][j] = s;
    }
  return c;
}

/// y = A * x
template <typename T>
constexpr ColorVector<T> mul(const ColorMatrix<T>& a,
                             const ColorVector<T>& x) {
  ColorVector<T> y{};
  for (int r = 0; r < Nc; ++r)
    for (int k = 0; k < Nc; ++k) fma_acc(y.c[r], a.m[r][k], x.c[k]);
  return y;
}

/// y = A† * x
template <typename T>
constexpr ColorVector<T> adj_mul(const ColorMatrix<T>& a,
                                 const ColorVector<T>& x) {
  ColorVector<T> y{};
  for (int r = 0; r < Nc; ++r)
    for (int k = 0; k < Nc; ++k) fma_conj_acc(y.c[r], a.m[k][r], x.c[k]);
  return y;
}

template <typename T>
constexpr ColorMatrix<T> dagger(const ColorMatrix<T>& a) {
  ColorMatrix<T> d{};
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c) d.m[r][c] = conj(a.m[c][r]);
  return d;
}

template <typename T>
constexpr Cplx<T> trace(const ColorMatrix<T>& a) {
  Cplx<T> t{};
  for (int i = 0; i < Nc; ++i) t += a.m[i][i];
  return t;
}

template <typename T>
constexpr T re_trace(const ColorMatrix<T>& a) {
  T t{};
  for (int i = 0; i < Nc; ++i) t += a.m[i][i].re;
  return t;
}

/// Frobenius norm squared.
template <typename T>
constexpr T norm2(const ColorMatrix<T>& a) {
  T s{};
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c) s += norm2(a.m[r][c]);
  return s;
}

template <typename T>
constexpr Cplx<T> det(const ColorMatrix<T>& a) {
  const auto& m = a.m;
  return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
         m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
         m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

/// Traceless anti-hermitian projection: (A - A†)/2 - tr[(A - A†)/2]/Nc.
/// This is the su(3)-algebra projection used by the HMC force.
template <typename T>
constexpr ColorMatrix<T> traceless_antiherm(const ColorMatrix<T>& a) {
  ColorMatrix<T> p{};
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c) {
      const Cplx<T> d = a.m[r][c] - conj(a.m[c][r]);
      p.m[r][c] = Cplx<T>(d.re * T(0.5), d.im * T(0.5));
    }
  const Cplx<T> t = trace(p);
  const Cplx<T> sub(t.re / T(Nc), t.im / T(Nc));
  for (int i = 0; i < Nc; ++i) p.m[i][i] -= sub;
  return p;
}

/// exp(A) by scaling-and-squaring with a 12-term Taylor series.
/// Accurate to machine precision for the anti-hermitian matrices with
/// norm O(1) that arise in HMC link updates.
template <typename T>
ColorMatrix<T> exp_matrix(const ColorMatrix<T>& a) {
  // Scale down so the Taylor series converges fast.
  int squarings = 0;
  T scale = T(1);
  T n = std::sqrt(norm2(a));
  while (n > T(0.5)) {
    n *= T(0.5);
    scale *= T(0.5);
    ++squarings;
  }
  ColorMatrix<T> x = a;
  x *= scale;

  ColorMatrix<T> result = unit_matrix<T>();
  ColorMatrix<T> term = unit_matrix<T>();
  for (int k = 1; k <= 12; ++k) {
    term = mul(term, x);
    term *= T(1) / T(k);
    result += term;
  }
  for (int s = 0; s < squarings; ++s) result = mul(result, result);
  return result;
}

/// Project a matrix back onto SU(3): Gram–Schmidt on the first two rows,
/// third row = conjugate cross product (fixes det = +1 exactly).
template <typename T>
void reunitarize(ColorMatrix<T>& u) {
  // Normalize row 0.
  T n0 = T(0);
  for (int c = 0; c < Nc; ++c) n0 += norm2(u.m[0][c]);
  const T inv0 = T(1) / std::sqrt(n0);
  for (int c = 0; c < Nc; ++c) u.m[0][c] *= inv0;

  // Row 1 -= (row0 . row1) row0; then normalize.
  Cplx<T> p{};
  for (int c = 0; c < Nc; ++c) fma_conj_acc(p, u.m[0][c], u.m[1][c]);
  for (int c = 0; c < Nc; ++c) u.m[1][c] -= p * u.m[0][c];
  T n1 = T(0);
  for (int c = 0; c < Nc; ++c) n1 += norm2(u.m[1][c]);
  const T inv1 = T(1) / std::sqrt(n1);
  for (int c = 0; c < Nc; ++c) u.m[1][c] *= inv1;

  // Row 2 = conj(row0 x row1).
  u.m[2][0] = conj(u.m[0][1] * u.m[1][2] - u.m[0][2] * u.m[1][1]);
  u.m[2][1] = conj(u.m[0][2] * u.m[1][0] - u.m[0][0] * u.m[1][2]);
  u.m[2][2] = conj(u.m[0][0] * u.m[1][1] - u.m[0][1] * u.m[1][0]);
}

/// Deviation from unitarity: || U U† - 1 ||_F.
template <typename T>
T unitarity_error(const ColorMatrix<T>& u) {
  const ColorMatrix<T> w = mul_adj(u, u) - unit_matrix<T>();
  return std::sqrt(norm2(w));
}

/// Haar-ish random SU(3): complex Gaussian entries projected onto the group.
template <typename T>
ColorMatrix<T> random_su3(CounterRng& rng) {
  ColorMatrix<T> u;
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c)
      u.m[r][c] = Cplx<T>(static_cast<T>(rng.gaussian()),
                          static_cast<T>(rng.gaussian()));
  reunitarize(u);
  return u;
}

/// Random element close to the identity: exp(eps * H), H a random
/// anti-hermitian traceless matrix with O(1) entries.
template <typename T>
ColorMatrix<T> random_su3_near_unit(CounterRng& rng, T eps) {
  ColorMatrix<T> h;
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c)
      h.m[r][c] = Cplx<T>(static_cast<T>(rng.gaussian()),
                          static_cast<T>(rng.gaussian()));
  h = traceless_antiherm(h);
  h *= eps;
  ColorMatrix<T> u = exp_matrix(h);
  reunitarize(u);
  return u;
}

/// Gaussian su(3)-algebra element with <|p^a|^2> = 1 per generator
/// (HMC momentum draw): p = sum_a xi_a T_a with xi_a ~ N(0,1) and the
/// standard Gell-Mann normalization tr(T_a T_b) = delta_ab / 2.
template <typename T>
ColorMatrix<T> random_algebra(CounterRng& rng) {
  // Build i * (hermitian traceless Gaussian) directly: draw a Gaussian
  // hermitian traceless H with tr(H^2) = sum xi_a^2 / 2, return i H.
  const T s = static_cast<T>(0.5);
  const T d[2] = {static_cast<T>(rng.gaussian()),
                  static_cast<T>(rng.gaussian())};
  ColorMatrix<T> h{};
  // Off-diagonal generators (6 real parameters).
  for (int r = 0; r < Nc; ++r)
    for (int c = r + 1; c < Nc; ++c) {
      const T x = static_cast<T>(rng.gaussian());
      const T y = static_cast<T>(rng.gaussian());
      h.m[r][c] = Cplx<T>(x * s, -y * s);
      h.m[c][r] = Cplx<T>(x * s, y * s);
    }
  // Diagonal generators: lambda_3 and lambda_8 pattern.
  const T inv_sqrt3 = static_cast<T>(0.57735026918962576451);
  h.m[0][0] += Cplx<T>(s * (d[0] + d[1] * inv_sqrt3));
  h.m[1][1] += Cplx<T>(s * (-d[0] + d[1] * inv_sqrt3));
  h.m[2][2] += Cplx<T>(s * (T(-2) * d[1] * inv_sqrt3));
  // p = i H is anti-hermitian traceless.
  ColorMatrix<T> p{};
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c)
      p.m[r][c] = Cplx<T>(-h.m[r][c].im, h.m[r][c].re);
  return p;
}

using ColorMatrixF = ColorMatrix<float>;
using ColorMatrixD = ColorMatrix<double>;
using ColorVectorF = ColorVector<float>;
using ColorVectorD = ColorVector<double>;

}  // namespace lqcd
