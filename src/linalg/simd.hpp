#pragma once
// SoA lane-packed scalar type for data-parallel site vectorization.
//
// Simd<T, W> behaves like a floating-point scalar carrying W independent
// lanes: every arithmetic operation acts lane-wise, so any kernel
// templated on its scalar type (Cplx<T>, ColorMatrix<T>, WilsonSpinor<T>,
// the gamma-projection tables) instantiates unchanged over Simd<T, W> and
// then processes W lattice sites per "scalar" operation. This is the
// Grid/HILA vectorized-site-layout trick: the data layout (see
// lattice/vector_lattice.hpp) guarantees that all W lanes execute the
// same instruction stream, so per-lane results are bit-identical to the
// scalar kernel run site by site.
//
// Storage: on GCC/Clang, power-of-two widths use the vector_size
// extension, which lowers directly to SIMD registers (and splits across
// registers when W exceeds the ISA width) without relying on the loop
// auto-vectorizer. Everything else — W == 1, non-power-of-two widths,
// other compilers — falls back to a plain lane array with elementwise
// loops; semantics are identical, only codegen differs.
//
// Division, sqrt and comparisons are deliberately absent from the hot
// API: the vectorized kernels (dslash, linear combinations) never divide.
// Reductions (norm2/dot) are *not* performed in the lane domain — the
// canonical summation order is defined over scalar sites (see
// linalg/blas.hpp), so reductions extract lanes first.

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace lqcd {

#if defined(__GNUC__) || defined(__clang__)
#define LQCD_SIMD_VECTOR_EXT 1
#else
#define LQCD_SIMD_VECTOR_EXT 0
#endif

namespace detail_simd {

constexpr bool is_pow2(int w) { return w > 0 && (w & (w - 1)) == 0; }

/// Storage selector: lane array by default, compiler vector type when the
/// width is a power of two and the extension is available.
template <typename T, int W, bool Native>
struct Storage {
  using type = T[W];
};

#if LQCD_SIMD_VECTOR_EXT
template <typename T, int W>
struct Storage<T, W, true> {
  typedef T type __attribute__((vector_size(W * sizeof(T))));
};
#endif

}  // namespace detail_simd

template <typename T, int W>
struct Simd {
  static_assert(std::is_floating_point_v<T>,
                "Simd lanes must be floating point");
  static_assert(W >= 1, "Simd width must be positive");

  using scalar_type = T;
  static constexpr int width = W;
  /// True when storage is a compiler vector type (guaranteed SIMD
  /// codegen); false on the portable lane-array fallback.
  static constexpr bool kNative =
      LQCD_SIMD_VECTOR_EXT != 0 && W > 1 && detail_simd::is_pow2(W) &&
      W * sizeof(T) <= 64;

  typename detail_simd::Storage<T, W, kNative>::type v;

  constexpr Simd() : v{} {}

  /// Broadcast: every lane gets the same value. Implicit so kernel
  /// idioms like `T(pre) * z.re` and `h *= T(0.5)` instantiate.
  template <typename U,
            std::enable_if_t<std::is_arithmetic_v<U>, int> = 0>
  constexpr Simd(U x) : v{} {
    const T t = static_cast<T>(x);
    for (int i = 0; i < W; ++i) v[i] = t;
  }

  [[nodiscard]] constexpr T lane(int i) const { return v[i]; }
  constexpr void set_lane(int i, T x) { v[i] = x; }

  constexpr Simd& operator+=(const Simd& o) {
    if constexpr (kNative) {
      v += o.v;
    } else {
      for (int i = 0; i < W; ++i) v[i] += o.v[i];
    }
    return *this;
  }
  constexpr Simd& operator-=(const Simd& o) {
    if constexpr (kNative) {
      v -= o.v;
    } else {
      for (int i = 0; i < W; ++i) v[i] -= o.v[i];
    }
    return *this;
  }
  constexpr Simd& operator*=(const Simd& o) {
    if constexpr (kNative) {
      v *= o.v;
    } else {
      for (int i = 0; i < W; ++i) v[i] *= o.v[i];
    }
    return *this;
  }

  friend constexpr Simd operator+(Simd a, const Simd& b) { return a += b; }
  friend constexpr Simd operator-(Simd a, const Simd& b) { return a -= b; }
  friend constexpr Simd operator*(Simd a, const Simd& b) { return a *= b; }
  friend constexpr Simd operator-(const Simd& a) {
    Simd r;
    if constexpr (kNative) {
      r.v = -a.v;
    } else {
      for (int i = 0; i < W; ++i) r.v[i] = -a.v[i];
    }
    return r;
  }

  /// All-lanes equality (cold paths and tests only).
  friend constexpr bool operator==(const Simd& a, const Simd& b) {
    for (int i = 0; i < W; ++i)
      if (a.v[i] != b.v[i]) return false;
    return true;
  }
};

namespace detail_simd {

/// Lane-sized signed integer (the element type __builtin_shuffle wants
/// for its mask vector).
template <std::size_t Bytes>
struct int_of_size;
template <>
struct int_of_size<4> {
  using type = std::int32_t;
};
template <>
struct int_of_size<8> {
  using type = std::int64_t;
};

}  // namespace detail_simd

/// r.lane(i) = a.lane(perm[i]) — the lane rotation applied at vector-site
/// wrap boundaries (see VectorLattice ghost filling). On native storage
/// this lowers to a single vector permute; the mask build is hoisted by
/// the compiler when one perm is applied to many components in a row
/// (the ghost-fill access pattern).
template <typename T, int W>
constexpr Simd<T, W> shuffle(const Simd<T, W>& a, const int* perm) {
  Simd<T, W> r;
#if LQCD_SIMD_VECTOR_EXT
  if constexpr (Simd<T, W>::kNative) {
    using I = typename detail_simd::int_of_size<sizeof(T)>::type;
    typedef I Mask __attribute__((vector_size(W * sizeof(T))));
    Mask m;
    for (int i = 0; i < W; ++i) m[i] = perm[i];
    r.v = __builtin_shuffle(a.v, m);
    return r;
  }
#endif
  for (int i = 0; i < W; ++i) r.v[i] = a.v[perm[i]];
  return r;
}

// --- traits ----------------------------------------------------------------

template <typename T>
struct is_simd : std::false_type {};
template <typename T, int W>
struct is_simd<Simd<T, W>> : std::true_type {};
template <typename T>
inline constexpr bool is_simd_v = is_simd<T>::value;

/// Lane count of a scalar type: W for Simd<T, W>, 1 for plain scalars.
template <typename T>
struct simd_width : std::integral_constant<int, 1> {};
template <typename T, int W>
struct simd_width<Simd<T, W>> : std::integral_constant<int, W> {};
template <typename T>
inline constexpr int simd_width_v = simd_width<T>::value;

/// Underlying element type: T for both Simd<T, W> and plain T.
template <typename T>
struct simd_scalar {
  using type = T;
};
template <typename T, int W>
struct simd_scalar<Simd<T, W>> {
  using type = T;
};
template <typename T>
using simd_scalar_t = typename simd_scalar<T>::type;

}  // namespace lqcd
