#pragma once
// Dirac gamma-matrix algebra in the DeGrand–Rossi (chiral) basis — the
// basis QDP/Chroma use. Every gamma_mu has exactly one nonzero entry
// (+-1 or +-i) per row, so the hot-path operations are table driven and
// the spin-projection trick in dslash costs half the naive flops.
//
//   gamma5 = gamma_x gamma_y gamma_z gamma_t = diag(+1, +1, -1, -1),
//
// so chirality blocks are spins {0,1} and {2,3}; sigma_{mu nu} is block
// diagonal in spin, which the clover term exploits.

#include "linalg/cplx.hpp"
#include "linalg/spinor.hpp"

namespace lqcd {

/// One row of a gamma matrix: column index plus an integer phase
/// (pre + i*pim), phase in {1, -1, i, -i}.
struct GammaEntry {
  int col;
  int pre;
  int pim;
};

struct GammaSpec {
  GammaEntry row[4];
};

/// Index 0..3: gamma_{x,y,z,t}; index 4: gamma_5.
inline constexpr GammaSpec kGammaSpec[5] = {
    // gamma_x
    {{{3, 0, 1}, {2, 0, 1}, {1, 0, -1}, {0, 0, -1}}},
    // gamma_y
    {{{3, -1, 0}, {2, 1, 0}, {1, 1, 0}, {0, -1, 0}}},
    // gamma_z
    {{{2, 0, 1}, {3, 0, -1}, {0, 0, -1}, {1, 0, 1}}},
    // gamma_t
    {{{2, 1, 0}, {3, 1, 0}, {0, 1, 0}, {1, 1, 0}}},
    // gamma_5
    {{{0, 1, 0}, {1, 1, 0}, {2, -1, 0}, {3, -1, 0}}},
};

/// z * (pre + i*pim) with integer phase components (constant-folded when
/// the phase is a compile-time constant).
template <typename T>
constexpr Cplx<T> phase_mul(int pre, int pim, const Cplx<T>& z) {
  return Cplx<T>(T(pre) * z.re - T(pim) * z.im,
                 T(pre) * z.im + T(pim) * z.re);
}

/// psi -> gamma_mu psi (mu in 0..4, 4 = gamma5). Cold-path generic form.
template <typename T>
constexpr WilsonSpinor<T> apply_gamma(int mu, const WilsonSpinor<T>& psi) {
  const GammaSpec& g = kGammaSpec[mu];
  WilsonSpinor<T> out;
  for (int r = 0; r < Ns; ++r) {
    const GammaEntry& e = g.row[r];
    for (int c = 0; c < Nc; ++c)
      out.s[r].c[c] = phase_mul(e.pre, e.pim, psi.s[e.col].c[c]);
  }
  return out;
}

template <typename T>
constexpr WilsonSpinor<T> apply_gamma5(const WilsonSpinor<T>& psi) {
  WilsonSpinor<T> out = psi;
  out.s[2] = -psi.s[2];
  out.s[3] = -psi.s[3];
  return out;
}

// ---------------------------------------------------------------------------
// Spin projection for dslash.
//
// For mu in 0..3 the upper rows (0,1) of (1 + s*gamma_mu) determine the
// lower ones: row col[r] equals s*phase[col[r]] times row r. project<>()
// builds the two independent color vectors; accum_reconstruct<>() adds the
// color-multiplied result back into a full spinor.
// ---------------------------------------------------------------------------

/// h = upper two rows of (1 + Sign*gamma_Mu) psi.
template <int Mu, int Sign, typename T>
constexpr HalfSpinor<T> project(const WilsonSpinor<T>& psi) {
  static_assert(Mu >= 0 && Mu < 4 && (Sign == 1 || Sign == -1));
  HalfSpinor<T> h;
  for (int r = 0; r < 2; ++r) {
    const GammaEntry& e = kGammaSpec[Mu].row[r];
    for (int c = 0; c < Nc; ++c)
      h.s[r].c[c] =
          psi.s[r].c[c] +
          phase_mul(Sign * e.pre, Sign * e.pim, psi.s[e.col].c[c]);
  }
  return h;
}

/// out += full reconstruction of (1 + Sign*gamma_Mu)-projected chi.
template <int Mu, int Sign, typename T>
constexpr void accum_reconstruct(WilsonSpinor<T>& out,
                                 const HalfSpinor<T>& chi) {
  static_assert(Mu >= 0 && Mu < 4 && (Sign == 1 || Sign == -1));
  for (int r = 0; r < 2; ++r) {
    const GammaEntry& e = kGammaSpec[Mu].row[r];
    const GammaEntry& lower = kGammaSpec[Mu].row[e.col];
    for (int c = 0; c < Nc; ++c) {
      out.s[r].c[c] += chi.s[r].c[c];
      out.s[e.col].c[c] +=
          phase_mul(Sign * lower.pre, Sign * lower.pim, chi.s[r].c[c]);
    }
  }
}

// ---------------------------------------------------------------------------
// Dense 4x4 spin matrices for cold paths (clover term, contractions).
// ---------------------------------------------------------------------------

struct SpinMatrix {
  Cplxd m[Ns][Ns];
};

/// Dense gamma matrix, mu in 0..3, or 4 for gamma5, or 5 for the identity.
SpinMatrix gamma_matrix(int mu);

SpinMatrix mul(const SpinMatrix& a, const SpinMatrix& b);
SpinMatrix add(const SpinMatrix& a, const SpinMatrix& b);
SpinMatrix scale(const Cplxd& s, const SpinMatrix& a);
SpinMatrix adjoint(const SpinMatrix& a);

/// sigma_{mu nu} = (i/2) [gamma_mu, gamma_nu].
SpinMatrix sigma_munu(int mu, int nu);

/// Frobenius distance between two spin matrices (test helper).
double spin_distance(const SpinMatrix& a, const SpinMatrix& b);

}  // namespace lqcd
