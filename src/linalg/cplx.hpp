#pragma once
// Lightweight complex number for hot kernels.
//
// std::complex pessimizes some arithmetic (NaN-correct multiply, no
// aggregate layout guarantees for vectorization). Cplx<T> is a plain
// aggregate with exactly the operations the kernels need, trivially
// copyable, and convertible between precisions.

#include <cmath>

namespace lqcd {

template <typename T>
struct Cplx {
  T re{};
  T im{};

  constexpr Cplx() = default;
  constexpr Cplx(T r, T i = T(0)) : re(r), im(i) {}

  /// Cross-precision conversion (explicit to avoid silent narrowing).
  template <typename U>
  explicit constexpr Cplx(const Cplx<U>& o)
      : re(static_cast<T>(o.re)), im(static_cast<T>(o.im)) {}

  constexpr Cplx& operator+=(const Cplx& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr Cplx& operator-=(const Cplx& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr Cplx& operator*=(const Cplx& o) {
    const T r = re * o.re - im * o.im;
    im = re * o.im + im * o.re;
    re = r;
    return *this;
  }
  constexpr Cplx& operator*=(T s) {
    re *= s;
    im *= s;
    return *this;
  }

  friend constexpr Cplx operator+(Cplx a, const Cplx& b) { return a += b; }
  friend constexpr Cplx operator-(Cplx a, const Cplx& b) { return a -= b; }
  friend constexpr Cplx operator*(Cplx a, const Cplx& b) { return a *= b; }
  friend constexpr Cplx operator*(Cplx a, T s) { return a *= s; }
  friend constexpr Cplx operator*(T s, Cplx a) { return a *= s; }
  friend constexpr Cplx operator-(const Cplx& a) { return {-a.re, -a.im}; }

  friend constexpr bool operator==(const Cplx& a, const Cplx& b) {
    return a.re == b.re && a.im == b.im;
  }
};

template <typename T>
constexpr Cplx<T> conj(const Cplx<T>& a) {
  return {a.re, -a.im};
}

/// |a|^2
template <typename T>
constexpr T norm2(const Cplx<T>& a) {
  return a.re * a.re + a.im * a.im;
}

template <typename T>
T abs(const Cplx<T>& a) {
  return std::sqrt(norm2(a));
}

/// a * conj(b)
template <typename T>
constexpr Cplx<T> mul_conj(const Cplx<T>& a, const Cplx<T>& b) {
  return {a.re * b.re + a.im * b.im, a.im * b.re - a.re * b.im};
}

/// conj(a) * b
template <typename T>
constexpr Cplx<T> conj_mul(const Cplx<T>& a, const Cplx<T>& b) {
  return {a.re * b.re + a.im * b.im, a.re * b.im - a.im * b.re};
}

/// Fused accumulate: acc += a * b (keeps kernels free of temporaries).
template <typename T>
constexpr void fma_acc(Cplx<T>& acc, const Cplx<T>& a, const Cplx<T>& b) {
  acc.re += a.re * b.re - a.im * b.im;
  acc.im += a.re * b.im + a.im * b.re;
}

/// acc += conj(a) * b
template <typename T>
constexpr void fma_conj_acc(Cplx<T>& acc, const Cplx<T>& a,
                            const Cplx<T>& b) {
  acc.re += a.re * b.re + a.im * b.im;
  acc.im += a.re * b.im - a.im * b.re;
}

/// Complex division (cold paths only).
template <typename T>
constexpr Cplx<T> div(const Cplx<T>& a, const Cplx<T>& b) {
  const T d = norm2(b);
  return {(a.re * b.re + a.im * b.im) / d, (a.im * b.re - a.re * b.im) / d};
}

using Cplxf = Cplx<float>;
using Cplxd = Cplx<double>;

}  // namespace lqcd
