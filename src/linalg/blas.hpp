#pragma once
// Field-level vector operations over spans of Wilson spinors — the
// "level-1 BLAS" the Krylov solvers are built from. All reductions are
// deterministic (fixed chunk combination order) so solver iteration counts
// are reproducible run to run and across thread counts with the same
// chunking.
//
// Canonical summation order. Every reduction (norm2, dot) sums
//   (1) within a site: spin-major, then color, re/im paired — exactly
//       the loop order of lqcd::norm2 / lqcd::dot on one spinor;
//   (2) across sites: ascending checkerboard site index, in the fixed
//       contiguous chunks of ThreadPool::run_chunks, partials combined
//       in thread-id order.
// This order is defined over SCALAR sites and is therefore independent
// of any SIMD lane width: the lane-packed overloads below take the
// VectorLattice gather map and walk the same ascending site order,
// extracting one lane per site, instead of folding an accumulator of
// lane-vector shape (whose combination order would change with W).
// Mixed-precision and block-CG residuals are consequently bit-identical
// between the scalar and vectorized builds at any W.

#include <cstdint>
#include <span>

#include "linalg/lanes.hpp"
#include "linalg/simd.hpp"
#include "linalg/spinor.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd::blas {

template <typename T>
void zero(std::span<WilsonSpinor<T>> x) {
  parallel_for(x.size(), [&](std::size_t i) { x[i] = WilsonSpinor<T>{}; });
}

template <typename T>
void copy(std::span<WilsonSpinor<T>> dst,
          std::span<const WilsonSpinor<T>> src) {
  LQCD_REQUIRE(dst.size() == src.size(), "blas::copy size mismatch");
  parallel_for(dst.size(), [&](std::size_t i) { dst[i] = src[i]; });
}

/// dst = src with precision conversion.
template <typename To, typename From>
void convert(std::span<WilsonSpinor<To>> dst,
             std::span<const WilsonSpinor<From>> src) {
  LQCD_REQUIRE(dst.size() == src.size(), "blas::convert size mismatch");
  parallel_for(dst.size(),
               [&](std::size_t i) { dst[i] = lqcd::convert<To>(src[i]); });
}

template <typename T>
void scale(T a, std::span<WilsonSpinor<T>> x) {
  parallel_for(x.size(), [&](std::size_t i) { x[i] *= a; });
}

/// y += a*x (real a)
template <typename T>
void axpy(T a, std::span<const WilsonSpinor<T>> x,
          std::span<WilsonSpinor<T>> y) {
  LQCD_REQUIRE(x.size() == y.size(), "blas::axpy size mismatch");
  parallel_for(y.size(), [&](std::size_t i) {
    WilsonSpinor<T> t = x[i];
    t *= a;
    y[i] += t;
  });
}

/// y += a*x (complex a)
template <typename T>
void caxpy(Cplx<T> a, std::span<const WilsonSpinor<T>> x,
           std::span<WilsonSpinor<T>> y) {
  LQCD_REQUIRE(x.size() == y.size(), "blas::caxpy size mismatch");
  parallel_for(y.size(), [&](std::size_t i) {
    WilsonSpinor<T> t = x[i];
    t *= a;
    y[i] += t;
  });
}

/// y = x + a*y (real a) — the CG search-direction update.
template <typename T>
void xpay(std::span<const WilsonSpinor<T>> x, T a,
          std::span<WilsonSpinor<T>> y) {
  LQCD_REQUIRE(x.size() == y.size(), "blas::xpay size mismatch");
  parallel_for(y.size(), [&](std::size_t i) {
    WilsonSpinor<T> t = y[i];
    t *= a;
    t += x[i];
    y[i] = t;
  });
}

/// z = x + a*y
template <typename T>
void axpy_to(std::span<const WilsonSpinor<T>> x, T a,
             std::span<const WilsonSpinor<T>> y,
             std::span<WilsonSpinor<T>> z) {
  LQCD_REQUIRE(x.size() == y.size() && x.size() == z.size(),
               "blas::axpy_to size mismatch");
  parallel_for(z.size(), [&](std::size_t i) {
    WilsonSpinor<T> t = y[i];
    t *= a;
    t += x[i];
    z[i] = t;
  });
}

/// ||x||^2 (accumulated in double regardless of T) in the canonical
/// summation order documented at the top of this header.
template <typename T>
double norm2(std::span<const WilsonSpinor<T>> x) {
  return parallel_reduce_sum(x.size(), [&](std::size_t i) {
    return static_cast<double>(lqcd::norm2(x[i]));
  });
}

/// <x, y> = sum conj(x).y (double accumulation), canonical order.
template <typename T>
Cplxd dot(std::span<const WilsonSpinor<T>> x,
          std::span<const WilsonSpinor<T>> y) {
  LQCD_REQUIRE(x.size() == y.size(), "blas::dot size mismatch");
  ThreadPool& pool = ThreadPool::global();
  std::vector<Cplxd> partial(pool.size(), Cplxd{});
  pool.run_chunks(x.size(),
                  [&](std::size_t lo, std::size_t hi, std::size_t tid) {
                    Cplxd s{};
                    for (std::size_t i = lo; i < hi; ++i) {
                      const Cplx<T> d = lqcd::dot(x[i], y[i]);
                      s += Cplxd(static_cast<double>(d.re),
                                 static_cast<double>(d.im));
                    }
                    partial[tid] = s;
                  });
  Cplxd total{};
  for (const auto& p : partial) total += p;
  return total;
}

/// Real part of <x, y> (e.g. for CG with hermitian operators).
template <typename T>
double re_dot(std::span<const WilsonSpinor<T>> x,
              std::span<const WilsonSpinor<T>> y) {
  return dot(x, y).re;
}

// --- lane-packed reductions ------------------------------------------------
//
// Reductions over SoA vector-site fields. `gather` is
// VectorLattice::gather(): gather[site] = vector_site * W + lane for every
// scalar checkerboard site. The loops walk scalar sites in ascending cb
// index and extract one lane per site, so the summation order — and hence
// the result, bit for bit — matches the scalar overloads above for every
// lane width W. Do NOT "optimize" these into lane-vector accumulators
// folded at the end: that changes the order with W and breaks the
// cross-width reproducibility contract.

/// ||x||^2 of a lane-packed field, bit-identical to the scalar norm2.
template <typename T, int W>
double norm2(std::span<const WilsonSpinor<Simd<T, W>>> x,
             std::span<const std::int64_t> gather) {
  return parallel_reduce_sum(gather.size(), [&](std::size_t i) {
    const std::int64_t g = gather[i];
    const auto vs = static_cast<std::size_t>(g / W);
    const int lane = static_cast<int>(g % W);
    return static_cast<double>(lqcd::norm2(extract_lane(x[vs], lane)));
  });
}

/// <x, y> of lane-packed fields, bit-identical to the scalar dot.
template <typename T, int W>
Cplxd dot(std::span<const WilsonSpinor<Simd<T, W>>> x,
          std::span<const WilsonSpinor<Simd<T, W>>> y,
          std::span<const std::int64_t> gather) {
  LQCD_REQUIRE(x.size() == y.size(), "blas::dot size mismatch");
  ThreadPool& pool = ThreadPool::global();
  std::vector<Cplxd> partial(pool.size(), Cplxd{});
  pool.run_chunks(gather.size(),
                  [&](std::size_t lo, std::size_t hi, std::size_t tid) {
                    Cplxd s{};
                    for (std::size_t i = lo; i < hi; ++i) {
                      const std::int64_t g = gather[i];
                      const auto vs = static_cast<std::size_t>(g / W);
                      const int lane = static_cast<int>(g % W);
                      const Cplx<T> d = lqcd::dot(extract_lane(x[vs], lane),
                                                  extract_lane(y[vs], lane));
                      s += Cplxd(static_cast<double>(d.re),
                                 static_cast<double>(d.im));
                    }
                    partial[tid] = s;
                  });
  Cplxd total{};
  for (const auto& p : partial) total += p;
  return total;
}

template <typename T, int W>
double re_dot(std::span<const WilsonSpinor<Simd<T, W>>> x,
              std::span<const WilsonSpinor<Simd<T, W>>> y,
              std::span<const std::int64_t> gather) {
  return dot(x, y, gather).re;
}

// Mutable-span conveniences (std::span does not deduce const
// conversions through templates).
template <typename T>
double norm2(std::span<WilsonSpinor<T>> x) {
  return norm2(std::span<const WilsonSpinor<T>>(x.data(), x.size()));
}
template <typename T>
Cplxd dot(std::span<WilsonSpinor<T>> x, std::span<WilsonSpinor<T>> y) {
  return dot(std::span<const WilsonSpinor<T>>(x.data(), x.size()),
             std::span<const WilsonSpinor<T>>(y.data(), y.size()));
}
template <typename T>
double re_dot(std::span<WilsonSpinor<T>> x, std::span<WilsonSpinor<T>> y) {
  return dot(x, y).re;
}

}  // namespace lqcd::blas
