#include "linalg/gamma.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lqcd {

SpinMatrix gamma_matrix(int mu) {
  LQCD_REQUIRE(mu >= 0 && mu <= 5, "gamma index out of range");
  SpinMatrix g{};
  if (mu == 5) {
    for (int r = 0; r < Ns; ++r) g.m[r][r] = Cplxd(1.0);
    return g;
  }
  const GammaSpec& spec = kGammaSpec[mu];
  for (int r = 0; r < Ns; ++r) {
    const GammaEntry& e = spec.row[r];
    g.m[r][e.col] = Cplxd(static_cast<double>(e.pre),
                          static_cast<double>(e.pim));
  }
  return g;
}

SpinMatrix mul(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix c{};
  for (int r = 0; r < Ns; ++r)
    for (int k = 0; k < Ns; ++k)
      for (int j = 0; j < Ns; ++j) fma_acc(c.m[r][j], a.m[r][k], b.m[k][j]);
  return c;
}

SpinMatrix add(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix c{};
  for (int r = 0; r < Ns; ++r)
    for (int j = 0; j < Ns; ++j) c.m[r][j] = a.m[r][j] + b.m[r][j];
  return c;
}

SpinMatrix scale(const Cplxd& s, const SpinMatrix& a) {
  SpinMatrix c{};
  for (int r = 0; r < Ns; ++r)
    for (int j = 0; j < Ns; ++j) c.m[r][j] = s * a.m[r][j];
  return c;
}

SpinMatrix adjoint(const SpinMatrix& a) {
  SpinMatrix c{};
  for (int r = 0; r < Ns; ++r)
    for (int j = 0; j < Ns; ++j) c.m[r][j] = conj(a.m[j][r]);
  return c;
}

SpinMatrix sigma_munu(int mu, int nu) {
  LQCD_REQUIRE(mu >= 0 && mu < 4 && nu >= 0 && nu < 4, "sigma indices");
  const SpinMatrix gm = gamma_matrix(mu);
  const SpinMatrix gn = gamma_matrix(nu);
  const SpinMatrix comm = add(mul(gm, gn), scale(Cplxd(-1.0), mul(gn, gm)));
  return scale(Cplxd(0.0, 0.5), comm);
}

double spin_distance(const SpinMatrix& a, const SpinMatrix& b) {
  double s = 0.0;
  for (int r = 0; r < Ns; ++r)
    for (int j = 0; j < Ns; ++j) s += norm2(a.m[r][j] - b.m[r][j]);
  return std::sqrt(s);
}

}  // namespace lqcd
