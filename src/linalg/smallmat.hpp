#pragma once
// Small dense complex matrices (the 6x6 chirality blocks of the clover
// term). Gauss–Jordan inversion with partial pivoting; sizes are tiny so
// numerical robustness beats cleverness.

#include <cmath>

#include "linalg/cplx.hpp"
#include "util/error.hpp"

namespace lqcd {

template <typename T, int N>
struct SmallMat {
  Cplx<T> m[N][N];

  constexpr Cplx<T>& operator()(int r, int c) { return m[r][c]; }
  constexpr const Cplx<T>& operator()(int r, int c) const { return m[r][c]; }

  static constexpr SmallMat identity() {
    SmallMat u{};
    for (int i = 0; i < N; ++i) u.m[i][i] = Cplx<T>(T(1));
    return u;
  }
};

template <typename T, int N>
struct SmallVec {
  Cplx<T> v[N];
};

template <typename T, int N>
constexpr SmallVec<T, N> mul(const SmallMat<T, N>& a,
                             const SmallVec<T, N>& x) {
  SmallVec<T, N> y{};
  for (int r = 0; r < N; ++r)
    for (int k = 0; k < N; ++k) fma_acc(y.v[r], a.m[r][k], x.v[k]);
  return y;
}

template <typename T, int N>
constexpr SmallMat<T, N> mul(const SmallMat<T, N>& a,
                             const SmallMat<T, N>& b) {
  SmallMat<T, N> c{};
  for (int r = 0; r < N; ++r)
    for (int k = 0; k < N; ++k)
      for (int j = 0; j < N; ++j) fma_acc(c.m[r][j], a.m[r][k], b.m[k][j]);
  return c;
}

template <typename T, int N>
T frobenius_norm(const SmallMat<T, N>& a) {
  T s{};
  for (int r = 0; r < N; ++r)
    for (int c = 0; c < N; ++c) s += norm2(a.m[r][c]);
  return std::sqrt(s);
}

/// Gauss–Jordan inverse with partial pivoting.
/// Throws lqcd::Error on a (numerically) singular matrix.
template <typename T, int N>
SmallMat<T, N> inverse(const SmallMat<T, N>& a) {
  SmallMat<T, N> w = a;
  SmallMat<T, N> inv = SmallMat<T, N>::identity();
  for (int col = 0; col < N; ++col) {
    // Pivot: largest |entry| on or below the diagonal.
    int piv = col;
    T best = norm2(w.m[col][col]);
    for (int r = col + 1; r < N; ++r) {
      const T v = norm2(w.m[r][col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    LQCD_REQUIRE(best > T(0), "singular matrix in SmallMat inverse");
    if (piv != col)
      for (int c = 0; c < N; ++c) {
        const Cplx<T> tw = w.m[col][c];
        w.m[col][c] = w.m[piv][c];
        w.m[piv][c] = tw;
        const Cplx<T> ti = inv.m[col][c];
        inv.m[col][c] = inv.m[piv][c];
        inv.m[piv][c] = ti;
      }
    // Scale pivot row.
    const Cplx<T> d = w.m[col][col];
    for (int c = 0; c < N; ++c) {
      w.m[col][c] = div(w.m[col][c], d);
      inv.m[col][c] = div(inv.m[col][c], d);
    }
    // Eliminate other rows.
    for (int r = 0; r < N; ++r) {
      if (r == col) continue;
      const Cplx<T> f = w.m[r][col];
      if (f.re == T(0) && f.im == T(0)) continue;
      for (int c = 0; c < N; ++c) {
        w.m[r][c] -= f * w.m[col][c];
        inv.m[r][c] -= f * inv.m[col][c];
      }
    }
  }
  return inv;
}

}  // namespace lqcd
