#pragma once
// Wilson spinors: 4 spin x 3 color complex components per site, plus the
// 2-spin "half spinor" used by the spin-projection trick in dslash.

#include "linalg/cplx.hpp"
#include "linalg/su3.hpp"

namespace lqcd {

inline constexpr int Ns = 4;  ///< number of spin components

template <typename T>
struct WilsonSpinor {
  ColorVector<T> s[Ns];

  constexpr ColorVector<T>& operator[](int sp) { return s[sp]; }
  constexpr const ColorVector<T>& operator[](int sp) const { return s[sp]; }

  constexpr WilsonSpinor& operator+=(const WilsonSpinor& o) {
    for (int sp = 0; sp < Ns; ++sp) s[sp] += o.s[sp];
    return *this;
  }
  constexpr WilsonSpinor& operator-=(const WilsonSpinor& o) {
    for (int sp = 0; sp < Ns; ++sp) s[sp] -= o.s[sp];
    return *this;
  }
  constexpr WilsonSpinor& operator*=(T a) {
    for (int sp = 0; sp < Ns; ++sp) s[sp] *= a;
    return *this;
  }
  constexpr WilsonSpinor& operator*=(const Cplx<T>& a) {
    for (int sp = 0; sp < Ns; ++sp) s[sp] *= a;
    return *this;
  }
  friend constexpr WilsonSpinor operator+(WilsonSpinor a,
                                          const WilsonSpinor& b) {
    return a += b;
  }
  friend constexpr WilsonSpinor operator-(WilsonSpinor a,
                                          const WilsonSpinor& b) {
    return a -= b;
  }
  friend constexpr WilsonSpinor operator*(T s, WilsonSpinor a) {
    return a *= s;
  }
  friend constexpr WilsonSpinor operator*(Cplx<T> s, WilsonSpinor a) {
    return a *= s;
  }
  friend constexpr WilsonSpinor operator-(const WilsonSpinor& a) {
    WilsonSpinor r;
    for (int sp = 0; sp < Ns; ++sp) r.s[sp] = -a.s[sp];
    return r;
  }
};

/// conj(a) . b over all spin-color components.
template <typename T>
constexpr Cplx<T> dot(const WilsonSpinor<T>& a, const WilsonSpinor<T>& b) {
  Cplx<T> acc{};
  for (int sp = 0; sp < Ns; ++sp) acc += dot(a.s[sp], b.s[sp]);
  return acc;
}

template <typename T>
constexpr T norm2(const WilsonSpinor<T>& a) {
  T acc{};
  for (int sp = 0; sp < Ns; ++sp) acc += norm2(a.s[sp]);
  return acc;
}

/// Apply a color matrix to every spin component.
template <typename T>
constexpr WilsonSpinor<T> mul(const ColorMatrix<T>& u,
                              const WilsonSpinor<T>& x) {
  WilsonSpinor<T> y;
  for (int sp = 0; sp < Ns; ++sp) y.s[sp] = mul(u, x.s[sp]);
  return y;
}

template <typename T>
constexpr WilsonSpinor<T> adj_mul(const ColorMatrix<T>& u,
                                  const WilsonSpinor<T>& x) {
  WilsonSpinor<T> y;
  for (int sp = 0; sp < Ns; ++sp) y.s[sp] = adj_mul(u, x.s[sp]);
  return y;
}

/// Cross-precision conversion.
template <typename To, typename From>
constexpr WilsonSpinor<To> convert(const WilsonSpinor<From>& x) {
  WilsonSpinor<To> y;
  for (int sp = 0; sp < Ns; ++sp)
    for (int c = 0; c < Nc; ++c) y.s[sp].c[c] = Cplx<To>(x.s[sp].c[c]);
  return y;
}

/// Two-spin half spinor for the dslash projection trick.
template <typename T>
struct HalfSpinor {
  ColorVector<T> s[2];
};

using WilsonSpinorF = WilsonSpinor<float>;
using WilsonSpinorD = WilsonSpinor<double>;

}  // namespace lqcd
