#pragma once
// 4-D periodic lattice geometry with even/odd (checkerboard) site layout.
//
// Site storage order is checkerboarded, as in Chroma/QUDA: all even-parity
// sites first, then all odd-parity sites. The even-odd preconditioned
// Dirac operators then act on contiguous half-volume spans. Within a
// parity, sites are ordered by lexicographic index / 2 (valid because the
// x extent is required to be even).
//
// Directions are indexed 0=x, 1=y, 2=z, 3=t. Forward/backward neighbor
// tables are precomputed in checkerboard index space.

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace lqcd {

inline constexpr int Nd = 4;  ///< space-time dimensions

using Coord = std::array<int, Nd>;

class LatticeGeometry {
 public:
  /// All extents must be >= 2 and even (checkerboarding requirement).
  explicit LatticeGeometry(const Coord& dims);

  [[nodiscard]] const Coord& dims() const noexcept { return dims_; }
  [[nodiscard]] int dim(int mu) const noexcept { return dims_[mu]; }
  [[nodiscard]] std::int64_t volume() const noexcept { return volume_; }
  [[nodiscard]] std::int64_t half_volume() const noexcept {
    return volume_ / 2;
  }

  /// Lexicographic index: x + X*(y + Y*(z + Z*t)).
  [[nodiscard]] std::int64_t lex_index(const Coord& x) const noexcept {
    return x[0] +
           static_cast<std::int64_t>(dims_[0]) *
               (x[1] + static_cast<std::int64_t>(dims_[1]) *
                           (x[2] + static_cast<std::int64_t>(dims_[2]) *
                                       x[3]));
  }

  /// Site parity: (x+y+z+t) mod 2.
  [[nodiscard]] static int parity(const Coord& x) noexcept {
    return (x[0] + x[1] + x[2] + x[3]) & 1;
  }

  /// Checkerboard (storage) index of a coordinate.
  [[nodiscard]] std::int64_t cb_index(const Coord& x) const noexcept {
    return parity(x) * half_volume() + lex_index(x) / 2;
  }

  /// Parity of a checkerboard index (0 = even block, 1 = odd block).
  [[nodiscard]] int parity_of(std::int64_t cb) const noexcept {
    return cb < half_volume() ? 0 : 1;
  }

  /// Coordinate of a checkerboard index.
  [[nodiscard]] Coord coords(std::int64_t cb) const noexcept {
    return coords_[static_cast<std::size_t>(cb)];
  }

  /// Forward neighbor (x + mu-hat, periodic wrap) in cb index space.
  [[nodiscard]] std::int64_t fwd(std::int64_t cb, int mu) const noexcept {
    return fwd_[mu][static_cast<std::size_t>(cb)];
  }
  /// Backward neighbor (x - mu-hat, periodic wrap) in cb index space.
  [[nodiscard]] std::int64_t bwd(std::int64_t cb, int mu) const noexcept {
    return bwd_[mu][static_cast<std::size_t>(cb)];
  }

  /// True if stepping forward from cb in direction mu wraps the boundary.
  [[nodiscard]] bool fwd_wraps(std::int64_t cb, int mu) const noexcept {
    return coords_[static_cast<std::size_t>(cb)][mu] == dims_[mu] - 1;
  }
  /// True if stepping backward from cb in direction mu wraps the boundary.
  [[nodiscard]] bool bwd_wraps(std::int64_t cb, int mu) const noexcept {
    return coords_[static_cast<std::size_t>(cb)][mu] == 0;
  }

  friend bool operator==(const LatticeGeometry& a, const LatticeGeometry& b) {
    return a.dims_ == b.dims_;
  }

 private:
  Coord dims_;
  std::int64_t volume_;
  std::vector<Coord> coords_;              // cb index -> coordinate
  std::array<std::vector<std::int64_t>, Nd> fwd_;
  std::array<std::vector<std::int64_t>, Nd> bwd_;
};

}  // namespace lqcd
