#pragma once
// Generic per-site field container over a LatticeGeometry.
//
// The field does not own the geometry; callers keep the geometry alive for
// the lifetime of all fields on it (it is a large shared immutable object,
// typically owned by the lqcd::Context facade).

#include <span>

#include "lattice/geometry.hpp"
#include "linalg/spinor.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace lqcd {

template <typename SiteT>
class Field {
 public:
  explicit Field(const LatticeGeometry& geo)
      : geo_(&geo), data_(static_cast<std::size_t>(geo.volume())) {}

  [[nodiscard]] const LatticeGeometry& geometry() const noexcept {
    return *geo_;
  }
  [[nodiscard]] std::int64_t volume() const noexcept {
    return geo_->volume();
  }

  SiteT& operator[](std::int64_t cb) {
    return data_[static_cast<std::size_t>(cb)];
  }
  const SiteT& operator[](std::int64_t cb) const {
    return data_[static_cast<std::size_t>(cb)];
  }

  /// Whole-field views.
  [[nodiscard]] std::span<SiteT> span() noexcept { return {data_}; }
  [[nodiscard]] std::span<const SiteT> span() const noexcept {
    return {data_};
  }

  /// Checkerboard halves: parity 0 = even block, 1 = odd block.
  [[nodiscard]] std::span<SiteT> parity_span(int p) noexcept {
    const auto hv = static_cast<std::size_t>(geo_->half_volume());
    return std::span<SiteT>(data_).subspan(p == 0 ? 0 : hv, hv);
  }
  [[nodiscard]] std::span<const SiteT> parity_span(int p) const noexcept {
    const auto hv = static_cast<std::size_t>(geo_->half_volume());
    return std::span<const SiteT>(data_).subspan(p == 0 ? 0 : hv, hv);
  }

  void set_zero() {
    for (auto& s : data_) s = SiteT{};
  }

  /// Raw storage (I/O, checksums).
  [[nodiscard]] const SiteT* data() const noexcept { return data_.data(); }
  [[nodiscard]] SiteT* data() noexcept { return data_.data(); }

 private:
  const LatticeGeometry* geo_;
  aligned_vector<SiteT> data_;
};

template <typename T>
using FermionField = Field<WilsonSpinor<T>>;

using FermionFieldF = FermionField<float>;
using FermionFieldD = FermionField<double>;

}  // namespace lqcd
