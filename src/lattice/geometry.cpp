#include "lattice/geometry.hpp"

namespace lqcd {

LatticeGeometry::LatticeGeometry(const Coord& dims) : dims_(dims) {
  volume_ = 1;
  for (int mu = 0; mu < Nd; ++mu) {
    LQCD_REQUIRE(dims_[mu] >= 2, "lattice extent must be >= 2");
    LQCD_REQUIRE(dims_[mu] % 2 == 0,
                 "lattice extents must be even for checkerboarding");
    volume_ *= dims_[mu];
  }

  const auto vol = static_cast<std::size_t>(volume_);
  coords_.resize(vol);
  for (int mu = 0; mu < Nd; ++mu) {
    fwd_[mu].resize(vol);
    bwd_[mu].resize(vol);
  }

  // Enumerate all sites by coordinate; fill coordinate and neighbor tables
  // in checkerboard index space.
  Coord x{};
  for (x[3] = 0; x[3] < dims_[3]; ++x[3])
    for (x[2] = 0; x[2] < dims_[2]; ++x[2])
      for (x[1] = 0; x[1] < dims_[1]; ++x[1])
        for (x[0] = 0; x[0] < dims_[0]; ++x[0]) {
          const std::int64_t cb = cb_index(x);
          coords_[static_cast<std::size_t>(cb)] = x;
          for (int mu = 0; mu < Nd; ++mu) {
            Coord xp = x;
            xp[mu] = (x[mu] + 1) % dims_[mu];
            Coord xm = x;
            xm[mu] = (x[mu] - 1 + dims_[mu]) % dims_[mu];
            fwd_[mu][static_cast<std::size_t>(cb)] = cb_index(xp);
            bwd_[mu][static_cast<std::size_t>(cb)] = cb_index(xm);
          }
        }
}

}  // namespace lqcd
