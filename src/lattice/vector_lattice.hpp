#pragma once
// Vector-site (SoA lane) packing of a checkerboarded lattice.
//
// A VectorLattice decomposes the scalar lattice into W congruent
// sub-lattices and packs one site of each into the W lanes of a vector
// site: pick per-dimension split factors S[mu] with prod S[mu] = W, outer
// extents O[mu] = L[mu] / S[mu], and assign global coordinate
//
//   x[mu] = o[mu] + O[mu] * c[mu],   o = outer coordinate, c = lane coord
//
// (the Grid-style block decomposition). Every lane of a vector site then
// has the SAME parity (O[mu] is required even) and the SAME neighbor
// topology: the mu-neighbor of all W lanes lives in one neighbor vector
// site, so a scalar site kernel templated on its scalar type runs
// unchanged over Simd<T, W> and advances W sites at once.
//
// The one exception is the outer wrap: stepping off o[mu] = O[mu]-1
// lands on o[mu] = 0 with the lane coordinate rotated by one (the global
// periodic wrap is the rotation of the last lane). Rather than permuting
// lanes inside the kernel, the wrap neighbors point at GHOST vector
// sites appended after the inner sites; fill_ghosts() materializes them
// as lane-rotated copies of their owners before each stencil sweep.
// This is the lane-level analogue of a halo exchange, and it composes
// with the real halo machinery untouched: src/comm/ exchanges scalar
// sites, and the pack/unpack boundary sits inside the node.
//
// Supported widths: powers of two for which every factor of 2 can be
// placed on some dimension keeping O[mu] even. Four even extents make
// the volume divisible by 16, so a genuine volume % W remainder cannot
// occur for W <= 16; the unsupported cases are indivisible *extents*
// (e.g. 2^4 at W = 8, or 6 split by 4), and callers fall back to the
// scalar path then (VectorLattice::make returns nullopt).

#include <optional>
#include <span>
#include <vector>

#include "lattice/geometry.hpp"
#include "linalg/lanes.hpp"
#include "linalg/simd.hpp"
#include "linalg/spinor.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

class VectorLattice {
 public:
  /// Build a W-lane packing of `geo`, or nullopt if no per-dimension
  /// split with even outer extents exists (then use the scalar path).
  static std::optional<VectorLattice> make(const LatticeGeometry& geo,
                                           int width) {
    Coord lanes{};
    if (!choose_splits(geo.dims(), width, lanes)) return std::nullopt;
    return VectorLattice(geo, width, lanes);
  }

  static bool supports(const LatticeGeometry& geo, int width) {
    Coord lanes{};
    return choose_splits(geo.dims(), width, lanes);
  }

  [[nodiscard]] const LatticeGeometry& scalar_geometry() const noexcept {
    return *geo_;
  }
  [[nodiscard]] const LatticeGeometry& outer_geometry() const noexcept {
    return outer_;
  }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] const Coord& lane_dims() const noexcept { return lanes_; }

  /// Inner (owned) vector sites: outer volume, checkerboard-ordered.
  [[nodiscard]] std::int64_t inner_sites() const noexcept {
    return outer_.volume();
  }
  /// Inner + ghost sites — the allocation size of packed fields.
  [[nodiscard]] std::int64_t total_sites() const noexcept {
    return inner_sites() + static_cast<std::int64_t>(ghosts_.size());
  }
  [[nodiscard]] std::int64_t ghost_sites() const noexcept {
    return static_cast<std::int64_t>(ghosts_.size());
  }

  /// Neighbor tables over vector sites; results index the EXTENDED site
  /// range [0, total_sites()): wrap neighbors resolve to ghost slots.
  [[nodiscard]] std::int64_t fwd(std::int64_t vo, int mu) const noexcept {
    return fwd_[mu][static_cast<std::size_t>(vo)];
  }
  [[nodiscard]] std::int64_t bwd(std::int64_t vo, int mu) const noexcept {
    return bwd_[mu][static_cast<std::size_t>(vo)];
  }

  /// Scalar checkerboard site held in lane `l` of vector site `vo`.
  [[nodiscard]] std::int64_t site_of(std::int64_t vo, int l) const noexcept {
    return site_of_[static_cast<std::size_t>(vo) *
                        static_cast<std::size_t>(width_) +
                    static_cast<std::size_t>(l)];
  }
  /// Inverse map: gather()[site] = vo * width + lane.
  [[nodiscard]] std::span<const std::int64_t> gather() const noexcept {
    return {gather_};
  }

  /// Materialize the ghost sites of `f` as lane-permuted copies of their
  /// owners. `parity` = 0/1 refreshes only ghosts owned by that parity
  /// (all a parity-restricted stencil sweep reads); -1 refreshes all.
  /// Site must be a lane-packed type of this lattice's width with a
  /// shuffle(Site, const int*) overload (see linalg/lanes.hpp).
  template <typename Site>
  void fill_ghosts(std::span<Site> f, int parity = -1) const {
    LQCD_REQUIRE(f.size() == static_cast<std::size_t>(total_sites()),
                 "fill_ghosts span must cover inner + ghost sites");
    const std::int64_t base = inner_sites();
    parallel_for(ghosts_.size(), [&](std::size_t g) {
      const Ghost& gh = ghosts_[g];
      if (parity >= 0 && gh.parity != parity) return;
      f[static_cast<std::size_t>(base) + g] =
          shuffle(f[static_cast<std::size_t>(gh.owner)],
                  perms_[static_cast<std::size_t>(gh.perm)].data());
    });
  }

 private:
  struct Ghost {
    std::int64_t owner;  ///< inner vector site this ghost copies
    int perm;            ///< index into perms_
    int parity;          ///< owner parity (what a sweep reads)
  };

  /// Greedy factor-of-two placement: each factor goes to the dimension
  /// with the largest remaining outer extent whose half is still even
  /// (ties prefer higher mu, i.e. t before z before y before x).
  static bool choose_splits(const Coord& dims, int width, Coord& lanes) {
    lanes = {1, 1, 1, 1};
    if (width < 1 || (width & (width - 1)) != 0) return false;
    int rem = width;
    while (rem > 1) {
      int best = -1;
      int best_outer = 0;
      for (int mu = 0; mu < Nd; ++mu) {
        const int outer = dims[mu] / lanes[mu];
        const int next = outer / 2;
        if (outer % 2 == 0 && next % 2 == 0 && outer >= best_outer) {
          best = mu;
          best_outer = outer;
        }
      }
      if (best < 0) return false;
      lanes[best] *= 2;
      rem /= 2;
    }
    return true;
  }

  static Coord outer_dims(const Coord& dims, const Coord& lanes) {
    Coord o{};
    for (int mu = 0; mu < Nd; ++mu) o[mu] = dims[mu] / lanes[mu];
    return o;
  }

  VectorLattice(const LatticeGeometry& geo, int width, const Coord& lanes)
      : geo_(&geo), outer_(outer_dims(geo.dims(), lanes)), width_(width),
        lanes_(lanes) {
    const std::int64_t n = outer_.volume();
    const std::size_t w = static_cast<std::size_t>(width_);

    // Lane coordinate of lane index l (x fastest).
    auto lane_coords = [&](int l) {
      Coord c{};
      for (int mu = 0; mu < Nd; ++mu) {
        c[mu] = l % lanes_[mu];
        l /= lanes_[mu];
      }
      return c;
    };
    auto lane_index = [&](const Coord& c) {
      int l = 0;
      for (int mu = Nd - 1; mu >= 0; --mu) l = l * lanes_[mu] + c[mu];
      return l;
    };

    // Scalar-site map (and its inverse).
    site_of_.resize(static_cast<std::size_t>(n) * w);
    gather_.resize(static_cast<std::size_t>(geo_->volume()));
    for (std::int64_t vo = 0; vo < n; ++vo) {
      const Coord o = outer_.coords(vo);
      for (int l = 0; l < width_; ++l) {
        const Coord c = lane_coords(l);
        Coord x{};
        for (int mu = 0; mu < Nd; ++mu)
          x[mu] = o[mu] + outer_.dim(mu) * c[mu];
        const std::int64_t site = geo_->cb_index(x);
        // Even outer extents make every lane share the outer parity, so
        // vector sites checkerboard exactly like scalar sites.
        LQCD_ASSERT(LatticeGeometry::parity(x) == outer_.parity_of(vo),
                    "lane parity must match outer parity");
        site_of_[static_cast<std::size_t>(vo) * w +
                 static_cast<std::size_t>(l)] = site;
        gather_[static_cast<std::size_t>(site)] =
            vo * width_ + static_cast<std::int64_t>(l);
      }
    }

    // Wrap-boundary lane rotations: stepping forward off the outer edge
    // advances the lane coordinate in that dimension (and the last lane
    // wraps to the first — the global periodic boundary).
    std::array<int, Nd> perm_fwd{}, perm_bwd{};
    for (int mu = 0; mu < Nd; ++mu) {
      perm_fwd[mu] = perm_bwd[mu] = -1;
      if (lanes_[mu] == 1) continue;
      std::vector<int> pf(w), pb(w);
      for (int l = 0; l < width_; ++l) {
        Coord c = lane_coords(l);
        c[mu] = (c[mu] + 1) % lanes_[mu];
        pf[static_cast<std::size_t>(l)] = lane_index(c);
        c = lane_coords(l);
        c[mu] = (c[mu] + lanes_[mu] - 1) % lanes_[mu];
        pb[static_cast<std::size_t>(l)] = lane_index(c);
      }
      perm_fwd[mu] = static_cast<int>(perms_.size());
      perms_.push_back(std::move(pf));
      perm_bwd[mu] = static_cast<int>(perms_.size());
      perms_.push_back(std::move(pb));
    }

    // Neighbor tables; wrap neighbors in split dimensions get ghosts.
    for (int mu = 0; mu < Nd; ++mu) {
      fwd_[mu].resize(static_cast<std::size_t>(n));
      bwd_[mu].resize(static_cast<std::size_t>(n));
      for (std::int64_t vo = 0; vo < n; ++vo) {
        const std::int64_t fw = outer_.fwd(vo, mu);
        const std::int64_t bw = outer_.bwd(vo, mu);
        if (lanes_[mu] == 1 || !outer_.fwd_wraps(vo, mu)) {
          fwd_[mu][static_cast<std::size_t>(vo)] = fw;
        } else {
          fwd_[mu][static_cast<std::size_t>(vo)] =
              n + static_cast<std::int64_t>(ghosts_.size());
          ghosts_.push_back({fw, perm_fwd[mu], outer_.parity_of(fw)});
        }
        if (lanes_[mu] == 1 || !outer_.bwd_wraps(vo, mu)) {
          bwd_[mu][static_cast<std::size_t>(vo)] = bw;
        } else {
          bwd_[mu][static_cast<std::size_t>(vo)] =
              n + static_cast<std::int64_t>(ghosts_.size());
          ghosts_.push_back({bw, perm_bwd[mu], outer_.parity_of(bw)});
        }
      }
    }
  }

  const LatticeGeometry* geo_;
  LatticeGeometry outer_;
  int width_;
  Coord lanes_;
  std::vector<std::int64_t> site_of_;
  std::vector<std::int64_t> gather_;
  std::array<std::vector<std::int64_t>, Nd> fwd_;
  std::array<std::vector<std::int64_t>, Nd> bwd_;
  std::vector<Ghost> ghosts_;
  std::vector<std::vector<int>> perms_;
};

// --- layout transposes -----------------------------------------------------

/// Scalar AoS field -> lane-packed SoA field (inner sites only; call
/// fill_ghosts afterwards). `in` spans the full scalar volume.
template <typename T, int W>
void pack_sites(const VectorLattice& vl,
                std::span<const WilsonSpinor<T>> in,
                std::span<WilsonSpinor<Simd<T, W>>> out) {
  LQCD_REQUIRE(W == vl.width() &&
                   in.size() ==
                       static_cast<std::size_t>(
                           vl.scalar_geometry().volume()) &&
                   out.size() >= static_cast<std::size_t>(vl.inner_sites()),
               "pack_sites span sizes");
  parallel_for(static_cast<std::size_t>(vl.inner_sites()),
               [&](std::size_t vo) {
                 for (int l = 0; l < W; ++l)
                   insert_lane(
                       out[vo], l,
                       in[static_cast<std::size_t>(
                           vl.site_of(static_cast<std::int64_t>(vo), l))]);
               });
}

/// Lane-packed SoA field -> scalar AoS field (inner sites only).
template <typename T, int W>
void unpack_sites(const VectorLattice& vl,
                  std::span<const WilsonSpinor<Simd<T, W>>> in,
                  std::span<WilsonSpinor<T>> out) {
  LQCD_REQUIRE(W == vl.width() &&
                   out.size() ==
                       static_cast<std::size_t>(
                           vl.scalar_geometry().volume()) &&
                   in.size() >= static_cast<std::size_t>(vl.inner_sites()),
               "unpack_sites span sizes");
  parallel_for(static_cast<std::size_t>(vl.inner_sites()),
               [&](std::size_t vo) {
                 for (int l = 0; l < W; ++l)
                   out[static_cast<std::size_t>(
                       vl.site_of(static_cast<std::int64_t>(vo), l))] =
                       extract_lane(in[vo], l);
               });
}

/// Pack one checkerboard half: `in` is a scalar half-volume span (parity
/// p block), written into the parity-p block of the packed field.
template <typename T, int W>
void pack_parity(const VectorLattice& vl,
                 std::span<const WilsonSpinor<T>> in,
                 std::span<WilsonSpinor<Simd<T, W>>> out, int p) {
  const std::int64_t hv_o = vl.outer_geometry().half_volume();
  const std::int64_t hv_s = vl.scalar_geometry().half_volume();
  LQCD_REQUIRE(W == vl.width() &&
                   in.size() == static_cast<std::size_t>(hv_s) &&
                   out.size() >= static_cast<std::size_t>(vl.inner_sites()),
               "pack_parity span sizes");
  const std::int64_t base = p == 0 ? 0 : hv_o;
  parallel_for(static_cast<std::size_t>(hv_o), [&](std::size_t i) {
    const std::int64_t vo = base + static_cast<std::int64_t>(i);
    for (int l = 0; l < W; ++l)
      insert_lane(out[static_cast<std::size_t>(vo)], l,
                  in[static_cast<std::size_t>(vl.site_of(vo, l) -
                                              (p == 0 ? 0 : hv_s))]);
  });
}

/// Unpack one checkerboard half into a scalar half-volume span.
template <typename T, int W>
void unpack_parity(const VectorLattice& vl,
                   std::span<const WilsonSpinor<Simd<T, W>>> in,
                   std::span<WilsonSpinor<T>> out, int p) {
  const std::int64_t hv_o = vl.outer_geometry().half_volume();
  const std::int64_t hv_s = vl.scalar_geometry().half_volume();
  LQCD_REQUIRE(W == vl.width() &&
                   out.size() == static_cast<std::size_t>(hv_s) &&
                   in.size() >= static_cast<std::size_t>(vl.inner_sites()),
               "unpack_parity span sizes");
  const std::int64_t base = p == 0 ? 0 : hv_o;
  parallel_for(static_cast<std::size_t>(hv_o), [&](std::size_t i) {
    const std::int64_t vo = base + static_cast<std::int64_t>(i);
    for (int l = 0; l < W; ++l)
      out[static_cast<std::size_t>(vl.site_of(vo, l) -
                                   (p == 0 ? 0 : hv_s))] =
          extract_lane(in[static_cast<std::size_t>(vo)], l);
  });
}

}  // namespace lqcd
