#include "parallel/thread_pool.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace lqcd {

namespace {
std::size_t default_threads() {
  if (const char* env = std::getenv("LQCD_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

// Contiguous chunk [lo, hi) for worker `tid` of `nthreads` over range n.
void chunk_bounds(std::size_t n, std::size_t nthreads, std::size_t tid,
                  std::size_t& lo, std::size_t& hi) {
  const std::size_t base = n / nthreads;
  const std::size_t rem = n % nthreads;
  lo = tid * base + (tid < rem ? tid : rem);
  hi = lo + base + (tid < rem ? 1 : 0);
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : nthreads_(threads == 0 ? default_threads() : threads) {
  // Worker 0 is the caller; spawn nthreads_-1 helpers.
  workers_.reserve(nthreads_ - 1);
  for (std::size_t t = 1; t < nthreads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t tid) {
  std::size_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* job;
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      n = job_n_;
    }
    std::size_t lo, hi;
    chunk_bounds(n, nthreads_, tid, lo, hi);
    std::exception_ptr err;
    if (lo < hi) {
      try {
        (*job)(lo, hi, tid);
      } catch (...) {
        err = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (err && !first_error_) first_error_ = err;
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  // Mark the region active for the whole call (exception-safe), so
  // busy() covers the serial fast path too — set_global_threads relies
  // on it to refuse swapping a pool that is mid-region.
  struct RegionGuard {
    std::atomic<int>& count;
    explicit RegionGuard(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~RegionGuard() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } guard(active_regions_);
  if (nthreads_ == 1 || n == 0) {
    if (n > 0) body(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &body;
    job_n_ = n;
    pending_ = nthreads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();

  // Caller is worker 0.
  std::size_t lo, hi;
  chunk_bounds(n, nthreads_, 0, lo, hi);
  std::exception_ptr my_err;
  if (lo < hi) {
    try {
      body(lo, hi, 0);
    } catch (...) {
      my_err = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
  job_ = nullptr;
  if (my_err && !first_error_) first_error_ = my_err;
  if (first_error_) std::rethrow_exception(first_error_);
}

namespace {
std::atomic<ThreadPool*>& global_pool_slot() {
  static std::atomic<ThreadPool*> pool{nullptr};
  return pool;
}
std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  auto& slot = global_pool_slot();
  ThreadPool* p = slot.load(std::memory_order_acquire);
  if (!p) {
    // Double-checked creation: two threads racing to the first
    // parallel_for must agree on one pool.
    std::lock_guard<std::mutex> lock(global_pool_mutex());
    p = slot.load(std::memory_order_relaxed);
    if (!p) {
      p = new ThreadPool();
      slot.store(p, std::memory_order_release);
    }
  }
  return *p;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  ThreadPool* old = slot.load(std::memory_order_acquire);
  // Deleting the pool joins its workers; doing that from inside one of
  // its own parallel regions deadlocks (or leaves peers touching freed
  // state). Refuse instead of corrupting.
  LQCD_REQUIRE(!old || !old->busy(),
               "set_global_threads while a parallel region is active");
  slot.store(nullptr, std::memory_order_release);
  delete old;  // joins the old workers
  slot.store(new ThreadPool(threads), std::memory_order_release);
}

}  // namespace lqcd
