#pragma once
// Persistent worker-thread pool with a fork-join parallel_for.
//
// This is the on-node threading substrate (the role OpenMP plays in
// Chroma-class codes). Workers are created once and parked on a condition
// variable; parallel_for partitions an index range into contiguous chunks
// (one per worker) so lattice traversals stay cache-friendly and
// deterministic: the chunk assignment depends only on (range, nthreads),
// never on scheduling, so reductions are reproducible.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lqcd {

class ThreadPool {
 public:
  /// `threads` = total workers including the calling thread;
  /// 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return nthreads_; }

  /// Run body(begin, end, tid) on nthreads contiguous chunks of [0, n).
  /// Blocks until every chunk finished. Exceptions from workers are
  /// rethrown on the caller (first one wins).
  void run_chunks(std::size_t n,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& body);

  /// True while any run_chunks invocation on this pool is in flight
  /// (including the serial nthreads==1 fast path).
  [[nodiscard]] bool busy() const noexcept {
    return active_regions_.load(std::memory_order_acquire) > 0;
  }

  /// Process-wide default pool (lazily created, size from
  /// LQCD_THREADS env var or hardware concurrency). Creation is
  /// thread-safe (double-checked atomic slot).
  static ThreadPool& global();
  /// Replace the global pool with one of `threads` workers.
  /// Contract: no parallel region may be active — calling this from
  /// inside a parallel_for body (or concurrently with one) throws
  /// instead of deleting the pool out from under its own workers. The
  /// old pool's workers are joined before the new pool goes live.
  /// References returned by an earlier global() are invalidated.
  static void set_global_threads(std::size_t threads);

 private:
  void worker_loop(std::size_t tid);

  std::size_t nthreads_;
  std::vector<std::thread> workers_;
  std::atomic<int> active_regions_{0};

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* job_ =
      nullptr;
  std::size_t job_n_ = 0;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Element-wise parallel loop: body(i) for i in [0, n).
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  ThreadPool::global().run_chunks(
      n, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
}

/// Chunk-wise parallel loop: body(lo, hi, tid). Use when the body wants to
/// keep per-thread accumulators.
template <typename Body>
void parallel_for_chunks(std::size_t n, Body&& body) {
  ThreadPool::global().run_chunks(n, std::forward<Body>(body));
}

/// Deterministic parallel sum-reduction of body(i) over [0, n).
/// Partial sums are combined in fixed chunk order.
template <typename Body>
double parallel_reduce_sum(std::size_t n, Body&& body) {
  ThreadPool& pool = ThreadPool::global();
  std::vector<double> partial(pool.size(), 0.0);
  pool.run_chunks(n, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += body(i);
    partial[tid] = s;
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace lqcd
