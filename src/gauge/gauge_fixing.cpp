#include "gauge/gauge_fixing.hpp"

#include <cmath>

#include "gauge/su2.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

namespace {

int fix_dirs(GaugeCondition c) {
  return c == GaugeCondition::Landau ? 4 : 3;
}

/// s^omega for a unit quaternion: rotate by omega times the angle.
Su2 su2_power(const Su2& s, double omega) {
  const double vec = std::sqrt(s.a1 * s.a1 + s.a2 * s.a2 + s.a3 * s.a3);
  if (vec < 1e-300) return Su2{};
  const double theta = std::atan2(vec, s.a0);
  const double nt = omega * theta;
  const double f = std::sin(nt) / vec;
  return {std::cos(nt), f * s.a1, f * s.a2, f * s.a3};
}

/// Apply the gauge rotation g = embedded su2(r) at site x:
/// U_mu(x) <- g U_mu(x); U_mu(x - mu) <- U_mu(x - mu) g^†.
void apply_local_rotation(GaugeFieldD& u, std::int64_t cb, const Su2& r,
                          int p, int q) {
  const LatticeGeometry& geo = u.geometry();
  for (int mu = 0; mu < Nd; ++mu) {
    su2_left_mul(u(cb, mu), r, p, q);
    // Right-multiply the incoming link by g^†: (V g^†) = (g V^†)^†.
    const std::int64_t xm = geo.bwd(cb, mu);
    ColorMatrixD vdag = dagger(u(xm, mu));
    su2_left_mul(vdag, r, p, q);
    u(xm, mu) = dagger(vdag);
  }
}

constexpr int kSubgroups[3][2] = {{0, 1}, {0, 2}, {1, 2}};

}  // namespace

double gauge_functional(const GaugeFieldD& u, GaugeCondition condition) {
  const LatticeGeometry& geo = u.geometry();
  const int nd = fix_dirs(condition);
  const double sum = parallel_reduce_sum(
      static_cast<std::size_t>(geo.volume()), [&](std::size_t s) {
        double acc = 0.0;
        for (int mu = 0; mu < nd; ++mu)
          acc += re_trace(u(static_cast<std::int64_t>(s), mu));
        return acc;
      });
  return sum / (static_cast<double>(geo.volume()) * nd * Nc);
}

double gauge_fix_residual(const GaugeFieldD& u, GaugeCondition condition) {
  const LatticeGeometry& geo = u.geometry();
  const int nd = fix_dirs(condition);
  const double sum = parallel_reduce_sum(
      static_cast<std::size_t>(geo.volume()), [&](std::size_t s) {
        const auto cb = static_cast<std::int64_t>(s);
        ColorMatrixD div{};
        for (int mu = 0; mu < nd; ++mu) {
          div += traceless_antiherm(u(cb, mu));
          div -= traceless_antiherm(u(geo.bwd(cb, mu), mu));
        }
        return norm2(div);
      });
  return sum / (static_cast<double>(geo.volume()) * Nc);
}

GaugeFixResult fix_gauge(GaugeFieldD& u, const GaugeFixParams& params) {
  LQCD_REQUIRE(params.overrelax >= 1.0 && params.overrelax < 2.0,
               "over-relaxation parameter must lie in [1, 2)");
  LQCD_REQUIRE(params.max_sweeps >= 1, "need at least one sweep");
  const LatticeGeometry& geo = u.geometry();
  const int nd = fix_dirs(params.condition);
  const std::int64_t hv = geo.half_volume();

  GaugeFixResult res;
  for (int sweep = 0; sweep < params.max_sweeps; ++sweep) {
    for (int parity = 0; parity < 2; ++parity) {
      parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
        const std::int64_t cb =
            static_cast<std::int64_t>(parity) * hv +
            static_cast<std::int64_t>(i);
        // K(x) = sum_mu U_mu(x) + U_mu^†(x-mu): the local functional is
        // Re tr[g K].
        ColorMatrixD k{};
        for (int mu = 0; mu < nd; ++mu) {
          k += u(cb, mu);
          k += dagger(u(geo.bwd(cb, mu), mu));
        }
        for (const auto& sub : kSubgroups) {
          Su2 s;
          const double kk = su2_project(k, sub[0], sub[1], s);
          if (kk < 1e-14) continue;
          // Maximizer of the subgroup functional is s^†; over-relax it.
          const Su2 r = su2_power(conj(s), params.overrelax);
          apply_local_rotation(u, cb, r, sub[0], sub[1]);
          // Keep K consistent for the remaining subgroups.
          su2_left_mul(k, r, sub[0], sub[1]);
        }
      });
    }
    res.sweeps = sweep + 1;
    res.theta = gauge_fix_residual(u, params.condition);
    if (res.theta < params.tolerance) {
      res.converged = true;
      break;
    }
  }
  u.reunitarize_all();
  res.functional = gauge_functional(u, params.condition);
  return res;
}

}  // namespace lqcd
