#include "gauge/heatbath.hpp"

#include "gauge/observables.hpp"
#include "gauge/staples.hpp"
#include "gauge/su2.hpp"
#include "parallel/thread_pool.hpp"

namespace lqcd {

namespace {
constexpr int kSubgroups[3][2] = {{0, 1}, {0, 2}, {1, 2}};
}

Heatbath::Heatbath(GaugeFieldD& u, const HeatbathParams& params)
    : u_(u), params_(params) {
  LQCD_REQUIRE(params.beta > 0.0, "beta must be positive");
  LQCD_REQUIRE(params.or_per_hb >= 0, "or_per_hb must be >= 0");
}

void Heatbath::update_slice(int parity, int mu, bool heatbath) {
  const LatticeGeometry& geo = u_.geometry();
  const std::int64_t hv = geo.half_volume();
  const SiteRngFactory rngs(params_.seed, epoch_);
  const double beta = params_.beta;

  parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
    const std::int64_t cb =
        static_cast<std::int64_t>(parity) * hv + static_cast<std::int64_t>(i);
    // Per-link RNG stream: keyed on global cb index and direction, so the
    // update is reproducible for any thread count.
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(cb),
                               static_cast<std::uint64_t>(mu));

    const ColorMatrixD a = staple_sum(u_, cb, mu);
    ColorMatrixD& link = u_(cb, mu);
    ColorMatrixD w = mul(link, a);  // action weight: exp((beta/3) Re tr W)

    for (const auto& sub : kSubgroups) {
      const int p = sub[0];
      const int q = sub[1];
      Su2 s;
      const double k = su2_project(w, p, q, s);
      Su2 r;
      if (heatbath) {
        if (k < 1e-12) {
          r = su2_random(rng);
        } else {
          const Su2 rprime = su2_heatbath_sample((2.0 / 3.0) * beta * k, rng);
          r = mul(rprime, conj(s));
        }
      } else {
        // Over-relaxation: r s = s^dagger (reflects around the action
        // minimum, leaving Re tr unchanged -> microcanonical).
        if (k < 1e-12) continue;
        r = conj(mul(s, s));
      }
      su2_left_mul(link, r, p, q);
      su2_left_mul(w, r, p, q);
    }
    reunitarize(link);
  });
  ++epoch_;
}

void Heatbath::heatbath_pass() {
  for (int parity = 0; parity < 2; ++parity)
    for (int mu = 0; mu < Nd; ++mu) update_slice(parity, mu, true);
}

void Heatbath::overrelax_pass() {
  for (int parity = 0; parity < 2; ++parity)
    for (int mu = 0; mu < Nd; ++mu) update_slice(parity, mu, false);
}

double Heatbath::sweep() {
  heatbath_pass();
  for (int i = 0; i < params_.or_per_hb; ++i) overrelax_pass();
  return average_plaquette(u_);
}

double plaquette_strong_coupling(double beta) { return beta / 18.0; }

double plaquette_weak_coupling(double beta) { return 1.0 - 2.0 / beta; }

}  // namespace lqcd
