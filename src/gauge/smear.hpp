#pragma once
// APE link smearing (spatial), used to build smeared spectroscopy sources
// and to tame ultraviolet noise in gauge observables.

#include "gauge/gauge_field.hpp"

namespace lqcd {

struct ApeParams {
  double alpha = 0.7;  ///< staple weight
  int iterations = 3;  ///< smearing steps
  bool spatial_only = true;  ///< smear only spatial links/staples
};

/// One APE step:
///   U'_mu(x) = Proj_SU(3)[ (1-alpha) U_mu(x)
///                          + (alpha/n_staples) * staple_sum ],
/// where the projection is the Gram–Schmidt reunitarization.
void ape_smear_step(GaugeFieldD& u, const ApeParams& params);

/// `params.iterations` steps.
void ape_smear(GaugeFieldD& u, const ApeParams& params);

struct StoutParams {
  double rho = 0.1;   ///< isotropic staple weight
  int iterations = 3;
};

/// One stout (Morningstar–Peardon) smearing step:
///   U' = exp( TA[ Omega ] ) U,   Omega = rho * C U^†,
/// with C the sum of staple transporters and TA the traceless
/// anti-hermitian projection. Unlike APE, the update is analytic in U
/// (differentiable), which is why production HMC actions smear this way.
void stout_smear_step(GaugeFieldD& u, const StoutParams& params);

/// `params.iterations` steps.
void stout_smear(GaugeFieldD& u, const StoutParams& params);

}  // namespace lqcd
