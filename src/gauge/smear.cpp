#include "gauge/smear.hpp"

#include "gauge/staples.hpp"
#include "parallel/thread_pool.hpp"

namespace lqcd {

namespace {
// Staple sum restricted to directions nu in [0, nu_max).
ColorMatrixD staple_sum_restricted(const GaugeFieldD& u, std::int64_t cb,
                                   int mu, int nu_max) {
  const LatticeGeometry& geo = u.geometry();
  ColorMatrixD acc{};
  const std::int64_t xpmu = geo.fwd(cb, mu);
  for (int nu = 0; nu < nu_max; ++nu) {
    if (nu == mu) continue;
    {
      const std::int64_t xpnu = geo.fwd(cb, nu);
      const ColorMatrixD a = mul_adj(u(xpmu, nu), u(xpnu, mu));
      acc += mul_adj(a, u(cb, nu));
    }
    {
      const std::int64_t xmnu = geo.bwd(cb, nu);
      const std::int64_t xpmu_mnu = geo.bwd(xpmu, nu);
      const ColorMatrixD a = adj_mul(u(xpmu_mnu, nu), dagger(u(xmnu, mu)));
      acc += mul(a, u(xmnu, nu));
    }
  }
  return acc;
}
}  // namespace

void ape_smear_step(GaugeFieldD& u, const ApeParams& params) {
  const LatticeGeometry& geo = u.geometry();
  const std::int64_t vol = geo.volume();
  const int mu_max = params.spatial_only ? 3 : Nd;
  const int nu_max = params.spatial_only ? 3 : Nd;
  const int n_staples = 2 * (nu_max - 1);

  GaugeFieldD next(geo);
  // Copy unsmeared directions (e.g. temporal links).
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu) {
      if (mu >= mu_max) {
        next(cb, mu) = u(cb, mu);
        continue;
      }
      // Staples must close within the smeared directions: a smeared link's
      // staple uses only nu < nu_max.
      ColorMatrixD a = staple_sum_restricted(u, cb, mu, nu_max);
      // The staple as defined satisfies Re tr(U A); the "fat link" sums
      // parallel transporters, which is A^dagger.
      ColorMatrixD fat = dagger(a);
      fat *= params.alpha / static_cast<double>(n_staples);
      ColorMatrixD w = u(cb, mu);
      w *= (1.0 - params.alpha);
      w += fat;
      reunitarize(w);
      next(cb, mu) = w;
    }
  });
  // Swap the data back.
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    u.site(cb) = next.site(cb);
  });
}

void ape_smear(GaugeFieldD& u, const ApeParams& params) {
  for (int i = 0; i < params.iterations; ++i) ape_smear_step(u, params);
}

void stout_smear_step(GaugeFieldD& u, const StoutParams& params) {
  const LatticeGeometry& geo = u.geometry();
  const std::int64_t vol = geo.volume();
  GaugeFieldD next(geo);
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu) {
      // C = rho * sum of staple transporters = rho * A^†.
      ColorMatrixD c = dagger(staple_sum(u, cb, mu));
      c *= params.rho;
      // Omega = C U^†; U' = exp(TA(Omega)) U.
      const ColorMatrixD omega = mul_adj(c, u(cb, mu));
      const ColorMatrixD q = traceless_antiherm(omega);
      next(cb, mu) = mul(exp_matrix(q), u(cb, mu));
    }
  });
  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    u.site(cb) = next.site(cb);
  });
}

void stout_smear(GaugeFieldD& u, const StoutParams& params) {
  for (int i = 0; i < params.iterations; ++i) stout_smear_step(u, params);
}

}  // namespace lqcd
