#include "gauge/io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/atomic_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace lqcd {

namespace {
constexpr char kMagic[8] = {'L', 'Q', 'C', 'D', 'G', 'F', '0', '1'};

// Serialize one site's links as 4 * 9 complex doubles.
constexpr std::size_t kSiteBytes = Nd * Nc * Nc * 2 * sizeof(double);
}  // namespace

void save_gauge(const GaugeFieldD& u, const std::string& path, double beta) {
  // Stream through the atomic writer: a killed process never leaves a
  // truncated configuration at `path`.
  atomic_write_file(path, [&](std::ostream& os) {
    os.write(kMagic, sizeof(kMagic));
    for (int mu = 0; mu < Nd; ++mu) {
      const std::int32_t d = u.geometry().dim(mu);
      os.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    os.write(reinterpret_cast<const char*>(&beta), sizeof(beta));

    const std::int64_t vol = u.geometry().volume();
    std::vector<double> buf(Nd * Nc * Nc * 2);
    std::uint32_t crc = 0;
    for (std::int64_t s = 0; s < vol; ++s) {
      std::size_t k = 0;
      for (int mu = 0; mu < Nd; ++mu)
        for (int r = 0; r < Nc; ++r)
          for (int c = 0; c < Nc; ++c) {
            buf[k++] = u(s, mu).m[r][c].re;
            buf[k++] = u(s, mu).m[r][c].im;
          }
      crc = crc32(buf.data(), kSiteBytes, crc);
      os.write(reinterpret_cast<const char*>(buf.data()),
               static_cast<std::streamsize>(kSiteBytes));
    }
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  });
}

namespace {
GaugeFileHeader read_header(std::ifstream& is, const std::string& path) {
  char magic[8];
  is.read(magic, sizeof(magic));
  LQCD_REQUIRE(is.good() && std::memcmp(magic, kMagic, 8) == 0,
               "not a lqcd gauge file: " + path);
  GaugeFileHeader h;
  for (int mu = 0; mu < Nd; ++mu) {
    std::int32_t d = 0;
    is.read(reinterpret_cast<char*>(&d), sizeof(d));
    h.dims[mu] = d;
  }
  is.read(reinterpret_cast<char*>(&h.beta), sizeof(h.beta));
  LQCD_REQUIRE(is.good(), "truncated header: " + path);
  return h;
}
}  // namespace

GaugeFileHeader read_gauge_header(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  LQCD_REQUIRE(is.good(), "cannot open: " + path);
  return read_header(is, path);
}

GaugeFileHeader load_gauge(GaugeFieldD& u, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  LQCD_REQUIRE(is.good(), "cannot open: " + path);
  const GaugeFileHeader h = read_header(is, path);
  for (int mu = 0; mu < Nd; ++mu)
    LQCD_REQUIRE(h.dims[mu] == u.geometry().dim(mu),
                 "gauge file dimension mismatch: " + path);

  const std::int64_t vol = u.geometry().volume();
  std::vector<double> buf(Nd * Nc * Nc * 2);
  std::uint32_t crc = 0;
  for (std::int64_t s = 0; s < vol; ++s) {
    is.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(kSiteBytes));
    LQCD_REQUIRE(is.good(), "truncated gauge data: " + path);
    crc = crc32(buf.data(), kSiteBytes, crc);
    std::size_t k = 0;
    for (int mu = 0; mu < Nd; ++mu)
      for (int r = 0; r < Nc; ++r)
        for (int c = 0; c < Nc; ++c) {
          u(s, mu).m[r][c] = Cplxd(buf[k], buf[k + 1]);
          k += 2;
        }
  }
  std::uint32_t stored = 0;
  is.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  LQCD_REQUIRE(is.good(), "truncated checksum: " + path);
  LQCD_REQUIRE(stored == crc, "gauge file CRC mismatch (corrupt): " + path);
  return h;
}

}  // namespace lqcd
