#pragma once
// Pure-gauge observables: average plaquette, Wilson action, Polyakov loop.

#include "gauge/gauge_field.hpp"
#include "linalg/cplx.hpp"

namespace lqcd {

/// Average plaquette, normalized so the free field gives 1:
/// <(1/3) Re tr P_{mu nu}> averaged over all 6 planes and all sites.
double average_plaquette(const GaugeFieldD& u);

/// Wilson gauge action S = beta * sum_{x, mu<nu} (1 - (1/3) Re tr P).
double wilson_action(const GaugeFieldD& u, double beta);

/// Volume-averaged Polyakov loop (deconfinement order parameter):
/// (1/V3) sum_xvec (1/3) tr prod_t U_t(xvec, t).
Cplxd polyakov_loop(const GaugeFieldD& u);

/// Spatially averaged plaquette restricted to time-like (mu=3) or
/// space-like planes — useful thermalization diagnostics.
double average_plaquette_temporal(const GaugeFieldD& u);
double average_plaquette_spatial(const GaugeFieldD& u);

}  // namespace lqcd
