#pragma once
// Coulomb and Landau gauge fixing by over-relaxed maximization.
//
// A gauge transformation g(x) acts as U_mu(x) -> g(x) U_mu(x) g^†(x+mu).
// Landau (Coulomb) gauge maximizes the functional
//
//   F[g] = sum_x sum_mu Re tr[ g(x) U_mu(x) g^†(x+mu) ],
//
// with mu running over all four (the three spatial) directions. The
// local update at site x is the SU(3) element maximizing
// Re tr[ g K(x) ] with K(x) = sum_mu U_mu(x) + U_mu^†(x-mu) — solved by
// Cabibbo–Marinari style SU(2)-subgroup sweeps with over-relaxation.
// Convergence is monitored through the standard residual
// theta = (1/V Nc) sum_x |div A(x)|^2 built from the anti-hermitian
// projection of the fixed links.
//
// Wall sources (spectro/source.hpp) are gauge-variant: fixing to Coulomb
// gauge first is what makes them physically meaningful.

#include "gauge/gauge_field.hpp"

namespace lqcd {

enum class GaugeCondition { Landau, Coulomb };

struct GaugeFixParams {
  GaugeCondition condition = GaugeCondition::Coulomb;
  double tolerance = 1e-9;   ///< stop when theta < tolerance
  int max_sweeps = 2000;
  double overrelax = 1.7;    ///< omega in [1, 2): 1 = plain relaxation
};

struct GaugeFixResult {
  bool converged = false;
  int sweeps = 0;
  double theta = 0.0;        ///< final residual
  double functional = 0.0;   ///< final normalized functional in [0, 1]
};

/// Normalized gauge functional (1/(V * Nd_fix * Nc)) F[1] of the current
/// field — increases monotonically during fixing.
double gauge_functional(const GaugeFieldD& u, GaugeCondition condition);

/// Gauge-fixing residual theta (see header comment).
double gauge_fix_residual(const GaugeFieldD& u, GaugeCondition condition);

/// Fix `u` in place. Deterministic (no RNG).
GaugeFixResult fix_gauge(GaugeFieldD& u, const GaugeFixParams& params);

}  // namespace lqcd
