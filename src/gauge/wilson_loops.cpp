#include "gauge/wilson_loops.hpp"

#include <cmath>
#include <limits>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

namespace {
// Transporter of `len` links from cb in direction mu (forward).
ColorMatrixD line(const GaugeFieldD& u, std::int64_t cb, int mu, int len) {
  const LatticeGeometry& geo = u.geometry();
  ColorMatrixD w = unit_matrix<double>();
  std::int64_t s = cb;
  for (int i = 0; i < len; ++i) {
    w = mul(w, u(s, mu));
    s = geo.fwd(s, mu);
  }
  return w;
}

std::int64_t advance(const LatticeGeometry& geo, std::int64_t cb, int mu,
                     int len) {
  std::int64_t s = cb;
  for (int i = 0; i < len; ++i) s = geo.fwd(s, mu);
  return s;
}
}  // namespace

double wilson_loop(const GaugeFieldD& u, int r, int t) {
  LQCD_REQUIRE(r >= 1 && t >= 1, "loop extents must be >= 1");
  const LatticeGeometry& geo = u.geometry();
  for (int i = 0; i < 3; ++i)
    LQCD_REQUIRE(r < geo.dim(i), "R too large for this lattice");
  LQCD_REQUIRE(t < geo.dim(3), "T too large for this lattice");

  const std::int64_t vol = geo.volume();
  const double sum = parallel_reduce_sum(
      static_cast<std::size_t>(vol), [&](std::size_t s) {
        const auto cb = static_cast<std::int64_t>(s);
        double acc = 0.0;
        for (int i = 0; i < 3; ++i) {
          // W = L_i(x; R) L_t(x + R i; T) L_i^†(x + T t; R) L_t^†(x; T)
          const ColorMatrixD a = line(u, cb, i, r);
          const ColorMatrixD b =
              line(u, advance(geo, cb, i, r), 3, t);
          const ColorMatrixD c = line(u, advance(geo, cb, 3, t), i, r);
          const ColorMatrixD d = line(u, cb, 3, t);
          ColorMatrixD w = mul(a, b);
          w = mul_adj(w, c);
          w = mul_adj(w, d);
          acc += re_trace(w) / 3.0;
        }
        return acc;
      });
  return sum / (3.0 * static_cast<double>(vol));
}

std::vector<std::vector<double>> wilson_loop_table(const GaugeFieldD& u,
                                                   int r_max, int t_max) {
  LQCD_REQUIRE(r_max >= 1 && t_max >= 1, "table extents must be >= 1");
  std::vector<std::vector<double>> table(
      static_cast<std::size_t>(r_max),
      std::vector<double>(static_cast<std::size_t>(t_max)));
  for (int r = 1; r <= r_max; ++r)
    for (int t = 1; t <= t_max; ++t)
      table[static_cast<std::size_t>(r - 1)]
           [static_cast<std::size_t>(t - 1)] = wilson_loop(u, r, t);
  return table;
}

std::vector<double> static_potential(
    const std::vector<std::vector<double>>& loops) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> v(loops.size(), kNaN);
  for (std::size_t r = 0; r < loops.size(); ++r) {
    const auto& row = loops[r];
    if (row.size() < 2) continue;
    const double w1 = row[row.size() - 2];
    const double w2 = row[row.size() - 1];
    if (w1 > 0.0 && w2 > 0.0) v[r] = std::log(w1 / w2);
  }
  return v;
}

double creutz_ratio(const std::vector<std::vector<double>>& loops, int r,
                    int t) {
  LQCD_REQUIRE(r >= 2 && t >= 2, "Creutz ratio needs R,T >= 2");
  LQCD_REQUIRE(static_cast<std::size_t>(r) <= loops.size() &&
                   static_cast<std::size_t>(t) <= loops[0].size(),
               "loop table too small");
  const auto w = [&](int rr, int tt) {
    return loops[static_cast<std::size_t>(rr - 1)]
                [static_cast<std::size_t>(tt - 1)];
  };
  const double num = w(r, t) * w(r - 1, t - 1);
  const double den = w(r, t - 1) * w(r - 1, t);
  LQCD_REQUIRE(num > 0.0 && den > 0.0,
               "Creutz ratio undefined: non-positive loops (noise)");
  return -std::log(num / den);
}

}  // namespace lqcd
