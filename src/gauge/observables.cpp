#include "gauge/observables.hpp"

#include "gauge/staples.hpp"
#include "parallel/thread_pool.hpp"

namespace lqcd {

namespace {
// Sum of (1/3) Re tr P over the requested planes at every site.
double plaquette_sum(const GaugeFieldD& u, bool spatial, bool temporal,
                     long& nplanes) {
  const LatticeGeometry& geo = u.geometry();
  const std::int64_t vol = geo.volume();
  nplanes = 0;
  for (int mu = 0; mu < Nd; ++mu)
    for (int nu = mu + 1; nu < Nd; ++nu) {
      const bool is_temporal = (nu == 3);
      if ((is_temporal && temporal) || (!is_temporal && spatial)) ++nplanes;
    }
  return parallel_reduce_sum(
      static_cast<std::size_t>(vol), [&](std::size_t s) {
        const auto cb = static_cast<std::int64_t>(s);
        double acc = 0.0;
        for (int mu = 0; mu < Nd; ++mu)
          for (int nu = mu + 1; nu < Nd; ++nu) {
            const bool is_temporal = (nu == 3);
            if (!((is_temporal && temporal) || (!is_temporal && spatial)))
              continue;
            acc += re_trace(plaquette_matrix(u, cb, mu, nu)) / 3.0;
          }
        return acc;
      });
}
}  // namespace

double average_plaquette(const GaugeFieldD& u) {
  long nplanes = 0;
  const double s = plaquette_sum(u, true, true, nplanes);
  return s / (static_cast<double>(u.geometry().volume()) *
              static_cast<double>(nplanes));
}

double average_plaquette_temporal(const GaugeFieldD& u) {
  long nplanes = 0;
  const double s = plaquette_sum(u, false, true, nplanes);
  return s / (static_cast<double>(u.geometry().volume()) *
              static_cast<double>(nplanes));
}

double average_plaquette_spatial(const GaugeFieldD& u) {
  long nplanes = 0;
  const double s = plaquette_sum(u, true, false, nplanes);
  return s / (static_cast<double>(u.geometry().volume()) *
              static_cast<double>(nplanes));
}

double wilson_action(const GaugeFieldD& u, double beta) {
  long nplanes = 0;
  const double s = plaquette_sum(u, true, true, nplanes);
  const double total_plaq =
      static_cast<double>(u.geometry().volume()) *
      static_cast<double>(nplanes);
  return beta * (total_plaq - s);
}

Cplxd polyakov_loop(const GaugeFieldD& u) {
  const LatticeGeometry& geo = u.geometry();
  const int lt = geo.dim(3);
  Cplxd acc{};
  long count = 0;
  Coord x{};
  for (x[2] = 0; x[2] < geo.dim(2); ++x[2])
    for (x[1] = 0; x[1] < geo.dim(1); ++x[1])
      for (x[0] = 0; x[0] < geo.dim(0); ++x[0]) {
        ColorMatrixD line = unit_matrix<double>();
        Coord y = x;
        for (int t = 0; t < lt; ++t) {
          y[3] = t;
          line = mul(line, u(geo.cb_index(y), 3));
        }
        acc += trace(line);
        ++count;
      }
  return Cplxd(acc.re / (3.0 * static_cast<double>(count)),
               acc.im / (3.0 * static_cast<double>(count)));
}

}  // namespace lqcd
