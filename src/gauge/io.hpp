#pragma once
// Gauge configuration I/O: a simple self-describing binary format with a
// CRC-32 integrity check (stand-in for ILDG/SciDAC formats).
//
// Layout: magic "LQCDGF01" | 4 x int32 dims | float64 beta |
//         link data (site-major, direction-minor, row-major complex
//         doubles, checkerboard site order) | uint32 CRC of the link data.

#include <string>

#include "gauge/gauge_field.hpp"

namespace lqcd {

struct GaugeFileHeader {
  Coord dims{};
  double beta = 0.0;
};

/// Write a gauge configuration. Throws lqcd::Error on I/O failure.
void save_gauge(const GaugeFieldD& u, const std::string& path,
                double beta);

/// Read a configuration into a field on a matching geometry.
/// Throws lqcd::Error on dimension mismatch, truncation or CRC mismatch.
GaugeFileHeader load_gauge(GaugeFieldD& u, const std::string& path);

/// Read only the header (cheap inspection).
GaugeFileHeader read_gauge_header(const std::string& path);

}  // namespace lqcd
