#include "gauge/flow.hpp"

#include "gauge/observables.hpp"
#include "gauge/staples.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

double flow_energy_density(const GaugeFieldD& u) {
  const LatticeGeometry& geo = u.geometry();
  const std::int64_t vol = geo.volume();
  const double sum = parallel_reduce_sum(
      static_cast<std::size_t>(vol), [&](std::size_t s) {
        const auto cb = static_cast<std::int64_t>(s);
        double acc = 0.0;
        for (int mu = 0; mu < Nd; ++mu)
          for (int nu = mu + 1; nu < Nd; ++nu)
            acc += 2.0 * (3.0 - re_trace(plaquette_matrix(u, cb, mu, nu)));
        return acc;
      });
  return sum / static_cast<double>(vol);
}

namespace {
using ZField = Field<LinkSite<double>>;

// Z(u)(x,mu) = -TA[U A] scaled by eps, accumulated as
// z <- coeff_new * eps * Z(u) + coeff_old * z.
void accumulate_z(ZField& z, const GaugeFieldD& u, double eps,
                  double coeff_new, double coeff_old) {
  const LatticeGeometry& geo = u.geometry();
  parallel_for(static_cast<std::size_t>(geo.volume()), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu) {
      ColorMatrixD g =
          traceless_antiherm(mul(u(cb, mu), staple_sum(u, cb, mu)));
      g *= -eps * coeff_new;
      ColorMatrixD& zl = z[cb][static_cast<std::size_t>(mu)];
      ColorMatrixD old = zl;
      old *= coeff_old;
      zl = g;
      zl += old;
    }
  });
}

// u <- exp(z) u per link.
void apply_exp(GaugeFieldD& u, const ZField& z) {
  const LatticeGeometry& geo = u.geometry();
  parallel_for(static_cast<std::size_t>(geo.volume()), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    for (int mu = 0; mu < Nd; ++mu)
      u(cb, mu) =
          mul(exp_matrix(z[cb][static_cast<std::size_t>(mu)]), u(cb, mu));
  });
}
}  // namespace

void wilson_flow_step(GaugeFieldD& u, double eps) {
  LQCD_REQUIRE(eps > 0.0, "flow step must be positive");
  ZField z(u.geometry());
  // W1 = exp(1/4 Z0) W0
  accumulate_z(z, u, eps, 0.25, 0.0);
  apply_exp(u, z);
  // W2 = exp(8/9 Z1 - 17/36 Z0) W1 ; note z currently holds Z0/4:
  // 8/9 Z1 - 17/36 Z0 = (8/9) eps Z(W1) + (-17/9) * (Z0/4).
  accumulate_z(z, u, eps, 8.0 / 9.0, -17.0 / 9.0);
  apply_exp(u, z);
  // V' = exp(3/4 Z2 - 8/9 Z1 + 17/36 Z0) W2
  //    = exp( (3/4) eps Z(W2) - [8/9 Z1 - 17/36 Z0] ).
  accumulate_z(z, u, eps, 0.75, -1.0);
  apply_exp(u, z);
}

std::vector<FlowObservable> wilson_flow(GaugeFieldD& u,
                                        const FlowParams& params) {
  LQCD_REQUIRE(params.steps >= 0, "step count must be non-negative");
  std::vector<FlowObservable> history;
  history.reserve(static_cast<std::size_t>(params.steps) + 1);
  double t = 0.0;
  auto record = [&] {
    FlowObservable obs;
    obs.t = t;
    obs.energy = flow_energy_density(u);
    obs.t2e = t * t * obs.energy;
    obs.plaquette = average_plaquette(u);
    history.push_back(obs);
  };
  record();
  for (int i = 0; i < params.steps; ++i) {
    wilson_flow_step(u, params.step);
    t += params.step;
    record();
  }
  return history;
}

}  // namespace lqcd
