#pragma once
// SU(3) gauge field: four link matrices per site, checkerboard layout.
//
// U(x, mu) is the parallel transporter from x to x + mu-hat. Generation
// (heatbath, HMC) always runs in double; the solvers may take a float
// copy via convert_gauge().

#include <array>

#include "lattice/field.hpp"
#include "lattice/geometry.hpp"
#include "linalg/su3.hpp"
#include "util/rng.hpp"

namespace lqcd {

template <typename T>
using LinkSite = std::array<ColorMatrix<T>, Nd>;

template <typename T>
class GaugeField {
 public:
  explicit GaugeField(const LatticeGeometry& geo) : field_(geo) {}

  [[nodiscard]] const LatticeGeometry& geometry() const noexcept {
    return field_.geometry();
  }

  ColorMatrix<T>& operator()(std::int64_t cb, int mu) {
    return field_[cb][static_cast<std::size_t>(mu)];
  }
  const ColorMatrix<T>& operator()(std::int64_t cb, int mu) const {
    return field_[cb][static_cast<std::size_t>(mu)];
  }

  LinkSite<T>& site(std::int64_t cb) { return field_[cb]; }
  const LinkSite<T>& site(std::int64_t cb) const { return field_[cb]; }

  [[nodiscard]] std::span<LinkSite<T>> span() noexcept {
    return field_.span();
  }
  [[nodiscard]] std::span<const LinkSite<T>> span() const noexcept {
    return field_.span();
  }

  /// Cold start: all links = identity (free field).
  void set_unit() {
    for (auto& site : field_.span())
      for (auto& u : site) u = unit_matrix<T>();
  }

  /// Hot start: independent Haar-ish random links, reproducible for any
  /// decomposition (streams keyed on global checkerboard index).
  void set_random(const SiteRngFactory& rngs) {
    const std::int64_t vol = field_.volume();
    for (std::int64_t s = 0; s < vol; ++s)
      for (int mu = 0; mu < Nd; ++mu) {
        CounterRng rng =
            rngs.make(static_cast<std::uint64_t>(s), static_cast<unsigned>(mu));
        (*this)(s, mu) = random_su3<T>(rng);
      }
  }

  /// Project every link back to SU(3); returns the max pre-projection
  /// unitarity error (monitoring drift during long HMC runs).
  T reunitarize_all() {
    T worst = T(0);
    for (auto& site : field_.span())
      for (auto& u : site) {
        const T err = unitarity_error(u);
        if (err > worst) worst = err;
        reunitarize(u);
      }
    return worst;
  }

  /// Largest unitarity violation across all links.
  [[nodiscard]] T max_unitarity_error() const {
    T worst = T(0);
    for (const auto& site : field_.span())
      for (const auto& u : site) {
        const T err = unitarity_error(u);
        if (err > worst) worst = err;
      }
    return worst;
  }

 private:
  Field<LinkSite<T>> field_;
};

/// Precision-converting copy (double -> float for the inner solver).
template <typename To, typename From>
void convert_gauge(GaugeField<To>& dst, const GaugeField<From>& src) {
  LQCD_REQUIRE(dst.geometry() == src.geometry(),
               "convert_gauge geometry mismatch");
  const std::int64_t vol = src.geometry().volume();
  for (std::int64_t s = 0; s < vol; ++s)
    for (int mu = 0; mu < Nd; ++mu)
      for (int r = 0; r < Nc; ++r)
        for (int c = 0; c < Nc; ++c)
          dst(s, mu).m[r][c] = Cplx<To>(src(s, mu).m[r][c]);
}

using GaugeFieldF = GaugeField<float>;
using GaugeFieldD = GaugeField<double>;

}  // namespace lqcd
