#pragma once
// Quenched gauge-field generation: Cabibbo–Marinari SU(2)-subgroup
// pseudo-heatbath (Kennedy–Pendleton sampling) plus micro-canonical
// over-relaxation for the Wilson plaquette action.
//
// Updates run parity-by-parity and direction-by-direction; within one
// (parity, direction) slice the staples of the updated links are disjoint
// from each other, so the slice is embarrassingly parallel and the result
// is independent of the thread count.

#include <cstdint>

#include "gauge/gauge_field.hpp"
#include "util/rng.hpp"

namespace lqcd {

struct HeatbathParams {
  double beta = 6.0;         ///< Wilson gauge coupling
  int or_per_hb = 3;         ///< over-relaxation sweeps per heatbath sweep
  std::uint64_t seed = 42;   ///< RNG seed (epoch advances per sweep)
};

/// Quenched ensemble generator. One `sweep()` = one heatbath pass over all
/// links followed by `or_per_hb` over-relaxation passes.
class Heatbath {
 public:
  Heatbath(GaugeFieldD& u, const HeatbathParams& params);

  /// One combined update sweep; returns the average plaquette afterwards.
  double sweep();

  /// Individual passes (exposed for tests and ablations).
  void heatbath_pass();
  void overrelax_pass();

  [[nodiscard]] const HeatbathParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t sweeps_done() const { return epoch_; }

 private:
  void update_slice(int parity, int mu, bool heatbath);

  GaugeFieldD& u_;
  HeatbathParams params_;
  std::uint64_t epoch_ = 0;  // advances every pass -> fresh RNG streams
};

/// Strong-coupling expansion of the average plaquette for SU(3):
/// <P> = beta/18 + O(beta^2) — used by thermalization tests at small beta.
double plaquette_strong_coupling(double beta);

/// Weak-coupling (one-loop) estimate <P> ~ 1 - 2/beta for SU(3).
double plaquette_weak_coupling(double beta);

}  // namespace lqcd
