#pragma once
// Staple sums for the Wilson plaquette action.
//
// With the plaquette P_{mu nu}(x) = U_mu(x) U_nu(x+mu) U_mu^†(x+nu)
// U_nu^†(x), the staple A(x,mu) is defined so that every plaquette
// containing U_mu(x) contributes Re tr[ U_mu(x) A(x,mu) ]:
//
//   A(x,mu) = sum_{nu != mu}  U_nu(x+mu) U_mu^†(x+nu) U_nu^†(x)
//                           + U_nu^†(x+mu-nu) U_mu^†(x-nu) U_nu(x-nu)
//
// Both the heatbath and the HMC gauge force are built from this.

#include "gauge/gauge_field.hpp"

namespace lqcd {

/// Staple sum for link (cb, mu).
template <typename T>
ColorMatrix<T> staple_sum(const GaugeField<T>& u, std::int64_t cb, int mu) {
  const LatticeGeometry& geo = u.geometry();
  ColorMatrix<T> acc{};
  const std::int64_t xpmu = geo.fwd(cb, mu);
  for (int nu = 0; nu < Nd; ++nu) {
    if (nu == mu) continue;
    // Upper staple: U_nu(x+mu) U_mu^†(x+nu) U_nu^†(x)
    {
      const std::int64_t xpnu = geo.fwd(cb, nu);
      const ColorMatrix<T> a = mul_adj(u(xpmu, nu), u(xpnu, mu));
      acc += mul_adj(a, u(cb, nu));
    }
    // Lower staple: U_nu^†(x+mu-nu) U_mu^†(x-nu) U_nu(x-nu)
    {
      const std::int64_t xmnu = geo.bwd(cb, nu);
      const std::int64_t xpmu_mnu = geo.bwd(xpmu, nu);
      const ColorMatrix<T> a = adj_mul(u(xpmu_mnu, nu), dagger(u(xmnu, mu)));
      acc += mul(a, u(xmnu, nu));
    }
  }
  return acc;
}

/// Plaquette matrix P_{mu nu}(x) (mu != nu).
template <typename T>
ColorMatrix<T> plaquette_matrix(const GaugeField<T>& u, std::int64_t cb,
                                int mu, int nu) {
  const LatticeGeometry& geo = u.geometry();
  const std::int64_t xpmu = geo.fwd(cb, mu);
  const std::int64_t xpnu = geo.fwd(cb, nu);
  ColorMatrix<T> p = mul(u(cb, mu), u(xpmu, nu));
  p = mul_adj(p, u(xpnu, mu));
  return mul_adj(p, u(cb, nu));
}

}  // namespace lqcd
