#pragma once
// Wilson (gradient) flow.
//
// The flow evolves the gauge field down the gradient of the Wilson
// plaquette action,
//
//   dV/dt = Z(V) V,   Z(x,mu) = -TA[ V_mu(x) A(x,mu) ],
//
// (A the staple sum, TA the traceless anti-hermitian projection; the
// overall normalization is the standard one used by Grid/chroma flow
// implementations). Integration uses Lüscher's third-order Runge–Kutta
// scheme (arXiv:1006.4518, appendix C):
//
//   W0 = V
//   W1 = exp(1/4 Z0) W0
//   W2 = exp(8/9 Z1 - 17/36 Z0) W1
//   V' = exp(3/4 Z2 - 8/9 Z1 + 17/36 Z0) W2,   Zi = eps Z(Wi).
//
// The flow smooths UV fluctuations; t^2 <E(t)> defines the reference
// scale t0 via t^2<E> = 0.3.

#include <vector>

#include "gauge/gauge_field.hpp"

namespace lqcd {

struct FlowParams {
  double step = 0.01;  ///< integration step eps
  int steps = 10;      ///< number of RK3 steps
};

/// Plaquette discretization of the action/energy density:
/// E = (1/V) sum_x sum_{mu<nu} 2 Re tr[1 - P_mu_nu(x)].
double flow_energy_density(const GaugeFieldD& u);

/// One RK3 step of size eps.
void wilson_flow_step(GaugeFieldD& u, double eps);

/// History point of a flow trajectory.
struct FlowObservable {
  double t = 0.0;        ///< flow time
  double energy = 0.0;   ///< <E(t)>
  double t2e = 0.0;      ///< t^2 <E(t)>
  double plaquette = 0.0;
};

/// Integrate the flow, recording observables after every step
/// (element 0 is the t = 0 starting point).
std::vector<FlowObservable> wilson_flow(GaugeFieldD& u,
                                        const FlowParams& params);

}  // namespace lqcd
