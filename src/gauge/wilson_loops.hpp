#pragma once
// Rectangular Wilson loops and the static quark potential.
//
// W(R, T) = (1/3) < Re tr [ spatial transporter x temporal line x ... ] >
// averaged over sites, spatial directions and orientations. The static
// potential follows from V(R) = log( W(R,T) / W(R,T+1) ) at large T, and
// Creutz ratios chi(R,T) isolate the string tension — confinement, i.e.
// the origin of (most of the) mass, read off directly from the gauge
// field.

#include <vector>

#include "gauge/gauge_field.hpp"

namespace lqcd {

/// Average R x T rectangular Wilson loop, plane (spatial dir i, time):
/// averaged over all sites and the three spatial directions.
/// R >= 1 in a spatial direction, T >= 1 in the time direction.
double wilson_loop(const GaugeFieldD& u, int r, int t);

/// Table of W(R,T) for R in [1, r_max], T in [1, t_max]:
/// entry [r-1][t-1].
std::vector<std::vector<double>> wilson_loop_table(const GaugeFieldD& u,
                                                   int r_max, int t_max);

/// Static potential estimate V(R) = log(W(R,T)/W(R,T+1)) from a loop
/// table (uses the largest available T pair). NaN where unusable.
std::vector<double> static_potential(
    const std::vector<std::vector<double>>& loops);

/// Creutz ratio chi(R,T) = -log[ W(R,T) W(R-1,T-1) / (W(R,T-1) W(R-1,T)) ]
/// — a lattice estimator of the string tension. Requires R,T >= 2.
double creutz_ratio(const std::vector<std::vector<double>>& loops, int r,
                    int t);

}  // namespace lqcd
