#pragma once
// SU(2) quaternion helpers for the Cabibbo–Marinari subgroup updates.
//
// An SU(2) element is parameterized as  a0 + i (a1 s1 + a2 s2 + a3 s3)
// with s_i the Pauli matrices and a0^2 + |a|^2 = 1, i.e. the 2x2 matrix
//
//   [ a0 + i a3    a2 + i a1 ]
//   [-a2 + i a1    a0 - i a3 ].

#include <cmath>

#include "linalg/su3.hpp"
#include "util/rng.hpp"

namespace lqcd {

struct Su2 {
  double a0 = 1.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
};

inline double norm(const Su2& s) {
  return std::sqrt(s.a0 * s.a0 + s.a1 * s.a1 + s.a2 * s.a2 + s.a3 * s.a3);
}

inline Su2 conj(const Su2& s) { return {s.a0, -s.a1, -s.a2, -s.a3}; }

/// Quaternion product matching 2x2 matrix multiplication of the
/// parameterization above.
inline Su2 mul(const Su2& a, const Su2& b) {
  Su2 c;
  c.a0 = a.a0 * b.a0 - a.a1 * b.a1 - a.a2 * b.a2 - a.a3 * b.a3;
  c.a1 = a.a0 * b.a1 + a.a1 * b.a0 - (a.a2 * b.a3 - a.a3 * b.a2);
  c.a2 = a.a0 * b.a2 + a.a2 * b.a0 - (a.a3 * b.a1 - a.a1 * b.a3);
  c.a3 = a.a0 * b.a3 + a.a3 * b.a0 - (a.a1 * b.a2 - a.a2 * b.a1);
  return c;
}

/// Project the (p,q) 2x2 block of a 3x3 matrix onto the quaternion part:
/// returns k >= 0 and the normalized SU(2) element s such that the block's
/// "SU(2) component" equals k*s. (k = 0 gives s = identity.)
inline double su2_project(const ColorMatrixD& w, int p, int q, Su2& s) {
  const Cplxd m00 = w.m[p][p];
  const Cplxd m01 = w.m[p][q];
  const Cplxd m10 = w.m[q][p];
  const Cplxd m11 = w.m[q][q];
  Su2 a;
  a.a0 = 0.5 * (m00.re + m11.re);
  a.a3 = 0.5 * (m00.im - m11.im);
  a.a1 = 0.5 * (m01.im + m10.im);
  a.a2 = 0.5 * (m01.re - m10.re);
  const double k = norm(a);
  if (k < 1e-300) {
    s = Su2{};
    return 0.0;
  }
  s = {a.a0 / k, a.a1 / k, a.a2 / k, a.a3 / k};
  return k;
}

/// Left-multiply the (p,q) subgroup block of a 3x3 matrix by the embedded
/// SU(2) element r: rows p and q of `w` are replaced.
inline void su2_left_mul(ColorMatrixD& w, const Su2& r, int p, int q) {
  const Cplxd r00(r.a0, r.a3), r01(r.a2, r.a1);
  const Cplxd r10(-r.a2, r.a1), r11(r.a0, -r.a3);
  for (int c = 0; c < Nc; ++c) {
    const Cplxd wp = w.m[p][c];
    const Cplxd wq = w.m[q][c];
    w.m[p][c] = r00 * wp + r01 * wq;
    w.m[q][c] = r10 * wp + r11 * wq;
  }
}

/// Embed an SU(2) element into SU(3) (identity outside the (p,q) block).
inline ColorMatrixD su2_embed(const Su2& r, int p, int q) {
  ColorMatrixD u = unit_matrix<double>();
  u.m[p][p] = Cplxd(r.a0, r.a3);
  u.m[p][q] = Cplxd(r.a2, r.a1);
  u.m[q][p] = Cplxd(-r.a2, r.a1);
  u.m[q][q] = Cplxd(r.a0, -r.a3);
  return u;
}

/// Haar-uniform random SU(2) element.
inline Su2 su2_random(CounterRng& rng) {
  Su2 s;
  double n = 0.0;
  do {
    s.a0 = rng.gaussian();
    s.a1 = rng.gaussian();
    s.a2 = rng.gaussian();
    s.a3 = rng.gaussian();
    n = norm(s);
  } while (n < 1e-12);
  s.a0 /= n;
  s.a1 /= n;
  s.a2 /= n;
  s.a3 /= n;
  return s;
}

/// Kennedy–Pendleton sample of a0 with weight sqrt(1-a0^2) exp(alpha*a0),
/// plus a uniform direction for the 3-vector part. Used with
/// alpha = (2/3) beta k for SU(3) subgroup heatbath.
inline Su2 su2_heatbath_sample(double alpha, CounterRng& rng) {
  double a0 = 0.0;
  for (;;) {
    const double u1 = rng.uniform_open0();
    const double u2 = rng.uniform();
    const double u3 = rng.uniform_open0();
    const double c = std::cos(6.283185307179586 * u2);
    const double delta2 = -(std::log(u1) + c * c * std::log(u3)) / alpha;
    if (delta2 > 2.0) continue;
    const double u4 = rng.uniform();
    if (u4 * u4 <= 1.0 - 0.5 * delta2) {
      a0 = 1.0 - delta2;
      break;
    }
  }
  const double r = std::sqrt(1.0 - a0 * a0);
  // Uniform direction on S^2.
  const double cos_th = 2.0 * rng.uniform() - 1.0;
  const double sin_th = std::sqrt(std::max(0.0, 1.0 - cos_th * cos_th));
  const double phi = 6.283185307179586 * rng.uniform();
  return {a0, r * sin_th * std::cos(phi), r * sin_th * std::sin(phi),
          r * cos_th};
}

}  // namespace lqcd
