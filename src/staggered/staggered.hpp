#pragma once
// Kogut–Susskind (staggered) fermions — the other workhorse lattice
// discretization (MILC's), implemented as an independent substrate and
// baseline against the Wilson stack.
//
// The spin degree of freedom is diagonalized away: one color vector per
// site, with the Dirac structure encoded in the position-dependent sign
// factors ("staggered phases")
//
//   eta_1(x) = 1,  eta_2 = (-1)^{x1},  eta_3 = (-1)^{x1+x2},
//   eta_4 = (-1)^{x1+x2+x3}        (directions x,y,z,t = 1..4 here),
//
// giving the anti-hermitian hopping operator
//
//   (D chi)(x) = 1/2 sum_mu eta_mu(x) [ U_mu(x) chi(x+mu)
//                                       - U_mu^†(x-mu) chi(x-mu) ],
//
// and the fermion matrix M = m + D with M^† M = m^2 - D^2 (exact, since
// D^† = -D). -D^2 is block diagonal over parities, so CG on the even
// sites of M^†M is the standard staggered solve; a dedicated small CG is
// provided (the Wilson-spinor solver stack is type-specialized).
//
// One staggered field describes four degenerate "tastes"; the local
// pseudoscalar channel from a point source is the exact Goldstone pion,
// whose mass obeys m_pi^2 ~ m_q (chiral behaviour Wilson fermions lack).

#include <vector>

#include "dirac/wilson.hpp"  // TimeBoundary, make_fermion_links
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "util/aligned.hpp"

namespace lqcd {

using StaggeredFieldD = Field<ColorVector<double>>;

/// Staggered phase eta_mu(x) in {+1, -1}.
inline double staggered_phase(const Coord& x, int mu) {
  int s = 0;
  for (int nu = 0; nu < mu; ++nu) s += x[nu];
  return (s & 1) ? -1.0 : 1.0;
}

/// out = D in (anti-hermitian staggered hopping).
void staggered_dslash(std::span<ColorVector<double>> out,
                      std::span<const ColorVector<double>> in,
                      const GaugeFieldD& links);

/// The staggered fermion matrix M = m + D.
class StaggeredOperator {
 public:
  StaggeredOperator(const GaugeFieldD& u, double mass,
                    TimeBoundary bc = TimeBoundary::Antiperiodic);

  /// out = (m + D) in.
  void apply(std::span<ColorVector<double>> out,
             std::span<const ColorVector<double>> in) const;

  /// out = M^† M in = (m^2 - D^2) in.
  void apply_normal(std::span<ColorVector<double>> out,
                    std::span<const ColorVector<double>> in) const;

  [[nodiscard]] double mass() const { return mass_; }
  [[nodiscard]] const LatticeGeometry& geometry() const {
    return links_.geometry();
  }

 private:
  GaugeFieldD links_;
  double mass_;
  mutable aligned_vector<ColorVector<double>> tmp_;
};

/// Minimal CG for the staggered normal system M^†M x = b.
struct StaggeredSolveResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;
};
StaggeredSolveResult staggered_cg(const StaggeredOperator& m,
                                  std::span<ColorVector<double>> x,
                                  std::span<const ColorVector<double>> b,
                                  double tol, int max_iterations);

/// Solve M s = delta_{x,0} delta_{c,c0} for all three colors and return
/// the local Goldstone-pion correlator C(t) = sum_xvec sum_c |s_c(x)|^2.
struct StaggeredPionResult {
  std::vector<double> correlator;  ///< C(t), t relative to the source
  int total_iterations = 0;
  bool converged = true;
};
StaggeredPionResult staggered_pion_correlator(const GaugeFieldD& u,
                                              double mass,
                                              const Coord& source,
                                              double tol = 1e-10);

/// Free staggered quark energy: sinh(E) = m at zero spatial momentum, so
/// the free Goldstone pion mass is ~ 2 asinh(m).
double staggered_free_quark_energy(double mass);

}  // namespace lqcd
