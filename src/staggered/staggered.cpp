#include "staggered/staggered.hpp"

#include <cmath>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

void staggered_dslash(std::span<ColorVector<double>> out,
                      std::span<const ColorVector<double>> in,
                      const GaugeFieldD& links) {
  const LatticeGeometry& geo = links.geometry();
  LQCD_REQUIRE(out.size() == static_cast<std::size_t>(geo.volume()) &&
                   in.size() == out.size(),
               "staggered_dslash span sizes");
  parallel_for(out.size(), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    const Coord x = geo.coords(cb);
    ColorVector<double> acc{};
    for (int mu = 0; mu < Nd; ++mu) {
      const double eta = staggered_phase(x, mu);
      const std::int64_t xp = geo.fwd(cb, mu);
      const std::int64_t xm = geo.bwd(cb, mu);
      ColorVector<double> hop =
          mul(links(cb, mu), in[static_cast<std::size_t>(xp)]);
      hop -= adj_mul(links(xm, mu), in[static_cast<std::size_t>(xm)]);
      hop *= 0.5 * eta;
      acc += hop;
    }
    out[s] = acc;
  });
}

StaggeredOperator::StaggeredOperator(const GaugeFieldD& u, double mass,
                                     TimeBoundary bc)
    : links_(make_fermion_links(u, bc)), mass_(mass) {
  LQCD_REQUIRE(mass > 0.0, "staggered mass must be positive");
  tmp_.resize(static_cast<std::size_t>(u.geometry().volume()));
}

void StaggeredOperator::apply(std::span<ColorVector<double>> out,
                              std::span<const ColorVector<double>> in)
    const {
  staggered_dslash(out, in, links_);
  const double m = mass_;
  parallel_for(out.size(), [&](std::size_t i) {
    ColorVector<double> v = in[i];
    v *= m;
    out[i] += v;
  });
}

void StaggeredOperator::apply_normal(
    std::span<ColorVector<double>> out,
    std::span<const ColorVector<double>> in) const {
  // M^†M = m^2 - D^2.
  std::span<ColorVector<double>> t(tmp_.data(), tmp_.size());
  staggered_dslash(t, in, links_);
  staggered_dslash(out, std::span<const ColorVector<double>>(t.data(),
                                                             t.size()),
                   links_);
  const double m2 = mass_ * mass_;
  parallel_for(out.size(), [&](std::size_t i) {
    ColorVector<double> v = in[i];
    v *= m2;
    v -= out[i];
    out[i] = v;
  });
}

namespace {
double cnorm2(std::span<const ColorVector<double>> x) {
  return parallel_reduce_sum(x.size(), [&](std::size_t i) {
    return norm2(x[i]);
  });
}
double cdot_re(std::span<const ColorVector<double>> x,
               std::span<const ColorVector<double>> y) {
  return parallel_reduce_sum(x.size(), [&](std::size_t i) {
    return dot(x[i], y[i]).re;
  });
}
void caxpy(double a, std::span<const ColorVector<double>> x,
           std::span<ColorVector<double>> y) {
  parallel_for(y.size(), [&](std::size_t i) {
    ColorVector<double> t = x[i];
    t *= a;
    y[i] += t;
  });
}
}  // namespace

StaggeredSolveResult staggered_cg(const StaggeredOperator& m,
                                  std::span<ColorVector<double>> x,
                                  std::span<const ColorVector<double>> b,
                                  double tol, int max_iterations) {
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "staggered_cg size mismatch");
  StaggeredSolveResult res;

  const double bn = cnorm2(b);
  if (bn == 0.0) {
    for (auto& v : x) v = ColorVector<double>{};
    res.converged = true;
    return res;
  }
  const double target2 = tol * tol * bn;

  aligned_vector<ColorVector<double>> r_s(n), p_s(n), ap_s(n);
  std::span<ColorVector<double>> r(r_s.data(), n), p(p_s.data(), n),
      ap(ap_s.data(), n);

  m.apply_normal(r, std::span<const ColorVector<double>>(x.data(), n));
  parallel_for(n, [&](std::size_t i) {
    ColorVector<double> t = b[i];
    t -= r[i];
    r[i] = t;
  });
  for (std::size_t i = 0; i < n; ++i) p[i] = r[i];
  double rr = cnorm2({r.data(), n});

  int it = 0;
  for (; it < max_iterations && rr > target2; ++it) {
    m.apply_normal(ap, std::span<const ColorVector<double>>(p.data(), n));
    const double pap = cdot_re({p.data(), n}, {ap.data(), n});
    LQCD_ASSERT(pap > 0.0, "staggered CG: operator not positive");
    const double alpha = rr / pap;
    caxpy(alpha, {p.data(), n}, x);
    caxpy(-alpha, {ap.data(), n}, r);
    const double rr_new = cnorm2({r.data(), n});
    const double beta = rr_new / rr;
    parallel_for(n, [&](std::size_t i) {
      ColorVector<double> t = p[i];
      t *= beta;
      t += r[i];
      p[i] = t;
    });
    rr = rr_new;
  }
  res.iterations = it;
  res.relative_residual = std::sqrt(rr / bn);
  res.converged = rr <= target2;
  return res;
}

StaggeredPionResult staggered_pion_correlator(const GaugeFieldD& u,
                                              double mass,
                                              const Coord& source,
                                              double tol) {
  const LatticeGeometry& geo = u.geometry();
  StaggeredOperator m(u, mass);
  const auto n = static_cast<std::size_t>(geo.volume());
  const int lt = geo.dim(3);
  const int t0 = source[3];

  StaggeredPionResult out;
  out.correlator.assign(static_cast<std::size_t>(lt), 0.0);

  aligned_vector<ColorVector<double>> b(n), rhs(n), x(n), s(n);
  for (int c0 = 0; c0 < Nc; ++c0) {
    for (auto& v : b) v = ColorVector<double>{};
    b[static_cast<std::size_t>(geo.cb_index(source))].c[c0] = Cplxd(1.0);
    // Solve M^†M x = M^† b, then s = x solves... we want s = M^{-1} b:
    // M^† b first.
    // M^† = m - D.
    staggered_dslash({rhs.data(), n},
                     std::span<const ColorVector<double>>(b.data(), n),
                     make_fermion_links(u, TimeBoundary::Antiperiodic));
    parallel_for(n, [&](std::size_t i) {
      ColorVector<double> v = b[i];
      v *= mass;
      v -= rhs[i];
      rhs[i] = v;
    });
    for (auto& v : x) v = ColorVector<double>{};
    const StaggeredSolveResult r = staggered_cg(
        m, {x.data(), n},
        std::span<const ColorVector<double>>(rhs.data(), n), tol, 20000);
    out.total_iterations += r.iterations;
    out.converged = out.converged && r.converged;
    // Accumulate |S|^2 per timeslice.
    for (std::size_t i = 0; i < n; ++i) {
      const int t = geo.coords(static_cast<std::int64_t>(i))[3];
      const int trel = (t - t0 + lt) % lt;
      out.correlator[static_cast<std::size_t>(trel)] +=
          norm2(x[i]);
    }
  }
  return out;
}

double staggered_free_quark_energy(double mass) {
  LQCD_REQUIRE(mass > 0.0, "mass must be positive");
  return std::asinh(mass);
}

}  // namespace lqcd
