#include "serve/health.hpp"

#include "util/error.hpp"

namespace lqcd::serve {

const char* to_string(LaneHealth h) {
  switch (h) {
    case LaneHealth::Healthy: return "healthy";
    case LaneHealth::Suspect: return "suspect";
    case LaneHealth::Dead: return "dead";
  }
  return "?";
}

LaneHealthModel::LaneHealthModel(int lanes, int deadline_misses)
    : health_(static_cast<std::size_t>(lanes), LaneHealth::Healthy),
      misses_(static_cast<std::size_t>(lanes), 0),
      deadline_misses_(deadline_misses) {
  LQCD_REQUIRE(lanes >= 1, "LaneHealthModel: need at least one lane");
  LQCD_REQUIRE(deadline_misses >= 1,
               "LaneHealthModel: deadline_misses must be >= 1");
}

LaneHealth LaneHealthModel::health(int lane) const {
  return health_.at(static_cast<std::size_t>(lane));
}

int LaneHealthModel::alive_count() const {
  int n = 0;
  for (const LaneHealth h : health_) n += h != LaneHealth::Dead;
  return n;
}

int LaneHealthModel::dead_count() const {
  return static_cast<int>(health_.size()) - alive_count();
}

void LaneHealthModel::heartbeat(int lane) {
  const auto l = static_cast<std::size_t>(lane);
  if (health_[l] == LaneHealth::Dead) return;  // death is permanent
  health_[l] = LaneHealth::Healthy;
  misses_[l] = 0;
}

LaneHealth LaneHealthModel::miss(int lane) {
  const auto l = static_cast<std::size_t>(lane);
  if (health_[l] == LaneHealth::Dead) return LaneHealth::Dead;
  if (++misses_[l] >= deadline_misses_) {
    health_[l] = LaneHealth::Dead;
  } else {
    health_[l] = LaneHealth::Suspect;
  }
  return health_[l];
}

void LaneHealthModel::suspect(int lane) {
  const auto l = static_cast<std::size_t>(lane);
  if (health_[l] == LaneHealth::Healthy) health_[l] = LaneHealth::Suspect;
}

void LaneHealthModel::mark_dead(int lane) {
  health_.at(static_cast<std::size_t>(lane)) = LaneHealth::Dead;
}

}  // namespace lqcd::serve
