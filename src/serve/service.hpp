#pragma once
// The propagator campaign service: drains a CampaignSpec's task queue
// through the journal, surviving kills and retrying transient faults.
//
// One run() call executes the shard plan wave by wave (each wave gives
// every lane its next task, mimicking the parallel cluster the spec
// models). Per task the lifecycle is
//
//   journal TaskRunning -> solve 12 columns (block solver) -> contract
//   pion -> journal TaskDone(result payload)
//
// so a kill at any instant loses at most the task in flight: on the next
// run() the journal replay marks every TaskDone task finished and the
// scheduler skips it without touching the gauge field — the "resume
// without recomputing finished propagator columns" contract, asserted by
// tests/test_serve.cpp.
//
// Failure taxonomy (util/error.hpp): an injected drop or an unconverged
// solve raises TransientError handling — journal TaskFailed, retry up to
// spec.max_retries (block_cg campaigns retry on the scalar eo_cg pipeline,
// which has full breakdown recovery); an exhausted budget escalates to
// FatalError and stops the campaign. A scheduled kill from the
// FaultInjector rethrows as TransientError("service killed") after the
// TaskRunning frame, exactly the crash window the journal protects.
//
// Lane-failure recovery (serve/health.hpp): lanes heartbeat on modeled
// deadlines (heartbeat_margin x modeled_task_seconds). A silent lane goes
// healthy -> suspect -> dead; on death the scheduler LPT-redistributes
// its remaining tasks over the survivors and journals the decisions as
// LaneDead / TaskReassigned frames, so a killed-and-resumed run replays
// the identical recovery plan. A straggling task on a suspect lane is
// speculatively replicated onto the least-loaded healthy lane; whichever
// copy journals TaskDone first wins, the other skips (TaskDone payloads
// are task-level deterministic, so the winner's bytes are identical
// either way). The campaign completes in degraded mode on whatever lanes
// survive; only when every lane is dead does run() raise FatalError.
//
// TaskDone payloads are deterministic (no wall-clock fields), so a killed
// + resumed campaign journals byte-identical results to an uninterrupted
// one. Wall time and rates go to telemetry (serve.* counters) and the
// final result.json instead.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "gauge/gauge_field.hpp"
#include "serve/health.hpp"
#include "serve/journal.hpp"
#include "serve/scheduler.hpp"
#include "serve/spec.hpp"

namespace lqcd::serve {

inline constexpr const char* kResultSchema = "lqcd.campaign.result/1";

struct ServiceOptions {
  /// Optional deterministic fault injection (kills via schedule_kill,
  /// transient task failures via drop_prob). Not owned.
  FaultInjector* faults = nullptr;
  /// Write <output>/result.json when the campaign completes.
  bool write_result = true;
};

struct CampaignOutcome {
  int total = 0;            ///< tasks in the spec
  int skipped = 0;          ///< finished in an earlier run, not recomputed
  int completed = 0;        ///< finished by this run
  int transient_failures = 0;  ///< failed attempts that were retried
  bool finished = false;    ///< CampaignEnd journaled
  double seconds = 0.0;     ///< wall time of this run

  // Degraded-mode accounting. lanes_lost / tasks_reassigned are
  // campaign-cumulative (journal-replayed deaths count); speculative
  // figures are this run's.
  int lanes_lost = 0;          ///< lanes declared dead
  int tasks_reassigned = 0;    ///< orphans re-sharded off dead lanes
  int speculative_tasks = 0;   ///< stragglers replicated this run
  int speculative_wins = 0;    ///< replicas that finished first this run
  bool degraded = false;       ///< completed with at least one lane lost
};

/// Journal-only campaign summary (for `lqcd_serve status`).
struct CampaignStatus {
  bool journal_found = false;
  std::uint64_t frames = 0;
  std::uint64_t truncated_bytes = 0;
  std::uint32_t fingerprint = 0;
  int total = 0;       ///< from CampaignBegin
  int done = 0;        ///< distinct tasks with TaskDone
  int failed_attempts = 0;
  int in_flight = 0;   ///< Running frames not followed by Done/Failed
  bool finished = false;
  int lanes_lost = 0;         ///< distinct lanes with a LaneDead frame
  int tasks_reassigned = 0;   ///< TaskReassigned frames (reason lane_dead)
  int speculative_tasks = 0;  ///< TaskReassigned frames (speculative)
};

/// Solve one task (12 propagator columns + pion contraction) and return
/// the TaskDone journal payload. Deterministic bytes for a given (spec,
/// task, attempt): no wall-clock fields, fixed key order — which is what
/// makes the virtual service and the multi-process coordinator journal
/// identical results for identical work, and lets CI diff them.
/// Throws TransientError on an unconverged solve.
[[nodiscard]] std::string solve_task_payload(const CampaignSpec& spec,
                                             const LatticeGeometry& geo,
                                             const GaugeFieldD& config,
                                             const SolveTask& task,
                                             int attempt);

/// Write <spec.output>/result.json from a replayed journal (shared by
/// the virtual service and the distributed coordinator).
void write_campaign_result(const CampaignSpec& spec,
                           const std::vector<Record>& records,
                           const CampaignOutcome& outcome);

class CampaignService {
 public:
  explicit CampaignService(CampaignSpec spec, ServiceOptions opts = {});
  ~CampaignService();

  /// Execute (or resume) the campaign. Throws TransientError on a
  /// scheduled kill (rerun to resume), FatalError when a task exhausts
  /// its retry budget or the journal belongs to a different spec.
  CampaignOutcome run();

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] std::string journal_path() const;

  /// Summarize a journal without touching gauge data.
  [[nodiscard]] static CampaignStatus status(const std::string& journal_path);

 private:
  struct TaskRun;  // per-task execution state (service.cpp)

  void execute_task(Journal& journal, const SolveTask& task, int lane,
                    std::uint64_t epoch);
  [[nodiscard]] const GaugeFieldD& config(int index);
  void write_result_json(const std::vector<Record>& records,
                         const CampaignOutcome& outcome) const;

  CampaignSpec spec_;
  ServiceOptions opts_;
  std::vector<SolveTask> tasks_;
  ShardPlan plan_;
  LatticeGeometry geo_;
  std::vector<double> task_cost_;  ///< modeled seconds per task id
  // Gauge configs stay resident once loaded (campaign lattices are small;
  // the lanes revisit them every wave).
  std::vector<std::unique_ptr<GaugeFieldD>> configs_;
};

}  // namespace lqcd::serve
