#include "serve/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lqcd::serve {

double ShardPlan::imbalance() const {
  if (modeled_seconds.empty()) return 1.0;
  double sum = 0.0, max = 0.0;
  for (const double s : modeled_seconds) {
    sum += s;
    max = std::max(max, s);
  }
  const double mean = sum / static_cast<double>(modeled_seconds.size());
  return mean > 0.0 ? max / mean : 1.0;
}

double modeled_task_seconds(const CampaignSpec& spec, const SolveTask& task,
                            const LatticeGeometry& geo,
                            const MachineModel& machine) {
  const double kappa = spec.kappas[static_cast<std::size_t>(task.kappa)];
  // CG on the normal Schur system: iterations grow like the inverse quark
  // mass ~ 1/(0.25 - kappa) (critical slowing down toward kappa_c).
  const double iters = 40.0 / (0.25 - kappa);
  // Work per iteration: two Schur applies (normal op) over 12 columns,
  // ~1320 flops/site each, on the full volume.
  const double flops_per_iter =
      2.0 * 1320.0 * static_cast<double>(geo.volume()) * 12.0;
  const double gflops =
      machine.peak_gflops(8) * machine.compute_efficiency * 1e9;
  double seconds = iters * flops_per_iter / gflops;
  // A wall source excites every spatial site: denser rhs, slightly more
  // expensive contractions — model as a flat 10% surcharge so wall and
  // point tasks do not tie (deterministic LPT order matters).
  const SourceSpec src =
      parse_source_spec(spec.sources[static_cast<std::size_t>(task.source)]);
  if (src.kind == SourceKind::Wall) seconds *= 1.10;
  if (src.smear_iters > 0) seconds *= 1.0 + 0.01 * src.smear_iters;
  return seconds;
}

ShardPlan shard_tasks(const CampaignSpec& spec,
                      const std::vector<SolveTask>& tasks,
                      const LatticeGeometry& geo,
                      const MachineModel& machine) {
  LQCD_REQUIRE(spec.ranks >= 1, "shard_tasks: ranks must be >= 1");
  const auto nlanes = static_cast<std::size_t>(spec.ranks);
  ShardPlan plan;
  plan.lane_of.assign(tasks.size(), 0);
  plan.lanes.assign(nlanes, {});
  plan.modeled_seconds.assign(nlanes, 0.0);

  // LPT: place the most expensive task first, always onto the least
  // loaded lane. Ties (equal cost, equal load) break on task id / lane
  // index, so the plan is a pure function of the spec.
  std::vector<std::pair<double, int>> order;
  order.reserve(tasks.size());
  for (const SolveTask& t : tasks)
    order.emplace_back(modeled_task_seconds(spec, t, geo, machine), t.id);
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (const auto& [cost, id] : order) {
    std::size_t best = 0;
    for (std::size_t l = 1; l < nlanes; ++l)
      if (plan.modeled_seconds[l] < plan.modeled_seconds[best]) best = l;
    plan.lane_of[static_cast<std::size_t>(id)] = static_cast<int>(best);
    plan.lanes[best].push_back(id);
    plan.modeled_seconds[best] += cost;
  }

  // Execution order within a lane: config-major so the resident gauge
  // field (and the per-kappa solver cache) is reused across consecutive
  // tasks; id as tie-break keeps it deterministic.
  for (auto& lane : plan.lanes)
    std::sort(lane.begin(), lane.end(), [&](int a, int b) {
      const SolveTask& ta = tasks[static_cast<std::size_t>(a)];
      const SolveTask& tb = tasks[static_cast<std::size_t>(b)];
      if (ta.config != tb.config) return ta.config < tb.config;
      if (ta.kappa != tb.kappa) return ta.kappa < tb.kappa;
      return ta.id < tb.id;
    });
  return plan;
}

std::vector<Reassignment> reshard_orphans(
    const std::vector<int>& orphans, int from_lane,
    const std::vector<double>& task_seconds,
    std::vector<double>& remaining_seconds, const std::vector<bool>& alive) {
  LQCD_REQUIRE(remaining_seconds.size() == alive.size(),
               "reshard_orphans: remaining/alive size mismatch");
  std::vector<Reassignment> moves;
  if (orphans.empty()) return moves;

  // Same LPT discipline as the initial shard: biggest orphan first, onto
  // the least-loaded survivor, ties broken by id / lane index.
  std::vector<std::pair<double, int>> order;
  order.reserve(orphans.size());
  for (const int id : orphans)
    order.emplace_back(task_seconds.at(static_cast<std::size_t>(id)), id);
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  moves.reserve(orphans.size());
  for (const auto& [cost, id] : order) {
    int best = -1;
    for (std::size_t l = 0; l < alive.size(); ++l) {
      if (!alive[l]) continue;
      if (best < 0 ||
          remaining_seconds[l] < remaining_seconds[static_cast<std::size_t>(
                                     best)])
        best = static_cast<int>(l);
    }
    LQCD_REQUIRE(best >= 0, "reshard_orphans: no surviving lane");
    remaining_seconds[static_cast<std::size_t>(best)] += cost;
    moves.push_back({.task = id, .from = from_lane, .to = best});
  }
  return moves;
}

}  // namespace lqcd::serve
