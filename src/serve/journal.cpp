#include "serve/journal.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <unordered_map>

#include "util/atomic_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace lqcd::serve {

namespace {

constexpr char kMagic[4] = {'L', 'Q', 'J', 'R'};
constexpr std::size_t kHeaderBytes = 4 + 8 + 1 + 4;  // magic seq type len
constexpr std::uint32_t kMaxPayload = 16u << 20;     // sanity bound

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

/// Serialize one frame (everything including trailing CRC).
std::string encode_frame(std::uint64_t seq, RecordType type,
                         std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size() + 4);
  frame.append(kMagic, 4);
  put_u64(frame, seq);
  frame.push_back(static_cast<char>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  // CRC covers seq..payload (not the magic): a frame moved to a different
  // offset still validates, a bit flip anywhere inside does not.
  const std::uint32_t crc = crc32(frame.data() + 4, frame.size() - 4);
  put_u32(frame, crc);
  return frame;
}

}  // namespace

const char* to_string(RecordType t) {
  switch (t) {
    case RecordType::CampaignBegin: return "campaign_begin";
    case RecordType::TaskRunning: return "task_running";
    case RecordType::TaskDone: return "task_done";
    case RecordType::TaskFailed: return "task_failed";
    case RecordType::CampaignEnd: return "campaign_end";
    case RecordType::LaneDead: return "lane_dead";
    case RecordType::TaskReassigned: return "task_reassigned";
  }
  return "?";
}

ReplayResult replay_journal(const std::string& path) {
  ReplayResult out;
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;  // no journal yet: empty campaign state
  std::string data((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos + kHeaderBytes + 4 <= data.size()) {
    const char* p = data.data() + pos;
    if (std::memcmp(p, kMagic, 4) != 0) break;
    const std::uint64_t seq = get_u64(p + 4);
    const auto type = static_cast<std::uint8_t>(p[12]);
    const std::uint32_t len = get_u32(p + 13);
    if (len > kMaxPayload) break;
    const std::size_t total = kHeaderBytes + len + 4;
    if (pos + total > data.size()) break;  // torn tail
    const std::uint32_t want = get_u32(p + kHeaderBytes + len);
    const std::uint32_t got = crc32(p + 4, kHeaderBytes - 4 + len);
    if (want != got) break;  // corrupt frame: stop at last good prefix
    if (type < 1 || type > 7) break;
    Record rec;
    rec.seq = seq;
    rec.type = static_cast<RecordType>(type);
    rec.payload.assign(p + kHeaderBytes, len);
    // Sequence numbers must be dense from 0; a gap means frames from a
    // different journal were spliced in.
    if (seq != out.records.size()) break;
    out.records.push_back(std::move(rec));
    pos += total;
  }
  out.valid_bytes = pos;
  out.truncated_bytes = data.size() - pos;
  return out;
}

ReplayResult Journal::open(const std::string& path) {
  path_ = path;
  ReplayResult replay = replay_journal(path);
  if (replay.truncated_bytes > 0) {
    // Drop the torn tail so the next append starts at a clean frame
    // boundary.
    std::filesystem::resize_file(path, replay.valid_bytes);
  }
  next_seq_ = replay.records.size();
  return replay;
}

std::uint64_t Journal::append(RecordType type, std::string_view payload) {
  LQCD_REQUIRE(!path_.empty(), "Journal::append before open()");
  const std::uint64_t seq = next_seq_;
  const std::string frame = encode_frame(seq, type, payload);
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  os.flush();
  if (!os)
    throw FatalError("journal append failed: " + path_ +
                     " (campaign state would be lost)");
  ++next_seq_;
  return seq;
}

CompactionStats compact_journal(const std::string& path) {
  const ReplayResult replay = replay_journal(path);
  CompactionStats stats;
  stats.frames_before = replay.records.size();
  stats.bytes_before = replay.valid_bytes + replay.truncated_bytes;
  if (replay.records.empty()) return stats;

  const auto task_of = [](const Record& rec) {
    return static_cast<int>(
        json::Value::parse(rec.payload).get_or("task", std::int64_t{-1}));
  };

  // A Running frame is dead weight once a later Done/Failed settles the
  // same task; an open (unsettled) Running frame is the in_flight signal
  // `status` reports, so it must survive. Map each task to the index of
  // its last settling frame.
  std::unordered_map<int, std::size_t> last_settled;
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    const Record& rec = replay.records[i];
    if (rec.type == RecordType::TaskDone ||
        rec.type == RecordType::TaskFailed)
      last_settled[task_of(rec)] = i;
  }

  std::set<int> done_seen;
  std::string compacted;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    const Record& rec = replay.records[i];
    bool keep = true;
    switch (rec.type) {
      case RecordType::TaskRunning: {
        const auto it = last_settled.find(task_of(rec));
        keep = it == last_settled.end() || i > it->second;
        break;
      }
      case RecordType::TaskDone:
        // First-wins: a speculative duplicate adds no state.
        keep = done_seen.insert(task_of(rec)).second;
        break;
      default: break;  // Begin/End/Failed/LaneDead/TaskReassigned survive
    }
    if (keep) compacted += encode_frame(seq++, rec.type, rec.payload);
  }
  stats.frames_after = seq;
  stats.bytes_after = compacted.size();

  atomic_write_file(path, [&](std::ostream& os) {
    os.write(compacted.data(),
             static_cast<std::streamsize>(compacted.size()));
  });
  return stats;
}

}  // namespace lqcd::serve
