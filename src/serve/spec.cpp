#include "serve/spec.hpp"

#include <fstream>
#include <sstream>

#include "comm/machine.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace lqcd::serve {

CampaignSpec parse_campaign(const json::Value& doc) {
  LQCD_REQUIRE(doc.is_object(), "campaign spec must be a JSON object");
  const std::string schema = doc.get_or("schema", std::string());
  if (schema != kSpecSchema)
    throw Error("campaign spec: schema '" + schema + "' (expected '" +
                kSpecSchema + "')");
  CampaignSpec spec;
  spec.name = doc.get_or("name", spec.name);

  const json::Value& configs = doc.at("configs");
  LQCD_REQUIRE(configs.is_array() && configs.size() > 0,
               "campaign spec: 'configs' must be a non-empty array");
  for (std::size_t i = 0; i < configs.size(); ++i)
    spec.configs.push_back(configs[i].as_string());

  const json::Value& kappas = doc.at("kappas");
  LQCD_REQUIRE(kappas.is_array() && kappas.size() > 0,
               "campaign spec: 'kappas' must be a non-empty array");
  for (std::size_t i = 0; i < kappas.size(); ++i) {
    const double k = kappas[i].as_double();
    LQCD_REQUIRE(k > 0.0 && k < 0.25,
                 "campaign spec: kappa out of (0, 0.25)");
    spec.kappas.push_back(k);
  }

  const json::Value& sources = doc.at("sources");
  LQCD_REQUIRE(sources.is_array() && sources.size() > 0,
               "campaign spec: 'sources' must be a non-empty array");
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::string& s = sources[i].as_string();
    (void)parse_source_spec(s);  // validate at submit time
    spec.sources.push_back(s);
  }

  if (const json::Value* solver = doc.find("solver")) {
    spec.solver =
        parse_solver_kind(solver->get_or("kind", std::string("block_cg")));
    spec.tol = solver->get_or("tol", spec.tol);
    spec.max_iterations =
        solver->get_or("max_iterations", spec.max_iterations);
    spec.block = solver->get_or("block", spec.block);
    LQCD_REQUIRE(spec.tol > 0.0 && spec.tol < 1.0,
                 "campaign spec: tol out of (0, 1)");
    LQCD_REQUIRE(spec.max_iterations > 0,
                 "campaign spec: max_iterations must be positive");
    LQCD_REQUIRE(spec.block >= 1 && spec.block <= kMaxBlockRhs,
                 "campaign spec: block out of [1, 12]");
  }

  if (const json::Value* sched = doc.find("schedule")) {
    spec.ranks = sched->get_or("ranks", spec.ranks);
    spec.machine = sched->get_or("machine", spec.machine);
    spec.max_retries = sched->get_or("max_retries", spec.max_retries);
    spec.heartbeat_margin =
        sched->get_or("heartbeat_margin", spec.heartbeat_margin);
    spec.deadline_misses =
        sched->get_or("deadline_misses", spec.deadline_misses);
    spec.speculate = sched->get_or("speculate", spec.speculate);
    LQCD_REQUIRE(spec.ranks >= 1 && spec.ranks <= 4096,
                 "campaign spec: ranks out of [1, 4096]");
    LQCD_REQUIRE(spec.max_retries >= 0,
                 "campaign spec: max_retries must be >= 0");
    LQCD_REQUIRE(spec.heartbeat_margin > 1.0,
                 "campaign spec: heartbeat_margin must exceed 1");
    LQCD_REQUIRE(spec.deadline_misses >= 1,
                 "campaign spec: deadline_misses must be >= 1");
    (void)machine_by_name(spec.machine);  // validate preset name
  }

  spec.output = doc.get_or("output", spec.output);
  LQCD_REQUIRE(!spec.output.empty(), "campaign spec: 'output' is empty");
  return spec;
}

CampaignSpec load_campaign(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open campaign spec " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse_campaign(json::Value::parse(buf.str()));
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

void write_campaign(json::Writer& w, const CampaignSpec& spec) {
  w.begin_object()
      .field("schema", kSpecSchema)
      .field("name", spec.name);
  w.key("configs").begin_array();
  for (const std::string& c : spec.configs) w.value(c);
  w.end_array();
  w.key("kappas").begin_array();
  for (const double k : spec.kappas) w.value(k);
  w.end_array();
  w.key("sources").begin_array();
  for (const std::string& s : spec.sources) w.value(s);
  w.end_array();
  w.key("solver")
      .begin_object()
      .field("kind", to_string(spec.solver))
      .field("tol", spec.tol)
      .field("max_iterations", spec.max_iterations)
      .field("block", spec.block)
      .end_object();
  w.key("schedule")
      .begin_object()
      .field("ranks", spec.ranks)
      .field("machine", spec.machine)
      .field("max_retries", spec.max_retries)
      .field("heartbeat_margin", spec.heartbeat_margin)
      .field("deadline_misses", spec.deadline_misses)
      .field("speculate", spec.speculate)
      .end_object();
  w.field("output", spec.output).end_object();
}

std::string canonical_json(const CampaignSpec& spec) {
  json::Writer w;
  write_campaign(w, spec);
  return w.str();
}

std::uint32_t spec_fingerprint(const CampaignSpec& spec) {
  const std::string doc = canonical_json(spec);
  return crc32(doc.data(), doc.size());
}

std::vector<SolveTask> build_tasks(const CampaignSpec& spec) {
  std::vector<SolveTask> tasks;
  tasks.reserve(static_cast<std::size_t>(spec.num_tasks()));
  int id = 0;
  for (int c = 0; c < static_cast<int>(spec.configs.size()); ++c)
    for (int k = 0; k < static_cast<int>(spec.kappas.size()); ++k)
      for (int s = 0; s < static_cast<int>(spec.sources.size()); ++s)
        tasks.push_back(
            {.id = id++, .config = c, .kappa = k, .source = s});
  return tasks;
}

}  // namespace lqcd::serve
