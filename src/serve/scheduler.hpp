#pragma once
// Deterministic task sharding for the campaign service.
//
// The service executes on a *virtual* cluster of `ranks` lanes (the same
// modeling stance as comm/machine.hpp: we reproduce the scheduling
// decisions of a multi-node campaign runner inside one process). Tasks
// are assigned to lanes by LPT (longest-processing-time-first) greedy
// bin packing over a modeled cost, with deterministic tie-breaking —
// identical specs always shard identically, which the journal replay
// tests rely on.
//
// Cost model: a solve at hopping parameter kappa costs roughly
// iterations x dslash work, and CG iteration counts blow up as kappa
// approaches the critical value — modeled as 1/(0.25 - kappa). The
// machine preset converts that to modeled seconds (so lane balance
// reflects the machine the spec targets, not wall-clock of this host).
//
// Within a lane, tasks execute config-major (then by id): consecutive
// tasks reuse the resident gauge field and per-kappa solver setup — the
// DAG edge "config loaded before task runs" becomes "config stays loaded
// across its run of tasks".

#include <vector>

#include "comm/machine.hpp"
#include "lattice/geometry.hpp"
#include "serve/spec.hpp"

namespace lqcd::serve {

struct ShardPlan {
  std::vector<int> lane_of;                ///< task id -> lane
  std::vector<std::vector<int>> lanes;     ///< lane -> task ids, run order
  std::vector<double> modeled_seconds;     ///< lane -> modeled busy time

  /// Makespan / mean lane time (1.0 = perfectly balanced).
  [[nodiscard]] double imbalance() const;
};

/// Modeled cost (seconds on `machine`) of one task of the campaign.
[[nodiscard]] double modeled_task_seconds(const CampaignSpec& spec,
                                          const SolveTask& task,
                                          const LatticeGeometry& geo,
                                          const MachineModel& machine);

/// Shard `tasks` over spec.ranks lanes (LPT over modeled cost,
/// deterministic ties, config-major execution order within a lane).
[[nodiscard]] ShardPlan shard_tasks(const CampaignSpec& spec,
                                    const std::vector<SolveTask>& tasks,
                                    const LatticeGeometry& geo,
                                    const MachineModel& machine);

/// One recovery decision: `task` moves from a dead lane to a survivor.
struct Reassignment {
  int task = 0;
  int from = 0;
  int to = 0;
};

/// Redistribute the `orphans` a dead lane left behind: LPT over the
/// orphans' modeled cost onto the alive lane with the least remaining
/// modeled work, deterministic ties (cost desc, task id asc, lane index
/// asc). `remaining_seconds` is updated in place so successive deaths
/// compose; `task_seconds[id]` prices task `id`. Orphans are returned in
/// decision order — the order the journal records them in, which is the
/// order a resumed run replays them.
[[nodiscard]] std::vector<Reassignment> reshard_orphans(
    const std::vector<int>& orphans, int from_lane,
    const std::vector<double>& task_seconds,
    std::vector<double>& remaining_seconds, const std::vector<bool>& alive);

}  // namespace lqcd::serve
