#pragma once
// Persistent work-queue journal: the crash-safe memory of a campaign.
//
// Append-only binary frames, one per state transition:
//
//   magic "LQJR" | seq u64 | type u8 | payload_len u32 | payload | crc u32
//
// (little-endian; crc is CRC-32 of seq..payload, util/crc32.hpp). The
// payload is a small JSON fragment (task id, attempt, result numbers) —
// framing is binary so truncation is detectable, payloads are JSON so
// `lqcd_serve status` and humans can read them.
//
// Recovery contract: replay() scans frames until the file ends or a frame
// fails its length or CRC check; everything after the last good frame is
// a torn tail from a crash mid-append and is truncated away on the next
// open_append(). A task counts as finished if and only if a TaskDone
// frame survived replay — the scheduler re-runs anything else, so a kill
// between "running" and "done" costs one recompute, never a wrong skip.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lqcd::serve {

enum class RecordType : std::uint8_t {
  CampaignBegin = 1,  ///< fingerprint + task count; always frame 0
  TaskRunning = 2,    ///< task claimed by a lane (attempt recorded)
  TaskDone = 3,       ///< task finished; payload carries the result
  TaskFailed = 4,     ///< attempt failed (transient or exhausted)
  CampaignEnd = 5,    ///< all tasks accounted for
  LaneDead = 6,       ///< lane declared dead (missed modeled deadlines)
  TaskReassigned = 7, ///< task moved/replicated to another lane
};

[[nodiscard]] const char* to_string(RecordType t);

struct Record {
  std::uint64_t seq = 0;
  RecordType type = RecordType::CampaignBegin;
  std::string payload;  ///< JSON fragment
};

struct ReplayResult {
  std::vector<Record> records;      ///< every frame that passed its CRC
  std::uint64_t valid_bytes = 0;    ///< prefix length covered by them
  std::uint64_t truncated_bytes = 0;  ///< torn tail dropped by recovery
};

/// Scan `path` (missing file = empty journal, not an error).
[[nodiscard]] ReplayResult replay_journal(const std::string& path);

/// Appender. open() replays existing frames (truncating any torn tail in
/// place) and positions at the end; append() writes + flushes one frame.
class Journal {
 public:
  /// Open for appending, returning the surviving records.
  ReplayResult open(const std::string& path);

  /// Append one frame; returns its sequence number. Throws FatalError if
  /// the write fails (a journal that cannot record state must stop the
  /// campaign, not limp on).
  std::uint64_t append(RecordType type, std::string_view payload);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

 private:
  std::string path_;
  std::uint64_t next_seq_ = 0;
};

struct CompactionStats {
  std::uint64_t frames_before = 0;
  std::uint64_t frames_after = 0;
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
};

/// Rewrite the journal at `path` without the frames that no longer carry
/// state: the TaskRunning frames of every settled task (a task with a
/// later TaskDone or TaskFailed) — the bulk of a thousand-task journal.
/// Everything `status` and a resume depend on survives verbatim, in
/// order: CampaignBegin (fingerprint intact), the first TaskDone per
/// task, every TaskFailed, every LaneDead / TaskReassigned recovery
/// decision, still-open TaskRunning frames, and CampaignEnd. Frames are
/// re-sequenced dense from 0 and the file is replaced via atomic rename,
/// so a kill mid-compaction leaves the original journal untouched.
CompactionStats compact_journal(const std::string& path);

}  // namespace lqcd::serve
