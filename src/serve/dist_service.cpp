#include "serve/dist_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <unistd.h>

#include "gauge/io.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace lqcd::serve {

namespace {

using transport::make_seq_tag;
using transport::TagKind;

// Same payload builders as the virtual service (service.cpp) — the two
// modes must journal byte-identical frames for identical decisions.

std::string begin_payload(const CampaignSpec& spec) {
  json::Writer w;
  w.begin_object()
      .field("name", spec.name)
      .field("fingerprint",
             static_cast<std::int64_t>(spec_fingerprint(spec)))
      .field("tasks", spec.num_tasks())
      .end_object();
  return w.str();
}

std::string running_payload(const SolveTask& task, int lane, int attempt) {
  json::Writer w;
  w.begin_object()
      .field("task", task.id)
      .field("lane", lane)
      .field("attempt", attempt)
      .end_object();
  return w.str();
}

std::string failed_payload(const SolveTask& task, int attempt,
                           std::string_view why) {
  json::Writer w;
  w.begin_object()
      .field("task", task.id)
      .field("attempt", attempt)
      .field("error", why)
      .end_object();
  return w.str();
}

std::string lane_dead_payload(int lane, std::uint64_t epoch) {
  json::Writer w;
  w.begin_object()
      .field("lane", lane)
      .field("epoch", static_cast<std::int64_t>(epoch))
      .end_object();
  return w.str();
}

std::string reassigned_payload(int task, int from, int to) {
  json::Writer w;
  w.begin_object()
      .field("task", task)
      .field("from", from)
      .field("to", to)
      .field("reason", "lane_dead")
      .end_object();
  return w.str();
}

// Coordinator -> worker dispatch, on the kTask tag stream. Result frames
// come back on the kResult stream as "ok\n" + TaskDone payload or
// "err\n" + message — a byte-exact passthrough, never re-serialized.

std::string dispatch_payload(int task, int attempt) {
  json::Writer w;
  w.begin_object()
      .field("op", "task")
      .field("task", task)
      .field("attempt", attempt)
      .end_object();
  return w.str();
}

std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string_view as_view(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Per-worker execution state at the coordinator. Lane index l maps to
/// transport rank l+1.
struct Lane {
  std::vector<int> queue;
  std::size_t next = 0;
  double remaining = 0.0;
  bool alive = true;
  int outstanding = -1;     ///< task id in flight, -1 if idle
  int attempt = 0;          ///< attempt number of the in-flight dispatch
  std::uint64_t sent = 0;   ///< kTask stream position
  std::uint64_t recvd = 0;  ///< kResult stream position
};

int run_worker(const CampaignSpec& spec, transport::Transport& tp) {
  const LatticeGeometry geo(read_gauge_header(spec.configs.at(0)).dims);
  std::vector<std::unique_ptr<GaugeFieldD>> configs(spec.configs.size());
  const auto config = [&](int index) -> const GaugeFieldD& {
    auto& slot = configs.at(static_cast<std::size_t>(index));
    if (!slot) {
      slot = std::make_unique<GaugeFieldD>(geo);
      load_gauge(*slot, spec.configs[static_cast<std::size_t>(index)]);
      telemetry::counter("serve.config_loads").add(1);
    }
    return *slot;
  };
  const std::vector<SolveTask> tasks = build_tasks(spec);

  int die_after = -1;
  if (const char* env = std::getenv("LQCD_WORKER_DIE_AFTER"))
    die_after = std::atoi(env);

  int completed = 0;
  std::uint64_t in_seq = 0;
  std::uint64_t out_seq = 0;
  std::vector<std::byte> buf;
  while (true) {
    try {
      tp.recv(0, make_seq_tag(TagKind::kTask, in_seq++), buf);
    } catch (const TransientError&) {
      return 1;  // coordinator died or wedged; nothing to clean up
    }
    const json::Value msg = json::Value::parse(std::string(as_view(buf)));
    if (msg.get_or("op", std::string()) != "task") break;  // stop
    const int tid = msg.get_or("task", -1);
    const int attempt = msg.get_or("attempt", 0);
    // The deterministic kill drill: after K completed tasks, die holding
    // the next one in flight, so the coordinator must orphan-reshard it.
    if (die_after >= 0 && completed >= die_after) _exit(9);
    std::string result;
    try {
      result = "ok\n" + solve_task_payload(
                            spec, geo, config(tasks.at(
                                            static_cast<std::size_t>(tid))
                                                .config),
                            tasks[static_cast<std::size_t>(tid)], attempt);
      ++completed;
    } catch (const TransientError& e) {
      result = std::string("err\n") + e.what();
    }
    tp.send(0, make_seq_tag(TagKind::kResult, out_seq++),
            as_bytes(result));
  }
  return 0;
}

}  // namespace

CampaignOutcome run_distributed_campaign(const CampaignSpec& spec_in,
                                         transport::Transport& tp,
                                         bool write_result) {
  LQCD_REQUIRE(tp.size() >= 2,
               "distributed campaign needs at least one worker rank");
  CampaignSpec spec = spec_in;
  spec.ranks = tp.size() - 1;  // lanes are the real worker processes

  if (tp.rank() != 0) {
    CampaignOutcome out;
    out.finished = run_worker(spec, tp) == 0;
    return out;
  }

  // ---- coordinator -----------------------------------------------------
  telemetry::TraceRegion trace("serve.campaign");
  WallTimer timer;
  const std::vector<SolveTask> tasks = build_tasks(spec);
  const LatticeGeometry geo(read_gauge_header(spec.configs.at(0)).dims);
  const MachineModel machine = machine_by_name(spec.machine);
  const ShardPlan plan = shard_tasks(spec, tasks, geo, machine);
  std::vector<double> task_cost;
  task_cost.reserve(tasks.size());
  for (const SolveTask& t : tasks)
    task_cost.push_back(modeled_task_seconds(spec, t, geo, machine));

  CampaignOutcome outcome;
  outcome.total = static_cast<int>(tasks.size());
  std::filesystem::create_directories(spec.output);
  const std::string journal_path = spec.output + "/journal.lqj";

  Journal journal;
  const ReplayResult replay = journal.open(journal_path);
  const std::size_t nlanes = plan.lanes.size();
  std::set<int> done;
  bool ended = false;
  std::vector<bool> replay_dead(nlanes, false);
  struct Move {
    int task = 0, from = 0, to = 0;
  };
  std::vector<Move> replay_moves;
  if (replay.records.empty()) {
    journal.append(RecordType::CampaignBegin, begin_payload(spec));
  } else {
    const Record& first = replay.records.front();
    LQCD_REQUIRE(first.type == RecordType::CampaignBegin,
                 "journal does not start with campaign_begin: " +
                     journal_path);
    const json::Value head = json::Value::parse(first.payload);
    const auto fp = static_cast<std::uint32_t>(
        head.get_or("fingerprint", std::int64_t{0}));
    if (fp != spec_fingerprint(spec))
      throw FatalError("journal " + journal_path +
                       " belongs to a different campaign spec "
                       "(fingerprint mismatch); refusing to resume");
    for (const Record& rec : replay.records) {
      switch (rec.type) {
        case RecordType::TaskDone:
          done.insert(static_cast<int>(
              json::Value::parse(rec.payload).get_or("task",
                                                     std::int64_t{-1})));
          break;
        case RecordType::CampaignEnd: ended = true; break;
        case RecordType::LaneDead: {
          const int lane =
              json::Value::parse(rec.payload).get_or("lane", -1);
          if (lane >= 0 && lane < static_cast<int>(nlanes))
            replay_dead[static_cast<std::size_t>(lane)] = true;
          break;
        }
        case RecordType::TaskReassigned: {
          const json::Value v = json::Value::parse(rec.payload);
          replay_moves.push_back({.task = v.get_or("task", -1),
                                  .from = v.get_or("from", 0),
                                  .to = v.get_or("to", 0)});
          break;
        }
        default: break;
      }
    }
  }
  outcome.skipped = static_cast<int>(done.size());
  for (std::size_t l = 0; l < nlanes; ++l)
    outcome.lanes_lost += replay_dead[l];
  outcome.tasks_reassigned += static_cast<int>(replay_moves.size());
  telemetry::counter("serve.tasks_skipped")
      .add(static_cast<std::int64_t>(done.size()));

  std::vector<Lane> lanes(nlanes);
  const auto alive_count = [&] {
    int n = 0;
    for (const Lane& l : lanes) n += l.alive;
    return n;
  };
  const auto unfinished = [&] {
    return outcome.total - static_cast<int>(done.size());
  };
  const auto all_dead_error = [&] {
    return FatalError("campaign " + spec.name + ": every lane is dead, " +
                      std::to_string(unfinished()) +
                      " tasks stranded (journal remains replayable: " +
                      journal_path + ")");
  };
  const auto stop_workers = [&] {
    const std::string stop = "{\"op\":\"stop\"}";
    for (std::size_t l = 0; l < nlanes; ++l)
      if (lanes[l].alive && tp.peer_alive(static_cast<int>(l) + 1))
        tp.send(static_cast<int>(l) + 1,
                make_seq_tag(TagKind::kTask, lanes[l].sent++),
                as_bytes(stop));
  };

  try {
    if (!ended) {
      for (std::size_t l = 0; l < nlanes; ++l)
        lanes[l].queue = plan.lanes[l];
      for (const Move& m : replay_moves) {
        const bool ok = m.from >= 0 && m.from < static_cast<int>(nlanes) &&
                        m.to >= 0 && m.to < static_cast<int>(nlanes);
        if (!ok) continue;
        auto& q = lanes[static_cast<std::size_t>(m.from)].queue;
        q.erase(std::remove(q.begin(), q.end(), m.task), q.end());
        lanes[static_cast<std::size_t>(m.to)].queue.push_back(m.task);
      }
      for (std::size_t l = 0; l < nlanes; ++l) {
        lanes[l].alive = !replay_dead[l];
        for (const int id : lanes[l].queue)
          if (!done.count(id))
            lanes[l].remaining += task_cost[static_cast<std::size_t>(id)];
      }

      std::uint64_t epoch = 0;
      const auto reshard_from = [&](std::size_t l, int in_flight) {
        Lane& lane = lanes[l];
        std::vector<int> orphans;
        if (in_flight >= 0 && !done.count(in_flight))
          orphans.push_back(in_flight);
        for (std::size_t i = lane.next; i < lane.queue.size(); ++i)
          if (!done.count(lane.queue[i])) orphans.push_back(lane.queue[i]);
        lane.next = lane.queue.size();
        lane.remaining = 0.0;
        if (orphans.empty()) return;
        if (alive_count() == 0) throw all_dead_error();
        std::vector<double> rem(nlanes, 0.0);
        std::vector<bool> alive(nlanes, false);
        for (std::size_t k = 0; k < nlanes; ++k) {
          rem[k] = lanes[k].remaining;
          alive[k] = lanes[k].alive;
        }
        const std::vector<Reassignment> moves = reshard_orphans(
            orphans, static_cast<int>(l), task_cost, rem, alive);
        for (const Reassignment& m : moves) {
          journal.append(RecordType::TaskReassigned,
                         reassigned_payload(m.task, m.from, m.to));
          lanes[static_cast<std::size_t>(m.to)].queue.push_back(m.task);
          ++outcome.tasks_reassigned;
          telemetry::counter("serve.tasks_reassigned").add(1);
        }
        for (std::size_t k = 0; k < nlanes; ++k)
          lanes[k].remaining = rem[k];
      };

      // A previous life may have died between LaneDead and the full
      // batch of TaskReassigned frames; finish the hand-off.
      if (alive_count() == 0 && unfinished() > 0) throw all_dead_error();
      for (std::size_t l = 0; l < nlanes; ++l)
        if (replay_dead[l]) reshard_from(l, -1);

      std::vector<std::byte> buf;
      while (unfinished() > 0) {
        bool progress = false;
        for (std::size_t l = 0; l < nlanes; ++l) {
          Lane& lane = lanes[l];
          const int li = static_cast<int>(l);
          const int peer = li + 1;
          if (!lane.alive) continue;

          // Real lane death: the transport saw the worker's socket EOF
          // or its shm dead flag. Journal it and re-shard, the in-flight
          // task first.
          if (!tp.peer_alive(peer)) {
            lane.alive = false;
            ++outcome.lanes_lost;
            telemetry::counter("serve.lane_deaths").add(1);
            journal.append(RecordType::LaneDead,
                           lane_dead_payload(li, epoch));
            log_warn("serve: worker rank ", peer,
                     " died; re-sharding its tasks");
            reshard_from(l, lane.outstanding);
            lane.outstanding = -1;
            progress = true;
            continue;
          }

          // Idle lane with work left: dispatch the next unfinished task.
          if (lane.outstanding < 0) {
            while (lane.next < lane.queue.size() &&
                   done.count(lane.queue[lane.next]))
              ++lane.next;
            if (lane.next < lane.queue.size()) {
              const int tid = lane.queue[lane.next++];
              lane.outstanding = tid;
              lane.attempt = 0;
              journal.append(
                  RecordType::TaskRunning,
                  running_payload(tasks[static_cast<std::size_t>(tid)], li,
                                  0));
              tp.send(peer, make_seq_tag(TagKind::kTask, lane.sent++),
                      as_bytes(dispatch_payload(tid, 0)));
              ++epoch;
              progress = true;
            }
          }

          // Result pump.
          if (lane.outstanding >= 0 &&
              tp.try_recv(peer, make_seq_tag(TagKind::kResult, lane.recvd),
                          buf)) {
            ++lane.recvd;
            const int tid = lane.outstanding;
            const SolveTask& task = tasks[static_cast<std::size_t>(tid)];
            const std::string_view r = as_view(buf);
            if (r.substr(0, 3) == "ok\n") {
              journal.append(RecordType::TaskDone,
                             std::string(r.substr(3)));
              telemetry::counter("serve.tasks_done").add(1);
              telemetry::counter("serve.columns_solved").add(Ns * Nc);
              done.insert(tid);
              ++outcome.completed;
              lane.remaining = std::max(
                  0.0, lane.remaining -
                           task_cost[static_cast<std::size_t>(tid)]);
              lane.outstanding = -1;
            } else {
              const std::string why(r.substr(std::min<std::size_t>(
                  r.size(), 4)));  // after "err\n"
              journal.append(RecordType::TaskFailed,
                             failed_payload(task, lane.attempt, why));
              telemetry::counter("serve.transient_failures").add(1);
              ++outcome.transient_failures;
              if (lane.attempt >= spec.max_retries)
                throw FatalError("task " + std::to_string(tid) +
                                 " exhausted its retry budget (" +
                                 std::to_string(spec.max_retries) +
                                 "): " + why);
              telemetry::counter("serve.task_retries").add(1);
              ++lane.attempt;
              journal.append(RecordType::TaskRunning,
                             running_payload(task, li, lane.attempt));
              tp.send(peer, make_seq_tag(TagKind::kTask, lane.sent++),
                      as_bytes(dispatch_payload(tid, lane.attempt)));
              ++epoch;
            }
            progress = true;
          }
        }
        if (!progress)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      outcome.lanes_lost = 0;
      for (std::size_t l = 0; l < nlanes; ++l)
        outcome.lanes_lost += !lanes[l].alive;
      journal.append(RecordType::CampaignEnd, "{}");
    }
    stop_workers();
  } catch (...) {
    stop_workers();  // leave no worker blocked on a recv forever
    throw;
  }
  outcome.degraded = outcome.lanes_lost > 0;
  outcome.finished = true;
  outcome.seconds = timer.seconds();
  telemetry::counter("serve.campaigns").add(1);
  if (write_result)
    write_campaign_result(spec, replay_journal(journal_path).records,
                          outcome);
  return outcome;
}

}  // namespace lqcd::serve
