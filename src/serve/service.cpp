#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <set>
#include <unordered_map>

#include "gauge/io.hpp"
#include "spectro/correlator.hpp"
#include "spectro/propagator.hpp"
#include "util/atomic_io.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace lqcd::serve {

namespace {

std::string begin_payload(const CampaignSpec& spec) {
  json::Writer w;
  w.begin_object()
      .field("name", spec.name)
      .field("fingerprint",
             static_cast<std::int64_t>(spec_fingerprint(spec)))
      .field("tasks", spec.num_tasks())
      .end_object();
  return w.str();
}

std::string running_payload(const SolveTask& task, int lane, int attempt) {
  json::Writer w;
  w.begin_object()
      .field("task", task.id)
      .field("lane", lane)
      .field("attempt", attempt)
      .end_object();
  return w.str();
}

std::string failed_payload(const SolveTask& task, int attempt,
                           std::string_view why) {
  json::Writer w;
  w.begin_object()
      .field("task", task.id)
      .field("attempt", attempt)
      .field("error", why)
      .end_object();
  return w.str();
}

std::string lane_dead_payload(int lane, std::uint64_t epoch) {
  json::Writer w;
  w.begin_object()
      .field("lane", lane)
      .field("epoch", static_cast<std::int64_t>(epoch))
      .end_object();
  return w.str();
}

std::string reassigned_payload(int task, int from, int to,
                               bool speculative) {
  json::Writer w;
  w.begin_object()
      .field("task", task)
      .field("from", from)
      .field("to", to)
      .field("reason", speculative ? "speculative" : "lane_dead")
      .end_object();
  return w.str();
}

}  // namespace

std::string solve_task_payload(const CampaignSpec& spec,
                               const LatticeGeometry& geo,
                               const GaugeFieldD& config,
                               const SolveTask& task, int attempt) {
  const SourceSpec source = parse_source_spec(
      spec.sources[static_cast<std::size_t>(task.source)]);
  const double kappa = spec.kappas[static_cast<std::size_t>(task.kappa)];

  telemetry::TraceRegion trace("serve.solve");
  PropagatorParams params;
  params.kappa = kappa;
  params.solver.tol = spec.tol;
  params.solver.max_iterations = spec.max_iterations;
  params.method = spec.solver;
  params.block = spec.block;
  if (attempt > 0 && spec.solver == SolverKind::BlockCg) {
    // Retry on the scalar pipeline: eo_cg has full breakdown
    // recovery, the block path deliberately does not.
    params.method = SolverKind::EoCg;
    params.block = 1;
  }
  Propagator prop(geo);
  const PropagatorStats stats =
      compute_propagator(prop, config, params, source);
  if (!stats.converged)
    throw TransientError("solve unconverged (worst rel " +
                         std::to_string(stats.worst_residual) + ")");

  const int t0 =
      source.kind == SourceKind::Point ? source.point[3] : source.t0;
  const Correlator pion = pion_correlator(prop, t0);

  // Result payload: deterministic fields only (no wall time), so a
  // resumed campaign journals bytes identical to an uninterrupted
  // one.
  json::Writer w;
  w.begin_object()
      .field("task", task.id)
      .field("config",
             spec.configs[static_cast<std::size_t>(task.config)])
      .field("kappa", kappa)
      .field("source", spec.sources[static_cast<std::size_t>(task.source)])
      .field("solver", to_string(params.method))
      .field("block", params.block)
      .field("attempt", attempt)
      .field("iterations", stats.total_iterations)
      .field("worst_residual", stats.worst_residual);
  w.key("pion").begin_array();
  for (const double c : pion.c) w.value(c);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string CampaignService::journal_path() const {
  return spec_.output + "/journal.lqj";
}

CampaignService::CampaignService(CampaignSpec spec, ServiceOptions opts)
    : spec_(std::move(spec)),
      opts_(opts),
      tasks_(build_tasks(spec_)),
      plan_(shard_tasks(spec_, tasks_,
                        LatticeGeometry(
                            read_gauge_header(spec_.configs.at(0)).dims),
                        machine_by_name(spec_.machine))),
      geo_(read_gauge_header(spec_.configs.at(0)).dims),
      configs_(spec_.configs.size()) {
  // Every config must live on one geometry: the service keeps one
  // propagator workspace shape for the whole campaign.
  for (const std::string& path : spec_.configs) {
    const GaugeFileHeader h = read_gauge_header(path);
    LQCD_REQUIRE(h.dims == geo_.dims(),
                 "campaign configs disagree on lattice dims: " + path);
  }
  // Per-task modeled cost: the currency of heartbeat deadlines and of
  // LPT re-sharding when a lane dies.
  const MachineModel machine = machine_by_name(spec_.machine);
  task_cost_.reserve(tasks_.size());
  for (const SolveTask& t : tasks_)
    task_cost_.push_back(modeled_task_seconds(spec_, t, geo_, machine));
}

CampaignService::~CampaignService() = default;

const GaugeFieldD& CampaignService::config(int index) {
  auto& slot = configs_.at(static_cast<std::size_t>(index));
  if (!slot) {
    telemetry::TraceRegion trace("serve.config_load");
    slot = std::make_unique<GaugeFieldD>(geo_);
    load_gauge(*slot, spec_.configs[static_cast<std::size_t>(index)]);
    telemetry::counter("serve.config_loads").add(1);
  }
  return *slot;
}

void CampaignService::execute_task(Journal& journal, const SolveTask& task,
                                   int lane, std::uint64_t epoch) {
  for (int attempt = 0;; ++attempt) {
    journal.append(RecordType::TaskRunning,
                   running_payload(task, lane, attempt));
    // A scheduled kill lands after the Running frame: the exact crash
    // window (daemon died mid-solve) the resume path must cover.
    if (opts_.faults && opts_.faults->should_kill(epoch, lane)) {
      opts_.faults->record_kill();
      telemetry::counter("serve.kills").add(1);
      throw TransientError("service killed at epoch " +
                           std::to_string(epoch) + " (task " +
                           std::to_string(task.id) + "); rerun to resume");
    }
    try {
      // Injected transient fault (modeled lost lane / preempted node).
      if (opts_.faults &&
          opts_.faults->should_drop(epoch, lane, 0, 0, attempt))
        throw TransientError("injected transient fault");

      journal.append(RecordType::TaskDone,
                     solve_task_payload(spec_, geo_, config(task.config),
                                        task, attempt));
      telemetry::counter("serve.tasks_done").add(1);
      telemetry::counter("serve.columns_solved").add(Ns * Nc);
      return;
    } catch (const TransientError& e) {
      journal.append(RecordType::TaskFailed,
                     failed_payload(task, attempt, e.what()));
      telemetry::counter("serve.transient_failures").add(1);
      if (attempt >= spec_.max_retries)
        throw FatalError("task " + std::to_string(task.id) +
                         " exhausted its retry budget (" +
                         std::to_string(spec_.max_retries) +
                         "): " + e.what());
      telemetry::counter("serve.task_retries").add(1);
      log_warn("serve: task ", task.id, " attempt ", attempt,
               " failed transiently (", e.what(), "), retrying");
    }
  }
}

CampaignOutcome CampaignService::run() {
  telemetry::TraceRegion trace("serve.campaign");
  WallTimer timer;
  CampaignOutcome outcome;
  outcome.total = static_cast<int>(tasks_.size());
  std::filesystem::create_directories(spec_.output);

  Journal journal;
  const ReplayResult replay = journal.open(journal_path());
  if (replay.truncated_bytes > 0) {
    telemetry::counter("serve.journal_truncated_bytes")
        .add(static_cast<std::int64_t>(replay.truncated_bytes));
    log_warn("serve: dropped ", replay.truncated_bytes,
             " torn bytes from ", journal_path());
  }

  // Reconcile with any previous life of this campaign: finished tasks,
  // and the recovery decisions (lane deaths, reassignments) this journal
  // already committed to — a resumed run replays those instead of
  // re-deriving them.
  const std::size_t nlanes = plan_.lanes.size();
  std::set<int> done;
  bool ended = false;
  std::vector<bool> replay_dead(nlanes, false);
  struct Move {
    int task = 0, from = 0, to = 0;
    bool speculative = false;
  };
  std::vector<Move> replay_moves;
  if (replay.records.empty()) {
    journal.append(RecordType::CampaignBegin, begin_payload(spec_));
  } else {
    const Record& first = replay.records.front();
    LQCD_REQUIRE(first.type == RecordType::CampaignBegin,
                 "journal does not start with campaign_begin: " +
                     journal_path());
    const json::Value head = json::Value::parse(first.payload);
    const auto fp =
        static_cast<std::uint32_t>(head.get_or("fingerprint",
                                               std::int64_t{0}));
    if (fp != spec_fingerprint(spec_))
      throw FatalError("journal " + journal_path() +
                       " belongs to a different campaign spec "
                       "(fingerprint mismatch); refusing to resume");
    for (const Record& rec : replay.records) {
      switch (rec.type) {
        case RecordType::TaskDone:
          done.insert(static_cast<int>(
              json::Value::parse(rec.payload).get_or("task",
                                                     std::int64_t{-1})));
          break;
        case RecordType::CampaignEnd: ended = true; break;
        case RecordType::LaneDead: {
          const int lane =
              json::Value::parse(rec.payload).get_or("lane", -1);
          if (lane >= 0 && lane < static_cast<int>(nlanes))
            replay_dead[static_cast<std::size_t>(lane)] = true;
          break;
        }
        case RecordType::TaskReassigned: {
          const json::Value v = json::Value::parse(rec.payload);
          replay_moves.push_back(
              {.task = v.get_or("task", -1),
               .from = v.get_or("from", 0),
               .to = v.get_or("to", 0),
               .speculative =
                   v.get_or("reason", std::string()) == "speculative"});
          break;
        }
        default: break;
      }
    }
  }
  outcome.skipped = static_cast<int>(done.size());
  for (std::size_t l = 0; l < nlanes; ++l)
    outcome.lanes_lost += replay_dead[l];
  for (const Move& m : replay_moves)
    outcome.tasks_reassigned += !m.speculative;
  telemetry::counter("serve.tasks_skipped")
      .add(static_cast<std::int64_t>(done.size()));
  if (telemetry::enabled())
    telemetry::gauge("serve.shard_imbalance").set(plan_.imbalance());

  if (!ended) {
    // Per-lane execution state, seeded from the static shard plan with
    // the journaled recovery decisions replayed on top.
    struct LaneExec {
      std::vector<int> queue;
      std::size_t next = 0;
      double remaining = 0.0;  ///< modeled seconds of unfinished work
      int stall = 0;           ///< slots left grinding on a straggler
      std::set<int> straggled; ///< tasks already straggled on this lane
    };
    std::vector<LaneExec> lanes(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l)
      lanes[l].queue = plan_.lanes[l];

    LaneHealthModel health(static_cast<int>(nlanes), spec_.deadline_misses);
    std::set<int> speculated;       // tasks with a live replica
    std::map<int, int> spec_owner;  // replica task -> original lane
    for (const Move& m : replay_moves) {
      const bool lane_ok = m.from >= 0 && m.from < static_cast<int>(nlanes) &&
                           m.to >= 0 && m.to < static_cast<int>(nlanes);
      if (!lane_ok) continue;
      if (m.speculative) {
        lanes[static_cast<std::size_t>(m.to)].queue.push_back(m.task);
        speculated.insert(m.task);
        spec_owner[m.task] = m.from;
      } else {
        auto& q = lanes[static_cast<std::size_t>(m.from)].queue;
        q.erase(std::remove(q.begin(), q.end(), m.task), q.end());
        lanes[static_cast<std::size_t>(m.to)].queue.push_back(m.task);
      }
    }
    for (std::size_t l = 0; l < nlanes; ++l)
      if (replay_dead[l]) health.mark_dead(static_cast<int>(l));
    for (std::size_t l = 0; l < nlanes; ++l)
      for (const int id : lanes[l].queue)
        if (!done.count(id))
          lanes[l].remaining += task_cost_[static_cast<std::size_t>(id)];

    const auto unfinished = [&] {
      return outcome.total - static_cast<int>(done.size());
    };
    const auto all_dead_error = [&] {
      return FatalError(
          "campaign " + spec_.name + ": every lane is dead, " +
          std::to_string(unfinished()) +
          " tasks stranded (journal remains replayable: " + journal_path() +
          ")");
    };

    // Re-shard a dead lane's unfinished tasks over the survivors (LPT by
    // remaining modeled seconds) and journal each decision.
    const auto reshard_from = [&](std::size_t l) {
      LaneExec& lane = lanes[l];
      std::vector<int> orphans;
      for (std::size_t i = lane.next; i < lane.queue.size(); ++i)
        if (!done.count(lane.queue[i])) orphans.push_back(lane.queue[i]);
      lane.next = lane.queue.size();
      lane.remaining = 0.0;
      if (orphans.empty()) return;
      std::vector<double> rem(nlanes, 0.0);
      std::vector<bool> alive(nlanes, false);
      for (std::size_t k = 0; k < nlanes; ++k) {
        rem[k] = lanes[k].remaining;
        alive[k] = health.alive(static_cast<int>(k));
      }
      const std::vector<Reassignment> moves = reshard_orphans(
          orphans, static_cast<int>(l), task_cost_, rem, alive);
      for (const Reassignment& m : moves) {
        journal.append(RecordType::TaskReassigned,
                       reassigned_payload(m.task, m.from, m.to, false));
        lanes[static_cast<std::size_t>(m.to)].queue.push_back(m.task);
        ++outcome.tasks_reassigned;
        telemetry::counter("serve.tasks_reassigned").add(1);
      }
      for (std::size_t k = 0; k < nlanes; ++k) lanes[k].remaining = rem[k];
    };

    // A previous life may have died between LaneDead and the full batch
    // of TaskReassigned frames; finish the hand-off deterministically.
    if (health.alive_count() == 0 && unfinished() > 0)
      throw all_dead_error();
    for (std::size_t l = 0; l < nlanes; ++l)
      if (replay_dead[l]) reshard_from(l);

    std::uint64_t epoch = 0;
    const std::int64_t t0 = telemetry::counter("serve.transient_failures")
                                .value();
    while (true) {
      bool pending = false;
      for (std::size_t l = 0; l < nlanes && !pending; ++l)
        pending = health.alive(static_cast<int>(l)) &&
                  lanes[l].next < lanes[l].queue.size();
      if (!pending) break;

      // One scheduling round: every alive lane gets one slot, epochs
      // numbering the slots globally and deterministically (the fault
      // injector keys on them). With no lane faults this degenerates to
      // exactly the original wave execution.
      for (std::size_t l = 0; l < nlanes; ++l) {
        LaneExec& lane = lanes[l];
        const int li = static_cast<int>(l);
        if (!health.alive(li) || lane.next >= lane.queue.size()) continue;
        const std::uint64_t e = epoch++;
        const int tid = lane.queue[lane.next];

        // Dead-lane silence: no heartbeat by the modeled deadline.
        if (opts_.faults && opts_.faults->lane_dead(e, li)) {
          telemetry::counter("serve.deadline_misses").add(1);
          if (health.miss(li) == LaneHealth::Dead) {
            opts_.faults->record_lane_death();
            telemetry::counter("serve.lane_deaths").add(1);
            journal.append(RecordType::LaneDead, lane_dead_payload(li, e));
            log_warn("serve: lane ", li, " declared dead at epoch ", e,
                     "; re-sharding its tasks");
            if (health.alive_count() == 0)
              throw all_dead_error();  // nothing left to re-shard onto
            reshard_from(l);
          }
          continue;
        }

        // A straggler still grinding through its modeled slowdown.
        if (lane.stall > 0) {
          --lane.stall;
          continue;
        }

        const SolveTask& task = tasks_[static_cast<std::size_t>(tid)];
        if (done.count(tid)) {  // finished in a previous life, or the
                                // other replica won the race
          lane.remaining = std::max(
              0.0, lane.remaining - task_cost_[static_cast<std::size_t>(
                                        tid)]);
          ++lane.next;
          continue;
        }

        // Straggle: the modeled slowdown blows the heartbeat deadline.
        // The lane turns suspect and keeps grinding (stall slots); the
        // task is speculatively replicated onto the least-loaded healthy
        // lane, and whichever copy finishes first wins.
        if (opts_.faults && !lane.straggled.count(tid)) {
          const double mult = opts_.faults->task_straggle_mult(e, li);
          if (mult > spec_.heartbeat_margin) {
            lane.straggled.insert(tid);
            lane.stall = std::max(1, static_cast<int>(std::lround(mult)) -
                                         1);
            health.suspect(li);
            log_warn("serve: lane ", li, " straggling on task ", tid,
                     " (", mult, "x modeled time)");
            if (spec_.speculate && !speculated.count(tid)) {
              int rescue = -1;
              for (std::size_t k = 0; k < nlanes; ++k) {
                if (k == l ||
                    health.health(static_cast<int>(k)) !=
                        LaneHealth::Healthy)
                  continue;
                if (rescue < 0 ||
                    lanes[k].remaining <
                        lanes[static_cast<std::size_t>(rescue)].remaining)
                  rescue = static_cast<int>(k);
              }
              if (rescue >= 0) {
                speculated.insert(tid);
                spec_owner[tid] = li;
                lanes[static_cast<std::size_t>(rescue)].queue.push_back(
                    tid);
                lanes[static_cast<std::size_t>(rescue)].remaining +=
                    task_cost_[static_cast<std::size_t>(tid)];
                journal.append(
                    RecordType::TaskReassigned,
                    reassigned_payload(tid, li, rescue, true));
                ++outcome.speculative_tasks;
                telemetry::counter("serve.speculative_tasks").add(1);
              }
            }
            continue;
          }
        }

        execute_task(journal, task, li, e);
        done.insert(tid);
        ++outcome.completed;
        lane.remaining = std::max(
            0.0,
            lane.remaining - task_cost_[static_cast<std::size_t>(tid)]);
        ++lane.next;
        health.heartbeat(li);  // on-time completion: suspect recovers
        if (speculated.count(tid) && spec_owner[tid] != li) {
          ++outcome.speculative_wins;  // the replica beat the straggler
          telemetry::counter("serve.speculative_wins").add(1);
        }
      }
    }
    if (static_cast<int>(done.size()) < outcome.total)
      throw all_dead_error();  // drained with work left: no lane survived

    outcome.transient_failures = static_cast<int>(
        telemetry::counter("serve.transient_failures").value() - t0);
    outcome.lanes_lost = health.dead_count();
    journal.append(RecordType::CampaignEnd, "{}");
  }
  outcome.degraded = outcome.lanes_lost > 0;
  outcome.finished = true;
  outcome.seconds = timer.seconds();
  telemetry::counter("serve.campaigns").add(1);

  if (opts_.write_result)
    write_result_json(replay_journal(journal_path()).records, outcome);
  return outcome;
}

void CampaignService::write_result_json(
    const std::vector<Record>& records,
    const CampaignOutcome& outcome) const {
  write_campaign_result(spec_, records, outcome);
}

void write_campaign_result(const CampaignSpec& spec,
                           const std::vector<Record>& records,
                           const CampaignOutcome& outcome) {
  // Degraded-mode figures are campaign-cumulative, so recount them from
  // the journal rather than trusting this run's outcome (a resume sees
  // only the deltas). Speculative wins are execution-time facts the
  // journal deliberately cannot name (TaskDone payloads carry no lane),
  // so those come from the outcome.
  std::set<int> dead_lanes;
  int tasks_reassigned = 0;
  int speculative_tasks = 0;
  for (const Record& rec : records) {
    if (rec.type == RecordType::LaneDead) {
      dead_lanes.insert(
          json::Value::parse(rec.payload).get_or("lane", -1));
    } else if (rec.type == RecordType::TaskReassigned) {
      const bool spec = json::Value::parse(rec.payload)
                            .get_or("reason", std::string()) ==
                        "speculative";
      ++(spec ? speculative_tasks : tasks_reassigned);
    }
  }
  json::Writer w;
  w.begin_object()
      .field("schema", kResultSchema)
      .field("name", spec.name)
      .field("fingerprint",
             static_cast<std::int64_t>(spec_fingerprint(spec)))
      .field("tasks_total", outcome.total)
      .field("tasks_skipped", outcome.skipped)
      .field("tasks_completed", outcome.completed)
      .field("transient_failures", outcome.transient_failures)
      .field("lanes_lost", static_cast<int>(dead_lanes.size()))
      .field("tasks_reassigned", tasks_reassigned)
      .field("speculative_tasks", speculative_tasks)
      .field("speculative_wins", outcome.speculative_wins)
      .field("degraded", !dead_lanes.empty())
      .field("seconds", outcome.seconds);
  // Every task's first TaskDone payload, in task order (the journal is
  // append order; resumes interleave and a speculative loser may journal
  // a duplicate — first wins, results should carry exactly one per task).
  std::vector<std::pair<int, const Record*>> results;
  std::set<int> seen;
  for (const Record& rec : records)
    if (rec.type == RecordType::TaskDone) {
      const int id =
          static_cast<int>(json::Value::parse(rec.payload)
                               .get_or("task", std::int64_t{-1}));
      if (seen.insert(id).second) results.emplace_back(id, &rec);
    }
  std::sort(results.begin(), results.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.key("results").begin_array();
  for (const auto& [id, rec] : results) w.raw(rec->payload);
  w.end_array();
  // The lqcd.telemetry/1 report rides along, serve.* counters included.
  w.key("telemetry").raw(telemetry::report_json(false));
  w.end_object();
  atomic_write_file(spec.output + "/result.json",
                    [&](std::ostream& os) { os << w.str() << "\n"; });
}

CampaignStatus CampaignService::status(const std::string& journal_path) {
  CampaignStatus st;
  const ReplayResult replay = replay_journal(journal_path);
  st.frames = replay.records.size();
  st.truncated_bytes = replay.truncated_bytes;
  if (replay.records.empty()) return st;
  st.journal_found = true;
  std::set<int> done;
  std::set<int> dead_lanes;
  std::unordered_map<int, int> open_runs;
  for (const Record& rec : replay.records) {
    const auto task_of = [&rec]() {
      return static_cast<int>(json::Value::parse(rec.payload)
                                  .get_or("task", std::int64_t{-1}));
    };
    switch (rec.type) {
      case RecordType::CampaignBegin: {
        const json::Value head = json::Value::parse(rec.payload);
        st.total = head.get_or("tasks", 0);
        st.fingerprint = static_cast<std::uint32_t>(
            head.get_or("fingerprint", std::int64_t{0}));
        break;
      }
      case RecordType::TaskRunning: ++open_runs[task_of()]; break;
      case RecordType::TaskDone:
        done.insert(task_of());
        open_runs[task_of()] = 0;
        break;
      case RecordType::TaskFailed:
        ++st.failed_attempts;
        open_runs[task_of()] = 0;
        break;
      case RecordType::CampaignEnd: st.finished = true; break;
      case RecordType::LaneDead:
        dead_lanes.insert(
            json::Value::parse(rec.payload).get_or("lane", -1));
        break;
      case RecordType::TaskReassigned: {
        const bool spec = json::Value::parse(rec.payload)
                              .get_or("reason", std::string()) ==
                          "speculative";
        ++(spec ? st.speculative_tasks : st.tasks_reassigned);
        break;
      }
    }
  }
  st.done = static_cast<int>(done.size());
  st.lanes_lost = static_cast<int>(dead_lanes.size());
  for (const auto& [task, open] : open_runs) st.in_flight += open > 0;
  return st;
}

}  // namespace lqcd::serve
