#include "serve/service.hpp"

#include <algorithm>
#include <filesystem>
#include <set>
#include <unordered_map>

#include "gauge/io.hpp"
#include "spectro/correlator.hpp"
#include "spectro/propagator.hpp"
#include "util/atomic_io.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace lqcd::serve {

namespace {

std::string begin_payload(const CampaignSpec& spec) {
  json::Writer w;
  w.begin_object()
      .field("name", spec.name)
      .field("fingerprint",
             static_cast<std::int64_t>(spec_fingerprint(spec)))
      .field("tasks", spec.num_tasks())
      .end_object();
  return w.str();
}

std::string running_payload(const SolveTask& task, int lane, int attempt) {
  json::Writer w;
  w.begin_object()
      .field("task", task.id)
      .field("lane", lane)
      .field("attempt", attempt)
      .end_object();
  return w.str();
}

std::string failed_payload(const SolveTask& task, int attempt,
                           std::string_view why) {
  json::Writer w;
  w.begin_object()
      .field("task", task.id)
      .field("attempt", attempt)
      .field("error", why)
      .end_object();
  return w.str();
}

}  // namespace

std::string CampaignService::journal_path() const {
  return spec_.output + "/journal.lqj";
}

CampaignService::CampaignService(CampaignSpec spec, ServiceOptions opts)
    : spec_(std::move(spec)),
      opts_(opts),
      tasks_(build_tasks(spec_)),
      plan_(shard_tasks(spec_, tasks_,
                        LatticeGeometry(
                            read_gauge_header(spec_.configs.at(0)).dims),
                        machine_by_name(spec_.machine))),
      geo_(read_gauge_header(spec_.configs.at(0)).dims),
      configs_(spec_.configs.size()) {
  // Every config must live on one geometry: the service keeps one
  // propagator workspace shape for the whole campaign.
  for (const std::string& path : spec_.configs) {
    const GaugeFileHeader h = read_gauge_header(path);
    LQCD_REQUIRE(h.dims == geo_.dims(),
                 "campaign configs disagree on lattice dims: " + path);
  }
}

CampaignService::~CampaignService() = default;

const GaugeFieldD& CampaignService::config(int index) {
  auto& slot = configs_.at(static_cast<std::size_t>(index));
  if (!slot) {
    telemetry::TraceRegion trace("serve.config_load");
    slot = std::make_unique<GaugeFieldD>(geo_);
    load_gauge(*slot, spec_.configs[static_cast<std::size_t>(index)]);
    telemetry::counter("serve.config_loads").add(1);
  }
  return *slot;
}

void CampaignService::execute_task(Journal& journal, const SolveTask& task,
                                   int lane, std::uint64_t epoch) {
  const SourceSpec source = parse_source_spec(
      spec_.sources[static_cast<std::size_t>(task.source)]);
  const double kappa = spec_.kappas[static_cast<std::size_t>(task.kappa)];

  for (int attempt = 0;; ++attempt) {
    journal.append(RecordType::TaskRunning,
                   running_payload(task, lane, attempt));
    // A scheduled kill lands after the Running frame: the exact crash
    // window (daemon died mid-solve) the resume path must cover.
    if (opts_.faults && opts_.faults->should_kill(epoch, lane)) {
      opts_.faults->record_kill();
      telemetry::counter("serve.kills").add(1);
      throw TransientError("service killed at epoch " +
                           std::to_string(epoch) + " (task " +
                           std::to_string(task.id) + "); rerun to resume");
    }
    try {
      // Injected transient fault (modeled lost lane / preempted node).
      if (opts_.faults &&
          opts_.faults->should_drop(epoch, lane, 0, 0, attempt))
        throw TransientError("injected transient fault");

      telemetry::TraceRegion trace("serve.solve");
      PropagatorParams params;
      params.kappa = kappa;
      params.solver.tol = spec_.tol;
      params.solver.max_iterations = spec_.max_iterations;
      params.method = spec_.solver;
      params.block = spec_.block;
      if (attempt > 0 && spec_.solver == SolverKind::BlockCg) {
        // Retry on the scalar pipeline: eo_cg has full breakdown
        // recovery, the block path deliberately does not.
        params.method = SolverKind::EoCg;
        params.block = 1;
      }
      Propagator prop(geo_);
      const PropagatorStats stats =
          compute_propagator(prop, config(task.config), params, source);
      if (!stats.converged)
        throw TransientError("solve unconverged (worst rel " +
                             std::to_string(stats.worst_residual) + ")");

      const int t0 =
          source.kind == SourceKind::Point ? source.point[3] : source.t0;
      const Correlator pion = pion_correlator(prop, t0);

      // Result payload: deterministic fields only (no wall time), so a
      // resumed campaign journals bytes identical to an uninterrupted
      // one.
      json::Writer w;
      w.begin_object()
          .field("task", task.id)
          .field("config", spec_.configs[static_cast<std::size_t>(
                               task.config)])
          .field("kappa", kappa)
          .field("source",
                 spec_.sources[static_cast<std::size_t>(task.source)])
          .field("solver", to_string(params.method))
          .field("block", params.block)
          .field("attempt", attempt)
          .field("iterations", stats.total_iterations)
          .field("worst_residual", stats.worst_residual);
      w.key("pion").begin_array();
      for (const double c : pion.c) w.value(c);
      w.end_array();
      w.end_object();
      journal.append(RecordType::TaskDone, w.str());
      telemetry::counter("serve.tasks_done").add(1);
      telemetry::counter("serve.columns_solved").add(Ns * Nc);
      return;
    } catch (const TransientError& e) {
      journal.append(RecordType::TaskFailed,
                     failed_payload(task, attempt, e.what()));
      telemetry::counter("serve.transient_failures").add(1);
      if (attempt >= spec_.max_retries)
        throw FatalError("task " + std::to_string(task.id) +
                         " exhausted its retry budget (" +
                         std::to_string(spec_.max_retries) +
                         "): " + e.what());
      telemetry::counter("serve.task_retries").add(1);
      log_warn("serve: task ", task.id, " attempt ", attempt,
               " failed transiently (", e.what(), "), retrying");
    }
  }
}

CampaignOutcome CampaignService::run() {
  telemetry::TraceRegion trace("serve.campaign");
  WallTimer timer;
  CampaignOutcome outcome;
  outcome.total = static_cast<int>(tasks_.size());
  std::filesystem::create_directories(spec_.output);

  Journal journal;
  const ReplayResult replay = journal.open(journal_path());
  if (replay.truncated_bytes > 0) {
    telemetry::counter("serve.journal_truncated_bytes")
        .add(static_cast<std::int64_t>(replay.truncated_bytes));
    log_warn("serve: dropped ", replay.truncated_bytes,
             " torn bytes from ", journal_path());
  }

  // Reconcile with any previous life of this campaign.
  std::set<int> done;
  bool ended = false;
  if (replay.records.empty()) {
    journal.append(RecordType::CampaignBegin, begin_payload(spec_));
  } else {
    const Record& first = replay.records.front();
    LQCD_REQUIRE(first.type == RecordType::CampaignBegin,
                 "journal does not start with campaign_begin: " +
                     journal_path());
    const json::Value head = json::Value::parse(first.payload);
    const auto fp =
        static_cast<std::uint32_t>(head.get_or("fingerprint",
                                               std::int64_t{0}));
    if (fp != spec_fingerprint(spec_))
      throw FatalError("journal " + journal_path() +
                       " belongs to a different campaign spec "
                       "(fingerprint mismatch); refusing to resume");
    for (const Record& rec : replay.records) {
      if (rec.type == RecordType::TaskDone)
        done.insert(static_cast<int>(
            json::Value::parse(rec.payload).get_or("task",
                                                   std::int64_t{-1})));
      ended = ended || rec.type == RecordType::CampaignEnd;
    }
  }
  outcome.skipped = static_cast<int>(done.size());
  telemetry::counter("serve.tasks_skipped")
      .add(static_cast<std::int64_t>(done.size()));
  if (telemetry::enabled())
    telemetry::gauge("serve.shard_imbalance").set(plan_.imbalance());

  if (!ended) {
    // Wave execution: wave w hands every lane its w-th task. Epochs
    // number execution slots globally and deterministically, which is
    // what the fault injector keys on.
    std::size_t max_wave = 0;
    for (const auto& lane : plan_.lanes)
      max_wave = std::max(max_wave, lane.size());
    std::uint64_t epoch = 0;
    const std::int64_t t0 = telemetry::counter("serve.transient_failures")
                                .value();
    for (std::size_t wave = 0; wave < max_wave; ++wave) {
      for (std::size_t lane = 0; lane < plan_.lanes.size(); ++lane) {
        if (wave >= plan_.lanes[lane].size()) continue;
        const SolveTask& task = tasks_[static_cast<std::size_t>(
            plan_.lanes[lane][wave])];
        const std::uint64_t e = epoch++;
        if (done.count(task.id)) continue;  // finished in a previous life
        execute_task(journal, task, static_cast<int>(lane), e);
        done.insert(task.id);
        ++outcome.completed;
      }
    }
    outcome.transient_failures = static_cast<int>(
        telemetry::counter("serve.transient_failures").value() - t0);
    journal.append(RecordType::CampaignEnd, "{}");
  }
  outcome.finished = true;
  outcome.seconds = timer.seconds();
  telemetry::counter("serve.campaigns").add(1);

  if (opts_.write_result)
    write_result_json(replay_journal(journal_path()).records, outcome);
  return outcome;
}

void CampaignService::write_result_json(
    const std::vector<Record>& records,
    const CampaignOutcome& outcome) const {
  json::Writer w;
  w.begin_object()
      .field("schema", kResultSchema)
      .field("name", spec_.name)
      .field("fingerprint",
             static_cast<std::int64_t>(spec_fingerprint(spec_)))
      .field("tasks_total", outcome.total)
      .field("tasks_skipped", outcome.skipped)
      .field("tasks_completed", outcome.completed)
      .field("transient_failures", outcome.transient_failures)
      .field("seconds", outcome.seconds);
  // Every TaskDone payload, in task order (the journal is append order;
  // resumes interleave, results should not).
  std::vector<std::pair<int, const Record*>> results;
  for (const Record& rec : records)
    if (rec.type == RecordType::TaskDone)
      results.emplace_back(
          static_cast<int>(json::Value::parse(rec.payload)
                               .get_or("task", std::int64_t{-1})),
          &rec);
  std::sort(results.begin(), results.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.key("results").begin_array();
  for (const auto& [id, rec] : results) w.raw(rec->payload);
  w.end_array();
  // The lqcd.telemetry/1 report rides along, serve.* counters included.
  w.key("telemetry").raw(telemetry::report_json(false));
  w.end_object();
  atomic_write_file(spec_.output + "/result.json",
                    [&](std::ostream& os) { os << w.str() << "\n"; });
}

CampaignStatus CampaignService::status(const std::string& journal_path) {
  CampaignStatus st;
  const ReplayResult replay = replay_journal(journal_path);
  st.frames = replay.records.size();
  st.truncated_bytes = replay.truncated_bytes;
  if (replay.records.empty()) return st;
  st.journal_found = true;
  std::set<int> done;
  std::unordered_map<int, int> open_runs;
  for (const Record& rec : replay.records) {
    const auto task_of = [&rec]() {
      return static_cast<int>(json::Value::parse(rec.payload)
                                  .get_or("task", std::int64_t{-1}));
    };
    switch (rec.type) {
      case RecordType::CampaignBegin: {
        const json::Value head = json::Value::parse(rec.payload);
        st.total = head.get_or("tasks", 0);
        st.fingerprint = static_cast<std::uint32_t>(
            head.get_or("fingerprint", std::int64_t{0}));
        break;
      }
      case RecordType::TaskRunning: ++open_runs[task_of()]; break;
      case RecordType::TaskDone:
        done.insert(task_of());
        open_runs[task_of()] = 0;
        break;
      case RecordType::TaskFailed:
        ++st.failed_attempts;
        open_runs[task_of()] = 0;
        break;
      case RecordType::CampaignEnd: st.finished = true; break;
    }
  }
  st.done = static_cast<int>(done.size());
  for (const auto& [task, open] : open_runs) st.in_flight += open > 0;
  return st;
}

}  // namespace lqcd::serve
