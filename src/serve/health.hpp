#pragma once
// Lane health model for the campaign service.
//
// The service mirrors how a petascale campaign runner reasons about its
// workers: every lane is expected to heartbeat within a modeled deadline
// (heartbeat_margin x modeled_task_seconds of its current task). A lane
// that misses one deadline is *suspect* — still scheduled, but its
// in-flight straggler becomes a speculation candidate. A lane that keeps
// missing deadlines (deadline_misses in a row, default 2) is declared
// *dead* and leaves the rotation permanently; its remaining tasks are
// LPT-redistributed over the survivors. A suspect lane that completes a
// task on time recovers to healthy.
//
// Transitions are driven only by the deterministic slot iteration in
// CampaignService::run(), so health decisions — like everything else in
// the service — are a pure function of (spec, fault schedule, journal).

#include <vector>

namespace lqcd::serve {

enum class LaneHealth { Healthy, Suspect, Dead };

[[nodiscard]] const char* to_string(LaneHealth h);

class LaneHealthModel {
 public:
  /// `deadline_misses` consecutive missed deadlines declare a lane dead.
  LaneHealthModel(int lanes, int deadline_misses);

  [[nodiscard]] LaneHealth health(int lane) const;
  [[nodiscard]] bool alive(int lane) const {
    return health(lane) != LaneHealth::Dead;
  }
  [[nodiscard]] int alive_count() const;
  [[nodiscard]] int dead_count() const;
  [[nodiscard]] int lanes() const { return static_cast<int>(health_.size()); }

  /// A heartbeat arrived within its deadline (task completed on time):
  /// suspect lanes recover, the miss streak resets.
  void heartbeat(int lane);

  /// A modeled deadline passed with no heartbeat (dead lane silence).
  /// Returns the new health: Suspect on the first miss, Dead once the
  /// streak reaches the configured limit.
  LaneHealth miss(int lane);

  /// A straggler blew through its deadline but the lane still responds:
  /// mark suspect without advancing the death streak.
  void suspect(int lane);

  /// Force-mark dead (replaying a journaled LaneDead decision).
  void mark_dead(int lane);

 private:
  std::vector<LaneHealth> health_;
  std::vector<int> misses_;
  int deadline_misses_;
};

}  // namespace lqcd::serve
