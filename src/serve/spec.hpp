#pragma once
// Campaign specifications for the propagator service.
//
// A campaign is the cross product {gauge configs} x {kappas} x {sources}:
// every combination is one *task* — a full 12-column propagator solve plus
// the pion contraction. Specs are JSON documents ("lqcd.campaign/1"); the
// parser validates against the solver factory's kind names and the
// spectro source-spec language, so a typo dies at submit time, not three
// hours into the queue.
//
// The task list is a flat DAG: tasks are mutually independent but each
// depends on its gauge configuration being resident, which is why task
// ids are assigned config-major — the scheduler keeps same-config tasks
// adjacent so one config load (and one solver setup per kappa) serves a
// run of tasks.
//
// canonical_json() re-serializes a spec in fixed key order; its CRC-32 is
// the campaign fingerprint stored in the journal, which is how a resume
// refuses to continue someone else's half-finished campaign.

#include <cstdint>
#include <string>
#include <vector>

#include "solver/factory.hpp"
#include "spectro/source.hpp"
#include "util/json.hpp"

namespace lqcd::serve {

inline constexpr const char* kSpecSchema = "lqcd.campaign/1";

/// One unit of queue work: all 12 propagator columns of (config, kappa,
/// source), solved with the campaign's configured pipeline.
struct SolveTask {
  int id = 0;          ///< dense 0..n-1, config-major order
  int config = 0;      ///< index into CampaignSpec::configs
  int kappa = 0;       ///< index into CampaignSpec::kappas
  int source = 0;      ///< index into CampaignSpec::sources
};

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<std::string> configs;  ///< gauge configuration file paths
  std::vector<double> kappas;
  std::vector<std::string> sources;  ///< spectro source-spec strings

  // Solve pipeline (maps onto SolverConfig via the factory).
  SolverKind solver = SolverKind::BlockCg;
  double tol = 1e-9;
  int max_iterations = 20000;
  int block = 4;  ///< multi-RHS width fed to make_block_solver (1..12)

  // Scheduling.
  int ranks = 4;                     ///< virtual service lanes to shard over
  std::string machine = "cluster";   ///< comm/machine.hpp preset name
  int max_retries = 2;               ///< transient-failure budget per task

  // Lane-failure recovery (see serve/health.hpp). A lane whose current
  // task exceeds heartbeat_margin x modeled_task_seconds missed its
  // heartbeat; deadline_misses consecutive misses declare it dead and
  // re-shard its tasks. Suspect-lane stragglers are speculatively
  // re-executed on a healthy lane when `speculate` is set.
  double heartbeat_margin = 4.0;
  int deadline_misses = 2;
  bool speculate = true;

  std::string output = "campaign_out";  ///< journal + result directory

  [[nodiscard]] int num_tasks() const {
    return static_cast<int>(configs.size() * kappas.size() * sources.size());
  }
};

/// Parse and validate a spec document; throws lqcd::Error with the field
/// name on anything malformed.
[[nodiscard]] CampaignSpec parse_campaign(const json::Value& doc);

/// Read + parse a spec file.
[[nodiscard]] CampaignSpec load_campaign(const std::string& path);

/// Serialize in canonical (fixed) key order.
void write_campaign(json::Writer& w, const CampaignSpec& spec);
[[nodiscard]] std::string canonical_json(const CampaignSpec& spec);

/// CRC-32 of canonical_json(): identifies the campaign in the journal.
[[nodiscard]] std::uint32_t spec_fingerprint(const CampaignSpec& spec);

/// Expand the cross product into the task list, config-major
/// (config, then kappa, then source), ids dense from 0.
[[nodiscard]] std::vector<SolveTask> build_tasks(const CampaignSpec& spec);

}  // namespace lqcd::serve
