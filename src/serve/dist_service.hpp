#pragma once
// Multi-process campaign execution over the lqcd::transport layer: the
// SPMD port of CampaignService, where the spec's "lanes" become real
// worker processes.
//
// Rank 0 is the coordinator. It owns the journal (same format, same
// fingerprint, same frame vocabulary as the virtual service — a
// campaign can be started virtual and resumed distributed or vice
// versa, provided the lane counts agree), shards tasks over the
// size-1 worker ranks with the same deterministic LPT plan, and runs a
// dispatch loop: task out on the kTask tag stream, result back on the
// kResult stream, TaskRunning / TaskDone / TaskFailed journaled at the
// coordinator so there is exactly one journal.
//
// Workers (ranks 1..N-1) are loops around solve_task_payload(): the
// byte-producing solve is the *same function* the virtual service
// calls, so the TaskDone payloads a distributed campaign journals are
// byte-identical to a virtual run of the same spec — CI diffs the
// result.json "results" arrays of both modes.
//
// Worker death is the real thing here, not a model: a SIGKILLed or
// self-exited worker surfaces as a dead peer (socket EOF / shm dead
// flag); the coordinator journals LaneDead, re-shards the orphans with
// the same reshard_orphans() the virtual service uses (the in-flight
// task rides along as the first orphan), and the campaign completes
// degraded on the survivors — FatalError only when no worker is left.
// The env knob LQCD_WORKER_DIE_AFTER=K (set per rank by lqcd_launch
// --die-rank R --die-after-tasks K) makes a worker self-exit after
// completing K tasks: the deterministic kill drill CI runs.

#include <string>

#include "comm/transport/transport.hpp"
#include "serve/service.hpp"

namespace lqcd::serve {

/// Execute (or resume) `spec` over a live transport group. Collective:
/// every rank of the group must call it. Returns a populated outcome on
/// rank 0; workers return a default outcome with finished=true.
/// The spec's `ranks` field is overridden to size-1 (the worker count).
/// Throws FatalError (rank 0) when a task exhausts its retry budget or
/// every worker died with tasks remaining.
CampaignOutcome run_distributed_campaign(const CampaignSpec& spec,
                                         transport::Transport& tp,
                                         bool write_result = true);

}  // namespace lqcd::serve
