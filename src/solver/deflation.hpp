#pragma once
// Low-mode deflation.
//
// Critical slowing down is driven by a handful of tiny eigenvalues of
// M^†M. Given (approximate) low eigenpairs (from lanczos.hpp), the
// deflated solve splits the solution exactly:
//
//   x = sum_k <v_k, b> / lambda_k * v_k   (low-mode part, direct)
//     + solve on the deflated rhs  b_perp = b - sum_k <v_k, b> v_k,
//
// where CG on b_perp converges at the rate of the *deflated* condition
// number. This is the simplest member of the eigcg/deflation family every
// multi-rhs production campaign (propagators: 12 solves per source!)
// relies on.

#include <vector>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/lanczos.hpp"
#include "solver/solver.hpp"

namespace lqcd {

/// Deflation subspace built from Lanczos eigenpairs.
class Deflator {
 public:
  /// Keeps pairs with residual below `residual_cut` (loose vectors hurt
  /// more than they help).
  explicit Deflator(std::vector<EigenPair> pairs,
                    double residual_cut = 1e-4) {
    for (auto& p : pairs) {
      if (p.residual > residual_cut) continue;
      values_.push_back(p.value);
      vectors_.push_back(std::move(p.vector));
    }
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::vector<double>& values() const {
    return values_;
  }

  /// x_low = sum_k <v_k, b>/lambda_k v_k;  b_perp = b - sum <v_k,b> v_k.
  void split(std::span<WilsonSpinorD> x_low,
             std::span<WilsonSpinorD> b_perp,
             std::span<const WilsonSpinorD> b) const {
    blas::zero(x_low);
    blas::copy(b_perp, b);
    for (std::size_t k = 0; k < values_.size(); ++k) {
      std::span<const WilsonSpinorD> v(vectors_[k].data(),
                                       vectors_[k].size());
      const Cplxd c = blas::dot(v, b);
      blas::caxpy(Cplxd(c.re / values_[k], c.im / values_[k]), v, x_low);
      blas::caxpy(Cplxd(-c.re, -c.im), v,
                  std::span<WilsonSpinorD>(b_perp.data(), b_perp.size()));
    }
  }

 private:
  std::vector<double> values_;
  std::vector<aligned_vector<WilsonSpinorD>> vectors_;
};

/// Deflated ("init-guess") CG: the low-mode solution estimate seeds CG on
/// the full system. Because CG starts from x0 = x_low, the initial
/// residual is high-mode dominated and convergence proceeds at the
/// deflated rate — while the final accuracy is independent of the
/// eigenvector quality (the projection only shapes the starting point).
inline SolverResult deflated_cg_solve(const LinearOperator<double>& a,
                                      const Deflator& deflator,
                                      std::span<WilsonSpinorD> x,
                                      std::span<const WilsonSpinorD> b,
                                      const SolverParams& params) {
  const std::size_t n = b.size();
  aligned_vector<WilsonSpinorD> xlow(n), bperp(n);
  deflator.split(std::span<WilsonSpinorD>(xlow.data(), n),
                 std::span<WilsonSpinorD>(bperp.data(), n), b);
  blas::copy(x, std::span<const WilsonSpinorD>(xlow.data(), n));
  return cg_solve<double>(a, x, b, params);
}

}  // namespace lqcd
