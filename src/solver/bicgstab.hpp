#pragma once
// BiCGStab for the (non-hermitian) Wilson/clover operator M itself.
// Roughly half the iterations of CG on M^†M at one operator apply more per
// iteration — the standard trade-off the solver benches quantify.

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

template <typename T>
SolverResult bicgstab_solve(const LinearOperator<T>& m,
                            std::span<WilsonSpinor<T>> x,
                            std::span<const WilsonSpinor<T>> b,
                            const SolverParams& params) {
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "bicgstab size mismatch");

  WallTimer timer;
  SolverResult res;

  aligned_vector<WilsonSpinor<T>> r_s(n), r0_s(n), p_s(n), v_s(n), t_s(n);
  std::span<WilsonSpinor<T>> r(r_s.data(), n), r0(r0_s.data(), n),
      p(p_s.data(), n), v(v_s.data(), n), t(t_s.data(), n);
  auto cspan = [](std::span<WilsonSpinor<T>> s) {
    return std::span<const WilsonSpinor<T>>(s.data(), s.size());
  };

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    blas::zero(x);
    res.converged = true;
    res.seconds = timer.seconds();
    return res;
  }
  const double target2 = params.tol * params.tol * b_norm2;

  // r = b - M x; r0 = r; p = r.
  m.apply(r, cspan(x));
  parallel_for(n, [&](std::size_t i) {
    WilsonSpinor<T> w = b[i];
    w -= r[i];
    r[i] = w;
  });
  blas::copy(r0, cspan(r));
  blas::copy(p, cspan(r));

  Cplxd rho = blas::dot(cspan(r0), cspan(r));
  double rr = blas::norm2(cspan(r));

  const double op_flops = m.flops_per_apply();
  const double site_flops = static_cast<double>(n) * 10.0 * 48.0;

  int it = 0;
  bool breakdown = false;
  for (; it < params.max_iterations && rr > target2; ++it) {
    m.apply(v, cspan(p));
    const Cplxd r0v = blas::dot(cspan(r0), cspan(v));
    if (norm2(r0v) == 0.0) {
      breakdown = true;
      break;
    }
    const Cplxd alpha = div(rho, r0v);
    // s = r - alpha v   (reuse r as s)
    blas::caxpy(Cplx<T>(static_cast<T>(-alpha.re), static_cast<T>(-alpha.im)),
                cspan(v), r);
    const double ss = blas::norm2(cspan(r));
    if (ss <= target2) {
      // x += alpha p; converged on the half step.
      blas::caxpy(Cplx<T>(static_cast<T>(alpha.re), static_cast<T>(alpha.im)),
                  cspan(p), x);
      rr = ss;
      ++it;
      res.flops += op_flops + site_flops;
      break;
    }
    m.apply(t, cspan(r));
    const double tt = blas::norm2(cspan(t));
    if (tt == 0.0) {
      breakdown = true;
      break;
    }
    const Cplxd ts = blas::dot(cspan(t), cspan(r));
    const Cplxd omega(ts.re / tt, ts.im / tt);
    // x += alpha p + omega s
    blas::caxpy(Cplx<T>(static_cast<T>(alpha.re), static_cast<T>(alpha.im)),
                cspan(p), x);
    blas::caxpy(Cplx<T>(static_cast<T>(omega.re), static_cast<T>(omega.im)),
                cspan(r), x);
    // r = s - omega t
    blas::caxpy(Cplx<T>(static_cast<T>(-omega.re), static_cast<T>(-omega.im)),
                cspan(t), r);
    rr = blas::norm2(cspan(r));
    const Cplxd rho_new = blas::dot(cspan(r0), cspan(r));
    if (norm2(rho) == 0.0 || norm2(omega) == 0.0) {
      breakdown = true;
      break;
    }
    const Cplxd beta = div(rho_new, rho) * div(alpha, omega);
    rho = rho_new;
    // p = r + beta (p - omega v)
    blas::caxpy(Cplx<T>(static_cast<T>(-omega.re), static_cast<T>(-omega.im)),
                cspan(v), p);
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> w = p[i];
      w *= Cplx<T>(static_cast<T>(beta.re), static_cast<T>(beta.im));
      w += r[i];
      p[i] = w;
    });
    res.flops += 2.0 * op_flops + site_flops;
    if (params.verbose)
      log_debug("bicgstab iter ", it + 1, " rel ", std::sqrt(rr / b_norm2));
  }

  res.iterations = it;
  res.converged = !breakdown && rr <= target2;
  if (params.check_true_residual) {
    m.apply(t, cspan(x));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> w = b[i];
      w -= t[i];
      t[i] = w;
    });
    res.relative_residual = std::sqrt(blas::norm2(cspan(t)) / b_norm2);
    res.converged =
        res.converged && res.relative_residual <= 10 * params.tol;
  } else {
    res.relative_residual = std::sqrt(rr / b_norm2);
  }
  res.seconds = timer.seconds();
  return res;
}

}  // namespace lqcd
