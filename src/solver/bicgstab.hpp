#pragma once
// BiCGStab for the (non-hermitian) Wilson/clover operator M itself.
// Roughly half the iterations of CG on M^†M at one operator apply more per
// iteration — the standard trade-off the solver benches quantify.
//
// BiCGStab's two-sided recursion is famously fragile: rho or omega can
// collapse to (near) zero on perfectly solvable systems, and a NaN from a
// corrupted operator apply poisons every later iterate. Both are detected
// per iteration; the solver then rebuilds the recursion from the true
// residual (the standard BiCGStab restart) up to params.max_restarts
// times before reporting the breakdown in SolverResult.

#include <cmath>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

template <typename T>
SolverResult bicgstab_solve(const LinearOperator<T>& m,
                            std::span<WilsonSpinor<T>> x,
                            std::span<const WilsonSpinor<T>> b,
                            const SolverParams& params) {
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "bicgstab size mismatch");

  telemetry::TraceRegion trace("solver.bicgstab");
  WallTimer timer;
  SolverResult res;

  aligned_vector<WilsonSpinor<T>> r_s(n), r0_s(n), p_s(n), v_s(n), t_s(n);
  std::span<WilsonSpinor<T>> r(r_s.data(), n), r0(r0_s.data(), n),
      p(p_s.data(), n), v(v_s.data(), n), t(t_s.data(), n);
  auto cspan = [](std::span<WilsonSpinor<T>> s) {
    return std::span<const WilsonSpinor<T>>(s.data(), s.size());
  };

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    blas::zero(x);
    res.converged = true;
    res.seconds = timer.seconds();
    record_solve("bicgstab", res);
    return res;
  }
  const double target2 = params.tol * params.tol * b_norm2;

  const double op_flops = m.flops_per_apply();
  const double site_flops = static_cast<double>(n) * 10.0 * 48.0;

  // (Re)start the recursion from the true residual:
  // r = b - M x; r0 = r; p = r.
  Cplxd rho;
  const auto rebuild = [&]() -> double {
    m.apply(r, cspan(x));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> w = b[i];
      w -= r[i];
      r[i] = w;
    });
    blas::copy(r0, cspan(r));
    blas::copy(p, cspan(r));
    rho = blas::dot(cspan(r0), cspan(r));
    return blas::norm2(cspan(r));
  };
  double rr = rebuild();
  res.flops += op_flops;  // initial residual build is one apply

  int it = 0;
  double best_rr = rr;
  int since_best = 0;
  while (it < params.max_iterations && rr > target2) {
    Breakdown bd = Breakdown::None;
    m.apply(v, cspan(p));
    const Cplxd r0v = blas::dot(cspan(r0), cspan(v));
    if (!std::isfinite(r0v.re) || !std::isfinite(r0v.im)) {
      bd = Breakdown::NonFinite;
    } else if (norm2(r0v) == 0.0) {
      bd = Breakdown::ZeroPivot;
    } else {
      const Cplxd alpha = div(rho, r0v);
      // s = r - alpha v   (reuse r as s)
      blas::caxpy(
          Cplx<T>(static_cast<T>(-alpha.re), static_cast<T>(-alpha.im)),
          cspan(v), r);
      const double ss = blas::norm2(cspan(r));
      if (!std::isfinite(ss)) {
        bd = Breakdown::NonFinite;
      } else if (ss <= target2) {
        // x += alpha p; converged on the half step.
        blas::caxpy(
            Cplx<T>(static_cast<T>(alpha.re), static_cast<T>(alpha.im)),
            cspan(p), x);
        rr = ss;
        ++it;
        res.flops += op_flops + site_flops;
        break;
      } else {
        m.apply(t, cspan(r));
        const double tt = blas::norm2(cspan(t));
        if (!std::isfinite(tt)) {
          bd = Breakdown::NonFinite;
        } else if (tt == 0.0) {
          bd = Breakdown::ZeroPivot;
        } else {
          const Cplxd ts = blas::dot(cspan(t), cspan(r));
          const Cplxd omega(ts.re / tt, ts.im / tt);
          // x += alpha p + omega s
          blas::caxpy(
              Cplx<T>(static_cast<T>(alpha.re), static_cast<T>(alpha.im)),
              cspan(p), x);
          blas::caxpy(
              Cplx<T>(static_cast<T>(omega.re), static_cast<T>(omega.im)),
              cspan(r), x);
          // r = s - omega t
          blas::caxpy(
              Cplx<T>(static_cast<T>(-omega.re), static_cast<T>(-omega.im)),
              cspan(t), r);
          rr = blas::norm2(cspan(r));
          const Cplxd rho_new = blas::dot(cspan(r0), cspan(r));
          if (!std::isfinite(rr) || !std::isfinite(rho_new.re) ||
              !std::isfinite(rho_new.im)) {
            bd = Breakdown::NonFinite;
          } else if (norm2(rho) == 0.0 || norm2(omega) == 0.0) {
            bd = Breakdown::ZeroPivot;
          } else {
            const Cplxd beta = div(rho_new, rho) * div(alpha, omega);
            rho = rho_new;
            // p = r + beta (p - omega v)
            blas::caxpy(Cplx<T>(static_cast<T>(-omega.re),
                                static_cast<T>(-omega.im)),
                        cspan(v), p);
            parallel_for(n, [&](std::size_t i) {
              WilsonSpinor<T> w = p[i];
              w *= Cplx<T>(static_cast<T>(beta.re), static_cast<T>(beta.im));
              w += r[i];
              p[i] = w;
            });
            ++it;
            res.flops += 2.0 * op_flops + site_flops;
            if (rr < best_rr) {
              best_rr = rr;
              since_best = 0;
            } else if (params.stagnation_window > 0 &&
                       ++since_best >= params.stagnation_window) {
              bd = Breakdown::Stagnation;
            }
            // Residual trace at Debug level (self-gated).
            log_debug("bicgstab iter ", it, " rel ",
                      std::sqrt(rr / b_norm2));
          }
        }
      }
    }
    if (bd != Breakdown::None) {
      res.breakdown = bd;
      if (res.restarts >= params.max_restarts) break;
      ++res.restarts;
      if (!std::isfinite(blas::norm2(cspan(x)))) blas::zero(x);
      rr = rebuild();
      res.flops += op_flops;
      best_rr = rr;
      since_best = 0;
      log_info("bicgstab: breakdown (", to_string(bd), ") at iter ", it,
               ", restart ", res.restarts, "/", params.max_restarts);
    }
  }

  res.iterations = it;
  // On a terminal breakdown the loop exits with rr above target, so the
  // residual test alone decides convergence (recovered restarts don't
  // disqualify a solve that went on to converge).
  res.converged = rr <= target2;
  if (params.check_true_residual) {
    m.apply(t, cspan(x));
    res.flops += op_flops;  // true-residual verification apply
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> w = b[i];
      w -= t[i];
      t[i] = w;
    });
    res.relative_residual = std::sqrt(blas::norm2(cspan(t)) / b_norm2);
    res.converged =
        res.converged && res.relative_residual <= 10 * params.tol;
  } else {
    res.relative_residual = std::sqrt(rr / b_norm2);
  }
  if (res.converged) res.breakdown = Breakdown::None;  // fully recovered
  res.seconds = timer.seconds();
  record_solve("bicgstab", res);
  return res;
}

}  // namespace lqcd
