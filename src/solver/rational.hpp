#pragma once
// Rational approximation of the inverse square root and matrix-function
// application through multishift CG.
//
// Construction: Neuberger's integral representation
//
//   x^{-1/2} = (2/pi) * Int_0^inf dt / (t^2 + x),
//
// discretized with the midpoint rule after t = tan(theta):
//
//   x^{-1/2} ~= sum_k r_k / (x + p_k),
//   p_k = tan^2(theta_k),  r_k = 1/(N cos^2(theta_k)),
//   theta_k = (k - 1/2) pi / (2N),
//
// which converges rapidly for x in a bounded positive interval (the
// accuracy/range trade is characterized by the tests). Applying the
// approximation to a hermitian positive operator costs ONE multishift CG
// run regardless of the number of poles:
//
//   A^{-1/2} b ~= sum_k r_k (A + p_k)^{-1} b.
//
// This is the computational core of overlap fermions (sign function) and
// RHMC-style rational actions.

#include <cmath>
#include <vector>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/multishift_cg.hpp"
#include "util/error.hpp"

namespace lqcd {

/// Partial-fraction approximation f(x) ~= c0 + sum_k r_k / (x + p_k).
struct RationalApprox {
  double c0 = 0.0;
  std::vector<double> residues;  ///< r_k
  std::vector<double> poles;     ///< p_k (all >= 0)

  /// Evaluate on a scalar (tests, diagnostics).
  [[nodiscard]] double evaluate(double x) const {
    double y = c0;
    for (std::size_t k = 0; k < residues.size(); ++k)
      y += residues[k] / (x + poles[k]);
    return y;
  }
};

/// N-pole approximation of x^{-1/2} (see header comment): the tan^2
/// quadrature, whose transformed integrand is smooth and periodic so the
/// midpoint rule superconverges.
inline RationalApprox rational_inverse_sqrt(int n_poles) {
  LQCD_REQUIRE(n_poles >= 1, "need at least one pole");
  RationalApprox r;
  r.residues.reserve(static_cast<std::size_t>(n_poles));
  r.poles.reserve(static_cast<std::size_t>(n_poles));
  const double pi = 3.14159265358979323846;
  for (int k = 1; k <= n_poles; ++k) {
    const double theta = (k - 0.5) * pi / (2.0 * n_poles);
    const double c = std::cos(theta);
    const double t = std::tan(theta);
    r.poles.push_back(t * t);
    r.residues.push_back(1.0 / (n_poles * c * c));
  }
  return r;
}

/// N-pole approximation of x^{-s} over [scale_min, scale_max] for
/// 0 < s < 1, from the Stieltjes integral
///
///   x^{-s} = (sin(pi s)/pi) Int_0^inf du u^{-s} / (u + x),
///
/// discretized on a geometric pole ladder (midpoint rule after
/// u = e^y): p_k = e^{y_k}, w_k = (sin(pi s)/pi) h e^{(1-s) y_k}.
/// The y-range covers [log(scale_min), log(scale_max)] plus margins
/// sized so the truncated tails are ~1e-4 relative. The trapezoid error
/// decays like exp(-2 pi^2 / h), so accuracy improves geometrically with
/// the pole count (characterized by tests). For s = 1/2 prefer
/// rational_inverse_sqrt_scaled (faster-converging construction).
inline RationalApprox rational_inverse_pow_scaled(double s, int n_poles,
                                                  double scale_min,
                                                  double scale_max) {
  LQCD_REQUIRE(n_poles >= 1, "need at least one pole");
  LQCD_REQUIRE(s > 0.0 && s < 1.0, "exponent must lie in (0, 1)");
  LQCD_REQUIRE(scale_min > 0.0 && scale_max >= scale_min,
               "invalid spectral interval");
  if (s == 0.5) {
    // The dedicated construction converges much faster at s = 1/2.
    RationalApprox r = rational_inverse_sqrt(n_poles);
    const double g = std::sqrt(scale_min * scale_max);
    for (auto& p : r.poles) p *= g;
    const double rs = std::sqrt(g);
    for (auto& w : r.residues) w *= rs;
    return r;
  }
  const double pi = 3.14159265358979323846;
  const double margin = 10.0;  // ~e^{-10} truncated tails
  const double ymin = std::log(scale_min) - margin / (1.0 - s);
  const double ymax = std::log(scale_max) + margin / s;
  const double h = (ymax - ymin) / n_poles;
  const double pref = std::sin(pi * s) / pi * h;
  RationalApprox r;
  r.residues.reserve(static_cast<std::size_t>(n_poles));
  r.poles.reserve(static_cast<std::size_t>(n_poles));
  for (int k = 0; k < n_poles; ++k) {
    const double y = ymin + (k + 0.5) * h;
    r.poles.push_back(std::exp(y));
    r.residues.push_back(pref * std::exp((1.0 - s) * y));
  }
  return r;
}

/// x^{-s} targeting x = O(1) (interval [0.1, 10]).
inline RationalApprox rational_inverse_pow(double s, int n_poles) {
  return rational_inverse_pow_scaled(s, n_poles, 0.1, 10.0);
}

/// x^{-1/2} over [scale_min, scale_max] with improved accuracy: apply the
/// plain approximation to x/s with s = sqrt(min*max) (maps the interval
/// symmetrically around 1): x^{-1/2} = s^{-1/2} (x/s)^{-1/2}, i.e. poles
/// scale by s and residues by sqrt(s).
inline RationalApprox rational_inverse_sqrt_scaled(int n_poles,
                                                   double scale_min,
                                                   double scale_max) {
  LQCD_REQUIRE(scale_min > 0.0 && scale_max >= scale_min,
               "invalid spectral interval");
  RationalApprox r = rational_inverse_sqrt(n_poles);
  const double s = std::sqrt(scale_min * scale_max);
  for (auto& p : r.poles) p *= s;
  const double rs = std::sqrt(s);
  for (auto& w : r.residues) w *= rs;
  return r;
}

struct RationalApplyResult {
  bool converged = false;
  int iterations = 0;   ///< multishift CG iterations
  double seconds = 0.0;
};

/// out = [c0 + sum_k r_k (A + p_k)^{-1}] b for hermitian positive A.
template <typename T>
RationalApplyResult apply_rational(const LinearOperator<T>& a,
                                   const RationalApprox& approx,
                                   std::span<WilsonSpinor<T>> out,
                                   std::span<const WilsonSpinor<T>> b,
                                   const SolverParams& params) {
  const std::size_t n = b.size();
  LQCD_REQUIRE(out.size() == n, "apply_rational size mismatch");
  std::vector<aligned_vector<WilsonSpinor<T>>> x(approx.poles.size());
  const MultiShiftResult ms =
      multishift_cg_solve<T>(a, approx.poles, x, b, params);

  // out = c0 * b + sum_k r_k x_k.
  const T c0 = static_cast<T>(approx.c0);
  parallel_for(n, [&](std::size_t i) {
    WilsonSpinor<T> v = b[i];
    v *= c0;
    out[i] = v;
  });
  for (std::size_t k = 0; k < approx.poles.size(); ++k)
    blas::axpy(static_cast<T>(approx.residues[k]),
               std::span<const WilsonSpinor<T>>(x[k].data(), n), out);

  RationalApplyResult res;
  res.converged = ms.converged;
  res.iterations = ms.iterations;
  res.seconds = ms.seconds;
  return res;
}

/// out ~= A^{-1/2} b (convenience wrapper).
template <typename T>
RationalApplyResult apply_inverse_sqrt(const LinearOperator<T>& a,
                                       std::span<WilsonSpinor<T>> out,
                                       std::span<const WilsonSpinor<T>> b,
                                       int n_poles,
                                       double spectrum_min,
                                       double spectrum_max,
                                       const SolverParams& params) {
  const RationalApprox r =
      rational_inverse_sqrt_scaled(n_poles, spectrum_min, spectrum_max);
  return apply_rational(a, r, out, b, params);
}

}  // namespace lqcd
