#pragma once
// Conjugate gradient for hermitian positive-definite operators (M^†M).
//
// Standard three-term CG with double-precision reductions. The residual
// recursion is checked against the true residual on exit when
// params.check_true_residual is set.
//
// Breakdown recovery: NaN/Inf in the recursion, loss of positivity of
// p^†Ap, stagnation (no residual improvement over a window), or a
// recursion that claims convergence the true residual contradicts
// (rounding drift) abort the current Krylov cycle; the solver scrubs a
// non-finite iterate, rebuilds the recursion from the true residual and
// retries, bounded by params.max_restarts. Exhausted restarts return (not
// throw) with SolverResult::breakdown set, so campaign drivers can decide
// policy.

#include <cmath>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

template <typename T>
SolverResult cg_solve(const LinearOperator<T>& a,
                      std::span<WilsonSpinor<T>> x,
                      std::span<const WilsonSpinor<T>> b,
                      const SolverParams& params) {
  LQCD_REQUIRE(a.hermitian_positive(),
               "cg_solve requires a hermitian positive operator");
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "cg_solve size mismatch");

  telemetry::TraceRegion trace("solver.cg");
  WallTimer timer;
  SolverResult res;

  aligned_vector<WilsonSpinor<T>> r_store(n), p_store(n), ap_store(n);
  std::span<WilsonSpinor<T>> r(r_store.data(), n);
  std::span<WilsonSpinor<T>> p(p_store.data(), n);
  std::span<WilsonSpinor<T>> ap(ap_store.data(), n);

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    blas::zero(x);
    res.converged = true;
    res.seconds = timer.seconds();
    record_solve("cg", res);
    return res;
  }
  const double target2 = params.tol * params.tol * b_norm2;

  const double op_flops = a.flops_per_apply();
  const double site_flops =
      static_cast<double>(n) *
      (2.0 * kAxpyFlopsPerSite + kNormFlopsPerSite + kDotFlopsPerSite);

  // (Re)build the recursion from the true residual: r = b - A x; p = r.
  const auto rebuild = [&]() -> double {
    a.apply(r, std::span<const WilsonSpinor<T>>(x.data(), n));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> t = b[i];
      t -= r[i];
      r[i] = t;
    });
    blas::copy(p, std::span<const WilsonSpinor<T>>(r.data(), n));
    return blas::norm2(std::span<const WilsonSpinor<T>>(r.data(), n));
  };
  double rr = rebuild();
  // The initial residual build is one operator apply: charge it, so the
  // flop count telemetry reads stays consistent with the apply counters.
  res.flops += op_flops;

  int it = 0;
  double best_rr = rr;
  int since_best = 0;
  for (;;) {
    while (it < params.max_iterations && rr > target2) {
      Breakdown bd = Breakdown::None;
      a.apply(ap, std::span<const WilsonSpinor<T>>(p.data(), n));
      const double pap =
          blas::re_dot(std::span<const WilsonSpinor<T>>(p.data(), n),
                       std::span<const WilsonSpinor<T>>(ap.data(), n));
      if (!std::isfinite(pap)) {
        bd = Breakdown::NonFinite;
      } else if (pap <= 0.0) {
        bd = Breakdown::LostPositivity;
      } else {
        const double alpha = rr / pap;
        blas::axpy(static_cast<T>(alpha),
                   std::span<const WilsonSpinor<T>>(p.data(), n), x);
        blas::axpy(static_cast<T>(-alpha),
                   std::span<const WilsonSpinor<T>>(ap.data(), n), r);
        const double rr_new =
            blas::norm2(std::span<const WilsonSpinor<T>>(r.data(), n));
        if (!std::isfinite(rr_new)) {
          bd = Breakdown::NonFinite;
        } else {
          const double beta = rr_new / rr;
          // p = r + beta p
          blas::xpay(std::span<const WilsonSpinor<T>>(r.data(), n),
                     static_cast<T>(beta), p);
          rr = rr_new;
          ++it;
          res.flops += op_flops + site_flops;
          if (rr < best_rr) {
            best_rr = rr;
            since_best = 0;
          } else if (params.stagnation_window > 0 &&
                     ++since_best >= params.stagnation_window) {
            bd = Breakdown::Stagnation;
          }
          // Per-iteration residual trace whenever the log level admits
          // it (log_debug gates itself; the level check is one relaxed
          // atomic load).
          log_debug("cg iter ", it, " rel ", std::sqrt(rr / b_norm2));
        }
      }
      if (bd != Breakdown::None) {
        res.breakdown = bd;
        if (res.restarts >= params.max_restarts) break;
        ++res.restarts;
        // A NaN/Inf-infected iterate cannot seed a restart: reset it.
        if (!std::isfinite(
                blas::norm2(std::span<const WilsonSpinor<T>>(x.data(), n))))
          blas::zero(x);
        rr = rebuild();
        res.flops += op_flops;
        best_rr = rr;
        since_best = 0;
        log_info("cg: breakdown (", to_string(bd), ") at iter ", it,
                 ", restart ", res.restarts, "/", params.max_restarts);
      }
    }

    res.converged = rr <= target2;
    if (!params.check_true_residual) {
      res.relative_residual = std::sqrt(rr / b_norm2);
      break;
    }
    a.apply(ap, std::span<const WilsonSpinor<T>>(x.data(), n));
    res.flops += op_flops;  // true-residual verification apply
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> t = b[i];
      t -= ap[i];
      ap[i] = t;
    });
    const double true_r2 =
        blas::norm2(std::span<const WilsonSpinor<T>>(ap.data(), n));
    res.relative_residual = std::sqrt(true_r2 / b_norm2);
    if (res.converged && res.relative_residual > 10 * params.tol) {
      // The recursion claims convergence but the true residual disagrees:
      // accumulated rounding has decoupled the two (the attainable-accuracy
      // stall). Rebuild from the true residual and squeeze again; if the
      // restart budget is spent the solve is stagnant at its floor.
      res.converged = false;
      res.breakdown = Breakdown::Stagnation;
      if (res.restarts < params.max_restarts && it < params.max_iterations) {
        ++res.restarts;
        rr = rebuild();
        res.flops += op_flops;
        best_rr = rr;
        since_best = 0;
        log_info("cg: true residual ", res.relative_residual,
                 " above target after recursion converged, restart ",
                 res.restarts, "/", params.max_restarts);
        continue;
      }
    } else {
      res.converged =
          res.converged && res.relative_residual <= 10 * params.tol;
    }
    break;
  }
  res.iterations = it;
  if (res.converged) res.breakdown = Breakdown::None;  // fully recovered
  res.seconds = timer.seconds();
  record_solve("cg", res);
  return res;
}

}  // namespace lqcd
