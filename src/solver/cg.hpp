#pragma once
// Conjugate gradient for hermitian positive-definite operators (M^†M).
//
// Standard three-term CG with double-precision reductions. The residual
// recursion is checked against the true residual on exit when
// params.check_true_residual is set.

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

template <typename T>
SolverResult cg_solve(const LinearOperator<T>& a,
                      std::span<WilsonSpinor<T>> x,
                      std::span<const WilsonSpinor<T>> b,
                      const SolverParams& params) {
  LQCD_REQUIRE(a.hermitian_positive(),
               "cg_solve requires a hermitian positive operator");
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "cg_solve size mismatch");

  WallTimer timer;
  SolverResult res;

  aligned_vector<WilsonSpinor<T>> r_store(n), p_store(n), ap_store(n);
  std::span<WilsonSpinor<T>> r(r_store.data(), n);
  std::span<WilsonSpinor<T>> p(p_store.data(), n);
  std::span<WilsonSpinor<T>> ap(ap_store.data(), n);

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    blas::zero(x);
    res.converged = true;
    res.seconds = timer.seconds();
    return res;
  }
  const double target2 = params.tol * params.tol * b_norm2;

  // r = b - A x ; p = r.
  a.apply(r, std::span<const WilsonSpinor<T>>(x.data(), n));
  parallel_for(n, [&](std::size_t i) {
    WilsonSpinor<T> t = b[i];
    t -= r[i];
    r[i] = t;
  });
  blas::copy(p, std::span<const WilsonSpinor<T>>(r.data(), n));
  double rr = blas::norm2(std::span<const WilsonSpinor<T>>(r.data(), n));

  const double op_flops = a.flops_per_apply();
  const double site_flops =
      static_cast<double>(n) *
      (2.0 * kAxpyFlopsPerSite + kNormFlopsPerSite + kDotFlopsPerSite);

  int it = 0;
  for (; it < params.max_iterations && rr > target2; ++it) {
    a.apply(ap, std::span<const WilsonSpinor<T>>(p.data(), n));
    const double pap =
        blas::re_dot(std::span<const WilsonSpinor<T>>(p.data(), n),
                     std::span<const WilsonSpinor<T>>(ap.data(), n));
    LQCD_ASSERT(pap > 0.0, "CG: operator not positive definite");
    const double alpha = rr / pap;
    blas::axpy(static_cast<T>(alpha),
               std::span<const WilsonSpinor<T>>(p.data(), n), x);
    blas::axpy(static_cast<T>(-alpha),
               std::span<const WilsonSpinor<T>>(ap.data(), n), r);
    const double rr_new =
        blas::norm2(std::span<const WilsonSpinor<T>>(r.data(), n));
    const double beta = rr_new / rr;
    // p = r + beta p
    blas::xpay(std::span<const WilsonSpinor<T>>(r.data(), n),
               static_cast<T>(beta), p);
    rr = rr_new;
    res.flops += op_flops + site_flops;
    if (params.verbose)
      log_debug("cg iter ", it + 1, " rel ", std::sqrt(rr / b_norm2));
  }

  res.iterations = it;
  res.converged = rr <= target2;
  if (params.check_true_residual) {
    a.apply(ap, std::span<const WilsonSpinor<T>>(x.data(), n));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> t = b[i];
      t -= ap[i];
      ap[i] = t;
    });
    const double true_r2 =
        blas::norm2(std::span<const WilsonSpinor<T>>(ap.data(), n));
    res.relative_residual = std::sqrt(true_r2 / b_norm2);
    res.converged = res.converged && res.relative_residual <= 10 * params.tol;
  } else {
    res.relative_residual = std::sqrt(rr / b_norm2);
  }
  res.seconds = timer.seconds();
  return res;
}

}  // namespace lqcd
