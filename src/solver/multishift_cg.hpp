#pragma once
// Multi-shift conjugate gradient: solves (A + sigma_k) x_k = b for a whole
// family of shifts sigma_k >= 0 simultaneously, at the cost of a single CG
// run on the smallest shift (plus one axpy pair per extra shift).
//
// This is the engine behind rational approximations in RHMC and behind
// mass-preconditioned determinant splittings — the "one Krylov space, many
// masses" trick production lattice code relies on. Implementation follows
// the standard shifted-CG recurrences (Jegerlehner, hep-lat/9612014):
// every shifted residual is a scalar multiple zeta_k of the base residual,
// so only scalar coefficients differ between systems.

#include <vector>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace lqcd {

struct MultiShiftResult {
  bool converged = false;       ///< all shifts reached tolerance
  int iterations = 0;
  double seconds = 0.0;
  double flops = 0.0;
  std::vector<double> shift_residuals;  ///< final |zeta_k| * ||r|| / ||b||
};

/// Solve (A + sigma_k) x_k = b for every k. A must be hermitian positive
/// (semi)definite; shifts must be >= 0 and are processed in any order.
/// x[k] are zero-initialized outputs of length b.size().
template <typename T>
MultiShiftResult multishift_cg_solve(
    const LinearOperator<T>& a, const std::vector<double>& shifts,
    std::vector<aligned_vector<WilsonSpinor<T>>>& x,
    std::span<const WilsonSpinor<T>> b, const SolverParams& params) {
  LQCD_REQUIRE(a.hermitian_positive(),
               "multishift_cg requires a hermitian positive operator");
  const std::size_t nshift = shifts.size();
  LQCD_REQUIRE(nshift >= 1, "need at least one shift");
  for (double s : shifts)
    LQCD_REQUIRE(s >= 0.0, "shifts must be non-negative");
  LQCD_REQUIRE(x.size() == nshift, "output count mismatch");
  const std::size_t n = b.size();

  telemetry::TraceRegion trace("solver.multishift_cg");
  WallTimer timer;
  MultiShiftResult res;
  res.shift_residuals.assign(nshift, 0.0);
  const auto record = [&] {
    if (!telemetry::enabled()) return;
    telemetry::counter("solver.multishift_cg.solves").add(1);
    telemetry::counter("solver.multishift_cg.iterations")
        .add(res.iterations);
    telemetry::counter("solver.multishift_cg.flops")
        .add(static_cast<std::int64_t>(res.flops));
    telemetry::counter("solver.multishift_cg.shifts")
        .add(static_cast<std::int64_t>(nshift));
    if (res.converged)
      telemetry::counter("solver.multishift_cg.converged").add(1);
    else
      telemetry::counter("solver.multishift_cg.unconverged").add(1);
  };

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    for (auto& xs : x) {
      xs.assign(n, WilsonSpinor<T>{});
    }
    res.converged = true;
    res.seconds = timer.seconds();
    record();
    return res;
  }
  const double target2 = params.tol * params.tol * b_norm2;

  // Base system: the smallest shift (best conditioned is the largest, but
  // convergence is governed by the smallest — iterate until IT converges).
  // We solve the sigma = 0 base system and treat every sigma_k as a shift.
  aligned_vector<WilsonSpinor<T>> r_s(n), ap_s(n), p_s(n);
  std::span<WilsonSpinor<T>> r(r_s.data(), n), ap(ap_s.data(), n),
      p(p_s.data(), n);

  // Shifted search directions and scalar recurrences.
  std::vector<aligned_vector<WilsonSpinor<T>>> ps(nshift);
  std::vector<double> zeta(nshift, 1.0), zeta_prev(nshift, 1.0);
  std::vector<double> alpha_s(nshift, 0.0), beta_s(nshift, 0.0);
  std::vector<bool> done(nshift, false);

  for (std::size_t k = 0; k < nshift; ++k) {
    x[k].assign(n, WilsonSpinor<T>{});
    ps[k].assign(b.begin(), b.end());
  }
  blas::copy(r, b);
  blas::copy(p, b);

  double rr = b_norm2;
  double alpha_prev = 1.0;
  double beta_prev = 0.0;

  const double op_flops = a.flops_per_apply();

  int it = 0;
  for (; it < params.max_iterations; ++it) {
    a.apply(ap, std::span<const WilsonSpinor<T>>(p.data(), n));
    const double pap =
        blas::re_dot(std::span<const WilsonSpinor<T>>(p.data(), n),
                     std::span<const WilsonSpinor<T>>(ap.data(), n));
    LQCD_ASSERT(pap > 0.0, "multishift CG: operator not positive");
    const double alpha = rr / pap;

    // Shifted coefficient updates (Jegerlehner recurrences).
    for (std::size_t k = 0; k < nshift; ++k) {
      if (done[k]) continue;
      const double sigma = shifts[k];
      const double z_num = zeta[k] * zeta_prev[k] * alpha_prev;
      const double z_den =
          alpha * beta_prev * (zeta_prev[k] - zeta[k]) +
          zeta_prev[k] * alpha_prev * (1.0 + sigma * alpha);
      const double zeta_next = z_den != 0.0 ? z_num / z_den : 0.0;
      alpha_s[k] = alpha * zeta_next / zeta[k];
      // x_k += alpha_k p_k
      blas::axpy(static_cast<T>(alpha_s[k]),
                 std::span<const WilsonSpinor<T>>(ps[k].data(), n),
                 std::span<WilsonSpinor<T>>(x[k].data(), n));
      zeta_prev[k] = zeta[k];
      zeta[k] = zeta_next;
    }

    // Base residual update.
    blas::axpy(static_cast<T>(-alpha),
               std::span<const WilsonSpinor<T>>(ap.data(), n), r);
    const double rr_new =
        blas::norm2(std::span<const WilsonSpinor<T>>(r.data(), n));
    const double beta = rr_new / rr;

    // Shifted direction updates: p_k = zeta_k r + beta_k p_k.
    for (std::size_t k = 0; k < nshift; ++k) {
      if (done[k]) continue;
      beta_s[k] = beta * (zeta[k] * zeta[k]) /
                  (zeta_prev[k] * zeta_prev[k]);
      // p_k = zeta_k * r + beta_k * p_k
      std::span<WilsonSpinor<T>> pk(ps[k].data(), n);
      const T zk = static_cast<T>(zeta[k]);
      const T bk = static_cast<T>(beta_s[k]);
      parallel_for(n, [&](std::size_t i) {
        WilsonSpinor<T> v = pk[i];
        v *= bk;
        WilsonSpinor<T> zr = r[i];
        zr *= zk;
        v += zr;
        pk[i] = v;
      });
      // Shift k has converged once |zeta_k|^2 rr < target. Record its
      // residual at freeze time: zeta_k and x_k stop updating once done,
      // so evaluating |zeta_k| against the *final* base residual would
      // report a value smaller than the system actually achieved.
      if (zeta[k] * zeta[k] * rr_new <= target2) {
        done[k] = true;
        res.shift_residuals[k] =
            std::sqrt(zeta[k] * zeta[k] * rr_new / b_norm2);
      }
    }

    // Base direction.
    blas::xpay(std::span<const WilsonSpinor<T>>(r.data(), n),
               static_cast<T>(beta), p);

    rr = rr_new;
    alpha_prev = alpha;
    beta_prev = beta;
    res.flops += op_flops + static_cast<double>(n) *
                                (4.0 + 3.0 * static_cast<double>(nshift)) *
                                48.0;

    bool all_done = rr <= target2;
    for (std::size_t k = 0; k < nshift && all_done; ++k)
      all_done = all_done && done[k];
    if (all_done) {
      ++it;
      break;
    }
  }

  res.iterations = it;
  // Converged shifts were recorded at freeze time; only the stragglers
  // track the current base residual.
  for (std::size_t k = 0; k < nshift; ++k)
    if (!done[k])
      res.shift_residuals[k] =
          std::sqrt(zeta[k] * zeta[k] * rr / b_norm2);
  res.converged = rr <= target2;
  for (std::size_t k = 0; k < nshift; ++k)
    res.converged = res.converged && done[k];
  res.seconds = timer.seconds();
  record();
  return res;
}

/// Shifted wrapper (A + sigma) around a hermitian operator — used to
/// verify multishift solutions and by mass-preconditioned HMC.
template <typename T>
class ShiftedOperator final : public LinearOperator<T> {
 public:
  ShiftedOperator(const LinearOperator<T>& a, double sigma)
      : a_(&a), sigma_(static_cast<T>(sigma)) {
    LQCD_REQUIRE(sigma >= 0.0, "shift must be non-negative");
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    a_->apply(out, in);
    const T s = sigma_;
    parallel_for(out.size(), [&](std::size_t i) {
      WilsonSpinor<T> v = in[i];
      v *= s;
      out[i] += v;
    });
  }
  [[nodiscard]] std::int64_t vector_size() const override {
    return a_->vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return a_->flops_per_apply() +
           static_cast<double>(vector_size()) * 48.0;
  }
  [[nodiscard]] bool hermitian_positive() const override {
    return a_->hermitian_positive();
  }

 private:
  const LinearOperator<T>* a_;
  T sigma_;
};

}  // namespace lqcd
