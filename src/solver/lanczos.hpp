#pragma once
// Lanczos eigensolver for hermitian operators.
//
// Produces extremal eigenvalues/eigenvectors of A (= M^†M in practice).
// Uses: spectral bounds for the rational approximations (overlap/RHMC),
// condition-number measurements for the solver benches, and low-mode
// deflation (deflation.hpp). Straightforward Lanczos with full
// reorthogonalization — the Krylov spaces here are small (tens of
// vectors), so robustness beats memory frugality.

#include <algorithm>
#include <vector>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lqcd {

struct LanczosParams {
  int krylov_dim = 40;     ///< iterations / basis size
  int wanted = 4;          ///< eigenpairs to return
  bool smallest = true;    ///< smallest (true) or largest eigenvalues
  std::uint64_t seed = 7;  ///< start-vector seed
};

struct EigenPair {
  double value = 0.0;
  aligned_vector<WilsonSpinorD> vector;
  double residual = 0.0;  ///< ||A v - lambda v||
};

struct LanczosResult {
  std::vector<EigenPair> pairs;  ///< sorted by eigenvalue (ascending)
  int iterations = 0;
};

namespace detail_lanczos {

/// Jacobi eigensolver for a small real symmetric matrix (n x n, row
/// major). Returns eigenvalues ascending; `vecs[k]` is the k-th
/// eigenvector (length n).
inline void symmetric_eigen(std::vector<double> a, int n,
                            std::vector<double>& values,
                            std::vector<std::vector<double>>& vecs) {
  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i) * n + i] = 1.0;
  auto at = [&](std::vector<double>& m, int r, int c) -> double& {
    return m[static_cast<std::size_t>(r) * n + c];
  };
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p)
      for (int q = p + 1; q < n; ++q) off += at(a, p, q) * at(a, p, q);
    if (off < 1e-28) break;
    for (int p = 0; p < n; ++p)
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(a, p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (at(a, q, q) - at(a, p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = at(a, k, p), akq = at(a, k, q);
          at(a, k, p) = c * akp - s * akq;
          at(a, k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = at(a, p, k), aqk = at(a, q, k);
          at(a, p, k) = c * apk - s * aqk;
          at(a, q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = at(v, k, p), vkq = at(v, k, q);
          at(v, k, p) = c * vkp - s * vkq;
          at(v, k, q) = s * vkp + c * vkq;
        }
      }
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return at(a, x, x) < at(a, y, y);
  });
  values.resize(static_cast<std::size_t>(n));
  vecs.assign(static_cast<std::size_t>(n),
              std::vector<double>(static_cast<std::size_t>(n)));
  for (int k = 0; k < n; ++k) {
    const int col = order[static_cast<std::size_t>(k)];
    values[static_cast<std::size_t>(k)] = at(a, col, col);
    for (int r = 0; r < n; ++r)
      vecs[static_cast<std::size_t>(k)][static_cast<std::size_t>(r)] =
          at(v, r, col);
  }
}

}  // namespace detail_lanczos

/// Run Lanczos on hermitian positive A. Returns `wanted` extremal pairs
/// with residual estimates.
template <typename T>
LanczosResult lanczos(const LinearOperator<T>& a,
                      const LanczosParams& params) {
  LQCD_REQUIRE(a.hermitian_positive(), "lanczos requires hermitian A");
  LQCD_REQUIRE(params.krylov_dim >= 2, "krylov_dim >= 2");
  LQCD_REQUIRE(params.wanted >= 1 && params.wanted <= params.krylov_dim,
               "wanted out of range");
  const auto n = static_cast<std::size_t>(a.vector_size());
  const int m = params.krylov_dim;

  std::vector<aligned_vector<WilsonSpinor<T>>> basis;
  basis.reserve(static_cast<std::size_t>(m));
  std::vector<double> alpha, beta;

  // Random normalized start vector.
  aligned_vector<WilsonSpinor<T>> v(n), w(n);
  {
    SiteRngFactory rngs(params.seed);
    for (std::size_t i = 0; i < n; ++i) {
      CounterRng rng = rngs.make(i);
      for (int s = 0; s < Ns; ++s)
        for (int c = 0; c < Nc; ++c)
          v[i].s[s].c[c] = Cplx<T>(static_cast<T>(rng.gaussian()),
                                   static_cast<T>(rng.gaussian()));
    }
    const double nv =
        std::sqrt(blas::norm2(std::span<const WilsonSpinor<T>>(v.data(),
                                                               n)));
    blas::scale(static_cast<T>(1.0 / nv),
                std::span<WilsonSpinor<T>>(v.data(), n));
  }

  for (int j = 0; j < m; ++j) {
    basis.emplace_back(v.begin(), v.end());
    a.apply(std::span<WilsonSpinor<T>>(w.data(), n),
            std::span<const WilsonSpinor<T>>(v.data(), n));
    const double aj =
        blas::re_dot(std::span<const WilsonSpinor<T>>(v.data(), n),
                     std::span<const WilsonSpinor<T>>(w.data(), n));
    alpha.push_back(aj);
    // w -= alpha v + beta v_prev; then full reorthogonalization.
    blas::axpy(static_cast<T>(-aj),
               std::span<const WilsonSpinor<T>>(v.data(), n),
               std::span<WilsonSpinor<T>>(w.data(), n));
    if (j > 0)
      blas::axpy(static_cast<T>(-beta.back()),
                 std::span<const WilsonSpinor<T>>(
                     basis[static_cast<std::size_t>(j - 1)].data(), n),
                 std::span<WilsonSpinor<T>>(w.data(), n));
    for (const auto& q : basis) {
      const Cplxd c =
          blas::dot(std::span<const WilsonSpinor<T>>(q.data(), n),
                    std::span<const WilsonSpinor<T>>(w.data(), n));
      blas::caxpy(Cplx<T>(static_cast<T>(-c.re), static_cast<T>(-c.im)),
                  std::span<const WilsonSpinor<T>>(q.data(), n),
                  std::span<WilsonSpinor<T>>(w.data(), n));
    }
    const double nb =
        std::sqrt(blas::norm2(std::span<const WilsonSpinor<T>>(w.data(),
                                                               n)));
    if (j + 1 < m) {
      if (nb < 1e-12) break;  // invariant subspace found
      beta.push_back(nb);
      blas::scale(static_cast<T>(1.0 / nb),
                  std::span<WilsonSpinor<T>>(w.data(), n));
      std::swap(v, w);
    }
  }

  // Tridiagonal eigenproblem.
  const int k = static_cast<int>(alpha.size());
  std::vector<double> tri(static_cast<std::size_t>(k) * k, 0.0);
  for (int i = 0; i < k; ++i) {
    tri[static_cast<std::size_t>(i) * k + i] = alpha[static_cast<std::size_t>(i)];
    if (i + 1 < k) {
      tri[static_cast<std::size_t>(i) * k + i + 1] =
          beta[static_cast<std::size_t>(i)];
      tri[static_cast<std::size_t>(i + 1) * k + i] =
          beta[static_cast<std::size_t>(i)];
    }
  }
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  detail_lanczos::symmetric_eigen(tri, k, evals, evecs);

  LanczosResult res;
  res.iterations = k;
  const int want = std::min(params.wanted, k);
  for (int idx = 0; idx < want; ++idx) {
    const int which = params.smallest ? idx : k - 1 - idx;
    EigenPair pair;
    pair.value = evals[static_cast<std::size_t>(which)];
    // Ritz vector in the original space.
    aligned_vector<WilsonSpinorD> rv(n);
    for (int j = 0; j < k; ++j) {
      const double c =
          evecs[static_cast<std::size_t>(which)][static_cast<std::size_t>(j)];
      for (std::size_t i = 0; i < n; ++i) {
        WilsonSpinorD add = convert<double>(
            basis[static_cast<std::size_t>(j)][i]);
        add *= c;
        rv[i] += add;
      }
    }
    // Residual || A v - lambda v || (computed in T precision).
    aligned_vector<WilsonSpinor<T>> vt(n), av(n);
    for (std::size_t i = 0; i < n; ++i) vt[i] = convert<T>(rv[i]);
    a.apply(std::span<WilsonSpinor<T>>(av.data(), n),
            std::span<const WilsonSpinor<T>>(vt.data(), n));
    blas::axpy(static_cast<T>(-pair.value),
               std::span<const WilsonSpinor<T>>(vt.data(), n),
               std::span<WilsonSpinor<T>>(av.data(), n));
    pair.residual = std::sqrt(
        blas::norm2(std::span<const WilsonSpinor<T>>(av.data(), n)));
    pair.vector = std::move(rv);
    res.pairs.push_back(std::move(pair));
  }
  std::sort(res.pairs.begin(), res.pairs.end(),
            [](const EigenPair& x, const EigenPair& y) {
              return x.value < y.value;
            });
  return res;
}

/// Convenience: estimated spectral interval [lambda_min, lambda_max].
template <typename T>
std::pair<double, double> spectral_bounds(const LinearOperator<T>& a,
                                          int krylov_dim = 40,
                                          std::uint64_t seed = 7) {
  LanczosParams lo;
  lo.krylov_dim = krylov_dim;
  lo.wanted = 1;
  lo.smallest = true;
  lo.seed = seed;
  LanczosParams hi = lo;
  hi.smallest = false;
  const LanczosResult rl = lanczos(a, lo);
  const LanczosResult rh = lanczos(a, hi);
  LQCD_ASSERT(!rl.pairs.empty() && !rh.pairs.empty(),
              "lanczos returned no pairs");
  return {rl.pairs.front().value, rh.pairs.back().value};
}

}  // namespace lqcd
