#pragma once
// Common solver parameter/result types.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/telemetry.hpp"

namespace lqcd {

struct SolverParams {
  double tol = 1e-10;       ///< target relative residual ||b - Ax|| / ||b||
  int max_iterations = 10000;
  bool check_true_residual = true;  ///< recompute ||b - Ax|| at the end
  bool verbose = false;             ///< log per-iteration residuals
  // --- breakdown recovery ---------------------------------------------
  /// Restarts allowed after a detected breakdown (NaN/Inf in the
  /// recursion, loss of positivity, stagnation). A restart rebuilds the
  /// Krylov recursion from the true residual; 0 disables recovery.
  int max_restarts = 2;
  /// Iterations without any residual-norm improvement before the solve is
  /// declared stagnant (and restarted). 0 disables the check.
  int stagnation_window = 100;
};

/// Why a solve (or one Krylov cycle of it) broke down.
enum class Breakdown {
  None,
  NonFinite,     ///< NaN/Inf entered the recursion
  LostPositivity,  ///< p^T A p <= 0 in CG: operator/recursion corrupted
  ZeroPivot,     ///< rho/omega ~ 0 in BiCGStab
  Stagnation,    ///< no residual progress for stagnation_window iters
};

struct SolverResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;  ///< true relative residual if checked
  double seconds = 0.0;
  double flops = 0.0;  ///< estimated floating-point work
  /// For nested solvers (mixed precision): total inner iterations.
  int inner_iterations = 0;
  int outer_cycles = 0;
  // --- breakdown reporting --------------------------------------------
  int restarts = 0;   ///< breakdown-recovery restarts performed
  int fallbacks = 0;  ///< mixed precision: cycles re-run in double
  /// Last breakdown observed; Breakdown::None if the solve stayed clean
  /// or a restart fully recovered and then converged.
  Breakdown breakdown = Breakdown::None;

  [[nodiscard]] double gflops_per_second() const {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

[[nodiscard]] constexpr const char* to_string(Breakdown b) {
  switch (b) {
    case Breakdown::None: return "none";
    case Breakdown::NonFinite: return "non-finite";
    case Breakdown::LostPositivity: return "lost-positivity";
    case Breakdown::ZeroPivot: return "zero-pivot";
    case Breakdown::Stagnation: return "stagnation";
  }
  return "?";
}

/// Per-spinor-site flop costs of the level-1 field operations
/// (24 real components per site).
inline constexpr double kAxpyFlopsPerSite = 48.0;
inline constexpr double kDotFlopsPerSite = 48.0;
inline constexpr double kNormFlopsPerSite = 48.0;

/// Publish one finished solve to the telemetry counters under
/// `solver.<name>.*`. Called once per solve (every exit path), so the
/// string concatenation + registry lookup cost is off the iteration path.
inline void record_solve(std::string_view name, const SolverResult& r) {
  if (!telemetry::enabled()) return;
  const std::string prefix = "solver." + std::string(name);
  telemetry::counter(prefix + ".solves").add(1);
  telemetry::counter(prefix + ".iterations").add(r.iterations);
  telemetry::counter(prefix + ".restarts").add(r.restarts);
  telemetry::counter(prefix + ".fallbacks").add(r.fallbacks);
  telemetry::counter(prefix + ".flops")
      .add(static_cast<std::int64_t>(r.flops));
  if (r.inner_iterations > 0)
    telemetry::counter(prefix + ".inner_iterations")
        .add(r.inner_iterations);
  if (r.converged)
    telemetry::counter(prefix + ".converged").add(1);
  else
    telemetry::counter(prefix + ".unconverged").add(1);
  if (r.breakdown != Breakdown::None)
    telemetry::counter(prefix + ".breakdowns").add(1);
  telemetry::gauge(prefix + ".last_relative_residual")
      .set(r.relative_residual);
}

}  // namespace lqcd
