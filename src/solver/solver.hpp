#pragma once
// Common solver parameter/result types.

#include <cstdint>

namespace lqcd {

struct SolverParams {
  double tol = 1e-10;       ///< target relative residual ||b - Ax|| / ||b||
  int max_iterations = 10000;
  bool check_true_residual = true;  ///< recompute ||b - Ax|| at the end
  bool verbose = false;             ///< log per-iteration residuals
};

struct SolverResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;  ///< true relative residual if checked
  double seconds = 0.0;
  double flops = 0.0;  ///< estimated floating-point work
  /// For nested solvers (mixed precision): total inner iterations.
  int inner_iterations = 0;
  int outer_cycles = 0;

  [[nodiscard]] double gflops_per_second() const {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

/// Per-spinor-site flop costs of the level-1 field operations
/// (24 real components per site).
inline constexpr double kAxpyFlopsPerSite = 48.0;
inline constexpr double kDotFlopsPerSite = 48.0;
inline constexpr double kNormFlopsPerSite = 48.0;

}  // namespace lqcd
