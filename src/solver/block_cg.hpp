#pragma once
// Block conjugate gradient: K independent CG recursions on the normal
// equations Mhat^† Mhat x_k = b_k, fused so every iteration makes ONE
// sweep over the gauge links for all active columns.
//
// This is deliberately not a "true" block-Krylov method (no shared
// search-space orthogonalization): each column runs exactly the scalar
// CG recursion — its own alpha, beta and residual norm — so per-column
// iterates match a one-column solve to rounding, while the memory-bound
// operator applies are batched through dslash_parity_block. Columns that
// converge are compacted out of the active set, shrinking the batch;
// columns that break down (NaN/Inf, lost positivity, stagnation) are
// marked failed and dropped — there is no in-place restart machinery
// here. Campaign drivers treat a failed column as a transient fault and
// re-solve it with the scalar eo_cg path, which has full breakdown
// recovery (solver/cg.hpp).

#include <cmath>
#include <vector>

#include "dirac/block.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

/// Solve Mhat^† Mhat x[k] = b[k] for all K columns at once; x and b are
/// odd-checkerboard half-volume spans. Returns one SolverResult per
/// column (same semantics as cg_solve, minus restart recovery).
template <typename T>
std::vector<SolverResult> block_cg_solve(
    const BlockSchurWilsonOperator<T>& a, std::span<const SpinorSpan<T>> x,
    std::span<const CSpinorSpan<T>> b, const SolverParams& params) {
  const std::size_t nrhs = b.size();
  LQCD_REQUIRE(x.size() == nrhs && nrhs >= 1 &&
                   nrhs <= static_cast<std::size_t>(a.max_rhs()),
               "block_cg_solve column counts");
  const auto n = static_cast<std::size_t>(a.vector_size());
  for (std::size_t k = 0; k < nrhs; ++k)
    LQCD_REQUIRE(x[k].size() == n && b[k].size() == n,
                 "block_cg_solve span sizes");

  telemetry::TraceRegion trace("solver.block_cg");
  if (telemetry::enabled()) {
    telemetry::counter("solver.block_cg.blocks").add(1);
    telemetry::counter("solver.block_cg.block_columns")
        .add(static_cast<std::int64_t>(nrhs));
  }
  WallTimer timer;
  std::vector<SolverResult> results(nrhs);

  // Contiguous per-column r/p/ap scratch.
  aligned_vector<WilsonSpinor<T>> r_store(n * nrhs), p_store(n * nrhs),
      ap_store(n * nrhs);
  const auto col = [n](aligned_vector<WilsonSpinor<T>>& s, std::size_t k) {
    return SpinorSpan<T>(s.data() + k * n, n);
  };
  const auto ccol = [n](const aligned_vector<WilsonSpinor<T>>& s,
                        std::size_t k) {
    return CSpinorSpan<T>(s.data() + k * n, n);
  };

  const double op_flops = 2.0 * a.flops_per_apply();  // normal = 2 applies
  const double site_flops =
      static_cast<double>(n) *
      (2.0 * kAxpyFlopsPerSite + kNormFlopsPerSite + kDotFlopsPerSite);

  struct Col {
    std::size_t k;       ///< original column index
    double b_norm2;
    double target2;
    double rr;
    double best_rr;
    int since_best = 0;
    int it = 0;
  };
  std::vector<Col> active;
  active.reserve(nrhs);

  // Initial residuals: r = b - A x, p = r; one fused normal apply over
  // every column.
  {
    std::vector<SpinorSpan<T>> rs(nrhs);
    std::vector<CSpinorSpan<T>> xs(nrhs);
    for (std::size_t k = 0; k < nrhs; ++k) {
      rs[k] = col(r_store, k);
      xs[k] = CSpinorSpan<T>(x[k].data(), x[k].size());
    }
    a.apply_normal(rs, xs);
  }
  for (std::size_t k = 0; k < nrhs; ++k) {
    const double b_norm2 = blas::norm2(b[k]);
    if (b_norm2 == 0.0) {
      blas::zero(x[k]);
      results[k].converged = true;
      continue;
    }
    auto rk = col(r_store, k);
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> t = b[k][i];
      t -= rk[i];
      rk[i] = t;
    });
    blas::copy(col(p_store, k), ccol(r_store, k));
    const double rr = blas::norm2(ccol(r_store, k));
    results[k].flops += op_flops;
    active.push_back({.k = k,
                      .b_norm2 = b_norm2,
                      .target2 = params.tol * params.tol * b_norm2,
                      .rr = rr,
                      .best_rr = rr});
  }

  std::vector<SpinorSpan<T>> aps;
  std::vector<CSpinorSpan<T>> ps;
  while (!active.empty()) {
    // Drop columns whose recursion already satisfies the target.
    std::erase_if(active, [&](const Col& c) {
      if (c.rr > c.target2) return false;
      results[c.k].converged = true;
      results[c.k].iterations = c.it;
      results[c.k].relative_residual = std::sqrt(c.rr / c.b_norm2);
      return true;
    });
    if (active.empty()) break;
    if (active.front().it >= params.max_iterations) {
      for (const Col& c : active) {
        results[c.k].iterations = c.it;
        results[c.k].relative_residual = std::sqrt(c.rr / c.b_norm2);
      }
      break;
    }

    // One fused operator apply for every still-active column.
    aps.clear();
    ps.clear();
    for (const Col& c : active) {
      aps.push_back(col(ap_store, c.k));
      ps.push_back(ccol(p_store, c.k));
    }
    a.apply_normal(aps, ps);

    std::erase_if(active, [&](Col& c) {
      const std::size_t k = c.k;
      SolverResult& res = results[k];
      const double pap = blas::re_dot(ccol(p_store, k), ccol(ap_store, k));
      Breakdown bd = Breakdown::None;
      if (!std::isfinite(pap)) {
        bd = Breakdown::NonFinite;
      } else if (pap <= 0.0) {
        bd = Breakdown::LostPositivity;
      } else {
        const double alpha = c.rr / pap;
        blas::axpy(static_cast<T>(alpha), ccol(p_store, k), x[k]);
        blas::axpy(static_cast<T>(-alpha), ccol(ap_store, k),
                   col(r_store, k));
        const double rr_new = blas::norm2(ccol(r_store, k));
        if (!std::isfinite(rr_new)) {
          bd = Breakdown::NonFinite;
        } else {
          const double beta = rr_new / c.rr;
          blas::xpay(ccol(r_store, k), static_cast<T>(beta),
                     col(p_store, k));
          c.rr = rr_new;
          ++c.it;
          res.flops += op_flops + site_flops;
          if (c.rr < c.best_rr) {
            c.best_rr = c.rr;
            c.since_best = 0;
          } else if (params.stagnation_window > 0 &&
                     ++c.since_best >= params.stagnation_window) {
            bd = Breakdown::Stagnation;
          }
          log_debug("block_cg col ", k, " iter ", c.it, " rel ",
                    std::sqrt(c.rr / c.b_norm2));
        }
      }
      if (bd == Breakdown::None) return false;
      // Failed column: report and drop. The caller owns retry policy.
      res.breakdown = bd;
      res.converged = false;
      res.iterations = c.it;
      res.relative_residual = std::sqrt(c.rr / c.b_norm2);
      log_info("block_cg: column ", k, " breakdown (", to_string(bd),
               ") at iter ", c.it, ", column marked failed");
      return true;
    });
  }

  if (params.check_true_residual) {
    // One fused verification apply across all columns with a nonzero rhs.
    std::vector<SpinorSpan<T>> aps_all;
    std::vector<CSpinorSpan<T>> xs_all;
    std::vector<std::size_t> cols;
    for (std::size_t k = 0; k < nrhs; ++k) {
      const double b_norm2 = blas::norm2(b[k]);
      if (b_norm2 == 0.0) continue;
      aps_all.push_back(col(ap_store, k));
      xs_all.push_back(CSpinorSpan<T>(x[k].data(), x[k].size()));
      cols.push_back(k);
    }
    if (!cols.empty()) {
      a.apply_normal(aps_all, xs_all);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const std::size_t k = cols[j];
        auto apk = col(ap_store, k);
        parallel_for(n, [&](std::size_t i) {
          WilsonSpinor<T> t = b[k][i];
          t -= apk[i];
          apk[i] = t;
        });
        const double true_r2 = blas::norm2(ccol(ap_store, k));
        const double b_norm2 = blas::norm2(b[k]);
        results[k].flops += op_flops;
        results[k].relative_residual = std::sqrt(true_r2 / b_norm2);
        results[k].converged = results[k].converged &&
                               results[k].relative_residual <=
                                   10 * params.tol;
      }
    }
  }

  const double seconds = timer.seconds();
  for (std::size_t k = 0; k < nrhs; ++k) {
    // Wall time is shared by the fused applies; charge it to the block.
    results[k].seconds = seconds / static_cast<double>(nrhs);
    if (results[k].converged) results[k].breakdown = Breakdown::None;
    record_solve("block_cg", results[k]);
  }
  return results;
}

}  // namespace lqcd
