#pragma once
// Shared solver factory: one place that maps a solver name to a fully
// configured solve pipeline for M x = b on the full lattice volume.
//
// Before this existed, hadron_spectrum, dynamical_qcd and bench_solvers
// each hand-rolled the same per-solver blocks (build Schur operator,
// prepare rhs, pick Krylov method, reconstruct). The factory owns that
// plumbing: every kind produces a `FullSolver` whose solve() takes a
// full-volume right-hand side and returns a full-volume solution,
// whatever preconditioning happens inside.
//
// Kinds:
//   eo_cg     CG on the normal even-odd Schur system (the seed default)
//   mixed_cg  mixed-precision defect-correction CG on the same system
//   bicgstab  BiCGStab on the full operator
//   gcr       restarted GCR on the full operator
//   sap_gcr   GCR right-preconditioned by SAP              (Wilson only)
//   mg        GCR right-preconditioned by the MG V-cycle   (Wilson only)
//   block_cg  multi-RHS fused CG on the Schur system       (Wilson only)
//
// Multi-RHS campaigns (one gauge load amortized over K right-hand
// sides) go through the parallel `BlockSolver` interface built by
// make_block_solver(): block_cg runs the fused dslash path, every other
// kind degrades gracefully to column-by-column solves behind the same
// interface.
//
// The MG kind pays an adaptive setup at construction and reuses it for
// every subsequent solve — construct once per gauge configuration.

#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include <vector>

#include "dirac/block.hpp"
#include "dirac/clover.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "linalg/blas.hpp"
#include "mg/mg.hpp"
#include "solver/bicgstab.hpp"
#include "solver/block_cg.hpp"
#include "solver/cg.hpp"
#include "solver/gcr.hpp"
#include "solver/mixed_cg.hpp"
#include "solver/sap.hpp"

namespace lqcd {

enum class SolverKind { EoCg, MixedCg, BiCgStab, Gcr, SapGcr, Mg, BlockCg };

[[nodiscard]] inline std::string_view to_string(SolverKind k) {
  switch (k) {
    case SolverKind::EoCg: return "eo_cg";
    case SolverKind::MixedCg: return "mixed_cg";
    case SolverKind::BiCgStab: return "bicgstab";
    case SolverKind::Gcr: return "gcr";
    case SolverKind::SapGcr: return "sap_gcr";
    case SolverKind::Mg: return "mg";
    case SolverKind::BlockCg: return "block_cg";
  }
  return "?";
}

/// Parse a CLI solver name (e.g. "--solver=mg"). Throws on unknown names
/// with the list of valid ones.
[[nodiscard]] inline SolverKind parse_solver_kind(std::string_view name) {
  if (name == "eo_cg" || name == "cg") return SolverKind::EoCg;
  if (name == "mixed_cg" || name == "mixed") return SolverKind::MixedCg;
  if (name == "bicgstab") return SolverKind::BiCgStab;
  if (name == "gcr") return SolverKind::Gcr;
  if (name == "sap_gcr" || name == "sap") return SolverKind::SapGcr;
  if (name == "mg") return SolverKind::Mg;
  if (name == "block_cg" || name == "block") return SolverKind::BlockCg;
  throw Error(
      "unknown solver '" + std::string(name) +
      "' (valid: eo_cg, mixed_cg, bicgstab, gcr, sap_gcr, mg, block_cg)");
}

struct SolverConfig {
  double kappa = 0.12;
  double csw = 0.0;  ///< 0 = plain Wilson; > 0 = clover (Krylov kinds only)
  TimeBoundary bc = TimeBoundary::Antiperiodic;
  SolverParams base{.tol = 1e-9, .max_iterations = 20000};
  int gcr_restart = 16;             ///< gcr / sap_gcr / mg outer restart
  SapParams sap{};                  ///< sap_gcr preconditioner
  MixedCgParams mixed{};            ///< mixed_cg (outer overridden by base)
  mg::MgParams mg{};                ///< mg hierarchy parameters
};

/// A configured solve pipeline for M x = b on the full volume. `x` is
/// used as the initial guess and overwritten with the solution.
class FullSolver {
 public:
  virtual ~FullSolver() = default;
  virtual SolverResult solve(std::span<WilsonSpinorD> x,
                             std::span<const WilsonSpinorD> b) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// A configured multi-RHS pipeline: solve M x[k] = b[k] for up to
/// max_rhs() full-volume columns per call, one SolverResult per column.
/// block_cg fuses the operator applies across columns; other kinds solve
/// column by column behind the same interface, so campaign drivers can
/// switch kinds without restructuring.
class BlockSolver {
 public:
  virtual ~BlockSolver() = default;
  virtual std::vector<SolverResult> solve(
      std::span<const SpinorSpanD> x, std::span<const CSpinorSpanD> b) = 0;
  [[nodiscard]] virtual int max_rhs() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

namespace detail {

/// CG on the normal even-odd Schur system: prepare -> solve -> reconstruct.
/// Template over the Schur operator so plain Wilson and clover share code.
template <typename SchurOp>
class EoCgSolver final : public FullSolver {
 public:
  template <typename... Args>
  explicit EoCgSolver(const SolverParams& params, Args&&... args)
      : shat_(std::forward<Args>(args)...),
        nhat_(shat_),
        params_(params),
        hv_(static_cast<std::size_t>(shat_.geometry().half_volume())),
        bhat_(hv_), bhat2_(hv_), xo_(hv_), tmp_(hv_) {}

  SolverResult solve(std::span<WilsonSpinorD> x,
                     std::span<const WilsonSpinorD> b) override {
    shat_.prepare_rhs({bhat_.data(), hv_}, b);
    apply_dagger_g5<double>(shat_, {bhat2_.data(), hv_},
                            {bhat_.data(), hv_}, {tmp_.data(), hv_});
    blas::zero(std::span<WilsonSpinorD>(xo_.data(), hv_));
    const SolverResult res = cg_solve<double>(
        nhat_, {xo_.data(), hv_},
        std::span<const WilsonSpinorD>(bhat2_.data(), hv_), params_);
    shat_.reconstruct(x, {xo_.data(), hv_}, b);
    return res;
  }
  [[nodiscard]] std::string_view name() const override { return "eo_cg"; }

 private:
  SchurOp shat_;
  NormalOperator<double> nhat_;
  SolverParams params_;
  std::size_t hv_;
  aligned_vector<WilsonSpinorD> bhat_, bhat2_, xo_, tmp_;
};

/// Mixed-precision CG on the normal even-odd Schur system.
class EoMixedCgSolver final : public FullSolver {
 public:
  EoMixedCgSolver(const GaugeFieldD& u, const SolverConfig& cfg)
      : uf_(to_float(u)),
        shat_d_(u, cfg.kappa, cfg.bc),
        shat_f_(uf_, cfg.kappa, cfg.bc),
        nhat_d_(shat_d_),
        nhat_f_(shat_f_),
        params_(cfg.mixed),
        hv_(static_cast<std::size_t>(u.geometry().half_volume())),
        bhat_(hv_), bhat2_(hv_), xo_(hv_), tmp_(hv_) {
    params_.outer = cfg.base;
  }

  SolverResult solve(std::span<WilsonSpinorD> x,
                     std::span<const WilsonSpinorD> b) override {
    shat_d_.prepare_rhs({bhat_.data(), hv_}, b);
    apply_dagger_g5<double>(shat_d_, {bhat2_.data(), hv_},
                            {bhat_.data(), hv_}, {tmp_.data(), hv_});
    blas::zero(std::span<WilsonSpinorD>(xo_.data(), hv_));
    const SolverResult res = mixed_cg_solve(
        nhat_d_, nhat_f_, {xo_.data(), hv_},
        std::span<const WilsonSpinorD>(bhat2_.data(), hv_), params_);
    shat_d_.reconstruct(x, {xo_.data(), hv_}, b);
    return res;
  }
  [[nodiscard]] std::string_view name() const override { return "mixed_cg"; }

 private:
  static GaugeField<float> to_float(const GaugeFieldD& u) {
    GaugeField<float> uf(u.geometry());
    convert_gauge(uf, u);
    return uf;
  }

  GaugeField<float> uf_;
  SchurWilsonOperator<double> shat_d_;
  SchurWilsonOperator<float> shat_f_;
  NormalOperator<double> nhat_d_;
  NormalOperator<float> nhat_f_;
  MixedCgParams params_;
  std::size_t hv_;
  aligned_vector<WilsonSpinorD> bhat_, bhat2_, xo_, tmp_;
};

/// Krylov solve directly on the full operator (BiCGStab or GCR).
template <typename Op>
class FullKrylovSolver final : public FullSolver {
 public:
  enum class Method { BiCgStab, Gcr, SapGcr };

  template <typename... Args>
  FullKrylovSolver(Method method, const SolverConfig& cfg, Args&&... args)
      : m_(std::forward<Args>(args)...), method_(method) {
    gcr_.base = cfg.base;
    gcr_.restart_length = cfg.gcr_restart;
    if (method == Method::SapGcr) {
      if constexpr (std::is_same_v<Op, WilsonOperator<double>>) {
        sap_ = std::make_unique<SapPreconditioner<double>>(m_, cfg.sap);
      } else {
        LQCD_REQUIRE(false, "sap_gcr supports plain Wilson only");
      }
    }
  }

  SolverResult solve(std::span<WilsonSpinorD> x,
                     std::span<const WilsonSpinorD> b) override {
    if (method_ == Method::BiCgStab)
      return bicgstab_solve<double>(m_, x, b, gcr_.base);
    const SolverResult res = gcr_solve<double>(m_, x, b, gcr_, sap_.get());
    record_solve(name(), res);
    return res;
  }
  [[nodiscard]] std::string_view name() const override {
    switch (method_) {
      case Method::BiCgStab: return "bicgstab";
      case Method::Gcr: return "gcr";
      case Method::SapGcr: return "sap_gcr";
    }
    return "?";
  }

 private:
  Op m_;
  Method method_;
  GcrParams gcr_;
  std::unique_ptr<Preconditioner<double>> sap_;
};

/// Fused multi-RHS CG on the even-odd Schur system: the block analogue
/// of EoCgSolver, with every stage (prepare, dagger, CG, reconstruct)
/// batched through one link sweep per apply.
class BlockEoCgSolver final : public BlockSolver {
 public:
  BlockEoCgSolver(const GaugeFieldD& u, const SolverConfig& cfg, int max_rhs)
      : shat_(u, cfg.kappa, cfg.bc, max_rhs),
        params_(cfg.base),
        hv_(static_cast<std::size_t>(shat_.vector_size())),
        bhat_(hv_ * static_cast<std::size_t>(max_rhs)),
        bhat2_(hv_ * static_cast<std::size_t>(max_rhs)),
        xo_(hv_ * static_cast<std::size_t>(max_rhs)) {}

  std::vector<SolverResult> solve(
      std::span<const SpinorSpanD> x,
      std::span<const CSpinorSpanD> b) override {
    const std::size_t nrhs = b.size();
    LQCD_REQUIRE(x.size() == nrhs && nrhs >= 1 &&
                     nrhs <= static_cast<std::size_t>(shat_.max_rhs()),
                 "block solve column counts");
    auto bhat = views(bhat_, nrhs);
    auto bhat2 = views(bhat2_, nrhs);
    auto xo = views(xo_, nrhs);
    shat_.prepare_rhs(bhat, b);
    // Normal equations: Mhat^† Mhat xo = Mhat^† bhat.
    shat_.apply_dagger(bhat2, cviews(bhat));
    for (std::size_t k = 0; k < nrhs; ++k) blas::zero(xo[k]);
    std::vector<SolverResult> res =
        block_cg_solve<double>(shat_, xo, cviews(bhat2), params_);
    shat_.reconstruct(x, cviews(xo), b);
    return res;
  }
  [[nodiscard]] int max_rhs() const override { return shat_.max_rhs(); }
  [[nodiscard]] std::string_view name() const override { return "block_cg"; }

 private:
  std::vector<SpinorSpanD> views(aligned_vector<WilsonSpinorD>& store,
                                 std::size_t nrhs) const {
    std::vector<SpinorSpanD> s(nrhs);
    for (std::size_t k = 0; k < nrhs; ++k)
      s[k] = SpinorSpanD(store.data() + k * hv_, hv_);
    return s;
  }
  static std::vector<CSpinorSpanD> cviews(const std::vector<SpinorSpanD>& v) {
    std::vector<CSpinorSpanD> c(v.size());
    for (std::size_t k = 0; k < v.size(); ++k)
      c[k] = CSpinorSpanD(v[k].data(), v[k].size());
    return c;
  }

  BlockSchurWilsonOperator<double> shat_;
  SolverParams params_;
  std::size_t hv_;
  aligned_vector<WilsonSpinorD> bhat_, bhat2_, xo_;
};

/// Column-by-column fallback: any FullSolver behind the BlockSolver
/// interface. No gauge-traffic amortization, but campaign code stays
/// kind-agnostic (and MG setup reuse across columns still applies).
class ColumnBlockSolver final : public BlockSolver {
 public:
  ColumnBlockSolver(std::unique_ptr<FullSolver> inner, int max_rhs)
      : inner_(std::move(inner)), max_rhs_(max_rhs) {}

  std::vector<SolverResult> solve(
      std::span<const SpinorSpanD> x,
      std::span<const CSpinorSpanD> b) override {
    LQCD_REQUIRE(x.size() == b.size() && !b.empty() &&
                     b.size() <= static_cast<std::size_t>(max_rhs_),
                 "block solve column counts");
    std::vector<SolverResult> res(b.size());
    for (std::size_t k = 0; k < b.size(); ++k)
      res[k] = inner_->solve(x[k], b[k]);
    return res;
  }
  [[nodiscard]] int max_rhs() const override { return max_rhs_; }
  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }

 private:
  std::unique_ptr<FullSolver> inner_;
  int max_rhs_;
};

/// K=1 adapter so `--solver=block_cg` also works in single-RHS drivers.
class BlockCgFullSolver final : public FullSolver {
 public:
  BlockCgFullSolver(const GaugeFieldD& u, const SolverConfig& cfg)
      : impl_(u, cfg, 1) {}

  SolverResult solve(std::span<WilsonSpinorD> x,
                     std::span<const WilsonSpinorD> b) override {
    const SpinorSpanD xs[] = {x};
    const CSpinorSpanD bs[] = {b};
    return impl_.solve(xs, bs)[0];
  }
  [[nodiscard]] std::string_view name() const override { return "block_cg"; }

 private:
  BlockEoCgSolver impl_;
};

/// MG-preconditioned GCR; the hierarchy is built once in the constructor.
class MgFullSolver final : public FullSolver {
 public:
  MgFullSolver(const GaugeFieldD& u, const SolverConfig& cfg)
      : mg_(u, cfg.kappa, cfg.bc, cfg.mg,
            GcrParams{cfg.base, cfg.gcr_restart}) {}

  SolverResult solve(std::span<WilsonSpinorD> x,
                     std::span<const WilsonSpinorD> b) override {
    return mg_.solve(x, b);
  }
  [[nodiscard]] std::string_view name() const override { return "mg"; }

  [[nodiscard]] const mg::MgSolver<double>& impl() const { return mg_; }

 private:
  mg::MgSolver<double> mg_;
};

}  // namespace detail

/// Build a configured solver against one gauge configuration. The gauge
/// field is copied into the operators, so `u` need not outlive the
/// returned solver.
[[nodiscard]] inline std::unique_ptr<FullSolver> make_solver(
    const GaugeFieldD& u, SolverKind kind, const SolverConfig& cfg) {
  using FK = detail::FullKrylovSolver<WilsonOperator<double>>;
  using FKClover = detail::FullKrylovSolver<CloverWilsonOperator<double>>;
  const bool clover = cfg.csw > 0.0;
  const CloverParams cp{.kappa = cfg.kappa, .csw = cfg.csw, .bc = cfg.bc};
  switch (kind) {
    case SolverKind::EoCg:
      if (clover)
        return std::make_unique<
            detail::EoCgSolver<SchurCloverOperator<double>>>(cfg.base, u, u,
                                                             cp);
      return std::make_unique<detail::EoCgSolver<SchurWilsonOperator<double>>>(
          cfg.base, u, cfg.kappa, cfg.bc);
    case SolverKind::MixedCg:
      LQCD_REQUIRE(!clover, "mixed_cg kind supports plain Wilson only");
      return std::make_unique<detail::EoMixedCgSolver>(u, cfg);
    case SolverKind::BiCgStab:
      if (clover)
        return std::make_unique<FKClover>(FKClover::Method::BiCgStab, cfg, u,
                                          u, cp);
      return std::make_unique<FK>(FK::Method::BiCgStab, cfg, u, cfg.kappa,
                                  cfg.bc);
    case SolverKind::Gcr:
      if (clover)
        return std::make_unique<FKClover>(FKClover::Method::Gcr, cfg, u, u,
                                          cp);
      return std::make_unique<FK>(FK::Method::Gcr, cfg, u, cfg.kappa, cfg.bc);
    case SolverKind::SapGcr:
      LQCD_REQUIRE(!clover, "sap_gcr kind supports plain Wilson only");
      return std::make_unique<FK>(FK::Method::SapGcr, cfg, u, cfg.kappa,
                                  cfg.bc);
    case SolverKind::Mg:
      LQCD_REQUIRE(!clover, "mg kind supports plain Wilson only");
      return std::make_unique<detail::MgFullSolver>(u, cfg);
    case SolverKind::BlockCg:
      LQCD_REQUIRE(!clover, "block_cg kind supports plain Wilson only");
      return std::make_unique<detail::BlockCgFullSolver>(u, cfg);
  }
  throw Error("unreachable solver kind");
}

/// Build a multi-RHS solver for up to `max_rhs` columns per call.
/// block_cg gets the fused dslash pipeline; every other kind wraps its
/// FullSolver in a column loop, so campaign drivers configure one knob.
[[nodiscard]] inline std::unique_ptr<BlockSolver> make_block_solver(
    const GaugeFieldD& u, SolverKind kind, const SolverConfig& cfg,
    int max_rhs = kMaxBlockRhs) {
  LQCD_REQUIRE(max_rhs >= 1 && max_rhs <= kMaxBlockRhs,
               "block width out of [1, 12]");
  if (kind == SolverKind::BlockCg) {
    LQCD_REQUIRE(cfg.csw <= 0.0, "block_cg kind supports plain Wilson only");
    return std::make_unique<detail::BlockEoCgSolver>(u, cfg, max_rhs);
  }
  return std::make_unique<detail::ColumnBlockSolver>(make_solver(u, kind, cfg),
                                                     max_rhs);
}

}  // namespace lqcd
