#pragma once
// SAP — the Schwarz alternating procedure (Lüscher), used as a flexible
// right preconditioner for GCR.
//
// The lattice is partitioned into non-overlapping rectangular blocks,
// red/black colored by block-coordinate parity. One SAP cycle sweeps the
// red blocks, updates the global residual, then sweeps the black blocks.
// Each block solve inverts the Wilson operator restricted to the block
// (Dirichlet cut: hopping terms leaving the block are dropped) with a few
// minimal-residual iterations.
//
// Why it matters at scale: the block solves touch only block-local data —
// in a distributed run they generate *no network traffic*. Only the global
// residual updates communicate. SAP therefore trades halo bandwidth for
// local flops, which is exactly the crossover bench_sap models.

#include <vector>

#include "dirac/wilson.hpp"
#include "solver/gcr.hpp"
#include "util/aligned.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

struct SapParams {
  Coord block{4, 4, 4, 4};  ///< block extents (must divide lattice dims)
  int cycles = 4;           ///< SAP cycles per preconditioner apply
  int block_mr_iterations = 4;  ///< MR steps per block solve
};

template <typename T>
class SapPreconditioner final : public Preconditioner<T> {
 public:
  /// `m` must outlive the preconditioner.
  SapPreconditioner(const WilsonOperator<T>& m, const SapParams& params)
      : m_(&m), params_(params) {
    build_blocks();
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    const std::size_t n = in.size();
    LQCD_REQUIRE(out.size() == n &&
                     n == static_cast<std::size_t>(
                              m_->geometry().volume()),
                 "SAP span sizes");
    if (rho_.size() != n) {
      rho_.resize(n);
      mv_.resize(n);
    }
    if (telemetry::enabled()) {
      // Block-local Wilson applies, in site units: every cycle runs
      // block_mr_iterations MR steps over each block, and the red+black
      // sweeps together cover the full volume. Counted once per apply
      // (never inside the parallel sweep) so bench_mg can price the
      // smoother's fine-grid work next to dslash.site_applies.
      static telemetry::Counter& c_sites =
          telemetry::counter("dslash.block_site_applies");
      c_sites.add(static_cast<std::int64_t>(params_.cycles) *
                  params_.block_mr_iterations *
                  m_->geometry().volume());
    }
    std::span<WilsonSpinor<T>> rho(rho_.data(), n);
    std::span<WilsonSpinor<T>> mv(mv_.data(), n);

    blas::zero(out);
    blas::copy(rho, in);  // rho = in - M*0

    for (int cycle = 0; cycle < params_.cycles; ++cycle) {
      for (int color = 0; color < 2; ++color) {
        sweep_color(out, std::span<const WilsonSpinor<T>>(rho.data(), n),
                    color);
        // Refresh the global residual: rho = in - M out.
        m_->apply(mv, std::span<const WilsonSpinor<T>>(out.data(), n));
        parallel_for(n, [&](std::size_t i) {
          WilsonSpinor<T> w = in[i];
          w -= mv[i];
          rho[i] = w;
        });
      }
    }
  }

  [[nodiscard]] double flops_per_apply() const override {
    // cycles * (2 global M applies + block MR work ~ block_iters local M).
    const double global = 2.0 * params_.cycles * m_->flops_per_apply();
    const double local = params_.cycles *
                         static_cast<double>(params_.block_mr_iterations) *
                         m_->flops_per_apply();
    return global + local;
  }

  [[nodiscard]] const SapParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::vector<std::int64_t> sites;     // global cb indices
    std::vector<std::int32_t> fwd[Nd];   // local index of fwd nbr or -1
    std::vector<std::int32_t> bwd[Nd];   // local index of bwd nbr or -1
    int color = 0;
  };

  void build_blocks() {
    const LatticeGeometry& geo = m_->geometry();
    Coord nb{};
    for (int mu = 0; mu < Nd; ++mu) {
      LQCD_REQUIRE(params_.block[mu] >= 1 &&
                       geo.dim(mu) % params_.block[mu] == 0,
                   "SAP block size must divide the lattice extent");
      nb[mu] = geo.dim(mu) / params_.block[mu];
    }
    const int nblocks = nb[0] * nb[1] * nb[2] * nb[3];
    blocks_.resize(static_cast<std::size_t>(nblocks));

    // Map every site to its block and local index.
    const std::int64_t vol = geo.volume();
    std::vector<std::int32_t> block_of(static_cast<std::size_t>(vol));
    std::vector<std::int32_t> local_of(static_cast<std::size_t>(vol));
    for (std::int64_t s = 0; s < vol; ++s) {
      const Coord x = geo.coords(s);
      Coord bc{};
      for (int mu = 0; mu < Nd; ++mu) bc[mu] = x[mu] / params_.block[mu];
      const int bid =
          bc[0] + nb[0] * (bc[1] + nb[1] * (bc[2] + nb[2] * bc[3]));
      Block& blk = blocks_[static_cast<std::size_t>(bid)];
      blk.color = (bc[0] + bc[1] + bc[2] + bc[3]) & 1;
      block_of[static_cast<std::size_t>(s)] = bid;
      local_of[static_cast<std::size_t>(s)] =
          static_cast<std::int32_t>(blk.sites.size());
      blk.sites.push_back(s);
    }
    // Local neighbor tables with the Dirichlet cut at block boundaries.
    for (auto& blk : blocks_) {
      const auto bs = blk.sites.size();
      for (int mu = 0; mu < Nd; ++mu) {
        blk.fwd[mu].resize(bs);
        blk.bwd[mu].resize(bs);
      }
      for (std::size_t i = 0; i < bs; ++i) {
        const std::int64_t s = blk.sites[i];
        for (int mu = 0; mu < Nd; ++mu) {
          const std::int64_t f = geo.fwd(s, mu);
          const std::int64_t bwd = geo.bwd(s, mu);
          // A wrapping step is never block-internal unless the block spans
          // the whole extent in that direction.
          const bool fwd_in =
              block_of[static_cast<std::size_t>(f)] ==
                  block_of[static_cast<std::size_t>(s)] &&
              (!geo.fwd_wraps(s, mu) ||
               params_.block[mu] == geo.dim(mu));
          const bool bwd_in =
              block_of[static_cast<std::size_t>(bwd)] ==
                  block_of[static_cast<std::size_t>(s)] &&
              (!geo.bwd_wraps(s, mu) ||
               params_.block[mu] == geo.dim(mu));
          blk.fwd[mu][i] =
              fwd_in ? local_of[static_cast<std::size_t>(f)] : -1;
          blk.bwd[mu][i] =
              bwd_in ? local_of[static_cast<std::size_t>(bwd)] : -1;
        }
      }
    }
  }

  /// Masked block hopping: local spans, Dirichlet outside the block.
  template <int Mu>
  void accum_hop_block(WilsonSpinor<T>& acc, const Block& blk,
                       std::span<const WilsonSpinor<T>> in,
                       std::size_t i) const {
    const GaugeField<T>& u = m_->fermion_links();
    const LatticeGeometry& geo = m_->geometry();
    const std::int64_t s = blk.sites[i];
    const std::int32_t fl = blk.fwd[Mu][i];
    if (fl >= 0) {
      const HalfSpinor<T> h =
          project<Mu, -1>(in[static_cast<std::size_t>(fl)]);
      HalfSpinor<T> uh;
      uh.s[0] = mul(u(s, Mu), h.s[0]);
      uh.s[1] = mul(u(s, Mu), h.s[1]);
      accum_reconstruct<Mu, -1>(acc, uh);
    }
    const std::int32_t bl = blk.bwd[Mu][i];
    if (bl >= 0) {
      const std::int64_t sm = geo.bwd(s, Mu);
      const HalfSpinor<T> h =
          project<Mu, +1>(in[static_cast<std::size_t>(bl)]);
      HalfSpinor<T> uh;
      uh.s[0] = adj_mul(u(sm, Mu), h.s[0]);
      uh.s[1] = adj_mul(u(sm, Mu), h.s[1]);
      accum_reconstruct<Mu, +1>(acc, uh);
    }
  }

  /// out_local = M_block in_local = in - kappa * masked_hop(in).
  void apply_block(const Block& blk, std::span<WilsonSpinor<T>> out,
                   std::span<const WilsonSpinor<T>> in) const {
    const T k = static_cast<T>(m_->kappa());
    for (std::size_t i = 0; i < blk.sites.size(); ++i) {
      WilsonSpinor<T> acc{};
      accum_hop_block<0>(acc, blk, in, i);
      accum_hop_block<1>(acc, blk, in, i);
      accum_hop_block<2>(acc, blk, in, i);
      accum_hop_block<3>(acc, blk, in, i);
      acc *= k;
      WilsonSpinor<T> r = in[i];
      r -= acc;
      out[i] = r;
    }
  }

  /// Approximate block solve with `block_mr_iterations` MR steps,
  /// accumulating the correction into the relevant sites of v.
  void sweep_color(std::span<WilsonSpinor<T>> v,
                   std::span<const WilsonSpinor<T>> rho, int color) const {
    parallel_for_chunks(
        blocks_.size(),
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          std::vector<WilsonSpinor<T>> d, r, q;
          for (std::size_t bi = lo; bi < hi; ++bi) {
            const Block& blk = blocks_[bi];
            if (blk.color != color) continue;
            const std::size_t bs = blk.sites.size();
            d.assign(bs, WilsonSpinor<T>{});
            r.resize(bs);
            q.resize(bs);
            for (std::size_t i = 0; i < bs; ++i)
              r[i] = rho[static_cast<std::size_t>(blk.sites[i])];
            for (int mr = 0; mr < params_.block_mr_iterations; ++mr) {
              apply_block(blk, std::span<WilsonSpinor<T>>(q),
                          std::span<const WilsonSpinor<T>>(r.data(), bs));
              Cplx<T> qr{};
              T qq{};
              for (std::size_t i = 0; i < bs; ++i) {
                qr += lqcd::dot(q[i], r[i]);
                qq += lqcd::norm2(q[i]);
              }
              if (qq <= T(0)) break;
              const Cplx<T> alpha(qr.re / qq, qr.im / qq);
              for (std::size_t i = 0; i < bs; ++i) {
                WilsonSpinor<T> t = r[i];
                t *= alpha;
                d[i] += t;
                WilsonSpinor<T> tq = q[i];
                tq *= alpha;
                r[i] -= tq;
              }
            }
            for (std::size_t i = 0; i < bs; ++i)
              v[static_cast<std::size_t>(blk.sites[i])] += d[i];
          }
        });
  }

  const WilsonOperator<T>* m_;
  SapParams params_;
  std::vector<Block> blocks_;
  mutable aligned_vector<WilsonSpinor<T>> rho_;
  mutable aligned_vector<WilsonSpinor<T>> mv_;
};

}  // namespace lqcd
