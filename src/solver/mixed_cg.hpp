#pragma once
// Mixed-precision defect-correction CG (QUDA-style "reliable updates",
// simplified to full outer corrections).
//
// The outer loop runs in double: it keeps the exact residual
// r = b - A x. Each cycle solves A d ~= r in *float* to a fixed relative
// reduction, then accumulates x += d in double and recomputes the true
// residual. Float arithmetic is ~2x faster and halves memory traffic for
// the memory-bound dslash, at the cost of a few extra total iterations —
// the trade quantified by bench_mixed_precision.
//
// Requires a hermitian positive-definite operator pair (double + float
// instances of the same matrix, e.g. NormalOperator of Wilson on a double
// and a float copy of the links).

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

struct MixedCgParams {
  SolverParams outer;           ///< overall target (double precision)
  double inner_reduction = 1e-5;  ///< per-cycle float residual reduction
  int inner_max_iterations = 2000;
  int max_outer_cycles = 50;
};

inline SolverResult mixed_cg_solve(const LinearOperator<double>& a_double,
                                   const LinearOperator<float>& a_float,
                                   std::span<WilsonSpinor<double>> x,
                                   std::span<const WilsonSpinor<double>> b,
                                   const MixedCgParams& params) {
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "mixed_cg size mismatch");
  LQCD_REQUIRE(a_double.vector_size() == a_float.vector_size(),
               "mixed_cg operator size mismatch");
  LQCD_REQUIRE(a_double.hermitian_positive() && a_float.hermitian_positive(),
               "mixed_cg needs hermitian positive operators");

  WallTimer timer;
  SolverResult res;
  auto cspan = [](auto s) {
    using S = typename decltype(s)::element_type;
    return std::span<const S>(s.data(), s.size());
  };

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    blas::zero(x);
    res.converged = true;
    res.seconds = timer.seconds();
    return res;
  }
  const double target = params.outer.tol;

  aligned_vector<WilsonSpinor<double>> r_s(n), t_s(n);
  aligned_vector<WilsonSpinor<float>> rf_s(n), df_s(n);
  std::span<WilsonSpinor<double>> r(r_s.data(), n), t(t_s.data(), n);
  std::span<WilsonSpinor<float>> rf(rf_s.data(), n), df(df_s.data(), n);

  double rel = 0.0;
  for (int cycle = 0; cycle < params.max_outer_cycles; ++cycle) {
    // True residual in double.
    a_double.apply(t, cspan(x));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<double> w = b[i];
      w -= t[i];
      r[i] = w;
    });
    const double rr = blas::norm2(cspan(r));
    rel = std::sqrt(rr / b_norm2);
    res.flops += a_double.flops_per_apply() +
                 static_cast<double>(n) * 2.0 * 48.0;
    if (params.outer.verbose)
      log_debug("mixed_cg cycle ", cycle, " rel ", rel);
    if (rel <= target) {
      res.converged = true;
      break;
    }
    res.outer_cycles = cycle + 1;

    // Normalize the residual so the float inner solve is well-scaled.
    const double scale = std::sqrt(rr);
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<double> w = r[i];
      w *= 1.0 / scale;
      rf[i] = convert<float>(w);
    });

    SolverParams inner;
    // Never ask float for more than it can deliver; also don't overshoot
    // far below the remaining outer gap.
    inner.tol = std::max(params.inner_reduction, 0.3 * target / rel);
    inner.max_iterations = params.inner_max_iterations;
    inner.check_true_residual = false;
    blas::zero(df);
    const SolverResult inner_res = cg_solve<float>(a_float, df, cspan(rf),
                                                   inner);
    res.inner_iterations += inner_res.iterations;
    res.flops += inner_res.flops;

    // x += scale * d (promote to double).
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<double> d = convert<double>(df[i]);
      d *= scale;
      x[i] += d;
    });
  }

  res.iterations = res.inner_iterations;
  res.relative_residual = rel;
  res.seconds = timer.seconds();
  return res;
}

}  // namespace lqcd
