#pragma once
// Mixed-precision defect-correction CG (QUDA-style "reliable updates",
// simplified to full outer corrections).
//
// The outer loop runs in double: it keeps the exact residual
// r = b - A x. Each cycle solves A d ~= r in *float* to a fixed relative
// reduction, then accumulates x += d in double and recomputes the true
// residual. Float arithmetic is ~2x faster and halves memory traffic for
// the memory-bound dslash, at the cost of a few extra total iterations —
// the trade quantified by bench_mixed_precision.
//
// Robustness: a float inner solve can break down (NaN from a corrupted
// apply, a system too ill-conditioned for single precision) or the outer
// residual can stall between cycles. Either condition triggers an
// automatic fallback: the offending cycle is re-run with the *double*
// operator, and once a fallback happens the solver stays in double (the
// condition that broke float once will break it again). Fallback cycles
// are counted in SolverResult::fallbacks.
//
// Requires a hermitian positive-definite operator pair (double + float
// instances of the same matrix, e.g. NormalOperator of Wilson on a double
// and a float copy of the links).

#include <cmath>
#include <limits>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

struct MixedCgParams {
  SolverParams outer;           ///< overall target (double precision)
  double inner_reduction = 1e-5;  ///< per-cycle float residual reduction
  int inner_max_iterations = 2000;
  int max_outer_cycles = 50;
  /// A cycle that fails to shrink the outer residual below this fraction
  /// of its previous value counts as stalled and triggers the double
  /// fallback (stalled again in double = terminal stagnation).
  double stall_factor = 0.9;
};

inline SolverResult mixed_cg_solve(const LinearOperator<double>& a_double,
                                   const LinearOperator<float>& a_float,
                                   std::span<WilsonSpinor<double>> x,
                                   std::span<const WilsonSpinor<double>> b,
                                   const MixedCgParams& params) {
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "mixed_cg size mismatch");
  LQCD_REQUIRE(a_double.vector_size() == a_float.vector_size(),
               "mixed_cg operator size mismatch");
  LQCD_REQUIRE(a_double.hermitian_positive() && a_float.hermitian_positive(),
               "mixed_cg needs hermitian positive operators");

  telemetry::TraceRegion trace("solver.mixed_cg");
  WallTimer timer;
  SolverResult res;
  auto cspan = [](auto s) {
    using S = typename decltype(s)::element_type;
    return std::span<const S>(s.data(), s.size());
  };

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    blas::zero(x);
    res.converged = true;
    res.seconds = timer.seconds();
    record_solve("mixed_cg", res);
    return res;
  }
  const double target = params.outer.tol;

  aligned_vector<WilsonSpinor<double>> r_s(n), t_s(n), dd_s(n);
  aligned_vector<WilsonSpinor<float>> rf_s(n), df_s(n);
  std::span<WilsonSpinor<double>> r(r_s.data(), n), t(t_s.data(), n),
      dd(dd_s.data(), n);
  std::span<WilsonSpinor<float>> rf(rf_s.data(), n), df(df_s.data(), n);

  double rel = 0.0;
  double prev_rel = 0.0;
  bool prefer_double = false;  // sticky once a fallback is triggered
  for (int cycle = 0; cycle < params.max_outer_cycles; ++cycle) {
    // True residual in double.
    a_double.apply(t, cspan(x));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<double> w = b[i];
      w -= t[i];
      r[i] = w;
    });
    const double rr = blas::norm2(cspan(r));
    rel = std::sqrt(rr / b_norm2);
    res.flops += a_double.flops_per_apply() +
                 static_cast<double>(n) * 2.0 * 48.0;
    if (params.outer.verbose)
      log_debug("mixed_cg cycle ", cycle, " rel ", rel);
    if (rel <= target) {
      res.converged = true;
      break;
    }
    // A NaN-infected iterate cannot be corrected incrementally: reset.
    if (!std::isfinite(rel)) {
      res.breakdown = Breakdown::NonFinite;
      if (!prefer_double) {
        prefer_double = true;
        blas::zero(x);
        prev_rel = std::numeric_limits<double>::infinity();
        log_warn("mixed_cg: non-finite residual, restarting in double");
        continue;
      }
      break;  // double pass also produced NaN: give up
    }
    // Outer stall detection.
    if (cycle > 0 && rel >= params.stall_factor * prev_rel) {
      if (prefer_double) {
        res.breakdown = Breakdown::Stagnation;
        break;
      }
      prefer_double = true;
      log_warn("mixed_cg: outer residual stalled (", prev_rel, " -> ", rel,
               "), falling back to double cycles");
    }
    prev_rel = rel;
    res.outer_cycles = cycle + 1;

    // Normalize the residual so the inner solve is well-scaled.
    const double scale = std::sqrt(rr);

    SolverParams inner;
    // Never ask the inner precision for more than it can deliver; also
    // don't overshoot far below the remaining outer gap.
    inner.tol = std::max(params.inner_reduction, 0.3 * target / rel);
    inner.max_iterations = params.inner_max_iterations;
    inner.check_true_residual = false;

    bool accumulated = false;
    if (!prefer_double) {
      parallel_for(n, [&](std::size_t i) {
        WilsonSpinor<double> w = r[i];
        w *= 1.0 / scale;
        rf[i] = convert<float>(w);
      });
      blas::zero(df);
      const SolverResult inner_res =
          cg_solve<float>(a_float, df, cspan(rf), inner);
      res.inner_iterations += inner_res.iterations;
      res.flops += inner_res.flops;
      const double d_norm = blas::norm2(cspan(df));
      if (inner_res.breakdown != Breakdown::None ||
          !std::isfinite(d_norm)) {
        // Float cycle broke down: discard it and redo in double.
        prefer_double = true;
        res.breakdown = inner_res.breakdown != Breakdown::None
                            ? inner_res.breakdown
                            : Breakdown::NonFinite;
        log_warn("mixed_cg: float inner breakdown (",
                 to_string(res.breakdown), "), falling back to double");
      } else {
        // x += scale * d (promote to double).
        parallel_for(n, [&](std::size_t i) {
          WilsonSpinor<double> d = convert<double>(df[i]);
          d *= scale;
          x[i] += d;
        });
        accumulated = true;
      }
    }
    if (prefer_double && !accumulated) {
      ++res.fallbacks;
      parallel_for(n, [&](std::size_t i) {
        WilsonSpinor<double> w = r[i];
        w *= 1.0 / scale;
        dd[i] = w;  // reuse as the normalized rhs…
      });
      blas::zero(t);  // …and t as the correction
      const SolverResult inner_res =
          cg_solve<double>(a_double, t, cspan(dd), inner);
      res.inner_iterations += inner_res.iterations;
      res.flops += inner_res.flops;
      parallel_for(n, [&](std::size_t i) {
        WilsonSpinor<double> d = t[i];
        d *= scale;
        x[i] += d;
      });
    }
  }

  if (!res.converged) {
    // The loop exits on cycle exhaustion (or breakdown) *after* the last
    // correction was accumulated, so `rel` is the residual measured at
    // the top of the final cycle — stale by one correction. Recompute the
    // true residual so the reported value matches the returned x; the
    // last cycle may even have converged.
    a_double.apply(t, cspan(x));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<double> w = b[i];
      w -= t[i];
      r[i] = w;
    });
    rel = std::sqrt(blas::norm2(cspan(r)) / b_norm2);
    res.flops += a_double.flops_per_apply() +
                 static_cast<double>(n) * 2.0 * 48.0;
    if (rel <= target) {
      res.converged = true;
    }
  }
  res.iterations = res.inner_iterations;
  res.relative_residual = rel;
  if (res.converged) res.breakdown = Breakdown::None;  // fully recovered
  res.seconds = timer.seconds();
  record_solve("mixed_cg", res);
  return res;
}

}  // namespace lqcd
