#pragma once
// Restarted, flexible GCR (generalized conjugate residual) with optional
// right preconditioning — the outer solver of Lüscher's SAP-based domain
// decomposition scheme. Flexibility means the preconditioner may change
// between iterations (an inexact block solve qualifies).

#include <memory>
#include <vector>

#include "dirac/operator.hpp"
#include "linalg/blas.hpp"
#include "solver/solver.hpp"
#include "util/aligned.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace lqcd {

/// Right preconditioner interface: out ~= M^{-1} in (approximate).
template <typename T>
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<WilsonSpinor<T>> out,
                     std::span<const WilsonSpinor<T>> in) const = 0;
  /// Estimated flops per apply (for throughput accounting).
  [[nodiscard]] virtual double flops_per_apply() const { return 0.0; }
};

struct GcrParams {
  SolverParams base;
  int restart_length = 16;
};

template <typename T>
SolverResult gcr_solve(const LinearOperator<T>& m,
                       std::span<WilsonSpinor<T>> x,
                       std::span<const WilsonSpinor<T>> b,
                       const GcrParams& params,
                       const Preconditioner<T>* precond = nullptr) {
  const std::size_t n = b.size();
  LQCD_REQUIRE(x.size() == n, "gcr size mismatch");
  LQCD_REQUIRE(params.restart_length >= 1, "gcr restart length");

  WallTimer timer;
  SolverResult res;
  auto cspan = [](std::span<WilsonSpinor<T>> s) {
    return std::span<const WilsonSpinor<T>>(s.data(), s.size());
  };

  const double b_norm2 = blas::norm2(b);
  if (b_norm2 == 0.0) {
    blas::zero(x);
    res.converged = true;
    res.seconds = timer.seconds();
    return res;
  }
  const double target2 = params.base.tol * params.base.tol * b_norm2;

  aligned_vector<WilsonSpinor<T>> r_s(n), z_s(n), q_s(n);
  std::span<WilsonSpinor<T>> r(r_s.data(), n), z(z_s.data(), n),
      q(q_s.data(), n);

  const int mlen = params.restart_length;
  std::vector<aligned_vector<WilsonSpinor<T>>> zk, qk;
  zk.reserve(static_cast<std::size_t>(mlen));
  qk.reserve(static_cast<std::size_t>(mlen));
  std::vector<double> qk_norm2(static_cast<std::size_t>(mlen), 0.0);

  // r = b - M x
  m.apply(r, cspan(x));
  parallel_for(n, [&](std::size_t i) {
    WilsonSpinor<T> w = b[i];
    w -= r[i];
    r[i] = w;
  });
  double rr = blas::norm2(cspan(r));

  const double op_flops = m.flops_per_apply();
  const double pre_flops = precond ? precond->flops_per_apply() : 0.0;

  int it = 0;
  while (it < params.base.max_iterations && rr > target2) {
    zk.clear();
    qk.clear();
    int k = 0;
    for (; k < mlen && it < params.base.max_iterations && rr > target2;
         ++k, ++it) {
      // Preconditioned direction.
      if (precond) {
        blas::zero(z);
        precond->apply(z, cspan(r));
      } else {
        blas::copy(z, cspan(r));
      }
      m.apply(q, cspan(z));
      // Orthogonalize q against previous directions (modified
      // Gram-Schmidt), updating z consistently.
      for (int j = 0; j < k; ++j) {
        std::span<const WilsonSpinor<T>> qj(qk[static_cast<std::size_t>(j)]
                                                .data(),
                                            n);
        std::span<const WilsonSpinor<T>> zj(zk[static_cast<std::size_t>(j)]
                                                .data(),
                                            n);
        const Cplxd a = blas::dot(qj, cspan(q));
        const Cplx<T> af(static_cast<T>(a.re / qk_norm2[j]),
                         static_cast<T>(a.im / qk_norm2[j]));
        blas::caxpy(Cplx<T>(-af.re, -af.im), qj, q);
        blas::caxpy(Cplx<T>(-af.re, -af.im), zj, z);
      }
      const double qq = blas::norm2(cspan(q));
      if (qq == 0.0) break;  // breakdown; restart
      const Cplxd beta_c = blas::dot(cspan(q), cspan(r));
      const Cplx<T> beta(static_cast<T>(beta_c.re / qq),
                         static_cast<T>(beta_c.im / qq));
      blas::caxpy(beta, cspan(z), x);
      blas::caxpy(Cplx<T>(-beta.re, -beta.im), cspan(q), r);
      rr = blas::norm2(cspan(r));

      // Store direction.
      qk.emplace_back(q.begin(), q.end());
      zk.emplace_back(z.begin(), z.end());
      qk_norm2[static_cast<std::size_t>(k)] = qq;

      res.flops += op_flops + pre_flops +
                   static_cast<double>(n) * (6.0 + 2.0 * k) * 48.0;
      if (params.base.verbose)
        log_debug("gcr iter ", it + 1, " rel ", std::sqrt(rr / b_norm2));
    }
    if (k == 0) break;  // hard breakdown
  }

  res.iterations = it;
  res.converged = rr <= target2;
  if (params.base.check_true_residual) {
    m.apply(q, cspan(x));
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> w = b[i];
      w -= q[i];
      q[i] = w;
    });
    res.relative_residual = std::sqrt(blas::norm2(cspan(q)) / b_norm2);
    res.converged =
        res.converged && res.relative_residual <= 10 * params.base.tol;
  } else {
    res.relative_residual = std::sqrt(rr / b_norm2);
  }
  res.seconds = timer.seconds();
  return res;
}

}  // namespace lqcd
