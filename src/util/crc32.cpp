#include "util/crc32.hpp"

#include <array>
#include <cstring>

namespace lqcd {

namespace {
// Slice-by-16 (zlib-style, widened): table j maps a byte to its CRC
// contribution j+1 positions further down the stream, so sixteen bytes
// fold per step. Table 0 alone is the classic byte-at-a-time Sarwate
// table, still used for the tail. Every checksummed halo message is
// framed through here, so the wide kernel matters: it is what makes the
// CRC throughput the perf model's resilience surcharge assumes (kCrcGBs)
// realistic.
std::array<std::array<std::uint32_t, 256>, 16> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (int j = 1; j < 16; ++j)
      t[j][i] = t[0][t[j - 1][i] & 0xffu] ^ (t[j - 1][i] >> 8);
  return t;
}
}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t prev) {
  static const auto t = make_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = prev ^ 0xffffffffu;
  while (bytes >= 16) {
    std::uint32_t w0, w1, w2, w3;  // memcpy: alignment-safe word loads
    std::memcpy(&w0, p, 4);
    std::memcpy(&w1, p + 4, 4);
    std::memcpy(&w2, p + 8, 4);
    std::memcpy(&w3, p + 12, 4);
    w0 ^= c;
    c = t[15][w0 & 0xffu] ^ t[14][(w0 >> 8) & 0xffu] ^
        t[13][(w0 >> 16) & 0xffu] ^ t[12][w0 >> 24] ^ t[11][w1 & 0xffu] ^
        t[10][(w1 >> 8) & 0xffu] ^ t[9][(w1 >> 16) & 0xffu] ^
        t[8][w1 >> 24] ^ t[7][w2 & 0xffu] ^ t[6][(w2 >> 8) & 0xffu] ^
        t[5][(w2 >> 16) & 0xffu] ^ t[4][w2 >> 24] ^ t[3][w3 & 0xffu] ^
        t[2][(w3 >> 8) & 0xffu] ^ t[1][(w3 >> 16) & 0xffu] ^ t[0][w3 >> 24];
    p += 16;
    bytes -= 16;
  }
  for (std::size_t i = 0; i < bytes; ++i)
    c = t[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace lqcd
