#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lqcd {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(n - 1);
}

double standard_error(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return std::sqrt(variance(xs) / static_cast<double>(xs.size()));
}

double integrated_autocorrelation(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.5;
  const double m = mean(xs);
  const double c0 = [&] {
    double s = 0.0;
    for (double x : xs) s += (x - m) * (x - m);
    return s / static_cast<double>(n);
  }();
  if (c0 <= 0.0) return 0.5;

  double tau = 0.5;
  // Madras–Sokal self-consistent window: stop when t >= 6 tau.
  for (std::size_t t = 1; t < n / 2; ++t) {
    double ct = 0.0;
    for (std::size_t i = 0; i + t < n; ++i)
      ct += (xs[i] - m) * (xs[i + t] - m);
    ct /= static_cast<double>(n - t);
    tau += ct / c0;
    if (static_cast<double>(t) >= 6.0 * tau) break;
  }
  return tau > 0.5 ? tau : 0.5;
}

JackknifeResult jackknife(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& estimator) {
  const std::size_t n = samples.size();
  LQCD_REQUIRE(n >= 2, "jackknife needs at least 2 samples");

  JackknifeResult out;
  out.value = estimator(samples);

  std::vector<double> reduced(n - 1);
  std::vector<double> thetas(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (i != k) reduced[j++] = samples[i];
    thetas[k] = estimator(reduced);
  }
  const double tbar = mean(thetas);
  double s = 0.0;
  for (double th : thetas) s += (th - tbar) * (th - tbar);
  out.error =
      std::sqrt(s * static_cast<double>(n - 1) / static_cast<double>(n));
  return out;
}

JackknifeResult jackknife_mean(std::span<const double> samples) {
  return jackknife(samples,
                   [](std::span<const double> xs) { return mean(xs); });
}

CorrelatorEstimate jackknife_correlator(
    const std::vector<std::vector<double>>& data) {
  LQCD_REQUIRE(!data.empty(), "no correlator measurements");
  const std::size_t nt = data.front().size();
  for (const auto& row : data)
    LQCD_REQUIRE(row.size() == nt, "ragged correlator data");

  CorrelatorEstimate est;
  est.value.resize(nt);
  est.error.resize(nt);
  std::vector<double> column(data.size());
  for (std::size_t t = 0; t < nt; ++t) {
    for (std::size_t c = 0; c < data.size(); ++c) column[c] = data[c][t];
    if (column.size() >= 2) {
      const auto jk = jackknife_mean(column);
      est.value[t] = jk.value;
      est.error[t] = jk.error;
    } else {
      est.value[t] = column[0];
      est.error[t] = 0.0;
    }
  }
  return est;
}

}  // namespace lqcd
