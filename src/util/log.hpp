#pragma once
// Minimal leveled logger.
//
// The library itself logs sparingly (solver traces at Debug, ensemble
// progress at Info). Output goes to stderr so bench/table output on stdout
// stays machine-parsable.

#include <sstream>
#include <string>

namespace lqcd {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug,
                detail::format_parts(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info,
                detail::format_parts(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn,
                detail::format_parts(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error,
                detail::format_parts(std::forward<Args>(args)...));
}

}  // namespace lqcd
