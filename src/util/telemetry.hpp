#pragma once
// lqcd::telemetry — low-overhead, thread-safe metrics and tracing.
//
// Three primitives, all process-global and compiled in unconditionally:
//
//   Counter      named monotonic int64 (dslash applies, halo bytes,
//                solver iterations, ...). add() is a relaxed atomic
//                fetch_add behind a single enabled() branch — cheap
//                enough for once-per-apply / once-per-exchange call
//                sites, and never called inside parallel_for bodies.
//   Gauge        named last-value double (acceptance rate, force norm).
//   TraceRegion  RAII wall-clock scope. Regions nest; each thread owns a
//                private span tree (no cross-thread locking on the hot
//                path), and report_json() merges the per-thread trees.
//
// Runtime switch: the LQCD_TELEMETRY environment variable ("off"/"0"
// disables collection at startup) or set_enabled(). When disabled,
// add()/set() and TraceRegion are branch-only no-ops — the overhead
// contract bench_telemetry measures.
//
// Reports serialize to JSON with a stable schema (kSchemaVersion) and
// deterministic key order (counters/gauges sorted by name, span children
// sorted by name), so two identical virtual-cluster runs produce
// byte-identical counter sections — asserted by test_telemetry. Wall-clock
// span durations are inherently nondeterministic; report_json(false)
// omits them for golden/determinism tests.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace lqcd::telemetry {

/// Schema identifier stamped into every JSON report. Bump when the report
/// layout changes shape (adding new counter names is not a schema change).
inline constexpr const char* kSchema = "lqcd.telemetry/1";

/// Global collection switch (initialized from LQCD_TELEMETRY; "off"/"0"
/// disables). Reads are relaxed atomic loads.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic counter. Obtain a stable reference once via counter() (cache
/// it in a function-local static at hot call sites); add() from any
/// thread.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value gauge (per-rank or per-run scalars).
class Gauge {
 public:
  void set(double v) noexcept {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Look up (registering on first use) a named counter/gauge. The returned
/// reference is valid for the lifetime of the process. Registration takes
/// a mutex; cache the reference where the call site is hot.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);

/// RAII trace scope. `name` must outlive the region (string literals).
/// Regions nest: a region opened while another is active on the same
/// thread becomes its child in the span tree. Durations and entry counts
/// accumulate across repeated entries of the same path.
class TraceRegion {
 public:
  explicit TraceRegion(const char* name) noexcept;
  ~TraceRegion();
  TraceRegion(const TraceRegion&) = delete;
  TraceRegion& operator=(const TraceRegion&) = delete;

 private:
  void* node_ = nullptr;  ///< SpanNode* when active, nullptr when disabled
  double t0_ = 0.0;
};

/// Serialize all counters, gauges and the merged span tree to JSON.
/// Key order is deterministic. `include_timings = false` omits wall-clock
/// span durations (the nondeterministic part) so the output of two
/// identical runs compares byte-for-byte.
[[nodiscard]] std::string report_json(bool include_timings = true);

/// report_json() to a file (atomically-ish: plain ofstream; reports are
/// end-of-run artifacts, not checkpoints).
void write_report(const std::string& path, bool include_timings = true);

/// Zero every counter and gauge and drop all span trees. Registered names
/// survive (references stay valid) but report_json() omits zero-count
/// spans, so a reset starts a clean measurement window.
void reset();

}  // namespace lqcd::telemetry
