#pragma once
// Counter-based random number generation.
//
// Lattice QCD at scale needs RNG streams that are (a) reproducible
// independently of the process/thread decomposition and (b) cheap to seed
// per lattice site. We use a stateless hash-based generator in the spirit of
// Philox/Random123: every draw is a strong 64-bit mix of
// (seed, stream, counter). A per-site stream id equal to the *global*
// lexicographic site index makes every field initialization identical for
// any rank layout — the property the virtual-cluster tests rely on.

#include <cmath>
#include <cstdint>

namespace lqcd {

namespace detail {
/// SplitMix64 finalizer — a well-tested 64-bit mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Full 3-word mix used by CounterRng: two rounds of splitmix over a
/// combination of seed, stream and counter words.
constexpr std::uint64_t mix3(std::uint64_t seed, std::uint64_t stream,
                             std::uint64_t counter) {
  std::uint64_t a = splitmix64(seed ^ 0x8e9b3c1fa5a0d7e3ULL);
  std::uint64_t b = splitmix64(stream + 0x6a09e667f3bcc909ULL);
  return splitmix64(a ^ (b + counter * 0x9e3779b97f4a7c15ULL));
}
}  // namespace detail

/// Stateless counter RNG: a (seed, stream) pair plus an incrementing
/// counter. Copyable; two instances with the same triple produce the same
/// sequence regardless of thread or rank.
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t stream,
             std::uint64_t counter = 0) noexcept
      : seed_(seed), stream_(stream), counter_(counter) {}

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept {
    return detail::mix3(seed_, stream_, counter_++);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 high bits -> [0,1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform_open0() noexcept {
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal draw (Box–Muller; one of the pair is cached).
  double gaussian() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    const double u1 = uniform_open0();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double phi = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(phi);
    have_cached_ = true;
    return r * std::cos(phi);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t stream() const noexcept { return stream_; }
  [[nodiscard]] std::uint64_t counter() const noexcept { return counter_; }

 private:
  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t counter_;
  double cached_ = 0.0;
  bool have_cached_ = false;
};

/// Factory for per-site streams: all fields seeded through this factory are
/// reproducible bit-for-bit for any process decomposition, because the
/// stream id is the global site index (optionally offset per field/epoch).
class SiteRngFactory {
 public:
  /// `epoch` distinguishes successive stochastic events on the same sites
  /// (e.g. heatbath sweep number), so streams are never reused.
  SiteRngFactory(std::uint64_t seed, std::uint64_t epoch = 0) noexcept
      : seed_(seed), epoch_(epoch) {}

  /// RNG for one global site (and an optional per-site slot, e.g. link dir).
  [[nodiscard]] CounterRng make(std::uint64_t global_site,
                                std::uint64_t slot = 0) const noexcept {
    // Pack (epoch, slot) into the stream with generous spacing.
    const std::uint64_t stream =
        global_site * 64 + (slot & 63) + (epoch_ << 40);
    return CounterRng(seed_, stream);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Advance to the next stochastic epoch (returns the new factory).
  [[nodiscard]] SiteRngFactory next_epoch() const noexcept {
    return SiteRngFactory(seed_, epoch_ + 1);
  }

 private:
  std::uint64_t seed_;
  std::uint64_t epoch_;
};

}  // namespace lqcd
