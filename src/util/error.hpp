#pragma once
// Error handling for lqcd.
//
// The library throws lqcd::Error (a std::runtime_error) on contract
// violations and unrecoverable runtime failures (bad geometry, I/O
// corruption, solver divergence when the caller asked for a hard failure).
// LQCD_REQUIRE is used for precondition checks on public entry points;
// LQCD_ASSERT for internal invariants (kept on in all build types: this is
// a correctness-first research code and the checks are off the hot paths).

#include <sstream>
#include <stdexcept>
#include <string>

namespace lqcd {

/// Exception type thrown by all lqcd components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure that a resilience layer may recover from by retrying or
/// re-routing: a lost peer mid-exchange, a timed-out message, a transient
/// resource shortage. Catching code is expected to either retry the whole
/// operation (e.g. resume from a checkpoint) or escalate to FatalError.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// An unrecoverable failure: retry budget exhausted, persistent data
/// corruption, or an invariant that retrying cannot restore. Campaign
/// drivers should stop and surface this to the operator.
class FatalError : public Error {
 public:
  explicit FatalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* cond,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace lqcd

/// Precondition check on public API entry points. Always enabled.
#define LQCD_REQUIRE(cond, msg)                                       \
  do {                                                                \
    if (!(cond))                                                      \
      ::lqcd::detail::fail("precondition", #cond, __FILE__, __LINE__, \
                           (msg));                                    \
  } while (0)

/// Internal invariant check. Always enabled (cold paths only).
#define LQCD_ASSERT(cond, msg)                                      \
  do {                                                              \
    if (!(cond))                                                    \
      ::lqcd::detail::fail("invariant", #cond, __FILE__, __LINE__,  \
                           (msg));                                  \
  } while (0)
