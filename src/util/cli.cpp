#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace lqcd {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  parse_options(argc, argv, 1);
}

Cli::Cli(int argc, const char* const* argv,
         std::initializer_list<const char*> subcommands) {
  program_ = argc > 0 ? argv[0] : "";
  std::string valid;
  for (const char* s : subcommands) {
    if (!valid.empty()) valid += "|";
    valid += s;
  }
  if (argc < 2 || std::string(argv[1]).rfind("--", 0) == 0)
    throw Error("usage: " + program_ + " <" + valid + "> [--options]");
  command_ = argv[1];
  bool known = false;
  for (const char* s : subcommands) known = known || command_ == s;
  if (!known)
    throw Error("unknown command '" + command_ + "' (valid: " + valid + ")");
  parse_options(argc, argv, 2);
}

void Cli::parse_options(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    LQCD_REQUIRE(arg.rfind("--", 0) == 0,
                 "options must start with --, got: " + arg);
    arg = arg.substr(2);
    Opt opt;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opt.name = arg.substr(0, eq);
      opt.value = arg.substr(eq + 1);
      opt.has_value = true;
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opt.name = arg;
      opt.value = argv[++i];
      opt.has_value = true;
    } else {
      opt.name = arg;
    }
    opts_.push_back(std::move(opt));
  }
}

const Cli::Opt* Cli::find(const std::string& name) const {
  for (const auto& o : opts_)
    if (o.name == name) {
      o.used = true;
      return &o;
    }
  return nullptr;
}

bool Cli::has(const std::string& name) const { return find(name) != nullptr; }

int Cli::get_int(const std::string& name, int fallback) {
  const Opt* o = find(name);
  if (!o) return fallback;
  LQCD_REQUIRE(o->has_value, "--" + name + " needs a value");
  return std::atoi(o->value.c_str());
}

long Cli::get_long(const std::string& name, long fallback) {
  const Opt* o = find(name);
  if (!o) return fallback;
  LQCD_REQUIRE(o->has_value, "--" + name + " needs a value");
  return std::atol(o->value.c_str());
}

double Cli::get_double(const std::string& name, double fallback) {
  const Opt* o = find(name);
  if (!o) return fallback;
  LQCD_REQUIRE(o->has_value, "--" + name + " needs a value");
  return std::atof(o->value.c_str());
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) {
  const Opt* o = find(name);
  if (!o) return fallback;
  LQCD_REQUIRE(o->has_value, "--" + name + " needs a value");
  return o->value;
}

bool Cli::get_flag(const std::string& name) {
  const Opt* o = find(name);
  if (!o) return false;
  if (!o->has_value) return true;
  return o->value == "1" || o->value == "true" || o->value == "yes";
}

void Cli::finish() const {
  for (const auto& o : opts_)
    if (!o.used) throw Error("unknown option: --" + o.name);
}

}  // namespace lqcd
