#pragma once
// Cache-line aligned storage for lattice fields.
//
// Field data is stored in std::vector with a 64-byte aligned allocator so
// the site structs start on cache-line boundaries and are friendly to
// auto-vectorization.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace lqcd {

inline constexpr std::size_t kFieldAlignment = 64;

/// Minimal C++17-style aligned allocator (64-byte).
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T),
                             std::align_val_t(kFieldAlignment));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kFieldAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Vector whose buffer is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace lqcd
