#pragma once
// Crash-safe file replacement: stream into a unique temporary in the
// destination directory, then rename over the target. POSIX rename is
// atomic within a filesystem, so a reader (or a process resuming after a
// kill) either sees the complete old file or the complete new file —
// never a truncated write. Used by the gauge-config writer and the HMC
// checkpointer.

#include <functional>
#include <ostream>
#include <string>

namespace lqcd {

/// Write `path` atomically: `writer` streams the full contents into a
/// temporary sibling file, which is fsynced, closed and renamed onto
/// `path` only if the stream stayed good. On writer exception or stream
/// failure the temporary is removed and the previous `path` (if any) is
/// left untouched. Throws lqcd::FatalError on I/O failure.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace lqcd
