#pragma once
// Shared JSON support: a deterministic writer and a small strict parser.
//
// The writer replaces the hand-rolled `out += "\"key\": ..."` emission
// that telemetry and every bench driver used to duplicate. Output is
// deterministic (fixed key order = call order, %.17g doubles) so reports
// from identical runs compare byte-for-byte, the property the telemetry
// golden tests rely on. Objects print one entry per line at two-space
// indent; arrays of scalars stay on one line, arrays of containers break
// per element — the layout the existing BENCH_*.json artifacts use.
//
// The parser is a strict recursive-descent JSON reader used by the serve
// campaign specs. It keeps object keys in file order, tracks whether a
// number was written as an integer, and reports parse errors with byte
// offsets. It exists so job specs can be validated with real error
// messages instead of sscanf guesswork; it is not a streaming parser and
// is sized for specs and reports, not gigabyte dumps.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace lqcd::json {

/// Append `s` to `out` with JSON string escaping.
void escape(std::string& out, std::string_view s);

/// Append shortest round-trip formatting of `v` ("%.17g"): deterministic
/// for identical bit patterns, human-readable in reports.
void format_double(std::string& out, double v);

/// Deterministic pretty-printing JSON builder.
///
///   json::Writer w;
///   w.begin_object()
///    .field("schema", "lqcd.bench.foo/1")
///    .field("iterations", 42)
///    .key("sweep").begin_array().value(1).value(2).end_array()
///    .end_object();
///   std::string doc = w.str();
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object-entry key; must be followed by exactly one value/container.
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v);
  Writer& value_null();

  /// Splice a pre-serialized JSON fragment (e.g. a telemetry report) as
  /// one value. The fragment is re-indented to the current depth.
  Writer& raw(std::string_view json_fragment);

  /// key() + value() in one call.
  template <typename V>
  Writer& field(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }

  /// The finished document. Throws if containers are still open.
  [[nodiscard]] const std::string& str() const;

 private:
  struct Frame {
    bool object = false;
    bool multiline = false;  ///< array that broke onto multiple lines
    int count = 0;
  };
  void begin_entry(bool container);
  void indent();

  std::string out_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

/// Parsed JSON value. Object keys keep file order.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  /// Parse a complete document; throws lqcd::Error with a byte offset on
  /// malformed input or trailing garbage.
  static Value parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_integer() const {
    return kind_ == Kind::Number && integer_;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw lqcd::Error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Value& operator[](std::size_t i) const;

  /// Object access: find() returns nullptr when absent; at() throws with
  /// the key name; get_or for optional scalars with defaults.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] double get_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t get_or(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] int get_or(std::string_view key, int fallback) const {
    return static_cast<int>(get_or(key, static_cast<std::int64_t>(fallback)));
  }
  [[nodiscard]] std::string get_or(std::string_view key,
                                   const std::string& fallback) const;
  [[nodiscard]] bool get_or(std::string_view key, bool fallback) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& items()
      const;

 private:
  friend class Parser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  bool integer_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

}  // namespace lqcd::json
