#pragma once
// Tiny command-line option parser used by the examples and bench drivers.
//
//   lqcd::Cli cli(argc, argv);
//   const int L = cli.get_int("L", 8);
//   const double beta = cli.get_double("beta", 6.0);
//   cli.finish();  // rejects unknown flags
//
// Options are spelled --name=value or --name value; bare --flag is a bool.

#include <string>
#include <vector>

namespace lqcd {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Typed getters with defaults; mark the option as recognized.
  int get_int(const std::string& name, int fallback);
  long get_long(const std::string& name, long fallback);
  double get_double(const std::string& name, double fallback);
  std::string get_string(const std::string& name, const std::string& fallback);
  bool get_flag(const std::string& name);

  /// True if the user supplied the option.
  bool has(const std::string& name) const;

  /// Throws lqcd::Error if any supplied option was never queried
  /// (catches typos in experiment scripts).
  void finish() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  struct Opt {
    std::string name;
    std::string value;
    bool has_value = false;
    mutable bool used = false;
  };
  const Opt* find(const std::string& name) const;

  std::string program_;
  std::vector<Opt> opts_;
};

}  // namespace lqcd
