#pragma once
// Tiny command-line option parser used by the examples and bench drivers.
//
//   lqcd::Cli cli(argc, argv);
//   const int L = cli.get_int("L", 8);
//   const double beta = cli.get_double("beta", 6.0);
//   cli.finish();  // rejects unknown flags
//
// Options are spelled --name=value or --name value; bare --flag is a bool.
//
// Multi-command binaries (git-style `tool verb --flags`) pass the list of
// valid verbs; argv[1] must then be one of them and is exposed via
// command():
//
//   lqcd::Cli cli(argc, argv, {"run", "submit", "status"});
//   if (cli.command() == "run") { ... }
//
// Single-command binaries are unchanged — the flat constructor never
// treats a positional argument as a subcommand.

#include <initializer_list>
#include <string>
#include <vector>

namespace lqcd {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Subcommand mode: argv[1] must be one of `subcommands` (throws
  /// lqcd::Error listing the valid ones otherwise); remaining arguments
  /// parse as normal options.
  Cli(int argc, const char* const* argv,
      std::initializer_list<const char*> subcommands);

  /// The parsed subcommand; empty for flat (single-command) parsing.
  [[nodiscard]] const std::string& command() const { return command_; }

  /// Typed getters with defaults; mark the option as recognized.
  int get_int(const std::string& name, int fallback);
  long get_long(const std::string& name, long fallback);
  double get_double(const std::string& name, double fallback);
  std::string get_string(const std::string& name, const std::string& fallback);
  bool get_flag(const std::string& name);

  /// True if the user supplied the option.
  bool has(const std::string& name) const;

  /// Throws lqcd::Error if any supplied option was never queried
  /// (catches typos in experiment scripts).
  void finish() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  struct Opt {
    std::string name;
    std::string value;
    bool has_value = false;
    mutable bool used = false;
  };
  const Opt* find(const std::string& name) const;
  void parse_options(int argc, const char* const* argv, int first);

  std::string program_;
  std::string command_;
  std::vector<Opt> opts_;
};

}  // namespace lqcd
