#pragma once
// Wall-clock timing utilities used by the solvers and bench harnesses.

#include <chrono>

namespace lqcd {

/// Simple wall-clock stopwatch. start() resets; seconds() reads elapsed.
class WallTimer {
 public:
  WallTimer() { start(); }

  void start() { t0_ = Clock::now(); }

  /// Elapsed seconds since the last start().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - t0_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0_;
};

/// Accumulating timer: sums several timed intervals (e.g. per solver phase).
class AccumTimer {
 public:
  void begin() { timer_.start(); running_ = true; }
  /// Close the interval opened by the matching begin(). An end() without
  /// an open interval is a no-op: it must not bump intervals(), or
  /// per-interval averages (total_seconds()/intervals()) come out low.
  void end() {
    if (running_) {
      total_ += timer_.seconds();
      ++intervals_;
    }
    running_ = false;
  }
  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] long intervals() const { return intervals_; }
  void reset() { total_ = 0.0; intervals_ = 0; running_ = false; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  long intervals_ = 0;
  bool running_ = false;
};

}  // namespace lqcd
