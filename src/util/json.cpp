#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace lqcd::json {

void escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void format_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

// ---- Writer ----------------------------------------------------------

void Writer::indent() {
  out_.append(2 * stack_.size(), ' ');
}

// Emit separators/newlines owed before the next entry. `container` marks
// values that themselves open a scope (objects/arrays force arrays into
// one-entry-per-line mode).
void Writer::begin_entry(bool container) {
  if (after_key_) {
    after_key_ = false;
    return;  // the key() already produced "...":
  }
  if (stack_.empty()) return;  // document root
  Frame& f = stack_.back();
  if (f.object)
    throw Error("json::Writer: object entries need a key()");
  if (container && !f.multiline && f.count == 0) f.multiline = true;
  if (f.multiline) {
    if (f.count > 0) out_ += ",";
    out_ += "\n";
    indent();
  } else if (f.count > 0) {
    out_ += ", ";
  }
  ++f.count;
}

Writer& Writer::key(std::string_view k) {
  if (stack_.empty() || !stack_.back().object)
    throw Error("json::Writer: key() outside an object");
  if (after_key_) throw Error("json::Writer: key() after key()");
  Frame& f = stack_.back();
  if (f.count > 0) out_ += ",";
  out_ += "\n";
  indent();
  ++f.count;
  out_ += "\"";
  escape(out_, k);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

Writer& Writer::begin_object() {
  begin_entry(true);
  out_ += "{";
  stack_.push_back(Frame{.object = true});
  return *this;
}

Writer& Writer::end_object() {
  if (stack_.empty() || !stack_.back().object || after_key_)
    throw Error("json::Writer: unbalanced end_object()");
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (!empty) {
    out_ += "\n";
    indent();
  }
  out_ += "}";
  return *this;
}

Writer& Writer::begin_array() {
  begin_entry(true);
  out_ += "[";
  stack_.push_back(Frame{.object = false});
  return *this;
}

Writer& Writer::end_array() {
  if (stack_.empty() || stack_.back().object || after_key_)
    throw Error("json::Writer: unbalanced end_array()");
  const bool needs_break = stack_.back().multiline && stack_.back().count > 0;
  stack_.pop_back();
  if (needs_break) {
    out_ += "\n";
    indent();
  }
  out_ += "]";
  return *this;
}

Writer& Writer::value(std::string_view v) {
  begin_entry(false);
  out_ += "\"";
  escape(out_, v);
  out_ += "\"";
  return *this;
}

Writer& Writer::value(double v) {
  begin_entry(false);
  format_double(out_, v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  begin_entry(false);
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(bool v) {
  begin_entry(false);
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value_null() {
  begin_entry(false);
  out_ += "null";
  return *this;
}

Writer& Writer::raw(std::string_view json_fragment) {
  begin_entry(true);
  // Re-indent the fragment: its own lines shift to the current depth.
  const std::string pad(2 * stack_.size(), ' ');
  for (std::size_t i = 0; i < json_fragment.size(); ++i) {
    const char c = json_fragment[i];
    out_ += c;
    if (c == '\n' && i + 1 < json_fragment.size()) out_ += pad;
  }
  return *this;
}

const std::string& Writer::str() const {
  if (!stack_.empty() || after_key_)
    throw Error("json::Writer: document still open");
  return out_;
}

// ---- Parser ----------------------------------------------------------

// Not in an anonymous namespace: Value's friend declaration names
// lqcd::json::Parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Value v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.kind_ = Value::Kind::String;
        v.str_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind_ = Value::Kind::Bool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind_ = Value::Kind::Bool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind_ = Value::Kind::Null;
        return v;
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    // UTF-8 encode the BMP codepoint (surrogate pairs are rejected: the
    // writer never emits them and specs are ASCII in practice).
    if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape unsupported");
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool integer = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
      fail("malformed number");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    Value v;
    v.kind_ = Value::Kind::Number;
    v.num_ = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("malformed number");
    }
    v.integer_ = integer;
    if (integer) v.int_ = std::strtoll(tok.c_str(), nullptr, 10);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) { return Parser(text).run(); }

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) throw Error("json: value is not a bool");
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::Number) throw Error("json: value is not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  if (kind_ != Kind::Number) throw Error("json: value is not a number");
  return integer_ ? int_ : static_cast<std::int64_t>(num_);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) throw Error("json: value is not a string");
  return str_;
}

std::size_t Value::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  throw Error("json: size() on a scalar");
}

const Value& Value::operator[](std::size_t i) const {
  if (kind_ != Kind::Array) throw Error("json: indexing a non-array");
  if (i >= arr_.size()) throw Error("json: array index out of range");
  return arr_[i];
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  if (kind_ != Kind::Object) throw Error("json: at() on a non-object");
  const Value* v = find(key);
  if (!v) throw Error("json: missing key '" + std::string(key) + "'");
  return *v;
}

double Value::get_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v ? v->as_double() : fallback;
}

std::int64_t Value::get_or(std::string_view key,
                           std::int64_t fallback) const {
  const Value* v = find(key);
  return v ? v->as_int() : fallback;
}

std::string Value::get_or(std::string_view key,
                          const std::string& fallback) const {
  const Value* v = find(key);
  return v ? v->as_string() : fallback;
}

bool Value::get_or(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v ? v->as_bool() : fallback;
}

const std::vector<std::pair<std::string, Value>>& Value::items() const {
  if (kind_ != Kind::Object) throw Error("json: items() on a non-object");
  return obj_;
}

}  // namespace lqcd::json
