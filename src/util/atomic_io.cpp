#include "util/atomic_io.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/error.hpp"

namespace lqcd {

namespace {
std::string unique_tmp_name(const std::string& path) {
  // Unique within this process; the PID disambiguates across processes
  // sharing a directory (concurrent campaign ranks).
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return path + ".tmp-" + std::to_string(::getpid()) + "-" +
         std::to_string(n);
}

void remove_quiet(const std::string& p) {
  std::error_code ec;
  std::filesystem::remove(p, ec);
}
}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = unique_tmp_name(path);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      remove_quiet(tmp);
      throw FatalError("atomic_write_file: cannot open temporary for " +
                       path);
    }
    try {
      writer(os);
    } catch (...) {
      os.close();
      remove_quiet(tmp);
      throw;
    }
    os.flush();
    if (!os.good()) {
      os.close();
      remove_quiet(tmp);
      throw FatalError("atomic_write_file: write failed for " + path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    remove_quiet(tmp);
    throw FatalError("atomic_write_file: rename to " + path +
                     " failed: " + ec.message());
  }
}

}  // namespace lqcd
