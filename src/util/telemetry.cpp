#include "util/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.hpp"

namespace lqcd::telemetry {

namespace {

bool env_enabled() {
  const char* v = std::getenv("LQCD_TELEMETRY");
  if (!v) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "OFF") == 0 ||
           std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

// ---- named counter/gauge registries ---------------------------------

// std::map keeps iteration (and therefore report key order) sorted;
// unique_ptr keeps references stable across rehashes/inserts.
template <typename T>
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<T>, std::less<>> entries;

  T& get(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(name);
    if (it == entries.end())
      it = entries.emplace(std::string(name), std::make_unique<T>()).first;
    return *it->second;
  }
};

Registry<Counter>& counters() {
  static Registry<Counter> r;
  return r;
}

Registry<Gauge>& gauges() {
  static Registry<Gauge> r;
  return r;
}

// ---- per-thread span trees ------------------------------------------

struct SpanNode {
  std::int64_t count = 0;
  double seconds = 0.0;
  std::map<std::string, std::unique_ptr<SpanNode>, std::less<>> children;
};

// One tree per thread. The owning thread mutates it only under `mutex`
// (uncontended in steady state); report/reset lock the same mutex, so a
// merge never observes a half-updated node. Nodes are never deleted while
// the process lives — reset() zeroes them instead — so a TraceRegion that
// straddles a reset stays valid.
struct ThreadTrace {
  std::mutex mutex;
  SpanNode root;
  std::vector<SpanNode*> stack;  ///< open regions, innermost last
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTrace>> traces;
};

TraceRegistry& trace_registry() {
  static TraceRegistry r;
  return r;
}

ThreadTrace& this_thread_trace() {
  thread_local std::shared_ptr<ThreadTrace> trace = [] {
    auto t = std::make_shared<ThreadTrace>();
    TraceRegistry& reg = trace_registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.traces.push_back(t);
    return t;
  }();
  return *trace;
}

// ---- JSON helpers ----------------------------------------------------

// Escaping and double formatting live in the shared util/json.hpp writer
// (deterministic %.17g formatting — see json::format_double).
using json::escape;
using json::format_double;

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(2 * depth), ' ');
}

// Merge `src` into `dst` (same path), recursively.
void merge_span(SpanNode& dst, const SpanNode& src) {
  dst.count += src.count;
  dst.seconds += src.seconds;
  for (const auto& [name, child] : src.children) {
    auto it = dst.children.find(name);
    if (it == dst.children.end())
      it = dst.children.emplace(name, std::make_unique<SpanNode>()).first;
    merge_span(*it->second, *child);
  }
}

bool span_nonzero(const SpanNode& n) {
  if (n.count != 0) return true;
  for (const auto& [name, child] : n.children)
    if (span_nonzero(*child)) return true;
  return false;
}

void span_to_json(std::string& out, const std::string& name,
                  const SpanNode& node, int depth, bool include_timings) {
  indent(out, depth);
  out += "{\"name\": \"";
  escape(out, name);
  out += "\", \"count\": " + std::to_string(node.count);
  if (include_timings) {
    out += ", \"seconds\": ";
    format_double(out, node.seconds);
  }
  bool any_child = false;
  for (const auto& [cname, child] : node.children)
    any_child = any_child || span_nonzero(*child);
  if (any_child) {
    out += ", \"children\": [\n";
    bool first = true;
    for (const auto& [cname, child] : node.children) {
      if (!span_nonzero(*child)) continue;
      if (!first) out += ",\n";
      first = false;
      span_to_json(out, cname, *child, depth + 1, include_timings);
    }
    out += "\n";
    indent(out, depth);
    out += "]}";
  } else {
    out += "}";
  }
}

void reset_span(SpanNode& n) {
  n.count = 0;
  n.seconds = 0.0;
  for (auto& [name, child] : n.children) reset_span(*child);
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) { return counters().get(name); }

Gauge& gauge(std::string_view name) { return gauges().get(name); }

TraceRegion::TraceRegion(const char* name) noexcept {
  if (!enabled()) return;
  ThreadTrace& trace = this_thread_trace();
  const std::lock_guard<std::mutex> lock(trace.mutex);
  SpanNode& parent =
      trace.stack.empty() ? trace.root : *trace.stack.back();
  auto it = parent.children.find(std::string_view(name));
  if (it == parent.children.end())
    it = parent.children.emplace(name, std::make_unique<SpanNode>()).first;
  trace.stack.push_back(it->second.get());
  node_ = it->second.get();
  t0_ = now_seconds();
}

TraceRegion::~TraceRegion() {
  if (!node_) return;
  const double dt = now_seconds() - t0_;
  ThreadTrace& trace = this_thread_trace();
  const std::lock_guard<std::mutex> lock(trace.mutex);
  auto* node = static_cast<SpanNode*>(node_);
  node->count += 1;
  node->seconds += dt;
  // Unwind to this region even if an exception skipped inner dtors'
  // bookkeeping order (inner dtors still run first in practice; this is
  // belt-and-braces against mismatched stacks).
  while (!trace.stack.empty()) {
    SpanNode* top = trace.stack.back();
    trace.stack.pop_back();
    if (top == node) break;
  }
}

std::string report_json(bool include_timings) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"";
  out += kSchema;
  out += "\",\n";

  out += "  \"counters\": {";
  {
    Registry<Counter>& reg = counters();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    bool first = true;
    for (const auto& [name, c] : reg.entries) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      escape(out, name);
      out += "\": " + std::to_string(c->value());
    }
    if (!first) out += "\n  ";
  }
  out += "},\n";

  out += "  \"gauges\": {";
  {
    Registry<Gauge>& reg = gauges();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    bool first = true;
    for (const auto& [name, g] : reg.entries) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      escape(out, name);
      out += "\": ";
      format_double(out, g->value());
    }
    if (!first) out += "\n  ";
  }
  out += "},\n";

  // Merge every thread's tree into one, then serialize sorted.
  SpanNode merged;
  {
    TraceRegistry& reg = trace_registry();
    const std::lock_guard<std::mutex> reg_lock(reg.mutex);
    for (const auto& trace : reg.traces) {
      const std::lock_guard<std::mutex> lock(trace->mutex);
      merge_span(merged, trace->root);
    }
  }
  out += "  \"trace\": [";
  bool first = true;
  for (const auto& [name, child] : merged.children) {
    if (!span_nonzero(*child)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    span_to_json(out, name, *child, 2, include_timings);
  }
  if (!first) out += "\n  ";
  out += "]\n}\n";
  return out;
}

void write_report(const std::string& path, bool include_timings) {
  std::ofstream os(path);
  os << report_json(include_timings);
}

void reset() {
  {
    Registry<Counter>& reg = counters();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, c] : reg.entries) c->reset();
  }
  {
    Registry<Gauge>& reg = gauges();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, g] : reg.entries) g->reset();
  }
  TraceRegistry& reg = trace_registry();
  const std::lock_guard<std::mutex> reg_lock(reg.mutex);
  for (const auto& trace : reg.traces) {
    const std::lock_guard<std::mutex> lock(trace->mutex);
    reset_span(trace->root);
  }
}

}  // namespace lqcd::telemetry
