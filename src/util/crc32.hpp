#pragma once
// CRC-32 (IEEE 802.3 polynomial) for gauge-configuration file integrity.

#include <cstddef>
#include <cstdint>

namespace lqcd {

/// Incremental CRC-32: pass the previous value to chain buffers
/// (start from 0).
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t prev = 0);

}  // namespace lqcd
