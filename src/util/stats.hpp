#pragma once
// Statistics helpers for observables: mean/error, autocorrelation,
// single-elimination jackknife (the standard error estimator for lattice
// correlator data).

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace lqcd {

/// Sample mean of `xs` (empty input -> 0).
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator; n<2 -> 0).
double variance(std::span<const double> xs);

/// Standard error of the mean: sqrt(var/n).
double standard_error(std::span<const double> xs);

/// Integrated autocorrelation time with a self-consistent window cutoff
/// (Madras–Sokal). Returns 0.5 for uncorrelated data of length < 2.
double integrated_autocorrelation(std::span<const double> xs);

/// Result of a jackknife estimate.
struct JackknifeResult {
  double value = 0.0;  ///< estimator on the full sample
  double error = 0.0;  ///< single-elimination jackknife error
};

/// Single-elimination jackknife of an arbitrary scalar estimator over a set
/// of per-configuration samples. `estimator` maps a sample vector to the
/// derived quantity (e.g. an effective mass from averaged correlators).
JackknifeResult jackknife(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& estimator);

/// Convenience: jackknife of the plain mean.
JackknifeResult jackknife_mean(std::span<const double> samples);

/// Per-timeslice jackknife over a set of correlator measurements:
/// `data[cfg][t]`. Returns mean and jackknife error per t.
struct CorrelatorEstimate {
  std::vector<double> value;
  std::vector<double> error;
};
CorrelatorEstimate jackknife_correlator(
    const std::vector<std::vector<double>>& data);

}  // namespace lqcd
