#pragma once
// Twisted-mass Wilson fermions (single-flavor convention):
//
//   M(mu_tm) = M_wilson + i mu_tm gamma5.
//
// The twist term protects the spectrum: because gamma5-hermiticity of the
// Wilson part makes the cross terms cancel exactly,
//
//   M^† M = M_w^† M_w + mu_tm^2,
//
// the normal operator is the *shifted* Wilson normal operator — the
// determinant is bounded below by mu_tm^2 (no exceptional
// configurations), and a whole twisted-mass ladder can be solved with one
// multishift CG on the untwisted normal system. Both facts are enforced
// by tests.
//
// Note M(mu) is NOT gamma5-hermitian: gamma5 M(mu) gamma5 = M(-mu)^†, so
// the generic g5-dagger helpers must not be used; apply_dagger() below is
// exact.

#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "solver/multishift_cg.hpp"

namespace lqcd {

template <typename T>
class TwistedMassOperator final : public LinearOperator<T> {
 public:
  TwistedMassOperator(const GaugeField<T>& u, double kappa, double mu_tm,
                      TimeBoundary bc = TimeBoundary::Antiperiodic)
      : wilson_(u, kappa, bc), mu_(static_cast<T>(mu_tm)) {
    LQCD_REQUIRE(mu_tm >= 0.0, "twisted mass must be non-negative");
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    wilson_.apply(out, in);
    add_twist(out, in, mu_);
  }

  /// out = M(mu)^† in = gamma5 M_w gamma5 in - i mu gamma5 in.
  void apply_dagger(std::span<WilsonSpinor<T>> out,
                    std::span<const WilsonSpinor<T>> in,
                    std::span<WilsonSpinor<T>> tmp) const {
    wilson_.apply_dagger(out, in, tmp);
    add_twist(out, in, -mu_);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return wilson_.vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return wilson_.flops_per_apply() +
           static_cast<double>(vector_size()) * 48.0;
  }

  [[nodiscard]] double mu() const { return static_cast<double>(mu_); }
  [[nodiscard]] const WilsonOperator<T>& wilson() const { return wilson_; }

 private:
  // out += i * mu * gamma5 * in.
  static void add_twist(std::span<WilsonSpinor<T>> out,
                        std::span<const WilsonSpinor<T>> in, T mu) {
    if (mu == T(0)) return;
    parallel_for(out.size(), [&](std::size_t i) {
      WilsonSpinor<T> g = apply_gamma5(in[i]);
      g *= Cplx<T>(T(0), mu);
      out[i] += g;
    });
  }

  WilsonOperator<T> wilson_;
  T mu_;
};

/// The exact normal operator of the twisted matrix:
/// M(mu)^† M(mu) = M_w^† M_w + mu^2 — a ShiftedOperator over the Wilson
/// normal system. Use with cg_solve, or with multishift_cg_solve to solve
/// several twists at once.
template <typename T>
class TwistedNormalOperator final : public LinearOperator<T> {
 public:
  explicit TwistedNormalOperator(const TwistedMassOperator<T>& m)
      : base_(m.wilson()), shifted_(base_, m.mu() * m.mu()) {}

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    shifted_.apply(out, in);
  }
  [[nodiscard]] std::int64_t vector_size() const override {
    return shifted_.vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return shifted_.flops_per_apply();
  }
  [[nodiscard]] bool hermitian_positive() const override { return true; }

 private:
  NormalOperator<T> base_;
  ShiftedOperator<T> shifted_;
};

}  // namespace lqcd
