#pragma once
// Multi-RHS ("block") Wilson hopping: one sweep over the gauge links
// applies the dslash to K spinor fields at once.
//
// The scalar dslash is memory-bound: every site apply streams 8 SU(3)
// links to feed 1320 flops. Solving the 12 spin-color columns of a
// propagator one at a time re-reads the entire gauge field once per
// column per iteration. The block kernels hoist the link loads out of
// the RHS loop — each link is read once per site sweep and applied to
// all K spinors while it is hot — so gauge-field traffic per solve
// drops by ~K while the per-column arithmetic (order and operands)
// stays exactly the scalar kernel's. Block results are therefore
// bit-identical to K independent scalar applies; test_block_solver
// asserts this.
//
// BlockSchurWilsonOperator mirrors SchurWilsonOperator (dirac/eo.hpp)
// column-for-column: Mhat = 1 - kappa^2 D_oe D_eo on the odd
// checkerboard, with block prepare/reconstruct and the gamma5-trick
// normal operator block_cg needs.

#include <span>
#include <vector>

#include "dirac/wilson.hpp"
#include "linalg/blas.hpp"
#include "linalg/gamma.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

template <typename T>
using SpinorSpan = std::span<WilsonSpinor<T>>;
template <typename T>
using CSpinorSpan = std::span<const WilsonSpinor<T>>;
using SpinorSpanD = SpinorSpan<double>;
using CSpinorSpanD = CSpinorSpan<double>;

/// Widest supported block: the 12 spin-color columns of one propagator.
inline constexpr int kMaxBlockRhs = 12;

namespace detail {

/// Block version of accum_hop: the two links of direction Mu are loaded
/// once and applied to every RHS. Per column the forward/backward order
/// and operands match accum_hop exactly.
template <int Mu, typename T>
inline void accum_hop_block(WilsonSpinor<T>* acc, const GaugeField<T>& u,
                            std::span<const CSpinorSpan<T>> in,
                            const LatticeGeometry& geo, std::int64_t cb) {
  const std::int64_t xp = geo.fwd(cb, Mu);
  const std::int64_t xm = geo.bwd(cb, Mu);
  const auto& uf = u(cb, Mu);
  const auto& ub = u(xm, Mu);
  for (std::size_t k = 0; k < in.size(); ++k) {
    {
      const HalfSpinor<T> h =
          project<Mu, -1>(in[k][static_cast<std::size_t>(xp)]);
      HalfSpinor<T> uh;
      uh.s[0] = mul(uf, h.s[0]);
      uh.s[1] = mul(uf, h.s[1]);
      accum_reconstruct<Mu, -1>(acc[k], uh);
    }
    {
      const HalfSpinor<T> h =
          project<Mu, +1>(in[k][static_cast<std::size_t>(xm)]);
      HalfSpinor<T> uh;
      uh.s[0] = adj_mul(ub, h.s[0]);
      uh.s[1] = adj_mul(ub, h.s[1]);
      accum_reconstruct<Mu, +1>(acc[k], uh);
    }
  }
}

}  // namespace detail

/// Half-checkerboard block hopping: fills the `target_parity` block of
/// every out[k] (volume-span) from the opposite-parity block of the
/// matching in[k]. One link sweep feeds all K spinors.
template <typename T>
void dslash_parity_block(std::span<const SpinorSpan<T>> out,
                         std::span<const CSpinorSpan<T>> in,
                         const GaugeField<T>& u, int target_parity) {
  const LatticeGeometry& geo = u.geometry();
  const std::size_t nrhs = in.size();
  LQCD_REQUIRE(nrhs >= 1 && nrhs <= static_cast<std::size_t>(kMaxBlockRhs),
               "dslash_parity_block rhs count");
  LQCD_REQUIRE(out.size() == nrhs, "dslash_parity_block span counts");
  for (std::size_t k = 0; k < nrhs; ++k)
    LQCD_REQUIRE(out[k].size() == static_cast<std::size_t>(geo.volume()) &&
                     in[k].size() == out[k].size(),
                 "dslash_parity_block span sizes");
  const std::int64_t hv = geo.half_volume();
  const std::int64_t base = target_parity == 0 ? 0 : hv;
  if (telemetry::enabled()) {
    static telemetry::Counter& c_applies =
        telemetry::counter("dslash.block_applies");
    static telemetry::Counter& c_sites =
        telemetry::counter("dslash.site_applies");
    static telemetry::Counter& c_gauge =
        telemetry::counter("dslash.gauge_site_loads");
    c_applies.add(1);
    c_sites.add(hv * static_cast<std::int64_t>(nrhs));
    c_gauge.add(hv);  // one link sweep, shared by all K spinors
  }
  parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
    const std::int64_t cb = base + static_cast<std::int64_t>(i);
    WilsonSpinor<T> acc[kMaxBlockRhs] = {};
    detail::accum_hop_block<0>(acc, u, in, geo, cb);
    detail::accum_hop_block<1>(acc, u, in, geo, cb);
    detail::accum_hop_block<2>(acc, u, in, geo, cb);
    detail::accum_hop_block<3>(acc, u, in, geo, cb);
    for (std::size_t k = 0; k < nrhs; ++k)
      out[k][static_cast<std::size_t>(cb)] = acc[k];
  });
}

/// Block even-odd Schur complement of the plain Wilson operator:
/// column k sees exactly SchurWilsonOperator's arithmetic, but every
/// internal dslash is one fused link sweep over all columns.
template <typename T>
class BlockSchurWilsonOperator {
 public:
  BlockSchurWilsonOperator(const GaugeField<T>& u, double kappa,
                           TimeBoundary bc = TimeBoundary::Antiperiodic,
                           int max_rhs = kMaxBlockRhs)
      : links_(make_fermion_links(u, bc)),
        kappa_(static_cast<T>(kappa)),
        max_rhs_(max_rhs),
        vol_(static_cast<std::size_t>(u.geometry().volume())),
        f1_(vol_ * static_cast<std::size_t>(max_rhs)),
        f2_(vol_ * static_cast<std::size_t>(max_rhs)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    LQCD_REQUIRE(max_rhs >= 1 && max_rhs <= kMaxBlockRhs,
                 "block width out of [1, 12]");
  }

  [[nodiscard]] const LatticeGeometry& geometry() const {
    return links_.geometry();
  }
  [[nodiscard]] int max_rhs() const { return max_rhs_; }
  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }
  [[nodiscard]] std::int64_t vector_size() const {
    return links_.geometry().half_volume();
  }
  /// Per-column flop cost (identical to the scalar Schur operator).
  [[nodiscard]] double flops_per_apply() const {
    return static_cast<double>(links_.geometry().volume()) *
               kDslashFlopsPerSite +
           static_cast<double>(vector_size()) * 48.0;
  }

  /// out[k] = Mhat in[k] on odd half-volume spans.
  void apply(std::span<const SpinorSpan<T>> out,
             std::span<const CSpinorSpan<T>> in) const {
    const std::size_t nrhs = check_block(out, in);
    if (telemetry::enabled()) {
      static telemetry::Counter& c =
          telemetry::counter("dslash.block_schur_applies");
      c.add(1);
    }
    const std::int64_t hv = links_.geometry().half_volume();
    auto f1 = views(f1_, nrhs, vol_);
    auto f2 = views(f2_, nrhs, vol_);
    // Odd block of f1[k] <- in[k].
    for (std::size_t k = 0; k < nrhs; ++k)
      blas::copy(f1[k].subspan(static_cast<std::size_t>(hv)), in[k]);
    // Even block of f2 <- D_eo in; odd block of f1 <- D_oe D_eo in.
    dslash_parity_block<T>(f2, cviews(f1), links_, 0);
    dslash_parity_block<T>(f1, cviews(f2), links_, 1);
    const T k2 = kappa_ * kappa_;
    for (std::size_t k = 0; k < nrhs; ++k) {
      auto f1_odd = f1[k].subspan(static_cast<std::size_t>(hv));
      const auto ink = in[k];
      const auto outk = out[k];
      parallel_for(outk.size(), [&](std::size_t i) {
        WilsonSpinor<T> h = f1_odd[i];
        h *= k2;
        WilsonSpinor<T> r = ink[i];
        r -= h;
        outk[i] = r;
      });
    }
  }

  /// out[k] = Mhat^† in[k] via the gamma5 trick (Mhat is g5-hermitian).
  void apply_dagger(std::span<const SpinorSpan<T>> out,
                    std::span<const CSpinorSpan<T>> in) const {
    const std::size_t nrhs = check_block(out, in);
    const auto hv = static_cast<std::size_t>(vector_size());
    ensure(tmp_dag_, hv * nrhs);
    auto tmp = views(tmp_dag_, nrhs, hv);
    for (std::size_t k = 0; k < nrhs; ++k) {
      const auto ink = in[k];
      const auto tk = tmp[k];
      parallel_for(ink.size(),
                   [&](std::size_t s) { tk[s] = apply_gamma5(ink[s]); });
    }
    apply(out, cviews(tmp));
    for (std::size_t k = 0; k < nrhs; ++k) {
      const auto outk = out[k];
      parallel_for(outk.size(),
                   [&](std::size_t s) { outk[s] = apply_gamma5(outk[s]); });
    }
  }

  /// out[k] = Mhat^† Mhat in[k]: the hermitian positive-definite block
  /// operator block_cg solves.
  void apply_normal(std::span<const SpinorSpan<T>> out,
                    std::span<const CSpinorSpan<T>> in) const {
    const std::size_t nrhs = check_block(out, in);
    const auto hv = static_cast<std::size_t>(vector_size());
    ensure(tmp_nrm_, hv * nrhs);
    auto t = views(tmp_nrm_, nrhs, hv);
    apply(t, in);
    apply_dagger(out, cviews(t));
  }

  /// bhat[k] = b_odd[k] + kappa D_oe b_even[k] (b spans the full volume).
  void prepare_rhs(std::span<const SpinorSpan<T>> bhat,
                   std::span<const CSpinorSpan<T>> b_full) const {
    const std::size_t nrhs = bhat.size();
    LQCD_REQUIRE(b_full.size() == nrhs && nrhs >= 1 &&
                     nrhs <= static_cast<std::size_t>(max_rhs_),
                 "prepare_rhs block counts");
    const std::int64_t hv = links_.geometry().half_volume();
    auto f1 = views(f1_, nrhs, vol_);
    dslash_parity_block<T>(f1, b_full, links_, 1);
    const T k = kappa_;
    for (std::size_t j = 0; j < nrhs; ++j) {
      auto f1_odd = f1[j].subspan(static_cast<std::size_t>(hv));
      auto b_odd = b_full[j].subspan(static_cast<std::size_t>(hv));
      const auto bj = bhat[j];
      parallel_for(bj.size(), [&](std::size_t i) {
        WilsonSpinor<T> h = f1_odd[i];
        h *= k;
        h += b_odd[i];
        bj[i] = h;
      });
    }
  }

  /// x_full[k]: odd block <- x_odd[k]; even block <- b_e + kappa D_eo x_o.
  void reconstruct(std::span<const SpinorSpan<T>> x_full,
                   std::span<const CSpinorSpan<T>> x_odd,
                   std::span<const CSpinorSpan<T>> b_full) const {
    const std::size_t nrhs = x_full.size();
    LQCD_REQUIRE(x_odd.size() == nrhs && b_full.size() == nrhs && nrhs >= 1 &&
                     nrhs <= static_cast<std::size_t>(max_rhs_),
                 "reconstruct block counts");
    const std::int64_t hv = links_.geometry().half_volume();
    for (std::size_t k = 0; k < nrhs; ++k)
      blas::copy(x_full[k].subspan(static_cast<std::size_t>(hv)), x_odd[k]);
    auto f1 = views(f1_, nrhs, vol_);
    std::vector<CSpinorSpan<T>> xc(nrhs);
    for (std::size_t k = 0; k < nrhs; ++k)
      xc[k] = CSpinorSpan<T>(x_full[k].data(), x_full[k].size());
    dslash_parity_block<T>(f1, xc, links_, 0);
    const T kap = kappa_;
    for (std::size_t k = 0; k < nrhs; ++k) {
      const auto f1k = f1[k];
      const auto bk = b_full[k];
      const auto xk = x_full[k];
      parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
        WilsonSpinor<T> h = f1k[i];
        h *= kap;
        h += bk[i];
        xk[i] = h;
      });
    }
  }

 private:
  std::size_t check_block(std::span<const SpinorSpan<T>> out,
                          std::span<const CSpinorSpan<T>> in) const {
    const std::size_t nrhs = in.size();
    LQCD_REQUIRE(out.size() == nrhs, "block span counts");
    LQCD_REQUIRE(nrhs >= 1 && nrhs <= static_cast<std::size_t>(max_rhs_),
                 "block width exceeds max_rhs");
    const auto hv = static_cast<std::size_t>(vector_size());
    for (std::size_t k = 0; k < nrhs; ++k)
      LQCD_REQUIRE(out[k].size() == hv && in[k].size() == hv,
                   "block spans must cover the odd half volume");
    return nrhs;
  }

  static void ensure(aligned_vector<WilsonSpinor<T>>& store,
                     std::size_t need) {
    if (store.size() < need) store.resize(need);
  }
  /// Carve per-RHS views of `stride` sites out of contiguous scratch.
  static std::vector<SpinorSpan<T>> views(
      aligned_vector<WilsonSpinor<T>>& store, std::size_t nrhs,
      std::size_t stride) {
    std::vector<SpinorSpan<T>> s(nrhs);
    for (std::size_t k = 0; k < nrhs; ++k)
      s[k] = SpinorSpan<T>(store.data() + k * stride, stride);
    return s;
  }
  static std::vector<CSpinorSpan<T>> cviews(
      const std::vector<SpinorSpan<T>>& v) {
    std::vector<CSpinorSpan<T>> c(v.size());
    for (std::size_t k = 0; k < v.size(); ++k)
      c[k] = CSpinorSpan<T>(v[k].data(), v[k].size());
    return c;
  }

  GaugeField<T> links_;
  T kappa_;
  int max_rhs_;
  std::size_t vol_;
  mutable aligned_vector<WilsonSpinor<T>> f1_;
  mutable aligned_vector<WilsonSpinor<T>> f2_;
  mutable aligned_vector<WilsonSpinor<T>> tmp_dag_;
  mutable aligned_vector<WilsonSpinor<T>> tmp_nrm_;
};

using BlockSchurWilsonOperatorD = BlockSchurWilsonOperator<double>;

}  // namespace lqcd
