#pragma once
// Wilson fermion matrix.
//
// Hopping term (the "dslash"):
//
//   (D psi)(x) = sum_mu  (1 - gamma_mu) U_mu(x)       psi(x+mu)
//              +         (1 + gamma_mu) U_mu^†(x-mu)  psi(x-mu)
//
// and the Wilson operator in the hopping-parameter convention
//
//   M = 1 - kappa * D,     kappa = 1 / (2 m0 + 8),
//
// which is gamma5-hermitian: gamma5 M gamma5 = M^†. Fermion fields use
// antiperiodic time boundary conditions, folded into a private copy of the
// gauge links so the site kernels stay branch-free.
//
// The spin-projection trick (project to 2 spin components, one SU(3)
// multiply per half-spinor, reconstruct) gives the canonical 1320
// flops/site.

#include <memory>

#include "dirac/operator.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "linalg/gamma.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

enum class TimeBoundary { Periodic, Antiperiodic };

/// Copy a gauge field, folding the fermion time boundary condition into
/// the links at the last timeslice (multiplies U_t(x, T-1) by -1 for
/// antiperiodic fermions).
template <typename T>
GaugeField<T> make_fermion_links(const GaugeField<T>& u, TimeBoundary bc) {
  GaugeField<T> v(u.geometry());
  const LatticeGeometry& geo = u.geometry();
  const std::int64_t vol = geo.volume();
  const T sign = (bc == TimeBoundary::Antiperiodic) ? T(-1) : T(1);
  for (std::int64_t s = 0; s < vol; ++s) {
    v.site(s) = u.site(s);
    if (geo.fwd_wraps(s, 3)) v(s, 3) *= sign;
  }
  return v;
}

namespace detail {

/// Accumulate the mu-direction forward+backward hopping contribution.
/// Generic over the gauge container and neighbor-table provider so the
/// same kernel instantiates over (GaugeField<T>, LatticeGeometry) for the
/// scalar path and (VectorGaugeField<T, W>, VectorLattice) for the
/// lane-packed path — u(site, mu) and geo.fwd/bwd are the only contracts.
template <int Mu, typename T, typename GaugeT, typename GeoT>
inline void accum_hop(WilsonSpinor<T>& acc, const GaugeT& u,
                      std::span<const WilsonSpinor<T>> in,
                      const GeoT& geo, std::int64_t cb) {
  // Forward: (1 - gamma_mu) U_mu(x) psi(x+mu)
  {
    const std::int64_t xp = geo.fwd(cb, Mu);
    const HalfSpinor<T> h =
        project<Mu, -1>(in[static_cast<std::size_t>(xp)]);
    HalfSpinor<T> uh;
    uh.s[0] = mul(u(cb, Mu), h.s[0]);
    uh.s[1] = mul(u(cb, Mu), h.s[1]);
    accum_reconstruct<Mu, -1>(acc, uh);
  }
  // Backward: (1 + gamma_mu) U_mu^†(x-mu) psi(x-mu)
  {
    const std::int64_t xm = geo.bwd(cb, Mu);
    const HalfSpinor<T> h =
        project<Mu, +1>(in[static_cast<std::size_t>(xm)]);
    HalfSpinor<T> uh;
    uh.s[0] = adj_mul(u(xm, Mu), h.s[0]);
    uh.s[1] = adj_mul(u(xm, Mu), h.s[1]);
    accum_reconstruct<Mu, +1>(acc, uh);
  }
}

/// Full hopping sum at one site.
template <typename T, typename GaugeT, typename GeoT>
inline WilsonSpinor<T> hop_site(const GaugeT& u,
                                std::span<const WilsonSpinor<T>> in,
                                const GeoT& geo,
                                std::int64_t cb) {
  WilsonSpinor<T> acc{};
  accum_hop<0>(acc, u, in, geo, cb);
  accum_hop<1>(acc, u, in, geo, cb);
  accum_hop<2>(acc, u, in, geo, cb);
  accum_hop<3>(acc, u, in, geo, cb);
  return acc;
}

}  // namespace detail

/// out(x) = (D in)(x) for all sites. `in` spans the full volume.
template <typename T>
void dslash_full(std::span<WilsonSpinor<T>> out,
                 std::span<const WilsonSpinor<T>> in, const GaugeField<T>& u) {
  const LatticeGeometry& geo = u.geometry();
  LQCD_REQUIRE(out.size() == static_cast<std::size_t>(geo.volume()) &&
                   in.size() == out.size(),
               "dslash_full span sizes");
  if (telemetry::enabled()) {
    static telemetry::Counter& c_applies =
        telemetry::counter("dslash.applies");
    static telemetry::Counter& c_sites =
        telemetry::counter("dslash.site_applies");
    static telemetry::Counter& c_gauge =
        telemetry::counter("dslash.gauge_site_loads");
    c_applies.add(1);
    c_sites.add(geo.volume());
    c_gauge.add(geo.volume());
  }
  parallel_for(out.size(), [&](std::size_t s) {
    out[s] = detail::hop_site(u, in, geo, static_cast<std::int64_t>(s));
  });
}

/// Half-checkerboard hopping: fills the `target_parity` block of `out`
/// (volume-span) from the opposite-parity block of `in` (volume-span).
/// This is D_eo (target even) / D_oe (target odd).
template <typename T>
void dslash_parity(std::span<WilsonSpinor<T>> out,
                   std::span<const WilsonSpinor<T>> in,
                   const GaugeField<T>& u, int target_parity) {
  const LatticeGeometry& geo = u.geometry();
  LQCD_REQUIRE(out.size() == static_cast<std::size_t>(geo.volume()) &&
                   in.size() == out.size(),
               "dslash_parity span sizes");
  const std::int64_t hv = geo.half_volume();
  const std::int64_t base = target_parity == 0 ? 0 : hv;
  if (telemetry::enabled()) {
    static telemetry::Counter& c_applies =
        telemetry::counter("dslash.parity_applies");
    static telemetry::Counter& c_sites =
        telemetry::counter("dslash.site_applies");
    static telemetry::Counter& c_gauge =
        telemetry::counter("dslash.gauge_site_loads");
    c_applies.add(1);
    c_sites.add(hv);
    c_gauge.add(hv);
  }
  parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
    const std::int64_t cb = base + static_cast<std::int64_t>(i);
    out[static_cast<std::size_t>(cb)] = detail::hop_site(u, in, geo, cb);
  });
}

/// The full-lattice Wilson operator M = 1 - kappa D.
template <typename T>
class WilsonOperator final : public LinearOperator<T> {
 public:
  WilsonOperator(const GaugeField<T>& u, double kappa,
                 TimeBoundary bc = TimeBoundary::Antiperiodic)
      : links_(make_fermion_links(u, bc)),
        kappa_(static_cast<T>(kappa)),
        bc_(bc) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    dslash_full(out, in, links_);
    const T k = kappa_;
    parallel_for(out.size(), [&](std::size_t s) {
      WilsonSpinor<T> r = in[s];
      WilsonSpinor<T> h = out[s];
      h *= k;
      r -= h;
      out[s] = r;
    });
  }

  /// out = M^† in, via the gamma5 trick: M^† = g5 M g5.
  void apply_dagger(std::span<WilsonSpinor<T>> out,
                    std::span<const WilsonSpinor<T>> in,
                    std::span<WilsonSpinor<T>> tmp) const {
    parallel_for(in.size(),
                 [&](std::size_t s) { tmp[s] = apply_gamma5(in[s]); });
    apply(out, std::span<const WilsonSpinor<T>>(tmp.data(), tmp.size()));
    parallel_for(out.size(),
                 [&](std::size_t s) { out[s] = apply_gamma5(out[s]); });
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return links_.geometry().volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    // dslash + axpy-like combination (24 mul + 24 add per site).
    return static_cast<double>(vector_size()) * (kDslashFlopsPerSite + 48.0);
  }

  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }
  [[nodiscard]] TimeBoundary boundary() const { return bc_; }
  [[nodiscard]] const GaugeField<T>& fermion_links() const { return links_; }
  [[nodiscard]] const LatticeGeometry& geometry() const {
    return links_.geometry();
  }

 private:
  GaugeField<T> links_;
  T kappa_;
  TimeBoundary bc_;
};

}  // namespace lqcd
