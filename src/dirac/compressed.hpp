#pragma once
// "Half precision" (compressed 16-bit) fermion matrix — the third rung of
// the QUDA-style precision ladder (double / single / half).
//
// Storage model: gauge links as int16 fixed point (entries of an SU(3)
// matrix are bounded by 1), spinors as int16 with one float scale per
// site (block float). HalfWilsonOperator materializes exactly the values
// a half-storage kernel would compute with — links are
// quantize/dequantized once at construction, the input spinor on every
// apply — and then runs the validated float kernels. This reproduces the
// *precision* behaviour of half storage (iteration-count overhead in the
// inner solver of a mixed-precision chain); the *bandwidth* effect is
// modeled separately by PerfModelOptions::precision_bytes = 2.

#include <cstdint>
#include <vector>

#include "dirac/operator.hpp"
#include "dirac/wilson.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

namespace detail16 {

inline constexpr float kQScale = 32767.0f;

inline std::int16_t quantize_one(float x, float inv_scale) {
  float v = x * inv_scale * kQScale;
  if (v > kQScale) v = kQScale;
  if (v < -kQScale) v = -kQScale;
  return static_cast<std::int16_t>(v >= 0.0f ? v + 0.5f : v - 0.5f);
}

inline float dequantize_one(std::int16_t q, float scale) {
  return static_cast<float>(q) * (scale / kQScale);
}

}  // namespace detail16

/// Round-trip a color matrix through int16 fixed point (scale 1).
inline ColorMatrix<float> quantize_link(const ColorMatrix<float>& u) {
  ColorMatrix<float> out;
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c) {
      out.m[r][c] = Cplx<float>(
          detail16::dequantize_one(
              detail16::quantize_one(u.m[r][c].re, 1.0f), 1.0f),
          detail16::dequantize_one(
              detail16::quantize_one(u.m[r][c].im, 1.0f), 1.0f));
    }
  return out;
}

/// Round-trip a spinor through int16 with a per-site block-float scale
/// (the max |component|). Returns the reconstruction.
inline WilsonSpinor<float> quantize_spinor(const WilsonSpinor<float>& psi) {
  float amax = 0.0f;
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c) {
      const float re = psi.s[s].c[c].re < 0 ? -psi.s[s].c[c].re
                                            : psi.s[s].c[c].re;
      const float im = psi.s[s].c[c].im < 0 ? -psi.s[s].c[c].im
                                            : psi.s[s].c[c].im;
      if (re > amax) amax = re;
      if (im > amax) amax = im;
    }
  if (amax == 0.0f) return WilsonSpinor<float>{};
  const float inv = 1.0f / amax;
  WilsonSpinor<float> out;
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c)
      out.s[s].c[c] = Cplx<float>(
          detail16::dequantize_one(
              detail16::quantize_one(psi.s[s].c[c].re, inv), amax),
          detail16::dequantize_one(
              detail16::quantize_one(psi.s[s].c[c].im, inv), amax));
  return out;
}

/// Wilson operator with half-storage semantics: quantized links (once) and
/// quantized input spinors (every apply). gamma5-hermitian like its parent.
class HalfWilsonOperator final : public LinearOperator<float> {
 public:
  HalfWilsonOperator(const GaugeField<float>& u, double kappa,
                     TimeBoundary bc = TimeBoundary::Antiperiodic)
      : links_(make_fermion_links(u, bc)),
        kappa_(static_cast<float>(kappa)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    // Quantize the (boundary-folded) links in place. The BC sign flips
    // some entries to -1 exactly, which int16 fixed point represents
    // exactly, so folding before quantization is safe.
    const std::int64_t vol = links_.geometry().volume();
    for (std::int64_t s = 0; s < vol; ++s)
      for (int mu = 0; mu < Nd; ++mu)
        links_(s, mu) = quantize_link(links_(s, mu));
    buf_.resize(static_cast<std::size_t>(vol));
  }

  void apply(std::span<WilsonSpinor<float>> out,
             std::span<const WilsonSpinor<float>> in) const override {
    // Input round-trips through half storage.
    parallel_for(in.size(),
                 [&](std::size_t i) { buf_[i] = quantize_spinor(in[i]); });
    dslash_full(out,
                std::span<const WilsonSpinor<float>>(buf_.data(),
                                                     buf_.size()),
                links_);
    const float k = kappa_;
    parallel_for(out.size(), [&](std::size_t i) {
      WilsonSpinor<float> h = out[i];
      h *= k;
      WilsonSpinor<float> r = buf_[i];
      r -= h;
      out[i] = r;
    });
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return links_.geometry().volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return static_cast<double>(vector_size()) * (kDslashFlopsPerSite + 48.0);
  }

 private:
  GaugeField<float> links_;
  float kappa_;
  mutable aligned_vector<WilsonSpinor<float>> buf_;
};

}  // namespace lqcd
