#pragma once
// "Half precision" (compressed 16-bit) fermion matrix — the third rung of
// the QUDA-style precision ladder (double / single / half).
//
// Storage model: gauge links as int16 fixed point (entries of an SU(3)
// matrix are bounded by 1), spinors as int16 with one float scale per
// site (block float). HalfWilsonOperator materializes exactly the values
// a half-storage kernel would compute with — links are
// quantize/dequantized once at construction, the input spinor on every
// apply — and then runs the validated float kernels. This reproduces the
// *precision* behaviour of half storage (iteration-count overhead in the
// inner solver of a mixed-precision chain); the *bandwidth* effect is
// modeled separately by PerfModelOptions::precision_bytes = 2.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "dirac/operator.hpp"
#include "dirac/wilson.hpp"
#include "linalg/lanes.hpp"
#include "linalg/simd.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {

namespace detail16 {

inline constexpr float kQScale = 32767.0f;

// The element-wise quantizers are defined on SCALAR components only: the
// clamp/round and the per-site amax scan below are order/compare
// operations that have no lane-wise meaning. Instantiating them over a
// lane-packed Simd type used to compile into nonsense (a single scale
// shared across unrelated sites); the static_asserts reject that at
// compile time and the Simd overloads further down do the right thing
// lane by lane.

template <typename T>
inline std::int16_t quantize_one(T x, T inv_scale) {
  static_assert(!is_simd_v<T>,
                "quantize_one is per-component scalar; use the lane-aware "
                "quantize_* overloads for Simd types");
  static_assert(std::is_floating_point_v<T>,
                "quantize_one requires a floating-point component");
  T v = x * inv_scale * T(kQScale);
  // Branchless clamp + round-half-away-from-zero (min/max/copysign all
  // compile to single instructions; the wire codec quantizes every face
  // component through here, so this is comm-path hot).
  v = std::min(std::max(v, -T(kQScale)), T(kQScale));
  return static_cast<std::int16_t>(v + std::copysign(T(0.5), v));
}

template <typename T>
inline T dequantize_one(std::int16_t q, T scale) {
  static_assert(!is_simd_v<T> && std::is_floating_point_v<T>,
                "dequantize_one is per-component scalar");
  return static_cast<T>(q) * (scale / T(kQScale));
}

}  // namespace detail16

/// Round-trip a color matrix through int16 fixed point (scale 1).
template <typename T>
inline ColorMatrix<T> quantize_link(const ColorMatrix<T>& u) {
  static_assert(!is_simd_v<T> && std::is_floating_point_v<T>,
                "quantize_link(scalar): use the Simd overload for "
                "lane-packed links");
  ColorMatrix<T> out;
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c) {
      out.m[r][c] = Cplx<T>(
          detail16::dequantize_one(
              detail16::quantize_one(u.m[r][c].re, T(1)), T(1)),
          detail16::dequantize_one(
              detail16::quantize_one(u.m[r][c].im, T(1)), T(1)));
    }
  return out;
}

/// Round-trip a spinor through int16 with a per-site block-float scale
/// (the max |component|). Returns the reconstruction.
template <typename T>
inline WilsonSpinor<T> quantize_spinor(const WilsonSpinor<T>& psi) {
  static_assert(!is_simd_v<T> && std::is_floating_point_v<T>,
                "quantize_spinor(scalar): use the Simd overload for "
                "lane-packed spinors");
  T amax = T(0);
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c) {
      const T re = psi.s[s].c[c].re < T(0) ? -psi.s[s].c[c].re
                                           : psi.s[s].c[c].re;
      const T im = psi.s[s].c[c].im < T(0) ? -psi.s[s].c[c].im
                                           : psi.s[s].c[c].im;
      if (re > amax) amax = re;
      if (im > amax) amax = im;
    }
  // Subnormal amax flushes to the zero spinor: 1/amax can overflow to
  // inf (making 0 * inf = NaN on zero components) and the dequantize
  // step scale/2^15 underflows anyway. Values below the normal range
  // are zero to every consumer of half storage.
  if (!(amax >= std::numeric_limits<T>::min())) return WilsonSpinor<T>{};
  const T inv = T(1) / amax;
  WilsonSpinor<T> out;
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c)
      out.s[s].c[c] = Cplx<T>(
          detail16::dequantize_one(
              detail16::quantize_one(psi.s[s].c[c].re, inv), amax),
          detail16::dequantize_one(
              detail16::quantize_one(psi.s[s].c[c].im, inv), amax));
  return out;
}

/// Lane-aware link quantization: each lane is an independent site, so the
/// round-trip applies per lane (bit-identical to quantizing the scalar
/// link of every packed site).
template <typename T, int W>
inline ColorMatrix<Simd<T, W>> quantize_link(
    const ColorMatrix<Simd<T, W>>& u) {
  ColorMatrix<Simd<T, W>> out;
  for (int l = 0; l < W; ++l)
    insert_lane(out, l, quantize_link(extract_lane(u, l)));
  return out;
}

/// Lane-aware spinor quantization: the block-float amax scan runs per
/// lane — one scale per scalar SITE, never one scale shared across the W
/// unrelated sites of a vector site.
template <typename T, int W>
inline WilsonSpinor<Simd<T, W>> quantize_spinor(
    const WilsonSpinor<Simd<T, W>>& psi) {
  WilsonSpinor<Simd<T, W>> out;
  for (int l = 0; l < W; ++l)
    insert_lane(out, l, quantize_spinor(extract_lane(psi, l)));
  return out;
}

/// Wilson operator with half-storage semantics: quantized links (once) and
/// quantized input spinors (every apply). gamma5-hermitian like its parent.
class HalfWilsonOperator final : public LinearOperator<float> {
 public:
  HalfWilsonOperator(const GaugeField<float>& u, double kappa,
                     TimeBoundary bc = TimeBoundary::Antiperiodic)
      : links_(make_fermion_links(u, bc)),
        kappa_(static_cast<float>(kappa)) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
    // Quantize the (boundary-folded) links in place. The BC sign flips
    // some entries to -1 exactly, which int16 fixed point represents
    // exactly, so folding before quantization is safe.
    const std::int64_t vol = links_.geometry().volume();
    for (std::int64_t s = 0; s < vol; ++s)
      for (int mu = 0; mu < Nd; ++mu)
        links_(s, mu) = quantize_link(links_(s, mu));
  }

  void apply(std::span<WilsonSpinor<float>> out,
             std::span<const WilsonSpinor<float>> in) const override {
    // The quantized input lives in a per-call buffer: apply() must stay
    // reentrant (a shared mutable member raced when two callers applied
    // concurrently through the thread pool). The copy also makes full
    // aliasing (out.data() == in.data()) safe — every read of `in`
    // happens before dslash_full writes `out`.
    aligned_vector<WilsonSpinor<float>> buf(in.size());
    parallel_for(in.size(),
                 [&](std::size_t i) { buf[i] = quantize_spinor(in[i]); });
    dslash_full(out,
                std::span<const WilsonSpinor<float>>(buf.data(),
                                                     buf.size()),
                links_);
    const float k = kappa_;
    parallel_for(out.size(), [&](std::size_t i) {
      WilsonSpinor<float> h = out[i];
      h *= k;
      WilsonSpinor<float> r = buf[i];
      r -= h;
      out[i] = r;
    });
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return links_.geometry().volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return static_cast<double>(vector_size()) * (kDslashFlopsPerSite + 48.0);
  }

 private:
  GaugeField<float> links_;
  float kappa_;
};

}  // namespace lqcd
