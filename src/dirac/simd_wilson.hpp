#pragma once
// Lane-vectorized Wilson dslash over the VectorLattice SoA packing.
//
// The scalar site kernels in dirac/wilson.hpp are templated on their
// scalar type and on the (gauge container, neighbor table) pair, so the
// vectorized path is the SAME kernel instantiated over Simd<T, W> with a
// lane-packed gauge field and the VectorLattice neighbor tables: one
// "site" application advances W lattice sites. Because every lane runs
// the identical instruction sequence the scalar path runs per site, the
// results are bit-identical to the scalar dslash for every W — test_simd
// asserts exact equality, and the operators here stay behind the
// LinearOperator<T> interface with an automatic scalar fallback when the
// geometry cannot be lane-decomposed.
//
// Pack/unpack (the AoS <-> SoA transpose) happens at the operator
// boundary, and ghost lanes are refreshed before each stencil sweep; the
// comm layer never sees packed data.

#include <memory>
#include <optional>

#include "dirac/eo.hpp"
#include "dirac/operator.hpp"
#include "dirac/wilson.hpp"
#include "lattice/vector_lattice.hpp"
#include "linalg/blas.hpp"
#include "linalg/simd.hpp"
#include "util/aligned.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

/// Gauge links packed W sites per lane over a VectorLattice, including
/// the wrap-boundary ghost slots (links are static, so ghosts are
/// materialized once at construction, not per sweep).
template <typename T, int W>
class VectorGaugeField {
 public:
  VectorGaugeField(const VectorLattice& vl, const GaugeField<T>& u)
      : vl_(&vl),
        links_(static_cast<std::size_t>(vl.total_sites())) {
    LQCD_REQUIRE(u.geometry() == vl.scalar_geometry(),
                 "VectorGaugeField geometry mismatch");
    parallel_for(static_cast<std::size_t>(vl.inner_sites()),
                 [&](std::size_t vo) {
                   for (int l = 0; l < W; ++l) {
                     const std::int64_t s =
                         vl.site_of(static_cast<std::int64_t>(vo), l);
                     for (int mu = 0; mu < Nd; ++mu)
                       insert_lane(links_[vo][static_cast<std::size_t>(mu)],
                                   l, u(s, mu));
                   }
                 });
    vl.fill_ghosts(std::span<LinkSite<Simd<T, W>>>(links_.data(),
                                                   links_.size()));
  }

  [[nodiscard]] const VectorLattice& lattice() const noexcept { return *vl_; }

  const ColorMatrix<Simd<T, W>>& operator()(std::int64_t vs,
                                            int mu) const noexcept {
    return links_[static_cast<std::size_t>(vs)][static_cast<std::size_t>(mu)];
  }

 private:
  const VectorLattice* vl_;
  aligned_vector<LinkSite<Simd<T, W>>> links_;
};

/// out(vs) = (D in)(vs) for all inner vector sites. `in` spans the
/// extended range with ghosts already filled; `out` needs >= inner_sites.
template <typename T, int W>
void simd_dslash_full(std::span<WilsonSpinor<Simd<T, W>>> out,
                      std::span<const WilsonSpinor<Simd<T, W>>> in,
                      const VectorGaugeField<T, W>& u) {
  const VectorLattice& vl = u.lattice();
  const std::int64_t n = vl.inner_sites();
  LQCD_REQUIRE(out.size() >= static_cast<std::size_t>(n) &&
                   in.size() == static_cast<std::size_t>(vl.total_sites()),
               "simd_dslash_full span sizes");
  if (telemetry::enabled()) {
    static telemetry::Counter& c_applies =
        telemetry::counter("dslash.applies");
    static telemetry::Counter& c_sites =
        telemetry::counter("dslash.site_applies");
    static telemetry::Counter& c_gauge =
        telemetry::counter("dslash.gauge_site_loads");
    c_applies.add(1);
    c_sites.add(n * W);
    // One gauge-site load feeds W lattice sites: the SoA layout's
    // bandwidth amortization, visible as loads / site_applies = 1/W.
    c_gauge.add(n);
  }
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t vs) {
    out[vs] = detail::hop_site(u, in, vl, static_cast<std::int64_t>(vs));
  });
}

/// Parity-restricted hopping over vector sites: fills the target-parity
/// inner block of `out` from the opposite-parity block of `in` (whose
/// opposite-parity ghosts must be current — see VectorLattice::fill_ghosts).
template <typename T, int W>
void simd_dslash_parity(std::span<WilsonSpinor<Simd<T, W>>> out,
                        std::span<const WilsonSpinor<Simd<T, W>>> in,
                        const VectorGaugeField<T, W>& u, int target_parity) {
  const VectorLattice& vl = u.lattice();
  const std::int64_t hv = vl.outer_geometry().half_volume();
  LQCD_REQUIRE(out.size() >= static_cast<std::size_t>(vl.inner_sites()) &&
                   in.size() == static_cast<std::size_t>(vl.total_sites()),
               "simd_dslash_parity span sizes");
  const std::int64_t base = target_parity == 0 ? 0 : hv;
  if (telemetry::enabled()) {
    static telemetry::Counter& c_applies =
        telemetry::counter("dslash.parity_applies");
    static telemetry::Counter& c_sites =
        telemetry::counter("dslash.site_applies");
    static telemetry::Counter& c_gauge =
        telemetry::counter("dslash.gauge_site_loads");
    c_applies.add(1);
    c_sites.add(hv * W);
    c_gauge.add(hv);
  }
  parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
    const std::int64_t vs = base + static_cast<std::int64_t>(i);
    out[static_cast<std::size_t>(vs)] = detail::hop_site(u, in, vl, vs);
  });
}

/// M = 1 - kappa D over the lane-packed layout. Presents the same
/// scalar-span LinearOperator<T> interface as WilsonOperator (pack and
/// unpack inside apply); falls back to the scalar operator when the
/// geometry does not decompose into W lanes.
template <typename T, int W>
class SimdWilsonOperator final : public LinearOperator<T> {
 public:
  SimdWilsonOperator(const GaugeField<T>& u, double kappa,
                     TimeBoundary bc = TimeBoundary::Antiperiodic)
      : ref_(u, kappa, bc) {
    std::optional<VectorLattice> vl = VectorLattice::make(u.geometry(), W);
    if (!vl) return;
    vl_ = std::make_unique<VectorLattice>(std::move(*vl));
    vgauge_ = std::make_unique<VectorGaugeField<T, W>>(*vl_,
                                                       ref_.fermion_links());
    const std::size_t n = static_cast<std::size_t>(vl_->total_sites());
    va_.resize(n);
    vb_.resize(n);
  }

  /// False when this geometry fell back to the scalar reference path.
  [[nodiscard]] bool simd_active() const noexcept { return vl_ != nullptr; }
  [[nodiscard]] static constexpr int width() noexcept { return W; }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    if (!vl_) {
      ref_.apply(out, in);
      return;
    }
    std::span<WilsonSpinor<Simd<T, W>>> va(va_.data(), va_.size());
    std::span<WilsonSpinor<Simd<T, W>>> vb(vb_.data(), vb_.size());
    pack_sites<T, W>(*vl_, in, va);
    vl_->fill_ghosts(va);
    simd_dslash_full<T, W>(
        vb, std::span<const WilsonSpinor<Simd<T, W>>>(va.data(), va.size()),
        *vgauge_);
    // Same per-lane combine sequence as WilsonOperator::apply: r = in;
    // h = D in; h *= kappa; r -= h (bit-identical lane arithmetic).
    const Simd<T, W> k(static_cast<T>(ref_.kappa()));
    const std::int64_t n = vl_->inner_sites();
    parallel_for(static_cast<std::size_t>(n), [&](std::size_t vs) {
      WilsonSpinor<Simd<T, W>> r = va[vs];
      WilsonSpinor<Simd<T, W>> h = vb[vs];
      h *= k;
      r -= h;
      vb[vs] = r;
    });
    unpack_sites<T, W>(
        *vl_, std::span<const WilsonSpinor<Simd<T, W>>>(vb.data(), vb.size()),
        out);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return ref_.vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return ref_.flops_per_apply();
  }
  [[nodiscard]] double kappa() const { return ref_.kappa(); }
  [[nodiscard]] const LatticeGeometry& geometry() const {
    return ref_.geometry();
  }
  [[nodiscard]] const WilsonOperator<T>& reference() const { return ref_; }

 private:
  WilsonOperator<T> ref_;
  std::unique_ptr<VectorLattice> vl_;
  std::unique_ptr<VectorGaugeField<T, W>> vgauge_;
  mutable aligned_vector<WilsonSpinor<Simd<T, W>>> va_;
  mutable aligned_vector<WilsonSpinor<Simd<T, W>>> vb_;
};

/// Lane-packed odd-odd Schur complement Mhat = 1 - kappa^2 D_oe D_eo.
/// apply() runs both half-dslashes in the vector domain (one pack, one
/// unpack per apply); rhs preparation and reconstruction are once-per-
/// solve cold paths and delegate to the scalar reference operator.
template <typename T, int W>
class SimdSchurWilsonOperator final : public LinearOperator<T> {
 public:
  SimdSchurWilsonOperator(const GaugeField<T>& u, double kappa,
                          TimeBoundary bc = TimeBoundary::Antiperiodic)
      : ref_(u, kappa, bc) {
    std::optional<VectorLattice> vl = VectorLattice::make(u.geometry(), W);
    if (!vl) return;
    vl_ = std::make_unique<VectorLattice>(std::move(*vl));
    GaugeField<T> links = make_fermion_links(u, bc);
    vgauge_ = std::make_unique<VectorGaugeField<T, W>>(*vl_, links);
    const std::size_t n = static_cast<std::size_t>(vl_->total_sites());
    va_.resize(n);
    vb_.resize(n);
    vc_.resize(n);
  }

  [[nodiscard]] bool simd_active() const noexcept { return vl_ != nullptr; }
  [[nodiscard]] static constexpr int width() noexcept { return W; }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    if (!vl_) {
      ref_.apply(out, in);
      return;
    }
    if (telemetry::enabled()) {
      static telemetry::Counter& c =
          telemetry::counter("dslash.schur_applies");
      c.add(1);
    }
    const std::int64_t hv = vl_->outer_geometry().half_volume();
    std::span<WilsonSpinor<Simd<T, W>>> va(va_.data(), va_.size());
    std::span<WilsonSpinor<Simd<T, W>>> vb(vb_.data(), vb_.size());
    std::span<WilsonSpinor<Simd<T, W>>> vc(vc_.data(), vc_.size());
    // Mirror of SchurWilsonOperator::apply, lane-packed: odd va <- in,
    // even vb <- D_eo va, odd vc <- D_oe vb, out <- in - kappa^2 vc_odd.
    pack_parity<T, W>(*vl_, in, va, 1);
    vl_->fill_ghosts(va, 1);
    simd_dslash_parity<T, W>(
        vb, std::span<const WilsonSpinor<Simd<T, W>>>(va.data(), va.size()),
        *vgauge_, 0);
    vl_->fill_ghosts(vb, 0);
    simd_dslash_parity<T, W>(
        vc, std::span<const WilsonSpinor<Simd<T, W>>>(vb.data(), vb.size()),
        *vgauge_, 1);
    const Simd<T, W> k2(static_cast<T>(ref_.kappa()) *
                        static_cast<T>(ref_.kappa()));
    parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
      const std::size_t vs = static_cast<std::size_t>(hv) + i;
      WilsonSpinor<Simd<T, W>> h = vc[vs];
      h *= k2;
      WilsonSpinor<Simd<T, W>> r = va[vs];
      r -= h;
      vc[vs] = r;
    });
    unpack_parity<T, W>(
        *vl_, std::span<const WilsonSpinor<Simd<T, W>>>(vc.data(), vc.size()),
        out, 1);
  }

  /// Cold path, once per solve: scalar reference.
  void prepare_rhs(std::span<WilsonSpinor<T>> bhat,
                   std::span<const WilsonSpinor<T>> b_full) const {
    ref_.prepare_rhs(bhat, b_full);
  }
  /// Cold path, once per solve: scalar reference.
  void reconstruct(std::span<WilsonSpinor<T>> x_full,
                   std::span<const WilsonSpinor<T>> x_odd,
                   std::span<const WilsonSpinor<T>> b_full) const {
    ref_.reconstruct(x_full, x_odd, b_full);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return ref_.vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return ref_.flops_per_apply();
  }
  [[nodiscard]] double kappa() const { return ref_.kappa(); }
  [[nodiscard]] const LatticeGeometry& geometry() const {
    return ref_.geometry();
  }
  [[nodiscard]] const SchurWilsonOperator<T>& reference() const {
    return ref_;
  }

 private:
  SchurWilsonOperator<T> ref_;
  std::unique_ptr<VectorLattice> vl_;
  std::unique_ptr<VectorGaugeField<T, W>> vgauge_;
  mutable aligned_vector<WilsonSpinor<Simd<T, W>>> va_;
  mutable aligned_vector<WilsonSpinor<Simd<T, W>>> vb_;
  mutable aligned_vector<WilsonSpinor<Simd<T, W>>> vc_;
};

}  // namespace lqcd
