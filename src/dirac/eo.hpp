#pragma once
// Even-odd (checkerboard) preconditioning.
//
// In block form over parities, with A the site-diagonal part (identity for
// plain Wilson, the clover matrix otherwise) and D the hopping term:
//
//        M = [  A_ee     -kappa D_eo ]
//            [ -kappa D_oe    A_oo   ]
//
// the odd-odd Schur complement is
//
//   Mhat = A_oo - kappa^2 D_oe A_ee^{-1} D_eo,
//
// with rhs  bhat_o = b_o + kappa D_oe A_ee^{-1} b_e  and reconstruction
// x_e = A_ee^{-1} (b_e + kappa D_eo x_o). Solving Mhat on half the volume
// roughly halves work per iteration *and* halves the condition number —
// the first optimization every production LQCD solver ships.
//
// Mhat is gamma5-hermitian, so NormalOperator<T> applies.

#include "dirac/clover.hpp"
#include "dirac/operator.hpp"
#include "dirac/wilson.hpp"
#include "linalg/blas.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

/// Schur complement of the plain Wilson operator (A = 1).
template <typename T>
class SchurWilsonOperator final : public LinearOperator<T> {
 public:
  SchurWilsonOperator(const GaugeField<T>& u, double kappa,
                      TimeBoundary bc = TimeBoundary::Antiperiodic)
      : links_(make_fermion_links(u, bc)),
        kappa_(static_cast<T>(kappa)),
        f1_(static_cast<std::size_t>(u.geometry().volume())),
        f2_(static_cast<std::size_t>(u.geometry().volume())) {
    LQCD_REQUIRE(kappa > 0.0 && kappa < 0.25, "kappa out of (0, 0.25)");
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    const LatticeGeometry& geo = links_.geometry();
    const std::int64_t hv = geo.half_volume();
    LQCD_REQUIRE(out.size() == static_cast<std::size_t>(hv) &&
                     in.size() == out.size(),
                 "Schur apply span sizes");
    if (telemetry::enabled()) {
      static telemetry::Counter& c =
          telemetry::counter("dslash.schur_applies");
      c.add(1);
    }
    std::span<WilsonSpinor<T>> f1(f1_.data(), f1_.size());
    std::span<WilsonSpinor<T>> f2(f2_.data(), f2_.size());
    // Odd block of f1 <- in.
    auto f1_odd = f1.subspan(static_cast<std::size_t>(hv));
    blas::copy(f1_odd, in);
    // Even block of f2 <- D_eo in.
    dslash_parity(f2, std::span<const WilsonSpinor<T>>(f1.data(), f1.size()),
                  links_, 0);
    // Odd block of f1 <- D_oe D_eo in.
    dslash_parity(f1, std::span<const WilsonSpinor<T>>(f2.data(), f2.size()),
                  links_, 1);
    const T k2 = kappa_ * kappa_;
    parallel_for(out.size(), [&](std::size_t i) {
      WilsonSpinor<T> h = f1_odd[i];
      h *= k2;
      WilsonSpinor<T> r = in[i];
      r -= h;
      out[i] = r;
    });
  }

  /// bhat_o = b_o + kappa D_oe b_e (b is a full-volume field).
  void prepare_rhs(std::span<WilsonSpinor<T>> bhat,
                   std::span<const WilsonSpinor<T>> b_full) const {
    const LatticeGeometry& geo = links_.geometry();
    const std::int64_t hv = geo.half_volume();
    std::span<WilsonSpinor<T>> f1(f1_.data(), f1_.size());
    dslash_parity(f1, b_full, links_, 1);  // odd f1 = D_oe b_e
    auto f1_odd = std::span<const WilsonSpinor<T>>(f1.data(), f1.size())
                      .subspan(static_cast<std::size_t>(hv));
    auto b_odd = b_full.subspan(static_cast<std::size_t>(hv));
    const T k = kappa_;
    parallel_for(bhat.size(), [&](std::size_t i) {
      WilsonSpinor<T> h = f1_odd[i];
      h *= k;
      h += b_odd[i];
      bhat[i] = h;
    });
  }

  /// x_full: odd block <- x_odd; even block <- b_e + kappa D_eo x_o.
  void reconstruct(std::span<WilsonSpinor<T>> x_full,
                   std::span<const WilsonSpinor<T>> x_odd,
                   std::span<const WilsonSpinor<T>> b_full) const {
    const LatticeGeometry& geo = links_.geometry();
    const std::int64_t hv = geo.half_volume();
    auto x_full_odd = x_full.subspan(static_cast<std::size_t>(hv));
    blas::copy(x_full_odd, x_odd);
    std::span<WilsonSpinor<T>> f1(f1_.data(), f1_.size());
    dslash_parity(f1, std::span<const WilsonSpinor<T>>(x_full.data(),
                                                       x_full.size()),
                  links_, 0);  // even f1 = D_eo x_o
    const T k = kappa_;
    parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
      WilsonSpinor<T> h = f1[i];
      h *= k;
      h += b_full[i];
      x_full[i] = h;
    });
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return links_.geometry().half_volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    // Two half-volume dslashes + combine.
    return static_cast<double>(links_.geometry().volume()) *
               kDslashFlopsPerSite +
           static_cast<double>(vector_size()) * 48.0;
  }
  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }
  [[nodiscard]] const LatticeGeometry& geometry() const {
    return links_.geometry();
  }

 private:
  GaugeField<T> links_;
  T kappa_;
  mutable aligned_vector<WilsonSpinor<T>> f1_;
  mutable aligned_vector<WilsonSpinor<T>> f2_;
};

/// Schur complement of the clover-Wilson operator.
template <typename T>
class SchurCloverOperator final : public LinearOperator<T> {
 public:
  SchurCloverOperator(const GaugeField<T>& u, const GaugeFieldD& u_double,
                      const CloverParams& params)
      : links_(make_fermion_links(u, params.bc)),
        clover_(u_double, params),
        kappa_(static_cast<T>(params.kappa)),
        f1_(static_cast<std::size_t>(u.geometry().volume())),
        f2_(static_cast<std::size_t>(u.geometry().volume())) {
    LQCD_REQUIRE(params.kappa > 0.0 && params.kappa < 0.25,
                 "kappa out of (0, 0.25)");
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    const LatticeGeometry& geo = links_.geometry();
    const std::int64_t hv = geo.half_volume();
    LQCD_REQUIRE(out.size() == static_cast<std::size_t>(hv) &&
                     in.size() == out.size(),
                 "Schur apply span sizes");
    if (telemetry::enabled()) {
      static telemetry::Counter& c =
          telemetry::counter("dslash.schur_applies");
      c.add(1);
    }
    std::span<WilsonSpinor<T>> f1(f1_.data(), f1_.size());
    std::span<WilsonSpinor<T>> f2(f2_.data(), f2_.size());
    auto f1_odd = f1.subspan(static_cast<std::size_t>(hv));
    blas::copy(f1_odd, in);
    // even f2 = D_eo in
    dslash_parity(f2, std::span<const WilsonSpinor<T>>(f1.data(), f1.size()),
                  links_, 0);
    // even f2 <- A_ee^{-1} (even f2)
    clover_.apply_inverse(f2, std::span<const WilsonSpinor<T>>(f2.data(),
                                                               f2.size()),
                          0, hv);
    // odd f1 = D_oe A_ee^{-1} D_eo in
    dslash_parity(f1, std::span<const WilsonSpinor<T>>(f2.data(), f2.size()),
                  links_, 1);
    // odd f2 = A_oo in
    auto f2_odd = f2.subspan(static_cast<std::size_t>(hv));
    {
      // CloverTerm works on absolute site ranges of full-volume spans;
      // build a temporary full view whose odd block is `in`.
      std::span<WilsonSpinor<T>> fa(fa_storage(), f1_.size());
      auto fa_odd = fa.subspan(static_cast<std::size_t>(hv));
      blas::copy(fa_odd, in);
      clover_.apply(f2, std::span<const WilsonSpinor<T>>(fa.data(),
                                                         fa.size()),
                    hv, geo.volume());
    }
    const T k2 = kappa_ * kappa_;
    parallel_for(out.size(), [&](std::size_t i) {
      WilsonSpinor<T> h = f1_odd[i];
      h *= k2;
      WilsonSpinor<T> r = f2_odd[i];
      r -= h;
      out[i] = r;
    });
  }

  /// bhat_o = b_o + kappa D_oe A_ee^{-1} b_e.
  void prepare_rhs(std::span<WilsonSpinor<T>> bhat,
                   std::span<const WilsonSpinor<T>> b_full) const {
    const LatticeGeometry& geo = links_.geometry();
    const std::int64_t hv = geo.half_volume();
    std::span<WilsonSpinor<T>> f1(f1_.data(), f1_.size());
    std::span<WilsonSpinor<T>> f2(f2_.data(), f2_.size());
    // even f2 = A_ee^{-1} b_e
    clover_.apply_inverse(f2, b_full, 0, hv);
    // odd f1 = D_oe A_ee^{-1} b_e
    dslash_parity(f1, std::span<const WilsonSpinor<T>>(f2.data(), f2.size()),
                  links_, 1);
    auto f1_odd = std::span<const WilsonSpinor<T>>(f1.data(), f1.size())
                      .subspan(static_cast<std::size_t>(hv));
    auto b_odd = b_full.subspan(static_cast<std::size_t>(hv));
    const T k = kappa_;
    parallel_for(bhat.size(), [&](std::size_t i) {
      WilsonSpinor<T> h = f1_odd[i];
      h *= k;
      h += b_odd[i];
      bhat[i] = h;
    });
  }

  /// x_e = A_ee^{-1} (b_e + kappa D_eo x_o).
  void reconstruct(std::span<WilsonSpinor<T>> x_full,
                   std::span<const WilsonSpinor<T>> x_odd,
                   std::span<const WilsonSpinor<T>> b_full) const {
    const LatticeGeometry& geo = links_.geometry();
    const std::int64_t hv = geo.half_volume();
    auto x_full_odd = x_full.subspan(static_cast<std::size_t>(hv));
    blas::copy(x_full_odd, x_odd);
    std::span<WilsonSpinor<T>> f1(f1_.data(), f1_.size());
    dslash_parity(f1, std::span<const WilsonSpinor<T>>(x_full.data(),
                                                       x_full.size()),
                  links_, 0);
    const T k = kappa_;
    parallel_for(static_cast<std::size_t>(hv), [&](std::size_t i) {
      WilsonSpinor<T> h = f1[i];
      h *= k;
      h += b_full[i];
      f1[i] = h;
    });
    clover_.apply_inverse(x_full, std::span<const WilsonSpinor<T>>(
                                      f1.data(), f1.size()),
                          0, hv);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return links_.geometry().half_volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return static_cast<double>(links_.geometry().volume()) *
               kDslashFlopsPerSite +
           static_cast<double>(vector_size()) * (2.0 * 288.0 + 48.0);
  }
  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }
  [[nodiscard]] const CloverTerm<T>& clover() const { return clover_; }
  [[nodiscard]] const LatticeGeometry& geometry() const {
    return links_.geometry();
  }

 private:
  WilsonSpinor<T>* fa_storage() const {
    if (fa_.size() != f1_.size()) fa_.resize(f1_.size());
    return fa_.data();
  }

  GaugeField<T> links_;
  CloverTerm<T> clover_;
  T kappa_;
  mutable aligned_vector<WilsonSpinor<T>> f1_;
  mutable aligned_vector<WilsonSpinor<T>> f2_;
  mutable aligned_vector<WilsonSpinor<T>> fa_;
};

}  // namespace lqcd
