#pragma once
// Reference (unoptimized) Wilson hopping term: applies (1 -+ gamma_mu)
// with dense table-driven gamma multiplication and a full SU(3) multiply
// per spin component — no spin projection. Used as
//  (a) an independent cross-check of the optimized kernel, and
//  (b) the baseline for the spin-projection ablation (bench_ablation):
//      the trick saves half the color-multiply flops.

#include "dirac/wilson.hpp"
#include "linalg/gamma.hpp"

namespace lqcd {

/// out(x) = hopping sum, computed the slow way.
template <typename T>
void dslash_full_naive(std::span<WilsonSpinor<T>> out,
                       std::span<const WilsonSpinor<T>> in,
                       const GaugeField<T>& u) {
  const LatticeGeometry& geo = u.geometry();
  LQCD_REQUIRE(out.size() == static_cast<std::size_t>(geo.volume()) &&
                   in.size() == out.size(),
               "dslash_full_naive span sizes");
  parallel_for(out.size(), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    WilsonSpinor<T> acc{};
    for (int mu = 0; mu < Nd; ++mu) {
      // Forward: (1 - gamma_mu) U_mu(x) psi(x+mu).
      {
        const std::int64_t xp = geo.fwd(cb, mu);
        const WilsonSpinor<T> upsi =
            mul(u(cb, mu), in[static_cast<std::size_t>(xp)]);
        const WilsonSpinor<T> gup = apply_gamma(mu, upsi);
        acc += upsi;
        acc -= gup;
      }
      // Backward: (1 + gamma_mu) U_mu^†(x-mu) psi(x-mu).
      {
        const std::int64_t xm = geo.bwd(cb, mu);
        const WilsonSpinor<T> upsi =
            adj_mul(u(xm, mu), in[static_cast<std::size_t>(xm)]);
        const WilsonSpinor<T> gup = apply_gamma(mu, upsi);
        acc += upsi;
        acc += gup;
      }
    }
    out[s] = acc;
  });
}

/// Flops per site of the naive kernel (4 full SU(3)xspinor multiplies per
/// direction pair instead of 2 half-spinor ones): 8 dirs x (4 spins x 66)
/// + adds = 2112 + overhead, vs 1320 for the projected kernel.
inline constexpr double kNaiveDslashFlopsPerSite = 2400.0;

}  // namespace lqcd
