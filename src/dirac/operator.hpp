#pragma once
// Abstract fermion linear operator interface shared by the Dirac
// operators, preconditioners and Krylov solvers.
//
// Operators act on flat spans of Wilson spinors; the span length is
// operator-defined (full volume for unpreconditioned operators, half
// volume for even-odd preconditioned ones), so solvers are agnostic to
// the underlying lattice structure.

#include <cstdint>
#include <span>

#include "linalg/spinor.hpp"

namespace lqcd {

template <typename T>
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// out = Op * in. `out` and `in` must not alias.
  virtual void apply(std::span<WilsonSpinor<T>> out,
                     std::span<const WilsonSpinor<T>> in) const = 0;

  /// Vector length in spinor sites.
  [[nodiscard]] virtual std::int64_t vector_size() const = 0;

  /// Floating-point operations per apply (0 if unknown) — drives the
  /// throughput reporting in the bench harness.
  [[nodiscard]] virtual double flops_per_apply() const { return 0.0; }

  /// True if the operator is hermitian positive definite (CG-safe).
  [[nodiscard]] virtual bool hermitian_positive() const { return false; }
};

/// Wilson dslash flop count per output site: 8 directions x
/// (projection 12 cplx adds + SU(3) half-spinor mult 2x66 + reconstruction)
/// = the standard 1320 flops/site figure.
inline constexpr double kDslashFlopsPerSite = 1320.0;

}  // namespace lqcd
