#include "dirac/clover.hpp"

#include "linalg/gamma.hpp"
#include "parallel/thread_pool.hpp"

namespace lqcd {

ColorMatrixD clover_field_strength(const GaugeFieldD& links, std::int64_t cb,
                                   int mu, int nu) {
  const LatticeGeometry& geo = links.geometry();
  const std::int64_t xpmu = geo.fwd(cb, mu);
  const std::int64_t xpnu = geo.fwd(cb, nu);
  const std::int64_t xmmu = geo.bwd(cb, mu);
  const std::int64_t xmnu = geo.bwd(cb, nu);
  const std::int64_t xmmu_pnu = geo.fwd(xmmu, nu);
  const std::int64_t xmmu_mnu = geo.bwd(xmmu, nu);
  const std::int64_t xpmu_mnu = geo.bwd(xpmu, nu);

  // Leaf 1: x -> x+mu -> x+mu+nu -> x+nu -> x
  ColorMatrixD q = mul_adj(mul(links(cb, mu), links(xpmu, nu)),
                           links(xpnu, mu));
  ColorMatrixD leaf = mul_adj(q, links(cb, nu));

  // Leaf 2: x -> x+nu -> x+nu-mu -> x-mu -> x
  q = mul_adj(links(cb, nu), links(xmmu_pnu, mu));
  q = mul_adj(q, links(xmmu, nu));
  leaf += mul(q, links(xmmu, mu));

  // Leaf 3: x -> x-mu -> x-mu-nu -> x-nu -> x
  q = adj_mul(links(xmmu, mu), dagger(links(xmmu_mnu, nu)));
  q = mul(q, links(xmmu_mnu, mu));
  leaf += mul(q, links(xmnu, nu));

  // Leaf 4: x -> x-nu -> x-nu+mu -> x+mu -> x
  q = adj_mul(links(xmnu, nu), links(xmnu, mu));
  q = mul(q, links(xpmu_mnu, nu));
  leaf += mul_adj(q, links(cb, mu));

  // F = (leaf - leaf^dagger) / (8 i), then remove the trace part.
  ColorMatrixD f{};
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c) {
      const Cplxd d = leaf.m[r][c] - conj(leaf.m[c][r]);
      // divide by 8i: (a+bi)/(8i) = (b - ai)/8
      f.m[r][c] = Cplxd(d.im / 8.0, -d.re / 8.0);
    }
  const Cplxd tr = trace(f);
  const Cplxd sub(tr.re / Nc, tr.im / Nc);
  for (int i = 0; i < Nc; ++i) f.m[i][i] -= sub;
  return f;
}

template <typename T>
CloverTerm<T>::CloverTerm(const GaugeFieldD& u, const CloverParams& params)
    : geo_(&u.geometry()), params_(params) {
  LQCD_REQUIRE(params.csw >= 0.0, "csw must be non-negative");
  const GaugeFieldD links = make_fermion_links(u, params.bc);
  const std::int64_t vol = geo_->volume();
  a_.resize(static_cast<std::size_t>(vol) * kBlocks);
  ainv_.resize(static_cast<std::size_t>(vol) * kBlocks);

  // Dense sigma matrices once (block-diagonality is checked by tests).
  SpinMatrix sig[4][4];
  for (int mu = 0; mu < Nd; ++mu)
    for (int nu = mu + 1; nu < Nd; ++nu) sig[mu][nu] = sigma_munu(mu, nu);

  const double coeff = params.csw * params.kappa;

  parallel_for(static_cast<std::size_t>(vol), [&](std::size_t s) {
    const auto cb = static_cast<std::int64_t>(s);
    // Accumulate the two 6x6 blocks in double.
    SmallMat<double, 6> blk[kBlocks];
    for (int b = 0; b < kBlocks; ++b)
      blk[b] = SmallMat<double, 6>::identity();

    for (int mu = 0; mu < Nd; ++mu)
      for (int nu = mu + 1; nu < Nd; ++nu) {
        const ColorMatrixD f = clover_field_strength(links, cb, mu, nu);
        const SpinMatrix& sg = sig[mu][nu];
        for (int b = 0; b < kBlocks; ++b)
          for (int si = 0; si < 2; ++si)
            for (int sj = 0; sj < 2; ++sj) {
              const Cplxd w = sg.m[2 * b + si][2 * b + sj];
              if (w.re == 0.0 && w.im == 0.0) continue;
              for (int ci = 0; ci < Nc; ++ci)
                for (int cj = 0; cj < Nc; ++cj) {
                  const Cplxd add =
                      Cplxd(-coeff) * w * f.m[ci][cj];
                  blk[b].m[3 * si + ci][3 * sj + cj] += add;
                }
            }
      }

    for (int b = 0; b < kBlocks; ++b) {
      const SmallMat<double, 6> inv = inverse(blk[b]);
      SmallMat<T, 6>& dst = a_[s * kBlocks + static_cast<std::size_t>(b)];
      SmallMat<T, 6>& dsti =
          ainv_[s * kBlocks + static_cast<std::size_t>(b)];
      for (int r = 0; r < 6; ++r)
        for (int c = 0; c < 6; ++c) {
          dst.m[r][c] = Cplx<T>(blk[b].m[r][c]);
          dsti.m[r][c] = Cplx<T>(inv.m[r][c]);
        }
    }
  });
}

namespace {
// Gather/scatter between a Wilson spinor's chirality block and a 6-vector.
template <typename T>
SmallVec<T, 6> gather_block(const WilsonSpinor<T>& psi, int b) {
  SmallVec<T, 6> v;
  for (int si = 0; si < 2; ++si)
    for (int ci = 0; ci < Nc; ++ci)
      v.v[3 * si + ci] = psi.s[2 * b + si].c[ci];
  return v;
}

template <typename T>
void scatter_block(WilsonSpinor<T>& psi, int b, const SmallVec<T, 6>& v) {
  for (int si = 0; si < 2; ++si)
    for (int ci = 0; ci < Nc; ++ci)
      psi.s[2 * b + si].c[ci] = v.v[3 * si + ci];
}
}  // namespace

template <typename T>
void CloverTerm<T>::apply(std::span<WilsonSpinor<T>> out,
                          std::span<const WilsonSpinor<T>> in,
                          std::int64_t site_begin,
                          std::int64_t site_end) const {
  LQCD_REQUIRE(site_begin >= 0 && site_end <= geo_->volume() &&
                   out.size() == in.size(),
               "CloverTerm::apply range");
  const auto n = static_cast<std::size_t>(site_end - site_begin);
  parallel_for(n, [&](std::size_t i) {
    const std::size_t s = static_cast<std::size_t>(site_begin) + i;
    WilsonSpinor<T> r;
    for (int b = 0; b < kBlocks; ++b) {
      const SmallVec<T, 6> v = gather_block(in[s], b);
      const SmallVec<T, 6> w =
          mul(a_[s * kBlocks + static_cast<std::size_t>(b)], v);
      scatter_block(r, b, w);
    }
    out[s] = r;
  });
}

template <typename T>
void CloverTerm<T>::apply_inverse(std::span<WilsonSpinor<T>> out,
                                  std::span<const WilsonSpinor<T>> in,
                                  std::int64_t site_begin,
                                  std::int64_t site_end) const {
  LQCD_REQUIRE(site_begin >= 0 && site_end <= geo_->volume() &&
                   out.size() == in.size(),
               "CloverTerm::apply_inverse range");
  const auto n = static_cast<std::size_t>(site_end - site_begin);
  parallel_for(n, [&](std::size_t i) {
    const std::size_t s = static_cast<std::size_t>(site_begin) + i;
    WilsonSpinor<T> r;
    for (int b = 0; b < kBlocks; ++b) {
      const SmallVec<T, 6> v = gather_block(in[s], b);
      const SmallVec<T, 6> w =
          mul(ainv_[s * kBlocks + static_cast<std::size_t>(b)], v);
      scatter_block(r, b, w);
    }
    out[s] = r;
  });
}

template class CloverTerm<float>;
template class CloverTerm<double>;

}  // namespace lqcd
