#pragma once
// Sheikholeslami–Wohlert (clover) improvement term.
//
// The clover field strength is built from the four plaquette "leaves"
// around each site:
//
//   F_mu_nu(x) = (1 / 8i) * (Q_mu_nu(x) - Q_mu_nu^†(x)),   hermitian,
//
// and the site-diagonal clover matrix is
//
//   A(x) = 1 - c_sw * kappa * sum_{mu<nu} sigma_mu_nu (x) F_mu_nu(x).
//
// In the DeGrand–Rossi (chiral) basis sigma_mu_nu is spin-block diagonal,
// so A(x) splits into two hermitian 6x6 blocks (spin pair {0,1} and
// {2,3} tensor color). Both the blocks and their exact inverses are
// precomputed; the inverse is what the even-odd Schur complement needs.
//
// The full clover-Wilson operator M = A - kappa D is gamma5-hermitian.

#include <memory>
#include <vector>

#include "dirac/operator.hpp"
#include "dirac/wilson.hpp"
#include "gauge/gauge_field.hpp"
#include "linalg/smallmat.hpp"

namespace lqcd {

struct CloverParams {
  double kappa = 0.12;
  double csw = 1.0;  ///< tree-level Sheikholeslami–Wohlert coefficient
  TimeBoundary bc = TimeBoundary::Antiperiodic;
};

/// Hermitian clover field-strength matrix F_mu_nu(x) (cold path; exposed
/// for tests). `links` must already carry the fermion boundary phases.
ColorMatrixD clover_field_strength(const GaugeFieldD& links, std::int64_t cb,
                                   int mu, int nu);

/// Site-diagonal clover matrix A and its inverse, stored as two 6x6
/// chirality blocks per site, in precision T.
template <typename T>
class CloverTerm {
 public:
  /// Number of 6x6 blocks per site.
  static constexpr int kBlocks = 2;

  CloverTerm(const GaugeFieldD& u, const CloverParams& params);

  /// out = A in over the sites [site_begin, site_end) of a full-volume
  /// span (use geometry half-volume offsets for single-parity work).
  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in, std::int64_t site_begin,
             std::int64_t site_end) const;

  /// out = A^{-1} in over [site_begin, site_end).
  void apply_inverse(std::span<WilsonSpinor<T>> out,
                     std::span<const WilsonSpinor<T>> in,
                     std::int64_t site_begin, std::int64_t site_end) const;

  [[nodiscard]] const LatticeGeometry& geometry() const { return *geo_; }
  [[nodiscard]] const CloverParams& params() const { return params_; }

  /// Direct block access (tests).
  [[nodiscard]] const SmallMat<T, 6>& block(std::int64_t cb, int b) const {
    return a_[static_cast<std::size_t>(cb) * kBlocks +
              static_cast<std::size_t>(b)];
  }
  [[nodiscard]] const SmallMat<T, 6>& block_inverse(std::int64_t cb,
                                                    int b) const {
    return ainv_[static_cast<std::size_t>(cb) * kBlocks +
                 static_cast<std::size_t>(b)];
  }

 private:
  const LatticeGeometry* geo_;
  CloverParams params_;
  std::vector<SmallMat<T, 6>> a_;
  std::vector<SmallMat<T, 6>> ainv_;
};

/// Full-lattice clover-Wilson operator M = A - kappa D.
template <typename T>
class CloverWilsonOperator final : public LinearOperator<T> {
 public:
  CloverWilsonOperator(const GaugeField<T>& u, const GaugeFieldD& u_double,
                       const CloverParams& params)
      : links_(make_fermion_links(u, params.bc)),
        clover_(u_double, params),
        kappa_(static_cast<T>(params.kappa)) {
    LQCD_REQUIRE(params.kappa > 0.0 && params.kappa < 0.25,
                 "kappa out of (0, 0.25)");
  }

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    const LatticeGeometry& geo = links_.geometry();
    dslash_full(out, in, links_);
    // out = A in - kappa * (D in): scale hopping, then add the clover part
    // through a scratch-free fused pass.
    const T k = kappa_;
    std::span<WilsonSpinor<T>> hop = out;
    // tmp = A in (sitewise), out = tmp - k*hop. Do it blockwise in place:
    // clover_.apply writes to tmp buffer.
    if (tmp_.size() != in.size()) tmp_.resize(in.size());
    std::span<WilsonSpinor<T>> tmp(tmp_.data(), tmp_.size());
    clover_.apply(tmp, in, 0, geo.volume());
    parallel_for(out.size(), [&](std::size_t s) {
      WilsonSpinor<T> h = hop[s];
      h *= k;
      WilsonSpinor<T> r = tmp[s];
      r -= h;
      out[s] = r;
    });
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return links_.geometry().volume();
  }
  [[nodiscard]] double flops_per_apply() const override {
    // dslash + 6x6 block multiply (2 blocks x ~288 flops) + combine.
    return static_cast<double>(vector_size()) *
           (kDslashFlopsPerSite + 2.0 * 288.0 + 48.0);
  }

  [[nodiscard]] const CloverTerm<T>& clover() const { return clover_; }
  [[nodiscard]] const GaugeField<T>& fermion_links() const { return links_; }
  [[nodiscard]] double kappa() const { return static_cast<double>(kappa_); }

 private:
  GaugeField<T> links_;
  CloverTerm<T> clover_;
  T kappa_;
  mutable aligned_vector<WilsonSpinor<T>> tmp_;
};

}  // namespace lqcd
