#pragma once
// Normal operator M^† M for gamma5-hermitian fermion matrices.
//
// Every Dirac operator in this library (Wilson, clover, and their even-odd
// Schur complements) satisfies gamma5 M gamma5 = M^†, where gamma5 acts
// sitewise — so the dagger costs one extra sitewise flip on each side and
// no second operator implementation. The resulting M^†M is hermitian
// positive definite and is what CG solves.

#include "dirac/operator.hpp"
#include "linalg/gamma.hpp"
#include "parallel/thread_pool.hpp"
#include "util/aligned.hpp"

namespace lqcd {

/// In-place sitewise gamma5.
template <typename T>
void apply_g5_inplace(std::span<WilsonSpinor<T>> x) {
  parallel_for(x.size(), [&](std::size_t s) { x[s] = apply_gamma5(x[s]); });
}

/// out = M^† in, assuming M is gamma5-hermitian. `tmp` is caller scratch of
/// the same length.
template <typename T>
void apply_dagger_g5(const LinearOperator<T>& m,
                     std::span<WilsonSpinor<T>> out,
                     std::span<const WilsonSpinor<T>> in,
                     std::span<WilsonSpinor<T>> tmp) {
  parallel_for(in.size(),
               [&](std::size_t s) { tmp[s] = apply_gamma5(in[s]); });
  m.apply(out, std::span<const WilsonSpinor<T>>(tmp.data(), tmp.size()));
  apply_g5_inplace(out);
}

/// Hermitian positive-definite M^† M of a gamma5-hermitian M.
template <typename T>
class NormalOperator final : public LinearOperator<T> {
 public:
  explicit NormalOperator(const LinearOperator<T>& m)
      : m_(&m),
        tmp1_(static_cast<std::size_t>(m.vector_size())),
        tmp2_(static_cast<std::size_t>(m.vector_size())) {}

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    std::span<WilsonSpinor<T>> t1(tmp1_.data(), tmp1_.size());
    std::span<WilsonSpinor<T>> t2(tmp2_.data(), tmp2_.size());
    m_->apply(t1, in);
    apply_dagger_g5(*m_, out,
                    std::span<const WilsonSpinor<T>>(t1.data(), t1.size()),
                    t2);
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return m_->vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return 2.0 * m_->flops_per_apply();
  }
  [[nodiscard]] bool hermitian_positive() const override { return true; }

  [[nodiscard]] const LinearOperator<T>& inner() const { return *m_; }

 private:
  const LinearOperator<T>* m_;
  mutable aligned_vector<WilsonSpinor<T>> tmp1_;
  mutable aligned_vector<WilsonSpinor<T>> tmp2_;
};

}  // namespace lqcd
