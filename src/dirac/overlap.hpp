#pragma once
// Overlap (Ginsparg–Wilson) fermions — exact lattice chiral symmetry.
//
//   D_ov = rho * ( 1 + gamma5 * eps(H) ),
//   H = gamma5 * D_w(-m0),   rho = m0 in (0, 2),
//
// where D_w(-m0) is the Wilson operator with a negative bare mass (kappa
// between 1/8 and 1/4) and eps is the matrix sign function. The sign
// function is evaluated through the rational inverse square root:
//
//   eps(H) x = H (H^2)^{-1/2} x,   H^2 = M_w^† M_w,
//
// one multishift CG per application. D_ov satisfies the Ginsparg–Wilson
// relation
//
//   gamma5 D + D gamma5 = (1/rho) D gamma5 D,
//
// i.e. chiral symmetry at finite lattice spacing — the structural reason
// overlap quarks have no additive mass renormalization. Tests verify
// eps(H)^2 = 1 and the GW relation on random vectors to the rational
// approximation's accuracy.

#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "solver/rational.hpp"

namespace lqcd {

struct OverlapParams {
  double m0 = 1.4;        ///< negative Wilson mass, in (0, 2)
  int poles = 24;         ///< rational approximation order
  double spectrum_min = 0.05;  ///< H^2 spectral window for pole scaling
  double spectrum_max = 30.0;
  SolverParams inner{.tol = 1e-10, .max_iterations = 20000,
                     .check_true_residual = false};
  TimeBoundary bc = TimeBoundary::Antiperiodic;
};

/// Massless overlap operator. apply() costs one multishift CG.
template <typename T>
class OverlapOperator final : public LinearOperator<T> {
 public:
  OverlapOperator(const GaugeField<T>& u, const OverlapParams& params)
      : params_(params),
        // kappa for bare mass -m0: kappa = 1 / (2(-m0) + 8).
        wilson_(u, 1.0 / (8.0 - 2.0 * params.m0), params.bc),
        normal_(wilson_),
        approx_(rational_inverse_sqrt_scaled(
            params.poles, params.spectrum_min, params.spectrum_max)) {
    LQCD_REQUIRE(params.m0 > 0.0 && params.m0 < 2.0,
                 "overlap m0 must lie in (0, 2)");
  }

  /// out = eps(H) in = gamma5 M_w (M_w^† M_w)^{-1/2} in.
  /// Exposed for the eps^2 = 1 test.
  void apply_sign(std::span<WilsonSpinor<T>> out,
                  std::span<const WilsonSpinor<T>> in) const {
    const std::size_t n = in.size();
    if (tmp_.size() != n) tmp_.resize(n);
    std::span<WilsonSpinor<T>> tmp(tmp_.data(), n);
    const RationalApplyResult r =
        apply_rational(normal_, approx_, tmp,
                       in, params_.inner);
    LQCD_REQUIRE(r.converged, "overlap inner multishift did not converge");
    total_inner_iterations_ += r.iterations;
    // H (H^2)^{-1/2} = gamma5 M_w (...); M_w then gamma5, sitewise.
    wilson_.apply(out, std::span<const WilsonSpinor<T>>(tmp.data(), n));
    apply_g5_inplace(out);
  }

  /// out = D_ov in = rho (in + gamma5 eps(H) in).
  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    const std::size_t n = in.size();
    if (tmp2_.size() != n) tmp2_.resize(n);
    std::span<WilsonSpinor<T>> sgn(tmp2_.data(), n);
    apply_sign(sgn, in);
    const T rho = static_cast<T>(params_.m0);
    parallel_for(n, [&](std::size_t i) {
      WilsonSpinor<T> v = apply_gamma5(sgn[i]);
      v += in[i];
      v *= rho;
      out[i] = v;
    });
  }

  [[nodiscard]] std::int64_t vector_size() const override {
    return wilson_.vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    // Dominated by the multishift inner solve; report one Wilson apply
    // per pole iteration as a lower bound.
    return normal_.flops_per_apply();
  }

  [[nodiscard]] double rho() const { return params_.m0; }
  [[nodiscard]] long total_inner_iterations() const {
    return total_inner_iterations_;
  }
  [[nodiscard]] const RationalApprox& approximation() const {
    return approx_;
  }

 private:
  OverlapParams params_;
  WilsonOperator<T> wilson_;
  NormalOperator<T> normal_;
  RationalApprox approx_;
  mutable aligned_vector<WilsonSpinor<T>> tmp_;
  mutable aligned_vector<WilsonSpinor<T>> tmp2_;
  mutable long total_inner_iterations_ = 0;
};

}  // namespace lqcd
