#pragma once
// Public facade of the lqcd library.
//
// A downstream user needs three things to go from nothing to hadron
// masses: a Context (lattice + RNG + threads), an EnsembleGenerator
// (thermalized gauge configurations), and run_spectroscopy() (propagators,
// correlators, effective masses). ScalingStudy wraps the machine-model
// side. Everything here is a thin composition of the module-level APIs,
// which remain fully public for advanced use.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "gauge/gauge_field.hpp"
#include "gauge/heatbath.hpp"
#include "lattice/geometry.hpp"
#include "spectro/correlator.hpp"
#include "spectro/effective_mass.hpp"
#include "spectro/propagator.hpp"

namespace lqcd {

struct Version {
  int major = 0;
  int minor = 0;
  int patch = 0;
  const char* string = "";
};
Version version();

/// Owns the lattice geometry and global run configuration.
class Context {
 public:
  /// `threads` = 0 keeps the current global pool.
  explicit Context(const Coord& dims, std::uint64_t seed = 1,
                   std::size_t threads = 0);

  [[nodiscard]] const LatticeGeometry& geometry() const { return geo_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  LatticeGeometry geo_;
  std::uint64_t seed_;
};

struct EnsembleParams {
  double beta = 6.0;
  int or_per_hb = 3;
  int thermalization_sweeps = 50;
  int sweeps_between_configs = 10;
};

/// Quenched ensemble generation: thermalize once, then pull decorrelated
/// configurations.
class EnsembleGenerator {
 public:
  EnsembleGenerator(const Context& ctx, const EnsembleParams& params);

  /// Run the thermalization sweeps (idempotent).
  void thermalize();

  /// Advance by `sweeps_between_configs` and return the current field.
  const GaugeFieldD& next_config();

  [[nodiscard]] const GaugeFieldD& current() const { return u_; }
  [[nodiscard]] double plaquette() const;
  [[nodiscard]] bool thermalized() const { return thermalized_; }

 private:
  const Context* ctx_;
  EnsembleParams params_;
  GaugeFieldD u_;
  Heatbath heatbath_;
  bool thermalized_ = false;
};

/// One full spectroscopy measurement on one configuration.
struct SpectroscopyResult {
  Correlator pion;
  Correlator rho;
  Correlator nucleon;
  PlateauEstimate pion_mass;
  PlateauEstimate rho_mass;
  PlateauEstimate nucleon_mass;
  PropagatorStats solve_stats;
};

struct SpectroscopyParams {
  PropagatorParams propagator;
  /// Quark source (defaults to a point source at the origin); the same
  /// spec language the campaign service uses ("point:X,Y,Z,T", "wall:T0").
  SourceSpec source{};
  int plateau_t_min = 2;  ///< effective-mass averaging window
  int plateau_t_max = 6;
};

/// Propagator + pion/rho/nucleon correlators + plateau effective masses
/// for the configured source.
SpectroscopyResult run_spectroscopy(const GaugeFieldD& u,
                                    const SpectroscopyParams& params);

/// Scaling-study wrapper over the analytic machine model (the simulated
/// substitute for the paper's cluster-scale runs; see DESIGN.md).
class ScalingStudy {
 public:
  ScalingStudy(const MachineModel& machine, const PerfModelOptions& options)
      : machine_(machine), options_(options) {}

  [[nodiscard]] std::vector<ScalingPoint> strong(
      const Coord& global, const std::vector<int>& nodes) const {
    return strong_scaling(global, machine_, options_, nodes);
  }
  [[nodiscard]] std::vector<ScalingPoint> weak(
      const Coord& local, const std::vector<int>& nodes) const {
    return weak_scaling(local, machine_, options_, nodes);
  }
  [[nodiscard]] const MachineModel& machine() const { return machine_; }

 private:
  MachineModel machine_;
  PerfModelOptions options_;
};

}  // namespace lqcd
