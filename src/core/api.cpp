#include "core/api.hpp"

#include <cmath>
#include <vector>

#include "gauge/observables.hpp"
#include "parallel/thread_pool.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace lqcd {

Version version() { return Version{1, 0, 0, "1.0.0"}; }

Context::Context(const Coord& dims, std::uint64_t seed, std::size_t threads)
    : geo_(dims), seed_(seed) {
  if (threads > 0) ThreadPool::set_global_threads(threads);
}

EnsembleGenerator::EnsembleGenerator(const Context& ctx,
                                     const EnsembleParams& params)
    : ctx_(&ctx),
      params_(params),
      u_(ctx.geometry()),
      heatbath_(u_, HeatbathParams{.beta = params.beta,
                                   .or_per_hb = params.or_per_hb,
                                   .seed = ctx.seed()}) {
  u_.set_random(SiteRngFactory(ctx.seed() ^ 0x5eedULL));
}

void EnsembleGenerator::thermalize() {
  if (thermalized_) return;
  for (int i = 0; i < params_.thermalization_sweeps; ++i) {
    const double p = heatbath_.sweep();
    if ((i + 1) % 10 == 0)
      log_info("thermalization sweep ", i + 1, "/",
               params_.thermalization_sweeps, " plaquette ", p);
  }
  thermalized_ = true;
}

const GaugeFieldD& EnsembleGenerator::next_config() {
  telemetry::TraceRegion trace("ensemble.next_config");
  thermalize();
  for (int i = 0; i < params_.sweeps_between_configs; ++i)
    heatbath_.sweep();
  telemetry::counter("ensemble.configs").add(1);
  return u_;
}

double EnsembleGenerator::plaquette() const { return average_plaquette(u_); }

SpectroscopyResult run_spectroscopy(const GaugeFieldD& u,
                                    const SpectroscopyParams& params) {
  telemetry::TraceRegion trace("spectroscopy.run");
  SpectroscopyResult res;
  Propagator prop(u.geometry());
  res.solve_stats = compute_propagator(prop, u, params.propagator,
                                       params.source);
  const int t0 = params.source.kind == SourceKind::Point
                     ? params.source.point[3]
                     : params.source.t0;
  res.pion = pion_correlator(prop, t0);
  res.rho = rho_correlator(prop, t0);
  res.nucleon = nucleon_correlator(prop, t0);

  const auto m_pi = effective_mass_cosh(res.pion.c);
  const auto m_rho = effective_mass_cosh(res.rho.c);
  // Baryons are not cosh-symmetric (forward state only): use log masses
  // on |C| — the interpolator's overall sign is convention-dependent.
  std::vector<double> nuc_abs(res.nucleon.c.size());
  for (std::size_t t = 0; t < nuc_abs.size(); ++t)
    nuc_abs[t] = std::abs(res.nucleon.c[t]);
  const auto m_n = effective_mass_log(nuc_abs);
  res.pion_mass = plateau_mass(m_pi, params.plateau_t_min,
                               params.plateau_t_max);
  res.rho_mass = plateau_mass(m_rho, params.plateau_t_min,
                              params.plateau_t_max);
  res.nucleon_mass = plateau_mass(m_n, params.plateau_t_min,
                                  params.plateau_t_max);
  return res;
}

}  // namespace lqcd
