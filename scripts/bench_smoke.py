#!/usr/bin/env python3
"""Smoke-run every benchmark binary and validate its JSON output.

Each bench is run in its cheapest configuration (--quick where the bench
supports it, explicit tiny dimensions otherwise) with --json pointed at
an output directory, then the JSON is parsed and checked for the
expected schema string and top-level keys. CI uploads the JSON files as
artifacts, so this script doubles as the generator of those artifacts.

Usage:
  scripts/bench_smoke.py [--build-dir BUILD] [--out-dir OUT]
                         [--only NAME[,NAME...]]

Exits non-zero if any bench fails to run, writes unparsable JSON, or
omits an expected key.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

# name -> (extra argv before --json, expected "schema" value or None,
#          expected top-level keys).
# A name is the benchmark *mode*, not necessarily a binary: by default the
# binary is build/bench/<name>, but an entry may carry a "binary" override
# so one executable can appear under several modes (bench_dslash serves
# both the overlap and the SIMD lane experiments). An entry may also carry
# an "elements" spec — {list_key: [required subkeys]} — checked against
# every record of the named top-level array.
BENCHES = {
    "bench_ablation": (
        ["--quick"],
        "lqcd.bench.ablation/1",
        ["projection_speedup", "multishift_speedup", "eo"],
    ),
    "bench_chaos": (
        ["--quick"],
        "lqcd.bench.chaos/1",
        ["seeds", "completed", "invariant_failures", "all_invariants_pass"],
    ),
    "bench_comm": (
        ["--quick"],
        "lqcd.bench.comm/1",
        ["achieved_halo_bytes_per_exchange", "model_hidden_fraction",
         "overlap_measured"],
    ),
    "bench_dslash": (
        ["--overlap", "--quick"],
        "lqcd.bench.dslash_overlap/1",
        ["tolerance_pct", "all_within_tolerance", "grids"],
    ),
    "bench_dslash_simd": (
        ["--simd", "--quick"],
        "lqcd.bench.dslash_simd/1",
        ["lattice", "scalar_gflops", "best_float_speedup", "all_bitwise",
         "pass", "lanes"],
        {"binary": "bench_dslash",
         "elements": {"lanes": ["precision", "width", "gflops", "speedup",
                                "bitwise"]}},
    ),
    "bench_ensemble": (
        ["--quick"],
        "lqcd.bench.ensemble/1",
        ["heatbath", "hmc"],
    ),
    "bench_mg": (
        ["--L", "4", "--nvec", "4", "--setup-iters", "1",
         "--coarse-iters", "16", "--kappas", "0.15"],
        None,
        ["experiment", "sweep", "tol"],
    ),
    "bench_mixed_precision": (
        ["--quick"],
        "lqcd.bench.mixed_precision/1",
        ["kappas"],
    ),
    "bench_precision": (
        ["--quick"],
        "lqcd.bench.precision/1",
        ["experiment", "measured", "solver", "model", "mg", "gates",
         "pass"],
        {"elements": {"gates": ["name", "pass", "detail"]}},
    ),
    "bench_resilience": (
        ["--L", "4", "--T", "8", "--reps", "2"],
        None,
        ["experiment", "overhead_pct_checksummed",
         "bit_identical_under_faults", "checkpoint_mb"],
    ),
    "bench_sap": (
        ["--quick"],
        "lqcd.bench.sap/1",
        ["plain_gcr_iters", "sap"],
    ),
    "bench_serve": (
        ["--quick"],
        "lqcd.bench.serve/1",
        ["sweep", "campaign"],
    ),
    "bench_solvers": (
        ["--quick"],
        "lqcd.bench.solvers/1",
        ["kappas"],
    ),
    "bench_spectroscopy": (
        ["--quick"],
        "lqcd.bench.spectroscopy/1",
        ["m_pi", "m_rho", "m_nucleon", "solve_iterations"],
    ),
    "bench_strong_scaling": (
        ["--quick"],
        "lqcd.bench.strong_scaling/1",
        ["machine", "points"],
    ),
    "bench_telemetry": (
        ["--L", "4", "--T", "4", "--reps", "4", "--applies", "2"],
        "lqcd.bench.telemetry/1",
        ["overhead_pct", "achieved_halo_bytes_per_exchange"],
    ),
    "bench_transport": (
        ["--quick", "--np", "2"],
        "lqcd.bench.transport/1",
        ["transport", "ranks", "alpha_us", "beta_gbs", "barrier_us",
         "allreduce_us", "allreduce_exact", "exchange", "dslash"],
        {"elements": {"pingpong": ["bytes", "t_us", "bw_gbs"]}},
    ),
    "bench_weak_scaling": (
        ["--quick"],
        "lqcd.bench.weak_scaling/1",
        ["machine", "points"],
    ),
}

TIMEOUT_S = 300


def run_one(name: str, build_dir: Path, out_dir: Path) -> list[str]:
    """Run one bench; return a list of failure messages (empty = pass)."""
    extra, schema, keys = BENCHES[name][:3]
    opts = BENCHES[name][3] if len(BENCHES[name]) > 3 else {}
    exe = build_dir / "bench" / opts.get("binary", name)
    if not exe.exists():
        return [f"binary not found: {exe}"]
    json_path = out_dir / f"{name}.json"
    cmd = [str(exe), *extra, "--json", str(json_path)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        return [f"timed out after {TIMEOUT_S}s"]
    if proc.returncode != 0:
        tail = (proc.stdout + proc.stderr).strip().splitlines()[-5:]
        return [f"exit code {proc.returncode}"] + [f"  | {l}" for l in tail]
    if not json_path.exists():
        return [f"did not write {json_path}"]
    try:
        doc = json.loads(json_path.read_text())
    except json.JSONDecodeError as e:
        return [f"invalid JSON: {e}"]
    errs = []
    if schema is not None and doc.get("schema") != schema:
        errs.append(f"schema mismatch: expected {schema!r}, "
                    f"got {doc.get('schema')!r}")
    for k in keys:
        if k not in doc:
            errs.append(f"missing key: {k!r}")
    for list_key, subkeys in opts.get("elements", {}).items():
        records = doc.get(list_key)
        if not isinstance(records, list) or not records:
            errs.append(f"key {list_key!r} is not a non-empty array")
            continue
        for i, rec in enumerate(records):
            missing = [k for k in subkeys
                       if not isinstance(rec, dict) or k not in rec]
            if missing:
                errs.append(f"{list_key}[{i}] missing: {', '.join(missing)}")
    return errs


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out-dir", default="bench-json", type=Path)
    ap.add_argument("--only", default="",
                    help="comma-separated bench names to run")
    args = ap.parse_args()

    names = sorted(BENCHES)
    if args.only:
        names = [n for n in args.only.split(",") if n]
        unknown = [n for n in names if n not in BENCHES]
        if unknown:
            print(f"unknown bench(es): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    args.out_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for name in names:
        t0 = time.monotonic()
        errs = run_one(name, args.build_dir, args.out_dir)
        dt = time.monotonic() - t0
        status = "ok" if not errs else "FAIL"
        print(f"{name:28s} {status:4s} {dt:7.1f}s")
        for e in errs:
            print(f"    {e}")
        failures += bool(errs)

    print(f"\n{len(names) - failures}/{len(names)} benches passed; "
          f"JSON in {args.out_dir}/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
