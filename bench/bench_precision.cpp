// Experiment T10: the precision-tiered halo exchange, measured end to
// end. Four gated sections:
//
//  A. Measured exchange: VirtualCluster<double> with CRC-framed
//     resilience, full vs half (int16 block-float) halo precision. The
//     payload-byte ratio is exact (192 -> 52 bytes per face site). Time
//     is measured twice: on the raw in-process hub (memcpy-speed, so
//     only codec + CRC cost shows — reported, not gated) and with wire
//     emulation charging every frame byte at a commodity NIC rate
//     (--wire-gbit, default 1.0), where the byte savings become wall
//     clock and the 1.8x time gate applies.
//  B. Solver parity: CG on the normal equations of the distributed
//     Schur operator, full vs half fermion halos. Quantized ghosts
//     perturb only surface-site hops (~1e-5 relative), so the
//     iteration count must match within 2%.
//  C. Modeled: the alpha-beta model priced with
//     halo_precision_bytes = 2 — the beta-term byte charge drops by
//     the same wire ratio (96 -> 28 bytes per half-spinor face site).
//  D. MG storage tier: the Galerkin coarse stencil demoted to float
//     (accumulation stays double), gated on unchanged MG-GCR
//     convergence and a ~2x stencil-footprint reduction.
//
// Every gate prints PASS/FAIL and the binary exits nonzero if any gate
// fails — this is the regression harness behind the precision-smoke CI
// job. --json <path> records the measured ratios (schema
// lqcd.bench.precision/1); --quick shrinks volumes and relaxes the
// timing gate for sanitizer-built CI runs where wall-clock ratios are
// distorted.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/dist_eo.hpp"
#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "dirac/normal.hpp"
#include "mg/solver.hpp"
#include "solver/cg.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace lqcd;

struct Gate {
  std::string name;
  bool pass = false;
  std::string detail;
};

void record(std::vector<Gate>& gates, const std::string& name, bool pass,
            const std::string& detail) {
  gates.push_back({name, pass, detail});
  std::printf("  [%s] %-28s %s\n", pass ? "PASS" : "FAIL", name.c_str(),
              detail.c_str());
}

struct Measured {
  double ms = 0.0;      ///< wall time per exchange (best of `trials`)
  double bytes = 0.0;   ///< payload bytes per exchange
  double full_equiv = 0.0;
  double frames = 0.0;  ///< compressed frames per exchange
};

/// Time `reps` exchanges at the given precision, `trials` times, best
/// wall clock kept; byte counters averaged over every timed exchange.
Measured measure_exchange(
    VirtualCluster<double>& vc,
    std::vector<typename VirtualCluster<double>::RankFermion>& f,
    HaloPrecision prec, int reps, int trials) {
  vc.set_halo_precision(prec);
  vc.exchange(f);  // warm-up at this precision
  vc.stats().reset();
  Measured m;
  m.ms = 1e300;
  for (int trial = 0; trial < trials; ++trial) {
    WallTimer t;
    for (int i = 0; i < reps; ++i) vc.exchange(f);
    m.ms = std::min(m.ms, t.seconds() * 1e3 / reps);
  }
  const double total = static_cast<double>(reps) * trials;
  m.bytes = static_cast<double>(vc.stats().bytes) / total;
  m.full_equiv = static_cast<double>(vc.stats().full_equiv_bytes) / total;
  m.frames = static_cast<double>(vc.stats().compressed_frames) / total;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqcd;
  using namespace lqcd::bench;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const double wire_gbit = cli.get_double("wire-gbit", 1.0);
  const bool quick = cli.get_flag("quick");
  cli.finish();

  std::vector<Gate> gates;

  // ---- A: measured exchange, full vs half ---------------------------
  const LatticeGeometry geo(quick ? Coord{4, 4, 4, 8}
                                  : Coord{8, 8, 8, 16});
  const ProcessGrid pg({2, 2, 2, 2});
  const int reps = quick ? 8 : 16;
  rule("T10a: measured halo exchange, full vs half precision");
  std::printf("lattice %dx%dx%dx%d, grid 2x2x2x2, CRC framing on, %d "
              "exchanges per trial\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3), reps);

  VirtualCluster<double> vc(geo, pg);
  vc.set_resilience({.checksum = true});
  auto f = vc.make_fermion();
  {
    FermionFieldD src(geo);
    fill_gaussian(src.span(), 77);
    vc.scatter(f, src.span());
  }
  // Raw in-process hub: frames move at memcpy speed, so this isolates
  // the codec + CRC cost (reported, not gated — there is no wire).
  const Measured raw_full =
      measure_exchange(vc, f, HaloPrecision::kFull, reps, 3);
  const Measured raw_half =
      measure_exchange(vc, f, HaloPrecision::kHalf, reps, 3);
  // Emulated commodity wire: every frame byte is charged at the NIC
  // rate, which is what the exchange pays on a real cluster and what
  // the 1.8x time gate is about.
  vc.set_wire_emulation(wire_gbit * 1e9 / 8.0);
  const Measured emu_full =
      measure_exchange(vc, f, HaloPrecision::kFull, reps, 2);
  const Measured emu_half =
      measure_exchange(vc, f, HaloPrecision::kHalf, reps, 2);
  vc.set_wire_emulation(0.0);

  const double byte_ratio = raw_full.bytes / raw_half.bytes;
  const double raw_time_ratio =
      raw_half.ms > 0.0 ? raw_full.ms / raw_half.ms : 0.0;
  const double emu_time_ratio =
      emu_half.ms > 0.0 ? emu_full.ms / emu_half.ms : 0.0;
  std::printf("%8s %16s %14s %18s\n", "", "payload/xchg", "in-proc[ms]",
              "wire-emul[ms]");
  std::printf("%8s %16.0f %14.3f %18.3f\n", "full", raw_full.bytes,
              raw_full.ms, emu_full.ms);
  std::printf("%8s %16.0f %14.3f %18.3f\n", "half", raw_half.bytes,
              raw_half.ms, emu_half.ms);
  std::printf("(wire emulation: %.2f Gbit/s shared link; in-process "
              "ratio %.2fx is codec-vs-memcpy only)\n",
              wire_gbit, raw_time_ratio);

  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.0f -> %.0f bytes/exchange (%.2fx)",
                raw_full.bytes, raw_half.bytes, byte_ratio);
  record(gates, "measured_byte_ratio", byte_ratio >= 1.8, buf);
  std::snprintf(buf, sizeof(buf), "full_equiv %.0f vs full payload %.0f",
                raw_half.full_equiv, raw_full.bytes);
  record(gates, "full_equiv_accounting",
         std::abs(raw_half.full_equiv - raw_full.bytes) < 0.5, buf);
  const double expect_frames = pg.size() * 2.0 * Nd;
  std::snprintf(buf, sizeof(buf), "%.0f frames/exchange (expect %.0f)",
                raw_half.frames, expect_frames);
  record(gates, "compressed_frames",
         std::abs(raw_half.frames - expect_frames) < 0.5, buf);
  std::snprintf(buf, sizeof(buf),
                "%.3f -> %.3f ms on %.2f Gbit wire (%.2fx)", emu_full.ms,
                emu_half.ms, wire_gbit, emu_time_ratio);
  record(gates, "measured_time_ratio", emu_time_ratio >= 1.8, buf);

  // ---- B: solver iteration parity -----------------------------------
  rule("T10b: CG iteration parity, full vs half fermion halos");
  const LatticeGeometry sgeo(quick ? Coord{4, 4, 4, 8}
                                   : Coord{8, 8, 8, 8});
  const double kappa = 0.118;
  // Quantized ghosts perturb the operator by ~1e-5 relative on surface
  // hops, which floors the achievable true residual near 1e-6. Half
  // halos are an inner-solve tier: the parity gate runs at a tolerance
  // above that floor (below it, CG against the perturbed operator
  // honestly needs more iterations — that is the tier boundary, not a
  // bug).
  const double tol = 1e-6;
  const GaugeFieldD u = thermalized(sgeo, 5.9, 30, quick ? 6 : 8);
  FermionFieldD b(sgeo);
  fill_gaussian(b.span(), 31);
  const auto hv = static_cast<std::size_t>(sgeo.half_volume());

  DistributedSchurWilsonOperator<double> sop(u, kappa,
                                             ProcessGrid({1, 1, 1, 2}));
  NormalOperator<double> nop(sop);
  aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), x(hv), tmp(hv);
  sop.prepare_rhs({bhat.data(), hv}, b.span());
  apply_dagger_g5<double>(sop, {bhat2.data(), hv}, {bhat.data(), hv},
                          {tmp.data(), hv});
  const std::span<const WilsonSpinorD> rhs(bhat2.data(), hv);
  const SolverParams sp{.tol = tol, .max_iterations = 20000};

  const SolverResult r_full = cg_solve<double>(nop, {x.data(), hv}, rhs, sp);
  sop.set_halo_precision(HaloPrecision::kHalf);
  blas::zero(std::span<WilsonSpinorD>(x.data(), hv));
  const SolverResult r_half = cg_solve<double>(nop, {x.data(), hv}, rhs, sp);
  std::printf("%8s %8s %12s %10s\n", "halo", "iters", "residual", "conv");
  std::printf("%8s %8d %12.3e %10s\n", "full", r_full.iterations,
              r_full.relative_residual, r_full.converged ? "yes" : "NO");
  std::printf("%8s %8d %12.3e %10s\n", "half", r_half.iterations,
              r_half.relative_residual, r_half.converged ? "yes" : "NO");

  const int iter_slack = std::max(
      1, static_cast<int>(std::ceil(0.02 * r_full.iterations)));
  const int iter_diff = std::abs(r_half.iterations - r_full.iterations);
  std::snprintf(buf, sizeof(buf), "full %d, half %d (|diff| %d <= %d)",
                r_full.iterations, r_half.iterations, iter_diff, iter_slack);
  record(gates, "cg_iteration_parity",
         r_full.converged && r_half.converged && iter_diff <= iter_slack,
         buf);

  // ---- C: modeled beta term -----------------------------------------
  rule("T10c: modeled halo traffic, halo_precision_bytes = 2");
  const Coord local = quick ? Coord{8, 8, 8, 8} : Coord{16, 16, 16, 16};
  const Coord grid{2, 2, 2, 2};
  PerfModelOptions full_opt;   // double everywhere
  PerfModelOptions half_opt;
  half_opt.halo_precision_bytes = 2;
  const DslashCost c_full =
      model_dslash(local, grid, generic_cluster(), full_opt);
  const DslashCost c_half =
      model_dslash(local, grid, generic_cluster(), half_opt);
  const double model_byte_ratio = c_full.comm_bytes / c_half.comm_bytes;
  const double model_time_ratio =
      c_half.t_comm > 0.0 ? c_full.t_comm / c_half.t_comm : 0.0;
  std::printf("%8s %14s %12s\n", "", "halo bytes", "t_comm[us]");
  std::printf("%8s %14.0f %12.2f\n", "full", c_full.comm_bytes,
              c_full.t_comm * 1e6);
  std::printf("%8s %14.0f %12.2f\n", "half", c_half.comm_bytes,
              c_half.t_comm * 1e6);
  std::snprintf(buf, sizeof(buf), "%.0f -> %.0f bytes (%.2fx); t_comm %.2fx",
                c_full.comm_bytes, c_half.comm_bytes, model_byte_ratio,
                model_time_ratio);
  record(gates, "modeled_byte_ratio", model_byte_ratio >= 1.8, buf);

  // ---- D: MG coarse stencil in float --------------------------------
  rule("T10d: MG convergence with the float-stored coarse stencil");
  const LatticeGeometry mgeo(quick ? Coord{4, 4, 4, 4} : Coord{8, 8, 8, 8});
  const GaugeFieldD umg = thermalized(mgeo, 5.9, 40, 6);
  FermionFieldD bmg(mgeo), xmg(mgeo);
  fill_gaussian(bmg.span(), 41);

  mg::MgParams mp;
  mp.block = {2, 2, 2, 2};
  mp.nvec = 4;
  mp.setup_iters = 2;
  mp.smoother = {{2, 2, 2, 2}, 2, 4};
  const GcrParams gp{SolverParams{.tol = quick ? 1e-7 : 1e-8,
                                  .max_iterations = 2000},
                     16};

  mg::MgSolver<double> mg_double(umg, 0.124, TimeBoundary::Antiperiodic,
                                 mp, gp);
  blas::zero(xmg.span());
  const SolverResult r_dbl = mg_double.solve(xmg.span(), bmg.span());
  const std::size_t bytes_dbl =
      mg_double.preconditioner().hierarchy().coarse->stencil_bytes();

  mp.coarse_store_single = true;
  mg::MgSolver<double> mg_single(umg, 0.124, TimeBoundary::Antiperiodic,
                                 mp, gp);
  blas::zero(xmg.span());
  const SolverResult r_sgl = mg_single.solve(xmg.span(), bmg.span());
  const std::size_t bytes_sgl =
      mg_single.preconditioner().hierarchy().coarse->stencil_bytes();

  std::printf("%10s %8s %12s %14s\n", "storage", "iters", "residual",
              "stencil[B]");
  std::printf("%10s %8d %12.3e %14zu\n", "double", r_dbl.iterations,
              r_dbl.relative_residual, bytes_dbl);
  std::printf("%10s %8d %12.3e %14zu\n", "float", r_sgl.iterations,
              r_sgl.relative_residual, bytes_sgl);

  const int mg_slack =
      std::max(1, static_cast<int>(std::ceil(0.02 * r_dbl.iterations)));
  const int mg_diff = std::abs(r_sgl.iterations - r_dbl.iterations);
  std::snprintf(buf, sizeof(buf), "double %d, float %d (|diff| %d <= %d)",
                r_dbl.iterations, r_sgl.iterations, mg_diff, mg_slack);
  record(gates, "mg_float_coarse_parity",
         r_dbl.converged && r_sgl.converged && mg_diff <= mg_slack, buf);
  std::snprintf(buf, sizeof(buf), "%zu -> %zu bytes (%.2fx)", bytes_dbl,
                bytes_sgl,
                static_cast<double>(bytes_dbl) /
                    static_cast<double>(bytes_sgl));
  record(gates, "mg_stencil_footprint", bytes_sgl * 2 == bytes_dbl, buf);

  // ---- verdict ------------------------------------------------------
  bool all_pass = true;
  for (const Gate& g : gates) all_pass = all_pass && g.pass;

  if (!json_path.empty()) {
    json::Writer w;
    w.begin_object()
        .field("schema", "lqcd.bench.precision/1")
        .field("experiment", "T10")
        .field("quick", quick);
    w.key("lattice").begin_array();
    for (int mu = 0; mu < Nd; ++mu) w.value(geo.dim(mu));
    w.end_array();
    w.key("measured")
        .begin_object()
        .field("bytes_full_per_exchange", raw_full.bytes)
        .field("bytes_half_per_exchange", raw_half.bytes)
        .field("byte_ratio", byte_ratio)
        .field("inproc_time_full_ms", raw_full.ms)
        .field("inproc_time_half_ms", raw_half.ms)
        .field("inproc_time_ratio", raw_time_ratio)
        .field("wire_gbit", wire_gbit)
        .field("wire_time_full_ms", emu_full.ms)
        .field("wire_time_half_ms", emu_half.ms)
        .field("wire_time_ratio", emu_time_ratio)
        .field("compressed_frames_per_exchange", raw_half.frames)
        .end_object();
    w.key("solver")
        .begin_object()
        .field("tol", tol)
        .field("iters_full", r_full.iterations)
        .field("iters_half", r_half.iterations)
        .field("converged",
               r_full.converged && r_half.converged)
        .end_object();
    w.key("model")
        .begin_object()
        .field("comm_bytes_full", c_full.comm_bytes)
        .field("comm_bytes_half", c_half.comm_bytes)
        .field("byte_ratio", model_byte_ratio)
        .field("t_comm_ratio", model_time_ratio)
        .end_object();
    w.key("mg")
        .begin_object()
        .field("iters_double_store", r_dbl.iterations)
        .field("iters_single_store", r_sgl.iterations)
        .field("stencil_bytes_double",
               static_cast<std::int64_t>(bytes_dbl))
        .field("stencil_bytes_single",
               static_cast<std::int64_t>(bytes_sgl))
        .end_object();
    w.key("gates").begin_array();
    for (const Gate& g : gates) {
      w.begin_object()
          .field("name", g.name)
          .field("pass", g.pass)
          .field("detail", g.detail)
          .end_object();
    }
    w.end_array();
    w.field("pass", all_pass).end_object();
    write_json(json_path, w);
  }

  std::printf("\nT10 verdict: %s (%zu gates)\n",
              all_pass ? "PASS" : "FAIL", gates.size());
  std::printf("Shape: the wire codec ships 52 bytes/site (float scale + "
              "24 int16) against 192 for a double spinor — the measured "
              "payload and the emulated-wire exchange time both drop "
              "well past the 1.8x acceptance bar, the alpha-beta model "
              "prices the same drop on its beta term, and neither the "
              "Krylov iteration count nor the MG convergence moves: "
              "precision lost on the wire and in coarse storage sits "
              "below what the solvers resolve.\n");
  return all_pass ? 0 : 1;
}
