// Experiment T1: single-node dslash & clover throughput (GFLOP/s) vs
// local volume and precision — the kernel table every LQCD solver paper
// opens with. Google-benchmark micro-bench.
//
// --simd switches to the lane-packing experiment: the vector-site dslash
// (SoA Simd<T, W> lanes over a VectorLattice) is validated bitwise
// against the scalar kernel and timed against it at W in {4, 8} for
// float and double. Exits non-zero if any width is not bit-identical,
// or (full mode) if the best float speedup is below 2x. Supports
// --json <path> (schema lqcd.bench.dslash_simd/1, per-width "lanes"
// records) and --quick.
//
// --overlap switches to the split-phase overlap experiment instead: the
// distributed operator's measured hidden-comm fraction is compared to
// model_dslash's prediction on a host-calibrated machine (per-site
// kernel cost from an independent single-rank run of the same hop
// path, link bandwidth back-solved from timed blocking exchanges).
// Exits non-zero if measured and model disagree by more than 10%.
// Supports --json <path> and --quick in that mode.
//
// --transport {virtual,socket,shm} times the distributed dslash over a
// real backend (socket/shm run under lqcd_launch) and prints a
// mode-independent throughput + CRC line for cross-backend diffing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "comm/halo.hpp"
#include "comm/transport/rank_halo.hpp"
#include "comm/transport/transport.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "dirac/clover.hpp"
#include "dirac/naive.hpp"
#include "dirac/simd_wilson.hpp"
#include "dirac/wilson.hpp"
#include "lattice/vector_lattice.hpp"
#include "linalg/simd.hpp"
#include "staggered/staggered.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace lqcd;

template <typename T>
struct Setup {
  explicit Setup(const Coord& dims)
      : geo(dims), u(geo), in(geo), out(geo) {
    GaugeFieldD ud(geo);
    ud.set_random(SiteRngFactory(42));
    convert_gauge(u, ud);
    SiteRngFactory rngs(43);
    for (std::int64_t s = 0; s < geo.volume(); ++s) {
      CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          in[s].s[sp].c[c] = Cplx<T>(static_cast<T>(rng.gaussian()),
                                     static_cast<T>(rng.gaussian()));
    }
  }
  LatticeGeometry geo;
  GaugeField<T> u;
  FermionField<T> in;
  FermionField<T> out;
};

template <typename T>
void BM_DslashProjected(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Setup<T> s({l, l, l, l});
  for (auto _ : state) {
    dslash_full(s.out.span(),
                std::span<const WilsonSpinor<T>>(s.in.span().data(),
                                                 s.in.span().size()),
                s.u);
    benchmark::DoNotOptimize(s.out.data());
  }
  const double flops = kDslashFlopsPerSite *
                       static_cast<double>(s.geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
  state.counters["sites"] = static_cast<double>(s.geo.volume());
}

template <typename T>
void BM_DslashNaive(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Setup<T> s({l, l, l, l});
  for (auto _ : state) {
    dslash_full_naive(s.out.span(),
                      std::span<const WilsonSpinor<T>>(
                          s.in.span().data(), s.in.span().size()),
                      s.u);
    benchmark::DoNotOptimize(s.out.data());
  }
  const double flops = kNaiveDslashFlopsPerSite *
                       static_cast<double>(s.geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}

template <typename T>
void BM_CloverApply(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  LatticeGeometry geo({l, l, l, l});
  GaugeFieldD ud(geo);
  ud.set_random(SiteRngFactory(44));
  CloverTerm<T> clover(ud, {.kappa = 0.12, .csw = 1.0});
  FermionField<T> in(geo), out(geo);
  for (auto& psi : in.span()) psi.s[0].c[0] = Cplx<T>(T(1));
  for (auto _ : state) {
    clover.apply(out.span(),
                 std::span<const WilsonSpinor<T>>(in.span().data(),
                                                  in.span().size()),
                 0, geo.volume());
    benchmark::DoNotOptimize(out.data());
  }
  const double flops = 2.0 * 288.0 * static_cast<double>(geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}

BENCHMARK_TEMPLATE(BM_DslashProjected, double)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_DslashProjected, float)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_DslashNaive, double)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
void BM_StaggeredDslash(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  LatticeGeometry geo({l, l, l, l});
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(45));
  const auto n = static_cast<std::size_t>(geo.volume());
  aligned_vector<ColorVector<double>> in(n), out(n);
  for (auto& v : in) v.c[0] = Cplxd(1.0);
  for (auto _ : state) {
    staggered_dslash({out.data(), n},
                     std::span<const ColorVector<double>>(in.data(), n), u);
    benchmark::DoNotOptimize(out.data());
  }
  // 8 su3 mat-vec (66 flops) + phases/adds per site ~ 570 flops/site.
  const double flops = 570.0 * static_cast<double>(geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StaggeredDslash)->Arg(8)->Unit(benchmark::kMicrosecond);

BENCHMARK_TEMPLATE(BM_CloverApply, double)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_CloverApply, float)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// Registered rows for the kernel table: the lane-packed dslash at the
// widths the --simd experiment validates (steady-state cost: ghost
// refresh + vector sweep; pack/unpack amortize across solver iterations).
template <typename T, int W>
void BM_SimdDslash(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Setup<T> s({l, l, l, l});
  auto vl = VectorLattice::make(s.geo, W);
  if (!vl) {
    state.SkipWithError("geometry does not lane-decompose");
    return;
  }
  const VectorGaugeField<T, W> vg(*vl, s.u);
  aligned_vector<WilsonSpinor<Simd<T, W>>> vin(
      static_cast<std::size_t>(vl->total_sites())),
      vout(static_cast<std::size_t>(vl->total_sites()));
  pack_sites<T, W>(*vl,
                   std::span<const WilsonSpinor<T>>(s.in.span().data(),
                                                    s.in.span().size()),
                   {vin.data(), vin.size()});
  for (auto _ : state) {
    vl->fill_ghosts(std::span<WilsonSpinor<Simd<T, W>>>(vin.data(),
                                                        vin.size()));
    simd_dslash_full<T, W>(
        {vout.data(), vout.size()},
        std::span<const WilsonSpinor<Simd<T, W>>>(vin.data(), vin.size()),
        vg);
    benchmark::DoNotOptimize(vout.data());
  }
  const double flops = kDslashFlopsPerSite *
                       static_cast<double>(s.geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
  state.counters["lanes"] = static_cast<double>(W);
}

BENCHMARK_TEMPLATE(BM_SimdDslash, float, 4)
    ->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SimdDslash, float, 8)
    ->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SimdDslash, double, 4)
    ->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SimdDslash, double, 8)
    ->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

// --- lane-packing experiment (--simd) ---------------------------------

struct SimdLaneResult {
  const char* precision = "";
  int width = 0;
  double gflops = 0.0;
  double speedup = 0.0;  // vs scalar kernel, same precision, same build
  bool bitwise = false;
};

template <typename T>
const char* precision_name() {
  return sizeof(T) == 4 ? "float" : "double";
}

/// Best-of-N timing: the minimum over individually timed sweeps. On a
/// shared/noisy host the mean folds in scheduler steal time, which can
/// easily exceed the effect being measured; the minimum estimates the
/// undisturbed kernel cost for both sides of the comparison.
template <typename Body>
double best_of(int reps, Body&& body) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    body();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Time one scalar reference sweep (seconds/apply) and keep its output
/// as the bitwise reference.
template <typename T>
double time_scalar_dslash(const Setup<T>& s, std::span<WilsonSpinor<T>> ref,
                          int reps) {
  std::span<const WilsonSpinor<T>> in(s.in.span().data(),
                                      s.in.span().size());
  dslash_full(ref, in, s.u);  // warm-up + reference output
  return best_of(reps, [&] {
    dslash_full(ref, in, s.u);
    benchmark::DoNotOptimize(ref.data());
  });
}

template <typename T, int W>
SimdLaneResult run_simd_case(const Setup<T>& s,
                             std::span<const WilsonSpinor<T>> ref,
                             double t_scalar, int reps) {
  SimdLaneResult r;
  r.precision = precision_name<T>();
  r.width = W;
  auto vl = VectorLattice::make(s.geo, W);
  if (!vl) return r;

  const VectorGaugeField<T, W> vg(*vl, s.u);
  const auto total = static_cast<std::size_t>(vl->total_sites());
  aligned_vector<WilsonSpinor<Simd<T, W>>> vin(total), vout(total);
  std::span<WilsonSpinor<Simd<T, W>>> vin_s(vin.data(), vin.size());
  std::span<WilsonSpinor<Simd<T, W>>> vout_s(vout.data(), vout.size());
  std::span<const WilsonSpinor<T>> in(s.in.span().data(),
                                      s.in.span().size());
  pack_sites<T, W>(*vl, in, vin_s);

  // Bitwise validation against the scalar reference before timing.
  vl->fill_ghosts(vin_s);
  simd_dslash_full<T, W>(
      vout_s,
      std::span<const WilsonSpinor<Simd<T, W>>>(vin.data(), vin.size()),
      vg);
  aligned_vector<WilsonSpinor<T>> got(
      static_cast<std::size_t>(s.geo.volume()));
  unpack_sites<T, W>(
      *vl, std::span<const WilsonSpinor<Simd<T, W>>>(vout.data(),
                                                     vout.size()),
      {got.data(), got.size()});
  r.bitwise = true;
  for (std::size_t i = 0; i < got.size() && r.bitwise; ++i)
    for (int sp = 0; sp < Ns; ++sp)
      for (int c = 0; c < Nc; ++c)
        if (!(got[i].s[sp].c[c] == ref[i].s[sp].c[c])) r.bitwise = false;

  // Steady-state kernel timing: ghost refresh + vector sweep per apply
  // (pack/unpack amortize across the iterations of a solve).
  const double dt = best_of(reps, [&] {
    vl->fill_ghosts(vin_s);
    simd_dslash_full<T, W>(
        vout_s,
        std::span<const WilsonSpinor<Simd<T, W>>>(vin.data(), vin.size()),
        vg);
    benchmark::DoNotOptimize(vout.data());
  });
  const double flops =
      kDslashFlopsPerSite * static_cast<double>(s.geo.volume());
  r.gflops = flops * 1e-9 / dt;
  r.speedup = t_scalar / dt;
  return r;
}

template <typename T>
void run_simd_precision(const Coord& dims, int reps,
                        std::vector<SimdLaneResult>& results,
                        double& scalar_gflops) {
  Setup<T> s(dims);
  aligned_vector<WilsonSpinor<T>> ref(
      static_cast<std::size_t>(s.geo.volume()));
  const double t_scalar =
      time_scalar_dslash(s, {ref.data(), ref.size()}, reps);
  const double flops =
      kDslashFlopsPerSite * static_cast<double>(s.geo.volume());
  scalar_gflops = flops * 1e-9 / t_scalar;
  std::span<const WilsonSpinor<T>> ref_c(ref.data(), ref.size());
  results.push_back(run_simd_case<T, 4>(s, ref_c, t_scalar, reps));
  results.push_back(run_simd_case<T, 8>(s, ref_c, t_scalar, reps));
}

int run_simd(int argc, char** argv) {
  Cli cli(argc, argv);
  cli.get_flag("simd");  // consumed by main's dispatch
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const Coord dims = quick ? Coord{8, 8, 8, 8} : Coord{12, 12, 12, 12};
  const int reps = quick ? 6 : 12;
  const double required_speedup = 2.0;

  std::printf("T1-simd: lane-packed dslash vs scalar kernel, "
              "%dx%dx%dx%d lattice\n",
              dims[0], dims[1], dims[2], dims[3]);
  std::printf("%10s %6s %10s %9s %9s\n", "precision", "lanes", "GFLOP/s",
              "speedup", "bitwise");

  std::vector<SimdLaneResult> results;
  double scalar_f = 0.0, scalar_d = 0.0;
  run_simd_precision<float>(dims, reps, results, scalar_f);
  run_simd_precision<double>(dims, reps, results, scalar_d);
  std::printf("%10s %6d %10.2f %9s %9s\n", "float", 1, scalar_f, "1.00",
              "ref");
  std::printf("%10s %6d %10.2f %9s %9s\n", "double", 1, scalar_d, "1.00",
              "ref");

  bool all_bitwise = true;
  double best_float_speedup = 0.0;
  for (const SimdLaneResult& r : results) {
    all_bitwise = all_bitwise && r.bitwise;
    if (r.precision == std::string_view("float"))
      best_float_speedup = std::max(best_float_speedup, r.speedup);
    std::printf("%10s %6d %10.2f %9.2f %9s\n", r.precision, r.width,
                r.gflops, r.speedup, r.bitwise ? "PASS" : "FAIL");
  }

  // Quick mode (CI smoke) still demands bit-exactness; the 2x floor is
  // only meaningful at the full working-set volume.
  const bool pass =
      all_bitwise && (quick || best_float_speedup >= required_speedup);
  std::printf("best float speedup: %.2fx (%s %.1fx floor)%s\n",
              best_float_speedup, quick ? "quick mode, not gating" : "gating",
              required_speedup, pass ? "" : " — FAIL");

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.dslash_simd/1\",\n"
       << "  \"experiment\": \"simd-lane-packing\",\n"
       << "  \"lattice\": [" << dims[0] << ", " << dims[1] << ", "
       << dims[2] << ", " << dims[3] << "],\n"
       << "  \"scalar_gflops\": {\"float\": " << scalar_f
       << ", \"double\": " << scalar_d << "},\n"
       << "  \"best_float_speedup\": " << best_float_speedup << ",\n"
       << "  \"all_bitwise\": " << (all_bitwise ? "true" : "false") << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
       << "  \"lanes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SimdLaneResult& r = results[i];
      js << "    {\"precision\": \"" << r.precision
         << "\", \"width\": " << r.width << ", \"gflops\": " << r.gflops
         << ", \"speedup\": " << r.speedup
         << ", \"bitwise\": " << (r.bitwise ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
    }
    js << "  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

// --- split-phase overlap experiment (--overlap) -----------------------

struct OverlapResult {
  Coord grid{};
  int ranks = 0;
  double t_seq_ms = 0.0;
  double t_ovl_ms = 0.0;
  double hidden_meas = 0.0;
  double hidden_model = 0.0;
  bool pass = false;
};

int run_overlap(int argc, char** argv) {
  Cli cli(argc, argv);
  cli.get_flag("overlap");  // consumed by main's dispatch
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const LatticeGeometry geo(quick ? Coord{8, 8, 8, 16}
                                  : Coord{16, 8, 8, 16});
  const int reps = quick ? 2 : 5;
  const double tol = 0.10;

  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(7));
  FermionFieldD fin(geo), fout(geo);
  SiteRngFactory rngs(8);
  for (std::int64_t s = 0; s < geo.volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    fin[s].s[0].c[0] = Cplxd(rng.gaussian(), rng.gaussian());
  }

  // Calibrate the per-site kernel cost of the *distributed* hop path
  // (per-site scalar stencil over the extended volume) from a
  // single-rank run — independent of the overlap measurements below.
  double t_site = 0.0;
  {
    DistributedWilsonOperator<double> cal(u, 0.12, ProcessGrid({1, 1, 1, 1}));
    cal.apply(fout.span(), fin.span());  // warm-up
    cal.reset_overlap_stats();
    for (int i = 0; i < 2; ++i) cal.apply(fout.span(), fin.span());
    const OverlapStats& cov = cal.overlap_stats();
    t_site = cov.t_compute_s() /
             (static_cast<double>(cov.applies) *
              static_cast<double>(geo.volume()));
  }

  std::printf("T1-overlap: measured vs modeled hidden-comm fraction, "
              "%dx%dx%dx%d global lattice (tolerance %.0f%%)\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3),
              tol * 100.0);
  std::printf("%12s %6s %11s %11s %9s %9s %7s\n", "grid", "ranks",
              "t_seq[ms]", "t_ovl[ms]", "hid_meas", "hid_model", "ok");

  std::vector<Coord> grids{Coord{1, 1, 1, 2}};
  if (!quick) grids.push_back(Coord{2, 1, 1, 2});
  std::vector<OverlapResult> results;
  bool all_pass = true;
  for (const Coord grid : grids) {
    const ProcessGrid pg(grid);
    const int ranks = pg.size();
    Coord local{};
    int active = 0;
    for (int mu = 0; mu < Nd; ++mu) {
      local[mu] = geo.dim(mu) / grid[mu];
      if (grid[mu] > 1) ++active;
    }

    // Calibrate the "network": time blocking exchanges on this cluster
    // and back-solve the per-link bandwidth the alpha-beta model needs
    // to reproduce the measured per-node exchange time (latency ~ 0 for
    // the in-process memcpy transport). The effective bandwidth absorbs
    // the self-neighbor ghost copies in undecomposed directions, which
    // the transport pays but the model does not charge as network bytes.
    VirtualCluster<double> vc(geo, pg);
    auto f = vc.make_fermion();
    vc.exchange(f);  // warm-up
    vc.stats().reset();
    WallTimer tx;
    const int xreps = 3;
    for (int i = 0; i < xreps; ++i) vc.exchange(f);
    const double t_x = tx.seconds() / xreps;  // whole cluster, serialized
    const double t_node = t_x / static_cast<double>(ranks);
    double vloc = 1.0;
    for (int mu = 0; mu < Nd; ++mu)
      vloc *= static_cast<double>(local[mu]);
    double net_bytes = 0.0;  // what the model charges per node
    for (int mu = 0; mu < Nd; ++mu)
      if (grid[mu] > 1)
        net_bytes +=
            2.0 * (vloc / static_cast<double>(local[mu])) * 24.0 * 8.0;
    MachineModel host = generic_cluster();
    host.name = "host-calibrated";
    host.links_per_node = 8;
    host.link_latency_us = 0.0;
    const int conc = std::min(host.links_per_node, 2 * active);
    host.link_bw_gbs =
        net_bytes / std::max(t_node, 1e-9) / (conc * 1e9);

    PerfModelOptions opt;
    opt.precision_bytes = 8;
    opt.half_spinor_comm = false;  // the cluster ships full spinors
    opt.overlap = 1.0;  // split-phase defers the whole exchange window
    const DslashCost c1 = model_dslash(local, grid, host, opt);
    opt.calibration = t_site * vloc / std::max(c1.t_compute, 1e-12);
    const DslashCost c = model_dslash(local, grid, host, opt);

    // Measure the overlapped operator's phase breakdown.
    DistributedWilsonOperator<double> op(u, 0.12, pg);
    op.apply(fout.span(), fin.span());  // warm-up
    op.reset_overlap_stats();
    for (int i = 0; i < reps; ++i) op.apply(fout.span(), fin.span());
    const OverlapStats& ov = op.overlap_stats();
    const double n = static_cast<double>(ov.applies);

    OverlapResult r;
    r.grid = grid;
    r.ranks = ranks;
    r.t_seq_ms = ov.t_sequential_s() * 1e3 / n;
    r.t_ovl_ms = ov.t_overlapped_s() * 1e3 / n;
    r.hidden_meas = ov.hidden_fraction();
    r.hidden_model = c.hidden_fraction;
    // Relative agreement; when the model predicts ~no hiding (empty
    // interior window) fall back to an absolute band.
    r.pass = r.hidden_model > 1e-9
                 ? std::abs(r.hidden_meas - r.hidden_model) /
                           r.hidden_model <=
                       tol
                 : r.hidden_meas <= tol;
    all_pass = all_pass && r.pass;
    results.push_back(r);
    std::printf("%5dx%dx%dx%-3d %6d %11.3f %11.3f %9.3f %9.3f %7s\n",
                grid[0], grid[1], grid[2], grid[3], ranks, r.t_seq_ms,
                r.t_ovl_ms, r.hidden_meas, r.hidden_model,
                r.pass ? "PASS" : "FAIL");
    std::printf("  phases [ms/apply]: begin %.3f interior %.3f finish "
                "%.3f surface %.3f | model (cluster ms): t_comm %.3f "
                "t_compute %.3f interior_frac %.3f\n",
                ov.t_begin_s * 1e3 / n, ov.t_interior_s * 1e3 / n,
                ov.t_finish_s * 1e3 / n, ov.t_surface_s * 1e3 / n,
                c.t_comm * ranks * 1e3, c.t_compute * ranks * 1e3,
                c.interior_fraction);
  }

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.dslash_overlap/1\",\n"
       << "  \"experiment\": \"overlap-hidden-fraction\",\n"
       << "  \"lattice\": [" << geo.dim(0) << ", " << geo.dim(1) << ", "
       << geo.dim(2) << ", " << geo.dim(3) << "],\n"
       << "  \"tolerance_pct\": " << tol * 100.0 << ",\n"
       << "  \"all_within_tolerance\": " << (all_pass ? "true" : "false")
       << ",\n"
       << "  \"grids\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const OverlapResult& r = results[i];
      js << "    {\"grid\": [" << r.grid[0] << ", " << r.grid[1] << ", "
         << r.grid[2] << ", " << r.grid[3] << "], \"ranks\": " << r.ranks
         << ", \"t_sequential_ms\": " << r.t_seq_ms
         << ", \"t_overlapped_ms\": " << r.t_ovl_ms
         << ", \"hidden_fraction_measured\": " << r.hidden_meas
         << ", \"hidden_fraction_model\": " << r.hidden_model
         << ", \"within_tolerance\": " << (r.pass ? "true" : "false")
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    js << "  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_pass ? 0 : 1;
}

// --- real-transport throughput (--transport) --------------------------
//
// The distributed dslash timed over an actual backend. `--transport
// virtual` runs the whole in-process cluster here (the baseline run CI
// diffs CRCs against); socket and shm run one rank per OS process under
// lqcd_launch. The printed line is identical across modes so a CRC or
// throughput diff is a plain text diff. bench_transport measures the
// full T9 suite (alpha-beta fit, collectives, model comparison); this
// mode is the kernel-throughput view of the same wire.

int run_transport(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string backend = cli.get_string("transport", "virtual");
  const bool quick = cli.get_flag("quick");
  const int L = cli.get_int("L", quick ? 4 : 8);
  const int T = cli.get_int("T", quick ? 8 : 16);
  const int np = cli.get_int("np", 2);
  const int reps = cli.get_int("reps", quick ? 4 : 10);
  const double kappa = cli.get_double("kappa", 0.13);
  cli.finish();

  const LatticeGeometry geo({L, L, L, T});
  const ProcessGrid grid(choose_grid(geo.dims(), np));
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(42));
  const auto vol = static_cast<std::size_t>(geo.volume());
  aligned_vector<WilsonSpinorD> src(vol);
  {
    SiteRngFactory rngs(43);
    for (std::size_t i = 0; i < vol; ++i) {
      CounterRng rng = rngs.make(i);
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          src[i].s[sp].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
    }
  }
  const double flops_per_apply =
      kDslashFlopsPerSite * static_cast<double>(geo.volume());

  if (backend == "virtual") {
    DistributedWilsonOperator<double> op(u, kappa, grid);
    aligned_vector<WilsonSpinorD> in = src, out(vol);
    op.apply({out.data(), vol}, {in.data(), vol});  // warm-up
    WallTimer t;
    for (int k = 0; k < reps; ++k) {
      op.apply({out.data(), vol}, {in.data(), vol});
      std::swap(in, out);
    }
    const double s = t.seconds() / reps;
    std::printf("T1-transport: backend=virtual np=%d %dx%dx%dx%d "
                "%.3f ms/apply %.2f GFLOP/s crc=0x%08x\n",
                np, L, L, L, T, s * 1e3, flops_per_apply / s * 1e-9,
                crc32(in.data(), vol * sizeof(WilsonSpinorD)));
    return 0;
  }
  const char* env = std::getenv("LQCD_TRANSPORT");
  if (env == nullptr || backend != env) {
    std::fprintf(stderr,
                 "bench_dslash: --transport %s needs the launcher:\n"
                 "  lqcd_launch -n N --transport %s -- bench_dslash "
                 "--transport %s ...\n",
                 backend.c_str(), backend.c_str(), backend.c_str());
    return 2;
  }
  std::unique_ptr<transport::Transport> tp =
      transport::make_transport_from_env();
  LQCD_REQUIRE(tp->size() == np,
               "bench_dslash: --np must match lqcd_launch -n");
  RankWilsonOperator<double> op(u, kappa, grid, *tp);
  RankCluster<double>& cl = op.cluster();
  auto in = cl.make_fermion();
  auto out = cl.make_fermion();
  cl.extract_local(in, {src.data(), vol});
  op.apply(out, in);  // warm-up
  tp->barrier();
  WallTimer t;
  for (int k = 0; k < reps; ++k) {
    op.apply(out, in);
    std::swap(in, out);
  }
  const double s = t.seconds() / reps;
  // Match the virtual run's field history: warm-up + reps applies, the
  // warm-up result discarded there, so gather the post-warm-up state.
  aligned_vector<WilsonSpinorD> full(tp->rank() == 0 ? vol : 0);
  cl.gather_to_root({full.data(), full.size()}, in);
  tp->barrier();
  if (tp->rank() == 0)
    std::printf("T1-transport: backend=%s np=%d %dx%dx%dx%d "
                "%.3f ms/apply %.2f GFLOP/s crc=0x%08x\n",
                backend.c_str(), np, L, L, L, T, s * 1e3,
                flops_per_apply / s * 1e-9,
                crc32(full.data(), vol * sizeof(WilsonSpinorD)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--overlap")
      return run_overlap(argc, argv);
    if (std::string_view(argv[i]) == "--simd") return run_simd(argc, argv);
    if (std::string_view(argv[i]) == "--transport")
      return run_transport(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
