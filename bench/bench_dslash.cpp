// Experiment T1: single-node dslash & clover throughput (GFLOP/s) vs
// local volume and precision — the kernel table every LQCD solver paper
// opens with. Google-benchmark micro-bench.

#include <benchmark/benchmark.h>

#include "dirac/clover.hpp"
#include "dirac/naive.hpp"
#include "dirac/wilson.hpp"
#include "staggered/staggered.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "util/rng.hpp"

namespace {

using namespace lqcd;

template <typename T>
struct Setup {
  explicit Setup(const Coord& dims)
      : geo(dims), u(geo), in(geo), out(geo) {
    GaugeFieldD ud(geo);
    ud.set_random(SiteRngFactory(42));
    convert_gauge(u, ud);
    SiteRngFactory rngs(43);
    for (std::int64_t s = 0; s < geo.volume(); ++s) {
      CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          in[s].s[sp].c[c] = Cplx<T>(static_cast<T>(rng.gaussian()),
                                     static_cast<T>(rng.gaussian()));
    }
  }
  LatticeGeometry geo;
  GaugeField<T> u;
  FermionField<T> in;
  FermionField<T> out;
};

template <typename T>
void BM_DslashProjected(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Setup<T> s({l, l, l, l});
  for (auto _ : state) {
    dslash_full(s.out.span(),
                std::span<const WilsonSpinor<T>>(s.in.span().data(),
                                                 s.in.span().size()),
                s.u);
    benchmark::DoNotOptimize(s.out.data());
  }
  const double flops = kDslashFlopsPerSite *
                       static_cast<double>(s.geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
  state.counters["sites"] = static_cast<double>(s.geo.volume());
}

template <typename T>
void BM_DslashNaive(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Setup<T> s({l, l, l, l});
  for (auto _ : state) {
    dslash_full_naive(s.out.span(),
                      std::span<const WilsonSpinor<T>>(
                          s.in.span().data(), s.in.span().size()),
                      s.u);
    benchmark::DoNotOptimize(s.out.data());
  }
  const double flops = kNaiveDslashFlopsPerSite *
                       static_cast<double>(s.geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}

template <typename T>
void BM_CloverApply(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  LatticeGeometry geo({l, l, l, l});
  GaugeFieldD ud(geo);
  ud.set_random(SiteRngFactory(44));
  CloverTerm<T> clover(ud, {.kappa = 0.12, .csw = 1.0});
  FermionField<T> in(geo), out(geo);
  for (auto& psi : in.span()) psi.s[0].c[0] = Cplx<T>(T(1));
  for (auto _ : state) {
    clover.apply(out.span(),
                 std::span<const WilsonSpinor<T>>(in.span().data(),
                                                  in.span().size()),
                 0, geo.volume());
    benchmark::DoNotOptimize(out.data());
  }
  const double flops = 2.0 * 288.0 * static_cast<double>(geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}

BENCHMARK_TEMPLATE(BM_DslashProjected, double)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_DslashProjected, float)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_DslashNaive, double)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
void BM_StaggeredDslash(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  LatticeGeometry geo({l, l, l, l});
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(45));
  const auto n = static_cast<std::size_t>(geo.volume());
  aligned_vector<ColorVector<double>> in(n), out(n);
  for (auto& v : in) v.c[0] = Cplxd(1.0);
  for (auto _ : state) {
    staggered_dslash({out.data(), n},
                     std::span<const ColorVector<double>>(in.data(), n), u);
    benchmark::DoNotOptimize(out.data());
  }
  // 8 su3 mat-vec (66 flops) + phases/adds per site ~ 570 flops/site.
  const double flops = 570.0 * static_cast<double>(geo.volume()) *
                       static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StaggeredDslash)->Arg(8)->Unit(benchmark::kMicrosecond);

BENCHMARK_TEMPLATE(BM_CloverApply, double)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_CloverApply, float)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
