// Experiment T9: the real transport, measured. Where T3/F1/F2 charge an
// alpha-beta *model* for the network, this bench measures the actual
// backends under the halo API and closes the loop: a pingpong fits the
// backend's own alpha (latency) and beta (bandwidth), collectives are
// timed, and the rank-local halo exchange and split-phase dslash are
// measured against the alpha-beta prediction built from the *fitted*
// constants — measured-vs-modeled on the same wire, not a preset.
//
// Modes (one binary, same measurement code):
//   ./bench_transport --transport virtual --np 4
//     in-process backend, every rank a thread of this process (the
//     worker pool is pinned to one thread per rank so SPMD ranks do not
//     fight over the fork-join pool);
//   lqcd_launch -n 4 -- ./bench_transport --np 4
//   lqcd_launch -n 4 --transport shm -- ./bench_transport --np 4
//     socket / shared-memory backends, one OS process per rank; rank 0
//     reports.
//
// The dslash section doubles as the T9 bit-identity check: the gathered
// multi-rank result is CRC'd against a single-process virtual-cluster
// run of the same spec. --json emits schema lqcd.bench.transport/1;
// CI's bench_smoke.py validates it and the multi-process smoke job runs
// the socket and shm modes under the launcher.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/dist_eo.hpp"
#include "comm/halo.hpp"
#include "comm/transport/inprocess.hpp"
#include "comm/transport/rank_halo.hpp"
#include "comm/transport/transport.hpp"
#include "parallel/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace lqcd;

struct PingPoint {
  std::size_t bytes = 0;
  double t_us = 0.0;    // one-way
  double bw_gbs = 0.0;  // payload bytes / one-way time
};

struct RankReport {
  std::vector<PingPoint> pingpong;
  double alpha_us = 0.0;  // latency: one-way time of the smallest msg
  double beta_gbs = 0.0;  // asymptotic bandwidth from the size sweep
  double barrier_us = 0.0;
  double allreduce_us = 0.0;
  bool allreduce_exact = false;
  // Halo exchange, per rank per exchange.
  double xchg_t_us = 0.0;
  double xchg_wire_bytes = 0.0;
  double xchg_wire_frames = 0.0;
  double xchg_model_us = 0.0;  // wire_frames * alpha + wire_bytes / beta
  // Split-phase dslash.
  double dslash_ms = 0.0;  // per apply
  double sites_per_s = 0.0;
  double hidden_fraction = 0.0;
  std::uint32_t crc = 0;
};

struct Options {
  LatticeGeometry geo{Coord{4, 4, 4, 8}};
  ProcessGrid grid{Coord{1, 1, 1, 1}};
  double kappa = 0.13;
  std::uint64_t seed = 4242;
  int dslash_applies = 5;  // total, including the one warm-up
  bool quick = false;
};

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

std::uint32_t field_crc(std::span<const WilsonSpinorD> f) {
  return crc32(f.data(), f.size() * sizeof(WilsonSpinorD));
}

/// Single-process virtual-cluster run of the dslash section's spec: the
/// reference bytes the multi-rank gathered result must reproduce.
std::uint32_t virtual_reference_crc(const GaugeFieldD& u,
                                    const Options& opt) {
  DistributedWilsonOperator<double> op(u, opt.kappa, opt.grid);
  const auto vol = static_cast<std::size_t>(opt.geo.volume());
  aligned_vector<WilsonSpinorD> in(vol), out(vol);
  fill_random({in.data(), vol}, opt.seed + 1);
  for (int k = 0; k < opt.dslash_applies; ++k) {
    op.apply({out.data(), vol}, {in.data(), vol});
    std::swap(in, out);
  }
  return field_crc({in.data(), vol});
}

/// One rank's share of every measurement. Collective: all ranks of the
/// group run it in step. The returned report is authoritative on rank 0
/// (timings elsewhere are taken but unused).
RankReport run_rank(transport::Transport& tp, const GaugeFieldD& u,
                    const Options& opt) {
  RankReport rep;
  const int rank = tp.rank();
  const int np = tp.size();
  std::uint64_t seq = 0;
  const auto ctrl = [&seq] {
    return transport::make_seq_tag(transport::TagKind::kCtrl, seq++);
  };

  // --- pingpong: rank 0 <-> rank 1, alpha-beta fit -------------------
  std::vector<std::size_t> sizes{64, 4096, 65536};
  if (!opt.quick) sizes.push_back(1 << 20);
  for (const std::size_t bytes : sizes) {
    const int reps = bytes <= 4096 ? (opt.quick ? 50 : 200)
                                   : (opt.quick ? 20 : 50);
    tp.barrier();
    if (np >= 2 && rank <= 1) {
      std::vector<std::byte> buf(bytes, std::byte{0x5a});
      std::vector<std::byte> in;
      WallTimer t;
      for (int i = -3; i < reps; ++i) {  // 3 warm-up round trips
        if (i == 0) t.start();
        if (rank == 0) {
          tp.send(1, ctrl(), buf);
          tp.recv(1, ctrl(), in);
        } else {
          tp.recv(0, ctrl(), in);
          tp.send(0, ctrl(), buf);
        }
      }
      const double one_way = t.seconds() / (2.0 * reps);
      rep.pingpong.push_back(
          {bytes, one_way * 1e6,
           static_cast<double>(bytes) / std::max(one_way, 1e-12) / 1e9});
    } else {
      seq += static_cast<std::uint64_t>(reps + 3) * 2;  // keep tags in step
    }
    tp.barrier();
  }
  if (!rep.pingpong.empty()) {
    const PingPoint& lo = rep.pingpong.front();
    const PingPoint& hi = rep.pingpong.back();
    rep.alpha_us = lo.t_us;
    const double d_bytes = static_cast<double>(hi.bytes - lo.bytes);
    const double d_us = std::max(hi.t_us - lo.t_us, 1e-9);
    rep.beta_gbs = d_bytes / d_us * 1e6 / 1e9;
  }
  // Rank 0's fit is canonical; every rank prices the model with it.
  {
    std::vector<std::byte> ab(2 * sizeof(double));
    std::memcpy(ab.data(), &rep.alpha_us, sizeof(double));
    std::memcpy(ab.data() + sizeof(double), &rep.beta_gbs,
                sizeof(double));
    tp.broadcast(0, ab);
    std::memcpy(&rep.alpha_us, ab.data(), sizeof(double));
    std::memcpy(&rep.beta_gbs, ab.data() + sizeof(double),
                sizeof(double));
  }

  // --- barrier latency ----------------------------------------------
  {
    const int reps = opt.quick ? 50 : 200;
    for (int i = 0; i < 5; ++i) tp.barrier();
    WallTimer t;
    for (int i = 0; i < reps; ++i) tp.barrier();
    rep.barrier_us = t.seconds() * 1e6 / reps;
  }

  // --- allreduce latency + determinism ------------------------------
  {
    const int reps = opt.quick ? 50 : 200;
    std::vector<double> v(64);
    for (int i = 0; i < 3; ++i) tp.allreduce_sum(v);
    WallTimer t;
    for (int i = 0; i < reps; ++i) tp.allreduce_sum(v);
    rep.allreduce_us = t.seconds() * 1e6 / reps;
    std::vector<double> one(8, static_cast<double>(rank + 1));
    tp.allreduce_sum(one);
    const double expect = static_cast<double>(np) *
                          static_cast<double>(np + 1) / 2.0;
    rep.allreduce_exact = true;
    for (const double x : one) rep.allreduce_exact &= x == expect;
  }

  // --- halo exchange vs the fitted alpha-beta model ------------------
  {
    RankCluster<double> cl(opt.geo, opt.grid, tp);
    auto f = cl.make_fermion();
    const auto vol = static_cast<std::size_t>(opt.geo.volume());
    aligned_vector<WilsonSpinorD> src(vol);
    fill_random({src.data(), vol}, opt.seed + 1);
    cl.extract_local(f, {src.data(), vol});
    const int reps = opt.quick ? 10 : 50;
    for (int i = 0; i < 2; ++i) cl.exchange(f);
    tp.barrier();
    // One more untimed exchange after the barrier: its harvest advances
    // the cluster's wire baseline past the barrier frames, so the reset
    // counters below see exactly the timed exchanges.
    cl.exchange(f);
    cl.stats().reset();
    WallTimer t;
    for (int i = 0; i < reps; ++i) cl.exchange(f);
    rep.xchg_t_us = t.seconds() * 1e6 / reps;
    const CommStats& cs = cl.stats();
    rep.xchg_wire_bytes =
        static_cast<double>(cs.wire_bytes) / static_cast<double>(reps);
    rep.xchg_wire_frames =
        static_cast<double>(cs.wire_frames) / static_cast<double>(reps);
    if (rep.beta_gbs > 0.0)
      rep.xchg_model_us = rep.xchg_wire_frames * rep.alpha_us +
                          rep.xchg_wire_bytes / (rep.beta_gbs * 1e3);
    tp.barrier();
  }

  // --- split-phase dslash: throughput, overlap, bit-identity ---------
  {
    RankWilsonOperator<double> op(u, opt.kappa, opt.grid, tp);
    RankCluster<double>& cl = op.cluster();
    const auto vol = static_cast<std::size_t>(opt.geo.volume());
    aligned_vector<WilsonSpinorD> src(vol);
    fill_random({src.data(), vol}, opt.seed + 1);
    auto in = cl.make_fermion();
    auto out = cl.make_fermion();
    cl.extract_local(in, {src.data(), vol});
    op.apply(out, in);  // warm-up counts toward the CRC'd state
    std::swap(in, out);
    op.reset_overlap_stats();
    tp.barrier();
    WallTimer t;
    for (int k = 1; k < opt.dslash_applies; ++k) {
      op.apply(out, in);
      std::swap(in, out);
    }
    const int timed = opt.dslash_applies - 1;
    rep.dslash_ms = t.seconds() * 1e3 / std::max(timed, 1);
    rep.sites_per_s = static_cast<double>(opt.geo.volume()) /
                      std::max(rep.dslash_ms * 1e-3, 1e-12);
    rep.hidden_fraction = op.overlap_stats().hidden_fraction();
    aligned_vector<WilsonSpinorD> full(rank == 0 ? vol : 0);
    cl.gather_to_root({full.data(), full.size()}, in);
    if (rank == 0) rep.crc = field_crc({full.data(), vol});
  }
  tp.barrier();
  return rep;
}

void write_json(const std::string& path, const std::string& backend,
                int np, const Options& opt, const RankReport& r,
                std::uint32_t crc_virtual, bool identical) {
  std::ofstream js(path);
  char hex[16];
  js << "{\n"
     << "  \"schema\": \"lqcd.bench.transport/1\",\n"
     << "  \"experiment\": \"transport-measured\",\n"
     << "  \"transport\": \"" << backend << "\",\n"
     << "  \"ranks\": " << np << ",\n"
     << "  \"lattice\": [" << opt.geo.dim(0) << ", " << opt.geo.dim(1)
     << ", " << opt.geo.dim(2) << ", " << opt.geo.dim(3) << "],\n"
     << "  \"grid\": [" << opt.grid.dims()[0] << ", "
     << opt.grid.dims()[1] << ", " << opt.grid.dims()[2] << ", "
     << opt.grid.dims()[3] << "],\n"
     << "  \"pingpong\": [\n";
  for (std::size_t i = 0; i < r.pingpong.size(); ++i) {
    const PingPoint& p = r.pingpong[i];
    js << "    {\"bytes\": " << p.bytes << ", \"t_us\": " << p.t_us
       << ", \"bw_gbs\": " << p.bw_gbs << "}"
       << (i + 1 < r.pingpong.size() ? "," : "") << "\n";
  }
  js << "  ],\n"
     << "  \"alpha_us\": " << r.alpha_us << ",\n"
     << "  \"beta_gbs\": " << r.beta_gbs << ",\n"
     << "  \"barrier_us\": " << r.barrier_us << ",\n"
     << "  \"allreduce_us\": " << r.allreduce_us << ",\n"
     << "  \"allreduce_exact\": " << (r.allreduce_exact ? "true" : "false")
     << ",\n"
     << "  \"exchange\": {\"t_us\": " << r.xchg_t_us
     << ", \"wire_bytes_per_rank\": " << r.xchg_wire_bytes
     << ", \"wire_frames_per_rank\": " << r.xchg_wire_frames
     << ", \"model_t_us\": " << r.xchg_model_us
     << ", \"measured_over_model\": "
     << (r.xchg_model_us > 0.0 ? r.xchg_t_us / r.xchg_model_us : 0.0)
     << "},\n";
  std::snprintf(hex, sizeof hex, "0x%08x", r.crc);
  js << "  \"dslash\": {\"t_ms_per_apply\": " << r.dslash_ms
     << ", \"sites_per_s\": " << r.sites_per_s
     << ", \"hidden_fraction\": " << r.hidden_fraction << ", \"crc\": \""
     << hex << "\", \"crc_virtual\": \"";
  std::snprintf(hex, sizeof hex, "0x%08x", crc_virtual);
  js << hex << "\", \"bitwise_identical\": "
     << (identical ? "true" : "false") << "}\n"
     << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const char* env = std::getenv("LQCD_TRANSPORT");
  const std::string backend =
      cli.get_string("transport", env != nullptr ? env : "virtual");
  const bool quick = cli.get_flag("quick");
  const std::string json_path = cli.get_string("json", "");
  const int L = cli.get_int("L", quick ? 4 : 8);
  const int T = cli.get_int("T", quick ? 8 : 16);
  const int np = cli.get_int("np", env != nullptr ? 0 : 4);
  const int applies = cli.get_int("reps", quick ? 5 : 10);
  cli.finish();

  Options opt;
  opt.geo = LatticeGeometry({L, L, L, T});
  opt.quick = quick;
  opt.dslash_applies = applies;

  if (env == nullptr && backend != "virtual") {
    std::fprintf(stderr,
                 "bench_transport: --transport %s needs the launcher:\n"
                 "  lqcd_launch -n N --transport %s -- %s ...\n",
                 backend.c_str(), backend.c_str(), argv[0]);
    return 2;
  }

  if (env != nullptr) {
    // SPMD mode: this process is one rank; the backend came from the
    // launcher's environment.
    std::unique_ptr<transport::Transport> tp =
        transport::make_transport_from_env();
    const int n = tp->size();
    LQCD_REQUIRE(np == 0 || np == n,
                 "bench_transport: --np must match lqcd_launch -n");
    opt.grid = ProcessGrid(choose_grid(opt.geo.dims(), n));
    GaugeFieldD u(opt.geo);
    u.set_random(SiteRngFactory(opt.seed));
    const RankReport rep = run_rank(*tp, u, opt);
    if (tp->rank() != 0) return 0;
    const std::uint32_t ref = virtual_reference_crc(u, opt);
    const bool same = ref == rep.crc;
    std::printf("T9 (%s, %d ranks): alpha %.2f us, beta %.2f GB/s, "
                "barrier %.1f us, allreduce %.1f us\n",
                backend.c_str(), n, rep.alpha_us, rep.beta_gbs,
                rep.barrier_us, rep.allreduce_us);
    std::printf("  exchange %.1f us vs model %.1f us; dslash %.3f "
                "ms/apply hidden %.3f crc=0x%08x %s\n",
                rep.xchg_t_us, rep.xchg_model_us, rep.dslash_ms,
                rep.hidden_fraction, rep.crc,
                same ? "== virtual" : "!= virtual (FAIL)");
    if (!json_path.empty())
      write_json(json_path, backend, n, opt, rep, ref, same);
    return same ? 0 : 1;
  }

  // Virtual mode: one thread per rank over the in-process hub. The
  // fork-join pool is pinned to a single worker first — SPMD rank
  // threads and a shared pool would otherwise race run_chunks.
  const int n = np > 0 ? np : 4;
  opt.grid = ProcessGrid(choose_grid(opt.geo.dims(), n));
  GaugeFieldD u(opt.geo);
  u.set_random(SiteRngFactory(opt.seed));
  const std::uint32_t ref = virtual_reference_crc(u, opt);
  ThreadPool::set_global_threads(1);
  std::vector<std::unique_ptr<transport::Transport>> eps =
      transport::make_inprocess_group(n);
  std::vector<RankReport> reps(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errs(static_cast<std::size_t>(n));
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    ts.emplace_back([&, r] {
      try {
        reps[static_cast<std::size_t>(r)] =
            run_rank(*eps[static_cast<std::size_t>(r)], u, opt);
      } catch (...) {
        errs[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (auto& t : ts) t.join();
  for (const std::exception_ptr& e : errs)
    if (e) std::rethrow_exception(e);
  const RankReport& rep = reps[0];
  const bool same = ref == rep.crc;
  std::printf("T9 (virtual, %d ranks): alpha %.2f us, beta %.2f GB/s, "
              "barrier %.1f us, allreduce %.1f us\n",
              n, rep.alpha_us, rep.beta_gbs, rep.barrier_us,
              rep.allreduce_us);
  std::printf("  exchange %.1f us vs model %.1f us; dslash %.3f "
              "ms/apply hidden %.3f crc=0x%08x %s\n",
              rep.xchg_t_us, rep.xchg_model_us, rep.dslash_ms,
              rep.hidden_fraction, rep.crc,
              same ? "== virtual" : "!= virtual (FAIL)");
  if (!json_path.empty())
    write_json(json_path, "virtual", n, opt, rep, ref, same);
  return same ? 0 : 1;
}
