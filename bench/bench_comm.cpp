// Experiment T3: the communication substrate. Functional side: halo-
// exchange byte/message counts from the virtual cluster (the structure an
// MPI job would produce), cross-checked against the analytic model's
// charges. Model side: per-message sizes and times vs local volume on
// the machine presets.
//
// --json <path> records the T3c achieved-vs-model comparison
// (schema-versioned); --report <path> dumps the full telemetry run
// report (schema lqcd.telemetry/1) so the comm.halo.* counters can be
// diffed against the model offline.

#include <cstdio>
#include <fstream>
#include <string>

#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "lattice/field.hpp"
#include "util/cli.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const std::string report_path = cli.get_string("report", "");
  cli.finish();

  std::printf("T3a (functional): virtual-cluster halo exchange, "
              "8x8x8x16 global lattice\n");
  std::printf("%12s %8s %12s %14s %12s\n", "grid", "ranks", "msgs/xchg",
              "bytes/xchg", "time[ms]");
  const LatticeGeometry geo({8, 8, 8, 16});
  for (const Coord grid : {Coord{1, 1, 1, 2}, Coord{2, 1, 1, 2},
                           Coord{2, 2, 2, 2}, Coord{2, 2, 2, 4}}) {
    const ProcessGrid pg(grid);
    VirtualCluster<double> vc(geo, pg);
    auto f = vc.make_fermion();
    vc.exchange(f);  // warm-up
    vc.stats().reset();
    WallTimer t;
    const int reps = 5;
    for (int i = 0; i < reps; ++i) vc.exchange(f);
    const double ms = t.seconds() * 1e3 / reps;
    std::printf("%5dx%dx%dx%-3d %8d %12lld %14lld %12.3f\n", grid[0],
                grid[1], grid[2], grid[3], pg.size(),
                static_cast<long long>(vc.stats().messages / reps),
                static_cast<long long>(vc.stats().bytes / reps), ms);
  }

  std::printf("\nT3b (modeled): per-node dslash halo traffic vs local "
              "volume (double, half-spinor halos, fully decomposed)\n");
  std::printf("%14s | %12s %8s | %12s %12s %12s\n", "local volume",
              "halo bytes", "msgs", "BG/Q t[us]", "K t[us]",
              "cluster t[us]");
  PerfModelOptions opt;
  for (const Coord local : {Coord{4, 4, 4, 4}, Coord{8, 8, 8, 8},
                            Coord{16, 16, 16, 16},
                            Coord{24, 24, 24, 24}}) {
    const Coord grid{2, 2, 2, 2};
    const DslashCost bgq = model_dslash(local, grid, blue_gene_q(), opt);
    const DslashCost k = model_dslash(local, grid, k_computer(), opt);
    const DslashCost cl =
        model_dslash(local, grid, generic_cluster(), opt);
    std::printf("%5dx%dx%dx%-4d | %12.0f %8d | %12.2f %12.2f %12.2f\n",
                local[0], local[1], local[2], local[3], bgq.comm_bytes,
                bgq.messages, bgq.t_comm * 1e6, k.t_comm * 1e6,
                cl.t_comm * 1e6);
  }
  std::printf("\nShape: halo bytes scale with the local surface "
              "(volume^(3/4) per direction); at small local volumes the "
              "per-message latency floor dominates — the same effect that "
              "bends the strong-scaling curve in F1. The functional "
              "counts in T3a are exact and match what the model charges "
              "per exchange.\n");

  // T3c: the telemetry counters charged by the exchanges above, diffed
  // against the model for the fully decomposed grid. The virtual cluster
  // ships full 24-real double spinors, so the mapping is exact; the
  // documented tolerance is 1%.
  std::printf("\nT3c (telemetry): achieved comm.halo.bytes vs model, "
              "grid 2x2x2x2\n");
  telemetry::set_enabled(true);
  telemetry::Counter& c_bytes = telemetry::counter("comm.halo.bytes");
  telemetry::Counter& c_exch = telemetry::counter("comm.halo.exchanges");
  const std::int64_t bytes0 = c_bytes.value();
  const std::int64_t exch0 = c_exch.value();
  const ProcessGrid pg({2, 2, 2, 2});
  VirtualCluster<double> vc(geo, pg);
  auto f = vc.make_fermion();
  const int reps = 4;
  for (int i = 0; i < reps; ++i) vc.exchange(f);
  const double achieved_per_exchange =
      static_cast<double>(c_bytes.value() - bytes0) /
      static_cast<double>(c_exch.value() - exch0);

  PerfModelOptions exact;
  exact.precision_bytes = 8;
  exact.half_spinor_comm = false;
  Coord local{};
  for (int mu = 0; mu < Nd; ++mu) local[mu] = geo.dim(mu) / 2;
  const DslashCost model =
      model_dslash(local, {2, 2, 2, 2}, blue_gene_q(), exact);
  const double model_per_exchange =
      model.comm_bytes * static_cast<double>(pg.size());
  std::printf("bytes/exchange: achieved %.0f, model %.0f (ratio %.4f, "
              "tolerance 1%%)\n",
              achieved_per_exchange, model_per_exchange,
              achieved_per_exchange / model_per_exchange);

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.comm/1\",\n"
       << "  \"telemetry_schema\": \"" << telemetry::kSchema << "\",\n"
       << "  \"experiment\": \"halo-exchange-counts\",\n"
       << "  \"lattice\": [8, 8, 8, 16],\n"
       << "  \"grid\": [2, 2, 2, 2],\n"
       << "  \"achieved_halo_bytes_per_exchange\": "
       << achieved_per_exchange << ",\n"
       << "  \"model_halo_bytes_per_exchange\": " << model_per_exchange
       << ",\n"
       << "  \"model_tolerance_pct\": 1.0\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!report_path.empty()) {
    telemetry::write_report(report_path);
    std::printf("telemetry report -> %s\n", report_path.c_str());
  }
  return 0;
}
